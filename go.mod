module multirag

go 1.24
