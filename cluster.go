package multirag

import (
	"context"

	"multirag/internal/cluster"
)

// ReplicaSetConfig sizes a ReplicaSet.
type ReplicaSetConfig struct {
	// Replicas is the number of read replicas (default 2).
	Replicas int
	// VerifyEvery inserts an anti-entropy digest marker into every replica
	// feed after this many shipped records (default 16; < 0 disables).
	VerifyEvery int
	// QueueLen bounds each replica's feed queue (default 256). An overflowing
	// replica loses frames, detects the gap and resyncs from the primary.
	QueueLen int
}

// ReplicaSet replicates a System onto N in-process read replicas by shipping
// its committed write-ahead-log records over a feed and replaying them
// through the same path crash recovery uses. Every replica snapshot is
// byte-identical to the primary's at the same replication position, so reads
// routed to replicas return exactly the answers the primary would. Replicas
// that fall behind, fail a replay, or diverge (caught by periodic digest
// verification) fence themselves and resync automatically.
type ReplicaSet struct {
	c *cluster.Cluster
}

// NewReplicaSet attaches a replica set to s and starts its feed pumps. Only
// one ReplicaSet may be attached to a System at a time; Close detaches it.
func NewReplicaSet(s *System, cfg ReplicaSetConfig) (*ReplicaSet, error) {
	c, err := cluster.New(s.inner, cluster.Config{
		Replicas:    cfg.Replicas,
		VerifyEvery: cfg.VerifyEvery,
		QueueLen:    cfg.QueueLen,
	})
	if err != nil {
		return nil, err
	}
	return &ReplicaSet{c: c}, nil
}

// Close detaches from the primary and stops every replica. Safe to call more
// than once; call it before closing the System underneath.
func (rs *ReplicaSet) Close() { rs.c.Close() }

// CommittedLSN is the primary's replication position — the coordinate
// replica positions and staleness bounds are measured against.
func (rs *ReplicaSet) CommittedLSN() uint64 { return rs.c.CommittedLSN() }

// Replicas returns the read replicas (fixed for the set's lifetime).
func (rs *ReplicaSet) Replicas() []*Replica {
	inner := rs.c.Replicas()
	out := make([]*Replica, len(inner))
	for i, r := range inner {
		out[i] = &Replica{r: r}
	}
	return out
}

// ReplicaStatus is one replica's externally visible state, for metrics.
type ReplicaStatus struct {
	// Name identifies the replica ("replica-0", ...).
	Name string `json:"name"`
	// State is "live", "syncing" or "fenced".
	State string `json:"state"`
	// AppliedLSN is the replication position the replica has applied through.
	AppliedLSN uint64 `json:"applied_lsn"`
	// Lag is committed minus applied at snapshot time.
	Lag uint64 `json:"lag"`
	// Verified counts anti-entropy digest markers that matched.
	Verified uint64 `json:"verified"`
	// Divergences counts digest markers that did not (each forced a resync).
	Divergences uint64 `json:"divergences"`
	// Resyncs counts fence→reseed cycles for any reason.
	Resyncs uint64 `json:"resyncs"`
	// DroppedFrames counts feed frames dropped on queue overflow.
	DroppedFrames uint64 `json:"dropped_frames"`
	// FenceReason is why the replica is currently fenced, if it is.
	FenceReason string `json:"fence_reason,omitempty"`
}

// Status snapshots every replica.
func (rs *ReplicaSet) Status() []ReplicaStatus {
	inner := rs.c.Status()
	out := make([]ReplicaStatus, len(inner))
	for i, st := range inner {
		out[i] = ReplicaStatus{
			Name:          st.Name,
			State:         st.State,
			AppliedLSN:    st.Applied,
			Lag:           st.Lag,
			Verified:      st.Verified,
			Divergences:   st.Divergences,
			Resyncs:       st.Resyncs,
			DroppedFrames: st.Dropped,
			FenceReason:   st.FenceReason,
		}
	}
	return out
}

// Replica is one read replica — a routing target for the serving layer.
type Replica struct {
	r *cluster.Replica
}

// Name identifies the replica ("replica-0", ...).
func (r *Replica) Name() string { return r.r.Name() }

// Live reports whether the replica is applying its feed and fit to serve
// (not fenced or mid-resync).
func (r *Replica) Live() bool { return r.r.State() == cluster.StateLive }

// Position is the replication position the replica has applied through.
func (r *Replica) Position() uint64 { return r.r.Position() }

// AskEach answers queries[i] under ctxs[i] against the replica's snapshot,
// exactly as System.AskEach would against the primary's.
func (r *Replica) AskEach(ctxs []context.Context, queries []string) []Answer {
	answers := r.r.AskEach(ctxs, queries)
	out := make([]Answer, len(answers))
	for i := range answers {
		out[i] = convertAnswer(answers[i])
	}
	return out
}

// Probe health-checks the replica; nil means it is live and servable. The
// serving router probes drained replicas before re-admitting them.
func (r *Replica) Probe(ctx context.Context) error { return r.r.Probe(ctx) }

// SnapshotDigest returns the anti-entropy fingerprint of the currently
// published snapshot. Two engines at the same replication position holding
// byte-identical state digest identically; `multirag recover -verify` prints
// this for offline comparison across nodes.
func (s *System) SnapshotDigest() uint64 { return s.inner.SnapshotDigest() }

// ReplicationLSN returns the system's replication position: the number of
// commit groups ever published (on durable systems, exactly the WAL's next
// LSN).
func (s *System) ReplicationLSN() uint64 { return s.inner.ReplicationLSN() }
