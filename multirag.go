package multirag

import (
	"context"
	"fmt"
	"time"

	"multirag/internal/adapter"
	"multirag/internal/confidence"
	"multirag/internal/core"
	"multirag/internal/llm"
)

// File is one raw data file to ingest.
type File struct {
	// Domain is the data domain ("movies", "flights", ...).
	Domain string
	// Source names the originating data source.
	Source string
	// Name is the file name.
	Name string
	// Format selects the adapter: "csv", "json", "xml", "kg" or "text".
	Format string
	// Meta is optional file metadata. Meta["key"] designates the record
	// property naming the entity for semi-structured data; Meta["type"] sets
	// the entity type.
	Meta map[string]string
	// Content is the raw file content.
	Content []byte
}

// Config tunes a System. The zero value reproduces the paper's
// hyper-parameter settings (α = 0.5, β = 0.5, θ = 0.7, graph threshold 0.5).
type Config struct {
	// Seed drives the deterministic simulated language model.
	Seed uint64
	// Alpha balances LLM-assessed authority against historical authority
	// (Eq. 9); zero means the paper default 0.5. Use a negative value for
	// an explicit 0.
	Alpha float64
	// NodeThreshold is the node-confidence cut-off θ (default 0.7).
	NodeThreshold float64
	// GraphThreshold is the subgraph-confidence cut-off (default 0.5).
	GraphThreshold float64
	// DisableMKA turns off multi-source knowledge aggregation (ablation).
	DisableMKA bool
	// DisableGraphLevel / DisableNodeLevel turn off the two confidence
	// stages (ablations).
	DisableGraphLevel bool
	DisableNodeLevel  bool
	// Workers bounds the ingestion worker pool and the AskConcurrent fan-out
	// (0 = GOMAXPROCS).
	Workers int
	// Shards hash-partitions the retrieval index into shards scanned in
	// parallel per query (0 = a sensible default; 1 = flat single-shard
	// scan). A pure performance knob: answers are identical for any value.
	Shards int
	// DisablePostings turns off the lexical candidate pre-filter on the
	// retrieval index. Also a pure performance knob, kept for A/B runs.
	DisablePostings bool
	// ANN swaps the exact retrieval index for the approximate IVF tier with
	// exact re-rank. NOT a pure performance knob: chunk retrieval can miss
	// candidates outside the probed coarse-quantizer cells (recall measured
	// by `make bench-ann`), in exchange for sub-linear scans at large corpus
	// sizes. Off by default; when set, Shards and the postings pre-filter
	// are ignored. Per-hit scores stay exact.
	ANN bool
	// NProbe is how many coarse-quantizer cells an ANN query probes (0 = a
	// sensible default). More probes raise recall and per-query cost.
	NProbe int
	// ANNInt8 runs the ANN coarse pass over an int8-quantized copy of the
	// vectors (4x smaller scan footprint); final scores are still exact.
	// Ignored unless ANN is set.
	ANNInt8 bool
	// AnswerCache bounds the per-corpus-version answer cache (entries);
	// 0 disables it. The cache is flushed automatically whenever IngestFiles
	// commits, so cached answers never reflect a stale corpus. Cache hits
	// skip the evaluation pipeline, including its online source-authority
	// learning, so confidence scores on later queries may differ slightly
	// from an uncached run; answer values for a given corpus do not.
	AnswerCache int
	// SerializeIngest reverts IngestFiles to the fully serialized write path
	// (one lock held for the whole call, one snapshot per batch) instead of
	// the pipelined group-committing ingest. Results are identical for any
	// fixed batch order; the knob exists as the A/B baseline for ingest
	// throughput measurements.
	SerializeIngest bool
	// BreakerFailures is how many consecutive model-call failures trip the
	// answer-generation/extraction circuit breakers open (0 = default 5).
	// While open, affected queries return Degraded answers immediately
	// instead of hammering the failing stage; after BreakerCooldown a single
	// probe call decides whether to close again.
	BreakerFailures int
	// BreakerCooldown is how long a tripped breaker fast-fails before probing
	// (0 = default 1s).
	BreakerCooldown time.Duration
}

// Answer is the trustworthy response to a query.
type Answer struct {
	// Query echoes the input.
	Query string
	// Values is the answer value set (possibly multi-truth).
	Values []string
	// Found reports whether any evidence was located.
	Found bool
	// Trusted lists the accepted evidence as (value, source, confidence).
	Trusted []EvidenceItem
	// Rejected counts claims eliminated by confidence filtering.
	Rejected int
	// GraphConfidences lists C(G) per candidate homologous subgraph.
	GraphConfidences []float64
	// Intent is the parsed query intent ("attribute_lookup", "multi_hop",
	// "comparison").
	Intent string
	// Degraded marks a partial answer: the evaluation was cut short by its
	// deadline, a cancellation, a tripped circuit breaker or a contained
	// stage failure, and Values reflects only the work that completed.
	// Context-free Ask/AskConcurrent never set it outside fault injection.
	Degraded bool
	// DegradedReason names why ("deadline", "canceled", "breaker-open", or a
	// stage error); empty when Degraded is false.
	DegradedReason string
}

// EvidenceItem is one accepted claim.
type EvidenceItem struct {
	Value      string
	Source     string
	Confidence float64
}

// Stats summarises an ingested corpus.
type Stats struct {
	Entities        int
	Triples         int
	HomologousNodes int
	IsolatedClaims  int
	Chunks          int
	BuildTime       time.Duration
}

// System is a MultiRAG deployment over one corpus. All methods are safe for
// concurrent use: queries run against immutable, atomically swapped
// snapshots, so any number of Ask/Retrieve goroutines can proceed while
// IngestFiles batches are committed. Concurrent IngestFiles calls overlap
// their extraction fan-outs and are group-committed in arrival order; each
// batch becomes visible atomically.
type System struct {
	inner *core.System
}

// Open creates an in-memory System from cfg. State lives only in the
// process; use OpenDurable for a deployment that survives restarts.
func Open(cfg Config) *System {
	return &System{inner: core.NewSystem(coreConfig(cfg))}
}

// RecoveryInfo summarises what OpenDurable found on disk.
type RecoveryInfo struct {
	// CheckpointLSN is the WAL position covered by the checkpoint that seeded
	// the state (0 when the system started from scratch).
	CheckpointLSN uint64 `json:"checkpoint_lsn"`
	// RecordsReplayed is how many write-ahead-log records were replayed on
	// top of the checkpoint.
	RecordsReplayed int `json:"records_replayed"`
	// Truncated reports that a torn or corrupt record was found at the log
	// tail and discarded — the signature of a crash mid-commit; the affected
	// batch was never acknowledged.
	Truncated bool `json:"truncated"`
}

// OpenDurable opens (or initialises) a durable System backed by dir: every
// acknowledged IngestFiles batch is written to a write-ahead log and fsync'd
// before the call returns, and a background checkpointer periodically folds
// the log into a snapshot. On open, the newest valid checkpoint is loaded and
// the WAL tail replayed on top of it, so the corpus resumes exactly where the
// previous process — cleanly shut down or crashed — left it. The caller must
// Close the system to take the final checkpoint.
func OpenDurable(dir string, cfg Config) (*System, RecoveryInfo, error) {
	inner, info, err := core.Open(dir, coreConfig(cfg))
	if err != nil {
		return nil, RecoveryInfo{}, err
	}
	return &System{inner: inner}, RecoveryInfo{
		CheckpointLSN:   info.CheckpointLSN,
		RecordsReplayed: info.RecordsReplayed,
		Truncated:       info.Truncated,
	}, nil
}

// Close flushes a durable System: it stops the background checkpointer,
// writes a final checkpoint (so the next OpenDurable recovers from the
// snapshot alone) and closes the log. On an in-memory System it is a no-op.
// Close is idempotent; ingests racing Close fail without being acknowledged.
func (s *System) Close() error { return s.inner.Close() }

// coreConfig maps the public configuration onto the engine's.
func coreConfig(cfg Config) core.Config {
	mcc := confidence.DefaultConfig()
	if cfg.Alpha != 0 {
		mcc.Alpha = cfg.Alpha
		if cfg.Alpha < 0 {
			mcc.Alpha = 0
		}
	}
	if cfg.NodeThreshold != 0 {
		mcc.NodeThreshold = cfg.NodeThreshold
	}
	if cfg.GraphThreshold != 0 {
		mcc.GraphThreshold = cfg.GraphThreshold
	}
	llmCfg := llm.DefaultConfig()
	if cfg.Seed != 0 {
		llmCfg.Seed = cfg.Seed
	}
	return core.Config{
		LLM:             llmCfg,
		MCC:             mcc,
		DisableMKA:      cfg.DisableMKA,
		Workers:         cfg.Workers,
		Shards:          cfg.Shards,
		DisablePostings: cfg.DisablePostings,
		ANN:             cfg.ANN,
		NProbe:          cfg.NProbe,
		ANNQuantize:     cfg.ANNInt8,
		AnswerCacheSize: cfg.AnswerCache,
		SerializeIngest: cfg.SerializeIngest,
		BreakerFailures: cfg.BreakerFailures,
		BreakerCooldown: cfg.BreakerCooldown,
		Ablation: confidence.Options{
			DisableGraphLevel: cfg.DisableGraphLevel,
			DisableNodeLevel:  cfg.DisableNodeLevel,
		},
	}
}

// IngestFiles adapts, fuses and indexes the given files, extending the
// knowledge graph and incrementally updating the multi-source line graph.
// Per-file adaptation, extraction and embedding run on a bounded worker pool
// (Config.Workers) outside any lock, so concurrent IngestFiles callers
// overlap that expensive work; prepared batches are then group-committed in
// arrival order. Each batch commits atomically — concurrent Ask calls see
// either the whole batch or none of it — and a failing batch never blocks or
// poisons batches committed alongside it.
func (s *System) IngestFiles(files ...File) error {
	raw := make([]adapter.RawFile, 0, len(files))
	for _, f := range files {
		if f.Domain == "" || f.Source == "" || f.Name == "" || f.Format == "" {
			return fmt.Errorf("multirag: file needs Domain, Source, Name and Format (got %+v)", f)
		}
		raw = append(raw, adapter.RawFile{
			Domain: f.Domain, Source: f.Source, Name: f.Name,
			Format: f.Format, Meta: f.Meta, Content: f.Content,
		})
	}
	_, err := s.inner.Ingest(raw)
	return err
}

// Ask answers a natural-language question over the ingested corpus.
// Supported grammars: "What is the <attribute> of <entity>?", the two-hop
// form "What is the <a> of the <r> of <entity>?", and "Do <e1> and <e2> have
// the same <attribute>?".
//
// Ask is safe for unbounded concurrent use, including while IngestFiles is
// running: each call evaluates against one immutable snapshot.
func (s *System) Ask(query string) Answer {
	return convertAnswer(s.inner.Query(query))
}

// AskCtx is Ask under a request context: the evaluation stops claiming work
// once ctx is done (deadline or cancellation) and returns whatever completed
// as a Degraded partial answer. With a context that can never be canceled it
// takes the exact Ask path, bit-identical to Ask.
func (s *System) AskCtx(ctx context.Context, query string) Answer {
	return convertAnswer(s.inner.QueryCtx(ctx, query))
}

// AskEach answers queries[i] under ctxs[i] (nil entries mean no deadline),
// all against one published snapshot — the serving layer's batch entry point,
// where each admitted request carries its own SLO deadline and client
// disconnect signal. A request whose context ends mid-evaluation yields a
// Degraded answer; the rest of the batch is unaffected.
func (s *System) AskEach(ctxs []context.Context, queries []string) []Answer {
	answers := s.inner.QueryEach(ctxs, queries)
	out := make([]Answer, len(answers))
	for i := range answers {
		out[i] = convertAnswer(answers[i])
	}
	return out
}

// AskConcurrent answers a batch of queries, fanning them out across the
// worker pool (Config.Workers, default GOMAXPROCS). Results are returned in
// input order. The whole batch evaluates against one published snapshot, so
// every answer reflects the same corpus state; AskConcurrent may still be
// interleaved with IngestFiles (later batches observe later snapshots).
func (s *System) AskConcurrent(queries []string) []Answer {
	answers := s.inner.QueryBatch(queries)
	out := make([]Answer, len(answers))
	for i := range answers {
		out[i] = convertAnswer(answers[i])
	}
	return out
}

// convertAnswer maps a core answer onto the public shape.
func convertAnswer(a core.Answer) Answer {
	out := Answer{
		Query:            a.Query,
		Values:           a.Values,
		Found:            a.Found,
		Rejected:         a.RejectedCount,
		GraphConfidences: a.GraphConfidences,
		Intent:           a.LogicForm.Intent,
		Degraded:         a.Degraded,
		DegradedReason:   a.DegradedReason,
	}
	for _, tn := range a.Trusted {
		out.Trusted = append(out.Trusted, EvidenceItem{
			Value:      tn.Triple.Object,
			Source:     tn.Triple.Source,
			Confidence: tn.Confidence,
		})
	}
	return out
}

// BreakerInfo is one circuit breaker's observable state.
type BreakerInfo struct {
	// Name identifies the guarded stage ("llm.generate", "llm.extract").
	Name string `json:"name"`
	// State is "closed", "open" or "half-open".
	State string `json:"state"`
	// Failures counts consecutive failures while closed.
	Failures int64 `json:"consecutive_failures"`
	// Trips counts closed→open (and failed-probe) transitions.
	Trips int64 `json:"trips"`
	// FastFails counts calls rejected without running while open.
	FastFails int64 `json:"fast_fails"`
	// Successes counts calls that completed cleanly.
	Successes int64 `json:"successes"`
}

// Breakers snapshots the model-call circuit breakers, for metrics endpoints.
func (s *System) Breakers() []BreakerInfo {
	stats := s.inner.BreakerStats()
	out := make([]BreakerInfo, len(stats))
	for i, st := range stats {
		out[i] = BreakerInfo{
			Name: st.Name, State: st.State, Failures: st.Failures,
			Trips: st.Trips, FastFails: st.FastFails, Successes: st.Successes,
		}
	}
	return out
}

// DurabilityInfo is the durability layer's live health.
type DurabilityInfo struct {
	// Durable reports whether the system was opened with OpenDurable.
	Durable bool `json:"durable"`
	// WALAppendErr is the latched write-ahead-log append failure, if any:
	// once an append fails, the log refuses further work until restart, so
	// ingest is failing durably while this is non-empty. Empty when healthy.
	WALAppendErr string `json:"wal_append_err,omitempty"`
	// LastCheckpointLSN is the log position covered by the newest checkpoint.
	LastCheckpointLSN uint64 `json:"last_checkpoint_lsn"`
	// NextLSN is the next log position to be written — the count of records
	// ever committed.
	NextLSN uint64 `json:"next_lsn"`
}

// Durability reports the WAL append latch and checkpoint positions; the
// zero value on in-memory systems.
func (s *System) Durability() DurabilityInfo {
	st := s.inner.DurabilityStatus()
	return DurabilityInfo{
		Durable:           st.Durable,
		WALAppendErr:      st.WALAppendErr,
		LastCheckpointLSN: st.LastCheckpointLSN,
		NextLSN:           st.NextLSN,
	}
}

// IngestPressure reports the ingest pipeline's admission state: how many
// IngestFiles calls are past admission (preparing, queued or committing) and
// the bounded-pipeline capacity at which further callers block. A serving
// front door polls it to reject ingest traffic early (backpressure) instead
// of letting request handlers block inside the group committer.
func (s *System) IngestPressure() (inflight, capacity int) {
	return s.inner.IngestPressure()
}

// Retrieve returns the top-k supporting document identifiers for a query,
// ranked by trusted-evidence provenance first and dense similarity second.
func (s *System) Retrieve(query string, k int) []string {
	return s.inner.RetrieveDocs(query, k)
}

// Stats reports corpus statistics.
func (s *System) Stats() Stats {
	// One snapshot load keeps the counts mutually consistent even while an
	// ingest batch commits concurrently; the chunk count comes from the same
	// snapshot's index rather than a separate counter.
	g, sg, ix := s.inner.Serving()
	st := Stats{
		Entities: g.NumEntities(),
		Triples:  g.NumTriples(),
		Chunks:   ix.Len(),
	}
	if sg != nil {
		hs := sg.ComputeStats()
		st.HomologousNodes = hs.HomologousNodes
		st.IsolatedClaims = hs.Isolated
	}
	real, llmLat := s.inner.BuildCost()
	st.BuildTime = real + llmLat
	return st
}
