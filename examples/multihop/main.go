// Multihop demonstrates the two-hop QA pathway over a distractor-laden
// corpus with a poisoned bridge: a forum document claims a decoy author, and
// the decoy has its own plausible biography. Confidence filtering keeps the
// reasoning chain on the trustworthy branch.
//
//	go run ./examples/multihop
package main

import (
	"fmt"
	"log"

	"multirag"
)

func main() {
	sys := multirag.Open(multirag.Config{Seed: 4})

	err := sys.IngestFiles(
		multirag.File{Domain: "wiki", Source: "wiki", Name: "work", Format: "text",
			Content: []byte("The Hollow Citadel is a celebrated novel. " +
				"The author of The Hollow Citadel is Imani Okafor.")},
		multirag.File{Domain: "wiki", Source: "wiki", Name: "author", Format: "text",
			Content: []byte("Imani Okafor is known as the author of The Hollow Citadel. " +
				"The birthplace of Imani Okafor is Nairobi.")},
		// The poisoned branch: a forum claims a decoy author...
		multirag.File{Domain: "wiki", Source: "forum-fan", Name: "rumor", Format: "text",
			Content: []byte("According to fan forums, the author of The Hollow Citadel is Sven Rossi.")},
		// ...and the decoy has a biography of their own.
		multirag.File{Domain: "wiki", Source: "forum-fan", Name: "decoy-bio", Format: "text",
			Content: []byte("Sven Rossi is discussed online. The birthplace of Sven Rossi is Oslo.")},
		// Neutral distractors.
		multirag.File{Domain: "wiki", Source: "wiki", Name: "other", Format: "text",
			Content: []byte("The Radiant Meridian is another novel. " +
				"The birthplace of its protagonist is unknown. " +
				"The author of The Radiant Meridian is Tara Weber.")},
	)
	if err != nil {
		log.Fatalf("ingest: %v", err)
	}

	q := "What is the birthplace of the author of The Hollow Citadel?"
	ans := sys.Ask(q)
	fmt.Printf("Q: %s\n", q)
	fmt.Printf("A: %v   (intent: %s)\n\n", ans.Values, ans.Intent)

	fmt.Println("hop evidence accepted by confidence filtering:")
	for _, ev := range ans.Trusted {
		fmt.Printf("  %-14s from %-10s confidence %.2f\n", ev.Value, ev.Source, ev.Confidence)
	}
	fmt.Printf("rejected claims (decoy branch): %d\n\n", ans.Rejected)

	docs := sys.Retrieve(q, 3)
	fmt.Println("top supporting documents:")
	for i, d := range docs {
		fmt.Printf("  %d. %s\n", i+1, d)
	}
}
