// Datafusion runs a miniature version of the Table II experiment: it
// generates a synthetic multi-source movie corpus (13 sources with known
// reliabilities, copies and surface-form variants), then compares MultiRAG
// against classic data-fusion answering on the same queries.
//
//	go run ./examples/datafusion
package main

import (
	"fmt"
	"log"

	"multirag"
	"multirag/internal/datasets"
	"multirag/internal/eval"
)

func main() {
	spec := datasets.Movies(7)
	spec.Entities = 60
	spec.Queries = 40
	d, err := datasets.Generate(spec)
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	fmt.Printf("generated %q: %d sources, %d claims, %d gold facts, %d queries\n\n",
		spec.Name, len(spec.Sources), len(d.Claims), len(d.Gold), len(d.Queries))

	sys := multirag.Open(multirag.Config{Seed: 7})
	var files []multirag.File
	for _, f := range d.Files {
		files = append(files, multirag.File{
			Domain: f.Domain, Source: f.Source, Name: f.Name,
			Format: f.Format, Meta: f.Meta, Content: f.Content,
		})
	}
	if err := sys.IngestFiles(files...); err != nil {
		log.Fatalf("ingest: %v", err)
	}
	st := sys.Stats()
	fmt.Printf("knowledge graph: %d entities, %d triples; %d homologous nodes, %d isolated claims\n\n",
		st.Entities, st.Triples, st.HomologousNodes, st.IsolatedClaims)

	// Naive majority voting over raw claims, for contrast.
	votes := func(entity, attr string) []string {
		counts := map[string]int{}
		repr := map[string]string{}
		for _, c := range d.Claims {
			if datasets.GoldKey(c.Entity, c.Attribute) == datasets.GoldKey(entity, attr) {
				counts[c.Value]++
				if _, ok := repr[c.Value]; !ok {
					repr[c.Value] = c.Value
				}
			}
		}
		best, bestN := "", 0
		for v, n := range counts {
			if n > bestN || (n == bestN && v < best) {
				best, bestN = v, n
			}
		}
		if best == "" {
			return nil
		}
		return []string{repr[best]}
	}

	var ours, naive eval.Mean
	for _, q := range d.Queries {
		ans := sys.Ask(q.Text)
		_, _, f1 := eval.PRF1(ans.Values, q.Gold)
		ours.Add(f1)
		_, _, nf1 := eval.PRF1(votes(q.Entity, q.Attribute), q.Gold)
		naive.Add(nf1)
	}
	fmt.Printf("fusion F1 over %d queries:\n", len(d.Queries))
	fmt.Printf("  MultiRAG (MKA + MCC): %.1f%%\n", ours.Value()*100)
	fmt.Printf("  majority vote:        %.1f%%\n", naive.Value()*100)
	fmt.Println("\n(multi-truth facts and copied-source errors are what separate the two)")
}
