// Flightstatus reproduces the paper's Table V case study end to end: the
// real-time status of Air China flight CA981 assembled from structured,
// semi-structured and unstructured sources with a conflicting forum claim,
// shown once with the full framework and once with confidence computing
// disabled — the configuration whose answer the paper marks "Hallucinated".
//
//	go run ./examples/flightstatus
package main

import (
	"fmt"
	"log"
	"strings"

	"multirag"
)

func corpus() []multirag.File {
	return []multirag.File{
		{Domain: "flights", Source: "airport-api", Name: "schedule", Format: "csv",
			Content: []byte("flight,origin,destination,status,departure_time\n" +
				"CA981,PEK,JFK,Delayed,2024-10-01 14:30\n" +
				"MU588,PVG,LAX,On time,2024-10-01 15:10\n")},
		{Domain: "flights", Source: "airline-app", Name: "live", Format: "json",
			Content: []byte(`[{"flight":"CA981","status":"Delayed","delay_reason":"Typhoon","source":"AirChina"},
			                  {"flight":"MU588","status":"On time"}]`)},
		{Domain: "flights", Source: "weather-feed", Name: "alerts", Format: "text",
			Content: []byte("Typhoon Haikui impacts PEK departures after 14:00. " +
				"The status of CA981 is Delayed. The delay reason of CA981 is Typhoon.")},
		{Domain: "flights", Source: "forum-user", Name: "posts", Format: "text",
			Content: []byte("The status of CA981 is On time.")},
	}
}

func main() {
	fmt.Println("== Table V case study: CA981 (PEK -> JFK) ==")
	fmt.Println()

	// Full framework.
	full := multirag.Open(multirag.Config{Seed: 1})
	if err := full.IngestFiles(corpus()...); err != nil {
		log.Fatalf("ingest: %v", err)
	}
	status := full.Ask("What is the real-time status of CA981?")
	reason := full.Ask("What is the delay reason of CA981?")

	fmt.Println("with multi-level confidence computing:")
	for _, gc := range status.GraphConfidences {
		fmt.Printf("  graph confidence C(G) = %.2f\n", gc)
	}
	for _, ev := range status.Trusted {
		fmt.Printf("  trusted %-9s (%s, %.2f)\n", ev.Value, ev.Source, ev.Confidence)
	}
	fmt.Printf("  filtered claims: %d\n", status.Rejected)
	fmt.Printf("  -> %q\n\n", verdict(status.Values, reason.Values))

	// Ablated framework — the hallucination-prone configuration.
	bare := multirag.Open(multirag.Config{Seed: 1, DisableGraphLevel: true, DisableNodeLevel: true})
	if err := bare.IngestFiles(corpus()...); err != nil {
		log.Fatalf("ingest: %v", err)
	}
	rawStatus := bare.Ask("What is the real-time status of CA981?")
	fmt.Println("without confidence computing (w/o MCC):")
	fmt.Printf("  unfiltered context: ")
	for _, ev := range rawStatus.Trusted {
		fmt.Printf("%s(%s) ", ev.Value, ev.Source)
	}
	fmt.Println()
	fmt.Printf("  -> %q\n", strings.Join(rawStatus.Values, "; "))
}

func verdict(status, reason []string) string {
	s := "unknown"
	if len(status) > 0 {
		s = status[0]
	}
	if len(reason) > 0 {
		return fmt.Sprintf("CA981 %s due to %s", strings.ToLower(s), strings.ToLower(reason[0]))
	}
	return "CA981 " + strings.ToLower(s)
}
