// Quickstart: ingest three heterogeneous sources about one flight — one of
// which is wrong — and watch multi-level confidence computing suppress the
// conflicting claim.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"multirag"
)

func main() {
	sys := multirag.Open(multirag.Config{Seed: 1})

	err := sys.IngestFiles(
		// Structured: the airport's departure table (CSV → DSM columnar).
		multirag.File{
			Domain: "flights", Source: "airport-api", Name: "schedule", Format: "csv",
			Content: []byte("flight,origin,destination,status\nCA981,PEK,JFK,Delayed\n"),
		},
		// Semi-structured: the airline's live feed (nested JSON).
		multirag.File{
			Domain: "flights", Source: "airline-app", Name: "live", Format: "json",
			Content: []byte(`[{"flight":"CA981","status":"Delayed","delay_reason":"Typhoon"}]`),
		},
		// Unstructured: a weather bulletin (free text, LLM-extracted).
		multirag.File{
			Domain: "flights", Source: "weather-feed", Name: "alerts", Format: "text",
			Content: []byte("Typhoon Haikui impacts PEK departures. The status of CA981 is Delayed."),
		},
		// A conflicting community claim.
		multirag.File{
			Domain: "flights", Source: "forum-user", Name: "posts", Format: "text",
			Content: []byte("The status of CA981 is On time."),
		},
	)
	if err != nil {
		log.Fatalf("ingest: %v", err)
	}

	st := sys.Stats()
	fmt.Printf("corpus: %d entities, %d triples, %d homologous nodes\n\n",
		st.Entities, st.Triples, st.HomologousNodes)

	ans := sys.Ask("What is the status of CA981?")
	fmt.Printf("Q: What is the status of CA981?\n")
	fmt.Printf("A: %v\n\n", ans.Values)
	fmt.Println("trusted evidence:")
	for _, ev := range ans.Trusted {
		fmt.Printf("  %-10s from %-14s confidence %.2f\n", ev.Value, ev.Source, ev.Confidence)
	}
	fmt.Printf("rejected conflicting claims: %d\n", ans.Rejected)
}
