package multirag_test

// This file is the benchmark harness required by DESIGN.md §4: one testing.B
// target per paper table and figure (run at a reduced scale so `go test
// -bench=.` completes in minutes — use cmd/benchtables for the full-scale
// regeneration), ablation benches for the design decisions DESIGN.md §2–§3
// call out, and micro-benchmarks for the core data structures.

import (
	"fmt"
	"io"
	"sync/atomic"
	"testing"

	"multirag/internal/adapter"
	"multirag/internal/bench"
	"multirag/internal/confidence"
	"multirag/internal/core"
	"multirag/internal/datasets"
	"multirag/internal/kg"
	"multirag/internal/linegraph"
	"multirag/internal/llm"
	"multirag/internal/retrieval"
)

// benchOpts is the reduced-scale configuration used by the table/figure
// benchmarks.
func benchOpts() bench.Options {
	return bench.Options{Seed: 1, Scale: 0.12, Out: io.Discard}
}

// --- One bench per table / figure ---

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.TableI(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.TableII(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.TableIII(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.TableIV(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.TableV(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Figure5(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Figure6(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Figure7(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md §4) ---

// benchCorpus builds a small fusion corpus once per benchmark.
func benchCorpus(b *testing.B) *datasets.Dataset {
	b.Helper()
	spec := datasets.Movies(5)
	spec.Entities = 40
	spec.Queries = 20
	return datasets.MustGenerate(spec)
}

func newBenchSystem(b *testing.B, cfg core.Config, files []adapter.RawFile) *core.System {
	b.Helper()
	if cfg.LLM == (llm.Config{}) {
		cfg.LLM = llm.DefaultConfig()
	}
	s := core.NewSystem(cfg)
	if _, err := s.Ingest(files); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkAblationMKA contrasts line-graph lookup against the chunk-and-
// extract fallback (design decision 1: the line graph is the retrieval
// structure).
func BenchmarkAblationMKA(b *testing.B) {
	d := benchCorpus(b)
	for _, variant := range []struct {
		name string
		cfg  core.Config
	}{
		{"linegraph", core.Config{}},
		{"chunks", core.Config{DisableMKA: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			s := newBenchSystem(b, variant.cfg, d.Files)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Query(d.Queries[i%len(d.Queries)].Text)
			}
		})
	}
}

// BenchmarkAblationGraphLevel measures the cost of skipping the coarse stage
// (design decision 2: two-stage confidence).
func BenchmarkAblationGraphLevel(b *testing.B) {
	d := benchCorpus(b)
	for _, variant := range []struct {
		name string
		opts confidence.Options
	}{
		{"two-stage", confidence.Options{}},
		{"node-only", confidence.Options{DisableGraphLevel: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			s := newBenchSystem(b, core.Config{Ablation: variant.opts}, d.Files)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Query(d.Queries[i%len(d.Queries)].Text)
			}
		})
	}
}

// BenchmarkAblationNodeLevel measures the fine stage in isolation.
func BenchmarkAblationNodeLevel(b *testing.B) {
	d := benchCorpus(b)
	for _, variant := range []struct {
		name string
		opts confidence.Options
	}{
		{"full", confidence.Options{}},
		{"graph-only", confidence.Options{DisableNodeLevel: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			s := newBenchSystem(b, core.Config{Ablation: variant.opts}, d.Files)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Query(d.Queries[i%len(d.Queries)].Text)
			}
		})
	}
}

// --- Micro-benchmarks for the core data structures ---

func benchGraph(b *testing.B) *kg.Graph {
	b.Helper()
	d := benchCorpus(b)
	sys := newBenchSystem(b, core.Config{}, d.Files)
	return sys.Graph()
}

func BenchmarkLineGraphBuild(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linegraph.Build(g)
	}
}

func BenchmarkLineGraphTransform(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linegraph.Transform(g)
	}
}

func BenchmarkMCCRun(b *testing.B) {
	g := benchGraph(b)
	sg := linegraph.Build(g)
	var nodes []*linegraph.HomologousNode
	sg.ForEachNode(func(_ string, n *linegraph.HomologousNode) {
		if len(nodes) < 8 {
			nodes = append(nodes, n)
		}
	})
	m := confidence.New(confidence.DefaultConfig(), llm.NewSim(llm.DefaultConfig()), confidence.NewHistoryStore())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(sg, nodes, confidence.Options{})
	}
}

func BenchmarkMISimilarity(b *testing.B) {
	a := []string{"2024-10-01 14:30 departure"}
	c := []string{"2024-10-01 16:45 departure"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		confidence.Similarity(a, c)
	}
}

func BenchmarkRetrievalSearch(b *testing.B) {
	ix := retrieval.NewIndex(retrieval.DefaultDim)
	d := benchCorpus(b)
	fused, err := adapter.NewRegistry().Fuse(d.Files)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range fused {
		for _, c := range core.RenderChunks(n, 64) {
			ix.Add(c)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(d.Queries[i%len(d.Queries)].Text, 5)
	}
}

func BenchmarkAdapterFuse(b *testing.B) {
	d := benchCorpus(b)
	reg := adapter.NewRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Fuse(d.Files); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndToEndQuery(b *testing.B) {
	d := benchCorpus(b)
	s := newBenchSystem(b, core.Config{}, d.Files)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Query(d.Queries[i%len(d.Queries)].Text)
	}
}

// --- Concurrent serving / incremental ingestion benchmarks ---

// BenchmarkAskParallel measures query throughput under snapshot-isolated
// concurrent serving: every goroutine reads the atomically published
// snapshot with no coordination on the hot path.
func BenchmarkAskParallel(b *testing.B) {
	d := benchCorpus(b)
	s := newBenchSystem(b, core.Config{}, d.Files)
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(ctr.Add(1))
			s.Query(d.Queries[i%len(d.Queries)].Text)
		}
	})
}

// repeatedIngestBatches pre-renders small per-batch corpora so the benchmark
// loop measures ingestion, not dataset generation.
func repeatedIngestBatches(n int) [][]adapter.RawFile {
	batches := make([][]adapter.RawFile, n)
	for i := range batches {
		batches[i] = []adapter.RawFile{{
			Domain: "fleet", Source: fmt.Sprintf("src-%03d", i), Name: "feed", Format: "csv",
			Content: []byte(fmt.Sprintf(
				"flight,status,gate\nCA%03d,Delayed,A1\nMU%03d,On time,B2\nQF%03d,Boarding,C3\n",
				i%40, i%40, i%40)),
		}}
	}
	return batches
}

// BenchmarkRepeatedIngest contrasts incremental line-graph maintenance
// (BuildDelta over the batch's new triples) against a full linegraph.Build
// per batch. One op = ingesting 64 successive batches into a fresh system,
// so the full-rebuild variant pays the quadratic blow-up the delta path
// avoids.
func BenchmarkRepeatedIngest(b *testing.B) {
	batches := repeatedIngestBatches(64)
	for _, variant := range []struct {
		name string
		cfg  core.Config
	}{
		{"incremental", core.Config{}},
		{"full-rebuild", core.Config{DisableIncrementalSG: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := core.NewSystem(variant.cfg)
				for _, batch := range batches {
					if _, err := s.Ingest(batch); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkLineGraphBuildDelta isolates the data-structure cost: applying a
// one-triple delta versus rebuilding the whole SG.
func BenchmarkLineGraphBuildDelta(b *testing.B) {
	g := benchGraph(b)
	sg := linegraph.Build(g)
	g.AddEntity("CA981", "Flight", "flights")
	id, err := g.AddTriple(kg.Triple{
		Subject: kg.CanonicalID("CA981"), Predicate: "status", Object: "Delayed",
		Source: "bench", Weight: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	delta := []string{id}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linegraph.BuildDelta(sg, g, delta)
	}
}

// BenchmarkIngestWorkers sweeps the ingestion pool size over one multi-file
// corpus (the Figure-6-style scaling axis for the write path).
func BenchmarkIngestWorkers(b *testing.B) {
	d := benchCorpus(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := core.NewSystem(core.Config{Workers: workers})
				if _, err := s.Ingest(d.Files); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
