package multirag

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestQuickStartDocExample executes the doc.go quick start verbatim so the
// package documentation stays truthful.
func TestQuickStartDocExample(t *testing.T) {
	sys := Open(Config{})
	err := sys.IngestFiles(
		File{Domain: "flights", Source: "airline", Name: "live",
			Format: "json", Content: []byte(`[{"flight":"CA981","status":"Delayed"}]`)},
	)
	if err != nil {
		t.Fatalf("IngestFiles: %v", err)
	}
	ans := sys.Ask("What is the status of CA981?")
	if got := fmt.Sprint(ans.Values); got != "[Delayed]" {
		t.Fatalf("ans.Values printed %q, doc.go promises [Delayed]", got)
	}
}

// TestConcurrentAskDuringIngest is the serving-engine stress test: many Ask
// goroutines hammer the system while ingestion keeps committing batches.
// Run under -race, it proves the snapshot swap protocol publishes only
// consistent states. Every query observes either the pre- or post-batch view
// of its flight — never a torn one.
func TestConcurrentAskDuringIngest(t *testing.T) {
	const askers = 12
	const batches = 8

	sys := Open(Config{Seed: 3, Workers: 4})
	if err := sys.IngestFiles(flightFiles()...); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var asked atomic.Int64
	var wg sync.WaitGroup
	wg.Add(askers)
	for a := 0; a < askers; a++ {
		go func(a int) {
			defer wg.Done()
			for !stop.Load() {
				// The seed corpus answer must hold throughout: later batches
				// add other flights, never new CA981 claims.
				ans := sys.Ask("What is the status of CA981?")
				if !ans.Found || len(ans.Values) != 1 || !strings.EqualFold(ans.Values[0], "delayed") {
					t.Errorf("asker %d saw inconsistent answer: %+v", a, ans.Values)
					return
				}
				if a%3 == 0 {
					sys.Retrieve("What is the status of CA981?", 3)
				}
				if a%3 == 1 {
					sys.Stats()
				}
				asked.Add(1)
			}
		}(a)
	}

	for b := 0; b < batches; b++ {
		err := sys.IngestFiles(File{
			Domain: "flights", Source: fmt.Sprintf("radar-%d", b), Name: "sweep", Format: "csv",
			Content: []byte(fmt.Sprintf("flight,status,gate\nXX%d42,On time,A%d\nYY%d77,Boarding,B%d\n", b, b, b, b)),
		})
		if err != nil {
			t.Fatalf("ingest batch %d: %v", b, err)
		}
		// Force genuine interleaving even on GOMAXPROCS=1: don't commit the
		// next batch until queries progressed against the current snapshot.
		floor := asked.Load() + int64(askers)
		for asked.Load() < floor && !t.Failed() {
			runtime.Gosched()
		}
	}
	stop.Store(true)
	wg.Wait()

	if asked.Load() == 0 {
		t.Fatal("no queries completed during ingestion")
	}
	// All batches must have landed and be queryable.
	for b := 0; b < batches; b++ {
		ans := sys.Ask(fmt.Sprintf("What is the status of XX%d42?", b))
		if !ans.Found {
			t.Fatalf("batch %d not visible after ingest", b)
		}
	}
}

// TestAskConcurrentMatchesSerial checks the fan-out helper returns exactly
// what sequential Ask calls would, in input order.
func TestAskConcurrentMatchesSerial(t *testing.T) {
	sys := Open(Config{Seed: 3, Workers: 8})
	if err := sys.IngestFiles(flightFiles()...); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"What is the status of CA981?",
		"What is the delay reason of CA981?",
		"What is the origin of CA981?",
		"What is the status of ZZ999?",
	}
	// Queries are read-only, so serial and concurrent evaluation see the
	// same snapshot; answers must agree except for history-sensitive
	// confidence annotations.
	want := make([][]string, len(queries))
	for i, q := range queries {
		want[i] = sys.Ask(q).Values
	}
	for round := 0; round < 5; round++ {
		got := sys.AskConcurrent(queries)
		if len(got) != len(queries) {
			t.Fatalf("got %d answers for %d queries", len(got), len(queries))
		}
		for i := range queries {
			if !reflect.DeepEqual(got[i].Values, want[i]) {
				t.Fatalf("round %d query %q: concurrent %v, serial %v", round, queries[i], got[i].Values, want[i])
			}
		}
	}
}

// TestConcurrentIngestFiles races whole IngestFiles batches; each must land
// atomically and the chunk accounting must not lose updates.
func TestConcurrentIngestFiles(t *testing.T) {
	sys := Open(Config{Seed: 1})
	const batches = 5
	var wg sync.WaitGroup
	wg.Add(batches)
	for b := 0; b < batches; b++ {
		go func(b int) {
			defer wg.Done()
			err := sys.IngestFiles(File{
				Domain: "fleet", Source: fmt.Sprintf("src-%d", b), Name: "feed", Format: "json",
				Content: []byte(fmt.Sprintf(`[{"flight":"AB%d10","status":"On time"}]`, b)),
			})
			if err != nil {
				t.Errorf("batch %d: %v", b, err)
			}
		}(b)
	}
	wg.Wait()
	st := sys.Stats()
	if st.Triples != batches {
		t.Fatalf("triples = %d, want %d", st.Triples, batches)
	}
	if st.Chunks != batches {
		t.Fatalf("chunks = %d, want %d (snapshot index lost a batch)", st.Chunks, batches)
	}
}
