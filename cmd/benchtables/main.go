// Command benchtables regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	benchtables                  # everything, paper scale
//	benchtables -table 2        # one table (1..5)
//	benchtables -figure 5       # one figure (5..7)
//	benchtables -retrieval      # retrieval-layer microbenchmarks only
//	benchtables -retrieval -ann # exact microbenchmarks + ANN recall/speedup grid
//	benchtables -ann            # ANN recall-vs-speedup grid only
//	benchtables -graph          # graph-core microbenchmarks only
//	benchtables -query          # query-executor microbenchmarks only
//	benchtables -ingest         # ingest-throughput microbenchmarks only
//	benchtables -serve          # HTTP serving-layer benchmarks only
//	benchtables -wal            # WAL durability benchmarks (throughput tax, recovery, checkpoint)
//	benchtables -cluster        # replicated-read benchmarks (throughput, hedged p99, failover drain)
//	benchtables -scale 0.2      # quick run at 20% workload
//	benchtables -seed 7         # different generation seed
//	benchtables -json BENCH_core.json   # also write per-job wall times as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"multirag/internal/bench"
)

func main() {
	table := flag.Int("table", 0, "regenerate only this table (1-5)")
	figure := flag.Int("figure", 0, "regenerate only this figure (5-7)")
	retr := flag.Bool("retrieval", false, "run only the retrieval-layer microbenchmarks")
	ann := flag.Bool("ann", false, "run the ANN recall-vs-speedup grid (combinable with -retrieval)")
	graph := flag.Bool("graph", false, "run only the graph-core microbenchmarks")
	query := flag.Bool("query", false, "run only the query-executor microbenchmarks")
	ingest := flag.Bool("ingest", false, "run only the ingest-throughput microbenchmarks")
	srv := flag.Bool("serve", false, "run only the HTTP serving-layer benchmarks")
	walFlag := flag.Bool("wal", false, "run only the WAL durability benchmarks (throughput tax, recovery time, checkpoint size)")
	cluster := flag.Bool("cluster", false, "run only the replicated-read benchmarks (replica-count sweep: throughput, hedged vs unhedged p99, failover drain)")
	scale := flag.Float64("scale", 1.0, "workload scale factor (entities and queries)")
	seed := flag.Uint64("seed", 1, "dataset / model seed")
	jsonOut := flag.String("json", "", "write per-job wall-clock timings to this JSON file")
	flag.Parse()

	opts := bench.Options{Seed: *seed, Scale: *scale, Out: os.Stdout}

	type job struct {
		name string
		run  func(bench.Options) error
	}
	var jobs []job
	var graphDetail *bench.GraphReport
	var queryDetail *bench.QueryReport
	var ingestDetail *bench.IngestReport
	var serveDetail *bench.ServeReport
	var retrievalDetail *bench.RetrievalReport
	var annDetail *bench.ANNReport
	var walDetail *bench.WALReport
	var clusterDetail *bench.ClusterReport
	add := func(name string, run func(bench.Options) error) {
		jobs = append(jobs, job{name, run})
	}
	switch {
	case *retr || *ann:
		if *table > 0 || *figure > 0 || *graph || *query || *ingest || *srv {
			fmt.Fprintln(os.Stderr, "benchtables: -retrieval/-ann cannot be combined with -table/-figure/-graph/-query/-ingest/-serve")
			os.Exit(2)
		}
		if *retr {
			add("Retrieval", func(o bench.Options) error {
				rep, err := bench.RetrievalBenchReport(o)
				retrievalDetail = rep
				return err
			})
		}
		if *ann {
			add("ANN", func(o bench.Options) error {
				rep, err := bench.ANNBenchReport(o)
				annDetail = rep
				return err
			})
		}
	case *graph:
		if *table > 0 || *figure > 0 || *query || *ingest || *srv {
			fmt.Fprintln(os.Stderr, "benchtables: -graph cannot be combined with -table/-figure/-query/-ingest/-serve")
			os.Exit(2)
		}
		add("Graph", func(o bench.Options) error {
			rep, err := bench.GraphBenchReport(o)
			graphDetail = rep
			return err
		})
	case *query:
		if *table > 0 || *figure > 0 || *ingest || *srv {
			fmt.Fprintln(os.Stderr, "benchtables: -query cannot be combined with -table/-figure/-ingest/-serve")
			os.Exit(2)
		}
		add("Query", func(o bench.Options) error {
			rep, err := bench.QueryBenchReport(o)
			queryDetail = rep
			return err
		})
	case *ingest:
		if *table > 0 || *figure > 0 || *srv {
			fmt.Fprintln(os.Stderr, "benchtables: -ingest cannot be combined with -table/-figure/-serve")
			os.Exit(2)
		}
		add("Ingest", func(o bench.Options) error {
			rep, err := bench.IngestBenchReport(o)
			ingestDetail = rep
			return err
		})
	case *srv:
		if *table > 0 || *figure > 0 {
			fmt.Fprintln(os.Stderr, "benchtables: -serve cannot be combined with -table/-figure")
			os.Exit(2)
		}
		add("Serve", func(o bench.Options) error {
			rep, err := bench.ServeBenchReport(o)
			serveDetail = rep
			return err
		})
	case *walFlag:
		if *table > 0 || *figure > 0 {
			fmt.Fprintln(os.Stderr, "benchtables: -wal cannot be combined with -table/-figure")
			os.Exit(2)
		}
		add("WAL", func(o bench.Options) error {
			rep, err := bench.WALBenchReport(o)
			walDetail = rep
			return err
		})
	case *cluster:
		if *table > 0 || *figure > 0 {
			fmt.Fprintln(os.Stderr, "benchtables: -cluster cannot be combined with -table/-figure")
			os.Exit(2)
		}
		add("Cluster", func(o bench.Options) error {
			rep, err := bench.ClusterBenchReport(o)
			clusterDetail = rep
			return err
		})
	case *table > 0:
		switch *table {
		case 1:
			add("Table I", bench.TableI)
		case 2:
			add("Table II", bench.TableII)
		case 3:
			add("Table III", bench.TableIII)
		case 4:
			add("Table IV", bench.TableIV)
		case 5:
			add("Table V", bench.TableV)
		default:
			fmt.Fprintf(os.Stderr, "benchtables: unknown table %d\n", *table)
			os.Exit(2)
		}
	case *figure > 0:
		switch *figure {
		case 5:
			add("Figure 5", bench.Figure5)
		case 6:
			add("Figure 6", bench.Figure6)
		case 7:
			add("Figure 7", bench.Figure7)
		default:
			fmt.Fprintf(os.Stderr, "benchtables: unknown figure %d\n", *figure)
			os.Exit(2)
		}
	default:
		add("Table I", bench.TableI)
		add("Table II", bench.TableII)
		add("Table III", bench.TableIII)
		add("Table IV", bench.TableIV)
		add("Table V", bench.TableV)
		add("Figure 5", bench.Figure5)
		add("Figure 6", bench.Figure6)
		add("Figure 7", bench.Figure7)
	}
	type timing struct {
		Name    string  `json:"name"`
		Seconds float64 `json:"seconds"`
	}
	report := struct {
		Seed      uint64                 `json:"seed"`
		Scale     float64                `json:"scale"`
		Jobs      []timing               `json:"jobs"`
		Seconds   float64                `json:"total_seconds"`
		Graph     *bench.GraphReport     `json:"graph,omitempty"`
		Query     *bench.QueryReport     `json:"query,omitempty"`
		Ingest    *bench.IngestReport    `json:"ingest,omitempty"`
		Serve     *bench.ServeReport     `json:"serve,omitempty"`
		Retrieval *bench.RetrievalReport `json:"retrieval,omitempty"`
		ANN       *bench.ANNReport       `json:"ann,omitempty"`
		WAL       *bench.WALReport       `json:"wal,omitempty"`
		Cluster   *bench.ClusterReport   `json:"cluster,omitempty"`
	}{Seed: *seed, Scale: *scale}
	for _, j := range jobs {
		start := time.Now()
		if err := j.run(opts); err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %s: %v\n", j.name, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		report.Jobs = append(report.Jobs, timing{Name: j.name, Seconds: elapsed.Seconds()})
		report.Seconds += elapsed.Seconds()
		fmt.Fprintf(os.Stdout, "\n[%s regenerated in %v]\n\n", j.name, elapsed.Round(time.Millisecond))
	}
	report.Graph = graphDetail
	report.Query = queryDetail
	report.Ingest = ingestDetail
	report.Serve = serveDetail
	report.Retrieval = retrievalDetail
	report.ANN = annDetail
	report.WAL = walDetail
	report.Cluster = clusterDetail
	if *jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: marshal timings: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
	}
}
