package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"multirag"
	"multirag/internal/par"
	"multirag/internal/serve"
)

// The -load and -ingest-load harnesses measure the real serving path: every
// request travels through the HTTP front door (admission, batch formation,
// bounded queues), either an in-process `multirag serve` on a loopback
// listener or an external server named by -target.

// startLoadServer brings up an in-process front door over sys on a loopback
// listener and returns its base URL plus a shutdown func. Admission is left
// unlimited — the harness offers the load, the bounded queues and committer
// backpressure do the shedding — so rejected counts reflect real saturation,
// not a self-imposed rate cap.
func startLoadServer(sys *multirag.System, policy string) (string, func()) {
	srv, err := serve.New(serve.Config{
		System:       sys,
		Policy:       policy,
		QueueTimeout: 30 * time.Second,
	})
	if err != nil {
		fatal("load server: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal("load server listen: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() {
		_ = hs.Close()
		srv.Close()
	}
}

// loadClient builds an HTTP client whose connection pool matches the
// harness concurrency, so keep-alive reuse works instead of a dial per
// request.
func loadClient(conns int) *http.Client {
	if conns < 2 {
		conns = 2
	}
	return &http.Client{Transport: &http.Transport{
		MaxIdleConns:        2 * conns,
		MaxIdleConnsPerHost: 2 * conns,
	}}
}

// postStatus POSTs one JSON body and returns the HTTP status, the server's
// Retry-After hint in seconds (0 when absent) and the response body, fully
// read so the connection is reusable.
func postStatus(client *http.Client, url string, body any) (int, time.Duration, []byte, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, 0, nil, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, 0, nil, err
	}
	respBody, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	var retryAfter time.Duration
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return resp.StatusCode, retryAfter, respBody, nil
}

// fetchMetrics reads the server's /v1/metrics snapshot.
func fetchMetrics(client *http.Client, base string) (serve.MetricsSnapshot, error) {
	var snap serve.MetricsSnapshot
	resp, err := client.Get(base + "/v1/metrics")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("metrics: HTTP %d", resp.StatusCode)
	}
	return snap, json.NewDecoder(resp.Body).Decode(&snap)
}

// loadOutcome classifies one request of a load run. Degraded answers,
// deadline expiries and cancellations are soft outcomes — the server behaved
// as designed under pressure — reported separately from hard failures
// (transport errors, unexpected statuses).
type loadOutcome int32

const (
	outcomeOK loadOutcome = iota
	outcomeDegraded // 200 with Answer.Degraded: partial answer delivered
	outcomeRejected // 429: admission or queue bound
	outcomeTimedOut // 503: queue timeout / draining / canceled
	outcomeDeadline // 504: end-to-end deadline exceeded
	outcomeError    // transport failure or unexpected status
)

func classify(status int, body []byte, err error) loadOutcome {
	switch {
	case err != nil:
		return outcomeError
	case status == http.StatusOK:
		var ans struct{ Degraded bool }
		if json.Unmarshal(body, &ans) == nil && ans.Degraded {
			return outcomeDegraded
		}
		return outcomeOK
	case status == http.StatusTooManyRequests:
		return outcomeRejected
	case status == http.StatusServiceUnavailable:
		return outcomeTimedOut
	case status == http.StatusGatewayTimeout:
		return outcomeDeadline
	default:
		return outcomeError
	}
}

// maxQueryRetries bounds how often a shed query (a response carrying
// Retry-After) is retried before its outcome is recorded as-is.
const maxQueryRetries = 2

// postQuery runs one query request, honoring the server's Retry-After hint
// on shed responses: a 429/503 that carries the hint is retried after
// sleeping it out (bounded by maxQueryRetries), so well-behaved backoff is
// what the harness measures — the sleeps land in the request's latency, not
// outside it. Each retry increments retries.
func postQuery(client *http.Client, url string, req serve.QueryRequest, retries *atomic.Int64) loadOutcome {
	for attempt := 0; ; attempt++ {
		status, retryAfter, body, err := postStatus(client, url, req)
		oc := classify(status, body, err)
		if (oc != outcomeRejected && oc != outcomeTimedOut) ||
			retryAfter <= 0 || attempt >= maxQueryRetries {
			return oc
		}
		retries.Add(1)
		time.Sleep(retryAfter)
	}
}

// runLoad drives the workload through the HTTP serving path and reports the
// per-request latency distribution — p50/p95/p99 by the shared nearest-rank
// helper, plus rejected/timed-out counts and the server's own per-class view.
//
// With -qps 0 a closed loop keeps exactly `workers` requests in flight. With
// a target rate, every request is scheduled at the absolute instant
// start + i*interval and launched by its own goroutine: a lagging request
// can never push later launch times (no cumulative drift), and because each
// latency is measured from the *scheduled* instant, coordinated omission
// shows up in the tail instead of being hidden. The report states offered
// vs. achieved rate so a harness that could not sustain the offered rate is
// visible rather than silently degraded.
func runLoad(sys *multirag.System, queries []string, qps float64, workers int, target, policy, class string, deadline time.Duration) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	base := target
	if base == "" {
		var shutdown func()
		base, shutdown = startLoadServer(sys, policy)
		defer shutdown()
	}
	client := loadClient(workers)
	url := base + "/v1/query"
	deadlineMillis := int64(deadline / time.Millisecond)

	n := len(queries)
	lat := make([]time.Duration, n)
	outcomes := make([]loadOutcome, n)
	var shedRetries atomic.Int64
	start := time.Now()
	if qps <= 0 {
		par.ForEach(workers, n, func(i int) {
			t0 := time.Now()
			outcomes[i] = postQuery(client, url,
				serve.QueryRequest{Query: queries[i], Class: class, DeadlineMillis: deadlineMillis}, &shedRetries)
			lat[i] = time.Since(t0)
		})
	} else {
		interval := time.Duration(float64(time.Second) / qps)
		var wg sync.WaitGroup
		wg.Add(n)
		for i := 0; i < n; i++ {
			go func(i int, sched time.Time) {
				defer wg.Done()
				if d := time.Until(sched); d > 0 {
					time.Sleep(d)
				}
				outcomes[i] = postQuery(client, url,
					serve.QueryRequest{Query: queries[i], Class: class, DeadlineMillis: deadlineMillis}, &shedRetries)
				// Latency from the scheduled instant: queueing delay the
				// system caused — including launch lateness — counts.
				lat[i] = time.Since(sched)
			}(i, start.Add(time.Duration(i)*interval))
		}
		wg.Wait()
	}
	total := time.Since(start)

	var okLat []time.Duration
	counts := map[loadOutcome]int{}
	for i, o := range outcomes {
		counts[o]++
		if o == outcomeOK {
			okLat = append(okLat, lat[i])
		}
	}

	mode := "closed loop"
	if qps > 0 {
		mode = fmt.Sprintf("open loop @ %.0f qps offered", qps)
	}
	fmt.Printf("load test: %d requests over HTTP (%s), %s, %d workers, policy %s, class %s\n",
		n, base, mode, workers, policy, class)
	if deadline > 0 {
		fmt.Printf("  deadline: %v per request (deadline_ms)\n", deadline)
	}
	achieved := float64(n) / total.Seconds()
	if qps > 0 {
		fmt.Printf("  rate: offered %.0f qps, achieved %.0f qps (%.1f%%) in %v\n",
			qps, achieved, 100*achieved/qps, total.Round(time.Millisecond))
	} else {
		fmt.Printf("  throughput: %.0f qps achieved in %v\n", achieved, total.Round(time.Millisecond))
	}
	fmt.Printf("  outcomes: %d ok, %d degraded (200 partial), %d rejected (429), %d timed out (503), %d deadline exceeded (504), %d errors; %d shed retries honored Retry-After\n",
		counts[outcomeOK], counts[outcomeDegraded], counts[outcomeRejected],
		counts[outcomeTimedOut], counts[outcomeDeadline], counts[outcomeError], shedRetries.Load())
	if len(okLat) > 0 {
		qs := serve.Quantiles(okLat, 0.50, 0.95, 0.99, 1)
		fmt.Printf("  latency: p50 %v  p95 %v  p99 %v  max %v\n",
			qs[0].Round(time.Microsecond), qs[1].Round(time.Microsecond),
			qs[2].Round(time.Microsecond), qs[3].Round(time.Microsecond))
	}
	printServerView(client, base)
}

// Retry policy for shed ingest requests: exponential backoff from
// ingestRetryBase doubling per attempt, equal-jittered, never under the
// server's Retry-After hint and never over ingestRetryCap. A file still shed
// after maxIngestRetries retries is a hard failure, counted separately.
const (
	ingestRetryBase  = 2 * time.Millisecond
	ingestRetryCap   = time.Second
	maxIngestRetries = 20
)

// ingestRetryDelay computes the wait before retry `attempt` (0-based).
func ingestRetryDelay(attempt int, retryAfter time.Duration) time.Duration {
	d := ingestRetryBase << min(attempt, 16)
	if d <= 0 || d > ingestRetryCap {
		d = ingestRetryCap
	}
	d = d/2 + rand.N(d/2+1) // equal jitter: [d/2, d]
	if retryAfter > d {
		d = retryAfter
	}
	return min(d, ingestRetryCap)
}

// postIngest posts one file, retrying 429 (committer backpressure) and 503
// (draining / queue timeout) sheds with capped exponential backoff + jitter,
// honoring the server's Retry-After hint. Returns ok=false with a nil error
// when the retry budget is exhausted — a hard failure the caller counts —
// and a non-nil error only for transport failures and unexpected statuses,
// which abort the whole run.
func postIngest(client *http.Client, url string, req serve.IngestRequest, stop *atomic.Bool, r429, r503 *atomic.Int64) (bool, error) {
	for attempt := 0; ; attempt++ {
		status, retryAfter, _, err := postStatus(client, url, req)
		switch {
		case err != nil:
			return false, err
		case status == http.StatusOK:
			return true, nil
		case status == http.StatusTooManyRequests:
			r429.Add(1)
		case status == http.StatusServiceUnavailable:
			r503.Add(1)
		default:
			return false, fmt.Errorf("HTTP %d", status)
		}
		if attempt >= maxIngestRetries || stop.Load() {
			return false, nil
		}
		time.Sleep(ingestRetryDelay(attempt, retryAfter))
	}
}

// runIngestLoad drives n synthetic files through the HTTP ingest endpoint
// from a shared stream drained by `producers` goroutines — the ingest mirror
// of the query -load mode. Shed requests (429/503) are retried with capped
// exponential backoff honoring Retry-After, so a rejection delays the file
// instead of silently shrinking the offered load; each request's latency
// spans admission, every backoff wait and the group-commit publish. Retry
// counts are reported separately from hard failures (files still shed after
// the retry budget). A failing producer does not abort the process mid-test:
// the first transport error is recorded, every producer drains, and the
// error is reported from the main goroutine.
func runIngestLoad(sys *multirag.System, n, producers int, target string) {
	if producers <= 0 {
		producers = runtime.GOMAXPROCS(0)
	}
	base := target
	if base == "" {
		var shutdown func()
		base, shutdown = startLoadServer(sys, serve.PolicyFCFS)
		defer shutdown()
	}
	client := loadClient(producers)
	url := base + "/v1/ingest"

	lat := make([]time.Duration, n)
	var (
		next       atomic.Int64
		stop       atomic.Bool
		retries429 atomic.Int64
		retries503 atomic.Int64
		hardFails  atomic.Int64
		errOnce    sync.Once
		firstErr   error
	)
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(producers)
	for w := 0; w < producers; w++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				t0 := time.Now()
				ok, err := postIngest(client, url, ingestRequest(i), &stop, &retries429, &retries503)
				if err != nil {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("ingest file %d: %w", i, err)
						stop.Store(true)
					})
					return
				}
				if stop.Load() {
					return
				}
				if !ok {
					hardFails.Add(1)
					continue
				}
				lat[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	total := time.Since(start)
	if firstErr != nil {
		fatal("ingest-load: %v", firstErr)
	}

	st := sys.Stats()
	if target != "" {
		// The corpus lives behind -target; read its stats over the wire.
		if remote, err := fetchStats(client, base); err == nil {
			st = remote
		}
	}
	// Quantiles over committed files only; hard-failed files have no commit.
	okLat := make([]time.Duration, 0, n)
	for _, d := range lat {
		if d > 0 {
			okLat = append(okLat, d)
		}
	}
	committed := int64(len(okLat))
	fmt.Printf("ingest load test: %d files over HTTP (%s), %d producers\n", n, base, producers)
	fmt.Printf("  throughput: %.0f files/s in %v (%d committed, %d triples, %d chunks indexed)\n",
		float64(committed)/total.Seconds(), total.Round(time.Millisecond), committed, st.Triples, st.Chunks)
	fmt.Printf("  sheds retried: %d backpressure (429), %d unavailable (503); hard failures: %d files dropped after %d retries each\n",
		retries429.Load(), retries503.Load(), hardFails.Load(), maxIngestRetries)
	if len(okLat) > 0 {
		qs := serve.Quantiles(okLat, 0.50, 0.95, 0.99, 1)
		fmt.Printf("  commit latency: p50 %v  p95 %v  p99 %v  max %v\n",
			qs[0].Round(time.Microsecond), qs[1].Round(time.Microsecond),
			qs[2].Round(time.Microsecond), qs[3].Round(time.Microsecond))
	}
	printServerView(client, base)
}

// fetchStats reads the served corpus statistics.
func fetchStats(client *http.Client, base string) (multirag.Stats, error) {
	var st multirag.Stats
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("stats: HTTP %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// printServerView reports the server's own per-class accounting — the same
// numbers /v1/metrics serves in production, computed by the shared
// nearest-rank percentile helper.
func printServerView(client *http.Client, base string) {
	snap, err := fetchMetrics(client, base)
	if err != nil {
		fmt.Printf("  (metrics endpoint unavailable: %v)\n", err)
		return
	}
	fmt.Printf("  server view (policy %s, Jain fairness %.3f):\n", snap.Policy, snap.JainFairness)
	for _, c := range snap.Classes {
		if c.Completed+c.RejectedAdmission+c.RejectedQueue+c.TimedOut+c.Failed+
			c.DeadlineExceeded+c.Canceled == 0 {
			continue
		}
		fmt.Printf("    %-12s %6d ok (%d degraded)  %4d rejected  %4d timeout  %4d deadline  %4d canceled  p50 %s  p95 %s  p99 %s\n",
			c.Name, c.Completed, c.Degraded, c.RejectedAdmission+c.RejectedQueue, c.TimedOut,
			c.DeadlineExceeded, c.Canceled,
			fmtMicros(c.P50Micros), fmtMicros(c.P95Micros), fmtMicros(c.P99Micros))
	}
	for _, b := range snap.Breakers {
		if b.Trips > 0 || b.State != "closed" {
			fmt.Printf("    breaker %-14s state=%s trips=%d fast-fails=%d\n",
				b.Name, b.State, b.Trips, b.FastFails)
		}
	}
	if snap.Durability.Durable && snap.Durability.WALAppendErr != "" {
		fmt.Printf("    durability: WAL append latched: %s\n", snap.Durability.WALAppendErr)
	}
}

func fmtMicros(us float64) string {
	return time.Duration(us * float64(time.Microsecond)).Round(time.Microsecond).String()
}

// ingestRequest synthesises the i-th file of the ingest-load stream as an
// HTTP payload: a small kg-format feed whose subjects recur across the
// stream, so homologous groups keep growing the way repeated multi-source
// feeds grow them in practice.
func ingestRequest(i int) serve.IngestRequest {
	subj := fmt.Sprintf("Flight %d", i%200)
	content := fmt.Sprintf("%s|status|%s\n%s|gate|G%d\n%s|delay_reason|%s\n",
		subj, []string{"On time", "Delayed", "Boarding"}[i%3],
		subj, i%40,
		subj, []string{"Weather", "Crew", "Traffic"}[i%3])
	return serve.IngestRequest{Files: []serve.IngestFile{{
		Domain:  "flights",
		Source:  fmt.Sprintf("feed-%d", i%8),
		Name:    fmt.Sprintf("update-%d", i),
		Format:  "kg",
		Content: content,
	}}}
}
