// Command multirag is the interactive CLI for the MultiRAG library: it
// ingests data files into a knowledge-guided retrieval system, answers
// queries with multi-level confidence filtering, and serves the pipeline
// over HTTP with SLO-aware admission control.
//
// Usage:
//
//	multirag -ingest flights.csv,live.json,alerts.txt -domain flights -ask "What is the status of CA981?"
//	multirag -demo                 # built-in CA981 case-study corpus
//	multirag -demo -stats          # corpus statistics after ingestion
//	multirag -demo -ask "..." -explain
//	multirag serve -demo -addr :8473        # HTTP front door (see multirag serve -h)
//	multirag serve -data-dir /var/lib/multirag   # durable: WAL + checkpoints, resumes on restart
//	multirag recover -data-dir /var/lib/multirag # inspect/compact a durable directory offline
//	multirag -demo -load 2000               # closed-loop HTTP latency test (p50/p95/p99)
//	multirag -demo -load 2000 -qps 500      # open-loop at a target arrival rate
//	multirag -demo -load 2000 -deadline 50ms     # per-request end-to-end deadline (deadline_ms)
//	multirag -demo -load 2000 -target http://host:8473   # aim at a running server
//	multirag -ingest-load 500 -producers 4          # pipelined ingest load test over HTTP
//	multirag -ingest-load 500 -producers 4 -serial-ingest   # serialized baseline
//	multirag -demo -ann -nprobe 16 -ask "..."       # approximate retrieval tier (IVF + exact re-rank)
//	multirag -demo -ann -ann-int8 -load 2000        # int8 coarse pass, exact re-rank scores
//
// The -load and -ingest-load harnesses drive the real serving path: they
// start an in-process `multirag serve` front door (or aim at -target) and
// measure HTTP request latency, so the numbers include admission, batch
// formation and queueing — not just engine time.
//
// File formats are inferred from extensions: .csv, .json, .xml, .kg, .txt.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"multirag"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			runServeCmd(os.Args[2:])
			return
		case "recover":
			runRecoverCmd(os.Args[2:])
			return
		}
	}
	var (
		ingest  = flag.String("ingest", "", "comma-separated data files to ingest")
		domain  = flag.String("domain", "data", "domain label for ingested files")
		ask     = flag.String("ask", "", "question to answer")
		demo    = flag.Bool("demo", false, "load the built-in CA981 case-study corpus")
		stats   = flag.Bool("stats", false, "print corpus statistics")
		explain = flag.Bool("explain", false, "show trusted evidence and confidence detail")
		seed    = flag.Uint64("seed", 1, "simulated model seed")
		workers = flag.Int("workers", 0, "worker pool size: ingestion, query fan-out and -load concurrency (0 = GOMAXPROCS)")
		shards  = flag.Int("shards", 0, "retrieval index shard count (0 = default, 1 = flat scan)")
		noPost  = flag.Bool("no-postings", false, "disable the retrieval postings pre-filter")
		ann     = flag.Bool("ann", false, "approximate retrieval: IVF coarse quantizer with exact re-rank (recall < 1, see make bench-ann)")
		nprobe  = flag.Int("nprobe", 0, "coarse-quantizer cells probed per ANN query (0 = default; more = higher recall)")
		annInt8 = flag.Bool("ann-int8", false, "run the ANN coarse pass over int8-quantized vectors (scores stay exact)")
		cache   = flag.Int("cache", 0, "answer cache size in entries (0 = disabled)")
		k       = flag.Int("k", 5, "documents to retrieve with -retrieve")
		retr    = flag.String("retrieve", "", "retrieve supporting documents for a query")
		load    = flag.Int("load", 0, "run an HTTP query load test of this many requests (0 = off)")
		qps     = flag.Float64("qps", 0, "offered arrival rate for -load (0 = closed loop at pool concurrency)")
		dline   = flag.Duration("deadline", 0, "per-request end-to-end deadline for -load, sent as deadline_ms (0 = none)")
		target  = flag.String("target", "", "base URL of a running `multirag serve` for -load/-ingest-load (default: in-process server)")
		policy  = flag.String("policy", "fcfs", "batch-formation policy of the in-process load server (fcfs|sjf|priority)")
		class   = flag.String("class", "interactive", "SLO class -load requests are tagged with")
		ingLoad = flag.Int("ingest-load", 0, "run an HTTP ingest load test of this many synthetic files (0 = off)")
		prods   = flag.Int("producers", 0, "concurrent producers for -ingest-load (0 = GOMAXPROCS)")
		serial  = flag.Bool("serial-ingest", false, "use the serialized ingest baseline instead of the pipelined group commit (A/B)")
	)
	flag.Parse()

	sys := multirag.Open(multirag.Config{
		Seed:            *seed,
		Workers:         *workers,
		Shards:          *shards,
		DisablePostings: *noPost,
		ANN:             *ann,
		NProbe:          *nprobe,
		ANNInt8:         *annInt8,
		AnswerCache:     *cache,
		SerializeIngest: *serial,
	})

	if *demo {
		if err := sys.IngestFiles(demoFiles()...); err != nil {
			fatal("demo ingest: %v", err)
		}
	}
	if *ingest != "" {
		files, err := readFiles(*ingest, *domain)
		if err != nil {
			fatal("%v", err)
		}
		if err := sys.IngestFiles(files...); err != nil {
			fatal("ingest: %v", err)
		}
	}
	if *ingLoad > 0 {
		runIngestLoad(sys, *ingLoad, *prods, *target)
	}
	if !*demo && *ingest == "" && *ingLoad == 0 && *target == "" {
		fmt.Fprintln(os.Stderr, "multirag: nothing ingested; use -demo, -ingest or -ingest-load (see -h)")
		os.Exit(2)
	}

	if *stats {
		st := sys.Stats()
		fmt.Printf("entities:          %d\n", st.Entities)
		fmt.Printf("triples:           %d\n", st.Triples)
		fmt.Printf("homologous nodes:  %d\n", st.HomologousNodes)
		fmt.Printf("isolated claims:   %d\n", st.IsolatedClaims)
		fmt.Printf("chunks indexed:    %d\n", st.Chunks)
		fmt.Printf("build time:        %v\n", st.BuildTime)
	}

	if *retr != "" {
		for i, doc := range sys.Retrieve(*retr, *k) {
			fmt.Printf("%d. %s\n", i+1, doc)
		}
	}

	if *load > 0 {
		queries := loadQueries(*load, *ask)
		runLoad(sys, queries, *qps, *workers, *target, *policy, *class, *dline)
	}

	if *ask != "" {
		ans := sys.Ask(*ask)
		if !ans.Found {
			fmt.Println("no trustworthy answer found")
			return
		}
		fmt.Printf("answer: %s\n", strings.Join(ans.Values, "; "))
		if *explain {
			fmt.Printf("intent: %s\n", ans.Intent)
			for _, gc := range ans.GraphConfidences {
				fmt.Printf("subgraph confidence C(G) = %.2f\n", gc)
			}
			for _, ev := range ans.Trusted {
				fmt.Printf("  trusted: %-24s source=%-16s confidence=%.2f\n",
					ev.Value, ev.Source, ev.Confidence)
			}
			fmt.Printf("  rejected claims: %d\n", ans.Rejected)
		}
	}
}

// readFiles loads a comma-separated path list as ingest files, inferring
// formats from extensions.
func readFiles(paths, domain string) ([]multirag.File, error) {
	var files []multirag.File
	for _, path := range strings.Split(paths, ",") {
		path = strings.TrimSpace(path)
		content, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("read %s: %v", path, err)
		}
		format, err := formatOf(path)
		if err != nil {
			return nil, err
		}
		base := filepath.Base(path)
		files = append(files, multirag.File{
			Domain:  domain,
			Source:  strings.TrimSuffix(base, filepath.Ext(base)),
			Name:    base,
			Format:  format,
			Content: content,
		})
	}
	return files, nil
}

func formatOf(path string) (string, error) {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".csv":
		return "csv", nil
	case ".json":
		return "json", nil
	case ".xml":
		return "xml", nil
	case ".kg":
		return "kg", nil
	case ".txt", ".text", ".md":
		return "text", nil
	}
	return "", fmt.Errorf("multirag: cannot infer format of %q (use .csv/.json/.xml/.kg/.txt)", path)
}

// loadQueries builds the load-test workload: the -ask question when given,
// otherwise a mixed-intent sweep over the demo corpus (lookup, nested
// lookup, multi-hop-shaped, comparison, fallback).
func loadQueries(n int, ask string) []string {
	base := []string{ask}
	if ask == "" {
		base = []string{
			"What is the status of CA981?",
			"What is the delay reason of CA981?",
			"What is the departure time of CA981?",
			"Do CA981 and MU588 have the same status?",
			"Anything new about CA981 today",
		}
	}
	out := make([]string, n)
	for i := range out {
		out[i] = base[i%len(base)]
	}
	return out
}

func demoFiles() []multirag.File {
	return []multirag.File{
		{Domain: "flights", Source: "airport-api", Name: "schedule", Format: "csv",
			Content: []byte("flight,origin,destination,status,departure_time\nCA981,PEK,JFK,Delayed,2024-10-01 14:30\nMU588,PVG,LAX,On time,2024-10-01 15:10\n")},
		{Domain: "flights", Source: "airline-app", Name: "live", Format: "json",
			Content: []byte(`[{"flight":"CA981","status":"Delayed","delay_reason":"Typhoon"},{"flight":"MU588","status":"On time"}]`)},
		{Domain: "flights", Source: "weather-feed", Name: "alerts", Format: "text",
			Content: []byte("Typhoon Haikui impacts PEK departures after 14:00. The status of CA981 is Delayed. The delay reason of CA981 is Typhoon.")},
		{Domain: "flights", Source: "forum-user", Name: "posts", Format: "text",
			Content: []byte("The status of CA981 is On time.")},
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "multirag: "+format+"\n", args...)
	os.Exit(1)
}
