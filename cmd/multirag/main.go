// Command multirag is the interactive CLI for the MultiRAG library: it
// ingests data files into a knowledge-guided retrieval system and answers
// queries with multi-level confidence filtering.
//
// Usage:
//
//	multirag -ingest flights.csv,live.json,alerts.txt -domain flights -ask "What is the status of CA981?"
//	multirag -demo                 # built-in CA981 case-study corpus
//	multirag -demo -stats          # corpus statistics after ingestion
//	multirag -demo -ask "..." -explain
//	multirag -demo -load 2000             # closed-loop latency test (p50/p95/p99)
//	multirag -demo -load 2000 -qps 500    # open-loop at a target arrival rate
//	multirag -ingest-load 500 -producers 4          # pipelined ingest load test
//	multirag -ingest-load 500 -producers 4 -serial-ingest   # serialized baseline
//
// File formats are inferred from extensions: .csv, .json, .xml, .kg, .txt.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"multirag"
	"multirag/internal/par"
)

func main() {
	var (
		ingest  = flag.String("ingest", "", "comma-separated data files to ingest")
		domain  = flag.String("domain", "data", "domain label for ingested files")
		ask     = flag.String("ask", "", "question to answer")
		demo    = flag.Bool("demo", false, "load the built-in CA981 case-study corpus")
		stats   = flag.Bool("stats", false, "print corpus statistics")
		explain = flag.Bool("explain", false, "show trusted evidence and confidence detail")
		seed    = flag.Uint64("seed", 1, "simulated model seed")
		workers = flag.Int("workers", 0, "worker pool size: ingestion, query fan-out and -load concurrency (0 = GOMAXPROCS)")
		shards  = flag.Int("shards", 0, "retrieval index shard count (0 = default, 1 = flat scan)")
		noPost  = flag.Bool("no-postings", false, "disable the retrieval postings pre-filter")
		cache   = flag.Int("cache", 0, "answer cache size in entries (0 = disabled)")
		k       = flag.Int("k", 5, "documents to retrieve with -retrieve")
		retr    = flag.String("retrieve", "", "retrieve supporting documents for a query")
		load    = flag.Int("load", 0, "run a query load test of this many requests (0 = off)")
		qps     = flag.Float64("qps", 0, "offered arrival rate for -load (0 = closed loop at pool concurrency)")
		ingLoad = flag.Int("ingest-load", 0, "run an ingest load test of this many synthetic files (0 = off)")
		prods   = flag.Int("producers", 0, "concurrent producers for -ingest-load (0 = GOMAXPROCS)")
		serial  = flag.Bool("serial-ingest", false, "use the serialized ingest baseline instead of the pipelined group commit (A/B)")
	)
	flag.Parse()

	sys := multirag.Open(multirag.Config{
		Seed:            *seed,
		Workers:         *workers,
		Shards:          *shards,
		DisablePostings: *noPost,
		AnswerCache:     *cache,
		SerializeIngest: *serial,
	})

	if *demo {
		if err := sys.IngestFiles(demoFiles()...); err != nil {
			fatal("demo ingest: %v", err)
		}
	}
	if *ingest != "" {
		var files []multirag.File
		for _, path := range strings.Split(*ingest, ",") {
			path = strings.TrimSpace(path)
			content, err := os.ReadFile(path)
			if err != nil {
				fatal("read %s: %v", path, err)
			}
			format, err := formatOf(path)
			if err != nil {
				fatal("%v", err)
			}
			base := filepath.Base(path)
			files = append(files, multirag.File{
				Domain:  *domain,
				Source:  strings.TrimSuffix(base, filepath.Ext(base)),
				Name:    base,
				Format:  format,
				Content: content,
			})
		}
		if err := sys.IngestFiles(files...); err != nil {
			fatal("ingest: %v", err)
		}
	}
	if *ingLoad > 0 {
		runIngestLoad(sys, *ingLoad, *prods)
	}
	if !*demo && *ingest == "" && *ingLoad == 0 {
		fmt.Fprintln(os.Stderr, "multirag: nothing ingested; use -demo, -ingest or -ingest-load (see -h)")
		os.Exit(2)
	}

	if *stats {
		st := sys.Stats()
		fmt.Printf("entities:          %d\n", st.Entities)
		fmt.Printf("triples:           %d\n", st.Triples)
		fmt.Printf("homologous nodes:  %d\n", st.HomologousNodes)
		fmt.Printf("isolated claims:   %d\n", st.IsolatedClaims)
		fmt.Printf("chunks indexed:    %d\n", st.Chunks)
		fmt.Printf("build time:        %v\n", st.BuildTime)
	}

	if *retr != "" {
		for i, doc := range sys.Retrieve(*retr, *k) {
			fmt.Printf("%d. %s\n", i+1, doc)
		}
	}

	if *load > 0 {
		queries := loadQueries(*load, *ask)
		runLoad(sys, queries, *qps, *workers)
	}

	if *ask != "" {
		ans := sys.Ask(*ask)
		if !ans.Found {
			fmt.Println("no trustworthy answer found")
			return
		}
		fmt.Printf("answer: %s\n", strings.Join(ans.Values, "; "))
		if *explain {
			fmt.Printf("intent: %s\n", ans.Intent)
			for _, gc := range ans.GraphConfidences {
				fmt.Printf("subgraph confidence C(G) = %.2f\n", gc)
			}
			for _, ev := range ans.Trusted {
				fmt.Printf("  trusted: %-24s source=%-16s confidence=%.2f\n",
					ev.Value, ev.Source, ev.Confidence)
			}
			fmt.Printf("  rejected claims: %d\n", ans.Rejected)
		}
	}
}

func formatOf(path string) (string, error) {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".csv":
		return "csv", nil
	case ".json":
		return "json", nil
	case ".xml":
		return "xml", nil
	case ".kg":
		return "kg", nil
	case ".txt", ".text", ".md":
		return "text", nil
	}
	return "", fmt.Errorf("multirag: cannot infer format of %q (use .csv/.json/.xml/.kg/.txt)", path)
}

// loadQueries builds the load-test workload: the -ask question when given,
// otherwise a mixed-intent sweep over the demo corpus (lookup, nested
// lookup, multi-hop-shaped, comparison, fallback).
func loadQueries(n int, ask string) []string {
	base := []string{ask}
	if ask == "" {
		base = []string{
			"What is the status of CA981?",
			"What is the delay reason of CA981?",
			"What is the departure time of CA981?",
			"Do CA981 and MU588 have the same status?",
			"Anything new about CA981 today",
		}
	}
	out := make([]string, n)
	for i := range out {
		out[i] = base[i%len(base)]
	}
	return out
}

// runLoad drives the workload through the serving pool and reports the
// per-request latency distribution — p50/p95/p99, not just aggregate
// seconds, since tail latency is what a heavily-loaded deployment feels.
// With -qps 0 a closed loop keeps exactly `workers` requests in flight;
// with a target rate, requests are dispatched open-loop on the arrival
// schedule and latency includes any queueing delay the system caused.
func runLoad(sys *multirag.System, queries []string, qps float64, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(queries)
	lat := make([]time.Duration, n)
	start := time.Now()
	if qps <= 0 {
		par.ForEach(workers, n, func(i int) {
			t0 := time.Now()
			sys.Ask(queries[i])
			lat[i] = time.Since(t0)
		})
	} else {
		interval := time.Duration(float64(time.Second) / qps)
		var wg sync.WaitGroup
		wg.Add(n)
		for i := 0; i < n; i++ {
			sched := start.Add(time.Duration(i) * interval)
			if d := time.Until(sched); d > 0 {
				time.Sleep(d)
			}
			go func(i int, sched time.Time) {
				defer wg.Done()
				sys.Ask(queries[i])
				lat[i] = time.Since(sched)
			}(i, sched)
		}
		wg.Wait()
	}
	total := time.Since(start)
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(p float64) time.Duration {
		return sorted[int(p*float64(n-1))]
	}
	mode := "closed loop"
	if qps > 0 {
		mode = fmt.Sprintf("open loop @ %.0f qps offered", qps)
	}
	fmt.Printf("load test: %d requests, %s, %d workers\n", n, mode, workers)
	fmt.Printf("  throughput: %.0f qps achieved in %v\n", float64(n)/total.Seconds(), total.Round(time.Millisecond))
	fmt.Printf("  latency: p50 %v  p95 %v  p99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), sorted[n-1].Round(time.Microsecond))
}

// runIngestLoad drives n synthetic files through IngestFiles from a shared
// stream drained by `producers` goroutines — the ingest mirror of the query
// -load mode. It reports aggregate files/s plus the per-call commit-latency
// distribution (each call's latency spans its fan-out, any group-commit
// queueing and the snapshot publish).
func runIngestLoad(sys *multirag.System, n, producers int) {
	if producers <= 0 {
		producers = runtime.GOMAXPROCS(0)
	}
	lat := make([]time.Duration, n)
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(producers)
	for w := 0; w < producers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f := ingestLoadFile(i)
				t0 := time.Now()
				if err := sys.IngestFiles(f); err != nil {
					fatal("ingest-load file %d: %v", i, err)
				}
				lat[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	total := time.Since(start)
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(p float64) time.Duration { return sorted[int(p*float64(n-1))] }
	st := sys.Stats()
	fmt.Printf("ingest load test: %d files, %d producers\n", n, producers)
	fmt.Printf("  throughput: %.0f files/s in %v (%d triples, %d chunks indexed)\n",
		float64(n)/total.Seconds(), total.Round(time.Millisecond), st.Triples, st.Chunks)
	fmt.Printf("  commit latency: p50 %v  p95 %v  p99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), sorted[n-1].Round(time.Microsecond))
}

// ingestLoadFile synthesises the i-th file of the ingest-load stream: a small
// kg-format feed whose subjects recur across the stream, so homologous groups
// keep growing the way repeated multi-source feeds grow them in practice.
func ingestLoadFile(i int) multirag.File {
	subj := fmt.Sprintf("Flight %d", i%200)
	content := fmt.Sprintf("%s|status|%s\n%s|gate|G%d\n%s|delay_reason|%s\n",
		subj, []string{"On time", "Delayed", "Boarding"}[i%3],
		subj, i%40,
		subj, []string{"Weather", "Crew", "Traffic"}[i%3])
	return multirag.File{
		Domain:  "flights",
		Source:  fmt.Sprintf("feed-%d", i%8),
		Name:    fmt.Sprintf("update-%d", i),
		Format:  "kg",
		Content: []byte(content),
	}
}

func demoFiles() []multirag.File {
	return []multirag.File{
		{Domain: "flights", Source: "airport-api", Name: "schedule", Format: "csv",
			Content: []byte("flight,origin,destination,status,departure_time\nCA981,PEK,JFK,Delayed,2024-10-01 14:30\nMU588,PVG,LAX,On time,2024-10-01 15:10\n")},
		{Domain: "flights", Source: "airline-app", Name: "live", Format: "json",
			Content: []byte(`[{"flight":"CA981","status":"Delayed","delay_reason":"Typhoon"},{"flight":"MU588","status":"On time"}]`)},
		{Domain: "flights", Source: "weather-feed", Name: "alerts", Format: "text",
			Content: []byte("Typhoon Haikui impacts PEK departures after 14:00. The status of CA981 is Delayed. The delay reason of CA981 is Typhoon.")},
		{Domain: "flights", Source: "forum-user", Name: "posts", Format: "text",
			Content: []byte("The status of CA981 is On time.")},
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "multirag: "+format+"\n", args...)
	os.Exit(1)
}
