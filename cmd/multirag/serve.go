package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"multirag"
	"multirag/internal/serve"
)

// runServeCmd is the `multirag serve` subcommand: the production front door.
// It ingests a corpus, then serves HTTP/JSON with token-bucket admission per
// SLO class, pluggable batch formation (fcfs / sjf / priority), bounded
// request queues, and per-class latency + fairness metrics. Ingest traffic
// is additionally shed with 429 while the group committer's admission window
// is saturated, so overload backs up to clients instead of queueing without
// bound inside the server.
//
// With -data-dir the corpus is durable: acknowledged ingests are write-ahead
// logged and checkpointed under the directory, and a restart resumes exactly
// where the previous process stopped. SIGINT/SIGTERM trigger a graceful
// shutdown either way: new requests are rejected with 503 + Retry-After,
// in-flight requests finish (bounded by -shutdown-timeout), then the WAL is
// flushed into a final checkpoint before the process exits.
func runServeCmd(args []string) {
	fs := flag.NewFlagSet("multirag serve", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `Usage: multirag serve [flags]

Serve the ingested corpus over HTTP:

  POST /v1/query        {"query": "...", "class": "interactive"}
  POST /v1/query/batch  {"queries": [...], "class": "batch"}
  POST /v1/ingest       {"files": [{"domain","source","name","format","content"}, ...]}
  GET  /v1/stats        corpus statistics
  GET  /v1/metrics      per-class p50/p95/p99 latency, Jain fairness, queue depths,
                        deadline/cancel/degraded counters, breaker + durability state
  GET  /healthz         {"status": "ok"|"degraded"|"draining", "reason": ...}

SLO classes: interactive (priority 2), batch (priority 1), ingest. Excess
load is rejected with 429 (admission or full queue) or 503 (queue timeout);
every shed response carries a Retry-After hint.

Requests run under end-to-end deadlines (-deadline, tightened per request
with "deadline_ms"): the budget starts at admission, so queue wait spends it
too, and client disconnects cancel evaluation mid-flight. A request whose
budget expires mid-evaluation returns 200 with a Degraded partial answer
(-degrade, the default) or fails with 504 (-degrade=false). Failing model
calls trip per-stage circuit breakers (-breaker-failures, -breaker-cooldown)
that fast-fail into degraded answers instead of hammering a broken stage.

With -data-dir, acknowledged ingests are write-ahead logged and checkpointed
so a restart resumes the exact corpus. SIGINT/SIGTERM drain gracefully:
in-flight requests finish, the WAL is flushed into a final checkpoint, then
the process exits. Inspect or repair a directory with "multirag recover".

With -replicas N, reads are served from N in-process replicas fed by the
primary's committed WAL records and kept byte-identical by periodic
anti-entropy digest checks. -route picks the policy (round-robin,
least-loaded, primary-only); -max-lag bounds replica staleness (laggards
fail over to the primary); -hedge-after dispatches a second copy of a slow
read to another replica and returns whichever answers first. Replica
health, lag, resync and hedging counters appear under "router" in
/v1/metrics.

Flags:
`)
		fs.PrintDefaults()
	}
	var (
		addr         = fs.String("addr", ":8473", "listen address")
		dataDir      = fs.String("data-dir", "", "durable state directory (WAL + checkpoints); empty = in-memory only")
		shutdownWait = fs.Duration("shutdown-timeout", 10*time.Second, "maximum wait for in-flight requests on SIGINT/SIGTERM")
		demo         = fs.Bool("demo", false, "load the built-in CA981 case-study corpus")
		ingest       = fs.String("ingest", "", "comma-separated data files to ingest before serving")
		domain       = fs.String("domain", "data", "domain label for ingested files")
		seed         = fs.Uint64("seed", 1, "simulated model seed")
		workers      = fs.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
		shards       = fs.Int("shards", 0, "retrieval index shard count (0 = default)")
		ann          = fs.Bool("ann", false, "approximate retrieval: IVF coarse quantizer with exact re-rank (recall < 1)")
		nprobe       = fs.Int("nprobe", 0, "coarse-quantizer cells probed per ANN query (0 = default)")
		annInt8      = fs.Bool("ann-int8", false, "run the ANN coarse pass over int8-quantized vectors")
		cache        = fs.Int("cache", 0, "answer cache size in entries (0 = disabled)")
		policy       = fs.String("policy", serve.PolicyFCFS, "batch-formation policy: fcfs, sjf or priority")
		maxBatch     = fs.Int("max-batch", 32, "maximum queries per formed batch")
		queueCap     = fs.Int("queue-cap", 256, "pending-request queue bound per SLO class")
		queueTimeout = fs.Duration("queue-timeout", 5*time.Second, "maximum queue wait before a request fails with 503")
		admitQPS     = fs.Float64("admit-qps", 0, "token-bucket refill rate for the query classes, requests/s (0 = unlimited)")
		admitBurst   = fs.Float64("admit-burst", 0, "token-bucket capacity for the query classes (0 = max(1, admit-qps))")
		deadline     = fs.Duration("deadline", 0, "end-to-end deadline per query-class request, counted from admission (0 = none; requests may tighten it with deadline_ms)")
		degrade      = fs.Bool("degrade", true, "deliver partial answers as 200 + degraded when a request's deadline expires mid-evaluation (false = fail with 504)")
		brkFailures  = fs.Int("breaker-failures", 0, "consecutive model-call failures that trip a circuit breaker (0 = default)")
		brkCooldown  = fs.Duration("breaker-cooldown", 0, "open-breaker cooldown before a half-open probe (0 = default)")
		replicas     = fs.Int("replicas", 0, "read replicas fed from the primary's committed WAL records (0 = serve reads from the primary)")
		route        = fs.String("route", serve.RouteRoundRobin, "replica read-routing policy: round-robin, least-loaded or primary-only")
		hedgeAfter   = fs.Duration("hedge-after", 0, "dispatch a hedged copy of a read to a second replica after this delay; first answer wins (0 = no hedging)")
		maxLag       = fs.Uint64("max-lag", 0, "staleness bound in commit groups; reads fail over to the primary when a replica lags further (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		fatal("serve: %v", err)
	}

	sysCfg := multirag.Config{
		Seed:            *seed,
		Workers:         *workers,
		Shards:          *shards,
		ANN:             *ann,
		NProbe:          *nprobe,
		ANNInt8:         *annInt8,
		AnswerCache:     *cache,
		BreakerFailures: *brkFailures,
		BreakerCooldown: *brkCooldown,
	}
	var sys *multirag.System
	var recovery *multirag.RecoveryInfo
	if *dataDir != "" {
		var info multirag.RecoveryInfo
		var err error
		sys, info, err = multirag.OpenDurable(*dataDir, sysCfg)
		if err != nil {
			fatal("serve: open %s: %v", *dataDir, err)
		}
		recovery = &info
		fmt.Printf("multirag serve: recovered %s (checkpoint LSN %d, %d WAL records replayed%s)\n",
			*dataDir, info.CheckpointLSN, info.RecordsReplayed,
			map[bool]string{true: ", torn tail truncated"}[info.Truncated])
	} else {
		sys = multirag.Open(sysCfg)
	}
	if *demo {
		if err := sys.IngestFiles(demoFiles()...); err != nil {
			fatal("serve: demo ingest: %v", err)
		}
	}
	if *ingest != "" {
		files, err := readFiles(*ingest, *domain)
		if err != nil {
			fatal("serve: %v", err)
		}
		if err := sys.IngestFiles(files...); err != nil {
			fatal("serve: ingest: %v", err)
		}
	}

	// The replica set (if any) outlives the server but not the system: it is
	// detached after the server stops routing to it and before the primary's
	// final checkpoint.
	var set *multirag.ReplicaSet
	if *replicas > 0 {
		var err error
		set, err = multirag.NewReplicaSet(sys, multirag.ReplicaSetConfig{Replicas: *replicas})
		if err != nil {
			fatal("serve: replicas: %v", err)
		}
		fmt.Printf("multirag serve: %d read replicas attached (route %s)\n", *replicas, *route)
	}
	closeSet := func() {
		if set != nil {
			set.Close()
		}
	}

	srv, err := serve.New(serve.Config{
		System:       sys,
		Policy:       *policy,
		Classes:      serveClasses(*admitQPS, *admitBurst, *queueCap, *deadline, *degrade),
		MaxBatch:     *maxBatch,
		QueueTimeout: *queueTimeout,
		Recovery:     recovery,
		Replicas:     set,
		Route:        *route,
		HedgeAfter:   *hedgeAfter,
		MaxLag:       *maxLag,
	})
	if err != nil {
		closeSet()
		fatal("serve: %v", err)
	}

	st := sys.Stats()
	fmt.Printf("multirag serve: listening on %s (policy %s, %d triples, %d chunks indexed)\n",
		*addr, *policy, st.Triples, st.Chunks)

	// Graceful shutdown: SIGINT/SIGTERM → reject new work (503 + Retry-After),
	// let in-flight handlers finish within the deadline, stop the executors,
	// then flush the WAL into a final checkpoint. A restart resumes exactly
	// where this process stopped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	select {
	case err := <-serveErr:
		srv.Close()
		closeSet()
		sys.Close()
		fatal("serve: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	fmt.Println("multirag serve: draining (new requests get 503 + Retry-After)")
	srv.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownWait)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "multirag serve: shutdown: %v\n", err)
	}
	srv.Close()
	closeSet()
	if err := sys.Close(); err != nil {
		fatal("serve: close durable state: %v", err)
	}
	fmt.Println("multirag serve: shutdown complete (state flushed)")
}

// serveClasses is the stock SLO layout with the CLI admission, deadline and
// degradation knobs applied to the query classes. The ingest class stays
// admission-unlimited: its load shedding comes from the group committer's own
// bounded admission window, surfaced as 429 by the ingest handler.
func serveClasses(admitQPS, admitBurst float64, queueCap int, deadline time.Duration, degrade bool) []serve.Class {
	classes := serve.DefaultClasses()
	for i := range classes {
		classes[i].QueueCap = queueCap
		if classes[i].Name != serve.IngestClass {
			classes[i].Rate = admitQPS
			classes[i].Burst = admitBurst
			classes[i].Deadline = deadline
			classes[i].Degrade = degrade
		}
	}
	return classes
}
