package main

import (
	"flag"
	"fmt"

	"multirag"
)

// runRecoverCmd is the `multirag recover` subcommand: it opens a durable data
// directory, reports what recovery found (checkpoint position, WAL records
// replayed, torn-tail repair) and — unless -dry-run is set — folds the
// replayed log into a fresh checkpoint so the next open starts clean. It is
// the offline half of crash recovery: `multirag serve -data-dir` performs the
// same recovery on startup; this command exposes it for inspection and for
// compacting a directory without starting the server.
func runRecoverCmd(args []string) {
	fs := flag.NewFlagSet("multirag recover", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `Usage: multirag recover -data-dir DIR [flags]

Open a durable data directory, replay the write-ahead log on top of the
newest checkpoint, print what was recovered, and checkpoint the result.

With -verify, also print the recovered state's replication position and
anti-entropy snapshot digest — the same fingerprint replicas are checked
against online. Two directories recovered with the same seed that print the
same position and digest hold byte-identical state.

Flags:
`)
		fs.PrintDefaults()
	}
	var (
		dataDir = fs.String("data-dir", "", "durable state directory (required)")
		dryRun  = fs.Bool("dry-run", false, "do not write a fresh checkpoint (opening still repairs a torn log tail)")
		seed    = fs.Uint64("seed", 1, "simulated model seed (must match the serving configuration)")
		verify  = fs.Bool("verify", false, "print the replication position and anti-entropy snapshot digest of the recovered state")
	)
	if err := fs.Parse(args); err != nil {
		fatal("recover: %v", err)
	}
	if *dataDir == "" {
		fs.Usage()
		fatal("recover: -data-dir is required")
	}

	sys, info, err := multirag.OpenDurable(*dataDir, multirag.Config{Seed: *seed})
	if err != nil {
		fatal("recover: %v", err)
	}
	fmt.Printf("checkpoint LSN:      %d\n", info.CheckpointLSN)
	fmt.Printf("WAL records replayed: %d\n", info.RecordsReplayed)
	fmt.Printf("torn tail truncated:  %v\n", info.Truncated)
	st := sys.Stats()
	fmt.Printf("entities:            %d\n", st.Entities)
	fmt.Printf("triples:             %d\n", st.Triples)
	fmt.Printf("homologous nodes:    %d\n", st.HomologousNodes)
	fmt.Printf("chunks indexed:      %d\n", st.Chunks)
	if *verify {
		fmt.Printf("replication LSN:     %d\n", sys.ReplicationLSN())
		fmt.Printf("snapshot digest:     %016x\n", sys.SnapshotDigest())
	}
	if *dryRun {
		return
	}
	if err := sys.Close(); err != nil {
		fatal("recover: checkpoint: %v", err)
	}
	fmt.Println("recovered state checkpointed; log compacted")
}
