package multirag

import (
	"strings"
	"testing"
)

func flightFiles() []File {
	return []File{
		{Domain: "flights", Source: "airport-api", Name: "schedule", Format: "csv",
			Content: []byte("flight,origin,destination,status\nCA981,PEK,JFK,Delayed\n")},
		{Domain: "flights", Source: "airline-app", Name: "live", Format: "json",
			Content: []byte(`[{"flight":"CA981","status":"Delayed","delay_reason":"Typhoon"}]`)},
		{Domain: "flights", Source: "weather-feed", Name: "alerts", Format: "text",
			Content: []byte("The status of CA981 is Delayed. The delay reason of CA981 is Typhoon.")},
		{Domain: "flights", Source: "forum-user", Name: "posts", Format: "text",
			Content: []byte("The status of CA981 is On time.")},
	}
}

func TestOpenIngestAsk(t *testing.T) {
	sys := Open(Config{Seed: 3})
	if err := sys.IngestFiles(flightFiles()...); err != nil {
		t.Fatalf("IngestFiles: %v", err)
	}
	ans := sys.Ask("What is the status of CA981?")
	if !ans.Found {
		t.Fatal("answer not found")
	}
	if len(ans.Values) != 1 || !strings.EqualFold(ans.Values[0], "delayed") {
		t.Fatalf("Values = %v, want [Delayed]", ans.Values)
	}
	if ans.Rejected == 0 {
		t.Fatal("the conflicting forum claim must be rejected")
	}
	if ans.Intent != "attribute_lookup" {
		t.Fatalf("intent = %q", ans.Intent)
	}
	for _, ev := range ans.Trusted {
		if ev.Source == "forum-user" {
			t.Fatal("forum evidence must not be trusted")
		}
		if ev.Confidence <= 0 {
			t.Fatalf("evidence confidence = %v", ev.Confidence)
		}
	}
}

func TestIngestValidation(t *testing.T) {
	sys := Open(Config{})
	if err := sys.IngestFiles(File{Domain: "d"}); err == nil {
		t.Fatal("incomplete file must be rejected")
	}
	if err := sys.IngestFiles(File{Domain: "d", Source: "s", Name: "n", Format: "json", Content: []byte("{bad")}); err == nil {
		t.Fatal("parse errors must propagate")
	}
}

func TestStats(t *testing.T) {
	sys := Open(Config{})
	if err := sys.IngestFiles(flightFiles()...); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Entities == 0 || st.Triples == 0 || st.Chunks == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	if st.HomologousNodes == 0 {
		t.Fatal("homologous aggregation missing")
	}
	if st.BuildTime <= 0 {
		t.Fatal("build time not recorded")
	}
}

func TestRetrieve(t *testing.T) {
	sys := Open(Config{})
	if err := sys.IngestFiles(flightFiles()...); err != nil {
		t.Fatal(err)
	}
	docs := sys.Retrieve("What is the status of CA981?", 3)
	if len(docs) == 0 {
		t.Fatal("no documents retrieved")
	}
}

func TestAblationConfig(t *testing.T) {
	// The w/o-MCC configuration must expose the conflicting claim as
	// unfiltered evidence.
	sys := Open(Config{DisableGraphLevel: true, DisableNodeLevel: true})
	if err := sys.IngestFiles(flightFiles()...); err != nil {
		t.Fatal(err)
	}
	ans := sys.Ask("What is the status of CA981?")
	leak := false
	for _, ev := range ans.Trusted {
		if ev.Source == "forum-user" {
			leak = true
		}
	}
	if !leak {
		t.Fatal("ablated system must pass the conflicting claim through")
	}
}

func TestMultiHopPublicAPI(t *testing.T) {
	sys := Open(Config{})
	err := sys.IngestFiles(
		File{Domain: "wiki", Source: "wiki", Name: "d1", Format: "text",
			Content: []byte("The director of The Velvet Labyrinth is Rosa Petrov.")},
		File{Domain: "wiki", Source: "wiki", Name: "d2", Format: "text",
			Content: []byte("The birthplace of Rosa Petrov is Madrid.")},
	)
	if err != nil {
		t.Fatal(err)
	}
	ans := sys.Ask("What is the birthplace of the director of The Velvet Labyrinth?")
	if !ans.Found || len(ans.Values) == 0 || !strings.EqualFold(ans.Values[0], "madrid") {
		t.Fatalf("multi-hop = %+v", ans)
	}
	if ans.Intent != "multi_hop" {
		t.Fatalf("intent = %q", ans.Intent)
	}
}
