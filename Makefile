GO ?= go
BENCH_SCALE ?= 0.12

.PHONY: check vet build test race bench bench-retrieval bench-ann bench-graph bench-query bench-ingest bench-serve clean

# check is the CI entry point: static analysis, full build, race-enabled tests.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates the paper tables/figures at a reduced scale and records
# per-job wall-clock timings for the perf trajectory.
bench:
	$(GO) run ./cmd/benchtables -scale $(BENCH_SCALE) -json BENCH_core.json

# bench-retrieval runs the retrieval-layer microbenchmarks (full-sort vs heap
# top-k vs postings pruning vs sharded scan) at the configured scale and
# records the timing report.
bench-retrieval:
	$(GO) run ./cmd/benchtables -retrieval -scale $(BENCH_SCALE) -json BENCH_retrieval.json

# bench-ann runs the exact retrieval microbenchmarks plus the ANN
# recall-vs-speedup grid: every IVF configuration (nprobe sweep, int8 coarse
# pass) A/B'd against the sharded exact scan on large corpora, with recall@10
# and score MAE per cell, and records everything into BENCH_retrieval.json.
bench-ann:
	$(GO) run ./cmd/benchtables -retrieval -ann -scale $(BENCH_SCALE) -json BENCH_retrieval.json

# bench-graph runs the graph-core microbenchmarks (seed deep-clone vs
# copy-on-write columnar clone, nested-map vs sort-merge line-graph build)
# and records the timing report.
bench-graph:
	$(GO) run ./cmd/benchtables -graph -scale $(BENCH_SCALE) -json BENCH_graph.json

# bench-query runs the query-executor microbenchmarks (sequential
# scan-per-subquestion reference vs the parallel index-backed executor over
# lookup / multi-hop / comparison / fallback mixes, equivalence-checked) and
# records the timing report.
bench-query:
	$(GO) run ./cmd/benchtables -query -scale $(BENCH_SCALE) -json BENCH_query.json

# bench-ingest runs the ingest-throughput microbenchmarks (serialized
# whole-call-locked baseline vs the pipelined group-committing ingest, over a
# producers x corpus-size grid, equivalence-checked) and records the timing
# report.
bench-ingest:
	$(GO) run ./cmd/benchtables -ingest -scale $(BENCH_SCALE) -json BENCH_ingest.json

# bench-serve runs the HTTP serving-layer benchmark (two-SLO-class closed-loop
# load through the front door under each batch-formation policy: fcfs / sjf /
# priority, with admission-rejection accounting on the rate-limited class) and
# records per-class tail latencies plus Jain fairness.
bench-serve:
	$(GO) run ./cmd/benchtables -serve -scale $(BENCH_SCALE) -json BENCH_serve.json

clean:
	rm -f BENCH_core.json BENCH_retrieval.json BENCH_graph.json BENCH_query.json BENCH_ingest.json BENCH_serve.json
