GO ?= go
BENCH_SCALE ?= 0.12

.PHONY: check vet build test race bench clean

# check is the CI entry point: static analysis, full build, race-enabled tests.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates the paper tables/figures at a reduced scale and records
# per-job wall-clock timings for the perf trajectory.
bench:
	$(GO) run ./cmd/benchtables -scale $(BENCH_SCALE) -json BENCH_core.json

clean:
	rm -f BENCH_core.json
