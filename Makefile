GO ?= go
BENCH_SCALE ?= 0.12

.PHONY: check vet build test race chaos chaos-cluster fuzz-smoke bench bench-retrieval bench-ann bench-graph bench-query bench-ingest bench-serve bench-wal bench-cluster clean

# check is the CI entry point: static analysis, full build, race-enabled
# tests, and a short fuzz pass over the crash-surface decoders.
check: vet build race fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the fault-injection grid under the race detector: named
# injection points (LLM calls, evidence gathering, retrieval scans, commit,
# WAL append, batch execution) crossed with fault kinds (latency, error,
# hang-until-cancel, panic) over concurrent query + ingest load, asserting no
# deadlock, no goroutine leak, no torn snapshot and byte-identical WAL
# recovery. -count=1 keeps it uncached so CI always exercises the grid.
chaos:
	$(GO) test -race -count=1 -run '^TestChaos' ./internal/core ./internal/serve ./internal/fault

# chaos-cluster runs the replication chaos suite under the race detector:
# kill/hang/corrupt one of three WAL-fed read replicas under concurrent query
# + ingest load, asserting the router sheds to survivors, every served answer
# stays bit-identical to a single-engine reference, and the fenced replica
# resyncs back to byte-identical state.
chaos-cluster:
	$(GO) test -race -count=1 -run '^TestChaosCluster' ./internal/cluster ./internal/serve

# fuzz-smoke runs each committed fuzz target briefly on top of its seed
# corpus (testdata/fuzz): the WAL frame parser and field decoder — the code
# recovery walks over whatever a crash left on disk — and the JSON-LD
# parser every adapter output passes through.
fuzz-smoke:
	$(GO) test ./internal/wal -run '^$$' -fuzz FuzzFrameParse -fuzztime 5s
	$(GO) test ./internal/wal -run '^$$' -fuzz FuzzDecoder -fuzztime 5s
	$(GO) test ./internal/jsonld -run '^$$' -fuzz FuzzDocumentUnmarshal -fuzztime 5s

# bench regenerates the paper tables/figures at a reduced scale and records
# per-job wall-clock timings for the perf trajectory.
bench:
	$(GO) run ./cmd/benchtables -scale $(BENCH_SCALE) -json BENCH_core.json

# bench-retrieval runs the retrieval-layer microbenchmarks (full-sort vs heap
# top-k vs postings pruning vs sharded scan) at the configured scale and
# records the timing report.
bench-retrieval:
	$(GO) run ./cmd/benchtables -retrieval -scale $(BENCH_SCALE) -json BENCH_retrieval.json

# bench-ann runs the exact retrieval microbenchmarks plus the ANN
# recall-vs-speedup grid: every IVF configuration (nprobe sweep, int8 coarse
# pass) A/B'd against the sharded exact scan on large corpora, with recall@10
# and score MAE per cell, and records everything into BENCH_retrieval.json.
bench-ann:
	$(GO) run ./cmd/benchtables -retrieval -ann -scale $(BENCH_SCALE) -json BENCH_retrieval.json

# bench-graph runs the graph-core microbenchmarks (seed deep-clone vs
# copy-on-write columnar clone, nested-map vs sort-merge line-graph build)
# and records the timing report.
bench-graph:
	$(GO) run ./cmd/benchtables -graph -scale $(BENCH_SCALE) -json BENCH_graph.json

# bench-query runs the query-executor microbenchmarks (sequential
# scan-per-subquestion reference vs the parallel index-backed executor over
# lookup / multi-hop / comparison / fallback mixes, equivalence-checked) and
# records the timing report.
bench-query:
	$(GO) run ./cmd/benchtables -query -scale $(BENCH_SCALE) -json BENCH_query.json

# bench-ingest runs the ingest-throughput microbenchmarks (serialized
# whole-call-locked baseline vs the pipelined group-committing ingest, over a
# producers x corpus-size grid, equivalence-checked) and records the timing
# report.
bench-ingest:
	$(GO) run ./cmd/benchtables -ingest -scale $(BENCH_SCALE) -json BENCH_ingest.json

# bench-serve runs the HTTP serving-layer benchmark (two-SLO-class closed-loop
# load through the front door under each batch-formation policy: fcfs / sjf /
# priority, with admission-rejection accounting on the rate-limited class) and
# records per-class tail latencies plus Jain fairness.
bench-serve:
	$(GO) run ./cmd/benchtables -serve -scale $(BENCH_SCALE) -json BENCH_serve.json

# bench-wal runs the WAL durability benchmarks: ingest throughput with the
# write-ahead log + fsync on vs off (the durability tax must stay >= 0.6x
# in-memory at 4 producers), crash-recovery replay time vs log length
# (including a 10k-record log, which must replay in under 5s), and
# checkpoint size/write time. Recovery and checkpoint cells run at full
# scale regardless of BENCH_SCALE — the 10k-record bar is the point.
bench-wal:
	$(GO) run ./cmd/benchtables -wal -scale $(BENCH_SCALE) -json BENCH_wal.json

# bench-cluster runs the replicated-read benchmark: a replica-count sweep
# (0/1/2/4 WAL-fed read replicas behind the HTTP front door) measuring read
# throughput, hedged vs unhedged p99, and failover time-to-drain when the
# replica query path hard-fails.
bench-cluster:
	$(GO) run ./cmd/benchtables -cluster -scale $(BENCH_SCALE) -json BENCH_cluster.json

clean:
	rm -f BENCH_core.json BENCH_retrieval.json BENCH_graph.json BENCH_query.json BENCH_ingest.json BENCH_serve.json BENCH_wal.json BENCH_cluster.json
