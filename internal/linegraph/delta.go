package linegraph

import (
	"multirag/internal/kg"
)

// BuildDelta incrementally maintains the homologous triple line graph: given
// prev (the SG built over g minus the delta) and the IDs of triples newly
// added to g, it returns a fresh SG equivalent to Build(g) while touching
// only the (subject, predicate) keys the delta intersects.
//
// Untouched homologous nodes are shared by pointer with prev — they are
// immutable once published — so the cost of one call is O(|delta|): the two
// key indexes are copy-on-write overlays whose clone copies only the tail of
// keys recent deltas touched (amortised by flattening, see overlay.go), and
// the sorted isolated-point list is no longer rebuilt and re-sorted per
// batch — it materialises lazily on the first IsolatedIDs call (see SG).
// Repeated ingestion therefore costs O(n) total line-graph work rather than
// the O(n²) of rebuilding from scratch each batch, and prev stays fully
// usable by concurrent readers.
//
// A nil prev falls back to a full Build. Triple removal is not expressible as
// a delta; callers that mutate the graph destructively rebuild from scratch.
func BuildDelta(prev *SG, g *kg.Graph, newTripleIDs []string) *SG {
	if prev == nil {
		return Build(g)
	}
	sg := &SG{
		nodes:       prev.nodes.clone(),
		isoIndex:    prev.isoIndex.clone(),
		graph:       g,
		memberTotal: prev.memberTotal,
		maxGroup:    prev.maxGroup,
	}
	affected := map[string]bool{}
	for _, id := range newTripleIDs {
		if t, ok := g.Triple(id); ok {
			affected[t.Key()] = true
		}
	}
	for key := range affected {
		members := g.TriplesByRawKey(key)
		sg.delNode(key)
		sg.isoIndex.del(key)
		switch {
		case len(members) == 0:
			// Key vanished (cannot happen for a pure-addition delta; kept for
			// robustness).
		case len(members) == 1:
			sg.isoIndex.put(key, members[0].ID)
		default:
			sg.putNode(key, newHomologousNode(key, members))
		}
	}
	return sg
}
