package linegraph

import (
	"sort"

	"multirag/internal/kg"
)

// BuildDelta incrementally maintains the homologous triple line graph: given
// prev (the SG built over g minus the delta) and the IDs of triples newly
// added to g, it returns a fresh SG equivalent to Build(g) while touching
// only the (subject, predicate) keys the delta intersects.
//
// Untouched homologous nodes are shared by pointer with prev — they are
// immutable once published — so the cost of one call is O(|delta| + K log K)
// where K is the number of affected keys, instead of Build's O(|corpus|).
// Repeated ingestion therefore costs O(n) total line-graph work rather than
// the O(n²) of rebuilding from scratch each batch. The two top-level maps and
// the isolated-point set are reassembled per call (O(#keys) pointer copies),
// keeping prev fully usable by concurrent readers.
//
// A nil prev falls back to a full Build. Triple removal is not expressible as
// a delta; callers that mutate the graph destructively rebuild from scratch.
func BuildDelta(prev *SG, g *kg.Graph, newTripleIDs []string) *SG {
	if prev == nil {
		return Build(g)
	}
	sg := &SG{
		Nodes:         make(map[string]*HomologousNode, len(prev.Nodes)),
		byKeyIsolated: make(map[string]string, len(prev.byKeyIsolated)),
		graph:         g,
	}
	for k, n := range prev.Nodes {
		sg.Nodes[k] = n
	}
	for k, id := range prev.byKeyIsolated {
		sg.byKeyIsolated[k] = id
	}
	affected := map[string]bool{}
	for _, id := range newTripleIDs {
		if t, ok := g.Triple(id); ok {
			affected[t.Key()] = true
		}
	}
	for key := range affected {
		members := g.TriplesByRawKey(key)
		delete(sg.Nodes, key)
		delete(sg.byKeyIsolated, key)
		switch {
		case len(members) == 0:
			// Key vanished (cannot happen for a pure-addition delta; kept for
			// robustness).
		case len(members) == 1:
			sg.byKeyIsolated[key] = members[0].ID
		default:
			sg.Nodes[key] = newHomologousNode(key, members)
		}
	}
	sg.Isolated = make([]string, 0, len(sg.byKeyIsolated))
	for _, id := range sg.byKeyIsolated {
		sg.Isolated = append(sg.Isolated, id)
	}
	sort.Strings(sg.Isolated)
	return sg
}
