// Package linegraph implements the multi-source line graph machinery of
// §II–§III-C: the triple line-graph transform (Definition 2), homologous data
// detection (Definition 3), homologous nodes and subgraphs (Definition 4) and
// the homologous triple line graph SG′ (Definition 5) with its O(n log n)
// matching algorithm. SG′ is the structure that makes multi-source
// consistency checks a hash lookup instead of a corpus scan.
package linegraph

import (
	"sort"

	"multirag/internal/kg"
)

// LineGraph is the line-graph transform G′ of a knowledge graph G
// (Definition 2): each node is a triple of G; two nodes are adjacent iff
// their triples share an entity (subject or linked object).
type LineGraph struct {
	// Nodes lists the triple IDs, sorted.
	Nodes []string
	// Adj maps a triple ID to its adjacent triple IDs, each sorted.
	Adj map[string][]string
}

// Transform computes the line graph of g. Adjacency is derived through the
// shared-entity incidence lists, so the cost is proportional to the sum of
// squared entity degrees rather than |T|².
func Transform(g *kg.Graph) *LineGraph {
	lg := &LineGraph{Adj: map[string][]string{}}
	lg.Nodes = g.TripleIDs()
	// Incidence: entity → triples touching it.
	incidence := map[string][]string{}
	for _, id := range lg.Nodes {
		t, _ := g.Triple(id)
		incidence[t.Subject] = append(incidence[t.Subject], id)
		if t.ObjectEntity != "" && t.ObjectEntity != t.Subject {
			incidence[t.ObjectEntity] = append(incidence[t.ObjectEntity], id)
		}
	}
	seen := map[string]map[string]bool{}
	for _, ids := range incidence {
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a, b := ids[i], ids[j]
				if seen[a] == nil {
					seen[a] = map[string]bool{}
				}
				if seen[a][b] {
					continue
				}
				seen[a][b] = true
				if seen[b] == nil {
					seen[b] = map[string]bool{}
				}
				seen[b][a] = true
				lg.Adj[a] = append(lg.Adj[a], b)
				lg.Adj[b] = append(lg.Adj[b], a)
			}
		}
	}
	for _, neigh := range lg.Adj {
		sort.Strings(neigh)
	}
	return lg
}

// NumEdges returns the number of undirected edges in the line graph.
func (lg *LineGraph) NumEdges() int {
	total := 0
	for _, n := range lg.Adj {
		total += len(n)
	}
	return total / 2
}

// Degree returns the degree of a line-graph node.
func (lg *LineGraph) Degree(tripleID string) int { return len(lg.Adj[tripleID]) }
