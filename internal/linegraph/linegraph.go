// Package linegraph implements the multi-source line graph machinery of
// §II–§III-C: the triple line-graph transform (Definition 2), homologous data
// detection (Definition 3), homologous nodes and subgraphs (Definition 4) and
// the homologous triple line graph SG′ (Definition 5) with its O(n log n)
// matching algorithm. SG′ is the structure that makes multi-source
// consistency checks a hash lookup instead of a corpus scan.
package linegraph

import (
	"slices"
	"sort"

	"multirag/internal/kg"
)

// LineGraph is the line-graph transform G′ of a knowledge graph G
// (Definition 2): each node is a triple of G; two nodes are adjacent iff
// their triples share an entity (subject or linked object).
type LineGraph struct {
	// Nodes lists the triple IDs, sorted.
	Nodes []string
	// Adj maps a triple ID to its adjacent triple IDs, each sorted.
	Adj map[string][]string
}

// Transform computes the line graph of g. Adjacency is derived through the
// interned per-entity incidence postings, so the cost is proportional to the
// sum of squared entity degrees rather than |T|². Pair generation works
// entirely on int32 triple handles; duplicates (a pair of triples can share
// both an entity as subject and another as object) are removed by a per-node
// sort+compact pass instead of the O(E²)-memory nested seen maps the
// string-keyed implementation needed.
func Transform(g *kg.Graph) *LineGraph {
	slots := g.TripleSlots()
	adj := make([][]int32, slots)
	var inc []int32
	for e := int32(0); e < g.EntitySlots(); e++ {
		// Incidence list of entity e: triples with subject e plus triples
		// linking e as object (self-loops contribute once, via the subject
		// side).
		subj := g.SubjectPosting(e)
		obj := g.ObjectPosting(e)
		if len(subj)+len(obj) < 2 {
			continue
		}
		inc = inc[:0]
		inc = append(inc, subj...)
		for _, th := range obj {
			if g.TripleSubject(th) != e {
				inc = append(inc, th)
			}
		}
		for i := 0; i < len(inc); i++ {
			for j := i + 1; j < len(inc); j++ {
				a, b := inc[i], inc[j]
				adj[a] = append(adj[a], b)
				adj[b] = append(adj[b], a)
			}
		}
	}

	lg := &LineGraph{Adj: map[string][]string{}}
	// ids interns one ID string per live triple; adjacency lists below share
	// these strings instead of materialising new ones.
	ids := make([]string, slots)
	lg.Nodes = make([]string, 0, g.NumTriples())
	g.ForEachTriple(func(h int32, t *kg.Triple) {
		ids[h] = t.ID
		lg.Nodes = append(lg.Nodes, t.ID)
	})
	sort.Strings(lg.Nodes)
	for h := int32(0); h < slots; h++ {
		neigh := adj[h]
		if len(neigh) == 0 || ids[h] == "" {
			continue
		}
		slices.Sort(neigh)
		neigh = slices.Compact(neigh)
		ss := make([]string, len(neigh))
		for i, n := range neigh {
			ss[i] = ids[n]
		}
		sort.Strings(ss)
		lg.Adj[ids[h]] = ss
	}
	return lg
}

// NumEdges returns the number of undirected edges in the line graph.
func (lg *LineGraph) NumEdges() int {
	total := 0
	for _, n := range lg.Adj {
		total += len(n)
	}
	return total / 2
}

// Degree returns the degree of a line-graph node.
func (lg *LineGraph) Degree(tripleID string) int { return len(lg.Adj[tripleID]) }
