package linegraph

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"multirag/internal/kg"
)

// refTransform is the seed line-graph transform: string-keyed incidence with
// the O(E²)-memory nested seen maps. It runs on the public kg API only, so it
// serves as the observation-equivalence oracle for the handle-based
// Transform.
func refTransform(g *kg.Graph) *LineGraph {
	lg := &LineGraph{Adj: map[string][]string{}}
	lg.Nodes = g.TripleIDs()
	incidence := map[string][]string{}
	for _, id := range lg.Nodes {
		t, _ := g.Triple(id)
		incidence[t.Subject] = append(incidence[t.Subject], id)
		if t.ObjectEntity != "" && t.ObjectEntity != t.Subject {
			incidence[t.ObjectEntity] = append(incidence[t.ObjectEntity], id)
		}
	}
	seen := map[string]map[string]bool{}
	for _, ids := range incidence {
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a, b := ids[i], ids[j]
				if seen[a] == nil {
					seen[a] = map[string]bool{}
				}
				if seen[a][b] {
					continue
				}
				seen[a][b] = true
				if seen[b] == nil {
					seen[b] = map[string]bool{}
				}
				seen[b][a] = true
				lg.Adj[a] = append(lg.Adj[a], b)
				lg.Adj[b] = append(lg.Adj[b], a)
			}
		}
	}
	for _, neigh := range lg.Adj {
		sort.Strings(neigh)
	}
	return lg
}

// refBuild is the seed homologous matching: group live triples by key with a
// fresh hash map. It returns the expected node/isolated partition as plain
// data for field-by-field comparison.
func refBuild(g *kg.Graph) (nodes map[string]*HomologousNode, isolated []string) {
	nodes = map[string]*HomologousNode{}
	groups := map[string][]*kg.Triple{}
	for _, id := range g.TripleIDs() {
		t, _ := g.Triple(id)
		groups[t.Key()] = append(groups[t.Key()], t)
	}
	for key, members := range groups {
		if len(members) < 2 {
			isolated = append(isolated, members[0].ID)
			continue
		}
		n := &HomologousNode{
			Key:       key,
			SubjectID: members[0].Subject,
			Name:      members[0].Predicate,
			Meta:      map[string]string{},
			Num:       len(members),
			Weights:   map[string]float64{},
		}
		srcSet := map[string]bool{}
		for _, t := range members {
			n.Members = append(n.Members, t.ID)
			n.Weights[t.ID] = t.Weight
			srcSet[t.Source] = true
		}
		sort.Strings(n.Members)
		for s := range srcSet {
			n.Sources = append(n.Sources, s)
		}
		sort.Strings(n.Sources)
		nodes[key] = n
	}
	sort.Strings(isolated)
	return nodes, isolated
}

// randomLinkedGraph builds a graph with colliding keys, entity-valued
// objects (including self-loops) and optional removals.
func randomLinkedGraph(tb testing.TB, rng *rand.Rand, n int, withRemovals bool) *kg.Graph {
	tb.Helper()
	g := kg.New()
	for i := 0; i < 10; i++ {
		g.AddEntity(fmt.Sprintf("e%d", i), "T", "d")
	}
	var live []string
	for i := 0; i < n; i++ {
		subj := fmt.Sprintf("e%d", rng.Intn(10))
		obj := fmt.Sprintf("v%d", rng.Intn(6))
		if rng.Intn(2) == 0 {
			obj = fmt.Sprintf("e%d", rng.Intn(10)) // entity link, maybe subj==obj
		}
		id, err := g.AddTriple(kg.Triple{
			Subject:   subj,
			Predicate: fmt.Sprintf("p%d", rng.Intn(4)),
			Object:    obj,
			Source:    fmt.Sprintf("s%d", rng.Intn(3)),
			Weight:    0.25 * float64(1+rng.Intn(4)),
		})
		if err != nil {
			tb.Fatal(err)
		}
		live = append(live, id)
	}
	if withRemovals {
		for i := 0; i < n/5 && len(live) > 0; i++ {
			j := rng.Intn(len(live))
			g.RemoveTriple(live[j])
			live = append(live[:j], live[j+1:]...)
		}
	}
	return g
}

// TestTransformMatchesReference: the handle-based sort-merge Transform is
// observation-equivalent to the seed nested-map implementation over random
// graphs with entity links, self-loops and removals.
func TestTransformMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := randomLinkedGraph(t, rng, 40+rng.Intn(80), seed%2 == 0)
			got, want := Transform(g), refTransform(g)
			if !reflect.DeepEqual(got.Nodes, want.Nodes) {
				t.Fatalf("nodes diverge:\n got  %v\n want %v", got.Nodes, want.Nodes)
			}
			if !reflect.DeepEqual(got.Adj, want.Adj) {
				t.Fatalf("adjacency diverges:\n got  %v\n want %v", got.Adj, want.Adj)
			}
		})
	}
}

// TestBuildMatchesReference: Build over the graph's interned key postings is
// observation-equivalent to the seed group-by-scan, including after
// removals.
func TestBuildMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := randomLinkedGraph(t, rng, 40+rng.Intn(80), seed%2 == 0)
			sg := Build(g)
			wantNodes, wantIsolated := refBuild(g)
			if !reflect.DeepEqual(sg.IsolatedIDs(), wantIsolated) &&
				!(len(sg.IsolatedIDs()) == 0 && len(wantIsolated) == 0) {
				t.Fatalf("isolated diverge:\n got  %v\n want %v", sg.IsolatedIDs(), wantIsolated)
			}
			if sg.NumNodes() != len(wantNodes) {
				t.Fatalf("node counts diverge: %d vs %d", sg.NumNodes(), len(wantNodes))
			}
			for key, want := range wantNodes {
				got, ok := sg.Node(key)
				if !ok {
					t.Fatalf("missing node %q", key)
				}
				if got.Key != want.Key || got.SubjectID != want.SubjectID ||
					got.Name != want.Name || got.Num != want.Num ||
					!reflect.DeepEqual(got.Members, want.Members) ||
					!reflect.DeepEqual(got.Weights, want.Weights) ||
					!reflect.DeepEqual(got.Sources, want.Sources) {
					t.Fatalf("node %q diverges:\n got  %+v\n want %+v", key, got, want)
				}
				// Member handle resolution must agree with string resolution.
				ts := sg.MemberTriples(got)
				if len(ts) != len(got.Members) {
					t.Fatalf("MemberTriples(%q) = %d triples, want %d", key, len(ts), len(got.Members))
				}
				for i, tr := range ts {
					if tr.ID != got.Members[i] {
						t.Fatalf("member %d of %q resolves to %s, want %s", i, key, tr.ID, got.Members[i])
					}
				}
			}
		})
	}
}
