package linegraph

import (
	"fmt"
	"testing"
	"testing/quick"

	"multirag/internal/kg"
)

func graphWithConflicts(t *testing.T) *kg.Graph {
	t.Helper()
	g := kg.New()
	g.AddEntity("CA981", "Flight", "flights")
	g.AddEntity("Heat", "Movie", "movies")
	add := func(subj, pred, obj, src string, w float64) {
		t.Helper()
		if _, err := g.AddTriple(kg.Triple{
			Subject: kg.CanonicalID(subj), Predicate: pred, Object: obj,
			Source: src, Weight: w,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Four homologous claims about CA981 status (Fig. 4's K4 example).
	add("CA981", "status", "Delayed", "airline", 0.9)
	add("CA981", "status", "Delayed", "airport", 0.9)
	add("CA981", "status", "On time", "forum", 0.4)
	add("CA981", "status", "Delayed", "weather", 0.8)
	// Two homologous year claims about Heat.
	add("Heat", "year", "1995", "imdb", 1)
	add("Heat", "year", "1996", "scraper", 0.5)
	// One isolated claim.
	add("Heat", "runtime", "170", "imdb", 1)
	return g
}

func TestTransformSharedSubject(t *testing.T) {
	g := graphWithConflicts(t)
	lg := Transform(g)
	if len(lg.Nodes) != g.NumTriples() {
		t.Fatalf("line graph nodes = %d, want %d", len(lg.Nodes), g.NumTriples())
	}
	// The 4 CA981 triples share a subject: complete K4 = 6 edges. The 3 Heat
	// triples give K3 = 3 edges. Total 9.
	if got := lg.NumEdges(); got != 9 {
		t.Fatalf("edges = %d, want 9", got)
	}
}

func TestTransformSharedObjectEntity(t *testing.T) {
	g := kg.New()
	g.AddEntity("A", "", "")
	g.AddEntity("B", "", "")
	g.AddEntity("C", "", "")
	// A -> C and B -> C share the object entity C.
	if _, err := g.AddTriple(kg.Triple{Subject: "a", Predicate: "links", Object: "C"}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddTriple(kg.Triple{Subject: "b", Predicate: "links", Object: "C"}); err != nil {
		t.Fatal(err)
	}
	lg := Transform(g)
	if lg.NumEdges() != 1 {
		t.Fatalf("object-shared triples must be adjacent, edges = %d", lg.NumEdges())
	}
}

func TestBuildHomologousGroups(t *testing.T) {
	g := graphWithConflicts(t)
	sg := Build(g)
	if sg.NumNodes() != 2 {
		t.Fatalf("homologous nodes = %d, want 2", sg.NumNodes())
	}
	node, ok := sg.Lookup(kg.CanonicalID("CA981"), "status")
	if !ok {
		t.Fatal("CA981 status group missing")
	}
	if node.Num != 4 || len(node.Members) != 4 {
		t.Fatalf("group size = %d", node.Num)
	}
	if len(node.Sources) != 4 {
		t.Fatalf("sources = %v", node.Sources)
	}
	if node.Name != "status" || node.SubjectID != kg.CanonicalID("CA981") {
		t.Fatalf("key decomposition wrong: %+v", node)
	}
	for _, id := range node.Members {
		if node.Weights[id] <= 0 {
			t.Fatalf("member %s has no weight", id)
		}
	}
}

func TestBuildIsolated(t *testing.T) {
	g := graphWithConflicts(t)
	sg := Build(g)
	if len(sg.IsolatedIDs()) != 1 {
		t.Fatalf("isolated = %v, want exactly the runtime triple", sg.IsolatedIDs())
	}
	tr, ok := sg.LookupIsolated(kg.CanonicalID("Heat"), "runtime")
	if !ok || tr.Object != "170" {
		t.Fatalf("isolated lookup = %v, %v", tr, ok)
	}
	if _, ok := sg.Lookup(kg.CanonicalID("Heat"), "runtime"); ok {
		t.Fatal("singleton key must not form a homologous node")
	}
}

func TestSubgraphLineGraphComplete(t *testing.T) {
	g := graphWithConflicts(t)
	sg := Build(g)
	node, _ := sg.Lookup(kg.CanonicalID("CA981"), "status")
	lg := sg.SubgraphLineGraph(node)
	// K4: every node has degree 3 (Fig. 4).
	for _, id := range lg.Nodes {
		if lg.Degree(id) != 3 {
			t.Fatalf("degree(%s) = %d, want 3", id, lg.Degree(id))
		}
	}
	if lg.NumEdges() != 6 {
		t.Fatalf("K4 edges = %d, want 6", lg.NumEdges())
	}
}

func TestMemberTriples(t *testing.T) {
	g := graphWithConflicts(t)
	sg := Build(g)
	node, _ := sg.Lookup(kg.CanonicalID("Heat"), "year")
	ts := sg.MemberTriples(node)
	if len(ts) != 2 {
		t.Fatalf("member triples = %d", len(ts))
	}
}

func TestComputeStats(t *testing.T) {
	g := graphWithConflicts(t)
	st := Build(g).ComputeStats()
	if st.HomologousNodes != 2 || st.Isolated != 1 || st.MaxGroupSize != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MeanGroupSize != 3 {
		t.Fatalf("mean group size = %v, want 3", st.MeanGroupSize)
	}
}

// Property: every triple lands in exactly one place — a homologous node or
// the isolated set — and group sizes sum to the triple count.
func TestPartitionProperty(t *testing.T) {
	f := func(assign []uint8) bool {
		g := kg.New()
		for i := 0; i < 4; i++ {
			g.AddEntity(fmt.Sprintf("e%d", i), "", "")
		}
		for i, a := range assign {
			_, err := g.AddTriple(kg.Triple{
				Subject:   fmt.Sprintf("e%d", a%4),
				Predicate: fmt.Sprintf("p%d", (a/4)%3),
				Object:    fmt.Sprintf("v%d", i),
			})
			if err != nil {
				return false
			}
		}
		sg := Build(g)
		total := len(sg.IsolatedIDs())
		seen := map[string]bool{}
		for _, id := range sg.IsolatedIDs() {
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		okNodes := true
		sg.ForEachNode(func(_ string, n *HomologousNode) {
			if n.Num < 2 || n.Num != len(n.Members) {
				okNodes = false
			}
			total += n.Num
			for _, id := range n.Members {
				if seen[id] {
					okNodes = false
				}
				seen[id] = true
			}
		})
		return okNodes && total == g.NumTriples()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: line-graph adjacency is symmetric and irreflexive.
func TestLineGraphSymmetryProperty(t *testing.T) {
	f := func(assign []uint8) bool {
		g := kg.New()
		for i := 0; i < 4; i++ {
			g.AddEntity(fmt.Sprintf("e%d", i), "", "")
		}
		for i, a := range assign {
			g.AddTriple(kg.Triple{
				Subject:   fmt.Sprintf("e%d", a%4),
				Predicate: "p",
				Object:    fmt.Sprintf("e%d", (a/4)%4), // may link entities
			})
			_ = i
		}
		lg := Transform(g)
		for a, neigh := range lg.Adj {
			for _, b := range neigh {
				if a == b {
					return false
				}
				found := false
				for _, back := range lg.Adj[b] {
					if back == a {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
