package linegraph

import (
	"fmt"
	"sort"

	"multirag/internal/kg"
	"multirag/internal/wal"
)

// Checkpoint serialization of the homologous line graph. Only the irreducible
// state is stored: each homologous node as its key plus member triple
// handles, each isolated point as its key plus triple ID, and the monotone
// maxGroup bound (which can exceed the value recomputable from the live nodes
// after destructive mutation, so it cannot be derived). Nodes are rebuilt
// through newHomologousNode against the already-decoded graph — the same
// constructor Build and BuildDelta use — so a recovered SG is structurally
// identical to the one that was checkpointed, and the lazy caches (isolated
// list, attribute index) refill on first use exactly as after a Build.
//
// Keys are emitted in sorted order, making the encoding deterministic: two
// equivalent SGs serialize to identical bytes, which is what lets the crash
// tests compare recovered state against the pre-crash snapshot byte for byte.

// EncodeTo serializes the SG into e.
func (sg *SG) EncodeTo(e *wal.Encoder) {
	keys := make([]string, 0, sg.nodes.n)
	sg.nodes.forEach(func(k string, _ *HomologousNode) { keys = append(keys, k) })
	sort.Strings(keys)
	e.Int(len(keys))
	for _, k := range keys {
		n, _ := sg.nodes.get(k)
		e.String(k)
		e.Int(len(n.Members))
		if len(n.members) == len(n.Members) {
			for _, h := range n.members {
				e.Int(int(h))
			}
			continue
		}
		// Hand-constructed nodes carry only ID strings; fall back to parsing.
		for _, id := range n.Members {
			h, ok := kg.ParseTripleID(id)
			if !ok {
				h = -1 // rejected on decode
			}
			e.Int(int(h))
		}
	}

	iso := make([][2]string, 0, sg.isoIndex.n)
	sg.isoIndex.forEach(func(k, id string) { iso = append(iso, [2]string{k, id}) })
	sort.Slice(iso, func(i, j int) bool { return iso[i][0] < iso[j][0] })
	e.Int(len(iso))
	for _, kv := range iso {
		e.String(kv[0])
		e.String(kv[1])
	}
	e.Int(sg.maxGroup)
}

// DecodeSG rebuilds an SG from d against g (the inverse of EncodeTo). Member
// handles must resolve to live triples of g whose key matches the node's.
func DecodeSG(d *wal.Decoder, g *kg.Graph) (*SG, error) {
	sg := &SG{graph: g}
	nNodes := d.Int()
	for i := 0; i < nNodes && d.Err() == nil; i++ {
		key := d.String()
		m := d.Int()
		members := make([]*kg.Triple, 0, m)
		for j := 0; j < m && d.Err() == nil; j++ {
			h := int32(d.Int())
			t := g.TripleAt(h)
			if t == nil {
				return nil, fmt.Errorf("linegraph: decode: node %q member handle %d is not a live triple", key, h)
			}
			members = append(members, t)
		}
		if d.Err() != nil {
			break
		}
		if len(members) < 2 {
			return nil, fmt.Errorf("linegraph: decode: node %q has %d members (need >= 2)", key, len(members))
		}
		if members[0].Key() != key {
			return nil, fmt.Errorf("linegraph: decode: node %q holds members keyed %q", key, members[0].Key())
		}
		sg.putNode(key, newHomologousNode(key, members))
	}
	nIso := d.Int()
	for i := 0; i < nIso && d.Err() == nil; i++ {
		key := d.String()
		id := d.String()
		if d.Err() != nil {
			break
		}
		if _, ok := g.Triple(id); !ok {
			return nil, fmt.Errorf("linegraph: decode: isolated point %q names unknown triple %q", key, id)
		}
		sg.isoIndex.put(key, id)
	}
	if mg := d.Int(); mg > sg.maxGroup {
		sg.maxGroup = mg
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return sg, nil
}
