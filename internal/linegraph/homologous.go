package linegraph

import (
	"sort"

	"multirag/internal/kg"
)

// HomologousNode is the homologous centre node snode = {name, meta, num,
// C(v)} of Definition 4, plus the member triples U_snode and their associated
// edge weights E_snode = {wᵢ}. One homologous node aggregates every claim the
// corpus makes about a single (subject, predicate) key.
type HomologousNode struct {
	// Key is the (subject, predicate) key shared by all member triples.
	Key string
	// SubjectID and Name decompose the key: Name is the common attribute
	// name, SubjectID the canonical subject entity.
	SubjectID string
	Name      string
	// Meta carries shared metadata (domain set, format set).
	Meta map[string]string
	// Num is the number of homologous data instances (num in Def. 4).
	Num int
	// Members lists the member triple IDs, sorted.
	Members []string
	// Weights maps member triple ID → association-edge weight wᵢ (the
	// triple's extraction confidence).
	Weights map[string]float64
	// Sources lists the distinct sources contributing members, sorted.
	Sources []string
}

// SG is the homologous triple line graph SG′ of Definition 5: every
// homologous subgraph (one per HomologousNode) plus the isolated triples that
// have no homologous partner. SG′ is used only for consistency checks and
// homologous retrieval; all other queries run on the original graph G.
type SG struct {
	// Nodes maps key → homologous node, for all keys with ≥2 members.
	Nodes map[string]*HomologousNode
	// Isolated lists triple IDs whose key has a single member, sorted.
	Isolated []string
	// byKeyIsolated indexes isolated triples by their key for lookups.
	byKeyIsolated map[string]string
	graph         *kg.Graph
}

// Build runs homologous subgraph matching (§III-C) over g and assembles SG′.
//
// The algorithm follows the paper: initialise the unvisited set to all triple
// nodes; group nodes by their retrieval key; every group with at least two
// members forms a homologous subgraph (its line-graph form is the complete
// graph over the members, Fig. 4); singleton groups go to the isolated point
// set LVs. Grouping is a single pass with a hash map and the final ordering
// sort is O(n log n), matching the stated complexity bound.
func Build(g *kg.Graph) *SG {
	sg := &SG{
		Nodes:         map[string]*HomologousNode{},
		byKeyIsolated: map[string]string{},
		graph:         g,
	}
	groups := map[string][]*kg.Triple{}
	for _, id := range g.TripleIDs() {
		t, _ := g.Triple(id)
		groups[t.Key()] = append(groups[t.Key()], t)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		members := groups[key]
		if len(members) < 2 {
			sg.Isolated = append(sg.Isolated, members[0].ID)
			sg.byKeyIsolated[key] = members[0].ID
			continue
		}
		sg.Nodes[key] = newHomologousNode(key, members)
	}
	sort.Strings(sg.Isolated)
	return sg
}

// newHomologousNode assembles the homologous centre node for one key group
// (≥2 members). Both the full Build and the incremental BuildDelta construct
// nodes through here, so delta-maintained and from-scratch SGs are
// structurally identical.
func newHomologousNode(key string, members []*kg.Triple) *HomologousNode {
	node := &HomologousNode{
		Key:       key,
		SubjectID: members[0].Subject,
		Name:      members[0].Predicate,
		Meta:      map[string]string{},
		Num:       len(members),
		Weights:   map[string]float64{},
	}
	srcSet := map[string]bool{}
	for _, t := range members {
		node.Members = append(node.Members, t.ID)
		node.Weights[t.ID] = t.Weight
		srcSet[t.Source] = true
	}
	sort.Strings(node.Members)
	for s := range srcSet {
		node.Sources = append(node.Sources, s)
	}
	sort.Strings(node.Sources)
	return node
}

// Graph returns the underlying knowledge graph.
func (sg *SG) Graph() *kg.Graph { return sg.graph }

// Lookup returns the homologous node for (subject, predicate), if any.
func (sg *SG) Lookup(subjectID, predicate string) (*HomologousNode, bool) {
	n, ok := sg.Nodes[subjectID+"\x00"+predicate]
	return n, ok
}

// LookupIsolated returns the isolated triple for (subject, predicate), if the
// key exists but has a single member.
func (sg *SG) LookupIsolated(subjectID, predicate string) (*kg.Triple, bool) {
	id, ok := sg.byKeyIsolated[subjectID+"\x00"+predicate]
	if !ok {
		return nil, false
	}
	return sg.graph.Triple(id)
}

// MemberTriples resolves a homologous node's member IDs to triples, in
// member order.
func (sg *SG) MemberTriples(n *HomologousNode) []*kg.Triple {
	out := make([]*kg.Triple, 0, len(n.Members))
	for _, id := range n.Members {
		if t, ok := sg.graph.Triple(id); ok {
			out = append(out, t)
		}
	}
	return out
}

// SubgraphLineGraph returns the line-graph form of one homologous subgraph:
// the complete graph over its members (every pair shares the subject entity,
// so every pair is adjacent — Fig. 4's K₄ example).
func (sg *SG) SubgraphLineGraph(n *HomologousNode) *LineGraph {
	lg := &LineGraph{Adj: map[string][]string{}}
	lg.Nodes = append(lg.Nodes, n.Members...)
	for _, a := range n.Members {
		for _, b := range n.Members {
			if a != b {
				lg.Adj[a] = append(lg.Adj[a], b)
			}
		}
	}
	return lg
}

// Stats summarises SG′ for reporting and debugging.
type Stats struct {
	HomologousNodes int
	Isolated        int
	MeanGroupSize   float64
	MaxGroupSize    int
}

// ComputeStats returns aggregate statistics of the homologous structure.
func (sg *SG) ComputeStats() Stats {
	st := Stats{HomologousNodes: len(sg.Nodes), Isolated: len(sg.Isolated)}
	total := 0
	for _, n := range sg.Nodes {
		total += n.Num
		if n.Num > st.MaxGroupSize {
			st.MaxGroupSize = n.Num
		}
	}
	if len(sg.Nodes) > 0 {
		st.MeanGroupSize = float64(total) / float64(len(sg.Nodes))
	}
	return st
}
