package linegraph

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"multirag/internal/kg"
)

// HomologousNode is the homologous centre node snode = {name, meta, num,
// C(v)} of Definition 4, plus the member triples U_snode and their associated
// edge weights E_snode = {wᵢ}. One homologous node aggregates every claim the
// corpus makes about a single (subject, predicate) key.
type HomologousNode struct {
	// Key is the (subject, predicate) key shared by all member triples.
	Key string
	// SubjectID and Name decompose the key: Name is the common attribute
	// name, SubjectID the canonical subject entity.
	SubjectID string
	Name      string
	// Meta carries shared metadata (domain set, format set).
	Meta map[string]string
	// Num is the number of homologous data instances (num in Def. 4).
	Num int
	// Members lists the member triple IDs, sorted.
	Members []string
	// Weights maps member triple ID → association-edge weight wᵢ (the
	// triple's extraction confidence).
	Weights map[string]float64
	// Sources lists the distinct sources contributing members, sorted.
	Sources []string

	// members holds the interned triple handles parallel to Members, so
	// member resolution is an array index instead of a map lookup.
	members []int32
}

// SG is the homologous triple line graph SG′ of Definition 5: every
// homologous subgraph (one per HomologousNode) plus the isolated triples that
// have no homologous partner. SG′ is used only for consistency checks and
// homologous retrieval; all other queries run on the original graph G.
//
// Both indexes — key → homologous node and key → isolated triple — are
// copy-on-write overlays: a frozen base shared with the previous generation
// plus a private tail of keys the last delta touched, flattened into a fresh
// base once the tail grows to a constant fraction of it. BuildDelta therefore
// copies O(|delta|) entries per batch instead of the whole corpus's key
// space. Access goes through Lookup/Node/ForEachNode/NumNodes.
type SG struct {
	nodes    overlay[*HomologousNode]
	isoIndex overlay[string]
	graph    *kg.Graph

	// memberTotal and maxGroup carry the aggregate member statistics
	// incrementally: Build accumulates them during its single construction
	// walk and BuildDelta adjusts them per touched key, so ComputeStats is an
	// O(1) read instead of the full node re-walk every ingest commit used to
	// pay. maxGroup is maintained monotonically — exact for the pure-addition
	// deltas BuildDelta accepts (a key's member set only grows); destructive
	// mutation goes through a full Build, which recomputes it from scratch.
	memberTotal int
	maxGroup    int

	// isolated is the sorted isolated-triple ID list, materialised lazily on
	// first IsolatedIDs call (most snapshots never need it; BuildDelta used
	// to re-sort it on every batch). sync.Once keeps the fill race-free for
	// concurrent readers of a published snapshot.
	isoOnce  sync.Once
	isolated []string

	// attrNames is the per-snapshot evidence index: subject entity ID →
	// sorted attribute names of its homologous nodes. It serves the
	// nested-attribute candidate lookup of the query path (status →
	// status_state), which otherwise needs a full node scan per sub-question.
	// Like isolated it is materialised lazily and amortised per snapshot
	// generation: BuildDelta starts every generation with a fresh (empty)
	// index, so the one-off O(n) fill is paid by the first query against that
	// generation and shared by all later ones.
	attrOnce  sync.Once
	attrNames map[string][]string

	// nodeScans counts homologous nodes visited through ForEachNode — the
	// instrumentation hook behind the "no full scan on the query hot path"
	// tests. Stats/debug walks go through the overlay directly and are not
	// counted.
	nodeScans atomic.Int64
}

// Build runs homologous subgraph matching (§III-C) over g and assembles SG′.
//
// The algorithm follows the paper: group nodes by their retrieval key; every
// group with at least two members forms a homologous subgraph (its line-graph
// form is the complete graph over the members, Fig. 4); singleton groups go
// to the isolated point set LVs. The grouping pass is a single walk over the
// graph's interned (subject, predicate) key postings — the grouping hash map
// the string-keyed implementation rebuilt per call already exists inside the
// graph — and the final per-node ordering sort is O(n log n), matching the
// stated complexity bound.
func Build(g *kg.Graph) *SG {
	sg := &SG{graph: g}
	g.ForEachKeyPosting(func(subjH, predH int32, posting []int32) {
		switch len(posting) {
		case 0: // fully-removed key
		case 1:
			t := g.TripleAt(posting[0])
			if t == nil {
				return
			}
			sg.isoIndex.put(t.Key(), t.ID)
		default:
			members := make([]*kg.Triple, 0, len(posting))
			for _, h := range posting {
				if t := g.TripleAt(h); t != nil {
					members = append(members, t)
				}
			}
			switch len(members) {
			case 0:
			case 1:
				sg.isoIndex.put(members[0].Key(), members[0].ID)
			default:
				key := members[0].Key()
				sg.putNode(key, newHomologousNode(key, members))
			}
		}
	})
	return sg
}

// putNode installs a homologous node and folds it into the incremental
// aggregate statistics. Both Build and BuildDelta insert through here.
func (sg *SG) putNode(key string, n *HomologousNode) {
	sg.nodes.put(key, n)
	sg.memberTotal += n.Num
	if n.Num > sg.maxGroup {
		sg.maxGroup = n.Num
	}
}

// delNode removes a homologous node (if the key holds one) and deducts it
// from the aggregate statistics. maxGroup is left as a monotone upper bound;
// see the field comment.
func (sg *SG) delNode(key string) {
	if old, ok := sg.nodes.get(key); ok {
		sg.memberTotal -= old.Num
	}
	sg.nodes.del(key)
}

// newHomologousNode assembles the homologous centre node for one key group
// (≥2 members). Both the full Build and the incremental BuildDelta construct
// nodes through here, so delta-maintained and from-scratch SGs are
// structurally identical.
func newHomologousNode(key string, members []*kg.Triple) *HomologousNode {
	node := &HomologousNode{
		Key:       key,
		SubjectID: members[0].Subject,
		Name:      members[0].Predicate,
		Meta:      map[string]string{},
		Num:       len(members),
		Weights:   map[string]float64{},
	}
	srcSet := map[string]bool{}
	for _, t := range members {
		node.Members = append(node.Members, t.ID)
		node.Weights[t.ID] = t.Weight
		srcSet[t.Source] = true
	}
	sort.Strings(node.Members)
	node.members = make([]int32, len(node.Members))
	for i, id := range node.Members {
		node.members[i], _ = kg.ParseTripleID(id)
	}
	for s := range srcSet {
		node.Sources = append(node.Sources, s)
	}
	sort.Strings(node.Sources)
	return node
}

// Graph returns the underlying knowledge graph.
func (sg *SG) Graph() *kg.Graph { return sg.graph }

// Lookup returns the homologous node for (subject, predicate), if any.
func (sg *SG) Lookup(subjectID, predicate string) (*HomologousNode, bool) {
	return sg.nodes.get(subjectID + "\x00" + predicate)
}

// Node returns the homologous node for a precomputed Triple.Key() value.
func (sg *SG) Node(key string) (*HomologousNode, bool) { return sg.nodes.get(key) }

// NumNodes returns the number of homologous nodes (keys with ≥2 members).
func (sg *SG) NumNodes() int { return sg.nodes.n }

// ForEachNode visits every homologous node, in unspecified order. Each visit
// is charged to the NodeScans counter; hot paths should use Lookup or
// NestedCandidates instead.
func (sg *SG) ForEachNode(fn func(key string, n *HomologousNode)) {
	sg.nodes.forEach(func(k string, n *HomologousNode) {
		sg.nodeScans.Add(1)
		fn(k, n)
	})
}

// NodeScans reports how many homologous nodes ForEachNode has visited over
// this SG's lifetime. Tests use it to assert the query path stays scan-free.
func (sg *SG) NodeScans() int64 { return sg.nodeScans.Load() }

// SubjectAttrNames returns the sorted attribute names of every homologous
// node whose subject is subjectID (nil when the subject has none). The
// backing index is built on first call and cached for the lifetime of this
// SG; the fill is synchronised, so concurrent readers of a published
// snapshot are safe. The returned slice is shared — callers must not mutate
// it.
func (sg *SG) SubjectAttrNames(subjectID string) []string {
	sg.attrOnce.Do(func() {
		idx := make(map[string][]string)
		sg.nodes.forEach(func(_ string, n *HomologousNode) {
			idx[n.SubjectID] = append(idx[n.SubjectID], n.Name)
		})
		for _, names := range idx {
			sort.Strings(names)
		}
		sg.attrNames = idx
	})
	return sg.attrNames[subjectID]
}

// NestedCandidates returns the homologous nodes holding subjectID's nested
// attributes under relation — names of the form relation+"_..." (status →
// status_state) — in name order. The lookup is a binary search over the
// subject's sorted attribute names plus one key probe per match: O(log n +
// matches) against the per-snapshot index, never a node scan.
func (sg *SG) NestedCandidates(subjectID, relation string) []*HomologousNode {
	names := sg.SubjectAttrNames(subjectID)
	if len(names) == 0 {
		return nil
	}
	prefix := relation + "_"
	var out []*HomologousNode
	for i := sort.SearchStrings(names, prefix); i < len(names) && strings.HasPrefix(names[i], prefix); i++ {
		if n, ok := sg.Lookup(subjectID, names[i]); ok {
			out = append(out, n)
		}
	}
	return out
}

// NumIsolated returns the number of isolated points (single-member keys).
func (sg *SG) NumIsolated() int { return sg.isoIndex.n }

// LookupIsolated returns the isolated triple for (subject, predicate), if the
// key exists but has a single member.
func (sg *SG) LookupIsolated(subjectID, predicate string) (*kg.Triple, bool) {
	id, ok := sg.isoIndex.get(subjectID + "\x00" + predicate)
	if !ok {
		return nil, false
	}
	return sg.graph.Triple(id)
}

// IsolatedIDs returns the IDs of triples whose key has a single member,
// sorted. The list is materialised on first call and cached; the cache fill
// is synchronised, so concurrent readers of a published SG are safe.
func (sg *SG) IsolatedIDs() []string {
	sg.isoOnce.Do(func() {
		sg.isolated = make([]string, 0, sg.isoIndex.n)
		sg.isoIndex.forEach(func(_, id string) {
			sg.isolated = append(sg.isolated, id)
		})
		sort.Strings(sg.isolated)
	})
	return sg.isolated
}

// MemberTriples resolves a homologous node's member IDs to triples, in
// member order. For nodes built by this package the resolution is an
// array-indexed handle load per member; Members strings are only parsed as a
// fallback for hand-constructed nodes.
func (sg *SG) MemberTriples(n *HomologousNode) []*kg.Triple {
	out := make([]*kg.Triple, 0, len(n.Members))
	if len(n.members) == len(n.Members) && len(n.members) > 0 {
		for _, h := range n.members {
			if t := sg.graph.TripleAt(h); t != nil {
				out = append(out, t)
			}
		}
		return out
	}
	for _, id := range n.Members {
		if t, ok := sg.graph.Triple(id); ok {
			out = append(out, t)
		}
	}
	return out
}

// SubgraphLineGraph returns the line-graph form of one homologous subgraph:
// the complete graph over its members (every pair shares the subject entity,
// so every pair is adjacent — Fig. 4's K₄ example).
func (sg *SG) SubgraphLineGraph(n *HomologousNode) *LineGraph {
	lg := &LineGraph{Adj: map[string][]string{}}
	lg.Nodes = append(lg.Nodes, n.Members...)
	for _, a := range n.Members {
		for _, b := range n.Members {
			if a != b {
				lg.Adj[a] = append(lg.Adj[a], b)
			}
		}
	}
	return lg
}

// Stats summarises SG′ for reporting and debugging.
type Stats struct {
	HomologousNodes int
	Isolated        int
	MeanGroupSize   float64
	MaxGroupSize    int
}

// ComputeStats returns aggregate statistics of the homologous structure. The
// aggregates are maintained incrementally by Build and BuildDelta, so this is
// an O(1) read — safe to call per ingest commit (it used to re-walk every
// homologous node each time). RecomputeStats is the walking oracle.
func (sg *SG) ComputeStats() Stats {
	st := Stats{HomologousNodes: sg.nodes.n, Isolated: sg.isoIndex.n, MaxGroupSize: sg.maxGroup}
	if sg.nodes.n > 0 {
		st.MeanGroupSize = float64(sg.memberTotal) / float64(sg.nodes.n)
	} else {
		st.MaxGroupSize = 0
	}
	return st
}

// RecomputeStats derives the statistics by walking every homologous node —
// the pre-incremental implementation, kept as the property-test oracle for
// ComputeStats and as part of the serialized-ingest A/B baseline
// (core.Config.SerializeIngest), which reproduces the per-commit full walk.
func (sg *SG) RecomputeStats() Stats {
	st := Stats{HomologousNodes: sg.nodes.n, Isolated: sg.isoIndex.n}
	total := 0
	sg.nodes.forEach(func(_ string, n *HomologousNode) {
		total += n.Num
		if n.Num > st.MaxGroupSize {
			st.MaxGroupSize = n.Num
		}
	})
	if sg.nodes.n > 0 {
		st.MeanGroupSize = float64(total) / float64(sg.nodes.n)
	}
	return st
}
