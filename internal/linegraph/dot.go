package linegraph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders a homologous subgraph in Graphviz DOT form: the
// homologous centre node linked to each member claim, plus the complete
// line-graph adjacency between members (the Fig. 4 picture). It is a
// debugging and documentation aid; `multirag -demo` corpora stay small
// enough to render directly.
func (sg *SG) WriteDOT(w io.Writer, n *HomologousNode) error {
	if n == nil {
		return fmt.Errorf("linegraph: WriteDOT on nil node")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "graph homologous {\n")
	fmt.Fprintf(&b, "  label=%q;\n", n.SubjectID+" / "+n.Name)
	fmt.Fprintf(&b, "  snode [shape=doublecircle,label=%q];\n",
		fmt.Sprintf("%s\\nnum=%d", n.Name, n.Num))
	members := sg.MemberTriples(n)
	for _, t := range members {
		fmt.Fprintf(&b, "  %s [shape=box,label=%q];\n",
			dotID(t.ID), fmt.Sprintf("%s\\n%s w=%.2f", t.Object, t.Source, t.Weight))
		fmt.Fprintf(&b, "  snode -- %s [label=%q];\n",
			dotID(t.ID), fmt.Sprintf("w=%.2f", n.Weights[t.ID]))
	}
	// Complete line-graph edges between members (pairwise homologous).
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			fmt.Fprintf(&b, "  %s -- %s [style=dashed];\n",
				dotID(members[i].ID), dotID(members[j].ID))
		}
	}
	fmt.Fprintf(&b, "}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func dotID(id string) string {
	return "n_" + strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r >= 'A' && r <= 'Z' {
			return r
		}
		return '_'
	}, id)
}
