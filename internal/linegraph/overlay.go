package linegraph

import "maps"

// overlay is the copy-on-write map backing SG's two key indexes (key →
// homologous node, key → isolated triple ID). The pattern mirrors the
// interner maps of the graph core (internal/kg/cowmap.go): lookups probe a
// private tail before a frozen shared base; deleting a base key leaves a
// tombstone (the value type's zero value) in the tail; cloning copies only
// the tail, flattening tail into a fresh base once it reaches half the base
// so probe depth and clone cost stay amortised O(delta). Bases are never
// written after construction, so any number of SG generations (and
// concurrent readers of published snapshots) share them safely.
//
// The zero value of V doubles as the tombstone, so live values must be
// non-zero (non-nil nodes, non-empty IDs).
type overlay[V comparable] struct {
	base map[string]V
	tail map[string]V
	n    int // live entry count
}

// overlayFlatten reports whether a tail of size t over a base of size b is
// due for flattening at clone time. Kept in sync with flattenTail in
// internal/kg/cowmap.go, the same policy one layer down.
func overlayFlatten(t, b int) bool { return t >= 64 && 2*t >= b }

func (o *overlay[V]) get(k string) (V, bool) {
	var zero V
	if v, ok := o.tail[k]; ok {
		return v, v != zero
	}
	v, ok := o.base[k]
	return v, ok
}

func (o *overlay[V]) put(k string, v V) {
	if _, live := o.get(k); !live {
		o.n++
	}
	if o.tail == nil {
		o.tail = map[string]V{}
	}
	o.tail[k] = v
}

func (o *overlay[V]) del(k string) {
	if _, live := o.get(k); !live {
		return
	}
	o.n--
	if _, inBase := o.base[k]; inBase {
		if o.tail == nil {
			o.tail = map[string]V{}
		}
		var zero V
		o.tail[k] = zero // tombstone
	} else {
		delete(o.tail, k)
	}
}

func (o *overlay[V]) forEach(fn func(k string, v V)) {
	var zero V
	for k, v := range o.tail {
		if v != zero {
			fn(k, v)
		}
	}
	for k, v := range o.base {
		if _, shadowed := o.tail[k]; !shadowed {
			fn(k, v)
		}
	}
}

func (o *overlay[V]) clone() overlay[V] {
	if overlayFlatten(len(o.tail), len(o.base)) {
		merged := make(map[string]V, o.n)
		o.forEach(func(k string, v V) { merged[k] = v })
		return overlay[V]{base: merged, n: o.n}
	}
	return overlay[V]{base: o.base, tail: maps.Clone(o.tail), n: o.n}
}
