package linegraph

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"multirag/internal/kg"
)

// addRandomBatch inserts n pseudo-random triples into g (drawn from a small
// entity/predicate space so keys collide and homologous groups form, grow and
// split from isolated points) and returns the new triple IDs.
func addRandomBatch(t *testing.T, g *kg.Graph, rng *rand.Rand, n int) []string {
	t.Helper()
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		subj := fmt.Sprintf("entity-%d", rng.Intn(8))
		pred := fmt.Sprintf("attr%d", rng.Intn(5))
		obj := fmt.Sprintf("value-%d", rng.Intn(4))
		src := fmt.Sprintf("src-%d", rng.Intn(3))
		g.AddEntity(subj, "Entity", "test")
		id, err := g.AddTriple(kg.Triple{
			Subject:   kg.CanonicalID(subj),
			Predicate: pred,
			Object:    obj,
			Source:    src,
			Weight:    0.5 + 0.5*rng.Float64(),
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return ids
}

// requireEqualSG asserts that two SGs over the same graph are structurally
// identical: same homologous nodes (keys, members, weights, sources), same
// isolated point set, same aggregate stats.
func requireEqualSG(t *testing.T, got, want *SG) {
	t.Helper()
	if !reflect.DeepEqual(got.ComputeStats(), want.ComputeStats()) {
		t.Fatalf("stats diverge: delta=%+v scratch=%+v", got.ComputeStats(), want.ComputeStats())
	}
	// The incrementally maintained aggregates must agree with the walking
	// oracle on both sides (delta-chained and from-scratch construction).
	if !reflect.DeepEqual(got.ComputeStats(), got.RecomputeStats()) {
		t.Fatalf("incremental stats drifted from oracle: %+v vs %+v", got.ComputeStats(), got.RecomputeStats())
	}
	if !reflect.DeepEqual(want.ComputeStats(), want.RecomputeStats()) {
		t.Fatalf("scratch stats drifted from oracle: %+v vs %+v", want.ComputeStats(), want.RecomputeStats())
	}
	if !reflect.DeepEqual(got.IsolatedIDs(), want.IsolatedIDs()) {
		t.Fatalf("isolated sets diverge:\n delta   %v\n scratch %v", got.IsolatedIDs(), want.IsolatedIDs())
	}
	if got.NumNodes() != want.NumNodes() {
		t.Fatalf("node counts diverge: %d vs %d", got.NumNodes(), want.NumNodes())
	}
	want.ForEachNode(func(key string, wn *HomologousNode) {
		gn, ok := got.Node(key)
		if !ok {
			t.Fatalf("delta SG missing homologous node %q", key)
		}
		if !reflect.DeepEqual(gn, wn) {
			t.Fatalf("node %q diverges:\n delta   %+v\n scratch %+v", key, gn, wn)
		}
	})
	got.ForEachNode(func(key string, _ *HomologousNode) {
		if _, ok := want.Node(key); !ok {
			t.Fatalf("delta SG has spurious homologous node %q", key)
		}
	})
}

// TestBuildDeltaMatchesScratch is the incremental-maintenance property test:
// for a sequence of random ingest batches, the SG maintained by chained
// BuildDelta calls must be structurally identical to a from-scratch Build
// over the union corpus after every batch.
func TestBuildDeltaMatchesScratch(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := kg.New()
			var sg *SG
			for batch := 0; batch < 8; batch++ {
				n := 1 + rng.Intn(12)
				ids := addRandomBatch(t, g, rng, n)
				sg = BuildDelta(sg, g, ids)
				requireEqualSG(t, sg, Build(g))
			}
		})
	}
}

// TestBuildDeltaPromotesIsolated pins the key transition: a key that starts
// as an isolated point must be promoted to a homologous node once a second
// claim arrives, and lookups must follow.
func TestBuildDeltaPromotesIsolated(t *testing.T) {
	g := kg.New()
	g.AddEntity("CA981", "Flight", "flights")
	id1, err := g.AddTriple(kg.Triple{
		Subject: kg.CanonicalID("CA981"), Predicate: "status", Object: "Delayed",
		Source: "airline", Weight: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	sg := BuildDelta(nil, g, []string{id1})
	if _, ok := sg.LookupIsolated(kg.CanonicalID("CA981"), "status"); !ok {
		t.Fatal("single claim must start isolated")
	}
	id2, err := g.AddTriple(kg.Triple{
		Subject: kg.CanonicalID("CA981"), Predicate: "status", Object: "Delayed",
		Source: "airport", Weight: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := sg
	sg = BuildDelta(prev, g, []string{id2})
	if _, ok := sg.LookupIsolated(kg.CanonicalID("CA981"), "status"); ok {
		t.Fatal("promoted key must leave the isolated set")
	}
	n, ok := sg.Lookup(kg.CanonicalID("CA981"), "status")
	if !ok || n.Num != 2 {
		t.Fatalf("promotion failed: %+v", n)
	}
	// The previous snapshot must be untouched (immutable for readers).
	if _, ok := prev.LookupIsolated(kg.CanonicalID("CA981"), "status"); !ok {
		t.Fatal("previous SG snapshot was mutated by BuildDelta")
	}
}

// TestBuildDeltaSharesUntouchedNodes verifies the O(delta) property: nodes
// whose key the delta does not intersect are shared by pointer with the
// previous SG rather than rebuilt.
func TestBuildDeltaSharesUntouchedNodes(t *testing.T) {
	g := graphWithConflicts(t)
	prev := Build(g)
	untouched, _ := prev.Node(kg.CanonicalID("Heat") + "\x00" + "year")
	id, err := g.AddTriple(kg.Triple{
		Subject: kg.CanonicalID("CA981"), Predicate: "status", Object: "Delayed",
		Source: "radar", Weight: 0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	next := BuildDelta(prev, g, []string{id})
	if n, _ := next.Node(untouched.Key); n != untouched {
		t.Fatal("untouched homologous node was rebuilt instead of shared")
	}
	nextStatus, _ := next.Node(kg.CanonicalID("CA981") + "\x00" + "status")
	prevStatus, _ := prev.Node(kg.CanonicalID("CA981") + "\x00" + "status")
	if nextStatus == prevStatus {
		t.Fatal("affected homologous node must be rebuilt, not shared")
	}
}
