package linegraph

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"multirag/internal/kg"
	"multirag/internal/wal"
)

func encodeSG(sg *SG) []byte {
	var e wal.Encoder
	sg.EncodeTo(&e)
	return append([]byte(nil), e.Bytes()...)
}

// requireSGEqual compares two SGs over the same graph through the public
// surface the query path reads.
func requireSGEqual(t *testing.T, got, want *SG) {
	t.Helper()
	if g, w := got.ComputeStats(), want.ComputeStats(); g != w {
		t.Fatalf("ComputeStats diverges: got %+v want %+v", g, w)
	}
	if g, w := got.IsolatedIDs(), want.IsolatedIDs(); !reflect.DeepEqual(g, w) {
		t.Fatalf("IsolatedIDs diverges: got %v want %v", g, w)
	}
	want.ForEachNode(func(key string, wn *HomologousNode) {
		gn, ok := got.Node(key)
		if !ok {
			t.Fatalf("node %q missing after decode", key)
		}
		if gn.Key != wn.Key || gn.SubjectID != wn.SubjectID || gn.Name != wn.Name || gn.Num != wn.Num {
			t.Fatalf("node %q header diverges: got %+v want %+v", key, gn, wn)
		}
		if !reflect.DeepEqual(gn.Members, wn.Members) {
			t.Fatalf("node %q members diverge: got %v want %v", key, gn.Members, wn.Members)
		}
		if !reflect.DeepEqual(gn.Weights, wn.Weights) {
			t.Fatalf("node %q weights diverge", key)
		}
		if !reflect.DeepEqual(gn.Sources, wn.Sources) {
			t.Fatalf("node %q sources diverge", key)
		}
		if !reflect.DeepEqual(got.MemberTriples(gn), want.MemberTriples(wn)) {
			t.Fatalf("node %q member triples diverge", key)
		}
	})
	if got.NumNodes() != want.NumNodes() {
		t.Fatalf("NumNodes diverges: got %d want %d", got.NumNodes(), want.NumNodes())
	}
}

func TestSGSerializeRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name         string
		n            int
		withRemovals bool
	}{
		{"empty", 0, false},
		{"small", 30, false},
		{"removals", 400, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			g := randomLinkedGraph(t, rng, tc.n, tc.withRemovals)
			sg := Build(g)
			raw := encodeSG(sg)
			d := wal.NewDecoder(raw)
			got, err := DecodeSG(d, g)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Finish(); err != nil {
				t.Fatal(err)
			}
			requireSGEqual(t, got, sg)
			if !bytes.Equal(encodeSG(got), raw) {
				t.Fatal("re-encoded bytes differ from original encoding")
			}
		})
	}
}

// TestSGSerializeAfterDelta pins the case recovery actually hits: an SG grown
// through BuildDelta generations (overlay tails, monotone maxGroup) rather
// than one fresh Build.
func TestSGSerializeAfterDelta(t *testing.T) {
	g := kg.New()
	g.AddEntity("a", "T", "d")
	g.AddEntity("b", "T", "d")
	sg := Build(g)
	for i := 0; i < 6; i++ {
		var ids []string
		for j := 0; j < 3; j++ {
			id, err := g.AddTriple(kg.Triple{Subject: "a", Predicate: "p", Object: "v", Source: "s"})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		sg = BuildDelta(sg, g, ids)
	}
	raw := encodeSG(sg)
	d := wal.NewDecoder(raw)
	got, err := DecodeSG(d, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	requireSGEqual(t, got, sg)
	if !bytes.Equal(encodeSG(got), raw) {
		t.Fatal("re-encoded bytes differ")
	}
}

func TestDecodeSGRejectsBadMembers(t *testing.T) {
	g := kg.New()
	g.AddEntity("a", "T", "d")
	if _, err := g.AddTriple(kg.Triple{Subject: "a", Predicate: "p", Object: "v"}); err != nil {
		t.Fatal(err)
	}
	var e wal.Encoder
	e.Int(1)          // one node
	e.String("a\x00p") // key
	e.Int(2)          // two members
	e.Int(0)          // valid handle
	e.Int(99)         // dangling handle
	if _, err := DecodeSG(wal.NewDecoder(e.Bytes()), g); err == nil {
		t.Fatal("decode accepted a dangling member handle")
	}
}
