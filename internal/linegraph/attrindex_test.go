package linegraph

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"multirag/internal/kg"
)

// scanNested is the reference nested-candidate lookup: the full node scan the
// per-snapshot index replaces. It mirrors the pre-index query-path condition
// exactly (same subject, strictly-nested name).
func scanNested(sg *SG, subjectID, relation string) []*HomologousNode {
	var out []*HomologousNode
	sg.nodes.forEach(func(_ string, n *HomologousNode) {
		if n.SubjectID == subjectID && n.Name != relation && strings.HasPrefix(n.Name, relation+"_") {
			out = append(out, n)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func TestNestedCandidatesMatchScan(t *testing.T) {
	g := kg.New()
	add := func(subj, pred, obj, src string) {
		t.Helper()
		g.AddEntity(subj, "Entity", "t")
		if _, err := g.AddTriple(kg.Triple{
			Subject: kg.CanonicalID(subj), Predicate: pred, Object: obj, Source: src, Weight: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// status has two nested attributes plus a decoy sharing the prefix text
	// without the separator (statuses must NOT match status).
	for _, src := range []string{"a", "b"} {
		add("CA981", "status", "Delayed", src)
		add("CA981", "status_state", "Boarding gate closed", src)
		add("CA981", "status_reason", "Typhoon", src)
		add("CA981", "statuses", "many", src)
		add("MU588", "status_state", "On time", src)
	}
	sg := Build(g)
	for _, c := range []struct{ subj, rel string }{
		{"ca981", "status"}, {"mu588", "status"}, {"ca981", "statuses"},
		{"ca981", "gate"}, {"zz999", "status"},
	} {
		got := sg.NestedCandidates(c.subj, c.rel)
		want := scanNested(sg, c.subj, c.rel)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("NestedCandidates(%q,%q) = %v, scan = %v", c.subj, c.rel, keysOf(got), keysOf(want))
		}
	}
	if got := sg.NestedCandidates("ca981", "status"); len(got) != 2 {
		t.Fatalf("expected the two nested status attributes, got %v", keysOf(got))
	}
}

func keysOf(ns []*HomologousNode) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = n.Key
	}
	return out
}

// TestNestedCandidatesAcrossDeltaGenerations is the COW-friendliness check:
// every BuildDelta generation rebuilds its own lazy index, so lookups must
// track the delta (new nested attributes appear, none leak backwards into
// the previous snapshot's index).
func TestNestedCandidatesAcrossDeltaGenerations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := kg.New()
	subjects := []string{"e0", "e1", "e2", "e3"}
	rels := []string{"status", "status_state", "status_reason", "price", "price_open"}
	addBatch := func(n int) []string {
		ids := make([]string, 0, n)
		for i := 0; i < n; i++ {
			subj := subjects[rng.Intn(len(subjects))]
			g.AddEntity(subj, "Entity", "t")
			id, err := g.AddTriple(kg.Triple{
				Subject: kg.CanonicalID(subj), Predicate: rels[rng.Intn(len(rels))],
				Object: fmt.Sprintf("v%d", rng.Intn(3)), Source: fmt.Sprintf("s%d", rng.Intn(4)), Weight: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		return ids
	}
	addBatch(20)
	sg := Build(g)
	for batch := 0; batch < 6; batch++ {
		prev := sg
		// Force-materialise the previous generation's index, then ingest.
		prevStatus := map[string][]string{}
		for _, s := range subjects {
			prevStatus[s] = keysOf(prev.NestedCandidates(kg.CanonicalID(s), "status"))
		}
		ids := addBatch(10)
		sg = BuildDelta(prev, g, ids)
		for _, s := range subjects {
			subj := kg.CanonicalID(s)
			for _, rel := range []string{"status", "price"} {
				got := sg.NestedCandidates(subj, rel)
				want := scanNested(sg, subj, rel)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("batch %d: NestedCandidates(%q,%q) = %v, scan = %v",
						batch, subj, rel, keysOf(got), keysOf(want))
				}
			}
			// The already-built previous index must not see the new batch.
			if got := keysOf(prev.NestedCandidates(subj, "status")); !reflect.DeepEqual(got, prevStatus[s]) {
				t.Fatalf("batch %d: previous generation's index changed: %v vs %v", batch, got, prevStatus[s])
			}
		}
	}
}

// TestNodeScansCountsForEachNode pins the instrumentation hook: index-backed
// lookups leave the counter untouched, a ForEachNode walk charges one count
// per visited node.
func TestNodeScansCountsForEachNode(t *testing.T) {
	g := graphWithConflicts(t)
	sg := Build(g)
	sg.Lookup("ca981", "status")
	sg.NestedCandidates("ca981", "status")
	sg.SubjectAttrNames("heat")
	if got := sg.NodeScans(); got != 0 {
		t.Fatalf("index lookups charged %d node scans, want 0", got)
	}
	sg.ForEachNode(func(string, *HomologousNode) {})
	if got := sg.NodeScans(); got != int64(sg.NumNodes()) {
		t.Fatalf("full walk charged %d scans, want %d", got, sg.NumNodes())
	}
}
