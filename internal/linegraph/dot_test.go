package linegraph

import (
	"strings"
	"testing"

	"multirag/internal/kg"
)

func TestWriteDOT(t *testing.T) {
	g := kg.New()
	g.AddEntity("CA981", "Flight", "flights")
	for _, src := range []string{"a", "b", "c", "d"} {
		if _, err := g.AddTriple(kg.Triple{
			Subject: "ca981", Predicate: "status", Object: "Delayed",
			Source: src, Weight: 0.9,
		}); err != nil {
			t.Fatal(err)
		}
	}
	sg := Build(g)
	node, ok := sg.Lookup("ca981", "status")
	if !ok {
		t.Fatal("node missing")
	}
	var sb strings.Builder
	if err := sg.WriteDOT(&sb, node); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "graph homologous {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatalf("not a DOT graph:\n%s", out)
	}
	// K4: 6 dashed pairwise edges + 4 centre edges.
	if got := strings.Count(out, "style=dashed"); got != 6 {
		t.Fatalf("pairwise edges = %d, want 6 (Fig. 4 K4)", got)
	}
	if got := strings.Count(out, "snode --"); got != 4 {
		t.Fatalf("centre edges = %d, want 4", got)
	}
	if err := sg.WriteDOT(&sb, nil); err == nil {
		t.Fatal("nil node must error")
	}
}

func TestDotIDSanitises(t *testing.T) {
	if got := dotID("t00001/row#3"); strings.ContainsAny(got, "/#") {
		t.Fatalf("unsanitised id %q", got)
	}
}
