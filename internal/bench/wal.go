package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"multirag/internal/adapter"
	"multirag/internal/core"
	"multirag/internal/llm"
	"multirag/internal/par"
	"multirag/internal/wal"
)

// WALReport carries the structured durability benchmark results for
// BENCH_wal.json (stdout gets the human-readable tables).
type WALReport struct {
	Throughput []WALThroughputCell `json:"throughput"`
	Recovery   []WALRecoveryCell   `json:"recovery"`
	Checkpoint *WALCheckpointStat  `json:"checkpoint,omitempty"`
}

// WALThroughputCell is one producer-count measurement of the durability tax:
// the same update stream drained into an in-memory system and into a durable
// one (WAL append + fsync per commit group, on a real temp directory), best
// of 3 passes each, final corpora equivalence-checked.
type WALThroughputCell struct {
	Producers  int     `json:"producers"`
	Batches    int     `json:"batches"`
	MemoryBPS  float64 `json:"in_memory_batches_per_sec"`
	DurableBPS float64 `json:"wal_fsync_batches_per_sec"`
	// Ratio is durable/in-memory throughput; the durability acceptance bar
	// is >= 0.6 at 4 producers (group commit amortises the fsync).
	Ratio float64 `json:"durable_over_memory"`
}

// WALRecoveryCell is one recovery-time measurement: a crash is simulated
// after Records acknowledged single-batch ingests with checkpointing
// disabled, and the full log is replayed on a cold open.
type WALRecoveryCell struct {
	Records     int     `json:"wal_records"`
	LogBytes    int     `json:"log_bytes"`
	ReplaySecs  float64 `json:"replay_seconds"`
	RecordsPerS float64 `json:"records_per_sec"`
}

// WALCheckpointStat measures folding the longest recovery log into a
// checkpoint: serialized snapshot size and write time.
type WALCheckpointStat struct {
	RecordsFolded int     `json:"records_folded"`
	Bytes         int     `json:"checkpoint_bytes"`
	WriteSecs     float64 `json:"write_seconds"`
}

// walReport collects results for the current WALBench run when the caller
// asked for them (benchtables -wal -json).
var walReport *WALReport

// WALBenchReport runs WALBench and returns the structured results.
func WALBenchReport(o Options) (*WALReport, error) {
	rep := &WALReport{}
	walReport = rep
	defer func() { walReport = nil }()
	if err := WALBench(o); err != nil {
		return nil, err
	}
	return rep, nil
}

// WALBench is the durability benchmark behind `make bench-wal`. Three
// questions, one per table:
//
//  1. What does durability cost on the ingest path? The ingest-throughput
//     stream is drained into an in-memory system and into a durable one
//     (every commit group WAL-appended and fsync'd on a real filesystem
//     before publish) at 1 and 4 producers. Group commit shares each fsync
//     across the whole commit group, so the tax shrinks as producers grow.
//  2. How does recovery time scale with log length? Systems are crashed
//     (checkpointing disabled) after increasing record counts — up to 10k —
//     and cold-opened; replay feeds the recorded op streams through the
//     committer's own apply path, so no extraction is re-run.
//  3. How big is a checkpoint and how long does writing one take? The
//     longest recovered log is folded into a snapshot.
//
// Durable and in-memory final corpora are equivalence-checked with the same
// order-insensitive observables the ingest benchmark uses.
func WALBench(o Options) error {
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	scale := o.Scale
	if scale <= 0 {
		scale = 1
	}
	base := max(int(24000*scale), 600)
	batches := max(int(256*scale), 24)

	fmt.Fprintf(o.Out, "WAL durability benchmarks (base corpus %d triples)\n", base)

	// --- 1. Ingest throughput, WAL+fsync vs in-memory ---
	baseFiles := ingestBaseCorpus(base)
	stream := ingestStream(base, batches)
	fmt.Fprintf(o.Out, "\n--- ingest throughput: %d-batch stream, best of 3 passes ---\n", len(stream))
	for _, producers := range []int{1, 4} {
		var obsMem, obsDur ingestObservables
		memTime, err := bestIngestPass(seed, baseFiles, stream, producers, false, &obsMem)
		if err != nil {
			return err
		}
		durTime, err := bestDurablePass(seed, baseFiles, stream, producers, &obsDur)
		if err != nil {
			return err
		}
		if obsMem != obsDur {
			return fmt.Errorf("wal bench: durable corpus diverges from in-memory at %d producers:\n memory  %+v\n durable %+v",
				producers, obsMem, obsDur)
		}
		memBPS := float64(len(stream)) / memTime.Seconds()
		durBPS := float64(len(stream)) / durTime.Seconds()
		ratio := 0.0
		if memBPS > 0 {
			ratio = durBPS / memBPS
		}
		fmt.Fprintf(o.Out, "%d producer(s)   in-memory %8.0f batches/s   wal+fsync %8.0f batches/s (%.2fx)\n",
			producers, memBPS, durBPS, ratio)
		if walReport != nil {
			walReport.Throughput = append(walReport.Throughput, WALThroughputCell{
				Producers: producers, Batches: len(stream),
				MemoryBPS: memBPS, DurableBPS: durBPS, Ratio: ratio,
			})
		}
	}

	// --- 2. Recovery time vs log length (10k-record cell is the bar) ---
	fmt.Fprintf(o.Out, "\n--- crash recovery: full-log replay, checkpointing disabled ---\n")
	recoverySizes := []int{1000, 4000, 10000}
	var lastSys *core.System
	var lastFS *wal.MemFS
	var lastRecords int
	for i, records := range recoverySizes {
		fs, logBytes, err := buildCrashedLog(seed, records)
		if err != nil {
			return err
		}
		start := time.Now()
		sys, info, err := core.OpenFS(fs, walBenchDir, walRecoveryConfig(seed))
		elapsed := time.Since(start)
		if err != nil {
			return fmt.Errorf("wal bench: recover %d records: %w", records, err)
		}
		if info.RecordsReplayed != records || info.CheckpointLSN != 0 {
			return fmt.Errorf("wal bench: recovery of %d records reported %+v", records, info)
		}
		fmt.Fprintf(o.Out, "%6d records (%6.1f MiB log)   replay %8v   %8.0f records/s\n",
			records, float64(logBytes)/(1<<20), elapsed.Round(time.Millisecond),
			float64(records)/elapsed.Seconds())
		if walReport != nil {
			walReport.Recovery = append(walReport.Recovery, WALRecoveryCell{
				Records: records, LogBytes: logBytes,
				ReplaySecs:  elapsed.Seconds(),
				RecordsPerS: float64(records) / elapsed.Seconds(),
			})
		}
		if i == len(recoverySizes)-1 {
			lastSys, lastFS, lastRecords = sys, fs, records
		} else if err := sys.Close(); err != nil {
			return fmt.Errorf("wal bench: close recovered system: %w", err)
		}
	}

	// --- 3. Checkpoint size and write time ---
	// The last recovered system still carries its whole replayed tail as
	// pending log, so this Checkpoint does the full fold: rotate, serialize
	// the snapshot, durable write, prune the covered segments.
	start := time.Now()
	if err := lastSys.Checkpoint(); err != nil {
		return fmt.Errorf("wal bench: checkpoint: %w", err)
	}
	writeSecs := time.Since(start).Seconds()
	ckptBytes, err := newestCheckpointSize(lastFS)
	if err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "\n--- checkpoint: %d records folded -> %.1f MiB written in %.3fs ---\n",
		lastRecords, float64(ckptBytes)/(1<<20), writeSecs)
	if walReport != nil {
		walReport.Checkpoint = &WALCheckpointStat{
			RecordsFolded: lastRecords, Bytes: ckptBytes, WriteSecs: writeSecs,
		}
	}
	return lastSys.Close()
}

// walBenchDir is the durable directory name used on bench MemFS instances.
const walBenchDir = "data"

// walRecoveryConfig disables background checkpointing so a benchmark log
// keeps its full length until the measurement wants it folded.
func walRecoveryConfig(seed uint64) core.Config {
	cfg := core.Config{LLM: llm.DefaultConfig()}
	cfg.LLM.Seed = seed
	cfg.CheckpointRecords = 1 << 30
	cfg.CheckpointBytes = 1 << 40
	return cfg
}

// bestDurablePass mirrors bestIngestPass on a durable system: each pass
// opens a fresh real-filesystem directory (fsync latency is the point), and
// the stream drain is timed while every commit group is WAL-appended and
// fsync'd before publish. Background checkpointing runs at its default
// thresholds — a durable deployment pays for it, so the benchmark does too.
func bestDurablePass(seed uint64, baseFiles []adapter.RawFile, stream [][]adapter.RawFile, producers int, obs *ingestObservables) (time.Duration, error) {
	var best time.Duration
	for pass := 0; pass < 3; pass++ {
		dir, err := os.MkdirTemp("", "multirag-walbench-")
		if err != nil {
			return 0, fmt.Errorf("wal bench: temp dir: %w", err)
		}
		cfg := core.Config{LLM: llm.DefaultConfig()}
		cfg.LLM.Seed = seed
		s, _, err := core.Open(filepath.Join(dir, walBenchDir), cfg)
		if err != nil {
			os.RemoveAll(dir)
			return 0, fmt.Errorf("wal bench: open durable: %w", err)
		}
		elapsed, passErr := func() (time.Duration, error) {
			if _, err := s.Ingest(baseFiles); err != nil {
				return 0, fmt.Errorf("wal bench base corpus: %w", err)
			}
			var next atomic.Int64
			errs := make([]error, producers)
			start := time.Now()
			par.ForEach(producers, producers, func(w int) {
				for {
					i := int(next.Add(1)) - 1
					if i >= len(stream) {
						return
					}
					if _, err := s.Ingest(stream[i]); err != nil {
						errs[w] = err
						return
					}
				}
			})
			elapsed := time.Since(start)
			for _, err := range errs {
				if err != nil {
					return 0, fmt.Errorf("wal bench stream: %w", err)
				}
			}
			return elapsed, nil
		}()
		if passErr == nil {
			var o ingestObservables
			if o, passErr = observeIngest(s); passErr == nil {
				if pass == 0 {
					*obs = o
				} else if *obs != o {
					passErr = fmt.Errorf("wal bench: durable passes diverge (producers=%d)", producers)
				}
			}
		}
		closeErr := s.Close()
		os.RemoveAll(dir)
		if passErr != nil {
			return 0, passErr
		}
		if closeErr != nil {
			return 0, fmt.Errorf("wal bench: close durable: %w", closeErr)
		}
		if pass == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best, nil
}

// buildCrashedLog ingests `records` acknowledged single-batch updates into a
// durable MemFS system with checkpointing disabled, then crashes it: the
// returned filesystem holds exactly `records` fsync'd WAL records and no
// checkpoint. Also returns the total log size in bytes.
func buildCrashedLog(seed uint64, records int) (*wal.MemFS, int, error) {
	fs := wal.NewMemFS()
	sys, _, err := core.OpenFS(fs, walBenchDir, walRecoveryConfig(seed))
	if err != nil {
		return nil, 0, fmt.Errorf("wal bench: open log builder: %w", err)
	}
	stream := ingestStream(6000, records)
	for i, batch := range stream {
		if _, err := sys.Ingest(batch); err != nil {
			return nil, 0, fmt.Errorf("wal bench: build record %d: %w", i, err)
		}
	}
	// Crash instead of Close: Close would fold the log into a checkpoint,
	// and the point is to replay the whole tail. The abandoned system's
	// background checkpointer idles until process exit.
	crashed := fs.Crash(nil)
	names, err := crashed.ReadDir(walBenchDir)
	if err != nil {
		return nil, 0, fmt.Errorf("wal bench: list crashed log: %w", err)
	}
	logBytes := 0
	for _, name := range names {
		if strings.HasSuffix(name, ".log") {
			logBytes += crashed.FileSize(filepath.Join(walBenchDir, name))
		}
	}
	return crashed, logBytes, nil
}

// newestCheckpointSize returns the size of the newest checkpoint file.
func newestCheckpointSize(fs *wal.MemFS) (int, error) {
	names, err := fs.ReadDir(walBenchDir)
	if err != nil {
		return 0, fmt.Errorf("wal bench: list checkpoints: %w", err)
	}
	newest := ""
	for _, name := range names {
		if strings.HasPrefix(name, "checkpoint-") && strings.HasSuffix(name, ".ckpt") && name > newest {
			newest = name
		}
	}
	if newest == "" {
		return 0, fmt.Errorf("wal bench: no checkpoint written")
	}
	return fs.FileSize(filepath.Join(walBenchDir, newest)), nil
}
