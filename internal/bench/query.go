package bench

import (
	"fmt"
	"reflect"
	"strings"
	"time"

	"multirag/internal/adapter"
	"multirag/internal/core"
	"multirag/internal/llm"
)

// QueryReport carries the structured query-executor benchmark results for
// BENCH_query.json (stdout gets the human-readable table).
type QueryReport struct {
	Cells []QueryCell `json:"cells"`
}

// QueryCell is one (mix, corpus size) measurement: the sequential reference
// (one worker, full node scan, no evidence memo) against the parallel
// index-backed executor, per-query mean.
type QueryCell struct {
	Mix       string  `json:"mix"`
	N         int     `json:"n"`
	Queries   int     `json:"queries"`
	SeqMicros float64 `json:"seq_us"`
	ParMicros float64 `json:"par_us"`
	Speedup   float64 `json:"speedup"`
}

// queryReport collects cells for the current QueryBench run when the caller
// asked for them (benchtables -query -json).
var queryReport *QueryReport

// QueryBenchReport runs QueryBench and returns the structured cells.
func QueryBenchReport(o Options) (*QueryReport, error) {
	rep := &QueryReport{}
	queryReport = rep
	defer func() { queryReport = nil }()
	if err := QueryBench(o); err != nil {
		return nil, err
	}
	return rep, nil
}

// QueryBench is the query-latency microbenchmark behind `make bench-query`.
// It contrasts the sequential reference executor (Workers=1, nested-attribute
// candidates from a full homologous-node scan, evidence memo off — the seed
// query path) against the parallel executor (worker-pool sub-questions,
// per-snapshot subject→attribute index, evidence memo) over four intent
// mixes at two corpus sizes, asserting on the way that both executors return
// bit-identical answers for every query. A final row per size measures
// QueryBatch against a sequential loop of the same mixed workload on fresh
// systems.
func QueryBench(o Options) error {
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	scale := o.Scale
	if scale <= 0 {
		scale = 1
	}
	base := int(8000 * scale)
	if base < 96 {
		base = 96
	}
	sizes := []int{base / 8, base}
	nq := int(200 * scale)
	if nq < 16 {
		nq = 16
	}

	fmt.Fprintf(o.Out, "Query-executor microbenchmarks (%d queries per mix; per-query mean)\n", nq)
	fmt.Fprintf(o.Out, "reference = workers:1 + node scan + no memo; parallel = workers:8 + snapshot index + memo\n")

	for _, n := range sizes {
		files := queryCorpusFiles(n)
		ref, err := queryBenchSystem(seed, files, core.Config{
			Workers: 1, DisableQueryIndex: true, DisableEvidenceMemo: true,
		})
		if err != nil {
			return err
		}
		parl, err := queryBenchSystem(seed, files, core.Config{Workers: 8})
		if err != nil {
			return err
		}

		fmt.Fprintf(o.Out, "\n--- n=%d entities (%d triples) ---\n", n, ref.Graph().NumTriples())
		var mixed []string
		// Each mix runs several passes; the reported time is the best pass
		// (steady-state serving, damping scheduler noise — same discipline
		// as the graph bench's bestOf). Answers must match the sequential
		// reference on EVERY pass: both systems evolve their source history
		// identically across passes, and repeated passes are exactly where a
		// non-transparent memo would diverge.
		const passes = 3
		for _, mix := range []struct {
			name string
			qs   []string
		}{
			{"lookup", lookupMix(n, nq)},
			{"multi-hop", multiHopMix(n, nq)},
			{"comparison", comparisonMix(n, nq)},
			{"fallback", fallbackMix(n, nq)},
		} {
			mixed = append(mixed, mix.qs...)
			var refTime, parTime time.Duration
			for pass := 0; pass < passes; pass++ {
				refAns, rt := timeQueries(ref, mix.qs)
				parAns, pt := timeQueries(parl, mix.qs)
				for i := range mix.qs {
					if !reflect.DeepEqual(refAns[i], parAns[i]) {
						return fmt.Errorf("query bench: %s mix diverges from sequential reference at n=%d pass %d query %q",
							mix.name, n, pass, mix.qs[i])
					}
				}
				if pass == 0 || rt < refTime {
					refTime = rt
				}
				if pass == 0 || pt < parTime {
					parTime = pt
				}
			}
			queryRow(o, mix.name, n, len(mix.qs), refTime, parTime)
		}

		// Batch serving: fresh systems so both sides start with cold caches.
		seqSys, err := queryBenchSystem(seed, files, core.Config{Workers: 8})
		if err != nil {
			return err
		}
		batchSys, err := queryBenchSystem(seed, files, core.Config{Workers: 8})
		if err != nil {
			return err
		}
		_, seqTime := timeQueries(seqSys, mixed)
		start := time.Now()
		batchSys.QueryBatch(mixed)
		batchTime := time.Since(start) / time.Duration(len(mixed))
		queryRow(o, "mixed QueryBatch", n, len(mixed), seqTime, batchTime)
	}
	return nil
}

func queryBenchSystem(seed uint64, files []adapter.RawFile, cfg core.Config) (*core.System, error) {
	cfg.LLM = llm.DefaultConfig()
	cfg.LLM.Seed = seed
	s := core.NewSystem(cfg)
	if _, err := s.Ingest(files); err != nil {
		return nil, fmt.Errorf("query bench ingest: %w", err)
	}
	return s, nil
}

// timeQueries evaluates the queries sequentially, returning every answer and
// the per-query mean wall time.
func timeQueries(s *core.System, qs []string) ([]core.Answer, time.Duration) {
	out := make([]core.Answer, len(qs))
	start := time.Now()
	for i, q := range qs {
		out[i] = s.Query(q)
	}
	return out, time.Since(start) / time.Duration(len(qs))
}

func queryRow(o Options, mix string, n, queries int, seq, par time.Duration) {
	speedup := 0.0
	ratio := ""
	if par > 0 {
		speedup = float64(seq) / float64(par)
		ratio = fmt.Sprintf(" (%.1fx)", speedup)
	}
	fmt.Fprintf(o.Out, "%-18s  reference %10s   parallel %10s%s\n", mix, fmtMicros(seq), fmtMicros(par), ratio)
	if queryReport != nil {
		queryReport.Cells = append(queryReport.Cells, QueryCell{
			Mix: mix, N: n, Queries: queries,
			SeqMicros: float64(seq.Nanoseconds()) / 1e3,
			ParMicros: float64(par.Nanoseconds()) / 1e3,
			Speedup:   speedup,
		})
	}
}

// queryCorpusFiles builds the synthetic serving corpus as native-KG files:
// n items described by three agreeing feeds plus one low-quality conflicting
// feed. Every item carries a consistent category, a status with a nested
// status_state attribute, and two managers (multi-truth → two hop-2 bridges
// per multi-hop query) drawn from a small person pool, so bridge
// sub-questions repeat across the workload the way a shared org chart makes
// them repeat in practice. Persons carry a city. A slice of items and
// persons receive conflicting forum claims, keeping the node-level
// (history-sensitive) MCC stage exercised.
func queryCorpusFiles(n int) []adapter.RawFile {
	persons := n / 50
	if persons < 8 {
		persons = 8
	}
	categories := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	statuses := []string{"Active", "Dormant", "Scaling", "Paused"}
	cities := []string{"Oslo", "Lima", "Cairo", "Kyoto", "Quito", "Turin"}

	var feed [3]strings.Builder
	var forum strings.Builder
	addAll := func(subj, pred, obj string) {
		for i := range feed {
			fmt.Fprintf(&feed[i], "%s|%s|%s\n", subj, pred, obj)
		}
	}
	for i := 0; i < n; i++ {
		item := fmt.Sprintf("Item %d", i)
		addAll(item, "category", categories[i%len(categories)])
		status := statuses[i%len(statuses)]
		addAll(item, "status", status)
		addAll(item, "status_state", status+" since day "+fmt.Sprint(i%28))
		addAll(item, "manager", fmt.Sprintf("Person %d", i%persons))
		addAll(item, "manager", fmt.Sprintf("Person %d", (i+persons/2)%persons))
		if i%7 == 0 {
			// Conflicting low-quality claim → node-level scoring path.
			fmt.Fprintf(&forum, "%s|status|%s\n", item, statuses[(i+1)%len(statuses)])
		}
	}
	for j := 0; j < persons; j++ {
		person := fmt.Sprintf("Person %d", j)
		addAll(person, "city", cities[j%len(cities)])
		if j%3 == 0 {
			fmt.Fprintf(&forum, "%s|city|%s\n", person, cities[(j+1)%len(cities)])
		}
	}
	files := []adapter.RawFile{
		{Domain: "serve", Source: "registry-api", Name: "facts", Format: "kg", Content: []byte(feed[0].String())},
		{Domain: "serve", Source: "ledger-feed", Name: "facts", Format: "kg", Content: []byte(feed[1].String())},
		{Domain: "serve", Source: "mirror-api", Name: "facts", Format: "kg", Content: []byte(feed[2].String())},
	}
	if forum.Len() > 0 {
		files = append(files, adapter.RawFile{
			Domain: "serve", Source: "forum-user", Name: "posts", Format: "kg", Content: []byte(forum.String()),
		})
	}
	return files
}

func lookupMix(n, nq int) []string {
	qs := make([]string, nq)
	for i := range qs {
		item := (i * 13) % n
		switch i % 3 {
		case 0:
			qs[i] = fmt.Sprintf("What is the status of Item %d?", item)
		case 1:
			qs[i] = fmt.Sprintf("What is the category of Item %d?", item)
		default:
			qs[i] = fmt.Sprintf("What is the manager of Item %d?", item)
		}
	}
	return qs
}

func multiHopMix(n, nq int) []string {
	qs := make([]string, nq)
	for i := range qs {
		qs[i] = fmt.Sprintf("What is the city of the manager of Item %d?", (i*29)%n)
	}
	return qs
}

func comparisonMix(n, nq int) []string {
	qs := make([]string, nq)
	for i := range qs {
		a, b := (i*17)%n, (i*17+5)%n
		if i%4 == 0 {
			qs[i] = fmt.Sprintf("Do Item %d and Item %d have the same status?", a, b)
		} else {
			qs[i] = fmt.Sprintf("Do Item %d and Item %d have the same category?", a, b)
		}
	}
	return qs
}

func fallbackMix(n, nq int) []string {
	qs := make([]string, nq)
	for i := range qs {
		qs[i] = fmt.Sprintf("Anything interesting regarding Item %d lately", (i*11)%n)
	}
	return qs
}
