package bench

import (
	"fmt"

	"multirag/internal/adapter"
	"multirag/internal/confidence"
	"multirag/internal/core"
	"multirag/internal/kg"
	"multirag/internal/llm"
)

// caseStudyFiles reproduces the Table V corpus: structured flight schedules,
// semi-structured airline data, unstructured weather alerts and a conflicting
// forum claim about flight CA981.
func caseStudyFiles() []adapter.RawFile {
	return []adapter.RawFile{
		{Domain: "flights", Source: "airport-api", Name: "schedule", Format: "csv",
			Content: []byte("flight,origin,destination,status,departure_time\nCA981,PEK,JFK,Delayed,2024-10-01 14:30\n")},
		{Domain: "flights", Source: "airline-app", Name: "live", Format: "json",
			Content: []byte(`[{"flight":"CA981","status":"Delayed","delay_reason":"Typhoon"}]`)},
		{Domain: "flights", Source: "weather-feed", Name: "alerts", Format: "text",
			Content: []byte("Typhoon Haikui impacts PEK departures. The status of CA981 is Delayed. The delay reason of CA981 is Typhoon.")},
		{Domain: "flights", Source: "forum-user", Name: "posts", Format: "text",
			Content: []byte("The status of CA981 is On time.")},
	}
}

// TableV walks through the CA981 case study, printing the MLG subgraph, the
// MCC verdicts with and without graph-level confidence computing, and the
// final answers — the analogue of the paper's Table V.
func TableV(o Options) error {
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	w := o.Out
	fmt.Fprintln(w, "Table V: Case study — real-time status of Air China flight CA981 (PEK → JFK)")
	fmt.Fprintln(w)
	query := "What is the real-time status of CA981?"
	fmt.Fprintf(w, "Query: %q\n\n", query)

	run := func(label string, ablation confidence.Options) (*core.System, core.Answer) {
		s := core.NewSystem(core.Config{
			LLM:      llm.Config{Seed: seed, ExtractionNoise: 0},
			Ablation: ablation,
		})
		if _, err := s.Ingest(caseStudyFiles()); err != nil {
			panic(fmt.Sprintf("case study ingest: %v", err))
		}
		return s, s.Query(query)
	}

	s, ans := run("full", confidence.Options{})

	fmt.Fprintln(w, "MKA module — extracted homologous subgraph for (CA981, status):")
	node, ok := s.SG().Lookup(kg.CanonicalID("CA981"), "status")
	if ok {
		for _, t := range s.SG().MemberTriples(node) {
			fmt.Fprintf(w, "  (%s, status, %-8s)  source=%-12s weight=%.2f\n",
				"CA981", t.Object, t.Source, t.Weight)
		}
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "MCC module — with graph-level confidence computing (GCC):")
	for i, gc := range ans.GraphConfidences {
		fmt.Fprintf(w, "  candidate subgraph %d: C(G) = %.2f (threshold %.2f)\n",
			i+1, gc, s.MCC().Config().GraphThreshold)
	}
	for _, tn := range ans.Trusted {
		fmt.Fprintf(w, "  trusted:  %s = %-8s (source %-12s confidence %.2f)\n",
			"CA981.status", tn.Triple.Object, tn.Triple.Source, tn.Confidence)
	}
	fmt.Fprintf(w, "  rejected: %d conflicting node(s) filtered\n", ans.RejectedCount)
	fmt.Fprintf(w, "  Final answer: %v\n\n", ans.Values)

	_, bare := run("w/o MCC", confidence.Options{DisableGraphLevel: true, DisableNodeLevel: true})
	fmt.Fprintln(w, "Without GCC — unfiltered conflict reaches the LLM context:")
	fmt.Fprintf(w, "  context values: ")
	for _, tn := range bare.Trusted {
		fmt.Fprintf(w, "%s(%s) ", tn.Triple.Object, tn.Triple.Source)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  answer w/o confidence filtering: %v\n", bare.Values)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Expected (paper): trusted answer \"Delayed ... due to typhoon\"; the")
	fmt.Fprintln(w, "forum \"On time\" claim is filtered by the confidence machinery.")
	return nil
}
