// Package bench regenerates every table and figure of the paper's evaluation
// section (§IV). Each experiment has one entry point (TableI … TableV,
// Figure5 … Figure7) that runs the workload and renders plain-text output
// comparable, row for row, with the paper. See DESIGN.md §5 for the
// experiment index and EXPERIMENTS.md for recorded paper-vs-measured results.
package bench

import (
	"fmt"
	"io"

	"multirag/internal/adapter"
	"multirag/internal/baselines"
	"multirag/internal/core"
	"multirag/internal/datasets"
	"multirag/internal/eval"
	"multirag/internal/extract"
	"multirag/internal/kg"
	"multirag/internal/llm"
	"multirag/internal/retrieval"
)

// Options configures a benchmark run.
type Options struct {
	// Seed drives dataset generation and the simulated LLM.
	Seed uint64
	// Scale multiplies entity and query counts; 1.0 is the paper-shaped
	// default, smaller values give quick smoke runs.
	Scale float64
	// Out receives the rendered tables/figures.
	Out io.Writer
}

// scaleSpec shrinks a dataset spec by opts.Scale.
func (o Options) scaleSpec(spec datasets.Spec) datasets.Spec {
	if o.Scale > 0 && o.Scale != 1 {
		spec.Entities = max(8, int(float64(spec.Entities)*o.Scale))
		spec.Queries = max(5, int(float64(spec.Queries)*o.Scale))
	}
	if o.Seed != 0 {
		spec.Seed = o.Seed
	}
	return spec
}

func (o Options) scaleQA(spec datasets.QASpec) datasets.QASpec {
	if o.Scale > 0 && o.Scale != 1 {
		spec.Questions = max(5, int(float64(spec.Questions)*o.Scale))
	}
	if o.Seed != 0 {
		spec.Seed = o.Seed
	}
	return spec
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// llmConfig is the shared simulated-model configuration for benchmark runs.
func llmConfig(seed uint64) llm.Config {
	cfg := llm.DefaultConfig()
	cfg.Seed = seed
	return cfg
}

// buildEnv constructs a baseline environment (graph + chunk index + model)
// from raw files, mirroring exactly what core.System ingests so every method
// sees the same corpus.
func buildEnv(files []adapter.RawFile, model *llm.Sim) (*baselines.Env, error) {
	fused, err := adapter.NewRegistry().Fuse(files)
	if err != nil {
		return nil, err
	}
	g := kg.New()
	if _, err := extract.NewRaw(model).Build(g, fused); err != nil {
		return nil, err
	}
	ix := retrieval.NewIndex(retrieval.DefaultDim)
	for _, n := range fused {
		for _, c := range core.RenderChunks(n, 64) {
			ix.Add(c)
		}
	}
	return &baselines.Env{Graph: g, Index: ix, Model: model}, nil
}

// fusionCell measures one baseline on one filtered corpus: mean F1 (%) over
// the workload and total time (seconds, real + virtual LLM latency).
func fusionCell(m baselines.Method, files []adapter.RawFile, queries []datasets.Query, seed uint64) (f1pct, seconds float64, err error) {
	model := llm.NewSim(llmConfig(seed))
	env, err := buildEnv(files, model)
	if err != nil {
		return 0, 0, err
	}
	model.ResetUsage() // setup/extraction cost is preprocessing, not QT
	var clock eval.Clock
	clock.Start()
	m.Setup(env)
	var f1 eval.Mean
	for _, q := range queries {
		got := m.AnswerFusion(q.Text, q.Entity, q.Attribute)
		_, _, f := eval.PRF1(got, q.Gold)
		f1.Add(f)
	}
	clock.Stop()
	clock.AddVirtual(model.VirtualLatency())
	clock.ChargeClaimFetches(env.Fetches)
	return f1.Value() * 100, clock.Seconds(), nil
}

// multiragCell measures the full MultiRAG pipeline (or an ablation) on one
// filtered corpus. It returns F1 (%), query time and preprocessing time in
// seconds.
func multiragCell(cfg core.Config, files []adapter.RawFile, queries []datasets.Query, seed uint64) (f1pct, qt, pt float64, err error) {
	if cfg.LLM == (llm.Config{}) {
		cfg.LLM = llmConfig(seed)
	}
	s := core.NewSystem(cfg)
	if _, err := s.Ingest(files); err != nil {
		return 0, 0, 0, err
	}
	buildReal, buildLLM := s.BuildCost()
	pt = (buildReal + buildLLM).Seconds()

	s.Model().ResetUsage()
	s.MCC().History().ResetScans()
	var clock eval.Clock
	clock.Start()
	var f1 eval.Mean
	fetches := 0
	for _, q := range queries {
		ans := s.Query(q.Text)
		fetches += len(ans.Trusted) + ans.RejectedCount
		_, _, f := eval.PRF1(ans.Values, q.Gold)
		f1.Add(f)
	}
	clock.Stop()
	clock.AddVirtual(s.Model().VirtualLatency())
	clock.ChargeHistoryScans(s.MCC().History().Scans())
	clock.ChargeClaimFetches(fetches)
	return f1.Value() * 100, clock.Seconds(), pt, nil
}

// combo is one Table II / Table III row definition.
type combo struct {
	dataset string
	letters string
}

// tableCombos lists the paper's ten dataset/source-format rows.
var tableCombos = []combo{
	{"movies", "J/K"},
	{"movies", "J/C"},
	{"movies", "K/C"},
	{"movies", "J/K/C"},
	{"books", "J/C"},
	{"books", "J/X"},
	{"books", "C/X"},
	{"books", "J/C/X"},
	{"flights", "C/J"},
	{"stocks", "C/J"},
}

// generateFor returns the generated dataset for a combo row (cached per
// dataset name within one run).
type datasetCache map[string]*datasets.Dataset

func (c datasetCache) get(name string, o Options) (*datasets.Dataset, error) {
	if d, ok := c[name]; ok {
		return d, nil
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	spec, err := datasets.ByName(name, seed)
	if err != nil {
		return nil, err
	}
	d, err := datasets.Generate(o.scaleSpec(spec))
	if err != nil {
		return nil, err
	}
	c[name] = d
	return d, nil
}

// fmtSeconds renders a duration-in-seconds cell the way the paper does:
// more digits for smaller values.
func fmtSeconds(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 10:
		return fmt.Sprintf("%.1f", s)
	default:
		return fmt.Sprintf("%.2f", s)
	}
}
