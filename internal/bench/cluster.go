package bench

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"multirag"
	"multirag/internal/adapter"
	"multirag/internal/fault"
	"multirag/internal/serve"
)

// ClusterReport carries the structured replicated-read benchmark results for
// BENCH_cluster.json (stdout gets the human-readable table).
type ClusterReport struct {
	Cells []ClusterCell `json:"cells"`
}

// ClusterCell is one replica-count measurement: closed-loop read throughput
// through the full HTTP path, the read p99 with and without hedging, hedging
// effectiveness counters, and — when replicas exist — the failover
// time-to-drain: how long the router takes to stop routing to replicas whose
// query path hard-fails (every per-replica breaker tripped open) while
// serving every request correctly from the primary.
type ClusterCell struct {
	Replicas            int     `json:"replicas"`
	N                   int     `json:"n"` // corpus entities
	Requests            int     `json:"requests"`
	Clients             int     `json:"clients"`
	ThroughputRPS       float64 `json:"throughput_rps"`
	UnhedgedP99Micros   float64 `json:"unhedged_p99_us"`
	HedgedP99Micros     float64 `json:"hedged_p99_us"`
	Hedges              uint64  `json:"hedges"`
	HedgeWins           uint64  `json:"hedge_wins"`
	FailoverDrainMillis float64 `json:"failover_drain_ms"`
}

// clusterReport collects cells for the current ClusterBench run when the
// caller asked for them (benchtables -cluster -json).
var clusterReport *ClusterReport

// ClusterBenchReport runs ClusterBench and returns the structured cells.
func ClusterBenchReport(o Options) (*ClusterReport, error) {
	rep := &ClusterReport{}
	clusterReport = rep
	defer func() { clusterReport = nil }()
	if err := ClusterBench(o); err != nil {
		return nil, err
	}
	return rep, nil
}

// ClusterBench is the replicated-read benchmark behind `make bench-cluster`.
// It sweeps the replica count (0 = reads on the primary, then 1/2/4 WAL-fed
// read replicas) and, per count, drives the same closed-loop read workload
// through the HTTP front door three times: unhedged for throughput and p99,
// hedged for the tail comparison, and — with the replica query path
// hard-failing — to time how long the router takes to drain every replica
// behind its circuit breaker.
func ClusterBench(o Options) error {
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	scale := o.Scale
	if scale <= 0 {
		scale = 1
	}
	n := int(2000 * scale)
	if n < 96 {
		n = 96
	}
	requests := int(1200 * scale)
	if requests < 120 {
		requests = 120
	}
	const clients = 8

	queries := append(lookupMix(n, requests/2), comparisonMix(n, requests-requests/2)...)
	files := queryCorpusFiles(n)

	fmt.Fprintf(o.Out, "Replicated-read benchmark (%d reads over HTTP, %d clients, n=%d entities)\n",
		len(queries), clients, n)
	fmt.Fprintf(o.Out, "route round-robin, max-lag default; hedged runs dispatch a second copy after 1ms\n")
	for _, replicas := range []int{0, 1, 2, 4} {
		cell, err := clusterBenchReplicas(seed, files, n, replicas, queries, clients)
		if err != nil {
			return err
		}
		drain := "        n/a"
		if replicas > 0 {
			drain = fmt.Sprintf("%8.1fms", cell.FailoverDrainMillis)
		}
		fmt.Fprintf(o.Out, "replicas %d: %8.0f req/s   p99 %8.0fµs  hedged p99 %8.0fµs (%d hedges, %d wins)   failover drain %s\n",
			replicas, cell.ThroughputRPS, cell.UnhedgedP99Micros, cell.HedgedP99Micros,
			cell.Hedges, cell.HedgeWins, drain)
		if clusterReport != nil {
			clusterReport.Cells = append(clusterReport.Cells, cell)
		}
	}
	return nil
}

// clusterBenchReplicas measures one replica count. The system and replica set
// are shared by the three runs; each run gets a fresh front door (and so a
// fresh router with untouched breakers and counters).
func clusterBenchReplicas(seed uint64, files []adapter.RawFile, n, replicas int, queries []string, clients int) (ClusterCell, error) {
	sys := multirag.Open(multirag.Config{Seed: seed})
	if err := sys.IngestFiles(rawToFiles(files)...); err != nil {
		return ClusterCell{}, fmt.Errorf("cluster bench ingest: %w", err)
	}
	var set *multirag.ReplicaSet
	if replicas > 0 {
		var err error
		set, err = multirag.NewReplicaSet(sys, multirag.ReplicaSetConfig{Replicas: replicas})
		if err != nil {
			return ClusterCell{}, fmt.Errorf("cluster bench replicas: %w", err)
		}
		defer set.Close()
		if err := waitReplicasLive(set); err != nil {
			return ClusterCell{}, err
		}
	}
	cell := ClusterCell{
		Replicas: replicas,
		N:        n,
		Requests: len(queries),
		Clients:  clients,
	}

	// Run 1: unhedged — read throughput and baseline p99.
	p99, rps, _, err := clusterRun(sys, set, 0, queries, clients)
	if err != nil {
		return ClusterCell{}, err
	}
	cell.ThroughputRPS = rps
	cell.UnhedgedP99Micros = p99

	// Run 2: hedged — a second dispatch fires for any read still unanswered
	// after 1ms, so only the tail pays the duplicated work.
	p99, _, router, err := clusterRun(sys, set, time.Millisecond, queries, clients)
	if err != nil {
		return ClusterCell{}, err
	}
	cell.HedgedP99Micros = p99
	if router != nil {
		cell.Hedges = router.Hedges
		cell.HedgeWins = router.HedgeWins
	}

	// Run 3: failover time-to-drain — hard-fail every replica read and time
	// how long until the router has tripped every per-replica breaker (no
	// replica is routed to anymore) while still answering from the primary.
	if replicas > 0 {
		drain, err := clusterDrain(sys, set, queries, clients)
		if err != nil {
			return ClusterCell{}, err
		}
		cell.FailoverDrainMillis = float64(drain.Microseconds()) / 1e3
	}
	return cell, nil
}

// clusterRun drives one closed-loop pass of the read workload through a fresh
// front door and returns the read p99, the completed throughput, and the
// router counters (nil without replicas).
func clusterRun(sys *multirag.System, set *multirag.ReplicaSet, hedgeAfter time.Duration, queries []string, clients int) (p99 float64, rps float64, router *serve.RouterMetrics, err error) {
	srv, ts, err := clusterServer(sys, set, hedgeAfter)
	if err != nil {
		return 0, 0, nil, err
	}
	defer ts.Close()
	defer srv.Close()

	start := time.Now()
	if err := clusterDrive(ts, queries, clients, nil); err != nil {
		return 0, 0, nil, err
	}
	total := time.Since(start)

	snap := srv.Metrics()
	var completed int64
	for _, c := range snap.Classes {
		if c.Name != "read" {
			continue
		}
		completed = c.Completed
		p99 = c.P99Micros
	}
	return p99, float64(completed) / total.Seconds(), snap.Router, nil
}

// clusterDrain hard-fails the replica query path and measures how long the
// router takes, under continuous load, to trip every replica breaker open.
func clusterDrain(sys *multirag.System, set *multirag.ReplicaSet, queries []string, clients int) (time.Duration, error) {
	srv, ts, err := clusterServer(sys, set, 0)
	if err != nil {
		return 0, err
	}
	defer ts.Close()
	defer srv.Close()

	fault.Enable(fault.PointClusterQuery, fault.Fault{Kind: fault.KindError})
	defer fault.Disable(fault.PointClusterQuery)

	drained := func() bool {
		snap := srv.Metrics()
		if snap.Router == nil || len(snap.Router.Breakers) == 0 {
			return false
		}
		for _, b := range snap.Router.Breakers {
			if b.State != "open" {
				return false
			}
		}
		return true
	}
	start := time.Now()
	var at time.Duration
	err = clusterDrive(ts, queries, clients, func() bool {
		if at == 0 && drained() {
			at = time.Since(start)
		}
		return at != 0
	})
	if err != nil {
		return 0, err
	}
	if at == 0 {
		if !drained() {
			return 0, fmt.Errorf("cluster bench: replicas never drained (%d reads)", len(queries))
		}
		at = time.Since(start)
	}
	return at, nil
}

// clusterServer stands up a front door routing reads across the set (or the
// primary alone when set is nil) with a single admission-unlimited class.
func clusterServer(sys *multirag.System, set *multirag.ReplicaSet, hedgeAfter time.Duration) (*serve.Server, *httptest.Server, error) {
	srv, err := serve.New(serve.Config{
		System:       sys,
		Replicas:     set,
		Route:        serve.RouteRoundRobin,
		HedgeAfter:   hedgeAfter,
		Classes:      []serve.Class{{Name: "read", Priority: 1, QueueCap: 4096}},
		QueueTimeout: 30 * time.Second,
	})
	if err != nil {
		return nil, nil, err
	}
	return srv, httptest.NewServer(srv.Handler()), nil
}

// clusterDrive fans the read workload across concurrent HTTP clients. A
// non-nil stop callback is polled between requests on every client; once it
// returns true the remaining workload is skipped.
func clusterDrive(ts *httptest.Server, queries []string, clients int, stop func() bool) error {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        4 * clients,
		MaxIdleConnsPerHost: 4 * clients,
	}}
	per := (len(queries) + clients - 1) / clients
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		lo := c * per
		hi := min(lo+per, len(queries))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(qs []string) {
			defer wg.Done()
			for _, q := range qs {
				if stop != nil && stop() {
					return
				}
				status, err := servePost(client, ts.URL+"/v1/query", serve.QueryRequest{Query: q, Class: "read"})
				if err != nil {
					errs <- fmt.Errorf("cluster bench read: %w", err)
					return
				}
				if status != 200 {
					errs <- fmt.Errorf("cluster bench read: HTTP %d", status)
					return
				}
			}
		}(queries[lo:hi])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// waitReplicasLive blocks until every replica has applied the seed corpus.
func waitReplicasLive(set *multirag.ReplicaSet) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		ok := true
		for _, r := range set.Replicas() {
			if !r.Live() || r.Position() != set.CommittedLSN() {
				ok = false
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster bench: replicas never caught up: %+v", set.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
}
