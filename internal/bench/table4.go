package bench

import (
	"fmt"

	"multirag/internal/adapter"
	"multirag/internal/baselines"
	"multirag/internal/core"
	"multirag/internal/datasets"
	"multirag/internal/eval"
	"multirag/internal/jsonld"
	"multirag/internal/llm"
)

// qaFiles renders a QA corpus as one raw text file per document and the
// normalised-ID → document-ID mapping used to score Recall@5.
func qaFiles(qa *datasets.QADataset) ([]adapter.RawFile, map[string]string) {
	var files []adapter.RawFile
	mapping := map[string]string{}
	for _, doc := range qa.Docs {
		files = append(files, adapter.RawFile{
			Domain: "wiki", Source: doc.Source, Name: doc.ID, Format: "text",
			Content: []byte(doc.Text),
		})
		mapping[jsonld.NormalizedID("wiki", doc.Source, doc.ID)] = doc.ID
	}
	return files, mapping
}

func mapDocs(ids []string, mapping map[string]string) []string {
	var out []string
	for _, id := range ids {
		if name, ok := mapping[id]; ok {
			out = append(out, name)
		}
	}
	return out
}

// qaMethodCell measures one baseline on one QA dataset: answer precision (%)
// and Recall@5 (%).
func qaMethodCell(m baselines.Method, qa *datasets.QADataset, seed uint64) (precision, recall5 float64, err error) {
	model := llm.NewSim(llmConfig(seed))
	files, mapping := qaFiles(qa)
	env, err := buildEnv(files, model)
	if err != nil {
		return 0, 0, err
	}
	m.Setup(env)
	var prec, rec eval.Mean
	for _, q := range qa.Questions {
		ans, docs := m.AnswerQA(q.Text, 5)
		p, _, _ := eval.PRF1(ans, q.Answer)
		prec.Add(p)
		rec.Add(eval.RecallAtK(mapDocs(docs, mapping), q.Support, 5))
	}
	return prec.Value() * 100, rec.Value() * 100, nil
}

// qaMultiRAGCell measures MultiRAG on one QA dataset.
func qaMultiRAGCell(qa *datasets.QADataset, seed uint64) (precision, recall5 float64, err error) {
	files, mapping := qaFiles(qa)
	s := core.NewSystem(core.Config{LLM: llmConfig(seed)})
	if _, err := s.Ingest(files); err != nil {
		return 0, 0, err
	}
	var prec, rec eval.Mean
	for _, q := range qa.Questions {
		ans, docs := s.QueryWithDocs(q.Text, 5)
		p, _, _ := eval.PRF1(ans.Values, q.Answer)
		prec.Add(p)
		rec.Add(eval.RecallAtK(mapDocs(docs, mapping), q.Support, 5))
	}
	return prec.Value() * 100, rec.Value() * 100, nil
}

// tableIVMethods lists the Table IV comparison rows in paper order.
func tableIVMethods() []baselines.Method {
	return []baselines.Method{
		baselines.NewStandardRAG(),
		baselines.NewCoT(),
		baselines.NewIRCoT(),
		baselines.NewChatKBQA(),
		baselines.NewMDQA(),
		baselines.NewRQRAG(),
		baselines.NewMetaRAG(),
	}
}

// TableIV runs the multi-hop QA comparison on the HotpotQA-like and
// 2WikiMultiHopQA-like datasets: Precision and Recall@5 per method.
func TableIV(o Options) error {
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	hotpot := datasets.GenerateQA(o.scaleQA(datasets.Hotpot(seed)))
	twowiki := datasets.GenerateQA(o.scaleQA(datasets.TwoWiki(seed)))
	t := eval.Table{
		Title: "Table IV: Performance comparison on HotpotQA and 2WikiMultiHopQA",
		Headers: []string{"Method",
			"HotpotQA P", "HotpotQA R@5",
			"2WikiMHQA P", "2WikiMHQA R@5"},
	}
	for _, m := range tableIVMethods() {
		hp, hr, err := qaMethodCell(m, hotpot, seed)
		if err != nil {
			return fmt.Errorf("table4 %s hotpot: %w", m.Name(), err)
		}
		wp, wr, err := qaMethodCell(m, twowiki, seed)
		if err != nil {
			return fmt.Errorf("table4 %s 2wiki: %w", m.Name(), err)
		}
		t.AddRow(m.Name(), fmt.Sprintf("%.1f", hp), fmt.Sprintf("%.1f", hr),
			fmt.Sprintf("%.1f", wp), fmt.Sprintf("%.1f", wr))
	}
	hp, hr, err := qaMultiRAGCell(hotpot, seed)
	if err != nil {
		return fmt.Errorf("table4 multirag hotpot: %w", err)
	}
	wp, wr, err := qaMultiRAGCell(twowiki, seed)
	if err != nil {
		return fmt.Errorf("table4 multirag 2wiki: %w", err)
	}
	t.AddRow("MultiRAG", fmt.Sprintf("%.1f", hp), fmt.Sprintf("%.1f", hr),
		fmt.Sprintf("%.1f", wp), fmt.Sprintf("%.1f", wr))
	t.Fprint(o.Out)
	return nil
}
