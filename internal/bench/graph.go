package bench

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"time"

	"multirag/internal/kg"
	"multirag/internal/linegraph"
)

// GraphReport carries the structured graph-core benchmark results for
// BENCH_graph.json (stdout gets the human-readable table).
type GraphReport struct {
	Cells []GraphCell `json:"cells"`
}

// GraphCell is one (job, corpus size) measurement: seed vs interned timing
// plus, where measured, the allocation delta.
type GraphCell struct {
	Job            string  `json:"job"`
	N              int     `json:"n"`
	SeedMicros     float64 `json:"seed_us"`
	InternedMicros float64 `json:"interned_us"`
	Speedup        float64 `json:"speedup"`
	SeedAllocs     float64 `json:"seed_allocs,omitempty"`
	InternedAllocs float64 `json:"interned_allocs,omitempty"`
}

// graphReport collects cells for the current GraphBench run when the caller
// asked for them (benchtables -graph -json).
var graphReport *GraphReport

// GraphBenchReport runs GraphBench and returns the structured cells.
func GraphBenchReport(o Options) (*GraphReport, error) {
	rep := &GraphReport{}
	graphReport = rep
	defer func() { graphReport = nil }()
	if err := GraphBench(o); err != nil {
		return nil, err
	}
	return rep, nil
}

// GraphBench is the graph-core microbenchmark behind `make bench-graph`: it
// contrasts the seed string-keyed map substrate (deep clone per commit,
// nested-map line-graph dedup, full isolated re-sort per delta) against the
// interned columnar core (copy-on-write clone, int32 sort-merge adjacency,
// lazy isolated materialisation) on synthetic corpora, verifying on the way
// that both representations agree on every compared observable.
// Options.Scale shrinks the corpus for CI smoke runs.
func GraphBench(o Options) error {
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	scale := o.Scale
	if scale <= 0 {
		scale = 1
	}
	base := int(10000 * scale)
	if base < 500 {
		base = 500
	}
	sizes := []int{base / 10, base}
	const commits = 16
	const batch = 64

	fmt.Fprintf(o.Out, "Graph-core microbenchmarks (%d commits of %d triples per cell)\n", commits, batch)

	for _, n := range sizes {
		rng := rand.New(rand.NewSource(int64(seed)))
		corpus := graphCorpus(rng, n)
		deltas := make([][]graphFact, commits)
		for i := range deltas {
			deltas[i] = graphCorpus(rng, batch)
		}

		fmt.Fprintf(o.Out, "\n--- n=%d ---\n", n)
		if err := benchClonePerCommit(o, n, corpus, deltas); err != nil {
			return err
		}
		if err := benchTransform(o, n, corpus); err != nil {
			return err
		}
		if err := benchBuildDelta(o, n, corpus, deltas); err != nil {
			return err
		}
	}
	return nil
}

// graphFact is one synthetic claim; entity and value spaces are kept small
// relative to n so homologous groups form and entity objects link.
type graphFact struct {
	subj, pred, obj, src string
	weight               float64
}

func graphCorpus(rng *rand.Rand, n int) []graphFact {
	ents := n/8 + 4
	facts := make([]graphFact, n)
	for i := range facts {
		obj := fmt.Sprintf("value-%d", rng.Intn(n/4+2))
		if rng.Intn(4) == 0 {
			obj = fmt.Sprintf("Entity %d", rng.Intn(ents)) // entity link
		}
		facts[i] = graphFact{
			subj:   fmt.Sprintf("Entity %d", rng.Intn(ents)),
			pred:   fmt.Sprintf("attr%d", rng.Intn(6)),
			obj:    obj,
			src:    fmt.Sprintf("src-%d", rng.Intn(5)),
			weight: 0.5 + 0.1*float64(rng.Intn(5)),
		}
	}
	return facts
}

func loadGraph(g *kg.Graph, facts []graphFact) error {
	_, err := loadGraphIDs(g, facts)
	return err
}

func loadGraphIDs(g *kg.Graph, facts []graphFact) ([]string, error) {
	ids := make([]string, 0, len(facts))
	for _, f := range facts {
		id := g.AddEntity(f.subj, "Entity", "bench")
		tid, err := g.AddTriple(kg.Triple{
			Subject: id, Predicate: f.pred, Object: f.obj,
			Source: f.src, Domain: "bench", Weight: f.weight,
		})
		if err != nil {
			return nil, err
		}
		ids = append(ids, tid)
	}
	return ids, nil
}

func loadSeedGraph(g *seedGraph, facts []graphFact) error {
	for _, f := range facts {
		id := g.addEntity(f.subj, "Entity", "bench")
		if _, err := g.addTriple(kg.Triple{
			Subject: id, Predicate: f.pred, Object: f.obj,
			Source: f.src, Domain: "bench", Weight: f.weight,
		}); err != nil {
			return err
		}
	}
	return nil
}

// measure runs fn reps times and returns mean wall-clock, heap allocations
// and bytes per run.
func measure(reps int, fn func()) (perOp time.Duration, allocs, bytes float64) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	r := float64(reps)
	return elapsed / time.Duration(reps), float64(m1.Mallocs-m0.Mallocs) / r, float64(m1.TotalAlloc-m0.TotalAlloc) / r
}

// bestOf returns the fastest of reps runs of fn.
func bestOf(reps int, fn func()) time.Duration {
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		if el := time.Since(start); i == 0 || el < best {
			best = el
		}
	}
	return best
}

func ratioRow(out Options, n int, name string, seed, interned time.Duration, seedAllocs, internedAllocs float64, extra string) {
	ratio := ""
	speedup := 0.0
	if interned > 0 {
		speedup = float64(seed) / float64(interned)
		ratio = fmt.Sprintf(" (%.1fx)", speedup)
	}
	fmt.Fprintf(out.Out, "%-24s  seed %10s   interned %10s%s%s\n",
		name, fmtMicros(seed), fmtMicros(interned), ratio, extra)
	if graphReport != nil {
		graphReport.Cells = append(graphReport.Cells, GraphCell{
			Job: name, N: n,
			SeedMicros:     float64(seed.Nanoseconds()) / 1e3,
			InternedMicros: float64(interned.Nanoseconds()) / 1e3,
			Speedup:        speedup,
			SeedAllocs:     seedAllocs,
			InternedAllocs: internedAllocs,
		})
	}
}

// benchClonePerCommit times the ingest-commit pattern — clone the published
// graph, append one batch — on the seed deep-copy substrate vs the
// copy-on-write columnar core, then cross-checks the two final graphs.
func benchClonePerCommit(o Options, n int, corpus []graphFact, deltas [][]graphFact) error {
	ref := newSeedGraph()
	g := kg.New()
	if err := loadSeedGraph(ref, corpus); err != nil {
		return err
	}
	if err := loadGraph(g, corpus); err != nil {
		return err
	}

	var seedTotal, internedTotal time.Duration
	for _, d := range deltas {
		start := time.Now()
		ref = ref.clone()
		if err := loadSeedGraph(ref, d); err != nil {
			return err
		}
		seedTotal += time.Since(start)

		start = time.Now()
		g = g.Clone()
		if err := loadGraph(g, d); err != nil {
			return err
		}
		internedTotal += time.Since(start)
	}
	ratioRow(o, n, "clone-per-commit", seedTotal/commitsIn(deltas), internedTotal/commitsIn(deltas), 0, 0, "")

	// Equivalence: both substrates must agree on counts, degree structure and
	// every homologous key group.
	if ref.numTriples() != g.NumTriples() || ref.numEntities() != g.NumEntities() {
		return fmt.Errorf("graph bench: seed/interned counts diverge: (%d,%d) vs (%d,%d)",
			ref.numEntities(), ref.numTriples(), g.NumEntities(), g.NumTriples())
	}
	if ref.maxDegree() != g.MaxDegree() {
		return fmt.Errorf("graph bench: max degree diverges: %d vs %d", ref.maxDegree(), g.MaxDegree())
	}
	for key, ids := range ref.byKey {
		got := g.TriplesByRawKey(key)
		if len(got) != len(ids) {
			return fmt.Errorf("graph bench: key %q group size diverges: %d vs %d", key, len(got), len(ids))
		}
		for i, t := range got {
			if t.ID != ids[i] {
				return fmt.Errorf("graph bench: key %q member %d diverges: %s vs %s", key, i, t.ID, ids[i])
			}
		}
	}
	return nil
}

func commitsIn(deltas [][]graphFact) time.Duration {
	return time.Duration(len(deltas))
}

// benchTransform times the full line-graph transform: seed nested-map dedup
// vs handle-based sort-merge, reporting the allocation delta the sort-merge
// rewrite buys (the O(E²)-memory seen maps are the seed's dominant cost).
func benchTransform(o Options, n int, corpus []graphFact) error {
	g := kg.New()
	if err := loadGraph(g, corpus); err != nil {
		return err
	}
	reps := 4
	var want, got *linegraph.LineGraph
	seedTime, seedAllocs, seedBytes := measure(reps, func() { want = seedTransform(g) })
	newTime, newAllocs, newBytes := measure(reps, func() { got = linegraph.Transform(g) })
	extra := fmt.Sprintf("   allocs %.0f → %.0f, bytes %.0f → %.0f", seedAllocs, newAllocs, seedBytes, newBytes)
	ratioRow(o, n, "line-graph transform", seedTime, newTime, seedAllocs, newAllocs, extra)
	if !reflect.DeepEqual(got.Nodes, want.Nodes) || !reflect.DeepEqual(got.Adj, want.Adj) {
		return fmt.Errorf("graph bench: transform diverges from seed implementation at n=%d", n)
	}
	return nil
}

// benchBuildDelta times incremental SG maintenance across a batch sequence:
// the seed discipline (copy both maps, regroup affected keys, rebuild and
// re-sort the whole isolated list every batch) vs linegraph.BuildDelta with
// lazy isolated materialisation. Both run over the same interned graph, so
// the measured delta isolates the linegraph-layer change.
func benchBuildDelta(o Options, n int, corpus []graphFact, deltas [][]graphFact) error {
	g := kg.New()
	if err := loadGraph(g, corpus); err != nil {
		return err
	}
	seedBase := seedBuild(g)
	newBase := linegraph.Build(g)
	batchIDs := make([][]string, 0, len(deltas))
	for _, d := range deltas {
		ids, err := loadGraphIDs(g, d)
		if err != nil {
			return err
		}
		batchIDs = append(batchIDs, ids)
	}

	// Each rep replays the whole batch chain from the pre-delta base; the
	// best of several reps damps scheduler noise at small corpus sizes.
	const chainReps = 5
	var seedChain *seedSG
	seedTime := bestOf(chainReps, func() {
		seedChain = seedBase
		for _, ids := range batchIDs {
			seedChain = seedBuildDelta(seedChain, g, ids)
		}
	}) / time.Duration(len(batchIDs))

	var newChain *linegraph.SG
	newTime := bestOf(chainReps, func() {
		newChain = newBase
		for _, ids := range batchIDs {
			newChain = linegraph.BuildDelta(newChain, g, ids)
		}
	}) / time.Duration(len(batchIDs))
	ratioRow(o, n, "build-delta per batch", seedTime, newTime, 0, 0, "")

	// Equivalence: both chains must match a from-scratch build over the
	// final corpus, node for node and isolated point for isolated point.
	want := linegraph.Build(g)
	if !reflect.DeepEqual(newChain.ComputeStats(), want.ComputeStats()) ||
		!reflect.DeepEqual(newChain.IsolatedIDs(), want.IsolatedIDs()) {
		return fmt.Errorf("graph bench: incremental delta chain diverges from scratch build")
	}
	if len(seedChain.nodes) != want.NumNodes() {
		return fmt.Errorf("graph bench: seed-style node count %d diverges from scratch %d", len(seedChain.nodes), want.NumNodes())
	}
	for key, sn := range seedChain.nodes {
		wn, ok := want.Node(key)
		if !ok || !reflect.DeepEqual(sn.members, wn.Members) {
			return fmt.Errorf("graph bench: seed-style node %q diverges from scratch build", key)
		}
	}
	if !reflect.DeepEqual(seedChain.isolated, want.IsolatedIDs()) {
		return fmt.Errorf("graph bench: seed-style isolated set diverges from scratch build")
	}
	return nil
}
