package bench

import (
	"fmt"

	"multirag/internal/baselines"
	"multirag/internal/confidence"
	"multirag/internal/core"
	"multirag/internal/datasets"
	"multirag/internal/eval"
	"multirag/internal/kg"
	"multirag/internal/llm"
)

// perturbKind selects the Fig. 5 perturbation.
type perturbKind int

const (
	perturbMask    perturbKind = iota // relationship masking (sparsity)
	perturbShuffle                    // shuffled triple increments (inconsistency)
)

// perturbedMultiRAGF1 builds MultiRAG over the dataset, applies the graph
// perturbation, rebuilds SG′ and measures F1 (%).
func perturbedMultiRAGF1(d *datasets.Dataset, kind perturbKind, frac float64, seed uint64) (float64, error) {
	s := core.NewSystem(core.Config{LLM: llmConfig(seed)})
	if _, err := s.Ingest(d.Files); err != nil {
		return 0, err
	}
	applyPerturbation(s.Graph(), d, kind, frac, seed)
	s.RebuildSG()
	var f1 eval.Mean
	for _, q := range d.Queries {
		ans := s.Query(q.Text)
		_, _, f := eval.PRF1(ans.Values, q.Gold)
		f1.Add(f)
	}
	return f1.Value() * 100, nil
}

// perturbedBaselineF1 does the same for a baseline method.
func perturbedBaselineF1(m baselines.Method, d *datasets.Dataset, kind perturbKind, frac float64, seed uint64) (float64, error) {
	model := llm.NewSim(llmConfig(seed))
	env, err := buildEnv(d.Files, model)
	if err != nil {
		return 0, err
	}
	applyPerturbation(env.Graph, d, kind, frac, seed)
	m.Setup(env)
	var f1 eval.Mean
	for _, q := range d.Queries {
		got := m.AnswerFusion(q.Text, q.Entity, q.Attribute)
		_, _, f := eval.PRF1(got, q.Gold)
		f1.Add(f)
	}
	return f1.Value() * 100, nil
}

func applyPerturbation(g *kg.Graph, d *datasets.Dataset, kind perturbKind, frac float64, seed uint64) {
	switch kind {
	case perturbMask:
		datasets.MaskRelations(g, frac, seed+101, d.Gold)
	case perturbShuffle:
		datasets.AddShuffledTriples(g, frac, seed+202)
	}
}

// Figure5 runs the robustness sweeps: sparsity (relationship masking) on the
// Books and Stocks datasets, consistency (shuffled triple increments) on the
// Movies and Flights datasets, for MultiRAG vs ChatKBQA at 0/30/50/70%.
func Figure5(o Options) error {
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	levels := []float64{0, 0.3, 0.5, 0.7}
	ticks := []string{"0%", "30%", "50%", "70%"}
	cache := datasetCache{}
	panels := []struct {
		panel   string
		dataset string
		kind    perturbKind
		label   string
	}{
		{"(a)", "movies", perturbShuffle, "consistency perturbation"},
		{"(b)", "books", perturbMask, "sparsity (relation masking)"},
		{"(c)", "flights", perturbShuffle, "consistency perturbation"},
		{"(d)", "stocks", perturbMask, "sparsity (relation masking)"},
	}
	for _, p := range panels {
		d, err := cache.get(p.dataset, o)
		if err != nil {
			return err
		}
		var ours, theirs []float64
		for _, frac := range levels {
			f1, err := perturbedMultiRAGF1(d, p.kind, frac, seed)
			if err != nil {
				return fmt.Errorf("fig5 %s multirag: %w", p.dataset, err)
			}
			ours = append(ours, f1)
			bf1, err := perturbedBaselineF1(baselines.NewChatKBQA(), d, p.kind, frac, seed)
			if err != nil {
				return fmt.Errorf("fig5 %s chatkbqa: %w", p.dataset, err)
			}
			theirs = append(theirs, bf1)
		}
		fig := eval.Figure{
			Title:   fmt.Sprintf("Figure 5%s: F1 in %s under %s", p.panel, p.dataset, p.label),
			XLabel:  "level",
			XTicks:  ticks,
			Percent: true,
			Series: []eval.Series{
				{Name: "MultiRAG", Ys: ours},
				{Name: "ChatKBQA", Ys: theirs},
			},
		}
		fig.Fprint(o.Out)
		fmt.Fprintln(o.Out)
	}
	return nil
}

// Figure6 runs the efficiency–accuracy tradeoff: F1 and query time at source
// corruption levels 0/10/30/50/70% on Movies and Books.
func Figure6(o Options) error {
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	levels := []float64{0, 0.1, 0.3, 0.5, 0.7}
	ticks := []string{"0%", "10%", "30%", "50%", "70%"}
	cache := datasetCache{}
	for _, name := range []string{"movies", "books"} {
		d, err := cache.get(name, o)
		if err != nil {
			return err
		}
		var f1s, qts []float64
		var bf1s, bqts []float64
		for _, frac := range levels {
			corrupted, err := d.CorruptSources(frac, seed+307)
			if err != nil {
				return fmt.Errorf("fig6 %s: %w", name, err)
			}
			f1, qt, _, err := multiragCell(core.Config{}, corrupted.Files, corrupted.Queries, seed)
			if err != nil {
				return fmt.Errorf("fig6 %s multirag: %w", name, err)
			}
			f1s = append(f1s, f1)
			qts = append(qts, qt)
			bf1, bqt, err := fusionCell(baselines.NewFusionQuery(), corrupted.Files, corrupted.Queries, seed)
			if err != nil {
				return fmt.Errorf("fig6 %s fusionquery: %w", name, err)
			}
			bf1s = append(bf1s, bf1)
			bqts = append(bqts, bqt)
		}
		fig := eval.Figure{
			Title:   fmt.Sprintf("Figure 6: Efficiency–accuracy tradeoff on %s (corruption sweep)", name),
			XLabel:  "corruption",
			XTicks:  ticks,
			Percent: true,
			Series: []eval.Series{
				{Name: "MultiRAG F1", Ys: f1s},
				{Name: "FusionQuery F1", Ys: bf1s},
			},
		}
		fig.Fprint(o.Out)
		timeFig := eval.Figure{
			Title:  fmt.Sprintf("Figure 6 (cont.): query time on %s, seconds", name),
			XLabel: "corruption",
			XTicks: ticks,
			Series: []eval.Series{
				{Name: "MultiRAG QT", Ys: qts},
				{Name: "FusionQuery QT", Ys: bqts},
			},
		}
		timeFig.Fprint(o.Out)
		fmt.Fprintln(o.Out)
	}
	return nil
}

// Figure7 sweeps the authority mixing weight α on the Books J/C/X corpus,
// reporting F1 and query time per α.
func Figure7(o Options) error {
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	cache := datasetCache{}
	d, err := cache.get("books", o)
	if err != nil {
		return err
	}
	files, err := d.FilterFormats("J/C/X")
	if err != nil {
		return fmt.Errorf("fig7: %w", err)
	}
	queries, err := d.QueriesFor("J/C/X", len(d.Queries))
	if err != nil {
		return fmt.Errorf("fig7: %w", err)
	}
	alphas := []float64{0, 0.25, 0.5, 0.75, 1.0}
	ticks := []string{"0.0", "0.25", "0.5", "0.75", "1.0"}
	var f1s, qts []float64
	for _, a := range alphas {
		mcc := confidence.DefaultConfig()
		mcc.Alpha = a
		f1, qt, _, err := multiragCell(core.Config{MCC: mcc}, files, queries, seed)
		if err != nil {
			return fmt.Errorf("fig7 alpha=%.2f: %w", a, err)
		}
		f1s = append(f1s, f1)
		qts = append(qts, qt)
	}
	fig := eval.Figure{
		Title:   "Figure 7: Influence of hyperparameter alpha on multi-source retrieval (Books J/C/X)",
		XLabel:  "alpha",
		XTicks:  ticks,
		Percent: true,
		Series:  []eval.Series{{Name: "F1", Ys: f1s}},
	}
	fig.Fprint(o.Out)
	timeFig := eval.Figure{
		Title:  "Figure 7 (cont.): query time, seconds",
		XLabel: "alpha",
		XTicks: ticks,
		Series: []eval.Series{{Name: "QT", Ys: qts}},
	}
	timeFig.Fprint(o.Out)
	return nil
}
