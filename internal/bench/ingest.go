package bench

import (
	"fmt"
	"sync/atomic"
	"time"

	"multirag/internal/adapter"
	"multirag/internal/core"
	"multirag/internal/linegraph"
	"multirag/internal/llm"
	"multirag/internal/par"
	"multirag/internal/textutil"
)

// IngestReport carries the structured ingest-throughput benchmark results
// for BENCH_ingest.json (stdout gets the human-readable table).
type IngestReport struct {
	Cells []IngestCell `json:"cells"`
}

// IngestCell is one (corpus size, producer count) measurement: aggregate
// stream throughput of the serialized baseline (Config.SerializeIngest — the
// pre-pipeline write path, whole call under the lock, one snapshot and one
// full stats walk per batch) against the pipelined group-committing ingest,
// best of 3 passes each, with both final corpora equivalence-checked.
type IngestCell struct {
	N            int     `json:"n"` // base corpus triples before the timed stream
	Producers    int     `json:"producers"`
	Batches      int     `json:"batches"` // batches in the timed stream
	SerialBPS    float64 `json:"serialized_batches_per_sec"`
	PipelinedBPS float64 `json:"pipelined_batches_per_sec"`
	Speedup      float64 `json:"speedup"`
}

// ingestReport collects cells for the current IngestBench run when the
// caller asked for them (benchtables -ingest -json).
var ingestReport *IngestReport

// IngestBenchReport runs IngestBench and returns the structured cells.
func IngestBenchReport(o Options) (*IngestReport, error) {
	rep := &IngestReport{}
	ingestReport = rep
	defer func() { ingestReport = nil }()
	if err := IngestBench(o); err != nil {
		return nil, err
	}
	return rep, nil
}

// IngestBench is the ingest-throughput microbenchmark behind
// `make bench-ingest`. Each cell pre-ingests a base corpus, then drains a
// fixed stream of small update batches through N concurrent producers —
// once on the serialized baseline, once on the pipelined group-committing
// path — and reports aggregate batches/s. The serialized path holds the
// write lock for each call's whole duration, so its aggregate throughput is
// flat in the producer count; the pipeline overlaps the fan-outs and
// amortises the per-commit clone/delta/publish over each commit group.
//
// Equivalence: commit order under concurrent producers is whatever arrival
// order the scheduler produces, so the final corpora are compared on
// order-insensitive observables (entity/triple counts, a triple-content
// multiset hash, homologous statistics against the walking oracle, chunk
// count). Every run of a cell must agree with every other run of that cell.
func IngestBench(o Options) error {
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	scale := o.Scale
	if scale <= 0 {
		scale = 1
	}
	base := int(24000 * scale)
	if base < 600 {
		base = 600
	}
	sizes := []int{base / 8, base}
	batches := int(256 * scale)
	if batches < 24 {
		batches = 24
	}

	fmt.Fprintf(o.Out, "Ingest-throughput microbenchmarks (%d-batch stream, best of 3 passes)\n", batches)
	fmt.Fprintf(o.Out, "serialized = whole-call lock, one snapshot + full stats walk per batch; pipelined = off-lock fan-out + group commit\n")

	for _, n := range sizes {
		baseFiles := ingestBaseCorpus(n)
		stream := ingestStream(n, batches)
		fmt.Fprintf(o.Out, "\n--- base corpus n=%d triples ---\n", n)
		for _, producers := range []int{1, 2, 4} {
			var obsSerial, obsPipe ingestObservables
			serialTime, err := bestIngestPass(seed, baseFiles, stream, producers, true, &obsSerial)
			if err != nil {
				return err
			}
			pipeTime, err := bestIngestPass(seed, baseFiles, stream, producers, false, &obsPipe)
			if err != nil {
				return err
			}
			if obsSerial != obsPipe {
				return fmt.Errorf("ingest bench: final corpora diverge at n=%d producers=%d:\n serialized %+v\n pipelined  %+v",
					n, producers, obsSerial, obsPipe)
			}
			sBPS := float64(len(stream)) / serialTime.Seconds()
			pBPS := float64(len(stream)) / pipeTime.Seconds()
			speedup := sBPS
			if sBPS > 0 {
				speedup = pBPS / sBPS
			}
			fmt.Fprintf(o.Out, "%d producer(s)   serialized %8.0f batches/s   pipelined %8.0f batches/s (%.2fx)\n",
				producers, sBPS, pBPS, speedup)
			if ingestReport != nil {
				ingestReport.Cells = append(ingestReport.Cells, IngestCell{
					N: n, Producers: producers, Batches: len(stream),
					SerialBPS: sBPS, PipelinedBPS: pBPS, Speedup: speedup,
				})
			}
		}
	}
	return nil
}

// bestIngestPass runs the stream drain 3 times on fresh systems and returns
// the fastest wall time; obs receives the final-state observables of the
// last pass (identical across passes by construction).
func bestIngestPass(seed uint64, baseFiles []adapter.RawFile, stream [][]adapter.RawFile, producers int, serialize bool, obs *ingestObservables) (time.Duration, error) {
	var best time.Duration
	for pass := 0; pass < 3; pass++ {
		cfg := core.Config{LLM: llm.DefaultConfig(), SerializeIngest: serialize}
		cfg.LLM.Seed = seed
		s := core.NewSystem(cfg)
		if _, err := s.Ingest(baseFiles); err != nil {
			return 0, fmt.Errorf("ingest bench base corpus: %w", err)
		}
		var next atomic.Int64
		errs := make([]error, producers)
		start := time.Now()
		par.ForEach(producers, producers, func(w int) {
			for {
				i := int(next.Add(1)) - 1
				if i >= len(stream) {
					return
				}
				if _, err := s.Ingest(stream[i]); err != nil {
					errs[w] = err
					return
				}
			}
		})
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return 0, fmt.Errorf("ingest bench stream: %w", err)
			}
		}
		if pass == 0 || elapsed < best {
			best = elapsed
		}
		o, err := observeIngest(s)
		if err != nil {
			return 0, err
		}
		if pass == 0 {
			*obs = o
		} else if *obs != o {
			return 0, fmt.Errorf("ingest bench: passes diverge (producers=%d serialize=%v)", producers, serialize)
		}
	}
	return best, nil
}

// ingestObservables is the order-insensitive fingerprint of a final corpus.
type ingestObservables struct {
	Entities   int
	Triples    int
	TripleHash uint64 // commutative multiset hash of triple contents
	Stats      linegraph.Stats
	Chunks     int
}

func observeIngest(s *core.System) (ingestObservables, error) {
	g, sg, ix := s.Serving()
	obs := ingestObservables{
		Entities: g.NumEntities(),
		Triples:  g.NumTriples(),
		Chunks:   ix.Len(),
	}
	for _, id := range g.TripleIDs() {
		t, _ := g.Triple(id)
		obs.TripleHash += textutil.Hash64(fmt.Sprintf("%s|%s|%s|%s|%s|%g",
			t.Subject, t.Predicate, t.Object, t.Source, t.Format, t.Weight))
	}
	if sg != nil {
		obs.Stats = sg.ComputeStats()
		if oracle := sg.RecomputeStats(); obs.Stats != oracle {
			return obs, fmt.Errorf("ingest bench: incremental stats %+v drifted from oracle %+v", obs.Stats, oracle)
		}
	}
	return obs, nil
}

// ingestBaseCorpus renders n triples as three kg-format source files that
// all assert the same (subject, predicate) keys, so every key is a 3-member
// homologous group — the multi-source corpus shape the system exists for,
// and the one that makes the per-commit full stats walk of the serialized
// baseline expensive (n/3 homologous nodes).
func ingestBaseCorpus(n int) []adapter.RawFile {
	keys := n / 3
	ents := keys/8 + 4
	sources := []string{"registry-api", "ledger-feed", "mirror-api"}
	lines := make([][]byte, len(sources))
	for k := 0; k < keys; k++ {
		line := []byte(fmt.Sprintf("Asset %d|attr%d|value-%d\n", k%ents, (k/ents)%8, k%7))
		for s := range lines {
			lines[s] = append(lines[s], line...)
		}
	}
	files := make([]adapter.RawFile, len(sources))
	for i, src := range sources {
		files[i] = adapter.RawFile{Domain: "bench", Source: src, Name: "base", Format: "kg", Content: lines[i]}
	}
	return files
}

// ingestStream builds the timed update stream: small single-file batches
// whose subjects hit the base corpus's entity space, so every commit grows
// existing homologous groups through the line-graph delta.
func ingestStream(n, batches int) [][]adapter.RawFile {
	ents := (n/3)/8 + 4
	out := make([][]adapter.RawFile, batches)
	for i := range out {
		subj := fmt.Sprintf("Asset %d", (i*37)%ents)
		content := fmt.Sprintf("%s|attr%d|value-%d\n%s|attr%d|value-%d\n%s|live_state|state-%d\n",
			subj, i%8, (i+3)%7,
			subj, (i+4)%8, i%7,
			subj, i%5)
		out[i] = []adapter.RawFile{{
			Domain: "bench", Source: fmt.Sprintf("stream-%d", i%4), Name: fmt.Sprintf("update-%d", i),
			Format: "kg", Content: []byte(content),
		}}
	}
	return out
}
