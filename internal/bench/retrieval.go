package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"multirag/internal/par"
	"multirag/internal/retrieval"
)

// RetrievalCell is one exact-strategy timing cell of the retrieval
// microbenchmark (per-query mean over the query batch).
type RetrievalCell struct {
	Variant        string  `json:"variant"`
	N              int     `json:"n"`
	PerQueryMicros float64 `json:"per_query_micros"`
	Speedup        float64 `json:"speedup_vs_full_sort,omitempty"`
}

// RetrievalReport is the structured form of the exact retrieval
// microbenchmarks, recorded into BENCH_retrieval.json.
type RetrievalReport struct {
	K       int             `json:"k"`
	Queries int             `json:"queries"`
	Cells   []RetrievalCell `json:"cells"`
}

// Retrieval is the retrieval-layer microbenchmark behind `make
// bench-retrieval`; see RetrievalBenchReport.
func Retrieval(o Options) error {
	_, err := RetrievalBenchReport(o)
	return err
}

// RetrievalBenchReport contrasts the seed full-sort scan against the layered
// exact subsystem (bounded heap top-k, postings pruning, sharded parallel
// scan) on synthetic corpora, verifying on the way that every exact variant
// returns identical hits. Options.Scale shrinks the corpus for CI smoke runs.
func RetrievalBenchReport(o Options) (*RetrievalReport, error) {
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	scale := o.Scale
	if scale <= 0 {
		scale = 1
	}
	base := int(20000 * scale)
	if base < 400 {
		base = 400
	}
	sizes := []int{base / 10, base}
	const k = 5
	const queries = 32

	fmt.Fprintf(o.Out, "Retrieval microbenchmarks (k=%d, %d queries per cell; per-query mean)\n", k, queries)
	fmt.Fprintf(o.Out, "%-22s", "variant")
	for _, n := range sizes {
		fmt.Fprintf(o.Out, "  %14s", fmt.Sprintf("n=%d", n))
	}
	fmt.Fprintln(o.Out)

	rng := rand.New(rand.NewSource(int64(seed)))
	type cell struct{ perQuery time.Duration }
	rows := []string{"full-sort scan", "heap top-k", "heap+postings", "sharded", "sharded+postings"}
	results := map[string][]cell{}

	for _, n := range sizes {
		chunks, vecs := retrievalCorpus(rng, n)
		qvs := make([]retrieval.Vector, queries)
		for i := range qvs {
			qvs[i] = retrieval.Embed(retrievalText(rng), retrieval.DefaultDim)
		}
		stores := map[string]retrieval.Store{
			"heap top-k":       retrieval.New(retrieval.Options{}),
			"heap+postings":    retrieval.New(retrieval.Options{Postings: true}),
			"sharded":          retrieval.New(retrieval.Options{Shards: 8}),
			"sharded+postings": retrieval.New(retrieval.Options{Shards: 8, Postings: true}),
		}
		for _, st := range stores {
			st.AddEmbeddedBatch(chunks, vecs)
		}

		// Reference timing and reference results for the equality check.
		want := make([][]retrieval.Hit, queries)
		start := time.Now()
		for i, qv := range qvs {
			want[i] = fullSortScan(chunks, vecs, qv, k)
		}
		results["full-sort scan"] = append(results["full-sort scan"], cell{time.Since(start) / queries})

		for _, name := range rows[1:] {
			st := stores[name]
			start := time.Now()
			for _, qv := range qvs {
				st.SearchVector(qv, k, nil)
			}
			results[name] = append(results[name], cell{time.Since(start) / queries})
			for i, qv := range qvs {
				if !sameHits(st.SearchVector(qv, k, nil), want[i]) {
					return nil, fmt.Errorf("retrieval bench: %s diverges from full sort at n=%d query %d", name, n, i)
				}
			}
		}
	}

	rep := &RetrievalReport{K: k, Queries: queries}
	for _, name := range rows {
		fmt.Fprintf(o.Out, "%-22s", name)
		for i, c := range results[name] {
			speedup := 0.0
			suffix := ""
			if name != rows[0] {
				ref := results[rows[0]][i].perQuery
				if c.perQuery > 0 {
					speedup = float64(ref) / float64(c.perQuery)
					suffix = fmt.Sprintf(" (%4.1fx)", speedup)
				}
			}
			fmt.Fprintf(o.Out, "  %14s", fmt.Sprintf("%s%s", fmtMicros(c.perQuery), suffix))
			rep.Cells = append(rep.Cells, RetrievalCell{
				Variant:        name,
				N:              sizes[i],
				PerQueryMicros: micros(c.perQuery),
				Speedup:        speedup,
			})
		}
		fmt.Fprintln(o.Out)
	}
	return rep, nil
}

// ANNCell is one configuration of the recall-vs-speedup grid: how fast the
// approximate tier answers relative to the sharded exact scan, and how much
// recall / rank fidelity it gives up to get there.
type ANNCell struct {
	Config         string  `json:"config"`
	N              int     `json:"n"`
	NList          int     `json:"nlist,omitempty"`
	NProbe         int     `json:"nprobe,omitempty"`
	Int8           bool    `json:"int8,omitempty"`
	BuildSeconds   float64 `json:"build_seconds,omitempty"`
	PerQueryMicros float64 `json:"per_query_micros"`
	Speedup        float64 `json:"speedup_vs_sharded_exact,omitempty"`
	RecallAtK      float64 `json:"recall_at_k"`
	ScoreMAE       float64 `json:"score_mae"`
}

// ANNReport is the structured recall/error harness output behind `make
// bench-ann`, recorded into BENCH_retrieval.json alongside the exact cells.
type ANNReport struct {
	K       int       `json:"k"`
	Queries int       `json:"queries"`
	Cells   []ANNCell `json:"cells"`
}

// annConfigs is the probed grid: the nprobe sweep in float32 and int8
// coarse-pass flavours.
var annConfigs = []struct {
	name     string
	nprobe   int
	quantize bool
}{
	{"ivf nprobe=1", 1, false},
	{"ivf nprobe=2", 2, false},
	{"ivf nprobe=4", 4, false},
	{"ivf nprobe=8", 8, false},
	{"ivf nprobe=16", 16, false},
	{"ivf-int8 nprobe=8", 8, true},
	{"ivf-int8 nprobe=16", 16, true},
}

// ANNBench runs the grid without returning the report (Makefile text path).
func ANNBench(o Options) error {
	_, err := ANNBenchReport(o)
	return err
}

// ANNBenchReport is the ANN recall/error harness: every approximate
// configuration is A/B'd against the exact sharded scan on the same corpus
// and query batch — the same pattern the exact strategies were
// equivalence-pinned by, except ANN is knowingly lossy, so instead of
// requiring bit-identity it reports recall@k and score MAE next to the
// speedup. Corpora are larger than the exact microbenchmark's (the regime
// ANN exists for); Options.Scale shrinks them for CI smoke runs.
func ANNBenchReport(o Options) (*ANNReport, error) {
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	scale := o.Scale
	if scale <= 0 {
		scale = 1
	}
	base := int(120000 * scale)
	if base < 2000 {
		base = 2000
	}
	sizes := []int{base / 8, base}
	const k = 10
	const queries = 32

	rep := &ANNReport{K: k, Queries: queries}
	rng := rand.New(rand.NewSource(int64(seed)))

	fmt.Fprintf(o.Out, "ANN recall/speedup grid (k=%d, %d queries per cell; per-query mean)\n", k, queries)
	for _, n := range sizes {
		chunks, vecs := annCorpus(rng, n)
		topics := annTopics(n)
		qvs := make([]retrieval.Vector, queries)
		for i := range qvs {
			qvs[i] = retrieval.Embed(annText(rng, rng.Intn(topics)), retrieval.DefaultDim)
		}

		exact := retrieval.New(retrieval.Options{Shards: 8, Postings: true})
		exact.AddEmbeddedBatch(chunks, vecs)
		want := make([][]retrieval.Hit, queries)
		start := time.Now()
		for i, qv := range qvs {
			want[i] = exact.SearchVector(qv, k, nil)
		}
		exactPerQuery := time.Since(start) / queries
		fmt.Fprintf(o.Out, "\nn=%d\n%-22s %12s %9s %10s %11s\n", n,
			"config", "per-query", "speedup", "recall@10", "score MAE")
		fmt.Fprintf(o.Out, "%-22s %12s %9s %10s %11s\n",
			"sharded exact scan", fmtMicros(exactPerQuery), "1.0x", "1.000", "0")
		rep.Cells = append(rep.Cells, ANNCell{
			Config: "sharded exact scan", N: n,
			PerQueryMicros: micros(exactPerQuery), Speedup: 1, RecallAtK: 1, ScoreMAE: 0,
		})

		for _, cfg := range annConfigs {
			ann := retrieval.NewANN(retrieval.Options{
				NProbe:      cfg.nprobe,
				ANNQuantize: cfg.quantize,
			})
			ann.AddEmbeddedBatch(chunks, vecs)
			buildStart := time.Now()
			ann.SearchVector(qvs[0], k, nil) // trigger the lazy IVF build
			buildSecs := time.Since(buildStart).Seconds()
			nlist, _, _ := ann.IVFStats()

			start := time.Now()
			for _, qv := range qvs {
				ann.SearchVector(qv, k, nil)
			}
			perQuery := time.Since(start) / queries

			var recall, mae float64
			for i, qv := range qvs {
				got := ann.SearchVector(qv, k, nil)
				recall += retrieval.RecallAtK(got, want[i])
				mae += retrieval.ScoreMAE(got, want[i])
			}
			recall /= queries
			mae /= queries
			speedup := 0.0
			if perQuery > 0 {
				speedup = float64(exactPerQuery) / float64(perQuery)
			}
			fmt.Fprintf(o.Out, "%-22s %12s %8.1fx %10.3f %11.2g\n",
				cfg.name, fmtMicros(perQuery), speedup, recall, mae)
			rep.Cells = append(rep.Cells, ANNCell{
				Config: cfg.name, N: n, NList: nlist, NProbe: cfg.nprobe, Int8: cfg.quantize,
				BuildSeconds: buildSecs, PerQueryMicros: micros(perQuery),
				Speedup: speedup, RecallAtK: recall, ScoreMAE: mae,
			})
		}
	}
	return rep, nil
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func fmtMicros(d time.Duration) string {
	return fmt.Sprintf("%.0fµs", float64(d.Nanoseconds())/1e3)
}

// retrievalVocab mixes high-overlap attribute tokens with entity-like tokens
// so scores tie often and the postings filter sees realistic selectivity.
var retrievalVocab = []string{
	"status", "delayed", "on", "time", "boarding", "gate", "departure",
	"director", "year", "genre", "price", "volume", "airport", "typhoon",
	"harbor", "garden", "monument", "voyage", "crimson", "silent",
}

func retrievalText(rng *rand.Rand) string {
	n := 3 + rng.Intn(8)
	words := make([]string, n)
	for i := range words {
		if rng.Intn(4) == 0 {
			words[i] = fmt.Sprintf("e%04d", rng.Intn(2000)) // entity-ish token
		} else {
			words[i] = retrievalVocab[rng.Intn(len(retrievalVocab))]
		}
	}
	return strings.Join(words, " ")
}

func retrievalCorpus(rng *rand.Rand, n int) ([]retrieval.Chunk, []retrieval.Vector) {
	chunks := make([]retrieval.Chunk, n)
	vecs := make([]retrieval.Vector, n)
	for i := range chunks {
		chunks[i] = retrieval.Chunk{
			ID:     fmt.Sprintf("bench/d%06d#c0", i),
			DocID:  fmt.Sprintf("bench/d%06d", i),
			Source: fmt.Sprintf("src-%d", i%5),
			Text:   retrievalText(rng),
		}
		vecs[i] = retrieval.Embed(chunks[i].Text, retrieval.DefaultDim)
	}
	return chunks, vecs
}

// The ANN corpus is topical: each document draws most of its words from one
// topic's private vocabulary plus a sprinkle of shared attribute tokens, and
// queries are drawn the same way. That gives the embedding space the cluster
// structure real RAG corpora have (documents about the same entity or event
// share vocabulary) — the regime IVF is designed for. A corpus of uniformly
// random token soup embeds to near-orthogonal directions, where no coarse
// quantizer can do better than probing everything; measuring recall there
// would say nothing about the deployed behaviour.
const annTopicVocab = 24

func annTopics(n int) int {
	t := n / 300
	if t < 16 {
		t = 16
	}
	return t
}

func annText(rng *rand.Rand, topic int) string {
	n := 6 + rng.Intn(6)
	words := make([]string, n)
	for i := range words {
		if rng.Intn(6) == 0 {
			words[i] = retrievalVocab[rng.Intn(len(retrievalVocab))]
		} else {
			words[i] = fmt.Sprintf("t%04d-w%02d", topic, rng.Intn(annTopicVocab))
		}
	}
	return strings.Join(words, " ")
}

// annCorpus renders and embeds n ANN-bench chunks; embedding fans out on the
// worker pool (setup cost only — the grid itself times searches).
func annCorpus(rng *rand.Rand, n int) ([]retrieval.Chunk, []retrieval.Vector) {
	topics := annTopics(n)
	chunks := make([]retrieval.Chunk, n)
	for i := range chunks {
		chunks[i] = retrieval.Chunk{
			ID:     fmt.Sprintf("ann/d%06d#c0", i),
			DocID:  fmt.Sprintf("ann/d%06d", i),
			Source: fmt.Sprintf("src-%d", i%7),
			Text:   annText(rng, rng.Intn(topics)),
		}
	}
	vecs := make([]retrieval.Vector, n)
	par.ForEach(0, n, func(i int) {
		vecs[i] = retrieval.Embed(chunks[i].Text, retrieval.DefaultDim)
	})
	return chunks, vecs
}

// fullSortScan reproduces the seed Search implementation: materialise and
// stably full-sort every hit.
func fullSortScan(chunks []retrieval.Chunk, vecs []retrieval.Vector, qv retrieval.Vector, k int) []retrieval.Hit {
	hits := make([]retrieval.Hit, len(chunks))
	for i := range chunks {
		hits[i] = retrieval.Hit{Chunk: chunks[i], Score: retrieval.Cosine(qv, vecs[i])}
	}
	sort.SliceStable(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Chunk.ID < hits[j].Chunk.ID
	})
	if k > len(hits) {
		k = len(hits)
	}
	return hits[:k]
}

func sameHits(a, b []retrieval.Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Chunk.ID != b[i].Chunk.ID || a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}
