package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"multirag/internal/retrieval"
)

// Retrieval is the retrieval-layer microbenchmark behind `make
// bench-retrieval`: it contrasts the seed full-sort scan against the layered
// subsystem (bounded heap top-k, postings pruning, sharded parallel scan) on
// synthetic corpora, verifying on the way that every variant returns
// identical hits. Options.Scale shrinks the corpus for CI smoke runs.
func Retrieval(o Options) error {
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	scale := o.Scale
	if scale <= 0 {
		scale = 1
	}
	base := int(20000 * scale)
	if base < 400 {
		base = 400
	}
	sizes := []int{base / 10, base}
	const k = 5
	const queries = 32

	fmt.Fprintf(o.Out, "Retrieval microbenchmarks (k=%d, %d queries per cell; per-query mean)\n", k, queries)
	fmt.Fprintf(o.Out, "%-22s", "variant")
	for _, n := range sizes {
		fmt.Fprintf(o.Out, "  %14s", fmt.Sprintf("n=%d", n))
	}
	fmt.Fprintln(o.Out)

	rng := rand.New(rand.NewSource(int64(seed)))
	type cell struct{ perQuery time.Duration }
	rows := []string{"full-sort scan", "heap top-k", "heap+postings", "sharded", "sharded+postings"}
	results := map[string][]cell{}

	for _, n := range sizes {
		chunks, vecs := retrievalCorpus(rng, n)
		qvs := make([]retrieval.Vector, queries)
		for i := range qvs {
			qvs[i] = retrieval.Embed(retrievalText(rng), retrieval.DefaultDim)
		}
		stores := map[string]retrieval.Store{
			"heap top-k":       retrieval.New(retrieval.Options{}),
			"heap+postings":    retrieval.New(retrieval.Options{Postings: true}),
			"sharded":          retrieval.New(retrieval.Options{Shards: 8}),
			"sharded+postings": retrieval.New(retrieval.Options{Shards: 8, Postings: true}),
		}
		for _, st := range stores {
			for i := range chunks {
				st.AddEmbedded(chunks[i], vecs[i])
			}
		}

		// Reference timing and reference results for the equality check.
		want := make([][]retrieval.Hit, queries)
		start := time.Now()
		for i, qv := range qvs {
			want[i] = fullSortScan(chunks, vecs, qv, k)
		}
		results["full-sort scan"] = append(results["full-sort scan"], cell{time.Since(start) / queries})

		for _, name := range rows[1:] {
			st := stores[name]
			start := time.Now()
			for _, qv := range qvs {
				st.SearchVector(qv, k, nil)
			}
			results[name] = append(results[name], cell{time.Since(start) / queries})
			for i, qv := range qvs {
				if !sameHits(st.SearchVector(qv, k, nil), want[i]) {
					return fmt.Errorf("retrieval bench: %s diverges from full sort at n=%d query %d", name, n, i)
				}
			}
		}
	}

	for _, name := range rows {
		fmt.Fprintf(o.Out, "%-22s", name)
		for i, c := range results[name] {
			suffix := ""
			if name != rows[0] {
				ref := results[rows[0]][i].perQuery
				if c.perQuery > 0 {
					suffix = fmt.Sprintf(" (%4.1fx)", float64(ref)/float64(c.perQuery))
				}
			}
			fmt.Fprintf(o.Out, "  %14s", fmt.Sprintf("%s%s", fmtMicros(c.perQuery), suffix))
		}
		fmt.Fprintln(o.Out)
	}
	return nil
}

func fmtMicros(d time.Duration) string {
	return fmt.Sprintf("%.0fµs", float64(d.Nanoseconds())/1e3)
}

// retrievalVocab mixes high-overlap attribute tokens with entity-like tokens
// so scores tie often and the postings filter sees realistic selectivity.
var retrievalVocab = []string{
	"status", "delayed", "on", "time", "boarding", "gate", "departure",
	"director", "year", "genre", "price", "volume", "airport", "typhoon",
	"harbor", "garden", "monument", "voyage", "crimson", "silent",
}

func retrievalText(rng *rand.Rand) string {
	n := 3 + rng.Intn(8)
	words := make([]string, n)
	for i := range words {
		if rng.Intn(4) == 0 {
			words[i] = fmt.Sprintf("e%04d", rng.Intn(2000)) // entity-ish token
		} else {
			words[i] = retrievalVocab[rng.Intn(len(retrievalVocab))]
		}
	}
	return strings.Join(words, " ")
}

func retrievalCorpus(rng *rand.Rand, n int) ([]retrieval.Chunk, []retrieval.Vector) {
	chunks := make([]retrieval.Chunk, n)
	vecs := make([]retrieval.Vector, n)
	for i := range chunks {
		chunks[i] = retrieval.Chunk{
			ID:     fmt.Sprintf("bench/d%06d#c0", i),
			DocID:  fmt.Sprintf("bench/d%06d", i),
			Source: fmt.Sprintf("src-%d", i%5),
			Text:   retrievalText(rng),
		}
		vecs[i] = retrieval.Embed(chunks[i].Text, retrieval.DefaultDim)
	}
	return chunks, vecs
}

// fullSortScan reproduces the seed Search implementation: materialise and
// stably full-sort every hit.
func fullSortScan(chunks []retrieval.Chunk, vecs []retrieval.Vector, qv retrieval.Vector, k int) []retrieval.Hit {
	hits := make([]retrieval.Hit, len(chunks))
	for i := range chunks {
		hits[i] = retrieval.Hit{Chunk: chunks[i], Score: retrieval.Cosine(qv, vecs[i])}
	}
	sort.SliceStable(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Chunk.ID < hits[j].Chunk.ID
	})
	if k > len(hits) {
		k = len(hits)
	}
	return hits[:k]
}

func sameHits(a, b []retrieval.Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Chunk.ID != b[i].Chunk.ID || a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}
