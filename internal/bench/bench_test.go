package bench

import (
	"strings"
	"testing"

	"multirag/internal/datasets"
)

// tinyOpts runs every experiment end to end at a tiny scale — a smoke test
// that the full harness stays wired together.
func tinyOpts(sb *strings.Builder) Options {
	return Options{Seed: 2, Scale: 0.06, Out: sb}
}

func TestTableISmoke(t *testing.T) {
	var sb strings.Builder
	if err := TableI(tinyOpts(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"movies", "books", "flights", "stocks", "JSON(J)", "KG(K)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I output missing %q:\n%s", want, out)
		}
	}
}

func TestTableIISmoke(t *testing.T) {
	var sb strings.Builder
	if err := TableII(tinyOpts(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"TF F1/%", "FusionQuery", "MCC F1/%", "movies", "stocks"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table II output missing %q", want)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 12 {
		t.Fatalf("Table II too short: %d lines", lines)
	}
}

func TestTableIIISmoke(t *testing.T) {
	var sb strings.Builder
	if err := TableIII(tinyOpts(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"w/o MKA", "w/o Graph Level", "w/o Node Level", "w/o MCC", "PT/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table III output missing %q", want)
		}
	}
}

func TestTableIVSmoke(t *testing.T) {
	var sb strings.Builder
	if err := TableIV(tinyOpts(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Standard RAG", "MetaRAG", "MultiRAG", "HotpotQA P", "R@5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table IV output missing %q", want)
		}
	}
}

func TestTableVSmoke(t *testing.T) {
	var sb strings.Builder
	if err := TableV(tinyOpts(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"CA981", "trusted", "Delayed", "filtered"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table V output missing %q:\n%s", want, out)
		}
	}
}

func TestFiguresSmoke(t *testing.T) {
	for name, run := range map[string]func(Options) error{
		"fig5": Figure5, "fig6": Figure6, "fig7": Figure7,
	} {
		var sb strings.Builder
		if err := run(tinyOpts(&sb)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(sb.String(), "Figure") {
			t.Fatalf("%s produced no figure output", name)
		}
	}
}

func TestIngestBenchSmoke(t *testing.T) {
	var sb strings.Builder
	rep, err := IngestBenchReport(tinyOpts(&sb))
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"serialized", "pipelined", "producer(s)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ingest bench output missing %q:\n%s", want, out)
		}
	}
	// 2 sizes x 3 producer counts; every cell equivalence-checked inside.
	if len(rep.Cells) != 6 {
		t.Fatalf("expected 6 cells, got %d", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.SerialBPS <= 0 || c.PipelinedBPS <= 0 {
			t.Fatalf("degenerate cell: %+v", c)
		}
	}
}

func TestDatasetCacheReuses(t *testing.T) {
	c := datasetCache{}
	o := Options{Seed: 2, Scale: 0.06}
	a, err := c.get("movies", o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.get("movies", o)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache must return the same dataset instance")
	}
	if _, err := c.get("nonexistent", o); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestFmtSeconds(t *testing.T) {
	cases := map[float64]string{
		0.333:  "0.33",
		9.99:   "9.99",
		42.123: "42.1",
		1234.6: "1235",
	}
	for in, want := range cases {
		if got := fmtSeconds(in); got != want {
			t.Errorf("fmtSeconds(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestScaleSpecFloors(t *testing.T) {
	o := Options{Scale: 0.0001}
	spec := o.scaleSpec(datasets.Movies(1))
	if spec.Entities < 8 || spec.Queries < 5 {
		t.Fatalf("scaling must floor workload sizes: %+v", spec)
	}
	qa := o.scaleQA(datasets.Hotpot(1))
	if qa.Questions < 5 {
		t.Fatalf("QA scaling must floor question count: %+v", qa)
	}
}

func TestQueriesForFiltersByFormat(t *testing.T) {
	spec := datasets.Movies(3)
	spec.Entities = 30
	spec.Queries = 20
	d := datasets.MustGenerate(spec)
	all, err := d.QueriesFor("J/K/C", 20)
	if err != nil {
		t.Fatalf("QueriesFor(J/K/C): %v", err)
	}
	jk, err := d.QueriesFor("J/K", 20)
	if err != nil {
		t.Fatalf("QueriesFor(J/K): %v", err)
	}
	if len(jk) == 0 || len(all) == 0 {
		t.Fatal("workloads must not be empty")
	}
	// Every J/K query must have a correct claim among J/K sources.
	formatOf := map[string]string{}
	for _, s := range spec.Sources {
		formatOf[s.Name] = s.Format
	}
	for _, q := range jk {
		ok := false
		for _, c := range d.Claims {
			if c.Correct &&
				datasets.GoldKey(c.Entity, c.Attribute) == datasets.GoldKey(q.Entity, q.Attribute) &&
				(formatOf[c.Source] == "json" || formatOf[c.Source] == "kg") {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("query %s not answerable from J/K sources", q.ID)
		}
	}
}
