package bench

import (
	"fmt"

	"multirag/internal/baselines"
	"multirag/internal/confidence"
	"multirag/internal/core"
	"multirag/internal/datasets"
	"multirag/internal/eval"
)

// TableI prints the dataset statistics table (sources, entities, relations,
// queries per format family), the analogue of the paper's Table I.
func TableI(o Options) error {
	t := eval.Table{
		Title:   "Table I: Statistics of the datasets preprocessed",
		Headers: []string{"Dataset", "Format", "Sources", "Entities", "Relations", "Queries"},
	}
	cache := datasetCache{}
	for _, name := range []string{"movies", "books", "flights", "stocks"} {
		d, err := cache.get(name, o)
		if err != nil {
			return err
		}
		byFormat := d.SourcesByFormat()
		for _, format := range []string{"json", "kg", "csv", "xml", "text"} {
			n := byFormat[format]
			if n == 0 {
				continue
			}
			ents := map[string]bool{}
			rels := 0
			formatOf := map[string]string{}
			for _, s := range d.Spec.Sources {
				formatOf[s.Name] = s.Format
			}
			for _, c := range d.Claims {
				if formatOf[c.Source] == format {
					ents[datasets.GoldKey(c.Entity, "")] = true
					rels++
				}
			}
			t.AddRow(name, formatLetter(format), fmt.Sprint(n),
				fmt.Sprint(len(ents)), fmt.Sprint(rels), fmt.Sprint(len(d.Queries)))
		}
	}
	t.Fprint(o.Out)
	return nil
}

func formatLetter(format string) string {
	switch format {
	case "json":
		return "JSON(J)"
	case "kg":
		return "KG(K)"
	case "csv":
		return "CSV(C)"
	case "xml":
		return "XML(X)"
	case "text":
		return "TEXT(T)"
	}
	return format
}

// tableIIMethods lists the Table II comparison columns in paper order.
func tableIIMethods() []baselines.Method {
	return []baselines.Method{
		baselines.NewTruthFinder(),
		baselines.NewLTM(),
		baselines.NewIRCoT(),
		baselines.NewMDQA(),
		baselines.NewChatKBQA(),
		baselines.NewFusionQuery(),
	}
}

// TableII runs the multi-source knowledge fusion comparison: F1 and time for
// every baseline plus the MCC-backed MultiRAG across the ten source combos.
func TableII(o Options) error {
	methods := tableIIMethods()
	headers := []string{"Dataset", "Sources"}
	for _, m := range methods {
		headers = append(headers, m.Name()+" F1/%", m.Name()+" T/s")
	}
	headers = append(headers, "MCC F1/%", "MCC T/s")
	t := eval.Table{
		Title:   "Table II: Comparison with baseline and SOTA methods for multi-source knowledge fusion",
		Headers: headers,
	}
	cache := datasetCache{}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	for _, c := range tableCombos {
		d, err := cache.get(c.dataset, o)
		if err != nil {
			return err
		}
		files, err := d.FilterFormats(c.letters)
		if err != nil {
			return fmt.Errorf("table2 %s: %w", c.dataset, err)
		}
		queries, err := d.QueriesFor(c.letters, len(d.Queries))
		if err != nil {
			return fmt.Errorf("table2 %s: %w", c.dataset, err)
		}
		row := []string{c.dataset, c.letters}
		for _, m := range methods {
			f1, secs, err := fusionCell(m, files, queries, seed)
			if err != nil {
				return fmt.Errorf("table2 %s/%s/%s: %w", c.dataset, c.letters, m.Name(), err)
			}
			row = append(row, fmt.Sprintf("%.1f", f1), fmtSeconds(secs))
		}
		f1, qt, _, err := multiragCell(core.Config{}, files, queries, seed)
		if err != nil {
			return fmt.Errorf("table2 %s/%s/MCC: %w", c.dataset, c.letters, err)
		}
		row = append(row, fmt.Sprintf("%.1f", f1), fmtSeconds(qt))
		t.AddRow(row...)
	}
	t.Fprint(o.Out)
	return nil
}

// ablationConfigs returns the Table III columns: the full framework and its
// four ablations.
func ablationConfigs() []struct {
	Name string
	Cfg  core.Config
} {
	return []struct {
		Name string
		Cfg  core.Config
	}{
		{"MultiRAG", core.Config{}},
		{"w/o MKA", core.Config{DisableMKA: true}},
		{"w/o Graph Level", core.Config{Ablation: confidence.Options{DisableGraphLevel: true}}},
		{"w/o Node Level", core.Config{Ablation: confidence.Options{DisableNodeLevel: true}}},
		{"w/o MCC", core.Config{Ablation: confidence.Options{DisableGraphLevel: true, DisableNodeLevel: true}}},
	}
}

// TableIII runs the MKA / MCC ablation study: F1, query time and
// preprocessing time per configuration across the ten combos.
func TableIII(o Options) error {
	configs := ablationConfigs()
	headers := []string{"Dataset", "Sources"}
	for _, c := range configs {
		headers = append(headers, c.Name+" F1/%", c.Name+" QT/s", c.Name+" PT/s")
	}
	t := eval.Table{
		Title:   "Table III: Ablation of multi-source knowledge aggregation (MKA) and multi-level confidence computing (MCC)",
		Headers: headers,
	}
	cache := datasetCache{}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	for _, c := range tableCombos {
		d, err := cache.get(c.dataset, o)
		if err != nil {
			return err
		}
		files, err := d.FilterFormats(c.letters)
		if err != nil {
			return fmt.Errorf("table3 %s: %w", c.dataset, err)
		}
		queries, err := d.QueriesFor(c.letters, len(d.Queries))
		if err != nil {
			return fmt.Errorf("table3 %s: %w", c.dataset, err)
		}
		row := []string{c.dataset, c.letters}
		for _, ac := range configs {
			f1, qt, pt, err := multiragCell(ac.Cfg, files, queries, seed)
			if err != nil {
				return fmt.Errorf("table3 %s/%s/%s: %w", c.dataset, c.letters, ac.Name, err)
			}
			row = append(row, fmt.Sprintf("%.1f", f1), fmtSeconds(qt), fmtSeconds(pt))
		}
		t.AddRow(row...)
	}
	t.Fprint(o.Out)
	return nil
}
