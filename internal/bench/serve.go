package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"multirag"
	"multirag/internal/adapter"
	"multirag/internal/serve"
)

// ServeReport carries the structured serving-layer benchmark results for
// BENCH_serve.json (stdout gets the human-readable table).
type ServeReport struct {
	Cells []ServeCell `json:"cells"`
}

// ServeCell is one (policy, corpus size) measurement of the HTTP front door
// under concurrent two-class load: aggregate completed throughput, Jain
// fairness over the per-class completions, and the server-side per-class
// outcome counts and tail latencies (computed by the shared nearest-rank
// percentile helper).
type ServeCell struct {
	Policy        string           `json:"policy"`
	N             int              `json:"n"` // corpus entities
	Requests      int              `json:"requests"`
	Clients       int              `json:"clients"`
	ThroughputRPS float64          `json:"throughput_rps"`
	JainFairness  float64          `json:"jain_fairness"`
	Classes       []ServeClassCell `json:"classes"`
}

// ServeClassCell is one SLO class's slice of a ServeCell.
type ServeClassCell struct {
	Class             string  `json:"class"`
	Completed         int64   `json:"completed"`
	RejectedAdmission int64   `json:"rejected_admission"`
	RejectedQueue     int64   `json:"rejected_queue"`
	TimedOut          int64   `json:"timed_out"`
	P50Micros         float64 `json:"p50_us"`
	P95Micros         float64 `json:"p95_us"`
	P99Micros         float64 `json:"p99_us"`
}

// serveReport collects cells for the current ServeBench run when the caller
// asked for them (benchtables -serve -json).
var serveReport *ServeReport

// ServeBenchReport runs ServeBench and returns the structured cells.
func ServeBenchReport(o Options) (*ServeReport, error) {
	rep := &ServeReport{}
	serveReport = rep
	defer func() { serveReport = nil }()
	if err := ServeBench(o); err != nil {
		return nil, err
	}
	return rep, nil
}

// ServeBench is the serving-layer benchmark behind `make bench-serve`. It
// stands up the HTTP front door over a mid-size corpus and drives the same
// two-class closed-loop workload — latency-sensitive "interactive" lookups
// and comparisons against throughput-oriented "batch" multi-hop and fallback
// queries — through each batch-formation policy. Every request travels the
// full serving path (HTTP, admission, bounded queues, batch formation,
// QueryBatch), so the numbers measure what a deployment would see. The batch
// class carries a finite admission rate, so the rejected-load accounting is
// exercised whenever the offered rate exceeds it; the interactive class is
// admission-unlimited and measures scheduling, not shedding.
func ServeBench(o Options) error {
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	scale := o.Scale
	if scale <= 0 {
		scale = 1
	}
	n := int(3000 * scale)
	if n < 96 {
		n = 96
	}
	requests := int(1600 * scale)
	if requests < 160 {
		requests = 160
	}
	const clientsPerClass = 8

	// Half the workload per class, interleaved intents inside each.
	perClass := requests / 2
	interactive := append(lookupMix(n, perClass/2), comparisonMix(n, perClass-perClass/2)...)
	batchQs := append(multiHopMix(n, perClass/2), fallbackMix(n, perClass-perClass/2)...)

	fmt.Fprintf(o.Out, "Serving-layer benchmark (%d requests over HTTP, %d clients/class, n=%d entities)\n",
		len(interactive)+len(batchQs), clientsPerClass, n)
	fmt.Fprintf(o.Out, "interactive = lookup+comparison, admission-unlimited; batch = multi-hop+fallback, rate-limited (400 req/s, burst 32)\n")

	files := queryCorpusFiles(n)
	for _, policy := range []string{serve.PolicyFCFS, serve.PolicySJF, serve.PolicyPriority} {
		cell, err := serveBenchPolicy(seed, files, policy, n, interactive, batchQs, clientsPerClass)
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "\n--- policy %s ---\n", policy)
		fmt.Fprintf(o.Out, "throughput %8.0f req/s   Jain fairness %.3f\n", cell.ThroughputRPS, cell.JainFairness)
		for _, c := range cell.Classes {
			fmt.Fprintf(o.Out, "%-12s %6d ok  %4d rejected  %4d timeout   p50 %8.0fµs  p95 %8.0fµs  p99 %8.0fµs\n",
				c.Class, c.Completed, c.RejectedAdmission+c.RejectedQueue, c.TimedOut,
				c.P50Micros, c.P95Micros, c.P99Micros)
		}
		if serveReport != nil {
			serveReport.Cells = append(serveReport.Cells, cell)
		}
	}
	return nil
}

// serveBenchPolicy measures one policy: fresh system, fresh front door,
// closed-loop drain of both class workloads from concurrent HTTP clients.
func serveBenchPolicy(seed uint64, files []adapter.RawFile, policy string, n int, interactive, batchQs []string, clients int) (ServeCell, error) {
	sys := multirag.Open(multirag.Config{Seed: seed})
	if err := sys.IngestFiles(rawToFiles(files)...); err != nil {
		return ServeCell{}, fmt.Errorf("serve bench ingest: %w", err)
	}
	srv, err := serve.New(serve.Config{
		System: sys,
		Policy: policy,
		Classes: []serve.Class{
			{Name: "interactive", Priority: 2, QueueCap: 1024},
			{Name: "batch", Priority: 1, Rate: 400, Burst: 32, QueueCap: 1024},
		},
		QueueTimeout: 30 * time.Second,
	})
	if err != nil {
		return ServeCell{}, err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        4 * clients,
		MaxIdleConnsPerHost: 4 * clients,
	}}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, 2*clients)
	for _, cl := range []struct {
		class string
		qs    []string
	}{{"interactive", interactive}, {"batch", batchQs}} {
		per := (len(cl.qs) + clients - 1) / clients
		for c := 0; c < clients; c++ {
			lo := c * per
			hi := min(lo+per, len(cl.qs))
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(class string, qs []string) {
				defer wg.Done()
				for _, q := range qs {
					status, err := servePost(client, ts.URL+"/v1/query", serve.QueryRequest{Query: q, Class: class})
					if err != nil {
						errs <- fmt.Errorf("serve bench %s: %w", class, err)
						return
					}
					switch status {
					case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
					default:
						errs <- fmt.Errorf("serve bench %s: HTTP %d", class, status)
						return
					}
				}
			}(cl.class, cl.qs[lo:hi])
		}
	}
	wg.Wait()
	total := time.Since(start)
	close(errs)
	for err := range errs {
		if err != nil {
			return ServeCell{}, err
		}
	}

	snap := srv.Metrics()
	cell := ServeCell{
		Policy:       policy,
		N:            n,
		Requests:     len(interactive) + len(batchQs),
		Clients:      2 * clients,
		JainFairness: snap.JainFairness,
	}
	var completed int64
	for _, c := range snap.Classes {
		if c.Completed+c.RejectedAdmission+c.RejectedQueue+c.TimedOut+c.Failed == 0 {
			continue
		}
		completed += c.Completed
		cell.Classes = append(cell.Classes, ServeClassCell{
			Class:             c.Name,
			Completed:         c.Completed,
			RejectedAdmission: c.RejectedAdmission,
			RejectedQueue:     c.RejectedQueue,
			TimedOut:          c.TimedOut,
			P50Micros:         c.P50Micros,
			P95Micros:         c.P95Micros,
			P99Micros:         c.P99Micros,
		})
	}
	cell.ThroughputRPS = float64(completed) / total.Seconds()
	return cell, nil
}

// rawToFiles maps the bench corpus shape onto the public ingest shape the
// front door's System consumes.
func rawToFiles(raw []adapter.RawFile) []multirag.File {
	out := make([]multirag.File, len(raw))
	for i, f := range raw {
		out[i] = multirag.File{
			Domain: f.Domain, Source: f.Source, Name: f.Name,
			Format: f.Format, Meta: f.Meta, Content: f.Content,
		}
	}
	return out
}

// servePost POSTs one JSON payload and returns the status, draining the body
// for connection reuse.
func servePost(client *http.Client, url string, body any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return resp.StatusCode, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
