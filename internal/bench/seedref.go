package bench

import (
	"fmt"
	"sort"

	"multirag/internal/kg"
	"multirag/internal/linegraph"
)

// This file reproduces the seed graph substrate for the graph-core
// microbenchmarks, the same way retrieval.go's fullSortScan reproduces the
// seed Search: string-keyed maps everywhere, a deep copy per Clone, nested
// seen maps in the line-graph transform, and a full isolated re-sort per
// delta batch. GraphBench races these against the interned columnar core and
// checks both sides agree.

// seedGraph is the seed kg.Graph: maps of strings with a deep Clone.
type seedGraph struct {
	entities map[string]*kg.Entity
	triples  map[string]*kg.Triple

	bySubject     map[string][]string
	byObject      map[string][]string
	byKey         map[string][]string
	byPredicate   map[string][]string
	tripleCounter int
}

func newSeedGraph() *seedGraph {
	return &seedGraph{
		entities:    map[string]*kg.Entity{},
		triples:     map[string]*kg.Triple{},
		bySubject:   map[string][]string{},
		byObject:    map[string][]string{},
		byKey:       map[string][]string{},
		byPredicate: map[string][]string{},
	}
}

func (g *seedGraph) addEntity(name, typ, domain string) string {
	id := kg.CanonicalID(name)
	if id == "" {
		return ""
	}
	if e, ok := g.entities[id]; ok {
		if e.Type == "" {
			e.Type = typ
		}
		if e.Domain == "" {
			e.Domain = domain
		}
		return id
	}
	g.entities[id] = &kg.Entity{ID: id, Name: name, Type: typ, Domain: domain}
	return id
}

func (g *seedGraph) addTriple(t kg.Triple) (string, error) {
	if _, ok := g.entities[t.Subject]; !ok {
		return "", fmt.Errorf("seed graph: unknown subject %q", t.Subject)
	}
	if t.Weight == 0 {
		t.Weight = 1
	}
	g.tripleCounter++
	t.ID = fmt.Sprintf("t%06d", g.tripleCounter)
	if t.ObjectEntity == "" {
		if oid := kg.CanonicalID(t.Object); oid != "" {
			if _, ok := g.entities[oid]; ok {
				t.ObjectEntity = oid
			}
		}
	}
	tc := t
	g.triples[tc.ID] = &tc
	g.bySubject[tc.Subject] = append(g.bySubject[tc.Subject], tc.ID)
	g.byKey[tc.Key()] = append(g.byKey[tc.Key()], tc.ID)
	g.byPredicate[tc.Predicate] = append(g.byPredicate[tc.Predicate], tc.ID)
	if tc.ObjectEntity != "" {
		g.byObject[tc.ObjectEntity] = append(g.byObject[tc.ObjectEntity], tc.ID)
	}
	return tc.ID, nil
}

func (g *seedGraph) clone() *seedGraph {
	ng := newSeedGraph()
	ng.tripleCounter = g.tripleCounter
	for id, e := range g.entities {
		ce := *e
		ng.entities[id] = &ce
	}
	for id, t := range g.triples {
		ct := *t
		ng.triples[id] = &ct
	}
	cloneIdx := func(m map[string][]string) map[string][]string {
		out := make(map[string][]string, len(m))
		for k, ids := range m {
			cp := make([]string, len(ids))
			copy(cp, ids)
			out[k] = cp
		}
		return out
	}
	ng.bySubject = cloneIdx(g.bySubject)
	ng.byObject = cloneIdx(g.byObject)
	ng.byKey = cloneIdx(g.byKey)
	ng.byPredicate = cloneIdx(g.byPredicate)
	return ng
}

func (g *seedGraph) numEntities() int { return len(g.entities) }
func (g *seedGraph) numTriples() int  { return len(g.triples) }

func (g *seedGraph) maxDegree() int {
	max := 0
	for id := range g.entities {
		if d := len(g.bySubject[id]) + len(g.byObject[id]); d > max {
			max = d
		}
	}
	return max
}

// seedTransform is the seed line-graph transform (nested seen maps) run over
// the public kg API, so the timing difference against linegraph.Transform is
// purely algorithmic.
func seedTransform(g *kg.Graph) *linegraph.LineGraph {
	lg := &linegraph.LineGraph{Adj: map[string][]string{}}
	lg.Nodes = g.TripleIDs()
	incidence := map[string][]string{}
	for _, id := range lg.Nodes {
		t, _ := g.Triple(id)
		incidence[t.Subject] = append(incidence[t.Subject], id)
		if t.ObjectEntity != "" && t.ObjectEntity != t.Subject {
			incidence[t.ObjectEntity] = append(incidence[t.ObjectEntity], id)
		}
	}
	seen := map[string]map[string]bool{}
	for _, ids := range incidence {
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a, b := ids[i], ids[j]
				if seen[a] == nil {
					seen[a] = map[string]bool{}
				}
				if seen[a][b] {
					continue
				}
				seen[a][b] = true
				if seen[b] == nil {
					seen[b] = map[string]bool{}
				}
				seen[b][a] = true
				lg.Adj[a] = append(lg.Adj[a], b)
				lg.Adj[b] = append(lg.Adj[b], a)
			}
		}
	}
	for _, neigh := range lg.Adj {
		sort.Strings(neigh)
	}
	return lg
}

// seedSG mirrors the seed SG': nodes, an eagerly sorted isolated list and a
// key index, reassembled per delta batch.
type seedSG struct {
	nodes         map[string]*seedNode
	isolated      []string
	byKeyIsolated map[string]string
}

// seedNode carries the same content as linegraph.HomologousNode, assembled
// with the same sorting work.
type seedNode struct {
	key       string
	subjectID string
	name      string
	num       int
	members   []string
	weights   map[string]float64
	sources   []string
}

func newSeedNode(key string, members []*kg.Triple) *seedNode {
	n := &seedNode{
		key:       key,
		subjectID: members[0].Subject,
		name:      members[0].Predicate,
		num:       len(members),
		weights:   map[string]float64{},
	}
	srcSet := map[string]bool{}
	for _, t := range members {
		n.members = append(n.members, t.ID)
		n.weights[t.ID] = t.Weight
		srcSet[t.Source] = true
	}
	sort.Strings(n.members)
	for s := range srcSet {
		n.sources = append(n.sources, s)
	}
	sort.Strings(n.sources)
	return n
}

// seedBuild is the seed from-scratch homologous matching (fresh group-by
// hash map over all live triples).
func seedBuild(g *kg.Graph) *seedSG {
	sg := &seedSG{nodes: map[string]*seedNode{}, byKeyIsolated: map[string]string{}}
	groups := map[string][]*kg.Triple{}
	for _, id := range g.TripleIDs() {
		t, _ := g.Triple(id)
		groups[t.Key()] = append(groups[t.Key()], t)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		members := groups[key]
		if len(members) < 2 {
			sg.isolated = append(sg.isolated, members[0].ID)
			sg.byKeyIsolated[key] = members[0].ID
			continue
		}
		sg.nodes[key] = newSeedNode(key, members)
	}
	sort.Strings(sg.isolated)
	return sg
}

// seedBuildDelta is the seed incremental maintenance: share untouched nodes,
// regroup affected keys — and rebuild + re-sort the entire isolated list
// every batch, the cost GraphBench isolates.
func seedBuildDelta(prev *seedSG, g *kg.Graph, newTripleIDs []string) *seedSG {
	if prev == nil {
		return seedBuild(g)
	}
	sg := &seedSG{
		nodes:         make(map[string]*seedNode, len(prev.nodes)),
		byKeyIsolated: make(map[string]string, len(prev.byKeyIsolated)),
	}
	for k, n := range prev.nodes {
		sg.nodes[k] = n
	}
	for k, id := range prev.byKeyIsolated {
		sg.byKeyIsolated[k] = id
	}
	affected := map[string]bool{}
	for _, id := range newTripleIDs {
		if t, ok := g.Triple(id); ok {
			affected[t.Key()] = true
		}
	}
	for key := range affected {
		members := g.TriplesByRawKey(key)
		delete(sg.nodes, key)
		delete(sg.byKeyIsolated, key)
		switch {
		case len(members) == 0:
		case len(members) == 1:
			sg.byKeyIsolated[key] = members[0].ID
		default:
			sg.nodes[key] = newSeedNode(key, members)
		}
	}
	sg.isolated = make([]string, 0, len(sg.byKeyIsolated))
	for _, id := range sg.byKeyIsolated {
		sg.isolated = append(sg.isolated, id)
	}
	sort.Strings(sg.isolated)
	return sg
}
