//go:build linux

package wal

import (
	"os"
	"syscall"
)

// datasync flushes f's written data plus the metadata required to read it
// back (the file size, when an append grew the file) without forcing the
// inode timestamp writeback a full fsync also pays. That is exactly the
// durability point a log append needs, and it is measurably cheaper on ext4.
func datasync(f *os.File) error {
	for {
		err := syscall.Fdatasync(int(f.Fd()))
		if err != syscall.EINTR {
			return err
		}
	}
}
