package wal

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// File is the mutable-file surface the log and checkpoint writers need:
// sequential writes, durability, tail truncation (torn-record repair).
type File interface {
	Write(p []byte) (int, error)
	// Sync flushes written data to stable storage. A record is durable only
	// after its Append's Sync returned nil.
	Sync() error
	// Truncate discards everything past size — the torn-tail repair on the
	// active segment at recovery.
	Truncate(size int64) error
	Close() error
}

// FS is the filesystem seam every durable byte goes through. Production uses
// OSFS; the recovery-equivalence suite substitutes MemFS, whose crash
// semantics (unsynced data lost, unsynced directory entries lost, torn tails,
// injected faults) drive the crash matrix.
type FS interface {
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Create creates or truncates name for writing.
	Create(name string) (File, error)
	// ReadFile returns the full content of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname. Durable only after a
	// SyncDir on the parent directory.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// ReadDir lists the file names (not paths) inside dir, sorted.
	ReadDir(dir string) ([]string, error)
	// MkdirAll ensures dir exists.
	MkdirAll(dir string) error
	// SyncDir fsyncs the directory itself, making entry creations, renames
	// and removals durable.
	SyncDir(dir string) error
}

// OSFS is the production FS over the real filesystem.
type OSFS struct{}

// appendFile is an *os.File whose Sync is fdatasync where the platform has
// it: log appends only need the written frames and the grown file size
// durable, not the inode timestamps a full fsync also flushes.
type appendFile struct{ *os.File }

func (f appendFile) Sync() error { return datasync(f.File) }

func (OSFS) OpenAppend(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return appendFile{f}, nil
}

func (OSFS) Create(name string) (File, error) { return os.Create(name) }

func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (OSFS) Remove(name string) error { return os.Remove(name) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// IsNotExist reports whether err means a missing file on either FS.
func IsNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }

// join builds FS paths. Both OSFS and MemFS use the host separator, so the
// log and checkpoint code share one path builder.
func join(dir, name string) string { return filepath.Join(dir, name) }
