package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Checkpoint file format: an 8-byte magic, the CRC32C and length of the
// body, then the body (the serialized snapshot, encoded by internal/core).
// A checkpoint is written to checkpoint-<lsn>.ckpt.tmp, fsync'd, renamed
// into place and made durable with a directory fsync — so a crash at any
// point leaves either the complete new checkpoint or the old state, never a
// half-written file under the live name. Corrupt or truncated checkpoints
// are detected by magic/length/CRC and skipped in favour of the next-newest
// valid one.

var ckptMagic = [8]byte{'M', 'R', 'A', 'G', 'C', 'K', 'P', '1'}

const ckptHeader = 8 + 4 + 8 // magic + crc + length

// WriteCheckpoint durably writes a checkpoint covering every record below
// lsn.
func WriteCheckpoint(fsys FS, dir string, lsn uint64, body []byte) error {
	name := fmt.Sprintf("%s%016x%s", ckptPrefix, lsn, ckptSuffix)
	tmp := join(dir, name+tmpSuffix)
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	hdr := make([]byte, 0, ckptHeader)
	hdr = append(hdr, ckptMagic[:]...)
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(body, castagnoli))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(body)))
	err = writeAll(f, hdr, body)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: checkpoint %s: %w", name, err)
	}
	if err := fsys.Rename(tmp, join(dir, name)); err != nil {
		return fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("wal: checkpoint dir sync: %w", err)
	}
	return nil
}

func writeAll(f File, bufs ...[]byte) error {
	for _, b := range bufs {
		if _, err := f.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// LoadCheckpoint returns the body and LSN of the newest valid checkpoint in
// dir, or (nil, 0, nil) when none exists. Invalid checkpoints (bad magic,
// short file, CRC mismatch — a crash mid-write that somehow reached the live
// name, or media corruption) are skipped in favour of older ones, never
// fatal: the log tail still covers the gap as long as cleanup has not run,
// and cleanup runs only after a checkpoint is durably complete.
func LoadCheckpoint(fsys FS, dir string) (body []byte, lsn uint64, err error) {
	names, lsns, err := listByStart(fsys, dir, ckptPrefix, ckptSuffix)
	if err != nil {
		return nil, 0, err
	}
	for i := len(names) - 1; i >= 0; i-- {
		b, err := fsys.ReadFile(join(dir, names[i]))
		if err != nil {
			continue
		}
		if body, ok := parseCheckpoint(b); ok {
			return body, lsns[i], nil
		}
	}
	return nil, 0, nil
}

func parseCheckpoint(b []byte) ([]byte, bool) {
	if len(b) < ckptHeader || string(b[:8]) != string(ckptMagic[:]) {
		return nil, false
	}
	crc := binary.LittleEndian.Uint32(b[8:])
	n := binary.LittleEndian.Uint64(b[12:])
	if n != uint64(len(b)-ckptHeader) {
		return nil, false
	}
	body := b[ckptHeader:]
	if crc32.Checksum(body, castagnoli) != crc {
		return nil, false
	}
	return body, true
}
