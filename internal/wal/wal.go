// Package wal is the durability substrate of a MultiRAG deployment: a
// length-prefixed, CRC32C-checksummed, fsync-on-group-commit record log plus
// an atomically-renamed checkpoint file format, both written through a small
// filesystem seam (FS) so the crash matrix in the recovery tests can inject
// torn writes, bit flips, fsync failures and crashes at every byte offset
// without touching a real disk.
//
// The log is segmented: records carry monotonically increasing log sequence
// numbers (LSNs, a plain record count since genesis) and live in segment
// files named wal-<first-LSN>.log. A checkpoint serializes one published
// snapshot as of LSN n into checkpoint-<n>.ckpt via the classic
// tmp + fsync + rename + dir-fsync discipline; the checkpointer rotates the
// log to a fresh segment at n first, so every segment below n is fully
// covered by the checkpoint and deletable. Recovery loads the newest
// CRC-valid checkpoint, replays every valid record after it in LSN order and
// truncates the log at the first invalid record (a torn tail from a crashed
// append, or a corrupt frame), which restores exactly the last
// durably-committed prefix of the commit history.
//
// The record payload format is owned by the callers (internal/core encodes
// one commit group per record; the snapshot serializers in internal/kg,
// internal/linegraph and internal/retrieval encode the checkpoint body) via
// the shared Encoder/Decoder in codec.go.
package wal
