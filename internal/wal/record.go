package wal

import (
	"encoding/binary"
	"hash/crc32"
)

// Record frame: [len uint32 LE][crc32c(payload) uint32 LE][payload]. The
// length bounds the payload, the CRC (Castagnoli polynomial) detects both
// torn tails and in-place corruption; a frame that fails either check stops
// the scan, and everything at or after it is discarded by recovery.

const (
	frameHeader = 8
	// maxRecordSize rejects absurd length prefixes before any allocation —
	// a torn or flipped length byte must not provoke a multi-GB make().
	maxRecordSize = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends one framed record to dst.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// parseFrames splits b into valid record payloads. It returns the payloads,
// the byte length of the valid prefix, and whether anything after that prefix
// was discarded (a torn tail or a corrupt frame). Payloads alias b.
func parseFrames(b []byte) (payloads [][]byte, cleanLen int, clean bool) {
	off := 0
	for {
		rest := b[off:]
		if len(rest) == 0 {
			return payloads, off, true
		}
		if len(rest) < frameHeader {
			return payloads, off, false
		}
		n := binary.LittleEndian.Uint32(rest)
		if n > maxRecordSize || int(n) > len(rest)-frameHeader {
			return payloads, off, false
		}
		payload := rest[frameHeader : frameHeader+int(n)]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:]) {
			return payloads, off, false
		}
		payloads = append(payloads, payload)
		off += frameHeader + int(n)
	}
}
