package wal

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoder builds a binary payload (WAL record or checkpoint body) from
// primitive fields. The format is plain little-endian with uvarint lengths —
// no reflection, no per-field allocation — and is decoded by Decoder below.
// The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded payload. The slice aliases the encoder's buffer;
// callers must finish with it before reusing the encoder.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the encoded size so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the encoded payload, keeping the buffer for reuse.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Int appends a non-negative int as a uvarint (counts, lengths, handles).
func (e *Encoder) Int(v int) { e.Uvarint(uint64(v)) }

// Int32 appends a signed int32 as a zigzag varint (entity handles may be -1).
func (e *Encoder) Int32(v int32) { e.buf = binary.AppendVarint(e.buf, int64(v)) }

// Bool appends a single 0/1 byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// F64 appends a float64 as its IEEE-754 bits, little-endian.
func (e *Encoder) F64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// String appends a uvarint length followed by the raw bytes.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// F32s appends a uvarint count followed by the raw little-endian bits of each
// element — the vector-arena wire form (stride stays implicit; the caller
// validates widths on decode).
func (e *Encoder) F32s(v []float32) {
	e.Uvarint(uint64(len(v)))
	for _, x := range v {
		e.buf = binary.LittleEndian.AppendUint32(e.buf, math.Float32bits(x))
	}
}

// Decoder reads back an Encoder payload. Errors latch: the first malformed
// field poisons the decoder, every later read returns the zero value, and the
// caller checks Err once at the end — the discipline that keeps the decode
// call sites linear. All lengths are validated against the remaining input
// before any allocation, so a corrupt (or fuzzed) payload can never provoke a
// huge make() or an out-of-bounds read.
type Decoder struct {
	b   []byte
	off int
	err error
}

// NewDecoder returns a decoder over b. The decoder aliases b; callers must
// not mutate it while decoding.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns how many undecoded bytes are left.
func (d *Decoder) Remaining() int { return len(d.b) - d.off }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wal: decode: "+format, args...)
	}
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Int reads a non-negative int written by Encoder.Int, rejecting values that
// overflow the platform int.
func (d *Decoder) Int() int {
	v := d.Uvarint()
	if v > math.MaxInt32 { // counts/handles: anything larger is corruption
		d.fail("count %d out of range", v)
		return 0
	}
	return int(v)
}

// Int32 reads a zigzag varint written by Encoder.Int32.
func (d *Decoder) Int32() int32 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 || v < math.MinInt32 || v > math.MaxInt32 {
		d.fail("bad int32 at offset %d", d.off)
		return 0
	}
	d.off += n
	return int32(v)
}

// Bool reads a 0/1 byte.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.b) {
		d.fail("truncated bool")
		return false
	}
	c := d.b[d.off]
	d.off++
	if c > 1 {
		d.fail("bad bool byte %d", c)
		return false
	}
	return c == 1
}

// F64 reads a little-endian float64.
func (d *Decoder) F64() float64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail("truncated float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.Remaining()) {
		d.fail("string length %d exceeds %d remaining bytes", n, d.Remaining())
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// F32s reads a count-prefixed float32 slice.
func (d *Decoder) F32s() []float32 {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n*4 > uint64(d.Remaining()) {
		d.fail("float32 count %d exceeds %d remaining bytes", n, d.Remaining())
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(d.b[d.off:]))
		d.off += 4
	}
	return out
}

// Finish reports decode success: no latched error and no trailing garbage.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("wal: decode: %d trailing bytes", len(d.b)-d.off)
	}
	return nil
}
