package wal

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Segment and checkpoint file naming. Segments are named by the LSN of their
// first record; checkpoints by the LSN they cover (every record below it is
// folded into the checkpoint body).
const (
	segPrefix  = "wal-"
	segSuffix  = ".log"
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
	tmpSuffix  = ".tmp"
)

func segName(lsn uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, lsn, segSuffix)
}

func parseName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// listByStart returns the names with the given prefix/suffix sorted by their
// embedded LSN, plus the parsed LSNs. A missing directory lists as empty.
func listByStart(fsys FS, dir, prefix, suffix string) (names []string, lsns []uint64, err error) {
	all, err := fsys.ReadDir(dir)
	if err != nil {
		if IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	type ent struct {
		name string
		lsn  uint64
	}
	var ents []ent
	for _, n := range all {
		if lsn, ok := parseName(n, prefix, suffix); ok {
			ents = append(ents, ent{n, lsn})
		}
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].lsn < ents[j].lsn })
	for _, e := range ents {
		names = append(names, e.name)
		lsns = append(lsns, e.lsn)
	}
	return names, lsns, nil
}

// ScanResult is what a recovery scan of the log directory found.
type ScanResult struct {
	// Records holds the valid payloads with LSNs [From, From+len(Records)).
	Records [][]byte
	// From is the LSN of the first returned record (the scan floor).
	From uint64
	// Truncated reports that invalid bytes (torn tail or corrupt frame) were
	// found and everything at or after them must be discarded.
	Truncated bool
	// truncSeg/truncLen locate the first invalid byte: segment name and the
	// clean byte length to truncate it to. dropSegs lists whole segments at
	// or after the corruption (unreachable records).
	truncSeg  string
	truncLen  int
	dropSegs  []string
	activeSeg string // last surviving segment ("" when none)
	activeLen int    // its clean byte length
}

// Scan reads every log record with LSN >= from out of dir, stopping at the
// first invalid frame. Segments entirely below from (already folded into the
// checkpoint the caller loaded) are skipped without even parsing, so
// corruption inside covered history can never poison the replayable tail.
func Scan(fsys FS, dir string, from uint64) (*ScanResult, error) {
	names, starts, err := listByStart(fsys, dir, segPrefix, segSuffix)
	if err != nil {
		return nil, err
	}
	sr := &ScanResult{From: from}
	if len(names) > 0 && from < starts[0] {
		return nil, fmt.Errorf("wal: log gap: checkpoint covers LSN %d but oldest segment starts at %d", from, starts[0])
	}
	lsn := from
	for i, name := range names {
		if i+1 < len(names) && starts[i+1] <= from {
			continue // fully covered by the checkpoint
		}
		if sr.Truncated {
			// Records after a corrupt frame are unreachable: later segments
			// are dropped wholesale.
			sr.dropSegs = append(sr.dropSegs, name)
			continue
		}
		b, err := fsys.ReadFile(join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("wal: read segment %s: %w", name, err)
		}
		payloads, cleanLen, clean := parseFrames(b)
		lsn = starts[i]
		for _, p := range payloads {
			if lsn >= from {
				sr.Records = append(sr.Records, p)
			}
			lsn++
		}
		sr.activeSeg, sr.activeLen = name, cleanLen
		if !clean {
			sr.Truncated = true
			sr.truncSeg, sr.truncLen = name, cleanLen
		}
	}
	if lsn < from {
		// Every segment ended below the checkpoint (the checkpoint is newer
		// than the whole surviving log): nothing to replay, and the opener
		// must start a fresh segment at the checkpoint LSN rather than
		// appending mid-history.
		sr.activeSeg, sr.activeLen = "", 0
	}
	return sr, nil
}

// NextLSN returns the LSN one past the last valid record found.
func (sr *ScanResult) NextLSN() uint64 { return sr.From + uint64(len(sr.Records)) }

// Log is the append side of the segmented record log. Not safe for
// concurrent use; the committer serializes appends under its own lock.
type Log struct {
	fs     FS
	dir    string
	f      File
	active string // active segment name
	next   uint64 // next LSN to assign
	size   int    // bytes in the active segment
	frame  []byte // reusable frame buffer
	err    error  // latched append failure; the log refuses further work
}

// OpenLog repairs the log per sr (truncating the torn segment, dropping
// unreachable ones) and opens it for appending after sr's last valid record.
// With no surviving segment it creates one starting at sr.NextLSN().
func OpenLog(fsys FS, dir string, sr *ScanResult) (*Log, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, err
	}
	l := &Log{fs: fsys, dir: dir, next: sr.NextLSN()}
	if sr.Truncated {
		for _, name := range sr.dropSegs {
			if err := fsys.Remove(join(dir, name)); err != nil {
				return nil, fmt.Errorf("wal: drop segment %s: %w", name, err)
			}
		}
	}
	if sr.activeSeg == "" {
		return l, l.rotate()
	}
	f, err := fsys.OpenAppend(join(dir, sr.activeSeg))
	if err != nil {
		return nil, err
	}
	if sr.Truncated && sr.activeSeg == sr.truncSeg {
		if err := f.Truncate(int64(sr.truncLen)); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", sr.activeSeg, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	if sr.Truncated {
		if err := fsys.SyncDir(dir); err != nil {
			f.Close()
			return nil, err
		}
	}
	l.f, l.active, l.size = f, sr.activeSeg, sr.activeLen
	return l, nil
}

// Append durably writes one record and returns its LSN: the frame is written
// and fsync'd before Append returns nil. On error the record must be treated
// as not written — and the log latches failed: after a failed write or fsync
// the segment's on-disk state is unknowable (the kernel may have dropped the
// dirty pages and cleared the error, or a complete frame may have landed
// without being acknowledged), so appending past it could duplicate or
// misnumber records. Every later Append and Rotate returns the latched error;
// only a restart's Scan/OpenLog repair makes the directory appendable again.
func (l *Log) Append(payload []byte) (uint64, error) {
	if l.err != nil {
		return 0, l.err
	}
	l.frame = appendFrame(l.frame[:0], payload)
	if _, err := l.f.Write(l.frame); err != nil {
		l.err = fmt.Errorf("wal: append: %w", err)
		return 0, l.err
	}
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("wal: fsync: %w", err)
		return 0, l.err
	}
	lsn := l.next
	l.next++
	l.size += len(l.frame)
	return lsn, nil
}

// NextLSN returns the LSN the next Append will be assigned — equivalently,
// the number of records ever committed.
func (l *Log) NextLSN() uint64 { return l.next }

// Failed returns the latched append error, nil while the log is healthy. Like
// every Log method it relies on the caller's external synchronization (core
// holds System.mu around the log). The health endpoint surfaces this: a
// latched log means ingest is failing durably until restart, which is a
// degraded-but-alive condition, not a dead process.
func (l *Log) Failed() error { return l.err }

// ActiveSize returns the byte size of the active segment.
func (l *Log) ActiveSize() int { return l.size }

// Rotate closes the active segment and starts a fresh one at the current
// LSN. The checkpointer rotates before serializing, so every earlier segment
// is fully covered by the checkpoint it is about to write.
func (l *Log) Rotate() error {
	if l.err != nil {
		// Rotating past a failed append would leave the dead segment's
		// unacknowledged tail bytes inside live history with a successor
		// segment whose name no longer matches the record count — recovery
		// would then double-count. The directory stays frozen until restart.
		return l.err
	}
	if l.f != nil {
		if err := l.f.Close(); err != nil {
			return err
		}
		l.f = nil
	}
	return l.rotate()
}

func (l *Log) rotate() error {
	name := segName(l.next)
	f, err := l.fs.Create(join(l.dir, name))
	if err != nil {
		return fmt.Errorf("wal: create segment %s: %w", name, err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f, l.active, l.size = f, name, 0
	return nil
}

// Close releases the active segment handle. Every committed record is
// already durable (Append fsyncs), so Close has nothing to flush.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// RemoveBelow is the cleanup step after a successful checkpoint at lsn, with
// two retention guarantees layered on plain "delete what the checkpoint
// covers":
//
//   - Fallback checkpoint: the newest checkpoint OLDER than lsn survives,
//     along with every segment needed to replay forward from it. If the new
//     checkpoint is later destroyed by media corruption, recovery falls back
//     to the older one and replays the longer tail instead of failing.
//   - Lease floor: no segment containing records at or above floor is
//     deleted, whatever the checkpoint covers. Replication feeds hold floor
//     at the slowest replica's position (core.WALLease), so pruning under a
//     lagging replica never deletes records it has yet to ship.
//
// Effectively segments survive down to min(floor, fallback-checkpoint LSN);
// checkpoints below the fallback, and stray .tmp files, are removed.
// Failures here are garbage, not corruption: a later open ignores leftovers.
func RemoveBelow(fsys FS, dir string, lsn, floor uint64) error {
	names, starts, err := listByStart(fsys, dir, segPrefix, segSuffix)
	if err != nil {
		return err
	}
	ckNames, ckLSNs, err := listByStart(fsys, dir, ckptPrefix, ckptSuffix)
	if err != nil {
		return err
	}
	// The fallback checkpoint is the newest one strictly below lsn; with none
	// on disk there is nothing to replay from, so it does not hold segments.
	fallback := lsn
	for i := len(ckLSNs) - 1; i >= 0; i-- {
		if ckLSNs[i] < lsn {
			fallback = ckLSNs[i]
			break
		}
	}
	segFloor := min(lsn, floor, fallback)
	var firstErr error
	keep := func(err error) {
		if firstErr == nil && err != nil {
			firstErr = err
		}
	}
	for i, name := range names {
		end := lsn // assume the last segment runs to the checkpoint
		if i+1 < len(names) {
			end = starts[i+1]
		}
		if end <= segFloor && starts[i] < segFloor {
			keep(fsys.Remove(join(dir, name)))
		}
	}
	for i, name := range ckNames {
		if ckLSNs[i] < lsn && ckLSNs[i] != fallback {
			keep(fsys.Remove(join(dir, name)))
		}
	}
	all, err := fsys.ReadDir(dir)
	if err == nil {
		for _, name := range all {
			if strings.HasSuffix(name, tmpSuffix) {
				keep(fsys.Remove(join(dir, name)))
			}
		}
	}
	keep(fsys.SyncDir(dir))
	return firstErr
}
