package wal

import (
	"context"

	"multirag/internal/fault"
)

// FaultOps bridges MemFS's OnOp hook into the fault registry: every mutating
// filesystem operation becomes a named injection point "<prefix>.<op>"
// (e.g. "walfs.sync"), so the chaos grid can arm filesystem faults with the
// same Enable/Disable vocabulary it uses for the request lifecycle — the
// generalization of the hook the crash matrix drove by hand. Filesystem
// operations carry no context, so hang faults here release only on
// Disable/Reset.
func FaultOps(prefix string) func(op Op, name string) error {
	return func(op Op, name string) error {
		return fault.Inject(context.Background(), prefix+"."+string(op))
	}
}
