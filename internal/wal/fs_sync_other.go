//go:build !linux

package wal

import "os"

// datasync falls back to a full fsync on platforms without fdatasync.
func datasync(f *os.File) error { return f.Sync() }
