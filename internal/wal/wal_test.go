package wal

import (
	"bytes"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	var e Encoder
	e.Uvarint(0)
	e.Uvarint(1 << 40)
	e.Int(12345)
	e.Int32(-1)
	e.Int32(1 << 30)
	e.Bool(true)
	e.Bool(false)
	e.F64(3.5)
	e.String("")
	e.String("hello \x00 world")
	e.F32s([]float32{1, -2.5, 0})
	e.F32s(nil)

	d := NewDecoder(e.Bytes())
	if got := d.Uvarint(); got != 0 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := d.Uvarint(); got != 1<<40 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := d.Int(); got != 12345 {
		t.Errorf("Int = %d", got)
	}
	if got := d.Int32(); got != -1 {
		t.Errorf("Int32 = %d", got)
	}
	if got := d.Int32(); got != 1<<30 {
		t.Errorf("Int32 = %d", got)
	}
	if got := d.Bool(); !got {
		t.Error("Bool = false")
	}
	if got := d.Bool(); got {
		t.Error("Bool = true")
	}
	if got := d.F64(); got != 3.5 {
		t.Errorf("F64 = %v", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("String = %q", got)
	}
	if got := d.String(); got != "hello \x00 world" {
		t.Errorf("String = %q", got)
	}
	if got := d.F32s(); !reflect.DeepEqual(got, []float32{1, -2.5, 0}) {
		t.Errorf("F32s = %v", got)
	}
	if got := d.F32s(); len(got) != 0 {
		t.Errorf("F32s = %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDecoderLatchesOnTruncation(t *testing.T) {
	var e Encoder
	e.String("abcdef")
	b := e.Bytes()
	for cut := 0; cut < len(b); cut++ {
		d := NewDecoder(b[:cut])
		_ = d.String()
		if d.Err() == nil {
			t.Fatalf("cut=%d: no error for truncated input", cut)
		}
		// Every later read must return zero without panicking.
		if v := d.Uvarint(); v != 0 {
			t.Fatalf("cut=%d: post-error Uvarint = %d", cut, v)
		}
	}
}

func TestDecoderRejectsHugeLengths(t *testing.T) {
	var e Encoder
	e.Uvarint(1 << 62) // claims a ~4 exabyte string
	d := NewDecoder(e.Bytes())
	_ = d.String()
	if d.Err() == nil {
		t.Fatal("huge length accepted")
	}
}

func TestFrameParse(t *testing.T) {
	var b []byte
	payloads := [][]byte{[]byte("alpha"), {}, []byte("gamma-gamma")}
	for _, p := range payloads {
		b = appendFrame(b, p)
	}
	got, clean, ok := parseFrames(b)
	if !ok || clean != len(b) || len(got) != 3 {
		t.Fatalf("parse = %d records, clean %d/%d, ok %v", len(got), clean, len(b), ok)
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Errorf("record %d = %q", i, got[i])
		}
	}

	// Torn at every byte offset: the clean prefix is always a record
	// boundary and never includes the torn record.
	for cut := 0; cut < len(b); cut++ {
		got, clean, ok := parseFrames(b[:cut])
		if ok && cut != clean {
			t.Fatalf("cut=%d: reported clean with trailing bytes", cut)
		}
		if clean > cut {
			t.Fatalf("cut=%d: clean %d beyond input", cut, clean)
		}
		whole, _, _ := parseFrames(b[:clean])
		if len(whole) != len(got) {
			t.Fatalf("cut=%d: clean prefix holds %d records, parse returned %d", cut, len(whole), len(got))
		}
	}

	// A flipped bit anywhere invalidates the record it lands in and stops
	// the scan there (records before it survive).
	for off := 0; off < len(b); off++ {
		mut := append([]byte(nil), b...)
		mut[off] ^= 0x10
		got, clean, _ := parseFrames(mut)
		if clean > off {
			// The clean prefix may not extend past the corrupted byte...
			t.Fatalf("off=%d: clean prefix %d includes the flipped byte", off, clean)
		}
		reparsed, _, _ := parseFrames(b[:clean])
		for i := range got {
			if !bytes.Equal(got[i], reparsed[i]) {
				t.Fatalf("off=%d: surviving record %d differs", off, i)
			}
		}
	}
}

// logFSes runs a subtest against both FS implementations: the durability
// logic must behave identically over the real filesystem and the crash-
// simulating in-memory one.
func logFSes(t *testing.T, fn func(t *testing.T, fsys FS, dir string)) {
	t.Run("osfs", func(t *testing.T) { fn(t, OSFS{}, t.TempDir()) })
	t.Run("memfs", func(t *testing.T) {
		m := NewMemFS()
		dir := filepath.Join("data", "wal")
		fn(t, m, dir)
	})
}

func scanAll(t *testing.T, fsys FS, dir string, from uint64) *ScanResult {
	t.Helper()
	sr, err := Scan(fsys, dir, from)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return sr
}

func TestLogAppendScanRoundTrip(t *testing.T) {
	logFSes(t, func(t *testing.T, fsys FS, dir string) {
		if err := fsys.MkdirAll(dir); err != nil {
			t.Fatal(err)
		}
		l, err := OpenLog(fsys, dir, &ScanResult{})
		if err != nil {
			t.Fatalf("OpenLog: %v", err)
		}
		var want [][]byte
		for i := 0; i < 10; i++ {
			p := fmt.Appendf(nil, "record-%d", i)
			want = append(want, p)
			lsn, err := l.Append(p)
			if err != nil {
				t.Fatalf("Append: %v", err)
			}
			if lsn != uint64(i) {
				t.Fatalf("Append LSN = %d, want %d", lsn, i)
			}
			if i == 4 {
				if err := l.Rotate(); err != nil {
					t.Fatalf("Rotate: %v", err)
				}
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		sr := scanAll(t, fsys, dir, 0)
		if sr.Truncated {
			t.Fatal("clean log reported truncated")
		}
		if len(sr.Records) != 10 {
			t.Fatalf("scan found %d records", len(sr.Records))
		}
		for i, p := range sr.Records {
			if !bytes.Equal(p, want[i]) {
				t.Errorf("record %d = %q", i, p)
			}
		}

		// Scanning from a covered floor skips the first segment's records.
		sr = scanAll(t, fsys, dir, 5)
		if len(sr.Records) != 5 || !bytes.Equal(sr.Records[0], want[5]) {
			t.Fatalf("floor scan = %d records, first %q", len(sr.Records), sr.Records[0])
		}

		// Reopen for append and continue the LSN sequence.
		l2, err := OpenLog(fsys, dir, sr)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if l2.NextLSN() != 10 {
			t.Fatalf("NextLSN = %d", l2.NextLSN())
		}
		if _, err := l2.Append([]byte("record-10")); err != nil {
			t.Fatal(err)
		}
		l2.Close()
		if got := scanAll(t, fsys, dir, 0); len(got.Records) != 11 {
			t.Fatalf("after reopen scan found %d records", len(got.Records))
		}
	})
}

func TestLogTornTailTruncatedOnOpen(t *testing.T) {
	logFSes(t, func(t *testing.T, fsys FS, dir string) {
		if err := fsys.MkdirAll(dir); err != nil {
			t.Fatal(err)
		}
		l, err := OpenLog(fsys, dir, &ScanResult{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := l.Append(fmt.Appendf(nil, "r%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()

		// Tear the tail: append garbage that looks like a partial frame.
		seg := join(dir, segName(0))
		f, err := fsys.OpenAppend(seg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{9, 0, 0, 0, 1, 2}); err != nil {
			t.Fatal(err)
		}
		f.Close()

		sr := scanAll(t, fsys, dir, 0)
		if !sr.Truncated || len(sr.Records) != 3 {
			t.Fatalf("torn scan: truncated=%v records=%d", sr.Truncated, len(sr.Records))
		}
		l2, err := OpenLog(fsys, dir, sr)
		if err != nil {
			t.Fatalf("open with torn tail: %v", err)
		}
		if _, err := l2.Append([]byte("r3")); err != nil {
			t.Fatal(err)
		}
		l2.Close()
		sr = scanAll(t, fsys, dir, 0)
		if sr.Truncated || len(sr.Records) != 4 || !bytes.Equal(sr.Records[3], []byte("r3")) {
			t.Fatalf("after repair: truncated=%v records=%d", sr.Truncated, len(sr.Records))
		}
	})
}

func TestLogCorruptionDropsLaterSegments(t *testing.T) {
	m := NewMemFS()
	dir := "wal"
	l, err := OpenLog(m, dir, &ScanResult{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Append(fmt.Appendf(nil, "r%d", i)); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			if err := l.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	l.Close()
	// Flip a bit inside record 1's payload (first segment, frame 1 starts at
	// byte 10): records 2..3 in the later segment become unreachable.
	if err := m.FlipBit(join(dir, segName(0)), 18); err != nil {
		t.Fatal(err)
	}
	sr := scanAll(t, m, dir, 0)
	if !sr.Truncated || len(sr.Records) != 1 {
		t.Fatalf("corrupt scan: truncated=%v records=%d", sr.Truncated, len(sr.Records))
	}
	l2, err := OpenLog(m, dir, sr)
	if err != nil {
		t.Fatal(err)
	}
	if l2.NextLSN() != 1 {
		t.Fatalf("NextLSN after corruption = %d", l2.NextLSN())
	}
	l2.Close()
	sr = scanAll(t, m, dir, 0)
	if sr.Truncated || len(sr.Records) != 1 {
		t.Fatalf("post-repair scan: truncated=%v records=%d", sr.Truncated, len(sr.Records))
	}
}

func TestCheckpointRoundTripAndFallback(t *testing.T) {
	logFSes(t, func(t *testing.T, fsys FS, dir string) {
		if err := fsys.MkdirAll(dir); err != nil {
			t.Fatal(err)
		}
		if body, lsn, err := LoadCheckpoint(fsys, dir); err != nil || body != nil || lsn != 0 {
			t.Fatalf("empty dir: %v %v %d", body, err, lsn)
		}
		if err := WriteCheckpoint(fsys, dir, 3, []byte("v1")); err != nil {
			t.Fatal(err)
		}
		if err := WriteCheckpoint(fsys, dir, 7, []byte("v2")); err != nil {
			t.Fatal(err)
		}
		body, lsn, err := LoadCheckpoint(fsys, dir)
		if err != nil || string(body) != "v2" || lsn != 7 {
			t.Fatalf("load = %q lsn %d err %v", body, lsn, err)
		}
	})
}

func TestCorruptCheckpointFallsBack(t *testing.T) {
	m := NewMemFS()
	dir := "wal"
	m.MkdirAll(dir)
	if err := WriteCheckpoint(m, dir, 3, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(m, dir, 9, []byte("new")); err != nil {
		t.Fatal(err)
	}
	newName := join(dir, fmt.Sprintf("%s%016x%s", ckptPrefix, 9, ckptSuffix))
	if err := m.FlipBit(newName, ckptHeader+1); err != nil {
		t.Fatal(err)
	}
	body, lsn, err := LoadCheckpoint(m, dir)
	if err != nil || string(body) != "old" || lsn != 3 {
		t.Fatalf("fallback load = %q lsn %d err %v", body, lsn, err)
	}
}

func TestRemoveBelow(t *testing.T) {
	m := NewMemFS()
	dir := "wal"
	l, err := OpenLog(m, dir, &ScanResult{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := l.Append(fmt.Appendf(nil, "r%d", i)); err != nil {
			t.Fatal(err)
		}
		if i == 1 || i == 3 {
			if err := l.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Rotate once more (segment at 6), then checkpoint at 4: segments [0,2)
	// and [2,4) are fully covered, the [4,6) segment is not.
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(m, dir, 4, []byte("ck")); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(m, dir, 2, []byte("ck-old")); err != nil {
		t.Fatal(err)
	}
	if err := RemoveBelow(m, dir, 4, 4); err != nil {
		t.Fatal(err)
	}
	names, err := m.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The checkpoint at 2 is the fallback: it survives, and so does the
	// [2,4) segment needed to replay forward from it. Only the [0,2) segment
	// is unreachable from every retained recovery point.
	for _, n := range names {
		if lsn, ok := parseName(n, segPrefix, segSuffix); ok && lsn < 2 {
			t.Errorf("unreachable segment %s survived cleanup", n)
		}
		if lsn, ok := parseName(n, ckptPrefix, ckptSuffix); ok && lsn < 2 {
			t.Errorf("pre-fallback checkpoint %s survived cleanup", n)
		}
	}
	if _, err := m.ReadFile(join(dir, fmt.Sprintf("%s%016x%s", ckptPrefix, 2, ckptSuffix))); err != nil {
		t.Fatalf("fallback checkpoint removed: %v", err)
	}
	sr := scanAll(t, m, dir, 4)
	if len(sr.Records) != 2 || !bytes.Equal(sr.Records[0], []byte("r4")) {
		t.Fatalf("post-cleanup scan = %d records", len(sr.Records))
	}
	// Replaying from the fallback checkpoint still works: its tail is intact.
	sr = scanAll(t, m, dir, 2)
	if len(sr.Records) != 4 || !bytes.Equal(sr.Records[0], []byte("r2")) {
		t.Fatalf("fallback scan = %d records", len(sr.Records))
	}
	l.Close()
}

func TestRemoveBelowHonoursLeaseFloor(t *testing.T) {
	m := NewMemFS()
	dir := "wal"
	l, err := OpenLog(m, dir, &ScanResult{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := l.Append(fmt.Appendf(nil, "r%d", i)); err != nil {
			t.Fatal(err)
		}
		if i%2 == 1 {
			if err := l.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := WriteCheckpoint(m, dir, 6, []byte("ck")); err != nil {
		t.Fatal(err)
	}
	// A feed lease at 1 pins every segment from record 1 on, whatever the
	// checkpoint covers: a replica still at position 1 must be able to replay
	// the full tail.
	if err := RemoveBelow(m, dir, 6, 1); err != nil {
		t.Fatal(err)
	}
	sr := scanAll(t, m, dir, 1)
	if len(sr.Records) != 5 || !bytes.Equal(sr.Records[0], []byte("r1")) {
		t.Fatalf("leased scan = %d records (want 5 from r1)", len(sr.Records))
	}
	l.Close()
}

func TestMemFSCrashSemantics(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("d")
	f, err := m.Create(join("d", "a"))
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("hello"))
	f.Sync()
	m.SyncDir("d")
	f.Write([]byte(" world"))

	// Crash with no tear: unsynced tail lost.
	c := m.Crash(nil)
	if b, _ := c.ReadFile(join("d", "a")); string(b) != "hello" {
		t.Fatalf("post-crash content %q", b)
	}
	// Torn: 3 bytes of the tail survive.
	c = m.Crash(map[string]int{join("d", "a"): 3})
	if b, _ := c.ReadFile(join("d", "a")); string(b) != "hello wo" {
		t.Fatalf("torn post-crash content %q", b)
	}

	// A created-but-never-dir-synced file vanishes at crash.
	g, _ := m.Create(join("d", "b"))
	g.Write([]byte("x"))
	g.Sync()
	c = m.Crash(nil)
	if _, err := c.ReadFile(join("d", "b")); !IsNotExist(err) {
		t.Fatalf("unsynced entry survived crash: %v", err)
	}

	// A rename is volatile until dir sync: crash resurrects the old name.
	m.Rename(join("d", "a"), join("d", "a2"))
	c = m.Crash(nil)
	if _, err := c.ReadFile(join("d", "a")); err != nil {
		t.Fatalf("old name lost before dir sync: %v", err)
	}
	if _, err := c.ReadFile(join("d", "a2")); !IsNotExist(err) {
		t.Fatal("new name durable before dir sync")
	}
	m.SyncDir("d")
	c = m.Crash(nil)
	if _, err := c.ReadFile(join("d", "a2")); err != nil {
		t.Fatalf("rename lost after dir sync: %v", err)
	}
	if _, err := c.ReadFile(join("d", "a")); !IsNotExist(err) {
		t.Fatal("old name survived dir sync")
	}
}

func TestMemFSInjectedSyncFailure(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("d")
	fail := true
	m.OnOp = func(op Op, name string) error {
		if fail && op == OpSync {
			return fmt.Errorf("injected fsync failure")
		}
		return nil
	}
	f, _ := m.OpenAppend(join("d", "a"))
	f.Write([]byte("data"))
	if err := f.Sync(); err == nil {
		t.Fatal("injected sync failure not surfaced")
	}
	m.SyncDir("d")
	c := m.Crash(nil)
	if b, _ := c.ReadFile(join("d", "a")); len(b) != 0 {
		t.Fatalf("unsynced data %q survived crash after failed fsync", b)
	}
	fail = false
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	c = m.Crash(nil)
	if b, _ := c.ReadFile(join("d", "a")); string(b) != "data" {
		t.Fatalf("synced data lost: %q", b)
	}
}
