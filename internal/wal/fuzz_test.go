package wal

import (
	"bytes"
	"testing"
)

// FuzzFrameParse throws arbitrary bytes at the WAL record decoder — the code
// path every recovery walks over whatever a crash left on disk. Invariants:
// no panic, the clean prefix is always re-parseable to the same records, and
// records round-trip bit-exactly through appendFrame.
func FuzzFrameParse(f *testing.F) {
	var seed []byte
	seed = appendFrame(seed, []byte("alpha"))
	seed = appendFrame(seed, nil)
	seed = appendFrame(seed, bytes.Repeat([]byte{0xAB}, 300))
	f.Add(seed)
	f.Add(seed[:len(seed)-3])           // torn tail
	f.Add([]byte{})                     // empty segment
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0}) // huge length claim
	mut := append([]byte(nil), seed...)
	mut[9] ^= 0x40 // corrupt first record's payload
	f.Add(mut)

	f.Fuzz(func(t *testing.T, b []byte) {
		payloads, clean, ok := parseFrames(b)
		if clean > len(b) {
			t.Fatalf("clean %d beyond input %d", clean, len(b))
		}
		if ok && clean != len(b) {
			t.Fatalf("ok with %d trailing bytes", len(b)-clean)
		}
		// The clean prefix re-parses to the identical record list.
		again, cleanAgain, okAgain := parseFrames(b[:clean])
		if !okAgain || cleanAgain != clean || len(again) != len(payloads) {
			t.Fatalf("clean prefix unstable: ok=%v clean=%d/%d n=%d/%d",
				okAgain, cleanAgain, clean, len(again), len(payloads))
		}
		// Re-encoding the records reproduces the clean prefix byte for byte.
		var re []byte
		for i, p := range payloads {
			if !bytes.Equal(p, again[i]) {
				t.Fatalf("record %d differs on re-parse", i)
			}
			re = appendFrame(re, p)
		}
		if !bytes.Equal(re, b[:clean]) {
			t.Fatal("re-encoded records differ from clean prefix")
		}

		// The checkpoint parser must be equally panic-free.
		if body, ok := parseCheckpoint(b); ok && len(body) > len(b) {
			t.Fatal("checkpoint body longer than file")
		}
	})
}

// FuzzDecoder drives the primitive decoder over arbitrary input with a fixed
// field script: no panic, no huge allocation, errors latch.
func FuzzDecoder(f *testing.F) {
	var e Encoder
	e.Uvarint(7)
	e.String("subject")
	e.Int32(-1)
	e.F64(0.5)
	e.F32s([]float32{1, 2, 3})
	e.Bool(true)
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x80}) // unterminated varint

	f.Fuzz(func(t *testing.T, b []byte) {
		d := NewDecoder(b)
		_ = d.Uvarint()
		_ = d.String()
		_ = d.Int32()
		_ = d.F64()
		v := d.F32s()
		_ = d.Bool()
		if d.Err() != nil {
			// Errors must latch: one more read of each kind stays zero.
			if d.Uvarint() != 0 || d.String() != "" || d.F32s() != nil {
				t.Fatal("reads after error returned data")
			}
		}
		if len(v) > len(b) {
			t.Fatalf("decoded %d floats from %d bytes", len(v), len(b))
		}
	})
}
