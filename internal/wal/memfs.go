package wal

import (
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Op names one mutating filesystem operation for fault injection.
type Op string

// The mutating operations OnOp observes.
const (
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpCreate   Op = "create"
	OpAppend   Op = "append"
	OpTruncate Op = "truncate"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpSyncDir  Op = "syncdir"
)

// MemFS is an in-memory FS with POSIX-style crash semantics, built for the
// recovery-equivalence suite:
//
//   - file content written but not File.Sync'd is volatile;
//   - directory entries created, renamed or removed but not SyncDir'd are
//     volatile (a freshly created file vanishes at crash until its directory
//     is synced; a rename's old name reappears);
//   - Crash derives the post-crash filesystem — durable entries with their
//     synced content — optionally keeping a caller-chosen number of unsynced
//     tail bytes per file (a torn write at any byte offset);
//   - FlipBit corrupts one durable bit in place (media corruption);
//   - OnOp, when set, observes every mutating operation and may fail it
//     (fsync failure, crash mid-checkpoint between create and rename).
//
// All methods are safe for concurrent use.
type MemFS struct {
	mu sync.Mutex
	// files is the volatile namespace: path → inode.
	files map[string]*memInode
	// durable is the durable namespace: path → the inode durably linked at
	// that name (content durability is the inode's own synced copy).
	durable map[string]*memInode
	dirs    map[string]bool

	// OnOp, when non-nil, runs before every mutating operation; a non-nil
	// return fails the operation with that error. Set it under no lock —
	// before handing the FS to the system under test.
	OnOp func(op Op, name string) error
}

type memInode struct {
	data []byte // current content
	// syncedLen marks data[:syncedLen] as the durable content of the last
	// successful Sync. Writes only ever append, so the durable prefix can
	// share data's backing array and Sync is O(1) — a full copy per fsync
	// made every long append history quadratic.
	syncedLen int
	// diverged, when non-nil, overrides the prefix view: a Truncate below
	// syncedLen lets later appends rewrite offsets the durable copy still
	// covers, so the durable content is materialised privately first.
	diverged []byte
}

// syncedContent returns the durable content view (read-only unless diverged).
func (ino *memInode) syncedContent() []byte {
	if ino.diverged != nil {
		return ino.diverged
	}
	return ino.data[:ino.syncedLen]
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{
		files:   map[string]*memInode{},
		durable: map[string]*memInode{},
		dirs:    map[string]bool{},
	}
}

func (m *MemFS) inject(op Op, name string) error {
	if m.OnOp != nil {
		return m.OnOp(op, name)
	}
	return nil
}

func notExist(name string) error {
	return fmt.Errorf("memfs: %s: %w", name, fs.ErrNotExist)
}

type memFile struct {
	fs   *MemFS
	name string
	ino  *memInode
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.fs.inject(OpWrite, f.name); err != nil {
		return 0, err
	}
	f.ino.data = append(f.ino.data, p...)
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.fs.inject(OpSync, f.name); err != nil {
		return err
	}
	f.ino.diverged = nil
	f.ino.syncedLen = len(f.ino.data)
	return nil
}

func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.fs.inject(OpTruncate, f.name); err != nil {
		return err
	}
	if int(size) < len(f.ino.data) {
		if f.ino.diverged == nil && int(size) < f.ino.syncedLen {
			f.ino.diverged = append([]byte(nil), f.ino.data[:f.ino.syncedLen]...)
		}
		f.ino.data = f.ino.data[:size]
	}
	return nil
}

func (f *memFile) Close() error { return nil }

// OpenAppend opens (or creates) name for appending.
func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.inject(OpAppend, name); err != nil {
		return nil, err
	}
	ino := m.files[name]
	if ino == nil {
		ino = &memInode{}
		m.files[name] = ino
	}
	return &memFile{fs: m, name: name, ino: ino}, nil
}

// Create creates or truncates name.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.inject(OpCreate, name); err != nil {
		return nil, err
	}
	ino := &memInode{}
	m.files[name] = ino
	return &memFile{fs: m, name: name, ino: ino}, nil
}

// ReadFile returns a copy of name's current (volatile) content.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino := m.files[name]
	if ino == nil {
		return nil, notExist(name)
	}
	return append([]byte(nil), ino.data...), nil
}

// Rename atomically moves oldname onto newname in the volatile namespace.
// The durable namespace keeps both previous bindings until SyncDir.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.inject(OpRename, oldname); err != nil {
		return err
	}
	ino := m.files[oldname]
	if ino == nil {
		return notExist(oldname)
	}
	delete(m.files, oldname)
	m.files[newname] = ino
	return nil
}

// Remove deletes name from the volatile namespace.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.inject(OpRemove, name); err != nil {
		return err
	}
	if m.files[name] == nil {
		return notExist(name)
	}
	delete(m.files, name)
	return nil
}

// ReadDir lists file names directly inside dir, sorted.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[dir] {
		return nil, notExist(dir)
	}
	var names []string
	prefix := dir + string(filepath.Separator)
	for p := range m.files {
		if strings.HasPrefix(p, prefix) && !strings.Contains(p[len(prefix):], string(filepath.Separator)) {
			names = append(names, p[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll records dir (and implicitly its parents) as existing. Directory
// existence itself is treated as durable — the recovery contract covers file
// data and entries, and core creates its directory before any commit.
func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[dir] = true
	return nil
}

// SyncDir makes dir's current entries durable: names now present are durably
// bound to their inodes, names removed or renamed away durably disappear.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.inject(OpSyncDir, dir); err != nil {
		return err
	}
	prefix := dir + string(filepath.Separator)
	for p := range m.durable {
		if strings.HasPrefix(p, prefix) && m.files[p] == nil {
			delete(m.durable, p)
		}
	}
	for p, ino := range m.files {
		if strings.HasPrefix(p, prefix) {
			m.durable[p] = ino
		}
	}
	return nil
}

// Crash derives the post-crash filesystem: the durable namespace only, every
// file at its last-synced content plus up to torn[path] bytes of its unsynced
// tail (a torn append). Paths absent from torn lose their whole unsynced
// tail. The receiver is left untouched, so a test can crash the same history
// at many tear offsets.
func (m *MemFS) Crash(torn map[string]int) *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewMemFS()
	for d := range m.dirs {
		out.dirs[d] = true
	}
	for p, ino := range m.durable {
		synced := ino.syncedContent()
		data := append([]byte(nil), synced...)
		if keep := torn[p]; keep > 0 && len(ino.data) > len(synced) {
			tail := ino.data[len(synced):]
			if keep > len(tail) {
				keep = len(tail)
			}
			data = append(data, tail[:keep]...)
		}
		out.files[p] = &memInode{data: data, syncedLen: len(data)}
		out.durable[p] = out.files[p]
	}
	return out
}

// UnsyncedTail returns how many bytes of name's content are not yet durable —
// the range of valid tear offsets for Crash.
func (m *MemFS) UnsyncedTail(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino := m.files[name]
	if ino == nil {
		return 0
	}
	return len(ino.data) - len(ino.syncedContent())
}

// FlipBit flips one bit of name's content in place, in both the volatile and
// durable copies — media corruption that survives a crash.
func (m *MemFS) FlipBit(name string, byteOff int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino := m.files[name]
	if ino == nil {
		return notExist(name)
	}
	if byteOff < 0 || byteOff >= len(ino.data) {
		return fmt.Errorf("memfs: flip offset %d out of range [0,%d)", byteOff, len(ino.data))
	}
	ino.data[byteOff] ^= 1 << 5
	// The durable prefix aliases data, so its flip already happened above;
	// only a materialised diverged copy needs its own.
	if ino.diverged != nil && byteOff < len(ino.diverged) {
		ino.diverged[byteOff] ^= 1 << 5
	}
	return nil
}

// FileSize returns name's current content length (0 when absent).
func (m *MemFS) FileSize(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino := m.files[name]
	if ino == nil {
		return 0
	}
	return len(ino.data)
}
