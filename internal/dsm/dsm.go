// Package dsm implements a Decomposition Storage Model (DSM): a columnar
// store in which each attribute of a table is kept as an independent column
// with its own hash and ordered indexes. The structured-data adapter
// (internal/adapter) stores tabular sources through dsm so that "all
// attribute information for consistency checks" can be extracted via column
// indexes, as §III-B of the paper requires.
package dsm

import (
	"fmt"
	"sort"
)

// Table is a DSM table: a fixed set of named columns, each holding one value
// per row. A missing cell is represented by the empty string and excluded
// from indexes.
type Table struct {
	name    string
	rows    int
	columns map[string]*Column
	order   []string // column names in insertion order
}

// Column is a single decomposed attribute: its values in row order plus a
// hash index (value → row ids) and a sorted index for range scans.
type Column struct {
	Name   string
	values []string
	hash   map[string][]int
	sorted []int // row ids ordered by value; built lazily
	dirty  bool
}

// NewTable creates an empty DSM table with the given column names. Duplicate
// column names are an error.
func NewTable(name string, columns ...string) (*Table, error) {
	t := &Table{name: name, columns: map[string]*Column{}}
	for _, c := range columns {
		if _, dup := t.columns[c]; dup {
			return nil, fmt.Errorf("dsm: duplicate column %q in table %q", c, name)
		}
		t.columns[c] = &Column{Name: c, hash: map[string][]int{}}
		t.order = append(t.order, c)
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Rows returns the number of rows inserted.
func (t *Table) Rows() int { return t.rows }

// Columns returns the column names in declaration order.
func (t *Table) Columns() []string {
	out := make([]string, len(t.order))
	copy(out, t.order)
	return out
}

// Insert appends one row given as column → value. Unknown columns are an
// error; columns absent from the map get the empty (missing) cell. Insert
// returns the new row id.
func (t *Table) Insert(row map[string]string) (int, error) {
	for k := range row {
		if _, ok := t.columns[k]; !ok {
			return 0, fmt.Errorf("dsm: table %q has no column %q", t.name, k)
		}
	}
	id := t.rows
	for _, name := range t.order {
		col := t.columns[name]
		v := row[name]
		col.values = append(col.values, v)
		if v != "" {
			col.hash[v] = append(col.hash[v], id)
		}
		col.dirty = true
	}
	t.rows++
	return id, nil
}

// Get returns the cell at (row, column). Missing cells return "".
func (t *Table) Get(row int, column string) (string, error) {
	col, ok := t.columns[column]
	if !ok {
		return "", fmt.Errorf("dsm: table %q has no column %q", t.name, column)
	}
	if row < 0 || row >= t.rows {
		return "", fmt.Errorf("dsm: row %d out of range [0,%d)", row, t.rows)
	}
	return col.values[row], nil
}

// Lookup returns the row ids whose column equals value, via the hash index.
func (t *Table) Lookup(column, value string) ([]int, error) {
	col, ok := t.columns[column]
	if !ok {
		return nil, fmt.Errorf("dsm: table %q has no column %q", t.name, column)
	}
	ids := col.hash[value]
	out := make([]int, len(ids))
	copy(out, ids)
	return out, nil
}

// Scan returns all non-missing (rowID, value) pairs of a column in row order.
// It is the "extract all attribute information for consistency checks" path.
func (t *Table) Scan(column string) ([]Cell, error) {
	col, ok := t.columns[column]
	if !ok {
		return nil, fmt.Errorf("dsm: table %q has no column %q", t.name, column)
	}
	var cells []Cell
	for id, v := range col.values {
		if v != "" {
			cells = append(cells, Cell{Row: id, Value: v})
		}
	}
	return cells, nil
}

// Cell is a (row, value) pair returned by column scans.
type Cell struct {
	Row   int
	Value string
}

// Range returns the row ids whose column value lies in [lo, hi]
// lexicographically, using the ordered index.
func (t *Table) Range(column, lo, hi string) ([]int, error) {
	col, ok := t.columns[column]
	if !ok {
		return nil, fmt.Errorf("dsm: table %q has no column %q", t.name, column)
	}
	col.ensureSorted()
	// Binary search over the sorted index.
	n := len(col.sorted)
	start := sort.Search(n, func(i int) bool { return col.values[col.sorted[i]] >= lo })
	end := sort.Search(n, func(i int) bool { return col.values[col.sorted[i]] > hi })
	out := make([]int, 0, end-start)
	out = append(out, col.sorted[start:end]...)
	return out, nil
}

// Distinct returns the sorted distinct non-missing values of a column.
func (t *Table) Distinct(column string) ([]string, error) {
	col, ok := t.columns[column]
	if !ok {
		return nil, fmt.Errorf("dsm: table %q has no column %q", t.name, column)
	}
	vals := make([]string, 0, len(col.hash))
	for v := range col.hash {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	return vals, nil
}

// Row materialises a full row as column → value (missing cells omitted).
func (t *Table) Row(id int) (map[string]string, error) {
	if id < 0 || id >= t.rows {
		return nil, fmt.Errorf("dsm: row %d out of range [0,%d)", id, t.rows)
	}
	row := map[string]string{}
	for _, name := range t.order {
		if v := t.columns[name].values[id]; v != "" {
			row[name] = v
		}
	}
	return row, nil
}

func (c *Column) ensureSorted() {
	if !c.dirty && c.sorted != nil {
		return
	}
	ids := make([]int, 0, len(c.values))
	for id, v := range c.values {
		if v != "" {
			ids = append(ids, id)
		}
	}
	sort.SliceStable(ids, func(i, j int) bool { return c.values[ids[i]] < c.values[ids[j]] })
	c.sorted = ids
	c.dirty = false
}
