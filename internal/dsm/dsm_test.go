package dsm

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func mustTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable("movies", "title", "director", "year")
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	rows := []map[string]string{
		{"title": "The Matrix", "director": "Wachowski", "year": "1999"},
		{"title": "Heat", "director": "Mann", "year": "1995"},
		{"title": "Inception", "director": "Nolan", "year": "2010"},
		{"title": "Dunkirk", "director": "Nolan"}, // missing year
	}
	for _, r := range rows {
		if _, err := tbl.Insert(r); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	return tbl
}

func TestDuplicateColumnRejected(t *testing.T) {
	if _, err := NewTable("t", "a", "a"); err == nil {
		t.Fatal("duplicate column must be rejected")
	}
}

func TestInsertUnknownColumn(t *testing.T) {
	tbl, _ := NewTable("t", "a")
	if _, err := tbl.Insert(map[string]string{"b": "1"}); err == nil {
		t.Fatal("unknown column must be rejected")
	}
}

func TestGetAndLookup(t *testing.T) {
	tbl := mustTable(t)
	v, err := tbl.Get(2, "title")
	if err != nil || v != "Inception" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	ids, err := tbl.Lookup("director", "Nolan")
	if err != nil || !reflect.DeepEqual(ids, []int{2, 3}) {
		t.Fatalf("Lookup = %v, %v", ids, err)
	}
	if _, err := tbl.Get(99, "title"); err == nil {
		t.Fatal("out-of-range row must error")
	}
	if _, err := tbl.Lookup("nope", "x"); err == nil {
		t.Fatal("unknown column must error")
	}
}

func TestScanSkipsMissing(t *testing.T) {
	tbl := mustTable(t)
	cells, err := tbl.Scan("year")
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("Scan returned %d cells, want 3 (missing cell skipped)", len(cells))
	}
}

func TestRange(t *testing.T) {
	tbl := mustTable(t)
	ids, err := tbl.Range("year", "1995", "2000")
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(ids)
	if !reflect.DeepEqual(ids, []int{0, 1}) {
		t.Fatalf("Range = %v", ids)
	}
}

func TestDistinctSorted(t *testing.T) {
	tbl := mustTable(t)
	vals, err := tbl.Distinct("director")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vals, []string{"Mann", "Nolan", "Wachowski"}) {
		t.Fatalf("Distinct = %v", vals)
	}
}

func TestRowMaterialisation(t *testing.T) {
	tbl := mustTable(t)
	row, err := tbl.Row(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := row["year"]; ok {
		t.Fatal("missing cell must be omitted from Row")
	}
	if row["title"] != "Dunkirk" {
		t.Fatalf("Row = %v", row)
	}
}

// Property: for random inserts, hash lookup agrees with a full scan.
func TestLookupMatchesScanProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		tbl, _ := NewTable("p", "v")
		for _, v := range vals {
			if _, err := tbl.Insert(map[string]string{"v": fmt.Sprintf("x%d", v%8)}); err != nil {
				return false
			}
		}
		for probe := 0; probe < 8; probe++ {
			key := fmt.Sprintf("x%d", probe)
			ids, _ := tbl.Lookup("v", key)
			var want []int
			cells, _ := tbl.Scan("v")
			for _, c := range cells {
				if c.Value == key {
					want = append(want, c.Row)
				}
			}
			if !reflect.DeepEqual(ids, want) && !(len(ids) == 0 && len(want) == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Range(lo,hi) returns exactly the rows whose value ∈ [lo,hi].
func TestRangeProperty(t *testing.T) {
	f := func(vals []uint8, loRaw, hiRaw uint8) bool {
		tbl, _ := NewTable("p", "v")
		for _, v := range vals {
			tbl.Insert(map[string]string{"v": fmt.Sprintf("%03d", v)})
		}
		lo := fmt.Sprintf("%03d", loRaw)
		hi := fmt.Sprintf("%03d", hiRaw)
		if lo > hi {
			lo, hi = hi, lo
		}
		got, err := tbl.Range("v", lo, hi)
		if err != nil {
			return false
		}
		gotSet := map[int]bool{}
		for _, id := range got {
			gotSet[id] = true
		}
		for id, v := range vals {
			key := fmt.Sprintf("%03d", v)
			in := key >= lo && key <= hi
			if in != gotSet[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
