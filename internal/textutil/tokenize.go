// Package textutil provides the low-level text primitives shared by every
// other module: tokenisation, similarity measures, stable hashing and
// empirical token distributions. Everything is deterministic; no module in
// this repository may depend on map iteration order or wall-clock time for
// results, and textutil is where that discipline starts.
package textutil

import (
	"strings"
	"unicode"
)

// stopwords is the small English closed-class vocabulary dropped by
// TokenizeContent. The list is intentionally short: the simulated corpora are
// attribute-value shaped, and over-aggressive stopword removal hurts the
// mutual-information statistics computed in internal/confidence.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "of": true, "and": true,
	"or": true, "in": true, "on": true, "at": true, "to": true,
	"is": true, "are": true, "was": true, "were": true, "be": true,
	"by": true, "for": true, "with": true, "from": true, "as": true,
	"that": true, "this": true, "it": true, "its": true,
}

// IsStopword reports whether tok is in the built-in stopword list.
// The token must already be lower-cased.
func IsStopword(tok string) bool { return stopwords[tok] }

// Tokenize splits s into lower-cased alphanumeric tokens. Runs of letters and
// digits form tokens; everything else is a separator. Tokenize keeps
// stopwords; use TokenizeContent when they should be dropped.
func Tokenize(s string) []string {
	var toks []string
	start := -1
	lower := strings.ToLower(s)
	for i, r := range lower {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			toks = append(toks, lower[start:i])
			start = -1
		}
	}
	if start >= 0 {
		toks = append(toks, lower[start:])
	}
	return toks
}

// TokenizeContent is Tokenize followed by stopword removal. If removal would
// leave nothing (e.g. the value is "The A"), the unfiltered tokens are
// returned so that callers never receive an empty slice for non-empty input.
func TokenizeContent(s string) []string {
	toks := Tokenize(s)
	kept := toks[:0:0]
	for _, t := range toks {
		if !stopwords[t] {
			kept = append(kept, t)
		}
	}
	if len(kept) == 0 {
		return toks
	}
	return kept
}

// NGrams returns the contiguous n-grams of toks joined by a single space.
// n <= 0 or n > len(toks) yields nil.
func NGrams(toks []string, n int) []string {
	if n <= 0 || n > len(toks) {
		return nil
	}
	grams := make([]string, 0, len(toks)-n+1)
	for i := 0; i+n <= len(toks); i++ {
		grams = append(grams, strings.Join(toks[i:i+n], " "))
	}
	return grams
}

// NormalizeValue canonicalises an attribute value for comparison: tokens are
// lower-cased, surrounding punctuation is stripped, and the tokens are
// re-joined with single spaces. "  The Matrix " and "the matrix" normalise to
// the same string.
func NormalizeValue(s string) string {
	return strings.Join(Tokenize(s), " ")
}

// entityNoise lists the decorative tokens that vary between sources' surface
// forms of the same entity ("The Silent Horizon" / "Silent Horizon, The",
// "CA981" / "Flight CA981", "ACME" / "ACME Inc").
var entityNoise = map[string]bool{
	"the": true, "a": true, "an": true,
	"flight": true, "ticker": true, "stock": true,
	"inc": true, "co": true, "corp": true, "ltd": true,
}

// StandardizeName performs entity standardisation (the std.py phase of the
// knowledge-construction module): it canonicalises a surface form by
// lower-casing, stripping punctuation and dropping decorative tokens, so
// cross-source variants of one entity share a single identifier. When
// stripping would consume every token the normalised form is returned
// unchanged.
func StandardizeName(s string) string {
	toks := Tokenize(s)
	kept := toks[:0:0]
	for _, t := range toks {
		if !entityNoise[t] {
			kept = append(kept, t)
		}
	}
	if len(kept) == 0 {
		kept = toks
	}
	return strings.Join(kept, " ")
}
