package textutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []string
		want float64
	}{
		{nil, nil, 1},
		{[]string{"x"}, nil, 0},
		{[]string{"a", "b"}, []string{"a", "b"}, 1},
		{[]string{"a", "b"}, []string{"b", "c"}, 1.0 / 3.0},
		{[]string{"a", "a", "b"}, []string{"a", "b"}, 1}, // set semantics
	}
	for _, c := range cases {
		if got := Jaccard(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jaccard(%v,%v)=%v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDice(t *testing.T) {
	if got := Dice([]string{"a", "b"}, []string{"b", "c"}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Dice = %v want 0.5", got)
	}
}

func TestCosineTokens(t *testing.T) {
	if got := CosineTokens([]string{"a", "b"}, []string{"a", "b"}); math.Abs(got-1) > 1e-9 {
		t.Errorf("identical cosine = %v", got)
	}
	if got := CosineTokens([]string{"a"}, []string{"b"}); got != 0 {
		t.Errorf("disjoint cosine = %v", got)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
		// Affix-trimming edges: shared prefix, shared suffix, containment.
		{"prefix-x-suffix", "prefix-y-suffix", 1},
		{"abcdef", "abcxdef", 1},
		{"abc", "abcabc", 3},
		{"aaaa", "aa", 2},
		// Non-ASCII: rune semantics, not byte semantics.
		{"café", "cafe", 1},
		{"日本語", "日本", 1},
		{"héllo wörld", "héllo wörld", 0},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

// levenshteinRef is the seed implementation (plain two-row rune DP, no
// trimming, no ASCII path) kept as the property-test oracle for the
// optimised version.
func levenshteinRef(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// TestLevenshteinMatchesReference: the trimmed/ASCII-fast-path version must
// agree with the seed DP on arbitrary strings (quick generates both ASCII
// and multi-byte inputs).
func TestLevenshteinMatchesReference(t *testing.T) {
	f := func(a, b string) bool {
		return Levenshtein(a, b) == levenshteinRef(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Force high-affix-overlap pairs, which quick's uniform strings rarely
	// produce.
	g := func(mid1, mid2, affix string) bool {
		a := affix + mid1 + affix
		b := affix + mid2 + affix
		return Levenshtein(a, b) == levenshteinRef(a, b)
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestLevenshteinASCIIAllocFree: the ASCII fast path on short strings must
// not allocate (no []rune conversions, stack DP row).
func TestLevenshteinASCIIAllocFree(t *testing.T) {
	a, b := "the delayed departure", "the delayde departure"
	if avg := testing.AllocsPerRun(100, func() { Levenshtein(a, b) }); avg != 0 {
		t.Errorf("ASCII Levenshtein allocated %.1f times per run, want 0", avg)
	}
}

func TestStringSimilarityBounds(t *testing.T) {
	f := func(a, b string) bool {
		s := StringSimilarity(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimilaritySymmetry(t *testing.T) {
	f := func(a, b string) bool {
		ta, tb := Tokenize(a), Tokenize(b)
		return math.Abs(Jaccard(ta, tb)-Jaccard(tb, ta)) < 1e-12 &&
			math.Abs(CosineTokens(ta, tb)-CosineTokens(tb, ta)) < 1e-12 &&
			Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSqrtAgainstMath(t *testing.T) {
	for _, x := range []float64{0, 1e-9, 0.5, 1, 2, 100, 12345.678} {
		if got, want := sqrt(x), math.Sqrt(x); math.Abs(got-want) > 1e-9*(1+want) {
			t.Errorf("sqrt(%v)=%v want %v", x, got, want)
		}
	}
}
