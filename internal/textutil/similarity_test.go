package textutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []string
		want float64
	}{
		{nil, nil, 1},
		{[]string{"x"}, nil, 0},
		{[]string{"a", "b"}, []string{"a", "b"}, 1},
		{[]string{"a", "b"}, []string{"b", "c"}, 1.0 / 3.0},
		{[]string{"a", "a", "b"}, []string{"a", "b"}, 1}, // set semantics
	}
	for _, c := range cases {
		if got := Jaccard(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jaccard(%v,%v)=%v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDice(t *testing.T) {
	if got := Dice([]string{"a", "b"}, []string{"b", "c"}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Dice = %v want 0.5", got)
	}
}

func TestCosineTokens(t *testing.T) {
	if got := CosineTokens([]string{"a", "b"}, []string{"a", "b"}); math.Abs(got-1) > 1e-9 {
		t.Errorf("identical cosine = %v", got)
	}
	if got := CosineTokens([]string{"a"}, []string{"b"}); got != 0 {
		t.Errorf("disjoint cosine = %v", got)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestStringSimilarityBounds(t *testing.T) {
	f := func(a, b string) bool {
		s := StringSimilarity(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimilaritySymmetry(t *testing.T) {
	f := func(a, b string) bool {
		ta, tb := Tokenize(a), Tokenize(b)
		return math.Abs(Jaccard(ta, tb)-Jaccard(tb, ta)) < 1e-12 &&
			math.Abs(CosineTokens(ta, tb)-CosineTokens(tb, ta)) < 1e-12 &&
			Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSqrtAgainstMath(t *testing.T) {
	for _, x := range []float64{0, 1e-9, 0.5, 1, 2, 100, 12345.678} {
		if got, want := sqrt(x), math.Sqrt(x); math.Abs(got-want) > 1e-9*(1+want) {
			t.Errorf("sqrt(%v)=%v want %v", x, got, want)
		}
	}
}
