package textutil

// Jaccard returns |A∩B| / |A∪B| over the token sets of a and b.
// Two empty slices are defined to have similarity 1; one empty and one
// non-empty have similarity 0.
func Jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	setA := make(map[string]bool, len(a))
	for _, t := range a {
		setA[t] = true
	}
	setB := make(map[string]bool, len(b))
	for _, t := range b {
		setB[t] = true
	}
	inter := 0
	for t := range setA {
		if setB[t] {
			inter++
		}
	}
	union := len(setA) + len(setB) - inter
	return float64(inter) / float64(union)
}

// Dice returns the Sørensen–Dice coefficient 2|A∩B| / (|A|+|B|) over token
// sets, with the same empty-input conventions as Jaccard.
func Dice(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	setA := make(map[string]bool, len(a))
	for _, t := range a {
		setA[t] = true
	}
	setB := make(map[string]bool, len(b))
	for _, t := range b {
		setB[t] = true
	}
	inter := 0
	for t := range setA {
		if setB[t] {
			inter++
		}
	}
	return 2 * float64(inter) / float64(len(setA)+len(setB))
}

// CosineTokens returns the cosine similarity between the term-frequency
// vectors of the two token slices.
func CosineTokens(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	fa := make(map[string]float64, len(a))
	for _, t := range a {
		fa[t]++
	}
	fb := make(map[string]float64, len(b))
	for _, t := range b {
		fb[t]++
	}
	var dot, na, nb float64
	for t, c := range fa {
		na += c * c
		if cb, ok := fb[t]; ok {
			dot += c * cb
		}
	}
	for _, c := range fb {
		nb += c * c
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (sqrt(na) * sqrt(nb))
}

// Levenshtein returns the edit distance between a and b (unit costs).
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// StringSimilarity returns 1 − Levenshtein(a,b)/max(len(a),len(b)),
// a similarity in [0,1]. Equal strings (including two empties) score 1.
func StringSimilarity(a, b string) float64 {
	if a == b {
		return 1
	}
	la, lb := len([]rune(a)), len([]rune(b))
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(m)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// sqrt is a local Newton-iteration square root so that the package keeps a
// tiny dependency surface; accuracy is ample for similarity scores.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 32; i++ {
		z = (z + x/z) / 2
	}
	return z
}
