package textutil

// Jaccard returns |A∩B| / |A∪B| over the token sets of a and b.
// Two empty slices are defined to have similarity 1; one empty and one
// non-empty have similarity 0.
func Jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	setA := make(map[string]bool, len(a))
	for _, t := range a {
		setA[t] = true
	}
	setB := make(map[string]bool, len(b))
	for _, t := range b {
		setB[t] = true
	}
	inter := 0
	for t := range setA {
		if setB[t] {
			inter++
		}
	}
	union := len(setA) + len(setB) - inter
	return float64(inter) / float64(union)
}

// Dice returns the Sørensen–Dice coefficient 2|A∩B| / (|A|+|B|) over token
// sets, with the same empty-input conventions as Jaccard.
func Dice(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	setA := make(map[string]bool, len(a))
	for _, t := range a {
		setA[t] = true
	}
	setB := make(map[string]bool, len(b))
	for _, t := range b {
		setB[t] = true
	}
	inter := 0
	for t := range setA {
		if setB[t] {
			inter++
		}
	}
	return 2 * float64(inter) / float64(len(setA)+len(setB))
}

// CosineTokens returns the cosine similarity between the term-frequency
// vectors of the two token slices.
func CosineTokens(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	fa := make(map[string]float64, len(a))
	for _, t := range a {
		fa[t]++
	}
	fb := make(map[string]float64, len(b))
	for _, t := range b {
		fb[t]++
	}
	var dot, na, nb float64
	for t, c := range fa {
		na += c * c
		if cb, ok := fb[t]; ok {
			dot += c * cb
		}
	}
	for _, c := range fb {
		nb += c * c
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (sqrt(na) * sqrt(nb))
}

// Levenshtein returns the edit distance between a and b (unit costs).
//
// Matching prefixes and suffixes never contribute edits, so both are trimmed
// before the DP — near-identical strings (the common case for entity-variant
// comparison) reduce to a DP over just the differing middle. Pure-ASCII
// inputs take a byte-indexed path that needs no []rune conversions and at
// most one row allocation (none for short strings); mixed inputs fall back
// to the rune DP. All paths return identical distances.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	if isASCII(a) && isASCII(b) {
		// Byte-wise trimming is safe here: for ASCII, bytes are runes.
		for len(a) > 0 && len(b) > 0 && a[0] == b[0] {
			a, b = a[1:], b[1:]
		}
		for len(a) > 0 && len(b) > 0 && a[len(a)-1] == b[len(b)-1] {
			a, b = a[:len(a)-1], b[:len(b)-1]
		}
		if len(a) == 0 {
			return len(b)
		}
		if len(b) == 0 {
			return len(a)
		}
		return levRow(len(a), len(b), func(i, j int) bool { return a[i] == b[j] })
	}
	ra, rb := []rune(a), []rune(b)
	for len(ra) > 0 && len(rb) > 0 && ra[0] == rb[0] {
		ra, rb = ra[1:], rb[1:]
	}
	for len(ra) > 0 && len(rb) > 0 && ra[len(ra)-1] == rb[len(rb)-1] {
		ra, rb = ra[:len(ra)-1], rb[:len(rb)-1]
	}
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	return levRow(len(ra), len(rb), func(i, j int) bool { return ra[i] == rb[j] })
}

// isASCII reports whether s contains only single-byte runes.
func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// levRow runs the single-row Wagner–Fischer DP over an la×lb grid, with eq
// comparing element i of the first sequence to element j of the second.
// Short second sequences use a stack buffer, so the whole distance
// computation is allocation-free.
func levRow(la, lb int, eq func(i, j int) bool) int {
	var buf [64]int
	var row []int
	if lb < len(buf) {
		row = buf[:lb+1]
	} else {
		row = make([]int, lb+1)
	}
	for j := range row {
		row[j] = j
	}
	for i := 1; i <= la; i++ {
		prev := row[0] // D[i-1][j-1] as j advances
		row[0] = i
		for j := 1; j <= lb; j++ {
			cur := row[j] // D[i-1][j]
			cost := 1
			if eq(i-1, j-1) {
				cost = 0
			}
			row[j] = min3(cur+1, row[j-1]+1, prev+cost)
			prev = cur
		}
	}
	return row[lb]
}

// StringSimilarity returns 1 − Levenshtein(a,b)/max(len(a),len(b)),
// a similarity in [0,1]. Equal strings (including two empties) score 1.
func StringSimilarity(a, b string) float64 {
	if a == b {
		return 1
	}
	la, lb := len([]rune(a)), len([]rune(b))
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(m)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// sqrt is a local Newton-iteration square root so that the package keeps a
// tiny dependency surface; accuracy is ample for similarity scores.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 32; i++ {
		z = (z + x/z) / 2
	}
	return z
}
