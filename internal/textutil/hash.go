package textutil

import "hash/fnv"

// Hash64 returns the FNV-1a 64-bit hash of s. It is the single stable hash
// used across the repository (IDs, embeddings, seeded noise) so that results
// are reproducible run to run.
func Hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// HashN returns Hash64(s) folded into [0, n). n must be > 0.
func HashN(s string, n int) int {
	if n <= 0 {
		panic("textutil: HashN with non-positive n")
	}
	return int(Hash64(s) % uint64(n))
}

// Hash01 maps s to a deterministic pseudo-uniform float in [0,1).
func Hash01(s string) float64 {
	return float64(Hash64(s)>>11) / float64(1<<53)
}
