package textutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDistNormalised(t *testing.T) {
	d := NewDist([]string{"a", "a", "b"}, []string{"c"})
	if math.Abs(d.Total()-1) > 1e-12 {
		t.Fatalf("total = %v, want 1", d.Total())
	}
	if math.Abs(d["a"]-0.5) > 1e-12 {
		t.Fatalf("p(a) = %v, want 0.5", d["a"])
	}
}

func TestEntropyUniform(t *testing.T) {
	d := NewDist([]string{"a", "b", "c", "d"})
	want := math.Log(4)
	if got := d.Entropy(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("H(uniform4) = %v, want %v", got, want)
	}
}

func TestEntropyDegenerate(t *testing.T) {
	d := NewDist([]string{"only", "only"})
	if got := d.Entropy(); got != 0 {
		t.Fatalf("H(point mass) = %v, want 0", got)
	}
}

func TestEntropyNonNegativeProperty(t *testing.T) {
	f := func(words []string) bool {
		if len(words) == 0 {
			return true
		}
		d := NewDist(words)
		h := d.Entropy()
		// 0 <= H <= log(|support|)
		return h >= -1e-12 && h <= math.Log(float64(len(d)))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSupportSorted(t *testing.T) {
	d := NewDist([]string{"zebra", "apple", "mango"})
	sup := d.Support()
	for i := 1; i < len(sup); i++ {
		if sup[i-1] >= sup[i] {
			t.Fatalf("support not sorted: %v", sup)
		}
	}
}

func TestHashDeterminism(t *testing.T) {
	if Hash64("multirag") != Hash64("multirag") {
		t.Fatal("Hash64 must be deterministic")
	}
	if Hash01("x") < 0 || Hash01("x") >= 1 {
		t.Fatalf("Hash01 out of range: %v", Hash01("x"))
	}
	f := func(s string, n uint8) bool {
		m := int(n%100) + 1
		v := HashN(s, m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
