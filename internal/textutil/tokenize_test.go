package textutil

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"Hello, World!", []string{"hello", "world"}},
		{"CA981 PEK->JFK", []string{"ca981", "pek", "jfk"}},
		{"  multiple   spaces ", []string{"multiple", "spaces"}},
		{"a1b2", []string{"a1b2"}},
		{"UPPER lower MiXeD", []string{"upper", "lower", "mixed"}},
		{"2024-10-01 14:30", []string{"2024", "10", "01", "14", "30"}},
		{"---", nil},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeContentDropsStopwords(t *testing.T) {
	got := TokenizeContent("The Lord of the Rings")
	want := []string{"lord", "rings"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TokenizeContent = %v, want %v", got, want)
	}
}

func TestTokenizeContentFallsBackWhenAllStopwords(t *testing.T) {
	got := TokenizeContent("the of and")
	want := []string{"the", "of", "and"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TokenizeContent all-stopword = %v, want %v", got, want)
	}
}

func TestNGrams(t *testing.T) {
	toks := []string{"a", "b", "c", "d"}
	if got := NGrams(toks, 2); !reflect.DeepEqual(got, []string{"a b", "b c", "c d"}) {
		t.Errorf("bigrams = %v", got)
	}
	if got := NGrams(toks, 4); !reflect.DeepEqual(got, []string{"a b c d"}) {
		t.Errorf("4-gram = %v", got)
	}
	if NGrams(toks, 5) != nil || NGrams(toks, 0) != nil {
		t.Errorf("out-of-range n must give nil")
	}
}

func TestNormalizeValue(t *testing.T) {
	if NormalizeValue("  The Matrix ") != NormalizeValue("the matrix") {
		t.Fatal("normalisation must be case/space insensitive")
	}
	if NormalizeValue("A.B.C") != "a b c" {
		t.Fatalf("got %q", NormalizeValue("A.B.C"))
	}
}

func TestTokenizePropertyLowercaseIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := Tokenize(s)
		for _, tok := range once {
			// Re-tokenising a token must return exactly that token.
			again := Tokenize(tok)
			if len(again) != 1 || again[0] != tok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
