package textutil

import (
	"math"
	"sort"
)

// Dist is an empirical probability distribution over tokens. Values need not
// be normalised while a Dist is being accumulated; call Normalize before
// computing information-theoretic quantities.
type Dist map[string]float64

// NewDist builds a term-frequency distribution (already normalised) from the
// given token slices. All slices are pooled.
func NewDist(tokenSlices ...[]string) Dist {
	d := Dist{}
	for _, toks := range tokenSlices {
		for _, t := range toks {
			d[t]++
		}
	}
	d.Normalize()
	return d
}

// Add increments the mass of token t by w.
func (d Dist) Add(t string, w float64) { d[t] += w }

// Total returns the sum of all masses.
func (d Dist) Total() float64 {
	var s float64
	for _, v := range d {
		s += v
	}
	return s
}

// Normalize scales the distribution to sum to 1. A zero-mass distribution is
// left unchanged.
func (d Dist) Normalize() {
	tot := d.Total()
	if tot == 0 {
		return
	}
	for k, v := range d {
		d[k] = v / tot
	}
}

// Entropy returns the Shannon entropy H(d) = −Σ p log p in nats, implementing
// Eq. (6) of the paper. The distribution must be normalised.
func (d Dist) Entropy() float64 {
	var h float64
	for _, p := range d {
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// Support returns the tokens with positive mass, sorted, for deterministic
// iteration.
func (d Dist) Support() []string {
	keys := make([]string, 0, len(d))
	for k, v := range d {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}
