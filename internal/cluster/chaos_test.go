package cluster

import (
	"bytes"
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"multirag/internal/core"
	"multirag/internal/fault"
)

// chaosQueries are the base-corpus questions whose answers are pinned against
// a single-engine reference. Concurrent filler ingest touches only unrelated
// entities, so these answers are independent of how far any replica has
// applied the feed.
var chaosQueries = []string{
	"What is the status of CA981?",
	"What is the delay reason of CA981?",
}

func waitClusterGoroutines(t *testing.T, base int) {
	t.Helper()
	const slack = 10
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d now vs %d at start\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func chaosAnswersEqual(a, b core.Answer) bool {
	if a.Query != b.Query || a.Found != b.Found || a.Degraded != b.Degraded ||
		len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			return false
		}
	}
	return true
}

// TestChaosClusterReplicaFaults is the tentpole chaos scenario: a 3-replica
// cluster under concurrent query + ingest load while one replica is killed
// (replay fault), hung (feed stall with queue overflow), or silently
// corrupted (state swap caught by anti-entropy). Throughout, every answer any
// replica returns is value-identical to a single-engine reference; afterwards
// the faulted replica has fenced, resynced, and converged byte-identical to
// the primary.
func TestChaosClusterReplicaFaults(t *testing.T) {
	scenarios := []struct {
		name string
		arm  func(c *Cluster)    // injects the fault once the cluster is caught up
		hit  func(c *Cluster) bool // reports the fault has landed (polled under load)
		heal func()              // releases whatever the fault left armed
		// corruptIdx marks a replica deliberately serving wrong state until
		// anti-entropy fences it; its querier is skipped (the router-level
		// chaos suite covers shedding). -1 means every replica is compared.
		corruptIdx int
	}{
		{
			name: "kill-replay",
			arm: func(*Cluster) {
				fault.Enable(fault.PointClusterReplay, fault.Fault{Kind: fault.KindError, MaxHits: 1})
			},
			hit:        func(*Cluster) bool { return fault.Hits(fault.PointClusterReplay) >= 1 },
			heal:       func() {},
			corruptIdx: -1,
		},
		{
			name: "hang-feed",
			arm: func(*Cluster) {
				fault.Enable(fault.PointClusterFeed, fault.Fault{Kind: fault.KindHang, MaxHits: 1})
			},
			// The hung pump must back its queue up until frames actually drop,
			// or healing could catch up without ever fencing.
			hit: func(c *Cluster) bool {
				for _, r := range c.Replicas() {
					if r.Status(c.CommittedLSN()).Dropped > 0 {
						return true
					}
				}
				return false
			},
			heal:       func() { fault.Disable(fault.PointClusterFeed) },
			corruptIdx: -1,
		},
		{
			name: "corrupt-state",
			arm: func(c *Cluster) {
				// Swap one replica's state for a snapshot that never came from
				// this primary — only the digest markers can catch this.
				other := core.NewSystem(testConfig())
				if _, err := other.Ingest(fillerBatch(999)); err != nil {
					t.Fatalf("Ingest other: %v", err)
				}
				r := c.Replicas()[0]
				if err := r.System().SeedReplica(stateBytes(other), r.Position()); err != nil {
					t.Fatalf("corrupting seed: %v", err)
				}
			},
			hit: func(c *Cluster) bool {
				return c.Replicas()[0].Status(c.CommittedLSN()).Divergences >= 1
			},
			heal:       func() {},
			corruptIdx: 0,
		},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			defer fault.Reset()
			baseGoroutines := runtime.NumGoroutine()

			primary := core.NewSystem(testConfig())
			reference := core.NewSystem(testConfig())
			for _, b := range corpusBatches() {
				if _, err := primary.Ingest(b); err != nil {
					t.Fatalf("Ingest primary: %v", err)
				}
				if _, err := reference.Ingest(b); err != nil {
					t.Fatalf("Ingest reference: %v", err)
				}
			}
			want := reference.QueryBatch(chaosQueries)

			c, err := New(primary, Config{Replicas: 3, VerifyEvery: 1, QueueLen: 64})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			defer c.Close()
			waitCaughtUp(t, c)
			sc.arm(c)

			// Concurrent load: one ingester committing unrelated entities,
			// one querier per replica comparing every answer to the reference.
			var wg sync.WaitGroup
			stop := make(chan struct{})
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := primary.Ingest(fillerBatch(i)); err != nil {
						t.Errorf("Ingest under load: %v", err)
						return
					}
				}
			}()
			for idx, r := range c.Replicas() {
				if idx == sc.corruptIdx {
					continue // serving deliberately wrong state until fenced
				}
				wg.Add(1)
				go func(r *Replica) {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						got := r.AskEach(make([]context.Context, len(chaosQueries)), chaosQueries)
						for i, ans := range got {
							if !chaosAnswersEqual(ans, want[i]) {
								t.Errorf("%s: answer %+v differs from reference %+v", r.Name(), ans, want[i])
								return
							}
						}
					}
				}(r)
			}
			waitFor(t, "fault to land under load", func() bool { return sc.hit(c) })
			time.Sleep(50 * time.Millisecond)
			close(stop)
			wg.Wait()
			sc.heal()

			// Heal: keep committing until every replica is live at the
			// primary's position (a dropped frame only surfaces as a gap when
			// a later frame arrives).
			poke := 10_000
			waitFor(t, "all replicas live and caught up", func() bool {
				committed := c.CommittedLSN()
				for _, r := range c.Replicas() {
					if r.State() != StateLive || r.Position() != committed {
						if _, err := primary.Ingest(fillerBatch(poke)); err != nil {
							t.Fatalf("Ingest poke: %v", err)
						}
						poke++
						return false
					}
				}
				return true
			})

			wantBytes := stateBytes(primary)
			var resyncs, divergences uint64
			for _, r := range c.Replicas() {
				if !bytes.Equal(stateBytes(r.System()), wantBytes) {
					t.Fatalf("%s differs from primary after healing", r.Name())
				}
				st := r.Status(c.CommittedLSN())
				resyncs += st.Resyncs
				divergences += st.Divergences
			}
			if resyncs == 0 {
				t.Fatal("no replica fenced and resynced under the injected fault")
			}
			if sc.name == "corrupt-state" && divergences == 0 {
				t.Fatal("anti-entropy never caught the corrupted replica")
			}
			for i, ans := range primary.QueryBatch(chaosQueries) {
				if !chaosAnswersEqual(ans, want[i]) {
					t.Fatalf("primary answer %+v differs from reference %+v after chaos", ans, want[i])
				}
			}

			c.Close()
			waitClusterGoroutines(t, baseGoroutines)
		})
	}
}
