package cluster

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"multirag/internal/adapter"
	"multirag/internal/core"
	"multirag/internal/fault"
	"multirag/internal/llm"
	"multirag/internal/wal"
)

// testConfig is the deterministic engine config every cluster test shares —
// the same seed the core equivalence suites pin, so byte-identity failures
// here mean replication bugs, not model noise.
func testConfig() core.Config {
	return core.Config{LLM: llm.Config{Seed: 1, ExtractionNoise: 0, BaseHallucination: 0.02, ConflictSensitivity: 0.6}}
}

// corpusBatches is the case-study corpus split into three ingest batches, so
// tests exercise multiple shipped records.
func corpusBatches() [][]adapter.RawFile {
	files := []adapter.RawFile{
		{Domain: "flights", Source: "airport-api", Name: "schedule", Format: "csv",
			Content: []byte("flight,origin,destination,status\nCA981,PEK,JFK,Delayed\n")},
		{Domain: "flights", Source: "airline-app", Name: "live", Format: "json",
			Content: []byte(`[{"flight":"CA981","status":"Delayed","delay_reason":"Typhoon"}]`)},
		{Domain: "flights", Source: "weather-feed", Name: "alerts", Format: "text",
			Content: []byte("The status of CA981 is Delayed. The delay reason of CA981 is Typhoon.")},
		{Domain: "flights", Source: "forum-user", Name: "posts", Format: "text",
			Content: []byte("The status of CA981 is On time.")},
	}
	return [][]adapter.RawFile{files[:2], files[2:3], files[3:]}
}

// fillerBatch builds one batch about entities unrelated to the base corpus,
// so concurrent ingest cannot change base-query answers.
func fillerBatch(i int) []adapter.RawFile {
	return []adapter.RawFile{{Domain: "flights", Source: "airport-api", Name: fmt.Sprintf("filler-%d", i), Format: "text",
		Content: []byte(fmt.Sprintf("The status of XX%03d is Scheduled.", i))}}
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitCaughtUp waits until every live replica has applied the primary's
// committed position.
func waitCaughtUp(t *testing.T, c *Cluster) {
	t.Helper()
	waitFor(t, "replicas to catch up", func() bool {
		committed := c.CommittedLSN()
		for _, r := range c.Replicas() {
			if r.State() != StateLive || r.Position() != committed {
				return false
			}
		}
		return true
	})
}

func stateBytes(s *core.System) []byte { return s.ServingHandle().Encode() }

// TestClusterReplicasByteIdentical pins the tentpole invariant end to end:
// replicas fed through the in-process channel hold snapshots byte-identical
// to the primary's after every batch, verify anti-entropy markers, and
// answer queries identically.
func TestClusterReplicasByteIdentical(t *testing.T) {
	primary := core.NewSystem(testConfig())
	c, err := New(primary, Config{Replicas: 3, VerifyEvery: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()

	for _, b := range corpusBatches() {
		if _, err := primary.Ingest(b); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	waitCaughtUp(t, c)

	want := stateBytes(primary)
	wantAns := primary.Query("What is the status of CA981?")
	for _, r := range c.Replicas() {
		if !bytes.Equal(stateBytes(r.System()), want) {
			t.Fatalf("%s snapshot differs from primary", r.Name())
		}
		got := r.AskEach([]context.Context{nil}, []string{"What is the status of CA981?"})[0]
		if got.Found != wantAns.Found || len(got.Values) != len(wantAns.Values) || got.Values[0] != wantAns.Values[0] {
			t.Fatalf("%s answer %+v differs from primary %+v", r.Name(), got, wantAns)
		}
		st := r.Status(c.CommittedLSN())
		if st.Verified == 0 {
			t.Fatalf("%s verified no anti-entropy markers: %+v", r.Name(), st)
		}
		if st.Divergences != 0 || st.Resyncs != 0 {
			t.Fatalf("%s fenced on a healthy feed: %+v", r.Name(), st)
		}
	}
}

// TestClusterOverflowFencesAndResyncs pins at-most-once delivery: a pump
// hung at the feed fault point backs its one-slot queue up until frames
// drop; on release the replica sees the LSN gap, fences, resyncs from the
// primary's snapshot, and converges byte-identical.
func TestClusterOverflowFencesAndResyncs(t *testing.T) {
	defer fault.Reset()
	primary := core.NewSystem(testConfig())
	c, err := New(primary, Config{Replicas: 1, VerifyEvery: -1, QueueLen: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	r := c.Replicas()[0]

	batches := corpusBatches()
	if _, err := primary.Ingest(batches[0]); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	waitCaughtUp(t, c)

	fault.Enable(fault.PointClusterFeed, fault.Fault{Kind: fault.KindHang})
	if _, err := primary.Ingest(batches[1]); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	waitFor(t, "pump to hang on the fault", func() bool { return fault.Hits(fault.PointClusterFeed) >= 1 })
	// The pump holds one frame; the queue holds one more; the rest drop.
	for i := 0; i < 3; i++ {
		if _, err := primary.Ingest(fillerBatch(i)); err != nil {
			t.Fatalf("Ingest filler: %v", err)
		}
	}
	waitFor(t, "queue overflow", func() bool { return r.Status(c.CommittedLSN()).Dropped > 0 })
	fault.Disable(fault.PointClusterFeed)

	// A dropped frame only surfaces when a later frame exposes the LSN gap —
	// and that later frame can itself be dropped while the pump drains the
	// backlog. Keep committing until the replica fences and resyncs.
	poke := 100
	waitFor(t, "fence and resync after dropped frames", func() bool {
		if r.Status(c.CommittedLSN()).Resyncs >= 1 {
			return true
		}
		if _, err := primary.Ingest(fillerBatch(poke)); err != nil {
			t.Fatalf("Ingest poke: %v", err)
		}
		poke++
		return false
	})
	waitCaughtUp(t, c)
	st := r.Status(c.CommittedLSN())
	if st.Resyncs == 0 {
		t.Fatalf("replica never resynced after dropped frames: %+v", st)
	}
	if !bytes.Equal(stateBytes(r.System()), stateBytes(primary)) {
		t.Fatal("resynced replica differs from primary")
	}
}

// TestClusterAntiEntropyCatchesDivergence pins the verification tier:
// a replica whose state is silently corrupted (reseeded with a snapshot
// that never came from this primary) passes LSN checks but fails the next
// digest marker, self-fences, and rejoins byte-identical.
func TestClusterAntiEntropyCatchesDivergence(t *testing.T) {
	primary := core.NewSystem(testConfig())
	c, err := New(primary, Config{Replicas: 1, VerifyEvery: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	r := c.Replicas()[0]

	batches := corpusBatches()
	if _, err := primary.Ingest(batches[0]); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	waitCaughtUp(t, c)

	// Corrupt the replica in place: seed it with a different engine's state
	// at the same position. Position checks cannot see this.
	other := core.NewSystem(testConfig())
	if _, err := other.Ingest(fillerBatch(999)); err != nil {
		t.Fatalf("Ingest other: %v", err)
	}
	if err := r.System().SeedReplica(stateBytes(other), r.Position()); err != nil {
		t.Fatalf("corrupting seed: %v", err)
	}

	if _, err := primary.Ingest(batches[1]); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	waitFor(t, "anti-entropy divergence", func() bool { return r.Status(c.CommittedLSN()).Divergences >= 1 })
	waitCaughtUp(t, c)
	if !bytes.Equal(stateBytes(r.System()), stateBytes(primary)) {
		t.Fatal("replica differs from primary after divergence resync")
	}
}

// TestClusterProbeReflectsState pins the router's re-admission contract.
func TestClusterProbeReflectsState(t *testing.T) {
	defer fault.Reset()
	primary := core.NewSystem(testConfig())
	c, err := New(primary, Config{Replicas: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	r := c.Replicas()[0]

	if err := r.Probe(context.Background()); err != nil {
		t.Fatalf("probe on live replica: %v", err)
	}
	r.state.Store(int32(StateFenced))
	if err := r.Probe(context.Background()); err == nil || !strings.Contains(err.Error(), "fenced") {
		t.Fatalf("probe on fenced replica = %v, want fenced error", err)
	}
	r.state.Store(int32(StateLive))
	fault.Enable(fault.PointClusterProbe, fault.Fault{Kind: fault.KindError})
	if err := r.Probe(context.Background()); err == nil {
		t.Fatal("probe ignored the injected fault")
	}
	fault.Disable(fault.PointClusterProbe)
	if err := r.Probe(context.Background()); err != nil {
		t.Fatalf("probe after fault cleared: %v", err)
	}
}

// TestClusterDurablePrimaryLeasesWAL pins the retention contract end to end:
// with a hung replica the feed lease holds every WAL segment it still needs
// across a checkpoint; once the replica resyncs, the next checkpoint prunes.
func TestClusterDurablePrimaryLeasesWAL(t *testing.T) {
	defer fault.Reset()
	fs := wal.NewMemFS()
	const dir = "data"
	primary, _, err := core.OpenFS(fs, dir, testConfig())
	if err != nil {
		t.Fatalf("OpenFS: %v", err)
	}
	defer primary.Close()
	c, err := New(primary, Config{Replicas: 1, VerifyEvery: -1, QueueLen: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	r := c.Replicas()[0]

	// Hang the pump so the replica's position pins the lease at 0.
	fault.Enable(fault.PointClusterFeed, fault.Fault{Kind: fault.KindHang})
	for _, b := range corpusBatches() {
		if _, err := primary.Ingest(b); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	if err := primary.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// The lease (still at 0) must have kept the whole log replayable.
	sr, err := wal.Scan(fs, dir, 0)
	if err != nil {
		t.Fatalf("Scan under lease: %v", err)
	}
	if len(sr.Records) != 3 {
		t.Fatalf("leased scan found %d records, want 3", len(sr.Records))
	}

	fault.Disable(fault.PointClusterFeed)
	// Frames dropped while hung only surface as a gap when a later frame
	// arrives; keep committing until the replica resyncs and catches up.
	poke := 100
	waitFor(t, "replica to resync and catch up", func() bool {
		committed := c.CommittedLSN()
		if r.State() == StateLive && r.Position() == committed {
			return true
		}
		if _, err := primary.Ingest(fillerBatch(poke)); err != nil {
			t.Fatalf("Ingest poke: %v", err)
		}
		poke++
		return false
	})
	if err := primary.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, n := range names {
		if n == "wal-0000000000000000.log" {
			t.Fatalf("genesis segment survived after the lease advanced: %v", names)
		}
	}
	if !bytes.Equal(stateBytes(r.System()), stateBytes(primary)) {
		t.Fatal("replica of durable primary differs")
	}
}

// TestClusterAttachExclusive pins that a second cluster cannot double-attach.
func TestClusterAttachExclusive(t *testing.T) {
	primary := core.NewSystem(testConfig())
	c, err := New(primary, Config{Replicas: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := New(primary, Config{Replicas: 1}); err == nil {
		t.Fatal("second New attached to an occupied primary")
	}
	c.Close()
	c2, err := New(primary, Config{Replicas: 1})
	if err != nil {
		t.Fatalf("New after Close: %v", err)
	}
	c2.Close()
}
