// Package cluster replicates a primary engine onto N read replicas by
// shipping its committed WAL records over an in-process feed and replaying
// them through the same decode/replay path crash recovery uses. The
// replication invariant — every replica snapshot is byte-identical to the
// primary's at the same position — is what lets the serving router spread
// reads across replicas without changing a single answer bit.
//
// The feed is interface-shaped (Feed) so a socket transport can slot in
// later, but the only implementation today is a bounded in-process channel.
// Delivery is at-most-once by design: a sink must never stall the primary's
// commit path, so an overflowing queue drops frames and the replica detects
// the resulting LSN gap, fences itself, and resyncs from the primary's
// current snapshot. Anti-entropy markers (a lazy digest of the primary's
// snapshot every VerifyEvery records) catch the failures gap detection
// cannot: a replica that applied every record but diverged anyway fences and
// resyncs the same way.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"

	"multirag/internal/core"
)

// Frame is one feed message. Record frames carry a WAL record payload at a
// position; marker frames (nil Payload) carry a lazily computed anti-entropy
// digest of the primary snapshot at that position. The digest is a func so
// the commit path never serializes a snapshot — the first replica to verify
// the marker pays the encode, memoized for its siblings.
type Frame struct {
	// LSN is the record's replication position, or for a marker the position
	// a verifying replica must have reached (one past the last record the
	// digest covers).
	LSN uint64
	// Payload is the encoded WAL record; nil marks a digest marker.
	Payload []byte
	// Digest returns the primary's snapshot digest at LSN (markers only).
	Digest func() uint64
}

// Feed is one replica's inbound frame queue. Offer must never block — it is
// called under the primary's commit lock — and reports false when the frame
// was dropped instead of queued. Drain discards everything queued (resync
// preparation; the cluster serializes Drain against Offer).
type Feed interface {
	Offer(f Frame) bool
	Frames() <-chan Frame
	Drain()
	Dropped() uint64
}

// chanFeed is the in-process Feed: a bounded channel with drop-on-overflow.
type chanFeed struct {
	ch      chan Frame
	dropped atomic.Uint64
}

func newChanFeed(n int) *chanFeed { return &chanFeed{ch: make(chan Frame, n)} }

func (f *chanFeed) Offer(fr Frame) bool {
	select {
	case f.ch <- fr:
		return true
	default:
		f.dropped.Add(1)
		return false
	}
}

func (f *chanFeed) Frames() <-chan Frame { return f.ch }

func (f *chanFeed) Drain() {
	for {
		select {
		case <-f.ch:
		default:
			return
		}
	}
}

func (f *chanFeed) Dropped() uint64 { return f.dropped.Load() }

// Config sizes a Cluster.
type Config struct {
	// Replicas is the number of read replicas (default 2).
	Replicas int
	// VerifyEvery inserts an anti-entropy digest marker into every feed after
	// this many shipped records (default 16; < 0 disables markers).
	VerifyEvery int
	// QueueLen bounds each replica's feed queue (default 256). A replica
	// whose queue overflows loses frames, detects the gap, and resyncs.
	QueueLen int
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.VerifyEvery == 0 {
		c.VerifyEvery = 16
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 256
	}
	return c
}

// Cluster owns the primary's replication sink and the replica set. It is the
// fan-out point: one ShipRecord call from the primary becomes one Offer per
// replica feed.
//
// Lock order: the primary's commit lock is held around ShipRecord, which
// takes c.mu — so nothing may call into the primary (lease methods included)
// while holding c.mu.
type Cluster struct {
	primary *core.System
	cfg     Config
	lease   *core.WALLease

	mu sync.Mutex
	// lastLSN is the position after the newest shipped record; lastState the
	// snapshot at that position. Together they are the resync source: a
	// fencing replica reseeds from (lastState, lastLSN) and resumes the feed.
	lastLSN   uint64
	lastState core.SnapshotHandle
	sinceMark int
	replicas  []*Replica
	closed    bool
}

// New attaches to primary as its replication sink, builds cfg.Replicas
// read replicas seeded from the attach-time snapshot, and starts their feed
// pumps. The attach capture is atomic with the subscription, so no commit
// falls between the seed and the first shipped record. A WAL retention lease
// pins the primary's segments at the slowest replica's position (inert on
// in-memory primaries).
func New(primary *core.System, cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	c := &Cluster{primary: primary, cfg: cfg}
	handle, lsn, err := primary.AttachReplication(c)
	if err != nil {
		return nil, err
	}
	c.lastLSN = lsn
	c.lastState = handle
	c.lease = primary.AcquireWALLease(lsn)

	rcfg := primary.Config()
	seed := handle.Encode()
	for i := 0; i < cfg.Replicas; i++ {
		r := newReplica(c, fmt.Sprintf("replica-%d", i), core.NewSystem(rcfg), cfg.QueueLen)
		if err := r.sys.SeedReplica(seed, lsn); err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: seed %s: %w", r.name, err)
		}
		r.next = lsn
		r.applied.Store(lsn)
		c.mu.Lock()
		c.replicas = append(c.replicas, r)
		c.mu.Unlock()
		go r.pump()
	}
	return c, nil
}

// ShipRecord implements core.ReplicationSink: fan the record out to every
// replica feed, plus a digest marker every VerifyEvery records. Runs under
// the primary's commit lock — everything here is non-blocking (bounded
// queues, drop on overflow), and the marker digest is deferred to the first
// replica that verifies it.
func (c *Cluster) ShipRecord(lsn uint64, payload []byte, after core.SnapshotHandle) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.lastLSN = lsn + 1
	c.lastState = after
	frames := make([]Frame, 1, 2)
	frames[0] = Frame{LSN: lsn, Payload: payload}
	if c.cfg.VerifyEvery > 0 {
		c.sinceMark++
		if c.sinceMark >= c.cfg.VerifyEvery {
			c.sinceMark = 0
			frames = append(frames, Frame{LSN: lsn + 1, Digest: sync.OnceValue(after.Digest)})
		}
	}
	for _, r := range c.replicas {
		for _, f := range frames {
			if !r.feed.Offer(f) {
				break // queue full: drop; the replica fences on the gap
			}
		}
	}
	c.mu.Unlock()
}

// captureAndDrain prepares one replica's resync: under c.mu (serializing
// against ShipRecord's enqueues) its queue is emptied and its expected
// position jumped to the newest shipped position, then the matching snapshot
// handle is returned for the caller to encode and seed off-lock. Any frame
// shipped after the capture has LSN >= the returned position, so the resynced
// replica resumes with no gap.
func (c *Cluster) captureAndDrain(r *Replica) (core.SnapshotHandle, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r.feed.Drain()
	r.mu.Lock()
	r.next = c.lastLSN
	r.mu.Unlock()
	return c.lastState, c.lastLSN
}

// advanceLease raises the WAL retention lease to the slowest replica's
// position. Called by replicas after applying; the lease call happens after
// c.mu is released (lease methods take the primary's lock — see lock order).
func (c *Cluster) advanceLease() {
	c.mu.Lock()
	floor := c.lastLSN
	for _, r := range c.replicas {
		if p := r.Position(); p < floor {
			floor = p
		}
	}
	lease := c.lease
	c.mu.Unlock()
	if lease != nil {
		lease.Advance(floor)
	}
}

// Primary returns the engine the cluster replicates.
func (c *Cluster) Primary() *core.System { return c.primary }

// Replicas returns the replica set (fixed after New).
func (c *Cluster) Replicas() []*Replica {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Replica(nil), c.replicas...)
}

// CommittedLSN is the primary's replication position — what the router's
// bounded-staleness guard compares replica positions against.
func (c *Cluster) CommittedLSN() uint64 { return c.primary.ReplicationLSN() }

// Status snapshots every replica for metrics and the CLI.
func (c *Cluster) Status() []ReplicaStatus {
	committed := c.CommittedLSN()
	replicas := c.Replicas()
	out := make([]ReplicaStatus, len(replicas))
	for i, r := range replicas {
		out[i] = r.Status(committed)
	}
	return out
}

// Close detaches from the primary, stops every replica pump, and releases
// the retention lease. Safe to call more than once.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	replicas := append([]*Replica(nil), c.replicas...)
	c.mu.Unlock()

	c.primary.DetachReplication()
	for _, r := range replicas {
		r.cancel()
	}
	for _, r := range replicas {
		<-r.done
		r.sys.Close()
	}
	if c.lease != nil {
		c.lease.Release()
	}
}
