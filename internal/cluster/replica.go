package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"multirag/internal/core"
	"multirag/internal/fault"
)

// State is a replica's health as its own pump sees it.
type State int32

const (
	// StateLive: the replica is applying the feed and serving reads.
	StateLive State = iota
	// StateSyncing: the replica is reseeding from the primary's snapshot.
	StateSyncing
	// StateFenced: the replica detected a gap, a replay failure, or an
	// anti-entropy divergence and has taken itself out of service.
	StateFenced
)

func (s State) String() string {
	switch s {
	case StateLive:
		return "live"
	case StateSyncing:
		return "syncing"
	case StateFenced:
		return "fenced"
	default:
		return "unknown"
	}
}

// ReplicaStatus is one replica's externally visible state.
type ReplicaStatus struct {
	Name    string `json:"name"`
	State   string `json:"state"`
	Applied uint64 `json:"applied_lsn"`
	// Lag is committed-applied at snapshot time (0 when caught up).
	Lag         uint64 `json:"lag"`
	Verified    uint64 `json:"verified"`
	Divergences uint64 `json:"divergences"`
	Resyncs     uint64 `json:"resyncs"`
	Dropped     uint64 `json:"dropped_frames"`
	FenceReason string `json:"fence_reason,omitempty"`
}

// Replica is one read replica: an in-memory engine built from the primary's
// config, fed by its own queue, advanced by a single pump goroutine. Queries
// run concurrently with replays (the engine's snapshots are immutable); only
// the pump mutates replication state.
type Replica struct {
	c      *Cluster
	name   string
	sys    *core.System
	feed   Feed
	ctx    context.Context // canceled by Cluster.Close; releases hung faults
	cancel context.CancelFunc
	done   chan struct{}

	mu          sync.Mutex
	next        uint64 // LSN the pump expects to apply next
	fenceReason string

	state       atomic.Int32
	applied     atomic.Uint64
	verified    atomic.Uint64
	divergences atomic.Uint64
	resyncs     atomic.Uint64
}

func newReplica(c *Cluster, name string, sys *core.System, queueLen int) *Replica {
	ctx, cancel := context.WithCancel(context.Background())
	return &Replica{
		c:      c,
		name:   name,
		sys:    sys,
		feed:   newChanFeed(queueLen),
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
	}
}

// Name returns the replica's stable identifier ("replica-0", ...).
func (r *Replica) Name() string { return r.name }

// State returns the replica's current health state.
func (r *Replica) State() State { return State(r.state.Load()) }

// Position is the replication position the replica has applied through —
// compared against the primary's CommittedLSN by the staleness guard and the
// retention lease.
func (r *Replica) Position() uint64 { return r.applied.Load() }

// System exposes the replica's engine (read-only use: queries, digests).
func (r *Replica) System() *core.System { return r.sys }

// AskEach answers a batch of queries on the replica's snapshot — the routing
// target the serving layer dispatches to. The fault point lets chaos tests
// hang or fail one replica's read path in isolation; an injected error
// degrades the whole batch (the router counts that as a strike).
func (r *Replica) AskEach(ctxs []context.Context, queries []string) []core.Answer {
	ctx := context.Background()
	for _, qc := range ctxs {
		if qc != nil {
			ctx = qc
			break
		}
	}
	if err := fault.Inject(ctx, fault.PointClusterQuery); err != nil {
		out := make([]core.Answer, len(queries))
		for i, q := range queries {
			out[i] = core.Answer{Query: q, Degraded: true, DegradedReason: err.Error()}
		}
		return out
	}
	return r.sys.QueryEach(ctxs, queries)
}

// Probe is the health check the router runs before re-admitting a drained
// replica: it passes only when the replica is live (not fenced or syncing).
func (r *Replica) Probe(ctx context.Context) error {
	if err := fault.Inject(ctx, fault.PointClusterProbe); err != nil {
		return err
	}
	if st := r.State(); st != StateLive {
		return fmt.Errorf("cluster: %s is %s", r.name, st)
	}
	return nil
}

// Status snapshots the replica's counters against the given committed
// position.
func (r *Replica) Status(committed uint64) ReplicaStatus {
	applied := r.applied.Load()
	var lag uint64
	if committed > applied {
		lag = committed - applied
	}
	r.mu.Lock()
	reason := r.fenceReason
	r.mu.Unlock()
	return ReplicaStatus{
		Name:        r.name,
		State:       r.State().String(),
		Applied:     applied,
		Lag:         lag,
		Verified:    r.verified.Load(),
		Divergences: r.divergences.Load(),
		Resyncs:     r.resyncs.Load(),
		Dropped:     r.feed.Dropped(),
		FenceReason: reason,
	}
}

// pump is the replica's single apply loop: frames in feed order, one at a
// time, until the cluster closes.
func (r *Replica) pump() {
	defer close(r.done)
	for {
		select {
		case <-r.ctx.Done():
			return
		case f, ok := <-r.feed.Frames():
			if !ok {
				return
			}
			r.handle(f)
		}
	}
}

// handle applies one frame. Every failure mode funnels into fenceAndResync:
// a feed fault (frame effectively lost), an LSN gap (frames actually lost),
// a replay fault or error (replica state no longer trusted), or a digest
// marker that does not match (silent divergence caught by anti-entropy).
func (r *Replica) handle(f Frame) {
	if err := fault.Inject(r.ctx, fault.PointClusterFeed); err != nil {
		r.fenceAndResync(fmt.Sprintf("feed: %v", err))
		return
	}
	r.mu.Lock()
	next := r.next
	r.mu.Unlock()
	if f.Payload == nil { // anti-entropy digest marker
		if f.LSN != next {
			r.fenceAndResync(fmt.Sprintf("marker at %d but replica at %d: frames lost", f.LSN, next))
			return
		}
		if got, want := r.sys.SnapshotDigest(), f.Digest(); got != want {
			r.divergences.Add(1)
			r.fenceAndResync(fmt.Sprintf("anti-entropy: digest %016x != primary %016x at %d", got, want, f.LSN))
			return
		}
		r.verified.Add(1)
		return
	}
	if f.LSN != next {
		r.fenceAndResync(fmt.Sprintf("feed gap: record %d but replica at %d", f.LSN, next))
		return
	}
	if err := fault.Inject(r.ctx, fault.PointClusterReplay); err != nil {
		r.fenceAndResync(fmt.Sprintf("replay: %v", err))
		return
	}
	if err := r.sys.ReplicaApply(f.Payload); err != nil {
		r.fenceAndResync(fmt.Sprintf("replay: %v", err))
		return
	}
	r.mu.Lock()
	r.next = f.LSN + 1
	r.mu.Unlock()
	r.applied.Store(f.LSN + 1)
	r.c.advanceLease()
}

// fenceAndResync takes the replica out of service, discards its queue, and
// reseeds it from the primary's newest shipped snapshot. The capture is
// serialized against the feed (captureAndDrain holds the cluster lock), so
// the reseeded replica resumes at exactly the position the next frame will
// carry. The expensive parts — encoding and decoding the snapshot — run
// off-lock; a shutdown in progress skips the resync entirely.
func (r *Replica) fenceAndResync(reason string) {
	if r.ctx.Err() != nil {
		return // closing: hung faults release with ctx errors; don't resync
	}
	r.state.Store(int32(StateFenced))
	r.mu.Lock()
	r.fenceReason = reason
	r.mu.Unlock()
	r.resyncs.Add(1)

	handle, lsn := r.c.captureAndDrain(r)
	r.state.Store(int32(StateSyncing))
	if err := r.sys.SeedReplica(handle.Encode(), lsn); err != nil {
		// A just-encoded snapshot failing to decode means memory corruption;
		// stay fenced rather than serve from an unknown state.
		r.state.Store(int32(StateFenced))
		r.mu.Lock()
		r.fenceReason = "resync: " + err.Error()
		r.mu.Unlock()
		return
	}
	r.applied.Store(lsn)
	r.mu.Lock()
	r.fenceReason = ""
	r.mu.Unlock()
	r.state.Store(int32(StateLive))
	r.c.advanceLease()
}
