package llm

import (
	"context"

	"multirag/internal/fault"
)

// Context-aware wrappers over the deterministic Sim. The simulator itself
// never fails, so these exist for the request lifecycle: they refuse to start
// work for a caller whose deadline has already passed, and they carry the
// fault-injection points the chaos suite uses to stand in for a real model
// API's latency spikes, 5xxs, stuck connections and crashes. With no fault
// armed and a live context they delegate verbatim, so context-free callers
// and the determinism suites see bit-identical output.

// GenerateAnswerCtx is GenerateAnswer guarded by ctx and the
// fault.PointLLMGenerate injection point.
func (s *Sim) GenerateAnswerCtx(ctx context.Context, query string, evidence []Evidence) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := fault.Inject(ctx, fault.PointLLMGenerate); err != nil {
		return nil, err
	}
	return s.GenerateAnswer(query, evidence), nil
}

// ExtractEntitiesCtx is ExtractEntities guarded by ctx and the
// fault.PointLLMExtract injection point.
func (s *Sim) ExtractEntitiesCtx(ctx context.Context, text string) ([]Mention, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := fault.Inject(ctx, fault.PointLLMExtract); err != nil {
		return nil, err
	}
	return s.ExtractEntities(text), nil
}

// ExtractTriplesCtx is ExtractTriples guarded by ctx and the
// fault.PointLLMExtract injection point.
func (s *Sim) ExtractTriplesCtx(ctx context.Context, text string, entities []Mention) ([]SPO, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := fault.Inject(ctx, fault.PointLLMExtract); err != nil {
		return nil, err
	}
	return s.ExtractTriples(text, entities), nil
}
