package llm

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func newTestSim() *Sim { return NewSim(DefaultConfig()) }

func TestParseQueryAttributeLookup(t *testing.T) {
	s := newTestSim()
	lf := s.ParseQuery("What is the director of The Matrix?")
	if lf.Intent != "attribute_lookup" {
		t.Fatalf("intent = %q", lf.Intent)
	}
	if !reflect.DeepEqual(lf.Entities, []string{"The Matrix"}) {
		t.Fatalf("entities = %v", lf.Entities)
	}
	if !reflect.DeepEqual(lf.Relations, []string{"director"}) {
		t.Fatalf("relations = %v", lf.Relations)
	}
}

func TestParseQueryMultiHop(t *testing.T) {
	s := newTestSim()
	lf := s.ParseQuery("What is the birthplace of the director of Heat?")
	if lf.Intent != "multi_hop" {
		t.Fatalf("intent = %q", lf.Intent)
	}
	if !reflect.DeepEqual(lf.Entities, []string{"Heat"}) {
		t.Fatalf("entities = %v", lf.Entities)
	}
	if !reflect.DeepEqual(lf.Relations, []string{"director", "birthplace"}) {
		t.Fatalf("relations = %v (want hop order: first director, then birthplace)", lf.Relations)
	}
}

func TestParseQueryComparison(t *testing.T) {
	s := newTestSim()
	lf := s.ParseQuery("Do Heat and Inception have the same director?")
	if lf.Intent != "comparison" {
		t.Fatalf("intent = %q", lf.Intent)
	}
	if len(lf.Entities) != 2 || lf.Entities[0] != "Heat" || lf.Entities[1] != "Inception" {
		t.Fatalf("entities = %v", lf.Entities)
	}
}

func TestParseQueryMultiWordRelation(t *testing.T) {
	s := newTestSim()
	lf := s.ParseQuery("What is the departure time of Flight CA981?")
	if lf.Intent != "attribute_lookup" || len(lf.Relations) != 1 || lf.Relations[0] != "departure_time" {
		t.Fatalf("lf = %+v", lf)
	}
}

func TestExtractEntitiesFromGrammar(t *testing.T) {
	s := newTestSim()
	ms := s.ExtractEntities("The director of The Matrix is Lana Wachowski. According to imdb, the year of The Matrix is 1999.")
	names := map[string]string{}
	for _, m := range ms {
		names[m.Name] = m.Type
	}
	if names["The Matrix"] != "Entity" {
		t.Fatalf("missing subject entity: %v", ms)
	}
	if names["Lana Wachowski"] != "Value" {
		t.Fatalf("missing value mention: %v", ms)
	}
	if names["imdb"] != "Source" {
		t.Fatalf("missing source mention: %v", ms)
	}
}

func TestExtractTriples(t *testing.T) {
	s := NewSim(Config{Seed: 1, ExtractionNoise: 0}) // noise off for exactness
	text := "The director of Heat is Michael Mann. The year of Heat is 1995."
	ents := []Mention{{Name: "Heat", Type: "Entity"}}
	spos := s.ExtractTriples(text, ents)
	if len(spos) != 2 {
		t.Fatalf("got %d triples: %v", len(spos), spos)
	}
	if spos[0].Subject != "Heat" || spos[0].Predicate != "director" || spos[0].Object != "Michael Mann" {
		t.Fatalf("triple[0] = %+v", spos[0])
	}
}

func TestExtractTriplesRespectsEntityList(t *testing.T) {
	s := NewSim(Config{Seed: 1, ExtractionNoise: 0})
	text := "The director of Heat is Michael Mann."
	spos := s.ExtractTriples(text, []Mention{{Name: "Inception"}})
	if len(spos) != 0 {
		t.Fatalf("subject outside entity list must be skipped, got %v", spos)
	}
}

func TestExtractTriplesNoiseIsDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExtractionNoise = 0.5
	a := NewSim(cfg)
	b := NewSim(cfg)
	text := "The director of Heat is Michael Mann. The year of Heat is 1995. The genre of Heat is crime."
	ents := []Mention{{Name: "Heat"}}
	if !reflect.DeepEqual(a.ExtractTriples(text, ents), b.ExtractTriples(text, ents)) {
		t.Fatal("same seed must give identical extractions")
	}
}

func TestStandardize(t *testing.T) {
	s := newTestSim()
	if got := s.Standardize("  The  MATRIX! "); got != "matrix" {
		t.Fatalf("Standardize = %q", got)
	}
	if s.Standardize("Silent Horizon, The") != s.Standardize("The Silent Horizon") {
		t.Fatal("std phase must unify title variants")
	}
	if s.Standardize("Flight CA981") != s.Standardize("CA981") {
		t.Fatal("std phase must unify flight variants")
	}
}

func TestScoreRelevanceBounds(t *testing.T) {
	s := newTestSim()
	f := func(q, d string) bool {
		r := s.ScoreRelevance(q, d)
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	hi := s.ScoreRelevance("director of Heat", "The director of Heat is Michael Mann")
	lo := s.ScoreRelevance("director of Heat", "stock price of ACME rose")
	if hi <= lo {
		t.Fatalf("relevant doc must outscore irrelevant: %v vs %v", hi, lo)
	}
}

func TestJudgeAuthorityMonotoneInDegree(t *testing.T) {
	s := newTestSim()
	low := s.JudgeAuthority(AuthorityContext{NodeID: "n", Degree: 1, MaxDegree: 100, LocalStrength: 0.5, TypeWeight: 0.5, PathSupport: 0.5})
	high := s.JudgeAuthority(AuthorityContext{NodeID: "n", Degree: 100, MaxDegree: 100, LocalStrength: 0.5, TypeWeight: 0.5, PathSupport: 0.5})
	if high <= low {
		t.Fatalf("authority must grow with degree: %v vs %v", low, high)
	}
}

func TestGenerateAnswerFaithfulOnConsensus(t *testing.T) {
	s := newTestSim()
	ev := []Evidence{
		{Value: "Michael Mann", Weight: 5, Source: "a"},
		{Value: "michael mann", Weight: 4, Source: "b"},
	}
	got := s.GenerateAnswer("What is the director of Heat?", ev)
	if len(got) != 1 || strings.ToLower(got[0]) != "michael mann" {
		t.Fatalf("consensus answer = %v", got)
	}
}

func TestGenerateAnswerMultiTruth(t *testing.T) {
	s := NewSim(Config{Seed: 1, BaseHallucination: 0, ConflictSensitivity: 0.0001})
	ev := []Evidence{
		{Value: "Lana Wachowski", Weight: 5},
		{Value: "Lilly Wachowski", Weight: 5},
	}
	got := s.GenerateAnswer("Who directed The Matrix?", ev)
	if len(got) != 2 {
		t.Fatalf("multi-truth answer = %v, want both directors", got)
	}
}

func TestGenerateAnswerHallucinatesUnderConflict(t *testing.T) {
	// With maximal conflict sensitivity and highly conflicting context, a
	// large fraction of queries must be answered from minority evidence.
	s := NewSim(Config{Seed: 7, BaseHallucination: 0, ConflictSensitivity: 1})
	wrong := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		ev := []Evidence{
			{Value: "right", Weight: 1.2},
			{Value: "wrong-a", Weight: 1},
			{Value: "wrong-b", Weight: 1},
		}
		got := s.GenerateAnswer(fmt.Sprintf("q%d", i), ev)
		if len(got) == 0 || got[0] != "right" {
			wrong++
		}
	}
	if wrong < trials/3 {
		t.Fatalf("only %d/%d hallucinations under maximal conflict; model is not conflict-sensitive", wrong, trials)
	}
}

func TestGenerateAnswerCleanContextMostlyFaithful(t *testing.T) {
	s := NewSim(Config{Seed: 7, BaseHallucination: 0.03, ConflictSensitivity: 0.55})
	wrong := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		ev := []Evidence{{Value: "right", Weight: 3}}
		got := s.GenerateAnswer(fmt.Sprintf("q%d", i), ev)
		if len(got) != 1 || got[0] != "right" {
			wrong++
		}
	}
	if wrong > trials/10 {
		t.Fatalf("%d/%d wrong answers with clean context; base hallucination too high", wrong, trials)
	}
}

func TestGenerateAnswerEmptyEvidence(t *testing.T) {
	s := newTestSim()
	if got := s.GenerateAnswer("anything", nil); got != nil {
		t.Fatalf("no evidence must yield abstention, got %v", got)
	}
}

func TestUsageAccounting(t *testing.T) {
	s := newTestSim()
	before := s.Usage()
	s.ParseQuery("What is the director of Heat?")
	s.GenerateAnswer("q", []Evidence{{Value: "v", Weight: 1}})
	after := s.Usage()
	if after.Calls != before.Calls+2 {
		t.Fatalf("calls = %d, want %d", after.Calls, before.Calls+2)
	}
	if after.PromptTokens <= before.PromptTokens {
		t.Fatal("prompt tokens must accumulate")
	}
	if s.VirtualLatency() <= 0 {
		t.Fatal("virtual latency must be positive after calls")
	}
	s.ResetUsage()
	if s.Usage() != (Usage{}) {
		t.Fatal("ResetUsage must clear accounting")
	}
}

func TestCostModelLatency(t *testing.T) {
	u := Usage{Calls: 2, PromptTokens: 100, CompletionTokens: 10}
	c := DefaultCostModel
	want := 2*c.PerCall + 100*c.PerPrompt + 10*c.PerOutput
	if got := c.Latency(u); got != want {
		t.Fatalf("Latency = %v, want %v", got, want)
	}
}

func TestDeterminismAcrossInstances(t *testing.T) {
	cfg := DefaultConfig()
	a, b := NewSim(cfg), NewSim(cfg)
	ev := []Evidence{{Value: "x", Weight: 1}, {Value: "y", Weight: 1}}
	for i := 0; i < 50; i++ {
		q := fmt.Sprintf("query %d", i)
		if !reflect.DeepEqual(a.GenerateAnswer(q, ev), b.GenerateAnswer(q, ev)) {
			t.Fatalf("non-deterministic answer for %q", q)
		}
	}
}
