package llm

import (
	"fmt"
	"sync"
	"testing"
)

// simWorkload exercises every public Sim method once, the way concurrent
// query goroutines do.
func simWorkload(s *Sim, i int) {
	q := fmt.Sprintf("What is the status of CA%03d?", i%7)
	s.ParseQuery(q)
	mentions := s.ExtractEntities("The status of CA981 is Delayed.")
	s.ExtractTriples("The status of CA981 is Delayed.", mentions)
	s.Standardize("Air China")
	s.ScoreRelevance(q, "CA981 Delayed")
	s.JudgeAuthority(AuthorityContext{NodeID: fmt.Sprintf("t%06d", i), Source: "airline", Degree: 3, MaxDegree: 9, LocalStrength: 0.8})
	s.GenerateAnswer(q, []Evidence{
		{Value: "Delayed", Weight: 0.9, Verified: true},
		{Value: "On time", Weight: 0.3},
	})
	s.Usage()
	s.VirtualLatency()
}

// TestSimConcurrentUsageAccounting hammers one Sim from many goroutines
// (run with -race) and checks the mutex-guarded usage box loses no calls:
// the concurrent totals must equal a serial replay of the same workload.
func TestSimConcurrentUsageAccounting(t *testing.T) {
	const goroutines = 16
	const iters = 25

	concurrent := NewSim(DefaultConfig())
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for gr := 0; gr < goroutines; gr++ {
		go func(gr int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				simWorkload(concurrent, gr*iters+i)
			}
		}(gr)
	}
	wg.Wait()

	serial := NewSim(DefaultConfig())
	for gr := 0; gr < goroutines; gr++ {
		for i := 0; i < iters; i++ {
			simWorkload(serial, gr*iters+i)
		}
	}
	if concurrent.Usage() != serial.Usage() {
		t.Fatalf("usage accounting lost updates under contention:\n concurrent %+v\n serial     %+v",
			concurrent.Usage(), serial.Usage())
	}
}

// TestSimDeterministicUnderConcurrency verifies that the per-call outputs are
// pure functions of their inputs regardless of interleaving: every goroutine
// asking the same question must see the same answer.
func TestSimDeterministicUnderConcurrency(t *testing.T) {
	s := NewSim(DefaultConfig())
	ev := []Evidence{{Value: "Delayed", Weight: 0.9, Verified: true}, {Value: "On time", Weight: 0.2}}
	want := s.GenerateAnswer("What is the status of CA981?", ev)

	const goroutines = 12
	results := make([][]string, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for gr := 0; gr < goroutines; gr++ {
		go func(gr int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				results[gr] = s.GenerateAnswer("What is the status of CA981?", ev)
			}
		}(gr)
	}
	wg.Wait()
	for gr, got := range results {
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("goroutine %d got %v, want %v", gr, got, want)
		}
	}
}
