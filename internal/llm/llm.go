// Package llm defines the language-model interface the MultiRAG pipeline is
// built against, plus Sim, a deterministic simulated LLM.
//
// The paper runs Llama3-8B-Instruct (and GPT-3.5-Turbo for the CoT baseline)
// for five narrow sub-tasks: query logic-form generation, entity recognition,
// SPO triple extraction, entity standardisation / authority judging, and
// final answer synthesis. This repository is offline and stdlib-only, so Sim
// replaces the hosted model with deterministic text processing plus a seeded
// hallucination model. The substitution preserves the property the paper's
// experiments measure: when the prompt context contains conflicting evidence,
// the generator's chance of emitting a wrong ("hallucinated") answer rises
// sharply; when the context has been filtered to consistent evidence, it
// answers faithfully. See DESIGN.md §1.
package llm

import (
	"sync"
	"time"
)

// Mention is an entity mention recognised in text.
type Mention struct {
	Name string // surface form
	Type string // coarse type guess ("Entity" when unknown)
}

// SPO is a subject–predicate–object triple extracted from text.
type SPO struct {
	Subject   string
	Predicate string
	Object    string
	// Confidence is the extractor's own score in [0,1] for the triple.
	Confidence float64
}

// LogicForm is the structured reading of a user query produced by the
// logic-form generation step of MKLGP (Alg. 2, line 2).
type LogicForm struct {
	Intent    string   // "attribute_lookup", "multi_hop", "unknown"
	Entities  []string // entity surface forms mentioned by the query
	Relations []string // requested attributes / relations
}

// Evidence is one unit of retrieved context handed to answer synthesis:
// a candidate value with its aggregation weight and originating source.
// Verified marks evidence that passed multi-level confidence filtering and
// therefore reaches the context as an annotated, trustworthy statement; the
// simulated model does not treat verified statements as conflict triggers.
type Evidence struct {
	Value    string
	Weight   float64
	Source   string
	Verified bool
}

// AuthorityContext carries the graph-derived features the expert LLM uses to
// judge a node's authority C_LLM(v): association strength between entities,
// entity-type information and multi-step path information (§III-D.2b).
type AuthorityContext struct {
	NodeID        string
	Source        string  // originating data source name (world-knowledge prior)
	Degree        int     // global influence: node degree in the KG
	MaxDegree     int     // normaliser: max degree observed in the KG
	LocalStrength float64 // mean edge weight to neighbours, in [0,1]
	TypeWeight    float64 // entity-type prior, in [0,1]
	PathSupport   float64 // fraction of 2-hop paths that corroborate the node
}

// Usage accumulates token and call accounting for the virtual-time model.
type Usage struct {
	Calls            int
	PromptTokens     int
	CompletionTokens int
}

// Add merges o into u.
func (u *Usage) Add(o Usage) {
	u.Calls += o.Calls
	u.PromptTokens += o.PromptTokens
	u.CompletionTokens += o.CompletionTokens
}

// Model is the language-model contract used throughout the repository. All
// implementations must be safe for concurrent use.
type Model interface {
	// Name identifies the model ("sim-llama3-8b", ...).
	Name() string
	// ParseQuery performs logic-form generation on a natural-language query.
	ParseQuery(query string) LogicForm
	// ExtractEntities performs NER over free text (ner.py equivalent).
	ExtractEntities(text string) []Mention
	// ExtractTriples extracts SPO triples related to the given entity list
	// (triple.py equivalent).
	ExtractTriples(text string, entities []Mention) []SPO
	// Standardize canonicalises an entity surface form (std.py equivalent).
	Standardize(name string) string
	// ScoreRelevance scores query↔document relevance in [0,1].
	ScoreRelevance(query, doc string) float64
	// JudgeAuthority returns the raw expert authority score C_LLM(v) in
	// [0,1]; Eq. (10)'s sigmoid is applied by internal/confidence.
	JudgeAuthority(ctx AuthorityContext) float64
	// GenerateAnswer synthesises answer values from evidence. The returned
	// slice may contain multiple values (multi-truth answers) and, for
	// conflicted unfiltered contexts, hallucinated ones.
	GenerateAnswer(query string, evidence []Evidence) []string
	// Usage returns a snapshot of accumulated token accounting.
	Usage() Usage
	// VirtualLatency converts the accumulated usage into simulated
	// wall-clock latency (see DESIGN.md: virtual-time model).
	VirtualLatency() time.Duration
	// ResetUsage clears the accounting (used between benchmark cells).
	ResetUsage()
}

// CostModel prices simulated LLM traffic. The defaults approximate a locally
// served 8B model: tens of milliseconds of fixed overhead per call plus a
// per-token generation cost.
type CostModel struct {
	PerCall   time.Duration
	PerPrompt time.Duration // per prompt token
	PerOutput time.Duration // per completion token
}

// DefaultCostModel is used when a Config leaves Cost zeroed.
var DefaultCostModel = CostModel{
	PerCall:   40 * time.Millisecond,
	PerPrompt: 120 * time.Microsecond,
	PerOutput: 2 * time.Millisecond,
}

// Latency prices a usage snapshot.
func (c CostModel) Latency(u Usage) time.Duration {
	return time.Duration(u.Calls)*c.PerCall +
		time.Duration(u.PromptTokens)*c.PerPrompt +
		time.Duration(u.CompletionTokens)*c.PerOutput
}

// usageBox is the concurrency-safe accounting shared by Sim methods.
type usageBox struct {
	mu sync.Mutex
	u  Usage
}

func (b *usageBox) record(prompt, completion int) {
	b.mu.Lock()
	b.u.Calls++
	b.u.PromptTokens += prompt
	b.u.CompletionTokens += completion
	b.mu.Unlock()
}

func (b *usageBox) add(u Usage) {
	b.mu.Lock()
	b.u.Add(u)
	b.mu.Unlock()
}

func (b *usageBox) snapshot() Usage {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.u
}

func (b *usageBox) reset() {
	b.mu.Lock()
	b.u = Usage{}
	b.mu.Unlock()
}
