package llm

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"time"

	"multirag/internal/textutil"
)

// Config parameterises the simulated model.
type Config struct {
	// Seed drives every pseudo-random decision; equal seeds give equal runs.
	Seed uint64
	// BaseHallucination is the probability of a wrong answer even with a
	// perfectly consistent context (the LLM's residual internal-knowledge
	// hallucination, §I of the paper).
	BaseHallucination float64
	// ConflictSensitivity scales how fast the hallucination probability
	// grows with the conflict rate of the prompt context. This is the
	// load-bearing knob: retrieval pipelines that do not filter conflicting
	// evidence pay for it here.
	ConflictSensitivity float64
	// ExtractionNoise is the per-sentence probability that triple extraction
	// drops or corrupts a triple.
	ExtractionNoise float64
	// AcceptFraction controls multi-truth answers: value groups whose weight
	// is at least AcceptFraction × the top group's weight are all returned.
	AcceptFraction float64
	// Cost prices calls for the virtual-time model; zero means
	// DefaultCostModel.
	Cost CostModel
}

// DefaultConfig mirrors the behaviour calibrated against the paper's reported
// baseline accuracy bands.
func DefaultConfig() Config {
	return Config{
		Seed:                1,
		BaseHallucination:   0.03,
		ConflictSensitivity: 0.9,
		ExtractionNoise:     0.05,
		AcceptFraction:      0.5,
		Cost:                DefaultCostModel,
	}
}

// Sim is the deterministic simulated LLM. It is safe for concurrent use.
type Sim struct {
	cfg   Config
	name  string
	usage usageBox
}

var _ Model = (*Sim)(nil)

// NewSim builds a simulated model from cfg, filling zeroed fields with the
// defaults.
func NewSim(cfg Config) *Sim {
	def := DefaultConfig()
	if cfg.ConflictSensitivity == 0 {
		cfg.ConflictSensitivity = def.ConflictSensitivity
	}
	if cfg.AcceptFraction == 0 {
		cfg.AcceptFraction = def.AcceptFraction
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = def.Cost
	}
	return &Sim{cfg: cfg, name: "sim-llama3-8b"}
}

// Name implements Model.
func (s *Sim) Name() string { return s.name }

// Fork returns a Sim with the same configuration (and therefore bit-identical
// outputs — every decision is keyed only by the seed and the input text) but a
// private usage tally. The pipelined ingest engine forks the ingest model once
// per Ingest call, so concurrent extraction fan-outs meter their virtual LLM
// latency per caller instead of reading interleaved before/after diffs off one
// shared counter.
func (s *Sim) Fork() *Sim { return &Sim{cfg: s.cfg, name: s.name} }

// AddUsage folds an externally accumulated tally (typically a Fork's) into
// this model's accounting, keeping aggregate Usage views exact when work is
// metered on forks.
func (s *Sim) AddUsage(u Usage) { s.usage.add(u) }

// coin returns a deterministic pseudo-uniform draw in [0,1) keyed by the
// model seed and the given key.
func (s *Sim) coin(key string) float64 {
	return textutil.Hash01(fmt.Sprintf("%d|%s", s.cfg.Seed, key))
}

var (
	reMultiHopQ   = regexp.MustCompile(`(?i)^\s*what\s+is\s+the\s+(.+?)\s+of\s+the\s+(.+?)\s+of\s+(.+?)\s*\??\s*$`)
	reAttrQ       = regexp.MustCompile(`(?i)^\s*what\s+is\s+the\s+(.+?)\s+of\s+(.+?)\s*\??\s*$`)
	reComparisonQ = regexp.MustCompile(`(?i)^\s*do\s+(.+?)\s+and\s+(.+?)\s+have\s+the\s+same\s+(.+?)\s*\??\s*$`)
	reStatusQ     = regexp.MustCompile(`(?i)^\s*what\s+is\s+the\s+(?:real-?time\s+)?(.+?)\s+of\s+(.+?)\s*\??\s*$`)
	reFact        = regexp.MustCompile(`(?i)^\s*(?:according to ([\w &'-]+?)\s*,\s*)?the\s+([\w -]+?)\s+of\s+(.+?)\s+(?:is|was|are|were)\s+(.+?)\s*$`)
)

// ParseQuery implements logic-form generation (MKLGP line 2). It recognises
// the query grammars the benchmark datasets emit and falls back to NER for
// anything else. Temporal qualifiers ("real-time", "current") are dropped
// from the requested attribute.
func (s *Sim) ParseQuery(query string) LogicForm {
	s.usage.record(tokens(query)+12, 24)
	for _, qualifier := range []string{"real-time ", "real time ", "current ", "latest "} {
		query = strings.ReplaceAll(query, qualifier, "")
		query = strings.ReplaceAll(query, strings.Title(qualifier), "")
	}
	if m := reMultiHopQ.FindStringSubmatch(query); m != nil {
		return LogicForm{
			Intent:    "multi_hop",
			Entities:  []string{strings.TrimSpace(m[3])},
			Relations: []string{normRel(m[2]), normRel(m[1])},
		}
	}
	if m := reComparisonQ.FindStringSubmatch(query); m != nil {
		return LogicForm{
			Intent:    "comparison",
			Entities:  []string{strings.TrimSpace(m[1]), strings.TrimSpace(m[2])},
			Relations: []string{normRel(m[3])},
		}
	}
	if m := reAttrQ.FindStringSubmatch(query); m != nil {
		return LogicForm{
			Intent:    "attribute_lookup",
			Entities:  []string{strings.TrimSpace(m[2])},
			Relations: []string{normRel(m[1])},
		}
	}
	if m := reStatusQ.FindStringSubmatch(query); m != nil {
		return LogicForm{
			Intent:    "attribute_lookup",
			Entities:  []string{strings.TrimSpace(m[2])},
			Relations: []string{normRel(m[1])},
		}
	}
	var lf LogicForm
	lf.Intent = "unknown"
	for _, men := range s.ExtractEntities(query) {
		lf.Entities = append(lf.Entities, men.Name)
	}
	return lf
}

func normRel(rel string) string {
	return strings.Join(textutil.Tokenize(rel), "_")
}

// ExtractEntities implements NER (ner.py equivalent): entities are the
// subjects and objects of the benchmark sentence grammar, with a
// capitalised-run fallback for free text.
func (s *Sim) ExtractEntities(text string) []Mention {
	s.usage.record(tokens(text)+20, 16)
	seen := map[string]bool{}
	var out []Mention
	add := func(name, typ string) {
		name = strings.TrimSpace(name)
		if name == "" {
			return
		}
		key := strings.ToLower(name)
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, Mention{Name: name, Type: typ})
	}
	for _, sent := range splitSentences(text) {
		if m := reFact.FindStringSubmatch(sent); m != nil {
			add(m[3], "Entity")
			add(m[4], "Value")
			if m[1] != "" {
				add(m[1], "Source")
			}
			continue
		}
		// Fallback: runs of capitalised words.
		for _, run := range capitalRuns(sent) {
			add(run, "Entity")
		}
	}
	return out
}

// ExtractTriples implements SPO extraction (triple.py equivalent) with
// seeded extraction noise: each matched sentence is dropped or its object
// corrupted with probability ExtractionNoise, mimicking imperfect LLM
// extraction.
func (s *Sim) ExtractTriples(text string, entities []Mention) []SPO {
	s.usage.record(tokens(text)+len(entities)*3+24, 32)
	known := map[string]bool{}
	for _, e := range entities {
		known[strings.ToLower(strings.TrimSpace(e.Name))] = true
	}
	var out []SPO
	for _, sent := range splitSentences(text) {
		m := reFact.FindStringSubmatch(sent)
		if m == nil {
			continue
		}
		subj := strings.TrimSpace(m[3])
		pred := normRel(m[2])
		obj := strings.TrimSpace(m[4])
		// triple.py's instruction: extracted SPO must relate to the entity
		// list. Unknown subjects are skipped when an entity list is given.
		if len(known) > 0 && !known[strings.ToLower(subj)] {
			continue
		}
		conf := 0.92
		if m[1] != "" {
			// Attributed / reported speech ("According to X, ...") is a
			// hedged claim and extracts with slightly lower confidence.
			conf = 0.85
		}
		if s.cfg.ExtractionNoise > 0 {
			draw := s.coin("extract|" + sent)
			if draw < s.cfg.ExtractionNoise/2 {
				continue // dropped triple
			}
			if draw < s.cfg.ExtractionNoise {
				obj = corruptValue(obj, s.cfg.Seed) // corrupted object
				conf = 0.41
			}
		}
		out = append(out, SPO{Subject: subj, Predicate: pred, Object: obj, Confidence: conf})
	}
	return out
}

// Standardize implements entity standardisation (std.py equivalent): the
// canonical lower-cased, punctuation-free form with decorative tokens
// stripped, unifying cross-source surface variants of one entity.
func (s *Sim) Standardize(name string) string {
	s.usage.record(tokens(name)+6, tokens(name))
	return textutil.StandardizeName(name)
}

// ScoreRelevance scores query↔document relevance as content-token cosine with
// a small seeded jitter (LLM scoring is never perfectly calibrated).
func (s *Sim) ScoreRelevance(query, doc string) float64 {
	s.usage.record(tokens(query)+tokens(doc)+8, 4)
	base := textutil.CosineTokens(textutil.TokenizeContent(query), textutil.TokenizeContent(doc))
	jitter := (s.coin("rel|"+query+"|"+doc) - 0.5) * 0.04
	return clamp01(base + jitter)
}

// JudgeAuthority returns C_LLM(v): the expert model's raw authority estimate
// combining global influence (degree), local connection strength, entity-type
// information, multi-step path support and the model's world knowledge about
// the publishing source, per §III-D.2b / PTCA [33]. The source prior is what
// lets the Table V case study score ForumUser123 at 0.47 against the airline
// app's 0.89.
func (s *Sim) JudgeAuthority(ctx AuthorityContext) float64 {
	s.usage.record(48, 6)
	var deg float64
	if ctx.MaxDegree > 0 {
		deg = float64(ctx.Degree) / float64(ctx.MaxDegree)
	}
	score := 0.30*deg + 0.25*ctx.LocalStrength + 0.10*ctx.TypeWeight +
		0.15*ctx.PathSupport + 0.20*sourcePrior(ctx.Source)
	score += (s.coin("auth|"+ctx.NodeID) - 0.5) * 0.1
	return clamp01(score)
}

// sourcePrior encodes the expert model's world knowledge about source
// classes: community content scores low, institutional feeds high, unknown
// sources neutral.
func sourcePrior(source string) float64 {
	l := strings.ToLower(source)
	for _, bad := range []string{"forum", "user", "blog", "post", "social", "scraper"} {
		if strings.Contains(l, bad) {
			return 0.2
		}
	}
	for _, good := range []string{"wiki", "official", "api", "feed", "airline", "airport", "gov"} {
		if strings.Contains(l, good) {
			return 0.8
		}
	}
	return 0.5
}

// GenerateAnswer synthesises the final answer values from evidence.
//
// Mechanics: evidence is grouped by normalised value; the conflict rate of
// the context is 1 − w(top)/w(total). The model hallucinates with probability
// BaseHallucination + ConflictSensitivity × conflict (deterministic seeded
// draw); a hallucinated answer is drawn from the minority (conflicting)
// groups — exactly the "misguidance and comprehension bias" failure mode of
// §I. Otherwise it faithfully returns every group within AcceptFraction of
// the leader, supporting multi-truth answers.
func (s *Sim) GenerateAnswer(query string, evidence []Evidence) []string {
	promptTok := tokens(query)
	for _, ev := range evidence {
		promptTok += tokens(ev.Value) + 2
	}
	if len(evidence) == 0 {
		s.usage.record(promptTok+16, 4)
		return nil
	}
	type group struct {
		repr       string
		weight     float64
		unverified float64
	}
	byNorm := map[string]*group{}
	var order []string
	var total float64
	for _, ev := range evidence {
		w := ev.Weight
		if w <= 0 {
			w = 1
		}
		total += w
		key := textutil.NormalizeValue(ev.Value)
		g, ok := byNorm[key]
		if !ok {
			g = &group{repr: ev.Value}
			byNorm[key] = g
			order = append(order, key)
		}
		g.weight += w
		if !ev.Verified {
			g.unverified += w
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		gi, gj := byNorm[order[i]], byNorm[order[j]]
		if gi.weight != gj.weight {
			return gi.weight > gj.weight
		}
		return order[i] < order[j]
	})
	top := byNorm[order[0]]
	// Conflict is the share of *unverified* mass disagreeing with the leading
	// value: raw contradictory snippets mislead the model (§I), whereas
	// confidence-annotated verified statements — including legitimate
	// multi-truth answers — do not.
	var conflict float64
	for _, key := range order[1:] {
		conflict += byNorm[key].unverified
	}
	conflict /= total
	p := clamp01(s.cfg.BaseHallucination + s.cfg.ConflictSensitivity*conflict)
	if p > 0.95 {
		p = 0.95
	}
	key := "gen|" + query + "|" + strings.Join(order, ";")
	var out []string
	if s.coin(key) < p && len(order) > 1 {
		// Hallucinate: the model latches onto conflicting minority context.
		pick := 1 + int(textutil.Hash64(key+"|pick")%uint64(len(order)-1))
		out = append(out, byNorm[order[pick]].repr)
		// Occasionally it also blends in a fabricated variant.
		if s.coin(key+"|blend") < 0.25 {
			out = append(out, corruptValue(top.repr, s.cfg.Seed))
		}
	} else {
		threshold := s.cfg.AcceptFraction * top.weight
		for _, k := range order {
			if byNorm[k].weight >= threshold {
				out = append(out, byNorm[k].repr)
			}
		}
	}
	compTok := 0
	for _, v := range out {
		compTok += tokens(v) + 1
	}
	s.usage.record(promptTok+16, compTok+4)
	return out
}

// Usage implements Model.
func (s *Sim) Usage() Usage { return s.usage.snapshot() }

// VirtualLatency implements Model.
func (s *Sim) VirtualLatency() time.Duration { return s.cfg.Cost.Latency(s.usage.snapshot()) }

// ResetUsage implements Model.
func (s *Sim) ResetUsage() { s.usage.reset() }

// --- helpers ---

func tokens(s string) int { return len(textutil.Tokenize(s)) }

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func splitSentences(text string) []string {
	var out []string
	for _, part := range strings.FieldsFunc(text, func(r rune) bool { return r == '.' || r == '\n' || r == ';' }) {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

// capitalRuns extracts maximal runs of capitalised words ("Air China",
// "Beijing Capital International Airport") from a sentence.
func capitalRuns(sent string) []string {
	words := strings.Fields(sent)
	var runs []string
	var cur []string
	flush := func() {
		if len(cur) > 0 {
			runs = append(runs, strings.Join(cur, " "))
			cur = nil
		}
	}
	for _, w := range words {
		trimmed := strings.Trim(w, ",:;!?()\"'")
		if trimmed == "" {
			flush()
			continue
		}
		first := rune(trimmed[0])
		if first >= 'A' && first <= 'Z' {
			cur = append(cur, trimmed)
		} else {
			flush()
		}
	}
	flush()
	return runs
}

// corruptValue deterministically perturbs a value to fabricate a plausible
// but wrong variant (the fabrication half of hallucination).
func corruptValue(v string, seed uint64) string {
	toks := textutil.Tokenize(v)
	if len(toks) == 0 {
		return v + "-x"
	}
	i := int(textutil.Hash64(fmt.Sprintf("%d|corrupt|%s", seed, v)) % uint64(len(toks)))
	toks[i] = toks[i] + fmt.Sprintf("%d", textutil.Hash64(v)%97)
	return strings.Join(toks, " ")
}
