package serve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"multirag"
	"multirag/internal/fault"
)

// Read routing policies (Config.Route).
const (
	// RouteRoundRobin spreads batches across eligible replicas in turn.
	RouteRoundRobin = "round-robin"
	// RouteLeastLoaded picks the eligible replica with the fewest batches in
	// flight.
	RouteLeastLoaded = "least-loaded"
	// RoutePrimaryOnly sends every batch to the primary; replicas only apply
	// the feed (a warm-standby layout).
	RoutePrimaryOnly = "primary-only"
)

// DefaultMaxLag is the bounded-staleness default: a replica more than this
// many commits behind the primary is ineligible until it catches up.
const DefaultMaxLag = 256

// defaultHedgeProbeTimeout bounds a router health probe.
const defaultHedgeProbeTimeout = time.Second

// errHedgeLost is the breaker strike recorded against a replica whose answer
// lost a hedged race — a latency failure, not a correctness one, but enough
// consecutive losses drain the replica until a probe re-admits it.
var errHedgeLost = errors.New("serve: hedged read lost the race")

// errReplicaDegraded classifies a batch whose answers degraded for an
// engine-side reason (not the request's own deadline or disconnect).
var errReplicaDegraded = errors.New("serve: replica returned degraded answers")

// router spreads query batches across a replica set, gated per replica by
// health (live state + a circuit breaker) and bounded staleness, with
// optional hedged dispatch. Replication keeps replicas byte-identical to the
// primary, so routing is invisible in answer values; the router's job is
// purely availability and tail latency:
//
//   - Eligibility: a replica serves only while live (applying its feed), its
//     breaker is closed, and it is within MaxLag commits of the primary.
//   - Failover: batches fall back to the primary when no replica is eligible
//     or the picked replica fails mid-flight; an erroring replica's breaker
//     trips after consecutive failures and a background probe (single-flight,
//     via fault.PointClusterProbe) re-admits it once healthy.
//   - Hedging: when HedgeAfter > 0, a batch still unanswered after that delay
//     is dispatched again to a second target; the first answer wins and the
//     loser's work is canceled through per-request merged contexts. A replica
//     that loses the race takes a breaker strike, so a consistently slow
//     replica drains instead of dragging the tail forever.
type router struct {
	sys        *multirag.System
	set        *multirag.ReplicaSet
	route      string
	hedgeAfter time.Duration
	maxLag     uint64
	targets    []*target
	rr         atomic.Uint64

	primaryBatches atomic.Uint64
	replicaBatches atomic.Uint64
	hedges         atomic.Uint64
	hedgeWins      atomic.Uint64
	failovers      atomic.Uint64
}

// target is one routable replica with its health gate.
type target struct {
	rep      *multirag.Replica
	breaker  *fault.Breaker
	inflight atomic.Int64
	probing  atomic.Bool
}

// newRouter validates the routing config and builds the router. A nil
// replica set returns a nil router (primary-only serving, zero overhead).
func newRouter(sys *multirag.System, set *multirag.ReplicaSet, route string, hedgeAfter time.Duration, maxLag uint64) (*router, error) {
	if set == nil {
		return nil, nil
	}
	switch route {
	case "":
		route = RouteRoundRobin
	case RouteRoundRobin, RouteLeastLoaded, RoutePrimaryOnly:
	default:
		return nil, fmt.Errorf("serve: unknown route %q (want %s, %s or %s)",
			route, RouteRoundRobin, RouteLeastLoaded, RoutePrimaryOnly)
	}
	if maxLag == 0 {
		maxLag = DefaultMaxLag
	}
	rt := &router{sys: sys, set: set, route: route, hedgeAfter: hedgeAfter, maxLag: maxLag}
	for _, rep := range set.Replicas() {
		rt.targets = append(rt.targets, &target{
			rep:     rep,
			breaker: fault.NewBreaker("router."+rep.Name(), 3, time.Second, nil),
		})
	}
	return rt, nil
}

// run serves one formed batch through the routing policy.
func (rt *router) run(ctxs []context.Context, queries []string) []multirag.Answer {
	first := rt.pickExcept(nil)
	if first == nil {
		rt.primaryBatches.Add(1)
		return rt.sys.AskEach(ctxs, queries)
	}
	if rt.hedgeAfter <= 0 {
		// Unhedged: the replica sees the original contexts, so a batch with no
		// deadlines takes the engine's context-free path — bit-identical to
		// primary serving.
		rt.replicaBatches.Add(1)
		ans, err := rt.askTarget(first, ctxs, queries)
		if ans == nil || isRealError(err) {
			rt.failovers.Add(1)
			return rt.sys.AskEach(ctxs, queries)
		}
		return ans
	}
	return rt.hedge(first, ctxs, queries)
}

// askTarget runs one batch on a replica under its breaker, recording the
// outcome: clean answers close/confirm the breaker, engine-side degradation
// counts as a failure, the request's own deadline or disconnect is neutral.
// A nil answer slice means the breaker fast-failed and nothing ran.
func (rt *router) askTarget(t *target, ctxs []context.Context, queries []string) ([]multirag.Answer, error) {
	t.inflight.Add(1)
	defer t.inflight.Add(-1)
	var ans []multirag.Answer
	err := t.breaker.Do(func() error {
		ans = t.rep.AskEach(ctxs, queries)
		return classifyAnswers(ans)
	})
	return ans, err
}

// hedge dispatches the batch to first, then — if no answer lands within
// hedgeAfter — to a second target (another replica, or the primary when none
// is eligible). The first acceptable answer wins; both dispatch contexts are
// canceled on return, so the loser's evaluation stops claiming work and its
// executor-side goroutines wind down promptly. A replica that loses to the
// hedge takes a breaker strike; a dispatch that fails outright triggers the
// hedge immediately (failover, not hedging).
func (rt *router) hedge(first *target, ctxs []context.Context, queries []string) []multirag.Answer {
	type result struct {
		ans  []multirag.Answer
		err  error
		from *target // nil = primary
	}
	resc := make(chan result, 2) // buffered: the loser's send never blocks or leaks
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	launch := func(t *target) {
		stop, cancel := context.WithCancel(context.Background())
		cancels = append(cancels, cancel)
		mctxs := mergeCtxs(stop, ctxs)
		go func() {
			if t == nil {
				resc <- result{ans: rt.sys.AskEach(mctxs, queries)}
				return
			}
			ans, err := rt.askTarget(t, mctxs, queries)
			resc <- result{ans: ans, err: err, from: t}
		}()
	}

	rt.replicaBatches.Add(1)
	launch(first)
	timer := time.NewTimer(rt.hedgeAfter)
	defer timer.Stop()

	hedged := false
	pending := 1
	for {
		select {
		case r := <-resc:
			pending--
			if r.ans != nil && !isRealError(r.err) {
				if hedged && r.from != first {
					rt.hedgeWins.Add(1)
					// Strike the laggard asynchronously — its own Do is still
					// in flight and will record neutrally once its merged
					// context cancels.
					go func(t *target) { _ = t.breaker.Do(func() error { return errHedgeLost }) }(first)
				}
				return r.ans
			}
			if !hedged {
				// The only dispatch failed outright: hedge now (failover).
				hedged = true
				rt.failovers.Add(1)
				launch(rt.pickExcept(first))
				pending++
				continue
			}
			if pending == 0 {
				// Both attempts failed; the primary is the last resort.
				rt.failovers.Add(1)
				return rt.sys.AskEach(ctxs, queries)
			}
		case <-timer.C:
			if !hedged {
				hedged = true
				rt.hedges.Add(1)
				launch(rt.pickExcept(first))
				pending++
			}
		}
	}
}

// pickExcept selects an eligible target other than skip, or nil for the
// primary. Replicas with an open breaker get a background probe kicked so
// they can re-admit once healthy.
func (rt *router) pickExcept(skip *target) *target {
	if rt.route == RoutePrimaryOnly {
		return nil
	}
	committed := rt.set.CommittedLSN()
	var elig []*target
	for _, t := range rt.targets {
		if t == skip {
			continue
		}
		if t.breaker.State() != fault.BreakerClosed {
			rt.kickProbe(t)
			continue
		}
		if !t.rep.Live() {
			continue
		}
		if pos := t.rep.Position(); committed > pos && committed-pos > rt.maxLag {
			continue // bounded staleness: too far behind
		}
		elig = append(elig, t)
	}
	if len(elig) == 0 {
		return nil
	}
	switch rt.route {
	case RouteLeastLoaded:
		best := elig[0]
		load := best.inflight.Load()
		for _, t := range elig[1:] {
			if l := t.inflight.Load(); l < load {
				best, load = t, l
			}
		}
		return best
	default: // round-robin
		return elig[int((rt.rr.Add(1)-1)%uint64(len(elig)))]
	}
}

// kickProbe starts one background health probe for a breaker-drained target
// (single-flight per target). The probe runs under the breaker, so its
// verdict drives the open→half-open→closed machine; fault.PointClusterProbe
// lets chaos tests hold a replica out of service.
func (rt *router) kickProbe(t *target) {
	if !t.probing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer t.probing.Store(false)
		ctx, cancel := context.WithTimeout(context.Background(), defaultHedgeProbeTimeout)
		defer cancel()
		_ = t.breaker.Do(func() error { return t.rep.Probe(ctx) })
	}()
}

// classifyAnswers maps a batch outcome onto breaker semantics: any answer
// degraded for an engine-side reason is a failure; degradation caused only
// by the requests' own deadlines or disconnects is neutral (context error);
// clean batches are successes.
func classifyAnswers(answers []multirag.Answer) error {
	sawCtx := false
	for _, a := range answers {
		if !a.Degraded {
			continue
		}
		switch a.DegradedReason {
		case "canceled":
			sawCtx = true
		case "deadline":
			sawCtx = true
		default:
			return fmt.Errorf("%w: %s", errReplicaDegraded, a.DegradedReason)
		}
	}
	if sawCtx {
		return context.Canceled
	}
	return nil
}

// isRealError reports whether err should fail the batch over to another
// target. Context errors are the requests' own doing — re-running elsewhere
// cannot help — and nil is success.
func isRealError(err error) bool {
	return err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// mergeCtxs derives one context per request that cancels when either the
// request's own context or the dispatch-wide stop context ends — how a
// hedged dispatch's work is reclaimed the moment the other copy wins,
// without detaching any request from its deadline or disconnect signal.
func mergeCtxs(stop context.Context, ctxs []context.Context) []context.Context {
	out := make([]context.Context, len(ctxs))
	for i, c := range ctxs {
		if c == nil || c.Done() == nil {
			out[i] = stop
			continue
		}
		mc, cancel := context.WithCancel(stop)
		// AfterFunc's handle is released when c ends (request lifetime); the
		// merged context itself is released via stop's cancel.
		_ = context.AfterFunc(c, cancel)
		out[i] = mc
	}
	return out
}

// RouterMetrics is the /v1/metrics routing section.
type RouterMetrics struct {
	Route            string                   `json:"route"`
	HedgeAfterMillis int64                    `json:"hedge_after_ms"`
	MaxLag           uint64                   `json:"max_lag"`
	CommittedLSN     uint64                   `json:"committed_lsn"`
	PrimaryBatches   uint64                   `json:"primary_batches"`
	ReplicaBatches   uint64                   `json:"replica_batches"`
	Hedges           uint64                   `json:"hedges"`
	HedgeWins        uint64                   `json:"hedge_wins"`
	Failovers        uint64                   `json:"failovers"`
	Replicas         []multirag.ReplicaStatus `json:"replicas"`
	Breakers         []multirag.BreakerInfo   `json:"breakers"`
}

// metricsSnapshot assembles the router's metrics section.
func (rt *router) metricsSnapshot() *RouterMetrics {
	m := &RouterMetrics{
		Route:            rt.route,
		HedgeAfterMillis: rt.hedgeAfter.Milliseconds(),
		MaxLag:           rt.maxLag,
		CommittedLSN:     rt.set.CommittedLSN(),
		PrimaryBatches:   rt.primaryBatches.Load(),
		ReplicaBatches:   rt.replicaBatches.Load(),
		Hedges:           rt.hedges.Load(),
		HedgeWins:        rt.hedgeWins.Load(),
		Failovers:        rt.failovers.Load(),
		Replicas:         rt.set.Status(),
	}
	for _, t := range rt.targets {
		st := t.breaker.Stats()
		m.Breakers = append(m.Breakers, multirag.BreakerInfo{
			Name: st.Name, State: st.State, Failures: st.Failures,
			Trips: st.Trips, FastFails: st.FastFails, Successes: st.Successes,
		})
	}
	return m
}
