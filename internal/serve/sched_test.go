package serve

import (
	"testing"
	"time"
)

func testClasses(caps ...Class) []*classState {
	now := time.Now()
	out := make([]*classState, len(caps))
	for i, c := range caps {
		if c.QueueCap <= 0 {
			c.QueueCap = 256
		}
		out[i] = &classState{cfg: c, bucket: newTokenBucket(c.Rate, c.Burst, now)}
	}
	return out
}

func mustEnqueue(t *testing.T, s *scheduler, r *request) {
	t.Helper()
	if err := s.enqueue(r); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
}

func newReq(q string, cs *classState) *request {
	return &request{query: q, class: cs, cost: EstimateCost(q), done: make(chan answerResult, 1)}
}

func batchQueries(batch []*request) []string {
	out := make([]string, len(batch))
	for i, r := range batch {
		out[i] = r.query
	}
	return out
}

func TestFCFSOrdersByArrivalAcrossClasses(t *testing.T) {
	classes := testClasses(Class{Name: "a", Priority: 2}, Class{Name: "b", Priority: 1})
	s := newScheduler(PolicyFCFS, classes, 16)
	mustEnqueue(t, s, newReq("q1", classes[1]))
	mustEnqueue(t, s, newReq("q2", classes[0]))
	mustEnqueue(t, s, newReq("q3", classes[1]))
	s.mu.Lock()
	got := batchQueries(s.formBatchLocked())
	s.mu.Unlock()
	want := []string{"q1", "q2", "q3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fcfs order: got %v, want %v", got, want)
		}
	}
}

func TestPriorityOrdersByClassThenArrival(t *testing.T) {
	classes := testClasses(Class{Name: "low", Priority: 1}, Class{Name: "high", Priority: 9})
	s := newScheduler(PolicyPriority, classes, 16)
	mustEnqueue(t, s, newReq("low1", classes[0]))
	mustEnqueue(t, s, newReq("high1", classes[1]))
	mustEnqueue(t, s, newReq("low2", classes[0]))
	mustEnqueue(t, s, newReq("high2", classes[1]))
	s.mu.Lock()
	got := batchQueries(s.formBatchLocked())
	s.mu.Unlock()
	want := []string{"high1", "high2", "low1", "low2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("priority order: got %v, want %v", got, want)
		}
	}
}

func TestSJFOrdersByEstimatedCostAnywhereInQueue(t *testing.T) {
	classes := testClasses(Class{Name: "only"})
	s := newScheduler(PolicySJF, classes, 16)
	multiHop := "What is the city of the manager of Item 1?"
	lookup := "What is the status of Item 2?"
	fallback := "Anything new about Item 3 today"
	// The cheap lookup arrives behind the expensive multi-hop; SJF must dig
	// it out of the middle of the FIFO.
	mustEnqueue(t, s, newReq(multiHop, classes[0]))
	mustEnqueue(t, s, newReq(fallback, classes[0]))
	mustEnqueue(t, s, newReq(lookup, classes[0]))
	s.mu.Lock()
	got := batchQueries(s.formBatchLocked())
	s.mu.Unlock()
	want := []string{lookup, fallback, multiHop}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sjf order: got %v, want %v", got, want)
		}
	}
}

func TestBoundedQueueRejectsWhenFull(t *testing.T) {
	classes := testClasses(Class{Name: "tiny", QueueCap: 2})
	s := newScheduler(PolicyFCFS, classes, 16)
	mustEnqueue(t, s, newReq("q1", classes[0]))
	mustEnqueue(t, s, newReq("q2", classes[0]))
	if err := s.enqueue(newReq("q3", classes[0])); err != errQueueFull {
		t.Fatalf("over-cap enqueue: got %v, want errQueueFull", err)
	}
	// Batch admission is all-or-nothing against the remaining capacity.
	if err := s.enqueueAll([]*request{newReq("q4", classes[0])}); err != errQueueFull {
		t.Fatalf("over-cap enqueueAll: got %v, want errQueueFull", err)
	}
}

func TestTimedOutRequestsAreDroppedFromBatches(t *testing.T) {
	classes := testClasses(Class{Name: "c"})
	s := newScheduler(PolicyFCFS, classes, 16)
	doomed := newReq("late", classes[0])
	kept := newReq("ontime", classes[0])
	mustEnqueue(t, s, doomed)
	mustEnqueue(t, s, kept)
	if !doomed.state.CompareAndSwap(reqPending, reqTimedOut) {
		t.Fatal("timeout CAS failed on pending request")
	}
	s.mu.Lock()
	got := batchQueries(s.formBatchLocked())
	s.mu.Unlock()
	if len(got) != 1 || got[0] != "ontime" {
		t.Fatalf("batch after timeout: got %v, want [ontime]", got)
	}
	// And a running request can no longer be timed out.
	if kept.state.Load() != reqRunning {
		t.Fatalf("claimed request state: got %d, want running", kept.state.Load())
	}
	if kept.state.CompareAndSwap(reqPending, reqTimedOut) {
		t.Fatal("timeout CAS succeeded on a claimed request")
	}
}

func TestEstimateCost(t *testing.T) {
	cases := []struct {
		q    string
		want int
	}{
		{"What is the status of CA981?", costLookup},
		{"What is the city of the manager of Item 3?", costMultiHop},
		{"Do CA981 and MU588 have the same status?", costComparison},
		{"Anything new about CA981 today", costFallback},
	}
	for _, c := range cases {
		if got := EstimateCost(c.q); got != c.want {
			t.Fatalf("EstimateCost(%q) = %d, want %d", c.q, got, c.want)
		}
	}
}
