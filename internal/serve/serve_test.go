package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"multirag"
)

// corpusFiles is the CA981 case-study corpus (the CLI demo), small enough
// for fast tests but exercising every intent the grammar supports.
func corpusFiles() []multirag.File {
	return []multirag.File{
		{Domain: "flights", Source: "airport-api", Name: "schedule", Format: "csv",
			Content: []byte("flight,origin,destination,status,departure_time\nCA981,PEK,JFK,Delayed,2024-10-01 14:30\nMU588,PVG,LAX,On time,2024-10-01 15:10\n")},
		{Domain: "flights", Source: "airline-app", Name: "live", Format: "json",
			Content: []byte(`[{"flight":"CA981","status":"Delayed","delay_reason":"Typhoon"},{"flight":"MU588","status":"On time"}]`)},
		{Domain: "flights", Source: "weather-feed", Name: "alerts", Format: "text",
			Content: []byte("Typhoon Haikui impacts PEK departures after 14:00. The status of CA981 is Delayed. The delay reason of CA981 is Typhoon.")},
		{Domain: "flights", Source: "forum-user", Name: "posts", Format: "text",
			Content: []byte("The status of CA981 is On time.")},
	}
}

func newCorpusSystem(t *testing.T) *multirag.System {
	t.Helper()
	sys := multirag.Open(multirag.Config{Seed: 1})
	if err := sys.IngestFiles(corpusFiles()...); err != nil {
		t.Fatalf("ingest corpus: %v", err)
	}
	return sys
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.System == nil {
		cfg.System = newCorpusSystem(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, buf.Bytes()
}

// TestServeSmoke starts the server and issues one request per endpoint,
// asserting 200 plus well-formed JSON of the right shape (the CI smoke
// test; runs under -race like everything else).
func TestServeSmoke(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, body := postJSON(t, ts.URL+"/v1/query", QueryRequest{Query: "What is the status of CA981?"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	var ans multirag.Answer
	if err := json.Unmarshal(body, &ans); err != nil {
		t.Fatalf("query response not an Answer: %v (%s)", err, body)
	}
	if !ans.Found || len(ans.Values) == 0 {
		t.Fatalf("query found no answer: %s", body)
	}

	resp, body = postJSON(t, ts.URL+"/v1/query/batch", BatchRequest{Queries: []string{
		"What is the status of CA981?",
		"Do CA981 and MU588 have the same status?",
	}, Class: "batch"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var batch BatchResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatalf("batch response: %v (%s)", err, body)
	}
	if len(batch.Answers) != 2 {
		t.Fatalf("batch answers: got %d, want 2", len(batch.Answers))
	}

	resp, body = postJSON(t, ts.URL+"/v1/ingest", IngestRequest{Files: []IngestFile{{
		Domain: "flights", Source: "gate-feed", Name: "gates", Format: "kg",
		Content: "CA981|gate|G12\n",
	}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}
	var ing IngestResponse
	if err := json.Unmarshal(body, &ing); err != nil || !ing.OK || ing.Files != 1 {
		t.Fatalf("ingest response: %v (%s)", err, body)
	}

	resp, body = getJSON(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d: %s", resp.StatusCode, body)
	}
	var st multirag.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("stats response: %v (%s)", err, body)
	}
	if st.Triples == 0 {
		t.Fatalf("stats reports empty corpus: %s", body)
	}

	resp, body = getJSON(t, ts.URL+"/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d: %s", resp.StatusCode, body)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics response: %v (%s)", err, body)
	}
	if snap.IngestCapacity == 0 {
		t.Fatalf("metrics missing ingest capacity: %s", body)
	}
	var completed int64
	for _, c := range snap.Classes {
		completed += c.Completed
	}
	if completed < 4 {
		t.Fatalf("metrics completed = %d, want >= 4: %s", completed, body)
	}

	resp, body = getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d: %s", resp.StatusCode, body)
	}
	var health HealthResponse
	if err := json.Unmarshal(body, &health); err != nil || health.Status != "ok" {
		t.Fatalf("healthz response: %v (%s)", err, body)
	}
}

// TestServeQueryEquivalence pins the acceptance bar: answers through the
// HTTP path are bit-identical to in-process System.Ask over the same query
// sequence (same seed, same corpus, same order — source history evolves
// identically on both sides).
func TestServeQueryEquivalence(t *testing.T) {
	ref := newCorpusSystem(t)
	_, ts := newTestServer(t, Config{Policy: PolicySJF})

	queries := []string{
		"What is the status of CA981?",
		"What is the delay reason of CA981?",
		"What is the departure time of CA981?",
		"Do CA981 and MU588 have the same status?",
		"Anything new about CA981 today",
	}
	// Two passes: the second exercises caches and the evolved source
	// history, exactly where a non-transparent serving layer would drift.
	for pass := 0; pass < 2; pass++ {
		for _, q := range queries {
			resp, body := postJSON(t, ts.URL+"/v1/query", QueryRequest{Query: q})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("pass %d %q: status %d: %s", pass, q, resp.StatusCode, body)
			}
			var got multirag.Answer
			if err := json.Unmarshal(body, &got); err != nil {
				t.Fatalf("pass %d %q: %v", pass, q, err)
			}
			want := ref.Ask(q)
			// Compare through one JSON round-trip on both sides so the wire
			// encoding itself is part of the contract.
			wantJSON, _ := json.Marshal(want)
			var wantRT multirag.Answer
			_ = json.Unmarshal(wantJSON, &wantRT)
			if !reflect.DeepEqual(got, wantRT) {
				t.Fatalf("pass %d %q: HTTP answer diverges\n got: %s\nwant: %s", pass, q, body, wantJSON)
			}
		}
	}
}

// TestServeAdmissionRejects429 drives a class past its token bucket and
// checks both the status code and the rejection accounting.
func TestServeAdmissionRejects429(t *testing.T) {
	s, ts := newTestServer(t, Config{Classes: []Class{
		{Name: "limited", Rate: 1e-9, Burst: 2, Priority: 1},
	}})
	codes := map[int]int{}
	for i := 0; i < 5; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/query", QueryRequest{Query: "What is the status of CA981?"})
		codes[resp.StatusCode]++
	}
	if codes[http.StatusOK] != 2 || codes[http.StatusTooManyRequests] != 3 {
		t.Fatalf("status codes: got %v, want 2x200 + 3x429", codes)
	}
	snap := s.Metrics()
	for _, c := range snap.Classes {
		if c.Name == "limited" {
			if c.Completed != 2 || c.RejectedAdmission != 3 {
				t.Fatalf("limited class accounting: %+v", c)
			}
			return
		}
	}
	t.Fatal("limited class missing from metrics")
}

// TestServeIngestBackpressure429 saturates the (stubbed) committer admission
// window and checks the ingest endpoint sheds with 429 instead of blocking.
func TestServeIngestBackpressure429(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.pressure = func() (int, int) { return 64, 64 }
	resp, body := postJSON(t, ts.URL+"/v1/ingest", IngestRequest{Files: []IngestFile{{
		Domain: "flights", Source: "late-feed", Name: "x", Format: "kg", Content: "CA981|gate|G9\n",
	}}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated ingest: status %d (%s), want 429", resp.StatusCode, body)
	}
	snap := s.Metrics()
	for _, c := range snap.Classes {
		if c.Name == IngestClass && c.RejectedQueue != 1 {
			t.Fatalf("ingest rejection accounting: %+v", c)
		}
	}
	// Clearing the pressure restores service.
	s.pressure = s.sys.IngestPressure
	resp, body = postJSON(t, ts.URL+"/v1/ingest", IngestRequest{Files: []IngestFile{{
		Domain: "flights", Source: "late-feed", Name: "x", Format: "kg", Content: "CA981|gate|G9\n",
	}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered ingest: status %d (%s), want 200", resp.StatusCode, body)
	}
}

// TestServeConcurrentMixedLoad hammers the server from concurrent clients
// across classes and policies — the -race exercise for the scheduler,
// metrics and admission paths.
func TestServeConcurrentMixedLoad(t *testing.T) {
	for _, policy := range []string{PolicyFCFS, PolicySJF, PolicyPriority} {
		t.Run(policy, func(t *testing.T) {
			s, ts := newTestServer(t, Config{Policy: policy, MaxBatch: 8})
			const clients, perClient = 8, 10
			errs := make(chan error, clients)
			for c := 0; c < clients; c++ {
				go func(c int) {
					class := "interactive"
					if c%2 == 1 {
						class = "batch"
					}
					for i := 0; i < perClient; i++ {
						q := "What is the status of CA981?"
						if i%3 == 1 {
							q = "Do CA981 and MU588 have the same status?"
						}
						resp, body := postJSON(t, ts.URL+"/v1/query", QueryRequest{Query: q, Class: class})
						if resp.StatusCode != http.StatusOK {
							errs <- fmt.Errorf("client %d: status %d: %s", c, resp.StatusCode, body)
							return
						}
					}
					errs <- nil
				}(c)
			}
			for c := 0; c < clients; c++ {
				if err := <-errs; err != nil {
					t.Fatal(err)
				}
			}
			snap := s.Metrics()
			var completed int64
			for _, cm := range snap.Classes {
				completed += cm.Completed
			}
			if completed != clients*perClient {
				t.Fatalf("completed = %d, want %d", completed, clients*perClient)
			}
			if snap.JainFairness <= 0 || snap.JainFairness > 1 {
				t.Fatalf("jain = %v out of range", snap.JainFairness)
			}
		})
	}
}

// TestServeQueueTimeout503 forces a queue wait past the configured timeout
// (zero executors would be ideal; instead the batch is parked behind a
// stalled pressure-free path by closing the scheduler's executors via a
// full-queue server with a microscopic timeout and no drain chance).
func TestServeQueueTimeout503(t *testing.T) {
	sys := newCorpusSystem(t)
	s, err := New(Config{System: sys, QueueTimeout: time.Nanosecond})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	defer s.Close()
	// Race the nanosecond timeout against batch formation: with a timeout
	// this small, either outcome is legal per request, but over many tries
	// at least one must take the timeout path, and none may hang or panic.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	sawTimeout := false
	for i := 0; i < 50 && !sawTimeout; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/query", QueryRequest{Query: "What is the status of CA981?"})
		if resp.StatusCode == http.StatusServiceUnavailable {
			sawTimeout = true
		} else if resp.StatusCode != http.StatusOK {
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if !sawTimeout {
		t.Skip("scheduler always won the nanosecond race; timeout path covered elsewhere")
	}
	snap := s.Metrics()
	var timedOut int64
	for _, c := range snap.Classes {
		timedOut += c.TimedOut
	}
	if timedOut == 0 {
		t.Fatal("503 served but no timeout accounted")
	}
}
