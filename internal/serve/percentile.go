package serve

import (
	"math"
	"sort"
	"time"
)

// Percentile returns the p-quantile (0 <= p <= 1) of sample by the
// nearest-rank method: the smallest observation v such that at least
// ceil(p*n) observations are <= v. p = 1 is the maximum; an empty sample
// yields 0. This is THE percentile implementation for every latency report
// in the repository (the CLI load harnesses, the serving metrics endpoint
// and the serve bench) — the previous per-call closures truncated the index
// (int(p*(n-1))), biasing p95/p99 low for small n and panicking on empty
// samples.
func Percentile(sample []time.Duration, p float64) time.Duration {
	return Quantiles(sample, p)[0]
}

// Quantiles returns the nearest-rank quantiles of sample at each of ps,
// sorting one private copy of the sample. The input is not modified.
func Quantiles(sample []time.Duration, ps ...float64) []time.Duration {
	out := make([]time.Duration, len(ps))
	if len(sample) == 0 {
		return out
	}
	sorted := append([]time.Duration(nil), sample...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, p := range ps {
		out[i] = PercentileSorted(sorted, p)
	}
	return out
}

// PercentileSorted is Percentile over an already-ascending sample, for
// callers that batch several quantile reads over one sort.
func PercentileSorted(sorted []time.Duration, p float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}
