// Package serve is the production front door of a MultiRAG deployment: an
// HTTP/JSON API over System.AskConcurrent / System.IngestFiles with
// token-bucket admission control per SLO class, pluggable batch-formation
// policies (FCFS, shortest-job-first by estimated query cost, priority),
// bounded per-class request queues, and per-class latency / fairness
// reporting on a metrics endpoint.
//
// Endpoints:
//
//	POST /v1/query        {"query": "...", "class": "interactive"}   → Answer
//	POST /v1/query/batch  {"queries": [...], "class": "..."}         → {"answers": [...]}
//	POST /v1/ingest       {"files": [{domain,source,name,format,content}, ...]}
//	GET  /v1/stats        corpus statistics
//	GET  /v1/metrics      per-class p50/p95/p99, Jain fairness, queue depths
//	GET  /healthz
//
// Excess load is shed, never buffered without bound: a request that finds
// its class token bucket empty or its bounded queue full is rejected with
// 429, one that waits in queue past the configured timeout gets 503, and
// ingest requests are additionally rejected with 429 while the group
// committer's admission window (core.IngestPressure) is saturated — the
// serving layer's backpressure is wired into the ingest pipeline's rather
// than layered blindly on top of it. Every shed response carries a
// Retry-After hint so well-behaved clients back off instead of hammering.
//
// Shutdown is two-phase: Drain flips the server into draining — new work is
// rejected with 503 + Retry-After and the health endpoint fails so load
// balancers stop routing here — while queued and in-flight requests finish
// normally; Close then rejects whatever is still queued, stops the batch
// executors and waits for them to exit, so by the time Close returns no
// executor goroutine can touch the engine again and the caller may safely
// flush and close a durable System underneath.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"multirag"
)

// Class declares one SLO class of the front door. Requests select a class by
// name; unnamed requests fall into the first configured class.
type Class struct {
	// Name identifies the class ("interactive", "batch", "ingest", ...).
	Name string `json:"name"`
	// Rate is the admission token-bucket refill rate in requests per second;
	// <= 0 disables admission limiting for the class.
	Rate float64 `json:"rate"`
	// Burst is the token-bucket capacity (default max(1, Rate)).
	Burst float64 `json:"burst"`
	// Priority orders classes under PolicyPriority (higher serves first).
	Priority int `json:"priority"`
	// QueueCap bounds the class's pending-request queue; arrivals that find
	// it full are rejected with 429 (default 256).
	QueueCap int `json:"queue_cap"`
}

// DefaultClasses is the stock three-class SLO layout: latency-sensitive
// interactive traffic over throughput-oriented batch traffic, plus the
// ingest class gating /v1/ingest. All admission-unlimited; production
// deployments set Rate/Burst per class.
func DefaultClasses() []Class {
	return []Class{
		{Name: "interactive", Priority: 2},
		{Name: "batch", Priority: 1},
		{Name: IngestClass, Priority: 0},
	}
}

// IngestClass names the class whose token bucket gates /v1/ingest.
const IngestClass = "ingest"

// Config assembles a Server.
type Config struct {
	// System is the deployment to serve. Required.
	System *multirag.System
	// Policy selects batch formation: PolicyFCFS (default), PolicySJF or
	// PolicyPriority.
	Policy string
	// Classes declares the SLO classes (default DefaultClasses). The first
	// entry is the default class; the entry named IngestClass (added
	// automatically if absent) admission-controls /v1/ingest.
	Classes []Class
	// MaxBatch bounds one formed query batch (default 32).
	MaxBatch int
	// QueueTimeout bounds how long a query may wait for batch formation
	// before failing with 503 (default 5s; < 0 disables).
	QueueTimeout time.Duration
	// Executors is the number of concurrent batch executors (default 2:
	// one batch forming while another runs its AskConcurrent fan-out).
	Executors int
}

// Server is a running front door. Create with New, mount Handler on an
// http.Server, Close to reject queued work and stop the executors.
type Server struct {
	sys          *multirag.System
	policy       string
	sched        *scheduler
	metrics      *metrics
	byName       map[string]*classState
	defaultClass *classState
	ingestClass  *classState
	queueTimeout time.Duration
	// pressure reports the ingest pipeline's admission state; defaults to
	// System.IngestPressure (overridable by tests to force saturation).
	pressure func() (inflight, capacity int)
	mux      *http.ServeMux

	// draining rejects new work with 503 + Retry-After once set (Drain /
	// Close); executors keeps Close honest — it waits until every executor
	// goroutine has exited before returning.
	draining  atomic.Bool
	executors sync.WaitGroup
	closeOnce sync.Once
}

// New validates cfg, starts the batch executors and returns the server.
func New(cfg Config) (*Server, error) {
	if cfg.System == nil {
		return nil, fmt.Errorf("serve: Config.System is required")
	}
	switch cfg.Policy {
	case "":
		cfg.Policy = PolicyFCFS
	case PolicyFCFS, PolicySJF, PolicyPriority:
	default:
		return nil, fmt.Errorf("serve: unknown policy %q (want %s, %s or %s)",
			cfg.Policy, PolicyFCFS, PolicySJF, PolicyPriority)
	}
	classes := cfg.Classes
	if len(classes) == 0 {
		classes = DefaultClasses()
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.QueueTimeout == 0 {
		cfg.QueueTimeout = 5 * time.Second
	}
	if cfg.Executors <= 0 {
		cfg.Executors = 2
	}

	now := time.Now()
	s := &Server{
		sys:          cfg.System,
		policy:       cfg.Policy,
		byName:       map[string]*classState{},
		queueTimeout: cfg.QueueTimeout,
		pressure:     cfg.System.IngestPressure,
	}
	var states []*classState
	for _, c := range classes {
		if c.Name == "" {
			return nil, fmt.Errorf("serve: class with empty name")
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate class %q", c.Name)
		}
		if c.QueueCap <= 0 {
			c.QueueCap = 256
		}
		cs := &classState{cfg: c, bucket: newTokenBucket(c.Rate, c.Burst, now)}
		s.byName[c.Name] = cs
		states = append(states, cs)
	}
	s.defaultClass = states[0]
	if s.ingestClass = s.byName[IngestClass]; s.ingestClass == nil {
		cs := &classState{
			cfg:    Class{Name: IngestClass, QueueCap: 256},
			bucket: newTokenBucket(0, 0, now),
		}
		s.byName[IngestClass] = cs
		states = append(states, cs)
		s.ingestClass = cs
	}

	order := make([]string, len(states))
	for i, cs := range states {
		order[i] = cs.cfg.Name
	}
	s.metrics = newMetrics(order)
	s.sched = newScheduler(cfg.Policy, states, cfg.MaxBatch)
	s.executors.Add(cfg.Executors)
	for i := 0; i < cfg.Executors; i++ {
		go s.executorLoop()
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/query/batch", s.handleBatch)
	mux.HandleFunc("/v1/ingest", s.handleIngest)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealth)
	s.mux = mux
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain flips the server into draining: every subsequent request is rejected
// with 503 + Retry-After and /healthz starts failing, while queued and
// in-flight work completes normally. The graceful-shutdown sequence is
// Drain → http.Server.Shutdown (in-flight handlers finish) → Close →
// System.Close (final checkpoint).
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain or Close has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close drains the server, rejects all queued requests, stops the executors
// and waits for them to exit. In-flight batches complete and deliver their
// answers before Close returns, so afterwards nothing touches the engine —
// the caller may close a durable System underneath. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		s.sched.close()
		s.executors.Wait()
	})
}

// Metrics returns the current metrics snapshot (the /v1/metrics payload).
func (s *Server) Metrics() MetricsSnapshot {
	snap := s.metrics.snapshot(s.policy)
	snap.QueueDepths = s.sched.depths()
	snap.IngestInflight, snap.IngestCapacity = s.pressure()
	return snap
}

// executorLoop drains batches off the scheduler and runs each through the
// engine's batch entry point; every answer in the batch evaluates against
// one published snapshot.
func (s *Server) executorLoop() {
	defer s.executors.Done()
	for {
		batch, ok := s.sched.next()
		if !ok {
			return
		}
		queries := make([]string, len(batch))
		for i, r := range batch {
			queries[i] = r.query
		}
		answers := s.sys.AskConcurrent(queries)
		now := time.Now()
		for i, r := range batch {
			s.metrics.record(r.class.cfg.Name, now.Sub(r.enq))
			r.done <- answerResult{answer: answers[i]}
		}
	}
}

// Wire shapes.

// QueryRequest is the /v1/query payload.
type QueryRequest struct {
	Query string `json:"query"`
	Class string `json:"class,omitempty"`
}

// BatchRequest is the /v1/query/batch payload. Admission charges one token
// per query.
type BatchRequest struct {
	Queries []string `json:"queries"`
	Class   string   `json:"class,omitempty"`
}

// BatchResponse answers a BatchRequest in input order.
type BatchResponse struct {
	Answers []multirag.Answer `json:"answers"`
}

// IngestFile is one file of an /v1/ingest payload (multirag.File with string
// content).
type IngestFile struct {
	Domain  string            `json:"domain"`
	Source  string            `json:"source"`
	Name    string            `json:"name"`
	Format  string            `json:"format"`
	Meta    map[string]string `json:"meta,omitempty"`
	Content string            `json:"content"`
}

// IngestRequest is the /v1/ingest payload. Admission charges one ingest-class
// token per file.
type IngestRequest struct {
	Files []IngestFile `json:"files"`
}

// IngestResponse acknowledges a committed ingest batch.
type IngestResponse struct {
	OK    bool `json:"ok"`
	Files int  `json:"files"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.shedDraining(w) {
		return
	}
	var req QueryRequest
	if !s.readPost(w, r, &req) {
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, "missing query")
		return
	}
	cs, ok := s.resolveClass(w, req.Class)
	if !ok {
		return
	}
	if !cs.bucket.take(1, time.Now()) {
		s.metrics.rejectAdmission(cs.cfg.Name)
		writeShed(w, http.StatusTooManyRequests,
			fmt.Sprintf("admission: class %q over rate", cs.cfg.Name))
		return
	}
	rq := &request{query: req.Query, class: cs, cost: EstimateCost(req.Query), done: make(chan answerResult, 1)}
	if err := s.sched.enqueue(rq); err != nil {
		s.metrics.rejectQueue(cs.cfg.Name)
		writeShed(w, http.StatusTooManyRequests, err.Error())
		return
	}
	res, ok := s.await(rq)
	if !ok {
		writeShed(w, http.StatusServiceUnavailable,
			fmt.Sprintf("queue timeout: class %q waited over %v", cs.cfg.Name, s.queueTimeout))
		return
	}
	if res.err != nil {
		writeShed(w, http.StatusServiceUnavailable, res.err.Error())
		return
	}
	writeJSON(w, http.StatusOK, res.answer)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.shedDraining(w) {
		return
	}
	var req BatchRequest
	if !s.readPost(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "missing queries")
		return
	}
	cs, ok := s.resolveClass(w, req.Class)
	if !ok {
		return
	}
	if !cs.bucket.take(float64(len(req.Queries)), time.Now()) {
		s.metrics.rejectAdmission(cs.cfg.Name)
		writeShed(w, http.StatusTooManyRequests,
			fmt.Sprintf("admission: class %q over rate", cs.cfg.Name))
		return
	}
	rqs := make([]*request, len(req.Queries))
	for i, q := range req.Queries {
		rqs[i] = &request{query: q, class: cs, cost: EstimateCost(q), done: make(chan answerResult, 1)}
	}
	if err := s.sched.enqueueAll(rqs); err != nil {
		s.metrics.rejectQueue(cs.cfg.Name)
		writeShed(w, http.StatusTooManyRequests, err.Error())
		return
	}
	resp := BatchResponse{Answers: make([]multirag.Answer, len(rqs))}
	for i, rq := range rqs {
		res, ok := s.await(rq)
		if !ok {
			writeShed(w, http.StatusServiceUnavailable,
				fmt.Sprintf("queue timeout: class %q waited over %v", cs.cfg.Name, s.queueTimeout))
			return
		}
		if res.err != nil {
			writeShed(w, http.StatusServiceUnavailable, res.err.Error())
			return
		}
		resp.Answers[i] = res.answer
	}
	writeJSON(w, http.StatusOK, resp)
}

// await blocks for rq's answer, enforcing the queue timeout. The timeout
// only claims requests still waiting for batch formation (pending→timedOut
// CAS): once an executor has claimed a request, its answer is on the way and
// await waits it out.
func (s *Server) await(rq *request) (answerResult, bool) {
	if s.queueTimeout < 0 {
		return <-rq.done, true
	}
	timer := time.NewTimer(s.queueTimeout)
	defer timer.Stop()
	select {
	case res := <-rq.done:
		return res, true
	case <-timer.C:
		if rq.state.CompareAndSwap(reqPending, reqTimedOut) {
			s.metrics.timeout(rq.class.cfg.Name)
			return answerResult{}, false
		}
		return <-rq.done, true
	}
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.shedDraining(w) {
		return
	}
	var req IngestRequest
	if !s.readPost(w, r, &req) {
		return
	}
	if len(req.Files) == 0 {
		writeError(w, http.StatusBadRequest, "missing files")
		return
	}
	cs := s.ingestClass
	if !cs.bucket.take(float64(len(req.Files)), time.Now()) {
		s.metrics.rejectAdmission(cs.cfg.Name)
		writeShed(w, http.StatusTooManyRequests, `admission: class "ingest" over rate`)
		return
	}
	// Backpressure coupling: when the group committer's bounded admission
	// window is full, IngestFiles would block this handler on the committer
	// condvar — shed at the front door instead and let the client retry.
	if inflight, capacity := s.pressure(); inflight >= capacity {
		s.metrics.rejectQueue(cs.cfg.Name)
		writeShed(w, http.StatusTooManyRequests,
			fmt.Sprintf("ingest pipeline at capacity (%d/%d batches in flight)", inflight, capacity))
		return
	}
	files := make([]multirag.File, len(req.Files))
	for i, f := range req.Files {
		files[i] = multirag.File{
			Domain: f.Domain, Source: f.Source, Name: f.Name,
			Format: f.Format, Meta: f.Meta, Content: []byte(f.Content),
		}
	}
	start := time.Now()
	if err := s.sys.IngestFiles(files...); err != nil {
		s.metrics.fail(cs.cfg.Name)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.metrics.record(cs.cfg.Name, time.Since(start))
	writeJSON(w, http.StatusOK, IngestResponse{OK: true, Files: len(files)})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, s.sys.Stats())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		// Fail the probe so load balancers stop routing here while in-flight
		// work finishes.
		writeJSON(w, http.StatusServiceUnavailable, map[string]bool{"ok": false, "draining": true})
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// resolveClass maps a request's class name onto its state, writing the 400
// itself when the name is unknown.
func (s *Server) resolveClass(w http.ResponseWriter, name string) (*classState, bool) {
	if name == "" {
		return s.defaultClass, true
	}
	cs := s.byName[name]
	if cs == nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown class %q", name))
		return nil, false
	}
	return cs, true
}

// readPost enforces POST + JSON body, writing the error response itself.
func (s *Server) readPost(w http.ResponseWriter, r *http.Request, into any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad JSON: %v", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, ErrorResponse{Error: msg})
}

// retryAfterSeconds is the backoff hint attached to every shed response
// (admission, full queue, queue timeout, pipeline saturation, draining).
// Overload here is transient — a committed group or a drained queue frees
// capacity within, at worst, the queue timeout — so the hint is short and
// clients honouring it converge instead of thundering.
const retryAfterSeconds = 1

// writeShed rejects a request for load or lifecycle reasons: the response
// carries a Retry-After so clients know the condition is retryable, unlike a
// 400/405 which is not.
func writeShed(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	writeJSON(w, code, ErrorResponse{Error: msg})
}

// shedDraining answers true and writes the 503 when the server is draining.
func (s *Server) shedDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	writeShed(w, http.StatusServiceUnavailable, "server draining for shutdown")
	return true
}
