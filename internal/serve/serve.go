// Package serve is the production front door of a MultiRAG deployment: an
// HTTP/JSON API over System.AskConcurrent / System.IngestFiles with
// token-bucket admission control per SLO class, pluggable batch-formation
// policies (FCFS, shortest-job-first by estimated query cost, priority),
// bounded per-class request queues, and per-class latency / fairness
// reporting on a metrics endpoint.
//
// Endpoints:
//
//	POST /v1/query        {"query": "...", "class": "interactive"}   → Answer
//	POST /v1/query/batch  {"queries": [...], "class": "..."}         → {"answers": [...]}
//	POST /v1/ingest       {"files": [{domain,source,name,format,content}, ...]}
//	GET  /v1/stats        corpus statistics
//	GET  /v1/metrics      per-class p50/p95/p99, Jain fairness, queue depths
//	GET  /healthz
//
// Requests run under end-to-end deadlines: each SLO class may declare a
// budget (Class.Deadline) that starts at admission — queue wait counts — and
// a request may tighten it with "deadline_ms". The context also cancels on
// client disconnect. A request whose budget expires while queued is shed; one
// that expires mid-evaluation stops promptly and, when the class opts into
// Class.Degrade, is answered 200 with Answer.Degraded and whatever evidence
// completed (otherwise 504). /healthz reports ok/degraded/draining with a
// reason, and /v1/metrics carries deadline/cancel/degraded counters, circuit
// breaker states and durability health.
//
// Excess load is shed, never buffered without bound: a request that finds
// its class token bucket empty or its bounded queue full is rejected with
// 429, one that waits in queue past the configured timeout gets 503, and
// ingest requests are additionally rejected with 429 while the group
// committer's admission window (core.IngestPressure) is saturated — the
// serving layer's backpressure is wired into the ingest pipeline's rather
// than layered blindly on top of it. Every shed response carries a
// Retry-After hint so well-behaved clients back off instead of hammering.
//
// Shutdown is two-phase: Drain flips the server into draining — new work is
// rejected with 503 + Retry-After and the health endpoint fails so load
// balancers stop routing here — while queued and in-flight requests finish
// normally; Close then rejects whatever is still queued, stops the batch
// executors and waits for them to exit, so by the time Close returns no
// executor goroutine can touch the engine again and the caller may safely
// flush and close a durable System underneath.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"multirag"
	"multirag/internal/fault"
)

// Class declares one SLO class of the front door. Requests select a class by
// name; unnamed requests fall into the first configured class.
type Class struct {
	// Name identifies the class ("interactive", "batch", "ingest", ...).
	Name string `json:"name"`
	// Rate is the admission token-bucket refill rate in requests per second;
	// <= 0 disables admission limiting for the class.
	Rate float64 `json:"rate"`
	// Burst is the token-bucket capacity (default max(1, Rate)).
	Burst float64 `json:"burst"`
	// Priority orders classes under PolicyPriority (higher serves first).
	Priority int `json:"priority"`
	// QueueCap bounds the class's pending-request queue; arrivals that find
	// it full are rejected with 429 (default 256).
	QueueCap int `json:"queue_cap"`
	// Deadline is the class's end-to-end budget per request, counted from
	// admission — queue wait spends the same budget as evaluation. A request
	// may tighten (never extend) it with its own deadline_ms. <= 0 means no
	// deadline; the client disconnect signal still cancels.
	Deadline time.Duration `json:"deadline,omitempty"`
	// Degrade selects graceful degradation: a request whose budget runs out
	// mid-evaluation (or that hits an open circuit breaker) is answered 200
	// with Answer.Degraded set and whatever evidence completed, instead of
	// failing with 504. Queue-timeout and still-queued deadline expiry shed
	// as before — there is no partial answer to deliver yet.
	Degrade bool `json:"degrade,omitempty"`
}

// DefaultClasses is the stock three-class SLO layout: latency-sensitive
// interactive traffic over throughput-oriented batch traffic, plus the
// ingest class gating /v1/ingest. All admission-unlimited; production
// deployments set Rate/Burst per class.
func DefaultClasses() []Class {
	return []Class{
		{Name: "interactive", Priority: 2},
		{Name: "batch", Priority: 1},
		{Name: IngestClass, Priority: 0},
	}
}

// IngestClass names the class whose token bucket gates /v1/ingest.
const IngestClass = "ingest"

// Config assembles a Server.
type Config struct {
	// System is the deployment to serve. Required.
	System *multirag.System
	// Policy selects batch formation: PolicyFCFS (default), PolicySJF or
	// PolicyPriority.
	Policy string
	// Classes declares the SLO classes (default DefaultClasses). The first
	// entry is the default class; the entry named IngestClass (added
	// automatically if absent) admission-controls /v1/ingest.
	Classes []Class
	// MaxBatch bounds one formed query batch (default 32).
	MaxBatch int
	// QueueTimeout bounds how long a query may wait for batch formation
	// before failing with 503 (default 5s; < 0 disables).
	QueueTimeout time.Duration
	// Executors is the number of concurrent batch executors (default 2:
	// one batch forming while another runs its AskConcurrent fan-out).
	Executors int
	// Recovery, when set, is the startup crash-recovery report of the durable
	// System being served; it is surfaced on /v1/metrics so operators can see
	// what the process found on disk without grepping logs.
	Recovery *multirag.RecoveryInfo
	// Replicas, when set, routes query batches across the replica set instead
	// of always serving from the primary. Replication keeps replicas
	// byte-identical to the primary, so answers are unchanged; routing buys
	// read scale-out and failover. The server does not own the set — the
	// caller closes it (after Close, before System.Close).
	Replicas *multirag.ReplicaSet
	// Route picks the replica-selection policy: RouteRoundRobin (default),
	// RouteLeastLoaded or RoutePrimaryOnly. Ignored without Replicas.
	Route string
	// HedgeAfter enables hedged reads: a batch still unanswered after this
	// delay is dispatched to a second target and the first answer wins
	// (<= 0 disables). Ignored without Replicas.
	HedgeAfter time.Duration
	// MaxLag bounds staleness: replicas more than this many commits behind
	// the primary are not routed to (0 = DefaultMaxLag). Ignored without
	// Replicas.
	MaxLag uint64
}

// Server is a running front door. Create with New, mount Handler on an
// http.Server, Close to reject queued work and stop the executors.
type Server struct {
	sys          *multirag.System
	policy       string
	sched        *scheduler
	metrics      *metrics
	byName       map[string]*classState
	defaultClass *classState
	ingestClass  *classState
	queueTimeout time.Duration
	// pressure reports the ingest pipeline's admission state; defaults to
	// System.IngestPressure (overridable by tests to force saturation).
	pressure func() (inflight, capacity int)
	recovery *multirag.RecoveryInfo
	// router, when non-nil, spreads batches across the configured replica
	// set with health gating, bounded staleness and optional hedging.
	router *router
	mux    *http.ServeMux

	// draining rejects new work with 503 + Retry-After once set (Drain /
	// Close); executors keeps Close honest — it waits until every executor
	// goroutine has exited before returning.
	draining  atomic.Bool
	executors sync.WaitGroup
	closeOnce sync.Once
}

// New validates cfg, starts the batch executors and returns the server.
func New(cfg Config) (*Server, error) {
	if cfg.System == nil {
		return nil, fmt.Errorf("serve: Config.System is required")
	}
	switch cfg.Policy {
	case "":
		cfg.Policy = PolicyFCFS
	case PolicyFCFS, PolicySJF, PolicyPriority:
	default:
		return nil, fmt.Errorf("serve: unknown policy %q (want %s, %s or %s)",
			cfg.Policy, PolicyFCFS, PolicySJF, PolicyPriority)
	}
	classes := cfg.Classes
	if len(classes) == 0 {
		classes = DefaultClasses()
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.QueueTimeout == 0 {
		cfg.QueueTimeout = 5 * time.Second
	}
	if cfg.Executors <= 0 {
		cfg.Executors = 2
	}

	now := time.Now()
	s := &Server{
		sys:          cfg.System,
		policy:       cfg.Policy,
		byName:       map[string]*classState{},
		queueTimeout: cfg.QueueTimeout,
		pressure:     cfg.System.IngestPressure,
		recovery:     cfg.Recovery,
	}
	rt, err := newRouter(cfg.System, cfg.Replicas, cfg.Route, cfg.HedgeAfter, cfg.MaxLag)
	if err != nil {
		return nil, err
	}
	s.router = rt
	var states []*classState
	for _, c := range classes {
		if c.Name == "" {
			return nil, fmt.Errorf("serve: class with empty name")
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate class %q", c.Name)
		}
		if c.QueueCap <= 0 {
			c.QueueCap = 256
		}
		cs := &classState{cfg: c, bucket: newTokenBucket(c.Rate, c.Burst, now)}
		s.byName[c.Name] = cs
		states = append(states, cs)
	}
	s.defaultClass = states[0]
	if s.ingestClass = s.byName[IngestClass]; s.ingestClass == nil {
		cs := &classState{
			cfg:    Class{Name: IngestClass, QueueCap: 256},
			bucket: newTokenBucket(0, 0, now),
		}
		s.byName[IngestClass] = cs
		states = append(states, cs)
		s.ingestClass = cs
	}

	order := make([]string, len(states))
	for i, cs := range states {
		order[i] = cs.cfg.Name
	}
	s.metrics = newMetrics(order)
	s.sched = newScheduler(cfg.Policy, states, cfg.MaxBatch)
	s.executors.Add(cfg.Executors)
	for i := 0; i < cfg.Executors; i++ {
		go s.executorLoop()
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/query/batch", s.handleBatch)
	mux.HandleFunc("/v1/ingest", s.handleIngest)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealth)
	s.mux = mux
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain flips the server into draining: every subsequent request is rejected
// with 503 + Retry-After and /healthz starts failing, while queued and
// in-flight work completes normally. The graceful-shutdown sequence is
// Drain → http.Server.Shutdown (in-flight handlers finish) → Close →
// System.Close (final checkpoint).
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain or Close has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close drains the server, rejects all queued requests, stops the executors
// and waits for them to exit. In-flight batches complete and deliver their
// answers before Close returns, so afterwards nothing touches the engine —
// the caller may close a durable System underneath. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		s.sched.close()
		s.executors.Wait()
	})
}

// Metrics returns the current metrics snapshot (the /v1/metrics payload).
func (s *Server) Metrics() MetricsSnapshot {
	snap := s.metrics.snapshot(s.policy)
	snap.QueueDepths = s.sched.depths()
	snap.IngestInflight, snap.IngestCapacity = s.pressure()
	snap.Breakers = s.sys.Breakers()
	snap.Durability = s.sys.Durability()
	snap.Recovery = s.recovery
	if s.router != nil {
		snap.Router = s.router.metricsSnapshot()
	}
	return snap
}

// executorLoop drains batches off the scheduler and runs each through the
// engine's batch entry point; every answer in the batch evaluates against
// one published snapshot. Each request carries its own context, so one
// request's deadline or disconnect degrades that answer without touching its
// batchmates.
func (s *Server) executorLoop() {
	defer s.executors.Done()
	for {
		batch, ok := s.sched.next()
		if !ok {
			return
		}
		queries := make([]string, len(batch))
		ctxs := make([]context.Context, len(batch))
		for i, r := range batch {
			queries[i] = r.query
			ctxs[i] = r.ctx
		}
		answers := s.runBatch(ctxs, queries)
		for i, r := range batch {
			// done is buffered (cap 1) and the executor owns the only send for
			// a claimed request, so this never blocks — even when the handler
			// has already returned (batch sibling failed first).
			r.done <- answerResult{answer: answers[i]}
		}
	}
}

// runBatch evaluates one formed batch, containing faults at the serve
// boundary and panics escaping the engine: either becomes a set of degraded
// answers rather than a dead executor goroutine (which would strand every
// waiting handler and shrink serving capacity forever).
func (s *Server) runBatch(ctxs []context.Context, queries []string) (answers []multirag.Answer) {
	degradeAll := func(reason string) []multirag.Answer {
		out := make([]multirag.Answer, len(queries))
		for i, q := range queries {
			out[i] = multirag.Answer{Query: q, Degraded: true, DegradedReason: reason}
		}
		return out
	}
	defer func() {
		if r := recover(); r != nil {
			answers = degradeAll(fmt.Sprintf("panic: %v", r))
		}
	}()
	// Chaos seam for the executor itself. Deliberately not bound to any one
	// request's context (the batch is shared), so hang faults here release
	// only on fault.Disable/Reset; waiting handlers shed via queue timeout.
	if err := fault.Inject(context.Background(), fault.PointServeExecute); err != nil {
		return degradeAll(err.Error())
	}
	if s.router != nil {
		return s.router.run(ctxs, queries)
	}
	return s.sys.AskEach(ctxs, queries)
}

// Wire shapes.

// QueryRequest is the /v1/query payload.
type QueryRequest struct {
	Query string `json:"query"`
	Class string `json:"class,omitempty"`
	// DeadlineMillis optionally tightens the class deadline for this request
	// (it can never extend it). The budget is counted from admission.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// BatchRequest is the /v1/query/batch payload. Admission charges one token
// per query.
type BatchRequest struct {
	Queries []string `json:"queries"`
	Class   string   `json:"class,omitempty"`
	// DeadlineMillis applies per query, as in QueryRequest.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// BatchResponse answers a BatchRequest in input order.
type BatchResponse struct {
	Answers []multirag.Answer `json:"answers"`
}

// IngestFile is one file of an /v1/ingest payload (multirag.File with string
// content).
type IngestFile struct {
	Domain  string            `json:"domain"`
	Source  string            `json:"source"`
	Name    string            `json:"name"`
	Format  string            `json:"format"`
	Meta    map[string]string `json:"meta,omitempty"`
	Content string            `json:"content"`
}

// IngestRequest is the /v1/ingest payload. Admission charges one ingest-class
// token per file.
type IngestRequest struct {
	Files []IngestFile `json:"files"`
}

// IngestResponse acknowledges a committed ingest batch.
type IngestResponse struct {
	OK    bool `json:"ok"`
	Files int  `json:"files"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.shedDraining(w) {
		return
	}
	var req QueryRequest
	if !s.readPost(w, r, &req) {
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, "missing query")
		return
	}
	cs, ok := s.resolveClass(w, req.Class)
	if !ok {
		return
	}
	if !cs.bucket.take(1, time.Now()) {
		s.metrics.rejectAdmission(cs.cfg.Name)
		writeShed(w, http.StatusTooManyRequests,
			fmt.Sprintf("admission: class %q over rate", cs.cfg.Name))
		return
	}
	rq := s.newRequest(r.Context(), req.Query, cs, req.DeadlineMillis)
	defer rq.abort()
	if err := s.sched.enqueue(rq); err != nil {
		s.metrics.rejectQueue(cs.cfg.Name)
		writeShed(w, http.StatusTooManyRequests, err.Error())
		return
	}
	res, oc := s.await(rq)
	out := s.conclude(rq, res, oc)
	if out.status != http.StatusOK {
		out.write(w)
		return
	}
	writeJSON(w, http.StatusOK, out.answer)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.shedDraining(w) {
		return
	}
	var req BatchRequest
	if !s.readPost(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "missing queries")
		return
	}
	cs, ok := s.resolveClass(w, req.Class)
	if !ok {
		return
	}
	if !cs.bucket.take(float64(len(req.Queries)), time.Now()) {
		s.metrics.rejectAdmission(cs.cfg.Name)
		writeShed(w, http.StatusTooManyRequests,
			fmt.Sprintf("admission: class %q over rate", cs.cfg.Name))
		return
	}
	rqs := make([]*request, len(req.Queries))
	for i, q := range req.Queries {
		rqs[i] = s.newRequest(r.Context(), q, cs, req.DeadlineMillis)
		defer rqs[i].abort()
	}
	if err := s.sched.enqueueAll(rqs); err != nil {
		s.metrics.rejectQueue(cs.cfg.Name)
		writeShed(w, http.StatusTooManyRequests, err.Error())
		return
	}
	resp := BatchResponse{Answers: make([]multirag.Answer, len(rqs))}
	for i, rq := range rqs {
		res, oc := s.await(rq)
		out := s.conclude(rq, res, oc)
		if out.status != http.StatusOK {
			// The deferred aborts cancel this request's still-running siblings,
			// so their executor slots free promptly; their answers land in the
			// buffered done channels and are dropped.
			out.write(w)
			return
		}
		resp.Answers[i] = out.answer
	}
	writeJSON(w, http.StatusOK, resp)
}

// newRequest builds one admitted query request. Its context derives from the
// client connection (disconnect cancels) bounded by the effective deadline —
// the smaller of the class deadline and the request's own deadline_ms —
// counted from this moment, so time spent waiting in queue draws down the
// same budget as evaluation. With no deadline and no disconnect signal the
// context stays nil and the engine takes its context-free path.
func (s *Server) newRequest(base context.Context, query string, cs *classState, deadlineMillis int64) *request {
	rq := &request{query: query, class: cs, cost: EstimateCost(query), done: make(chan answerResult, 1)}
	d := cs.cfg.Deadline
	if deadlineMillis > 0 {
		rd := time.Duration(deadlineMillis) * time.Millisecond
		if d <= 0 || rd < d {
			d = rd
		}
	}
	if base == nil {
		base = context.Background()
	}
	switch {
	case d > 0:
		rq.ctx, rq.cancel = context.WithTimeout(base, d)
	case base.Done() != nil:
		rq.ctx, rq.cancel = context.WithCancel(base)
	}
	return rq
}

// awaitOutcome says how await resolved a request.
type awaitOutcome int

const (
	// awaitAnswered: the answerResult is valid (possibly degraded or errClosed).
	awaitAnswered awaitOutcome = iota
	// awaitQueueTimeout: the handler's queue timer won the pending→timedOut
	// CAS; no executor will ever run the request.
	awaitQueueTimeout
	// awaitDeadline / awaitCanceled: the request's context ended while it was
	// still queued — deadline budget exhausted or client disconnected — and
	// the handler claimed it before any executor could.
	awaitDeadline
	awaitCanceled
)

// await blocks for rq's answer, enforcing the queue timeout and the request
// context. Timer and context only claim requests still waiting for batch
// formation (pending→timedOut CAS): once an executor holds the request, the
// answer is on the way and await waits it out — but it cancels the context
// when the timer fires anyway, so a claimed request whose handler has given
// up wraps its evaluation up promptly and releases the executor slot instead
// of running to completion for nobody.
func (s *Server) await(rq *request) (answerResult, awaitOutcome) {
	var timerC <-chan time.Time
	if s.queueTimeout >= 0 {
		timer := time.NewTimer(s.queueTimeout)
		defer timer.Stop()
		timerC = timer.C
	}
	var ctxDone <-chan struct{}
	if rq.ctx != nil {
		ctxDone = rq.ctx.Done()
	}
	for {
		select {
		case res := <-rq.done:
			return res, awaitAnswered
		case <-timerC:
			timerC = nil
			won := rq.state.CompareAndSwap(reqPending, reqTimedOut)
			rq.abort()
			if won {
				return answerResult{}, awaitQueueTimeout
			}
			// Lost the CAS race: an executor owns the request. The abort above
			// makes its evaluation degrade promptly; wait for that answer.
		case <-ctxDone:
			ctxDone = nil
			if rq.state.CompareAndSwap(reqPending, reqTimedOut) {
				if errors.Is(rq.ctx.Err(), context.DeadlineExceeded) {
					return answerResult{}, awaitDeadline
				}
				return answerResult{}, awaitCanceled
			}
			// Claimed: the executor evaluates under this same (now done)
			// context and will deliver a degraded answer shortly.
		}
	}
}

// reqOutcome is a concluded request: the HTTP disposition of one awaited
// answer after degradation policy.
type reqOutcome struct {
	status int
	shed   bool // carries Retry-After (load-shed, retryable)
	msg    string
	answer multirag.Answer
}

func (o reqOutcome) write(w http.ResponseWriter) {
	if o.shed {
		writeShed(w, o.status, o.msg)
		return
	}
	writeError(w, o.status, o.msg)
}

// conclude classifies one awaited result into its HTTP disposition and
// records the outcome counters: completed (latency recorded), queue timeout,
// deadline exceeded, canceled, or a degraded partial answer — delivered as
// 200 + Degraded when the class opted in, converted to the matching error
// otherwise.
func (s *Server) conclude(rq *request, res answerResult, oc awaitOutcome) reqOutcome {
	name := rq.class.cfg.Name
	switch oc {
	case awaitQueueTimeout:
		s.metrics.timeout(name)
		return reqOutcome{status: http.StatusServiceUnavailable, shed: true,
			msg: fmt.Sprintf("queue timeout: class %q waited over %v", name, s.queueTimeout)}
	case awaitDeadline:
		s.metrics.deadline(name)
		return reqOutcome{status: http.StatusGatewayTimeout,
			msg: fmt.Sprintf("deadline exceeded: class %q budget spent while queued", name)}
	case awaitCanceled:
		s.metrics.canceled(name)
		return reqOutcome{status: http.StatusServiceUnavailable, msg: "request canceled"}
	}
	if res.err != nil {
		return reqOutcome{status: http.StatusServiceUnavailable, shed: true, msg: res.err.Error()}
	}
	ans := res.answer
	if !ans.Degraded {
		s.metrics.record(name, time.Since(rq.enq))
		return reqOutcome{status: http.StatusOK, answer: ans}
	}
	if rq.class.cfg.Degrade {
		s.metrics.degraded(name)
		s.metrics.record(name, time.Since(rq.enq))
		return reqOutcome{status: http.StatusOK, answer: ans}
	}
	switch ans.DegradedReason {
	case "deadline":
		s.metrics.deadline(name)
		return reqOutcome{status: http.StatusGatewayTimeout,
			msg: fmt.Sprintf("deadline exceeded: class %q", name)}
	case "canceled":
		s.metrics.canceled(name)
		return reqOutcome{status: http.StatusServiceUnavailable, msg: "request canceled"}
	default:
		s.metrics.fail(name)
		return reqOutcome{status: http.StatusInternalServerError, msg: "degraded: " + ans.DegradedReason}
	}
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.shedDraining(w) {
		return
	}
	var req IngestRequest
	if !s.readPost(w, r, &req) {
		return
	}
	if len(req.Files) == 0 {
		writeError(w, http.StatusBadRequest, "missing files")
		return
	}
	cs := s.ingestClass
	if !cs.bucket.take(float64(len(req.Files)), time.Now()) {
		s.metrics.rejectAdmission(cs.cfg.Name)
		writeShed(w, http.StatusTooManyRequests, `admission: class "ingest" over rate`)
		return
	}
	// Backpressure coupling: when the group committer's bounded admission
	// window is full, IngestFiles would block this handler on the committer
	// condvar — shed at the front door instead and let the client retry.
	if inflight, capacity := s.pressure(); inflight >= capacity {
		s.metrics.rejectQueue(cs.cfg.Name)
		writeShed(w, http.StatusTooManyRequests,
			fmt.Sprintf("ingest pipeline at capacity (%d/%d batches in flight)", inflight, capacity))
		return
	}
	files := make([]multirag.File, len(req.Files))
	for i, f := range req.Files {
		files[i] = multirag.File{
			Domain: f.Domain, Source: f.Source, Name: f.Name,
			Format: f.Format, Meta: f.Meta, Content: []byte(f.Content),
		}
	}
	start := time.Now()
	if err := s.sys.IngestFiles(files...); err != nil {
		s.metrics.fail(cs.cfg.Name)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.metrics.record(cs.cfg.Name, time.Since(start))
	writeJSON(w, http.StatusOK, IngestResponse{OK: true, Files: len(files)})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, s.sys.Stats())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, s.Metrics())
}

// HealthResponse is the /healthz payload: a tri-state status with a reason,
// instead of a bare binary probe.
type HealthResponse struct {
	// Status is "ok", "degraded" (alive but impaired — WAL append latched or
	// a circuit breaker open) or "draining" (shutting down).
	Status string `json:"status"`
	Reason string `json:"reason,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		// Fail the probe so load balancers stop routing here while in-flight
		// work finishes.
		writeJSON(w, http.StatusServiceUnavailable,
			HealthResponse{Status: "draining", Reason: "server draining for shutdown"})
		return
	}
	if reason := s.degradedReason(); reason != "" {
		// Impaired but alive: answer 200 so load balancers keep routing —
		// queries still work (possibly degraded) even when ingest durability
		// or a model-call breaker is down. The payload carries the reason for
		// operators and status-aware probes.
		writeJSON(w, http.StatusOK, HealthResponse{Status: "degraded", Reason: reason})
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
}

// degradedReason reports why the server is degraded, or "" when healthy: a
// latched WAL append failure (ingest no longer durable until restart) or an
// open circuit breaker (model calls failing fast).
func (s *Server) degradedReason() string {
	if d := s.sys.Durability(); d.Durable && d.WALAppendErr != "" {
		return "wal append latched: " + d.WALAppendErr
	}
	for _, b := range s.sys.Breakers() {
		if b.State == "open" {
			return "circuit breaker " + b.Name + " open"
		}
	}
	return ""
}

// resolveClass maps a request's class name onto its state, writing the 400
// itself when the name is unknown.
func (s *Server) resolveClass(w http.ResponseWriter, name string) (*classState, bool) {
	if name == "" {
		return s.defaultClass, true
	}
	cs := s.byName[name]
	if cs == nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown class %q", name))
		return nil, false
	}
	return cs, true
}

// readPost enforces POST + JSON body, writing the error response itself.
func (s *Server) readPost(w http.ResponseWriter, r *http.Request, into any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad JSON: %v", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, ErrorResponse{Error: msg})
}

// retryAfterSeconds is the backoff hint attached to every shed response
// (admission, full queue, queue timeout, pipeline saturation, draining).
// Overload here is transient — a committed group or a drained queue frees
// capacity within, at worst, the queue timeout — so the hint is short and
// clients honouring it converge instead of thundering.
const retryAfterSeconds = 1

// writeShed rejects a request for load or lifecycle reasons: the response
// carries a Retry-After so clients know the condition is retryable, unlike a
// 400/405 which is not.
func writeShed(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	writeJSON(w, code, ErrorResponse{Error: msg})
}

// shedDraining answers true and writes the 503 when the server is draining.
func (s *Server) shedDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	writeShed(w, http.StatusServiceUnavailable, "server draining for shutdown")
	return true
}
