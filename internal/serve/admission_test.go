package serve

import (
	"testing"
	"time"
)

func TestTokenBucketBurst(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newTokenBucket(10, 3, now)
	for i := 0; i < 3; i++ {
		if !b.take(1, now) {
			t.Fatalf("take %d within burst rejected", i)
		}
	}
	if b.take(1, now) {
		t.Fatal("take beyond burst admitted with no refill time")
	}
}

func TestTokenBucketRefill(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newTokenBucket(10, 2, now)
	if !b.take(2, now) {
		t.Fatal("initial burst rejected")
	}
	if b.take(1, now) {
		t.Fatal("empty bucket admitted")
	}
	// 100ms at 10 tokens/s refills exactly one token.
	now = now.Add(100 * time.Millisecond)
	if !b.take(1, now) {
		t.Fatal("refilled token rejected")
	}
	if b.take(1, now) {
		t.Fatal("second take after single-token refill admitted")
	}
	// Refill caps at burst: a long idle stretch must not bank extra tokens.
	now = now.Add(time.Hour)
	if !b.take(2, now) {
		t.Fatal("burst after long idle rejected")
	}
	if b.take(1, now) {
		t.Fatal("take beyond capped burst admitted")
	}
}

func TestTokenBucketClockNeverRewinds(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newTokenBucket(10, 1, now)
	if !b.take(1, now) {
		t.Fatal("initial take rejected")
	}
	// An out-of-order (earlier) timestamp must not mint tokens or move the
	// clock backwards.
	if b.take(1, now.Add(-time.Hour)) {
		t.Fatal("backwards clock minted tokens")
	}
	if !b.take(1, now.Add(100*time.Millisecond)) {
		t.Fatal("forward refill after backwards sample rejected")
	}
}

func TestTokenBucketUnlimited(t *testing.T) {
	b := newTokenBucket(0, 0, time.Unix(1000, 0))
	for i := 0; i < 1000; i++ {
		if !b.take(1, time.Unix(1000, 0)) {
			t.Fatal("unlimited bucket rejected")
		}
	}
}

func TestTokenBucketDefaultBurst(t *testing.T) {
	now := time.Unix(1000, 0)
	// Burst defaults to max(1, rate): a sub-1/s rate still admits one whole
	// request.
	b := newTokenBucket(0.5, 0, now)
	if !b.take(1, now) {
		t.Fatal("default burst below one request")
	}
	if b.take(1, now) {
		t.Fatal("sub-1/s bucket admitted a second instant request")
	}
}
