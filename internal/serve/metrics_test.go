package serve

import (
	"math"
	"testing"
	"time"
)

func TestJainIndex(t *testing.T) {
	cases := []struct {
		x    []float64
		want float64
	}{
		{nil, 1},
		{[]float64{0, 0}, 1},
		{[]float64{5}, 1},
		{[]float64{10, 10, 10}, 1},
		{[]float64{1, 0}, 0.5},
		{[]float64{4, 0, 0, 0}, 0.25},
		{[]float64{2, 1}, 0.9},
	}
	for _, c := range cases {
		if got := JainIndex(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("JainIndex(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

// TestMetricsSnapshotUsesNearestRank pins the serving metrics onto the fixed
// shared percentile helper: 50 completed requests at 1..50ms must report
// p95 = 48ms (rank ceil(0.95*50)=48), not the 47ms the old truncating
// closure produced.
func TestMetricsSnapshotUsesNearestRank(t *testing.T) {
	m := newMetrics([]string{"c"})
	for i := 1; i <= 50; i++ {
		m.record("c", time.Duration(i)*time.Millisecond)
	}
	snap := m.snapshot(PolicyFCFS)
	if len(snap.Classes) != 1 {
		t.Fatalf("classes: %d", len(snap.Classes))
	}
	c := snap.Classes[0]
	if c.P50Micros != 25000 || c.P95Micros != 48000 || c.P99Micros != 50000 || c.MaxMicros != 50000 {
		t.Fatalf("percentiles: %+v", c)
	}
	if c.Completed != 50 {
		t.Fatalf("completed: %d", c.Completed)
	}
	if math.Abs(c.MeanMicros-25500) > 1e-9 {
		t.Fatalf("mean: %v", c.MeanMicros)
	}
}
