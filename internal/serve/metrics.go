package serve

import (
	"sync"
	"time"

	"multirag"
)

// ClassMetrics is one SLO class's serving report: outcome counters plus the
// completed-request latency distribution (queue wait + execution, measured
// from admission to answer delivery), percentiles by the shared nearest-rank
// helper.
type ClassMetrics struct {
	Name              string  `json:"name"`
	Completed         int64   `json:"completed"`
	RejectedAdmission int64   `json:"rejected_admission"`
	RejectedQueue     int64   `json:"rejected_queue"`
	TimedOut          int64   `json:"timed_out"`
	Failed            int64   `json:"failed"`
	// DeadlineExceeded counts requests that exhausted their end-to-end budget
	// and were not delivered — while still queued, or mid-evaluation with
	// degradation disabled for the class. Canceled counts requests whose
	// client went away before an answer could be delivered. Degraded counts
	// partial answers delivered with 200 + Degraded under the class's
	// Degrade policy; those are also included in Completed.
	DeadlineExceeded int64   `json:"deadline_exceeded"`
	Canceled         int64   `json:"canceled"`
	Degraded         int64   `json:"degraded"`
	P50Micros        float64 `json:"p50_us"`
	P95Micros         float64 `json:"p95_us"`
	P99Micros         float64 `json:"p99_us"`
	MaxMicros         float64 `json:"max_us"`
	MeanMicros        float64 `json:"mean_us"`
	ThroughputRPS     float64 `json:"throughput_rps"`
}

// MetricsSnapshot is the /v1/metrics payload.
type MetricsSnapshot struct {
	Policy        string         `json:"policy"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	Classes       []ClassMetrics `json:"classes"`
	// JainFairness is Jain's index (Σx)²/(n·Σx²) over the per-class completed
	// counts of classes that saw any traffic: 1.0 = perfectly even service
	// across classes, 1/n = one class monopolised the server.
	JainFairness float64 `json:"jain_fairness"`
	// QueueDepths reports the scheduler's pending-request queue length per
	// class at snapshot time.
	QueueDepths map[string]int `json:"queue_depths"`
	// IngestInflight/IngestCapacity mirror the group committer's admission
	// state (core.IngestPressure) — the coupling that turns committer
	// saturation into front-door 429s.
	IngestInflight int `json:"ingest_inflight"`
	IngestCapacity int `json:"ingest_capacity"`
	// Breakers reports the engine's model-call circuit breakers; Durability
	// the WAL append latch and checkpoint horizon; Recovery what startup
	// crash recovery found when the server was opened over an existing data
	// directory (nil for in-memory deployments).
	Breakers   []multirag.BreakerInfo  `json:"breakers,omitempty"`
	Durability multirag.DurabilityInfo `json:"durability"`
	Recovery   *multirag.RecoveryInfo  `json:"recovery,omitempty"`
	// Router reports replica routing state — per-replica health, lag,
	// anti-entropy counters, routing/hedging counters and breaker states —
	// when the server was configured with a ReplicaSet; nil otherwise.
	Router *RouterMetrics `json:"router,omitempty"`
}

// classCounters accumulates one class's outcomes.
type classCounters struct {
	completed         int64
	rejectedAdmission int64
	rejectedQueue     int64
	timedOut          int64
	failed            int64
	deadlineExceeded  int64
	canceled          int64
	degraded          int64
	lat               []time.Duration
}

// metrics collects per-class serving outcomes under one mutex. Latencies are
// appended raw and digested only at snapshot time, keeping the record path a
// few instructions.
type metrics struct {
	mu      sync.Mutex
	classes map[string]*classCounters
	order   []string
	start   time.Time
}

func newMetrics(order []string) *metrics {
	m := &metrics{classes: map[string]*classCounters{}, order: order, start: time.Now()}
	for _, name := range order {
		m.classes[name] = &classCounters{}
	}
	return m
}

func (m *metrics) class(name string) *classCounters {
	c := m.classes[name]
	if c == nil {
		c = &classCounters{}
		m.classes[name] = c
		m.order = append(m.order, name)
	}
	return c
}

func (m *metrics) record(name string, d time.Duration) {
	m.mu.Lock()
	c := m.class(name)
	c.completed++
	c.lat = append(c.lat, d)
	m.mu.Unlock()
}

func (m *metrics) rejectAdmission(name string) {
	m.mu.Lock()
	m.class(name).rejectedAdmission++
	m.mu.Unlock()
}

func (m *metrics) rejectQueue(name string) {
	m.mu.Lock()
	m.class(name).rejectedQueue++
	m.mu.Unlock()
}

func (m *metrics) timeout(name string) {
	m.mu.Lock()
	m.class(name).timedOut++
	m.mu.Unlock()
}

func (m *metrics) fail(name string) {
	m.mu.Lock()
	m.class(name).failed++
	m.mu.Unlock()
}

func (m *metrics) deadline(name string) {
	m.mu.Lock()
	m.class(name).deadlineExceeded++
	m.mu.Unlock()
}

func (m *metrics) canceled(name string) {
	m.mu.Lock()
	m.class(name).canceled++
	m.mu.Unlock()
}

func (m *metrics) degraded(name string) {
	m.mu.Lock()
	m.class(name).degraded++
	m.mu.Unlock()
}

// snapshot digests the counters into the wire shape.
func (m *metrics) snapshot(policy string) MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	uptime := time.Since(m.start)
	snap := MetricsSnapshot{
		Policy:        policy,
		UptimeSeconds: uptime.Seconds(),
		JainFairness:  1,
	}
	var completed []float64
	for _, name := range m.order {
		c := m.classes[name]
		cm := ClassMetrics{
			Name:              name,
			Completed:         c.completed,
			RejectedAdmission: c.rejectedAdmission,
			RejectedQueue:     c.rejectedQueue,
			TimedOut:          c.timedOut,
			Failed:            c.failed,
			DeadlineExceeded:  c.deadlineExceeded,
			Canceled:          c.canceled,
			Degraded:          c.degraded,
		}
		if len(c.lat) > 0 {
			qs := Quantiles(c.lat, 0.50, 0.95, 0.99, 1)
			cm.P50Micros = micros(qs[0])
			cm.P95Micros = micros(qs[1])
			cm.P99Micros = micros(qs[2])
			cm.MaxMicros = micros(qs[3])
			var sum time.Duration
			for _, d := range c.lat {
				sum += d
			}
			cm.MeanMicros = micros(sum) / float64(len(c.lat))
		}
		if uptime > 0 {
			cm.ThroughputRPS = float64(c.completed) / uptime.Seconds()
		}
		if c.completed+c.rejectedAdmission+c.rejectedQueue+c.timedOut+c.failed+
			c.deadlineExceeded+c.canceled > 0 {
			completed = append(completed, float64(c.completed))
		}
		snap.Classes = append(snap.Classes, cm)
	}
	snap.JainFairness = JainIndex(completed)
	return snap
}

// JainIndex is Jain's fairness index (Σx)²/(n·Σx²) over the per-class
// allocation x (completed requests here): 1 when every class got the same
// share, 1/n when one class got everything. An empty or all-zero allocation
// is vacuously fair.
func JainIndex(x []float64) float64 {
	if len(x) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, v := range x {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(x)) * sumSq)
}

func micros(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e3
}
