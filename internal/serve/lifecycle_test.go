package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"multirag"
)

// lifecycleQueries exercises every intent against the case-study corpus; the
// restart-resume test demands bit-identical answers across a shutdown.
var lifecycleQueries = []string{
	"What is the status of CA981?",
	"What is the delay reason of CA981?",
	"Do CA981 and MU588 have the same status?",
	"Anything new about CA981 today",
}

func TestDrainRejectsWithRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// Healthy first: requests succeed, probe passes.
	resp, _ := postJSON(t, ts.URL+"/v1/query", QueryRequest{Query: "What is the status of CA981?"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain query status = %d", resp.StatusCode)
	}
	if resp, _ := getJSON(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain health status = %d", resp.StatusCode)
	}

	s.Drain()
	if !s.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	for _, tc := range []struct {
		path string
		body any
	}{
		{"/v1/query", QueryRequest{Query: "What is the status of CA981?"}},
		{"/v1/query/batch", BatchRequest{Queries: []string{"What is the status of CA981?"}}},
		{"/v1/ingest", IngestRequest{Files: []IngestFile{{Domain: "d", Source: "s", Name: "n", Format: "text", Content: "x"}}}},
	} {
		resp, body := postJSON(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s while draining: status = %d body = %s", tc.path, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s while draining: no Retry-After header", tc.path)
		}
	}
	// The health probe fails so load balancers stop routing here.
	if resp, _ := getJSON(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("health while draining: status = %d", resp.StatusCode)
	}
	// Reads that don't enqueue work keep serving (operators watch the drain).
	if resp, _ := getJSON(t, ts.URL+"/v1/metrics"); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics while draining: status = %d", resp.StatusCode)
	}
}

func TestShedResponsesCarryRetryAfter(t *testing.T) {
	// Zero-burst interactive class: the very first query is shed with 429.
	_, ts := newTestServer(t, Config{Classes: []Class{
		{Name: "interactive", Rate: 0.0001, Burst: 0.0001},
	}})
	resp, _ := postJSON(t, ts.URL+"/v1/query", QueryRequest{Query: "What is the status of CA981?"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate query status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
}

// TestCloseWaitsForExecutors pins the goroutine-leak fix: Close must not
// return while an executor still runs a batch, so a durable System can be
// closed immediately afterwards without racing in-flight query work.
func TestCloseWaitsForExecutors(t *testing.T) {
	s, ts := newTestServer(t, Config{Executors: 3})
	done := make(chan struct{})
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/query", QueryRequest{Query: "What is the status of CA981?"})
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("in-flight query status = %d", resp.StatusCode)
		}
		close(done)
	}()
	time.Sleep(10 * time.Millisecond) // let the request reach the queue
	closed := make(chan struct{})
	go func() {
		s.Close()
		s.Close() // idempotent
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return; executors not draining")
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed")
	}
}

// TestServeRestartResume is the end-to-end shutdown contract: ingest over
// HTTP into a durable system, drain + close + System.Close (the SIGTERM
// path), restart both layers from the same directory, and require the full
// query sweep to produce bit-identical answers with zero lost batches.
func TestServeRestartResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")

	sys, info, err := multirag.OpenDurable(dir, multirag.Config{Seed: 1})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	srv, err := New(Config{System: sys})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	if info.CheckpointLSN != 0 || info.RecordsReplayed != 0 {
		t.Fatalf("fresh dir reported recovery: %+v", info)
	}

	// Ingest the corpus over the real HTTP path, one acknowledged batch per
	// file: every 200 is a durability promise the restart must keep.
	for _, f := range corpusFiles() {
		req := IngestRequest{Files: []IngestFile{{
			Domain: f.Domain, Source: f.Source, Name: f.Name,
			Format: f.Format, Content: string(f.Content),
		}}}
		resp, body := postJSON(t, ts.URL+"/v1/ingest", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %s: status %d body %s", f.Name, resp.StatusCode, body)
		}
	}
	before := askAll(t, ts.URL)
	statsBefore := sys.Stats()

	// SIGTERM sequence: drain, stop HTTP, stop executors, flush state.
	srv.Drain()
	ts.Close()
	srv.Close()
	if err := sys.Close(); err != nil {
		t.Fatalf("System.Close: %v", err)
	}

	// Restart from the same directory.
	sys2, info2, err := multirag.OpenDurable(dir, multirag.Config{Seed: 1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer sys2.Close()
	if info2.CheckpointLSN == 0 || info2.RecordsReplayed != 0 || info2.Truncated {
		t.Fatalf("clean restart recovery = %+v, want checkpoint-only", info2)
	}
	srv2, err := New(Config{System: sys2})
	if err != nil {
		t.Fatalf("serve.New after restart: %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() { ts2.Close(); srv2.Close() }()

	statsAfter := sys2.Stats()
	if statsBefore.Entities != statsAfter.Entities ||
		statsBefore.Triples != statsAfter.Triples ||
		statsBefore.HomologousNodes != statsAfter.HomologousNodes ||
		statsBefore.IsolatedClaims != statsAfter.IsolatedClaims ||
		statsBefore.Chunks != statsAfter.Chunks {
		t.Fatalf("corpus stats changed across restart:\n before %+v\n after  %+v", statsBefore, statsAfter)
	}
	after := askAll(t, ts2.URL)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("answers diverged across restart:\n before %+v\n after  %+v", before, after)
	}
}

// askAll runs the query sweep over HTTP and returns the decoded answers.
func askAll(t *testing.T, base string) []multirag.Answer {
	t.Helper()
	out := make([]multirag.Answer, len(lifecycleQueries))
	for i, q := range lifecycleQueries {
		resp, body := postJSON(t, base+"/v1/query", QueryRequest{Query: q})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %q: status %d body %s", q, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &out[i]); err != nil {
			t.Fatalf("query %q: decode: %v", q, err)
		}
	}
	return out
}
