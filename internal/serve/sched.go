package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"multirag"
)

// Batch-formation policies.
const (
	// PolicyFCFS serves requests strictly in arrival order across classes.
	PolicyFCFS = "fcfs"
	// PolicySJF serves the cheapest estimated query first (shortest job
	// first), arrival order among equals — trades worst-case wait of
	// expensive queries for lower mean latency under mixed load.
	PolicySJF = "sjf"
	// PolicyPriority serves the highest-priority class first (Class.Priority,
	// higher wins), arrival order within a class.
	PolicyPriority = "priority"
)

// Estimated query costs for SJF ordering, mirroring the executor's fan-out
// shapes: a lookup touches one homologous group; a fallback adds chunk
// retrieval plus per-query LLM extraction; a comparison evaluates two arms; a
// multi-hop query fans out one bridge sub-question per hop-1 value.
const (
	costLookup     = 1
	costFallback   = 3
	costComparison = 4
	costMultiHop   = 5
)

// EstimateCost scores a query's expected execution cost for SJF batch
// formation, classifying it by the same grammar the executor parses.
func EstimateCost(query string) int {
	q := strings.ToLower(strings.TrimSpace(query))
	switch {
	case strings.HasPrefix(q, "do ") && strings.Contains(q, " have the same "):
		return costComparison
	case strings.HasPrefix(q, "what is the ") && strings.Contains(q, " of the "):
		return costMultiHop
	case strings.HasPrefix(q, "what is the "):
		return costLookup
	default:
		return costFallback
	}
}

// Request lifecycle states. A request is pending while queued; the executor
// claims it with a pending→running CAS before including it in a batch, and
// the waiting handler claims it with a pending→timedOut CAS when its queue
// timeout fires — whoever wins the CAS owns the outcome, so a request is
// never both answered and timed out.
const (
	reqPending int32 = iota
	reqRunning
	reqTimedOut
)

// request is one admitted query waiting for batch formation.
//
// Channel discipline: done is buffered (capacity 1) and receives exactly one
// send, from whichever side wins the request's CAS — the executor that claims
// it (pending→running, sends the answer) or the scheduler's close
// (pending→timedOut, sends errClosed). A handler that times the request out
// itself (pending→timedOut in await) receives nothing, and nothing is sent:
// no path can leave a sender blocked on the channel.
type request struct {
	query string
	class *classState
	cost  int
	seq   uint64
	enq   time.Time
	state atomic.Int32
	done  chan answerResult

	// ctx carries the request's end-to-end budget — the smaller of the class
	// deadline and the request's own deadline_ms, counted from admission — and
	// the client's disconnect signal. nil when the request has neither (the
	// evaluation then takes the context-free, bit-identical engine path).
	ctx    context.Context
	cancel context.CancelFunc
}

// abort cancels the request's context, if it has one. Idempotent; safe from
// any goroutine.
func (r *request) abort() {
	if r.cancel != nil {
		r.cancel()
	}
}

type answerResult struct {
	answer multirag.Answer
	err    error
}

// classState is one configured SLO class at runtime: its admission bucket
// and its bounded FIFO of pending requests (guarded by the scheduler mutex).
type classState struct {
	cfg    Class
	bucket *tokenBucket
	fifo   []*request
}

// errQueueFull / errClosed are the scheduler's rejection reasons.
var (
	errQueueFull = errors.New("serve: class queue full")
	errClosed    = errors.New("serve: server closed")
)

// scheduler owns the pending-request queues and batch formation. Executors
// block on the condvar, form one batch per wakeup under the mutex and run it
// outside.
type scheduler struct {
	mu       sync.Mutex
	cond     *sync.Cond
	classes  []*classState
	pending  int
	seq      uint64
	closed   bool
	policy   string
	maxBatch int
}

func newScheduler(policy string, classes []*classState, maxBatch int) *scheduler {
	s := &scheduler{classes: classes, policy: policy, maxBatch: maxBatch}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// enqueue admits one request into its class queue, rejecting when the
// bounded queue is full — the "bounded queues, not unbounded buffering"
// half of admission control.
func (s *scheduler) enqueue(r *request) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	if len(r.class.fifo) >= r.class.cfg.QueueCap {
		return errQueueFull
	}
	r.seq = s.seq
	s.seq++
	r.enq = time.Now()
	r.class.fifo = append(r.class.fifo, r)
	s.pending++
	s.cond.Signal()
	return nil
}

// enqueueAll admits a whole batch atomically: either every request fits its
// class queue or none is enqueued.
func (s *scheduler) enqueueAll(rs []*request) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	need := map[*classState]int{}
	for _, r := range rs {
		need[r.class]++
	}
	for cs, n := range need {
		if len(cs.fifo)+n > cs.cfg.QueueCap {
			return errQueueFull
		}
	}
	now := time.Now()
	for _, r := range rs {
		r.seq = s.seq
		s.seq++
		r.enq = now
		r.class.fifo = append(r.class.fifo, r)
		s.pending++
	}
	s.cond.Broadcast()
	return nil
}

// next blocks until a batch can be formed or the scheduler closes, returning
// (nil, false) on close.
func (s *scheduler) next() ([]*request, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil, false
		}
		if batch := s.formBatchLocked(); len(batch) > 0 {
			return batch, true
		}
		// Empty batch means the queues drained (anything popped had already
		// timed out); block until the next enqueue.
		s.cond.Wait()
	}
}

// formBatchLocked pops up to maxBatch requests in policy order, dropping any
// whose handler already timed out (their pending→running CAS fails).
func (s *scheduler) formBatchLocked() []*request {
	var batch []*request
	for len(batch) < s.maxBatch {
		r := s.popLocked()
		if r == nil {
			break
		}
		s.pending--
		if !r.state.CompareAndSwap(reqPending, reqRunning) {
			continue // handler timed it out while queued; drop
		}
		batch = append(batch, r)
	}
	return batch
}

// popLocked removes and returns the next request per policy, or nil when
// every queue is empty.
func (s *scheduler) popLocked() *request {
	switch s.policy {
	case PolicySJF:
		return s.popSJFLocked()
	case PolicyPriority:
		return s.popPriorityLocked()
	default:
		return s.popFCFSLocked()
	}
}

// popFCFSLocked takes the globally oldest request. Per-class FIFOs are
// seq-ordered, so the global minimum is at one of the heads.
func (s *scheduler) popFCFSLocked() *request {
	var best *classState
	for _, cs := range s.classes {
		if len(cs.fifo) == 0 {
			continue
		}
		if best == nil || cs.fifo[0].seq < best.fifo[0].seq {
			best = cs
		}
	}
	return popHead(best)
}

// popPriorityLocked takes the head of the highest-priority non-empty class,
// breaking priority ties by arrival order.
func (s *scheduler) popPriorityLocked() *request {
	var best *classState
	for _, cs := range s.classes {
		if len(cs.fifo) == 0 {
			continue
		}
		if best == nil ||
			cs.cfg.Priority > best.cfg.Priority ||
			(cs.cfg.Priority == best.cfg.Priority && cs.fifo[0].seq < best.fifo[0].seq) {
			best = cs
		}
	}
	return popHead(best)
}

// popSJFLocked takes the cheapest estimated request anywhere in the queues
// (not just the heads — a cheap lookup may sit behind an expensive multi-hop
// in its own class), breaking cost ties by arrival order. Queues are bounded
// by QueueCap, so the scan is O(queued).
func (s *scheduler) popSJFLocked() *request {
	var (
		bestCS  *classState
		bestIdx = -1
	)
	for _, cs := range s.classes {
		for i, r := range cs.fifo {
			if bestIdx < 0 ||
				r.cost < bestCS.fifo[bestIdx].cost ||
				(r.cost == bestCS.fifo[bestIdx].cost && r.seq < bestCS.fifo[bestIdx].seq) {
				bestCS, bestIdx = cs, i
			}
		}
	}
	if bestIdx < 0 {
		return nil
	}
	r := bestCS.fifo[bestIdx]
	bestCS.fifo = append(bestCS.fifo[:bestIdx], bestCS.fifo[bestIdx+1:]...)
	return r
}

func popHead(cs *classState) *request {
	if cs == nil {
		return nil
	}
	r := cs.fifo[0]
	cs.fifo = cs.fifo[1:]
	return r
}

// depths reports per-class queue lengths (metrics endpoint).
func (s *scheduler) depths() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.classes))
	for _, cs := range s.classes {
		out[cs.cfg.Name] = len(cs.fifo)
	}
	return out
}

// close rejects everything still queued and wakes the executors so they
// exit. In-flight batches complete and deliver normally.
func (s *scheduler) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, cs := range s.classes {
		for _, r := range cs.fifo {
			if r.state.CompareAndSwap(reqPending, reqTimedOut) {
				r.done <- answerResult{err: errClosed}
			}
		}
		cs.fifo = nil
	}
	s.pending = 0
	s.cond.Broadcast()
}
