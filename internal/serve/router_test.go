package serve

import (
	"context"
	"runtime"
	"testing"
	"time"

	"multirag"
	"multirag/internal/fault"
)

var routerQueries = []string{
	"What is the status of CA981?",
	"What is the delay reason of CA981?",
	"What is the status of MU588?",
}

// newReplicatedSystem builds a corpus-loaded primary plus a caught-up
// replica set of n replicas. The corpus is ingested before the set attaches,
// so every replica is seeded with the full state and no feed wait is needed.
func newReplicatedSystem(t *testing.T, n int) (*multirag.System, *multirag.ReplicaSet) {
	t.Helper()
	sys := newCorpusSystem(t)
	set, err := multirag.NewReplicaSet(sys, multirag.ReplicaSetConfig{Replicas: n})
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	t.Cleanup(set.Close)
	return sys, set
}

func newTestRouter(t *testing.T, sys *multirag.System, set *multirag.ReplicaSet,
	route string, hedgeAfter time.Duration, maxLag uint64) *router {
	t.Helper()
	rt, err := newRouter(sys, set, route, hedgeAfter, maxLag)
	if err != nil {
		t.Fatalf("newRouter: %v", err)
	}
	return rt
}

func valuesEqual(a, b multirag.Answer) bool {
	if a.Query != b.Query || a.Found != b.Found || len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			return false
		}
	}
	return true
}

// TestRouterRoundRobinServesFromReplicas pins that batches actually land on
// replicas (not the primary) and answers match primary serving exactly.
func TestRouterRoundRobinServesFromReplicas(t *testing.T) {
	sys, set := newReplicatedSystem(t, 2)
	rt := newTestRouter(t, sys, set, RouteRoundRobin, 0, 0)

	want := sys.AskEach(make([]context.Context, len(routerQueries)), routerQueries)
	for i := 0; i < 4; i++ {
		got := rt.run(make([]context.Context, len(routerQueries)), routerQueries)
		for j := range got {
			if !valuesEqual(got[j], want[j]) {
				t.Fatalf("round %d answer %d: %+v != primary %+v", i, j, got[j], want[j])
			}
		}
	}
	if rt.replicaBatches.Load() != 4 || rt.primaryBatches.Load() != 0 {
		t.Fatalf("replica/primary batches = %d/%d, want 4/0",
			rt.replicaBatches.Load(), rt.primaryBatches.Load())
	}
}

// TestRouterPrimaryOnlyNeverTouchesReplicas pins the warm-standby policy.
func TestRouterPrimaryOnlyNeverTouchesReplicas(t *testing.T) {
	sys, set := newReplicatedSystem(t, 2)
	rt := newTestRouter(t, sys, set, RoutePrimaryOnly, 0, 0)
	rt.run(make([]context.Context, 1), routerQueries[:1])
	if rt.primaryBatches.Load() != 1 || rt.replicaBatches.Load() != 0 {
		t.Fatalf("primary/replica batches = %d/%d, want 1/0",
			rt.primaryBatches.Load(), rt.replicaBatches.Load())
	}
}

// TestRouterStalenessGuardFailsOverToPrimary pins bounded staleness: a live
// replica that has fallen more than MaxLag commits behind is not routed to,
// and reads fail over to the primary until it catches up.
func TestRouterStalenessGuardFailsOverToPrimary(t *testing.T) {
	defer fault.Reset()
	sys := newCorpusSystem(t)
	set, err := multirag.NewReplicaSet(sys, multirag.ReplicaSetConfig{Replicas: 1, QueueLen: 64})
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	defer set.Close()
	rt := newTestRouter(t, sys, set, RouteRoundRobin, 0, 1)

	// Stall the feed pump, then commit past the lag bound.
	fault.Enable(fault.PointClusterFeed, fault.Fault{Kind: fault.KindHang})
	for i := 0; i < 3; i++ {
		if err := sys.IngestFiles(multirag.File{Domain: "flights", Source: "airport-api",
			Name: "filler", Format: "text", Content: []byte("The status of XX001 is Scheduled.")}); err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}
	rep := set.Replicas()[0]
	if lag := set.CommittedLSN() - rep.Position(); lag <= 1 {
		t.Fatalf("replica lag %d, want > 1 under a hung feed", lag)
	}
	rt.run(make([]context.Context, 1), routerQueries[:1])
	if rt.primaryBatches.Load() != 1 {
		t.Fatalf("lagging replica was routed to (primary batches = %d)", rt.primaryBatches.Load())
	}

	// Release the feed and wait for catch-up; the replica becomes eligible
	// again without any probe (its breaker never tripped).
	fault.Disable(fault.PointClusterFeed)
	deadline := time.Now().Add(10 * time.Second)
	for rep.Position() != set.CommittedLSN() || !rep.Live() {
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up: pos %d vs %d", rep.Position(), set.CommittedLSN())
		}
		time.Sleep(2 * time.Millisecond)
	}
	rt.run(make([]context.Context, 1), routerQueries[:1])
	if rt.replicaBatches.Load() != 1 {
		t.Fatalf("caught-up replica not re-admitted (replica batches = %d)", rt.replicaBatches.Load())
	}
}

// TestRouterFailoverDrainsErroringReplicaAndReadmits pins the breaker cycle:
// a replica whose query path fails is served around (answers stay correct),
// trips its breaker after consecutive strikes, is drained, and — once the
// fault clears and the cooldown elapses — is re-admitted by a background
// probe.
func TestRouterFailoverDrainsErroringReplicaAndReadmits(t *testing.T) {
	defer fault.Reset()
	sys, set := newReplicatedSystem(t, 1)
	rt := newTestRouter(t, sys, set, RouteRoundRobin, 0, 0)
	// Shrink the breaker cooldown so re-admission is testable.
	rt.targets[0].breaker = fault.NewBreaker("router.replica-0", 3, 50*time.Millisecond, nil)

	want := sys.AskEach(make([]context.Context, 1), routerQueries[:1])
	fault.Enable(fault.PointClusterQuery, fault.Fault{Kind: fault.KindError})
	for i := 0; i < 3; i++ {
		got := rt.run(make([]context.Context, 1), routerQueries[:1])
		if !valuesEqual(got[0], want[0]) {
			t.Fatalf("round %d: failover answer %+v != primary %+v", i, got[0], want[0])
		}
	}
	if rt.failovers.Load() != 3 {
		t.Fatalf("failovers = %d, want 3", rt.failovers.Load())
	}
	if st := rt.targets[0].breaker.State(); st != fault.BreakerOpen {
		t.Fatalf("breaker state after 3 strikes = %v, want open", st)
	}
	// Drained: the next batch goes straight to the primary without touching
	// the replica (no new failover — the replica was never picked).
	rt.run(make([]context.Context, 1), routerQueries[:1])
	if rt.failovers.Load() != 3 {
		t.Fatalf("drained replica still being tried (failovers = %d)", rt.failovers.Load())
	}

	fault.Disable(fault.PointClusterQuery)
	// After the cooldown, picking kicks a background probe which re-closes
	// the breaker; subsequent batches land on the replica again.
	deadline := time.Now().Add(10 * time.Second)
	before := rt.replicaBatches.Load()
	for rt.replicaBatches.Load() == before {
		if time.Now().After(deadline) {
			t.Fatalf("replica never re-admitted: breaker %v", rt.targets[0].breaker.State())
		}
		got := rt.run(make([]context.Context, 1), routerQueries[:1])
		if !valuesEqual(got[0], want[0]) {
			t.Fatalf("answer during re-admission %+v != %+v", got[0], want[0])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRouterHedgedCancelsLoser is the satellite goroutine-watermark test: a
// hedged dispatch whose first target hangs is answered by the second, the
// loser's evaluation is canceled through the merged contexts (the hang
// releases on cancellation), its breaker records the loss, and no goroutine
// survives the exchange.
func TestRouterHedgedCancelsLoser(t *testing.T) {
	defer fault.Reset()
	base := runtime.NumGoroutine()
	func() {
		sys, set := newReplicatedSystem(t, 1)
		rt := newTestRouter(t, sys, set, RouteRoundRobin, 10*time.Millisecond, 0)

		want := sys.AskEach(make([]context.Context, len(routerQueries)), routerQueries)
		// Hang the replica's query path; the hedge (the primary, as the only
		// other target) answers, and cancellation releases the hang.
		fault.Enable(fault.PointClusterQuery, fault.Fault{Kind: fault.KindHang})
		start := time.Now()
		got := rt.run(make([]context.Context, len(routerQueries)), routerQueries)
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("hedged batch took %v — loser was waited on, not canceled", elapsed)
		}
		for j := range got {
			if !valuesEqual(got[j], want[j]) {
				t.Fatalf("hedged answer %d: %+v != primary %+v", j, got[j], want[j])
			}
		}
		if rt.hedges.Load() != 1 || rt.hedgeWins.Load() != 1 {
			t.Fatalf("hedges/wins = %d/%d, want 1/1", rt.hedges.Load(), rt.hedgeWins.Load())
		}
		fault.Reset()
		set.Close()
	}()
	waitServeGoroutines(t, base)
}

// TestRouterHedgedEqualsUnhedged is the satellite property test: over the
// seeded corpus, hedged and unhedged routing return identical answer values
// for every query — hedging changes tail latency, never results.
func TestRouterHedgedEqualsUnhedged(t *testing.T) {
	sys, set := newReplicatedSystem(t, 2)
	unhedged := newTestRouter(t, sys, set, RouteRoundRobin, 0, 0)
	hedged := newTestRouter(t, sys, set, RouteRoundRobin, time.Nanosecond, 0)

	for round := 0; round < 3; round++ {
		a := unhedged.run(make([]context.Context, len(routerQueries)), routerQueries)
		b := hedged.run(make([]context.Context, len(routerQueries)), routerQueries)
		for j := range a {
			if !valuesEqual(a[j], b[j]) {
				t.Fatalf("round %d query %d: unhedged %+v != hedged %+v", round, j, a[j], b[j])
			}
		}
	}
}

// TestRouterLeastLoadedPicksIdleReplica pins the least-loaded policy with a
// deterministic inflight skew.
func TestRouterLeastLoadedPicksIdleReplica(t *testing.T) {
	sys, set := newReplicatedSystem(t, 2)
	rt := newTestRouter(t, sys, set, RouteLeastLoaded, 0, 0)
	rt.targets[0].inflight.Store(5)
	if got := rt.pickExcept(nil); got != rt.targets[1] {
		t.Fatal("least-loaded did not pick the idle replica")
	}
	rt.targets[1].inflight.Store(9)
	if got := rt.pickExcept(nil); got != rt.targets[0] {
		t.Fatal("least-loaded did not follow the load skew")
	}
}

// TestServeMetricsExposeRouter pins the /v1/metrics wiring end to end.
func TestServeMetricsExposeRouter(t *testing.T) {
	sys, set := newReplicatedSystem(t, 2)
	s, err := New(Config{System: sys, Replicas: set, Route: RouteRoundRobin})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	snap := s.Metrics()
	if snap.Router == nil {
		t.Fatal("metrics missing router section")
	}
	if snap.Router.Route != RouteRoundRobin || len(snap.Router.Replicas) != 2 || len(snap.Router.Breakers) != 2 {
		t.Fatalf("router metrics = %+v", snap.Router)
	}
	for _, r := range snap.Router.Replicas {
		if r.State != "live" {
			t.Fatalf("replica %s state %q at rest, want live", r.Name, r.State)
		}
	}
}
