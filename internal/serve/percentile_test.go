package serve

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// refPercentile is the sort-free nearest-rank oracle: the smallest sample
// value v such that at least ceil(p*n) observations are <= v, found by
// counting rather than sorting.
func refPercentile(sample []time.Duration, p float64) time.Duration {
	n := len(sample)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	best := time.Duration(math.MaxInt64)
	for _, v := range sample {
		if v > best {
			continue
		}
		le := 0
		for _, w := range sample {
			if w <= v {
				le++
			}
		}
		if le >= rank {
			best = v
		}
	}
	return best
}

func TestPercentileMatchesCountingOracleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ps := []float64{0, 0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1}
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(120)
		sample := make([]time.Duration, n)
		for i := range sample {
			// Coarse values force duplicates, the case where naive index
			// arithmetic and rank semantics disagree most often.
			sample[i] = time.Duration(rng.Intn(20)) * time.Millisecond
		}
		for _, p := range ps {
			got := Percentile(sample, p)
			want := refPercentile(sample, p)
			if got != want {
				t.Fatalf("trial %d n=%d p=%g: Percentile=%v oracle=%v sample=%v",
					trial, n, p, got, want, sample)
			}
		}
		qs := Quantiles(sample, ps...)
		for i, p := range ps {
			if want := refPercentile(sample, p); qs[i] != want {
				t.Fatalf("trial %d n=%d Quantiles[%g]=%v oracle=%v", trial, n, p, qs[i], want)
			}
		}
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if got := Percentile(nil, 0.99); got != 0 {
		t.Fatalf("empty sample: got %v, want 0", got)
	}
	one := []time.Duration{42 * time.Millisecond}
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := Percentile(one, p); got != one[0] {
			t.Fatalf("n=1 p=%g: got %v, want %v", p, got, one[0])
		}
	}
	two := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if got := Percentile(two, 0.5); got != two[0] {
		t.Fatalf("n=2 p50: got %v, want %v", got, two[0])
	}
	if got := Percentile(two, 0.51); got != two[1] {
		t.Fatalf("n=2 p51: got %v, want %v", got, two[1])
	}
	if got := Percentile(two, 1); got != two[1] {
		t.Fatalf("n=2 max: got %v, want %v", got, two[1])
	}
}

// TestPercentileSmallNUnbiased pins the motivating bug: with 50 samples the
// nearest-rank p95 is the 48th order statistic (rank ceil(0.95*50) = 48);
// the old truncating closure returned the 47th.
func TestPercentileSmallNUnbiased(t *testing.T) {
	sample := make([]time.Duration, 50)
	for i := range sample {
		sample[i] = time.Duration(i+1) * time.Millisecond
	}
	if got := Percentile(sample, 0.95); got != 48*time.Millisecond {
		t.Fatalf("n=50 p95: got %v, want 48ms", got)
	}
	if got := Percentile(sample, 0.99); got != 50*time.Millisecond {
		t.Fatalf("n=50 p99: got %v, want 50ms", got)
	}
	if got := Percentile(sample, 0.50); got != 25*time.Millisecond {
		t.Fatalf("n=50 p50: got %v, want 25ms", got)
	}
}
