package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"testing"
	"time"

	"multirag"
	"multirag/internal/fault"
)

// waitServeGoroutines is the serve-side no-leak watermark (see the core
// chaos suite for the rationale).
func waitServeGoroutines(t *testing.T, base int) {
	t.Helper()
	const slack = 10
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d now vs %d at start\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosServeDeadlineDegraded pins the per-class degradation policy: a
// request whose deadline expires mid-evaluation (hang at the model call,
// released by the request context) comes back 200 + Degraded when the class
// opted in, and 504 when it did not — with the deadline/degraded counters
// recording each disposition.
func TestChaosServeDeadlineDegraded(t *testing.T) {
	defer fault.Reset()
	classes := []Class{
		{Name: "soft", Deadline: 30 * time.Millisecond, Degrade: true},
		{Name: "hard", Deadline: 30 * time.Millisecond, Degrade: false},
		{Name: IngestClass},
	}
	s, ts := newTestServer(t, Config{Classes: classes})
	fault.Enable(fault.PointLLMGenerate, fault.Fault{Kind: fault.KindHang})

	resp, body := postJSON(t, ts.URL+"/v1/query",
		QueryRequest{Query: "What is the status of CA981?", Class: "soft"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("soft class status %d: %s", resp.StatusCode, body)
	}
	var ans multirag.Answer
	if err := json.Unmarshal(body, &ans); err != nil {
		t.Fatalf("decode: %v (%s)", err, body)
	}
	if !ans.Degraded || ans.DegradedReason != "deadline" {
		t.Fatalf("soft class answer degraded=%v reason=%q, want deadline degrade",
			ans.Degraded, ans.DegradedReason)
	}

	resp, body = postJSON(t, ts.URL+"/v1/query",
		QueryRequest{Query: "What is the status of CA981?", Class: "hard"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("hard class status %d, want 504: %s", resp.StatusCode, body)
	}

	snap := s.Metrics()
	var soft, hard ClassMetrics
	for _, c := range snap.Classes {
		switch c.Name {
		case "soft":
			soft = c
		case "hard":
			hard = c
		}
	}
	if soft.Degraded != 1 || soft.Completed != 1 {
		t.Fatalf("soft metrics degraded=%d completed=%d, want 1/1", soft.Degraded, soft.Completed)
	}
	if hard.DeadlineExceeded != 1 || hard.Completed != 0 {
		t.Fatalf("hard metrics deadline=%d completed=%d, want 1/0", hard.DeadlineExceeded, hard.Completed)
	}
}

// TestChaosServeRequestDeadlineMillis: a request's own deadline_ms tightens
// the class budget, and the handler sheds still-queued expiries as 504.
func TestChaosServeRequestDeadlineMillis(t *testing.T) {
	defer fault.Reset()
	_, ts := newTestServer(t, Config{Classes: []Class{{Name: "q", Degrade: true}, {Name: IngestClass}}})
	fault.Enable(fault.PointLLMGenerate, fault.Fault{Kind: fault.KindHang})
	resp, body := postJSON(t, ts.URL+"/v1/query",
		QueryRequest{Query: "What is the status of CA981?", Class: "q", DeadlineMillis: 25})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var ans multirag.Answer
	if err := json.Unmarshal(body, &ans); err != nil || !ans.Degraded {
		t.Fatalf("want degraded answer under deadline_ms, got %s (err %v)", body, err)
	}
}

// TestChaosServeClientDisconnect: canceling the HTTP request mid-evaluation
// cancels the query context; the evaluation wraps up promptly (hang released
// by the disconnect) and the canceled counter records it.
func TestChaosServeClientDisconnect(t *testing.T) {
	defer fault.Reset()
	s, ts := newTestServer(t, Config{})
	fault.Enable(fault.PointLLMGenerate, fault.Fault{Kind: fault.KindHang})

	data, err := json.Marshal(QueryRequest{Query: "What is the status of CA981?"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/query",
		bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	// Wait until the evaluation is inside the hang, then disconnect.
	deadline := time.Now().Add(5 * time.Second)
	for fault.Hits(fault.PointLLMGenerate) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never reached the hung injection point")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("expected client-side cancellation error")
	}
	// The server side finishes the request independently; wait for the
	// canceled/degraded disposition to land in metrics.
	deadline = time.Now().Add(5 * time.Second)
	for {
		snap := s.Metrics()
		var got int64
		for _, c := range snap.Classes {
			got += c.Canceled + c.Degraded
		}
		if got > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no canceled/degraded disposition recorded: %+v", snap.Classes)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosServeExecutorFaults crosses the executor-level injection point
// with error and panic faults: both are contained into degraded answers —
// the executor goroutine survives and keeps serving. The error cell uses
// MaxHits so the follow-up request proves the batch loop is still alive.
func TestChaosServeExecutorFaults(t *testing.T) {
	defer fault.Reset()
	classes := []Class{{Name: "q", Degrade: true}, {Name: IngestClass}}
	for _, kind := range []fault.Kind{fault.KindError, fault.KindPanic} {
		t.Run(kind.String(), func(t *testing.T) {
			defer fault.Reset()
			_, ts := newTestServer(t, Config{Classes: classes})
			fault.Enable(fault.PointServeExecute, fault.Fault{Kind: kind, MaxHits: 1})
			resp, body := postJSON(t, ts.URL+"/v1/query",
				QueryRequest{Query: "What is the status of CA981?", Class: "q"})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d under %s: %s", resp.StatusCode, kind, body)
			}
			var ans multirag.Answer
			if err := json.Unmarshal(body, &ans); err != nil || !ans.Degraded {
				t.Fatalf("want degraded answer under %s, got %s", kind, body)
			}
			// Budget spent: the executor must still be alive and serve cleanly.
			resp, body = postJSON(t, ts.URL+"/v1/query",
				QueryRequest{Query: "What is the status of CA981?", Class: "q"})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("follow-up status %d: %s", resp.StatusCode, body)
			}
			if err := json.Unmarshal(body, &ans); err != nil || ans.Degraded {
				t.Fatalf("follow-up answer still degraded: %s", body)
			}
		})
	}
}

// TestChaosServeExecutorHangShedsQueue hangs the executors themselves (the
// one injection point deliberately outside request contexts) and asserts the
// front door stays responsive the only way it can: queue timeouts with
// Retry-After. Reset releases the hang, everything drains, and no goroutine
// leaks.
func TestChaosServeExecutorHangShedsQueue(t *testing.T) {
	defer fault.Reset()
	base := runtime.NumGoroutine()
	func() {
		s, ts := newTestServer(t, Config{QueueTimeout: 30 * time.Millisecond, Executors: 1})
		fault.Enable(fault.PointServeExecute, fault.Fault{Kind: fault.KindHang})

		// First request occupies the hung executor; its handler waits out the
		// answer (claimed requests are never abandoned). Run it async.
		done := make(chan struct{})
		go func() {
			defer close(done)
			postJSON(t, ts.URL+"/v1/query", QueryRequest{Query: "What is the status of CA981?"})
		}()
		deadline := time.Now().Add(5 * time.Second)
		for fault.Hits(fault.PointServeExecute) == 0 {
			if time.Now().After(deadline) {
				t.Fatal("executor never reached the hang")
			}
			time.Sleep(time.Millisecond)
		}

		// With the only executor hung, this request can never be claimed: it
		// must shed via queue timeout, carrying the Retry-After hint.
		resp, body := postJSON(t, ts.URL+"/v1/query", QueryRequest{Query: "What is the delay reason of CA981?"})
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("queued request status %d, want 503: %s", resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("queue-timeout 503 missing Retry-After")
		}
		snap := s.Metrics()
		var timedOut int64
		for _, c := range snap.Classes {
			timedOut += c.TimedOut
		}
		if timedOut == 0 {
			t.Fatalf("no queue timeout recorded: %+v", snap.Classes)
		}

		fault.Reset()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("hung request never drained after Reset")
		}
		// Close inside the scope so the watermark below sees the drained
		// state (Close is idempotent; the t.Cleanup close is a no-op).
		ts.Close()
		s.Close()
	}()
	http.DefaultClient.CloseIdleConnections()
	waitServeGoroutines(t, base)
}

// TestChaosServeBreakerHealth trips the generate breaker through the HTTP
// path and asserts /healthz turns degraded-with-reason (still 200: the
// server is impaired, not down) and /v1/metrics exposes the open breaker.
func TestChaosServeBreakerHealth(t *testing.T) {
	defer fault.Reset()
	sys := multirag.Open(multirag.Config{Seed: 1, BreakerFailures: 2, BreakerCooldown: time.Minute})
	if err := sys.IngestFiles(corpusFiles()...); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	s, ts := newTestServer(t, Config{System: sys, Classes: []Class{{Name: "q", Degrade: true}, {Name: IngestClass}}})
	fault.Enable(fault.PointLLMGenerate, fault.Fault{Kind: fault.KindError})

	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/query",
			QueryRequest{Query: "What is the status of CA981?", Class: "q"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d status %d: %s", i, resp.StatusCode, body)
		}
	}
	fault.Reset()

	resp, body := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d: %s", resp.StatusCode, body)
	}
	var health HealthResponse
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatalf("decode healthz: %v (%s)", err, body)
	}
	if health.Status != "degraded" || health.Reason == "" {
		t.Fatalf("healthz = %+v, want degraded with reason", health)
	}

	snap := s.Metrics()
	var open bool
	for _, b := range snap.Breakers {
		if b.Name == "llm.generate" && b.State == "open" && b.Trips >= 1 {
			open = true
		}
	}
	if !open {
		t.Fatalf("metrics do not show the open breaker: %+v", snap.Breakers)
	}
}

// TestQueueTimeoutLeavesNoBlockedSender is the await-hygiene regression: when
// the handler's queue timeout wins the pending→timedOut CAS, nothing may ever
// send into the request's answer channel — not a later batch formation (the
// claim CAS must fail and drop it) and not scheduler close (its CAS fails
// too). A violated invariant would strand an executor on an unbuffered send
// or deliver an answer to a request that already 503'd.
func TestQueueTimeoutLeavesNoBlockedSender(t *testing.T) {
	cs := &classState{cfg: Class{Name: "c", QueueCap: 10}}
	sched := newScheduler(PolicyFCFS, []*classState{cs}, 4)

	timedOut := &request{query: "a", class: cs, done: make(chan answerResult, 1)}
	if err := sched.enqueue(timedOut); err != nil {
		t.Fatal(err)
	}
	// The handler's queue timer wins the race.
	if !timedOut.state.CompareAndSwap(reqPending, reqTimedOut) {
		t.Fatal("timeout CAS failed on a pending request")
	}

	live := &request{query: "b", class: cs, done: make(chan answerResult, 1)}
	if err := sched.enqueue(live); err != nil {
		t.Fatal(err)
	}
	batch, ok := sched.next()
	if !ok {
		t.Fatal("scheduler closed unexpectedly")
	}
	if len(batch) != 1 || batch[0] != live {
		t.Fatalf("batch = %v, want only the live request", batch)
	}
	select {
	case <-timedOut.done:
		t.Fatal("something sent to a timed-out request's channel")
	default:
	}

	// close() must skip it too (CAS pending→timedOut fails).
	sched.close()
	select {
	case <-timedOut.done:
		t.Fatal("close sent to a timed-out request's channel")
	default:
	}
	// The live (claimed) request is owned by its executor: close must not
	// have sent errClosed to it either.
	select {
	case <-live.done:
		t.Fatal("close sent to a claimed request's channel")
	default:
	}
}
