package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"multirag"
	"multirag/internal/fault"
)

// newChaosClusterServer stands up a corpus-loaded primary, an n-replica set
// and a full HTTP server routing reads across it. Lifecycle is manual (no
// t.Cleanup) so tests can close everything before the goroutine-watermark
// check. Close order: httptest server, Server, ReplicaSet.
func newChaosClusterServer(t *testing.T, n int, cfg Config) (
	*multirag.System, *multirag.ReplicaSet, *Server, *httptest.Server, func()) {
	t.Helper()
	sys := newCorpusSystem(t)
	set, err := multirag.NewReplicaSet(sys, multirag.ReplicaSetConfig{
		Replicas: n, VerifyEvery: 1, QueueLen: 8})
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	waitReplicasCaughtUp(t, set)
	cfg.System = sys
	cfg.Replicas = set
	if cfg.Classes == nil {
		cfg.Classes = []Class{{Name: "q"}, {Name: IngestClass}}
	}
	s, err := New(cfg)
	if err != nil {
		set.Close()
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	closeAll := func() {
		ts.Close()
		s.Close()
		set.Close()
	}
	return sys, set, s, ts, closeAll
}

func waitReplicasCaughtUp(t *testing.T, set *multirag.ReplicaSet) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok := true
		for _, r := range set.Replicas() {
			if !r.Live() || r.Position() != set.CommittedLSN() {
				ok = false
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas never caught up: %+v", set.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// askServer posts one query and asserts 200 + answer values equal to want.
func askServer(t *testing.T, url string, want multirag.Answer) {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/query",
		QueryRequest{Query: want.Query, Class: "q"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query %q: status %d: %s", want.Query, resp.StatusCode, body)
	}
	var got multirag.Answer
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("decode answer: %v (%s)", err, body)
	}
	if !valuesEqual(got, want) {
		t.Fatalf("served answer %+v != primary %+v", got, want)
	}
}

func ingestFiller(t *testing.T, sys *multirag.System, i int) {
	t.Helper()
	err := sys.IngestFiles(multirag.File{
		Domain: "flights", Source: "airport-api", Name: fmt.Sprintf("filler-%d", i),
		Format:  "text",
		Content: []byte(fmt.Sprintf("The status of XX%03d is Scheduled.", i)),
	})
	if err != nil {
		t.Fatalf("ingest filler %d: %v", i, err)
	}
}

// TestChaosClusterRouterShedsLaggingReplica is the serve-level chaos case: one
// of three replicas' feed pump hangs mid-stream while writes keep committing.
// The stalled replica falls past the staleness bound and is shed; every HTTP
// read during the outage still returns exactly the primary's answer. When the
// hang releases, the replica detects its dropped frames, fences, resyncs from
// the primary and rejoins — visible through /v1/metrics.
func TestChaosClusterRouterShedsLaggingReplica(t *testing.T) {
	defer fault.Reset()
	base := runtime.NumGoroutine()
	const maxLag = 4

	sys, set, _, ts, closeAll := newChaosClusterServer(t, 3,
		Config{Route: RouteRoundRobin, MaxLag: maxLag})
	want := sys.AskEach(make([]context.Context, 1),
		[]string{"What is the status of CA981?"})[0]

	// Hang exactly one pump (MaxHits 1): its queue overflows under the write
	// load below while the other two replicas keep applying.
	fault.Enable(fault.PointClusterFeed, fault.Fault{Kind: fault.KindHang, MaxHits: 1})

	// A single dropped frame can be a trailing digest marker, which never
	// forces a resync (its LSN equals the next record's). Two drops with the
	// pump still hung guarantee a dropped record and therefore a real gap.
	stalled := func() bool {
		for _, st := range set.Status() {
			if st.Lag > maxLag && st.DroppedFrames >= 2 {
				return true
			}
		}
		return false
	}
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; !stalled(); i++ {
		if time.Now().After(deadline) {
			t.Fatalf("replica never stalled past the lag bound: %+v", set.Status())
		}
		ingestFiller(t, sys, i)
		askServer(t, ts.URL, want)
	}
	// The laggard is now ineligible; reads shed to the survivors and stay
	// correct for the rest of the outage.
	for i := 0; i < 5; i++ {
		askServer(t, ts.URL, want)
	}

	// Release the hang; the stalled replica sees the gap, fences and resyncs.
	// Keep writing: a dropped tail frame only surfaces when a later one lands.
	fault.Disable(fault.PointClusterFeed)
	deadline = time.Now().Add(10 * time.Second)
	for i := 10000; ; i++ {
		caught := true
		for _, r := range set.Replicas() {
			if !r.Live() || r.Position() != set.CommittedLSN() {
				caught = false
			}
		}
		if caught {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stalled replica never rejoined: %+v", set.Status())
		}
		ingestFiller(t, sys, i)
		time.Sleep(2 * time.Millisecond)
	}
	var resyncs uint64
	for _, st := range set.Status() {
		resyncs += st.Resyncs
	}
	if resyncs == 0 {
		t.Fatalf("expected at least one fence+resync cycle: %+v", set.Status())
	}
	askServer(t, ts.URL, want)

	// The wire metrics tell the whole story: reads landed on replicas, and
	// every replica ended the chaos window live.
	resp, body := getJSON(t, ts.URL+"/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	if snap.Router == nil {
		t.Fatal("metrics missing router section")
	}
	if snap.Router.ReplicaBatches == 0 {
		t.Fatal("no read ever served from a replica")
	}
	if len(snap.Router.Replicas) != 3 {
		t.Fatalf("router reports %d replicas, want 3", len(snap.Router.Replicas))
	}
	for _, st := range snap.Router.Replicas {
		if st.State != "live" {
			t.Fatalf("replica %s ended %q (%s), want live", st.Name, st.State, st.FenceReason)
		}
	}

	closeAll()
	waitServeGoroutines(t, base)
}

// TestChaosClusterRouterFailsOverOnQueryErrors injects hard failures into the
// replica query path: each failed dispatch strikes that replica's breaker and
// the batch fails over, so the client sees a correct 200 every time. Once the
// fault budget is spent, reads land on replicas again with no breaker left
// open.
func TestChaosClusterRouterFailsOverOnQueryErrors(t *testing.T) {
	defer fault.Reset()
	base := runtime.NumGoroutine()

	sys, _, s, ts, closeAll := newChaosClusterServer(t, 3,
		Config{Route: RouteRoundRobin})
	want := sys.AskEach(make([]context.Context, 1),
		[]string{"What is the delay reason of CA981?"})[0]

	fault.Enable(fault.PointClusterQuery, fault.Fault{Kind: fault.KindError, MaxHits: 3})
	for i := 0; i < 6; i++ {
		askServer(t, ts.URL, want)
	}
	if hits := fault.Hits(fault.PointClusterQuery); hits != 3 {
		t.Fatalf("fault hits = %d, want 3", hits)
	}
	snap := s.Metrics()
	if snap.Router.Failovers < 3 {
		t.Fatalf("failovers = %d, want >= 3", snap.Router.Failovers)
	}
	if snap.Router.ReplicaBatches == 0 {
		t.Fatal("reads never resumed on replicas after the fault budget drained")
	}
	for _, b := range snap.Router.Breakers {
		if b.State == "open" {
			t.Fatalf("breaker %s left open after spread-out strikes", b.Name)
		}
	}

	closeAll()
	waitServeGoroutines(t, base)
}
