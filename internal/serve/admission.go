package serve

import (
	"math"
	"sync"
	"time"
)

// tokenBucket is the per-SLO-class admission limiter: a bucket of Burst
// tokens refilled continuously at Rate tokens per second. A request is
// admitted iff the bucket currently holds its cost — there is no queueing at
// this layer, admission either passes or sheds the request, which is what
// keeps the bounded scheduler queues from absorbing unbounded excess load.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 means unlimited
	burst  float64
	tokens float64
	last   time.Time
}

// newTokenBucket builds a full bucket. rate <= 0 disables limiting; burst
// <= 0 defaults to max(1, rate) — one second of refill, never less than one
// whole request.
func newTokenBucket(rate, burst float64, now time.Time) *tokenBucket {
	if burst <= 0 {
		burst = math.Max(1, rate)
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// take admits cost tokens at time now, reporting whether admission passed.
// The caller supplies the clock so tests drive refill deterministically; the
// bucket never moves its clock backwards under out-of-order now values.
func (b *tokenBucket) take(cost float64, now time.Time) bool {
	if b.rate <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+b.rate*dt.Seconds())
		b.last = now
	}
	if b.tokens < cost {
		return false
	}
	b.tokens -= cost
	return true
}
