package extract

import (
	"reflect"
	"testing"

	"multirag/internal/adapter"
	"multirag/internal/kg"
	"multirag/internal/llm"
)

// mixedFormatFiles covers every adapter format, including text routed through
// the LLM extractor (the expensive path the recorder exists to parallelise).
func mixedFormatFiles() []adapter.RawFile {
	return []adapter.RawFile{
		{Domain: "flights", Source: "airport-api", Name: "schedule", Format: "csv",
			Content: []byte("flight,origin,status\nCA981,PEK,Delayed\nMU588,PVG,On time\n")},
		{Domain: "flights", Source: "airline-app", Name: "live", Format: "json",
			Content: []byte(`[{"flight":"CA981","status":{"state":"Delayed","reason":"Typhoon"}}]`)},
		{Domain: "flights", Source: "weather-feed", Name: "alerts", Format: "text",
			Content: []byte("The status of CA981 is Delayed. The delay reason of CA981 is Typhoon.")},
		{Domain: "flights", Source: "ops-kg", Name: "facts", Format: "kg",
			Content: []byte("CA981|carrier|Air China\n")},
	}
}

// TestRecorderReplayMatchesDirectBuild is the correctness contract of the
// parallel ingestion engine: extracting into a Recorder and replaying into a
// graph must produce a graph bit-identical to extracting into the graph
// directly — same entities, same triples, same IDs, same object-entity links.
func TestRecorderReplayMatchesDirectBuild(t *testing.T) {
	fused, err := adapter.NewRegistry().Fuse(mixedFormatFiles())
	if err != nil {
		t.Fatal(err)
	}
	model := llm.NewSim(llm.Config{Seed: 1, ExtractionNoise: 0})

	direct := kg.New()
	directRep, err := New(model).Build(direct, fused)
	if err != nil {
		t.Fatal(err)
	}

	replayed := kg.New()
	agg := Report{ByFormat: map[string]int{}}
	var allIDs []string
	for _, f := range fused {
		rec := NewRecorder()
		fileRep, err := New(model).BuildFile(rec, f)
		if err != nil {
			t.Fatal(err)
		}
		agg.Merge(fileRep)
		ids, err := rec.Replay(replayed)
		if err != nil {
			t.Fatal(err)
		}
		allIDs = append(allIDs, ids...)
	}

	if replayed.NumEntities() != direct.NumEntities() || replayed.NumTriples() != direct.NumTriples() {
		t.Fatalf("counts diverge: replay %d/%d direct %d/%d",
			replayed.NumEntities(), replayed.NumTriples(), direct.NumEntities(), direct.NumTriples())
	}
	if len(allIDs) != direct.NumTriples() {
		t.Fatalf("Replay returned %d IDs, want %d", len(allIDs), direct.NumTriples())
	}
	if !reflect.DeepEqual(replayed.TripleIDs(), direct.TripleIDs()) {
		t.Fatalf("triple ID sequences diverge")
	}
	for _, id := range direct.TripleIDs() {
		dt, _ := direct.Triple(id)
		rt, ok := replayed.Triple(id)
		if !ok || !reflect.DeepEqual(dt, rt) {
			t.Fatalf("triple %s diverges:\n direct %+v\n replay %+v", id, dt, rt)
		}
	}
	for _, id := range direct.EntityIDs() {
		de, _ := direct.Entity(id)
		re, ok := replayed.Entity(id)
		if !ok || !reflect.DeepEqual(de, re) {
			t.Fatalf("entity %s diverges:\n direct %+v\n replay %+v", id, de, re)
		}
	}
	if agg.ByFormat["csv"] != directRep.ByFormat["csv"] || agg.ByFormat["text"] != directRep.ByFormat["text"] {
		t.Fatalf("per-format counters diverge: %v vs %v", agg.ByFormat, directRep.ByFormat)
	}
}

// TestRecorderValidatesLikeGraph pins the error contract: the recorder must
// reject the same malformed operations the real graph rejects, with matching
// messages, so failures surface during the parallel phase.
func TestRecorderValidatesLikeGraph(t *testing.T) {
	rec := NewRecorder()
	if _, err := rec.AddTriple(kg.Triple{Subject: "ghost", Predicate: "p", Object: "o"}); err == nil {
		t.Fatal("unknown subject must be rejected")
	}
	id := rec.AddEntity("CA981", "Flight", "flights")
	if id != kg.CanonicalID("CA981") {
		t.Fatalf("canonical ID = %q", id)
	}
	if _, err := rec.AddTriple(kg.Triple{Subject: id, Predicate: "", Object: "o"}); err == nil {
		t.Fatal("empty predicate must be rejected")
	}
	if _, err := rec.AddTriple(kg.Triple{Subject: id, Predicate: "status", Object: "Delayed"}); err != nil {
		t.Fatalf("valid triple rejected: %v", err)
	}
	g := kg.New()
	ids, err := rec.Replay(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || g.NumTriples() != 1 {
		t.Fatalf("replay produced %v (%d triples)", ids, g.NumTriples())
	}
}
