package extract

import (
	"testing"

	"multirag/internal/adapter"
	"multirag/internal/kg"
	"multirag/internal/llm"
)

func fuseAndBuild(t *testing.T, files []adapter.RawFile) (*kg.Graph, Report) {
	t.Helper()
	reg := adapter.NewRegistry()
	fused, err := reg.Fuse(files)
	if err != nil {
		t.Fatalf("Fuse: %v", err)
	}
	g := kg.New()
	model := llm.NewSim(llm.Config{Seed: 1, ExtractionNoise: 0})
	rep, err := New(model).Build(g, fused)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g, rep
}

func TestBuildFromCSV(t *testing.T) {
	g, rep := fuseAndBuild(t, []adapter.RawFile{{
		Domain: "movies", Source: "imdb", Name: "top", Format: "csv",
		Content: []byte("title,director,year\nHeat,Michael Mann,1995\n"),
	}})
	if rep.Triples != 2 {
		t.Fatalf("triples = %d, want 2", rep.Triples)
	}
	ts := g.TriplesByKey(kg.CanonicalID("Heat"), "director")
	if len(ts) != 1 || ts[0].Object != "Michael Mann" {
		t.Fatalf("director triples = %v", ts)
	}
	if ts[0].Source != "imdb" || ts[0].Format != "csv" {
		t.Fatalf("provenance lost: %+v", ts[0])
	}
}

func TestBuildFromNestedJSON(t *testing.T) {
	g, _ := fuseAndBuild(t, []adapter.RawFile{{
		Domain: "flights", Source: "app", Name: "live", Format: "json",
		Content: []byte(`[{"name":"CA981","status":{"state":"Delayed","reason":"Weather"}}]`),
	}})
	ts := g.TriplesByKey(kg.CanonicalID("CA981"), "status_state")
	if len(ts) != 1 || ts[0].Object != "Delayed" {
		t.Fatalf("nested attribute flattening failed: %v", ts)
	}
}

func TestBuildFromXMLRepeatedElements(t *testing.T) {
	g, _ := fuseAndBuild(t, []adapter.RawFile{{
		Domain: "books", Source: "lib", Name: "cat", Format: "xml",
		Content: []byte(`<books><book><title>Hyperion</title><author>Dan Simmons</author><author>Other Person</author></book></books>`),
	}})
	ts := g.TriplesByKey(kg.CanonicalID("Hyperion"), "author")
	if len(ts) != 2 {
		t.Fatalf("author triples = %d, want 2 (multi-valued)", len(ts))
	}
}

func TestBuildFromKGFormat(t *testing.T) {
	g, rep := fuseAndBuild(t, []adapter.RawFile{{
		Domain: "movies", Source: "kgsrc", Name: "facts", Format: "kg",
		Content: []byte("Heat|year|1995\nHeat|director|Michael Mann"),
	}})
	if rep.Triples != 2 {
		t.Fatalf("triples = %d", rep.Triples)
	}
	if len(g.TriplesByKey(kg.CanonicalID("Heat"), "year")) != 1 {
		t.Fatal("kg triple missing")
	}
}

func TestBuildFromTextUsesLLM(t *testing.T) {
	g, rep := fuseAndBuild(t, []adapter.RawFile{{
		Domain: "movies", Source: "reviews", Name: "blurb", Format: "text",
		Content: []byte("The director of Heat is Michael Mann. The year of Heat is 1995."),
	}})
	if rep.ByFormat["text"] != 2 {
		t.Fatalf("text triples = %d, want 2", rep.ByFormat["text"])
	}
	ts := g.TriplesByKey(kg.CanonicalID("Heat"), "director")
	if len(ts) != 1 || ts[0].Object != "Michael Mann" {
		t.Fatalf("LLM-extracted triple wrong: %v", ts)
	}
	if ts[0].Weight <= 0 || ts[0].Weight > 1 {
		t.Fatalf("weight must carry extraction confidence, got %v", ts[0].Weight)
	}
}

func TestHomologousKeysAcrossFormats(t *testing.T) {
	// The same fact from three formats must land under one homologous key —
	// this is the property the whole line-graph construction relies on.
	g, _ := fuseAndBuild(t, []adapter.RawFile{
		{Domain: "movies", Source: "s1", Name: "a", Format: "csv",
			Content: []byte("title,director\nHeat,Michael Mann\n")},
		{Domain: "movies", Source: "s2", Name: "b", Format: "json",
			Content: []byte(`[{"title":"heat","director":"Mike Mann"}]`)},
		{Domain: "movies", Source: "s3", Name: "c", Format: "kg",
			Content: []byte("HEAT|director|M. Mann")},
	})
	ts := g.TriplesByKey(kg.CanonicalID("Heat"), "director")
	if len(ts) != 3 {
		t.Fatalf("homologous group size = %d, want 3 (one per source)", len(ts))
	}
	sources := map[string]bool{}
	for _, tr := range ts {
		sources[tr.Source] = true
	}
	if len(sources) != 3 {
		t.Fatalf("sources = %v", sources)
	}
}

func TestSkippedRecordsCounted(t *testing.T) {
	_, rep := fuseAndBuild(t, []adapter.RawFile{{
		Domain: "misc", Source: "s", Name: "n", Format: "json",
		Content: []byte(`[{"unkeyed":"value"}]`),
	}})
	if rep.SkippedNo != 1 {
		t.Fatalf("skipped = %d, want 1", rep.SkippedNo)
	}
}

func TestDesignatedKeyProperty(t *testing.T) {
	g, _ := fuseAndBuild(t, []adapter.RawFile{{
		Domain: "stocks", Source: "feed", Name: "px", Format: "json",
		Meta:    map[string]string{"key": "ticker"},
		Content: []byte(`[{"ticker":"ACME","price":"41.5"}]`),
	}})
	if len(g.TriplesByKey(kg.CanonicalID("ACME"), "price")) != 1 {
		t.Fatal("designated key property ignored")
	}
}
