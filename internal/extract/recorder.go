package extract

import (
	"fmt"

	"multirag/internal/kg"
)

// Recorder is a Sink that captures the extraction operation stream instead of
// mutating a graph. The concurrent ingestion engine runs one extraction per
// file on worker goroutines, each writing into a private Recorder; the
// recorded streams are then replayed into the master graph serially, in file
// order, under the write lock. Because replay executes exactly the operation
// sequence serial extraction would have executed — including the interleaving
// of AddEntity and AddTriple calls that drives object-entity linking — the
// resulting graph is bit-identical to single-threaded ingestion, while the
// expensive work (LLM calls, parsing, flattening) happens in parallel.
type Recorder struct {
	ops      []op
	entities map[string]bool // canonical IDs recorded so far (subject check)
	triples  int
}

type op struct {
	// entity op when name != ""
	name, typ, domain string
	// triple op otherwise
	triple kg.Triple
}

// NewRecorder returns an empty operation recorder.
func NewRecorder() *Recorder {
	return &Recorder{entities: map[string]bool{}}
}

// AddEntity records an entity insertion and returns its canonical ID, exactly
// as *kg.Graph.AddEntity would.
func (r *Recorder) AddEntity(name, typ, domain string) string {
	id := kg.CanonicalID(name)
	if id == "" {
		return ""
	}
	r.ops = append(r.ops, op{name: name, typ: typ, domain: domain})
	r.entities[id] = true
	return id
}

// AddTriple records a triple insertion. It mirrors *kg.Graph.AddTriple's
// validation against the entities recorded so far; the definitive insertion
// (ID assignment, object-entity linking against the full corpus) happens at
// Replay time. The returned ID is a placeholder — extraction never reads it.
func (r *Recorder) AddTriple(t kg.Triple) (string, error) {
	if !r.entities[t.Subject] {
		return "", fmt.Errorf("kg: unknown subject entity %q", t.Subject)
	}
	if t.Predicate == "" {
		return "", fmt.Errorf("kg: triple with empty predicate (subject %q)", t.Subject)
	}
	r.ops = append(r.ops, op{triple: t})
	r.triples++
	return "", nil
}

// NumEntities reports the recorded entity-op count (Sink conformance; batch
// reports recompute real deltas against the master graph).
func (r *Recorder) NumEntities() int { return len(r.entities) }

// NumTriples reports the recorded triple count.
func (r *Recorder) NumTriples() int { return r.triples }

// ForEachOp visits the recorded operation stream in recording order: entity
// ops through entity, triple ops through triple. The durability layer
// serializes a recorder through it and rebuilds one by feeding the visited
// ops back into AddEntity/AddTriple on a fresh Recorder, which reproduces the
// stream (and therefore Replay's effect) exactly.
func (r *Recorder) ForEachOp(entity func(name, typ, domain string), triple func(t kg.Triple)) {
	for _, o := range r.ops {
		if o.name != "" {
			entity(o.name, o.typ, o.domain)
		} else {
			triple(o.triple)
		}
	}
}

// Replay applies the recorded operation stream to g in recording order and
// returns the IDs of the triples inserted. Replay is cheap (map inserts); all
// model-driven work already happened while recording.
func (r *Recorder) Replay(g *kg.Graph) ([]string, error) {
	return r.ReplayAppend(g, make([]string, 0, r.triples))
}

// ReplayAppend is Replay appending the inserted triple IDs onto ids instead
// of allocating a fresh slice. The group committer replays every recorder of
// a commit group into one buffer preallocated for the whole group's recorded
// triple count; on a mid-batch error the caller truncates ids back to its
// pre-batch length (the returned slice always carries whatever was inserted
// before the failure).
func (r *Recorder) ReplayAppend(g *kg.Graph, ids []string) ([]string, error) {
	for _, o := range r.ops {
		if o.name != "" {
			g.AddEntity(o.name, o.typ, o.domain)
			continue
		}
		id, err := g.AddTriple(o.triple)
		if err != nil {
			return ids, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}
