// Package extract turns fused, normalised linked data into knowledge-graph
// entities and triples: the knowledge-construction phase of §III-B (Eq. 3).
// It is the stdlib equivalent of OpenSPG's SchemaFreeExtractor pipeline:
// entity recognition (ner.py), SPO triple extraction (triple.py) and entity
// standardisation / attribute extraction (std.py), with the LLM steps served
// by the internal/llm model.
//
// Structured, semi-structured and KG-format records are mapped rule-based
// (their schema already names entities and attributes); unstructured text is
// routed through the LLM extractor.
package extract

import (
	"fmt"
	"sort"
	"strings"

	"multirag/internal/jsonld"
	"multirag/internal/kg"
	"multirag/internal/llm"
)

// keyProps are the property names tried, in order, to locate the entity a
// semi-structured record describes when the file metadata does not designate
// one via Meta["key"].
var keyProps = []string{"@key", "name", "title", "id", "flight", "symbol", "isbn", "@isbn"}

// Extractor builds knowledge graphs from normalised multi-source data.
type Extractor struct {
	model llm.Model
	raw   bool
}

// New returns an extractor backed by the given model, with the entity
// standardisation phase (std.py) enabled — the MultiRAG knowledge
// construction configuration.
func New(model llm.Model) *Extractor {
	return &Extractor{model: model}
}

// NewRaw returns an extractor without the standardisation phase: entity
// surface forms are only case/punctuation-normalised. Baseline environments
// use this configuration — entity standardisation is part of MultiRAG's
// knowledge-construction contribution, not of the comparison methods.
func NewRaw(model llm.Model) *Extractor {
	return &Extractor{model: model, raw: true}
}

// std canonicalises an entity name according to the extractor mode.
func (e *Extractor) std(name string) string {
	if e.raw {
		return name
	}
	return e.model.Standardize(name)
}

// Report summarises one extraction run.
type Report struct {
	Files     int
	Entities  int
	Triples   int
	ByFormat  map[string]int // triples contributed per source format
	SkippedNo int            // records skipped because no entity key was found
}

// Merge folds another report's counters into rep (batch ingestion aggregates
// per-file reports).
func (rep *Report) Merge(other Report) {
	rep.Files += other.Files
	rep.Entities += other.Entities
	rep.Triples += other.Triples
	rep.SkippedNo += other.SkippedNo
	for k, v := range other.ByFormat {
		rep.ByFormat[k] += v
	}
}

// Sink receives extraction output. *kg.Graph is the canonical implementation;
// *Recorder captures the same operation stream for deferred, deterministic
// replay so that the expensive extraction work (LLM calls, parsing,
// flattening) can run on worker goroutines without sharing the graph.
type Sink interface {
	AddEntity(name, typ, domain string) string
	AddTriple(t kg.Triple) (string, error)
	NumEntities() int
	NumTriples() int
}

// Build extracts all files into g and returns a report. Files are processed
// in the deterministic order produced by adapter.Fuse.
func (e *Extractor) Build(g Sink, files []*jsonld.Normalized) (Report, error) {
	rep := Report{ByFormat: map[string]int{}}
	before := g.NumTriples()
	entBefore := g.NumEntities()
	for _, f := range files {
		fileRep, err := e.BuildFile(g, f)
		if err != nil {
			return rep, err
		}
		rep.Merge(fileRep)
	}
	rep.Triples = g.NumTriples() - before
	rep.Entities = g.NumEntities() - entBefore
	return rep, nil
}

// BuildFile extracts a single file into g. It is the per-file unit of work
// the concurrent ingestion engine fans out across workers (each worker gets
// its own Recorder sink). The returned report carries the per-format and
// skip counters; Entities/Triples deltas are left to the caller, which knows
// the surrounding batch.
func (e *Extractor) BuildFile(g Sink, f *jsonld.Normalized) (Report, error) {
	rep := Report{ByFormat: map[string]int{}}
	var err error
	switch f.Format {
	case "csv":
		err = e.buildStructured(g, f, &rep)
	case "json", "xml":
		err = e.buildSemi(g, f, &rep)
	case "kg":
		err = e.buildKG(g, f, &rep)
	case "text":
		err = e.buildText(g, f, &rep)
	default:
		err = fmt.Errorf("extract: unsupported format %q", f.Format)
	}
	if err != nil {
		return rep, fmt.Errorf("extract: file %s: %w", f.ID, err)
	}
	rep.Files++
	return rep, nil
}

// entityType guesses a coarse type from the file metadata, defaulting to the
// capitalised domain ("movies" → "Movies").
func entityType(f *jsonld.Normalized) string {
	if t := f.Meta["type"]; t != "" {
		return t
	}
	if f.Domain == "" {
		return "Entity"
	}
	return strings.ToUpper(f.Domain[:1]) + f.Domain[1:]
}

func (e *Extractor) addTriple(g Sink, f *jsonld.Normalized, rep *Report, subjID, pred, obj, chunk string, weight float64) error {
	if obj == "" || pred == "" {
		return nil
	}
	_, err := g.AddTriple(kg.Triple{
		Subject:   subjID,
		Predicate: pred,
		Object:    obj,
		Source:    f.Source,
		Domain:    f.Domain,
		Format:    f.Format,
		ChunkID:   chunk,
		Weight:    weight,
	})
	if err != nil {
		return err
	}
	rep.ByFormat[f.Format]++
	return nil
}

// buildStructured maps DSM-backed tabular records: @key names the entity,
// all other columns are attributes.
func (e *Extractor) buildStructured(g Sink, f *jsonld.Normalized, rep *Report) error {
	typ := entityType(f)
	for _, doc := range f.JSC {
		keyVal, ok := doc.Get("@key")
		if !ok || keyVal.Str == "" {
			rep.SkippedNo++
			continue
		}
		subj := g.AddEntity(e.std(keyVal.Str), typ, f.Domain)
		for _, prop := range doc.Keys() {
			if prop == "@key" {
				continue
			}
			v, _ := doc.Get(prop)
			for _, obj := range v.Strings() {
				if err := e.addTriple(g, f, rep, subj, prop, obj, doc.ID, 1); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// buildSemi maps nested JSON/XML records. The record's key property names the
// entity; nested nodes flatten into underscore-joined attribute paths
// (status.state → status_state).
func (e *Extractor) buildSemi(g Sink, f *jsonld.Normalized, rep *Report) error {
	typ := entityType(f)
	keyProp := f.Meta["key"]
	for _, doc := range f.JSC {
		key := findKey(doc, keyProp)
		if key == "" {
			rep.SkippedNo++
			continue
		}
		subj := g.AddEntity(e.std(key), typ, f.Domain)
		if err := e.flatten(g, f, rep, subj, doc, "", key); err != nil {
			return err
		}
	}
	return nil
}

func findKey(doc *jsonld.Document, designated string) string {
	if designated != "" {
		if v, ok := doc.Get(designated); ok && v.Str != "" {
			return v.Str
		}
		return ""
	}
	for _, p := range keyProps {
		if v, ok := doc.Get(p); ok && v.Str != "" {
			return v.Str
		}
	}
	return ""
}

func (e *Extractor) flatten(g Sink, f *jsonld.Normalized, rep *Report, subj string, doc *jsonld.Document, prefix, keyVal string) error {
	for _, prop := range doc.Keys() {
		v, _ := doc.Get(prop)
		name := cleanProp(prop)
		if prefix != "" {
			name = prefix + "_" + name
		}
		if v.Node != nil {
			if err := e.flatten(g, f, rep, subj, v.Node, name, keyVal); err != nil {
				return err
			}
			continue
		}
		// Skip the key property itself at the top level.
		if prefix == "" && v.Str == keyVal {
			continue
		}
		for _, obj := range v.Strings() {
			if err := e.addTriple(g, f, rep, subj, name, obj, doc.ID, 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// cleanProp normalises a property path segment: "@isbn" → "isbn",
// "author/0" → "author".
func cleanProp(p string) string {
	p = strings.TrimPrefix(p, "@")
	if i := strings.IndexByte(p, '/'); i >= 0 {
		p = p[:i]
	}
	return p
}

// buildKG maps native triple records directly.
func (e *Extractor) buildKG(g Sink, f *jsonld.Normalized, rep *Report) error {
	typ := entityType(f)
	for _, doc := range f.JSC {
		s, _ := doc.Get("subject")
		p, _ := doc.Get("predicate")
		o, _ := doc.Get("object")
		if s.Str == "" || p.Str == "" {
			rep.SkippedNo++
			continue
		}
		subj := g.AddEntity(e.std(s.Str), typ, f.Domain)
		if err := e.addTriple(g, f, rep, subj, cleanProp(p.Str), o.Str, doc.ID, 1); err != nil {
			return err
		}
	}
	return nil
}

// buildText routes unstructured paragraphs through the LLM pipeline:
// NER → SPO extraction → standardisation (§III-B's three custom-prompt
// phases). Extraction confidence becomes the triple weight.
func (e *Extractor) buildText(g Sink, f *jsonld.Normalized, rep *Report) error {
	typ := entityType(f)
	for _, doc := range f.JSC {
		tv, ok := doc.Get("text")
		if !ok || tv.Str == "" {
			rep.SkippedNo++
			continue
		}
		mentions := e.model.ExtractEntities(tv.Str)
		var subjects []llm.Mention
		for _, m := range mentions {
			if m.Type == "Entity" {
				subjects = append(subjects, m)
			}
		}
		spos := e.model.ExtractTriples(tv.Str, subjects)
		// Deterministic ordering: the simulated model already returns
		// sentence order, but sort defensively by (subject, predicate).
		sort.SliceStable(spos, func(i, j int) bool {
			if spos[i].Subject != spos[j].Subject {
				return spos[i].Subject < spos[j].Subject
			}
			return spos[i].Predicate < spos[j].Predicate
		})
		for _, spo := range spos {
			subj := g.AddEntity(e.std(spo.Subject), typ, f.Domain)
			if err := e.addTriple(g, f, rep, subj, spo.Predicate, spo.Object, doc.ID, spo.Confidence); err != nil {
				return err
			}
		}
	}
	return nil
}
