package jsonld

import (
	"fmt"

	"multirag/internal/textutil"
)

// Normalized is the unified record D̂ = {id, d, name, jsc, meta, cols_index}
// of Definition 1: the output of multi-source data fusion. One Normalized
// value describes one ingested data file after its adapter has parsed it.
type Normalized struct {
	// ID is the unique normalisation identifier, derived deterministically
	// from (domain, source, name).
	ID string
	// Domain is d — the domain the data file belongs to (e.g. "movies").
	Domain string
	// Source names the originating data source (e.g. "imdb", "src-03").
	Source string
	// Name is the file or attribute name.
	Name string
	// Format records the original storage format ("csv", "json", "xml",
	// "kg", "text").
	Format string
	// Meta is the file metadata (free-form key/value).
	Meta map[string]string
	// JSC holds the file content as JSON-LD linked-data documents
	// (one per record).
	JSC []*Document
	// ColsIndex is the column index of all attributes, present only when the
	// source is structured (columnar) data; it maps attribute name → the
	// ordered list of record offsets that populate the attribute. It enables
	// the rapid consistency scans described in §III-B.
	ColsIndex map[string][]int
}

// NormalizedID derives the stable identifier for a (domain, source, name)
// triple.
func NormalizedID(domain, source, name string) string {
	return fmt.Sprintf("%s/%s/%s#%016x", domain, source, name,
		textutil.Hash64(domain+"\x00"+source+"\x00"+name))
}

// BuildColsIndex computes the column index over the given documents: for each
// property name, the offsets of the documents that define it, in order.
func BuildColsIndex(docs []*Document) map[string][]int {
	idx := map[string][]int{}
	for i, d := range docs {
		for k := range d.Props {
			idx[k] = append(idx[k], i)
		}
	}
	return idx
}

// Records returns the number of linked-data records in the normalised file.
func (n *Normalized) Records() int { return len(n.JSC) }

// Validate checks the structural invariants of a Normalized value: non-empty
// identity fields and a column index (when present) that references only
// valid record offsets.
func (n *Normalized) Validate() error {
	if n.ID == "" || n.Domain == "" || n.Name == "" {
		return fmt.Errorf("jsonld: normalized record missing identity (id=%q domain=%q name=%q)",
			n.ID, n.Domain, n.Name)
	}
	for col, offs := range n.ColsIndex {
		for _, off := range offs {
			if off < 0 || off >= len(n.JSC) {
				return fmt.Errorf("jsonld: cols_index[%q] offset %d out of range (records=%d)",
					col, off, len(n.JSC))
			}
			if _, ok := n.JSC[off].Props[col]; !ok {
				return fmt.Errorf("jsonld: cols_index[%q] offset %d does not define the column", col, off)
			}
		}
	}
	return nil
}
