package jsonld

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzDocumentUnmarshal throws arbitrary bytes at the JSON-LD document
// parser — the normalisation layer every adapter output passes through.
// Invariants: no panic, and any input that parses reaches a stable normal
// form: marshal → parse → marshal is byte-identical, so persisted documents
// re-load to the same wire form forever.
func FuzzDocumentUnmarshal(f *testing.F) {
	f.Add([]byte(`{"@id":"flight:CA981","@type":"Flight","status":"Delayed"}`))
	f.Add([]byte(`{"@context":{"status":"ex:status"},"@id":"a","tags":["x","y"]}`))
	f.Add([]byte(`{"@id":"a","operated_by":{"@id":"airline:CA","@type":"Airline"}}`))
	f.Add([]byte(`{"n":42,"f":0.5,"b":true,"z":null,"mixed":[1,"two"]}`))
	f.Add([]byte(`{"@id":"dup","k":"first","k":"second"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Add([]byte{0xFF, 0xFE, '{', '}'})

	f.Fuzz(func(t *testing.T, b []byte) {
		var d Document
		if err := json.Unmarshal(b, &d); err != nil {
			return // malformed input must only ever yield an error
		}
		first, err := json.Marshal(&d)
		if err != nil {
			t.Fatalf("marshal of parsed document failed: %v", err)
		}
		var d2 Document
		if err := json.Unmarshal(first, &d2); err != nil {
			t.Fatalf("re-parse of marshalled document failed: %v\n%s", err, first)
		}
		second, err := json.Marshal(&d2)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("normal form unstable:\n first %s\nsecond %s", first, second)
		}
		// Accessors over arbitrary parsed content must stay total.
		for _, k := range d.Keys() {
			v, ok := d.Get(k)
			if !ok {
				t.Fatalf("Keys() returned missing key %q", k)
			}
			_ = v.String()
			_ = v.Strings()
			_ = v.IsZero()
		}
	})
}
