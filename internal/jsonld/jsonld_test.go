package jsonld

import (
	"encoding/json"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	d := New("movie:1", "Movie")
	d.Context = map[string]string{"director": "http://schema.org/director"}
	d.Set("title", "The Matrix")
	d.SetList("director", []string{"Lana Wachowski", "Lilly Wachowski"})
	inner := New("person:1", "Person")
	inner.Set("name", "Keanu Reeves")
	d.SetNode("star", inner)

	data, err := json.Marshal(d)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Document
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.ID != "movie:1" || back.Type != "Movie" {
		t.Fatalf("identity lost: %+v", back)
	}
	if v, _ := back.Get("title"); v.Str != "The Matrix" {
		t.Fatalf("title = %q", v.Str)
	}
	if v, _ := back.Get("director"); !reflect.DeepEqual(v.List, []string{"Lana Wachowski", "Lilly Wachowski"}) {
		t.Fatalf("director = %v", v.List)
	}
	if v, _ := back.Get("star"); v.Node == nil || v.Node.ID != "person:1" {
		t.Fatalf("nested node lost: %v", v)
	}
	if back.Context["director"] != "http://schema.org/director" {
		t.Fatalf("context lost")
	}
}

func TestUnmarshalForeignScalars(t *testing.T) {
	var d Document
	if err := json.Unmarshal([]byte(`{"@id":"x","year":1999,"ok":true}`), &d); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if v, _ := d.Get("year"); v.Str != "1999" {
		t.Fatalf("year = %q", v.Str)
	}
	if v, _ := d.Get("ok"); v.Str != "true" {
		t.Fatalf("ok = %q", v.Str)
	}
}

func TestValueStrings(t *testing.T) {
	if got := (Value{Str: "a"}).Strings(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("scalar Strings = %v", got)
	}
	if got := (Value{List: []string{"a", "b"}}).Strings(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("list Strings = %v", got)
	}
	if got := (Value{Node: New("n", "")}).Strings(); !reflect.DeepEqual(got, []string{"n"}) {
		t.Errorf("node Strings = %v", got)
	}
	if (Value{}).Strings() != nil {
		t.Errorf("zero value Strings must be nil")
	}
	if !(Value{}).IsZero() || (Value{Str: "x"}).IsZero() {
		t.Errorf("IsZero broken")
	}
}

func TestKeysSorted(t *testing.T) {
	d := New("x", "T")
	d.Set("zeta", "1")
	d.Set("alpha", "2")
	d.Set("mid", "3")
	if got := d.Keys(); !reflect.DeepEqual(got, []string{"alpha", "mid", "zeta"}) {
		t.Fatalf("Keys = %v", got)
	}
}

func TestNormalizedIDDeterministicAndDistinct(t *testing.T) {
	a := NormalizedID("movies", "imdb", "top")
	b := NormalizedID("movies", "imdb", "top")
	if a != b {
		t.Fatal("NormalizedID must be deterministic")
	}
	if a == NormalizedID("movies", "tmdb", "top") {
		t.Fatal("different sources must yield different IDs")
	}
}

func TestBuildColsIndexAndValidate(t *testing.T) {
	d1 := New("r1", "Row")
	d1.Set("title", "A")
	d2 := New("r2", "Row")
	d2.Set("title", "B")
	d2.Set("year", "2001")
	docs := []*Document{d1, d2}
	idx := BuildColsIndex(docs)
	if !reflect.DeepEqual(idx["title"], []int{0, 1}) {
		t.Fatalf("title index = %v", idx["title"])
	}
	if !reflect.DeepEqual(idx["year"], []int{1}) {
		t.Fatalf("year index = %v", idx["year"])
	}
	n := &Normalized{ID: "i", Domain: "d", Name: "n", JSC: docs, ColsIndex: idx}
	if err := n.Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	n.ColsIndex["title"] = []int{5}
	if err := n.Validate(); err == nil {
		t.Fatal("out-of-range offset must be rejected")
	}
	bad := &Normalized{}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty identity must be rejected")
	}
}

func TestColsIndexProperty(t *testing.T) {
	// Property: every (column, offset) pair in the index points at a document
	// that defines that column, and every document property appears.
	f := func(cols []uint8) bool {
		docs := make([]*Document, 0, len(cols))
		names := []string{"a", "b", "c"}
		for i, c := range cols {
			d := New("r", "Row")
			d.Set(names[int(c)%len(names)], "v")
			docs = append(docs, d)
			_ = i
		}
		idx := BuildColsIndex(docs)
		total := 0
		for col, offs := range idx {
			for _, off := range offs {
				if off < 0 || off >= len(docs) {
					return false
				}
				if _, ok := docs[off].Props[col]; !ok {
					return false
				}
				total++
			}
		}
		return total == len(docs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
