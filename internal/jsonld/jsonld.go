// Package jsonld implements the linked-data document model used to normalise
// multi-source data (Definition 1 and Fig. 2 of the paper). Every adapter in
// internal/adapter emits its parsed content as a jsonld.Document so that
// structured, semi-structured and unstructured sources share one storage
// representation before knowledge extraction.
package jsonld

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Document is a JSON-LD node object: an @id, an @type, an optional @context
// mapping of term → IRI, and a set of properties. Property values are either
// scalars (string), value lists ([]string) or nested Documents, mirroring the
// subset of JSON-LD the paper's Fig. 2 uses.
type Document struct {
	Context map[string]string
	ID      string
	Type    string
	Props   map[string]Value
}

// Value is one JSON-LD property value.
type Value struct {
	// Exactly one of the fields below is populated.
	Str  string
	List []string
	Node *Document
}

// String returns a human-readable rendering of the value.
func (v Value) String() string {
	switch {
	case v.Node != nil:
		return "{" + v.Node.ID + "}"
	case v.List != nil:
		return fmt.Sprint(v.List)
	default:
		return v.Str
	}
}

// IsZero reports whether the value carries no content.
func (v Value) IsZero() bool {
	return v.Str == "" && v.List == nil && v.Node == nil
}

// Strings flattens the value into a string slice: a scalar becomes a
// singleton, a list is returned as-is, and a nested node contributes its @id.
func (v Value) Strings() []string {
	switch {
	case v.Node != nil:
		return []string{v.Node.ID}
	case v.List != nil:
		return v.List
	case v.Str != "":
		return []string{v.Str}
	}
	return nil
}

// New returns an empty document with the given @id and @type.
func New(id, typ string) *Document {
	return &Document{ID: id, Type: typ, Props: map[string]Value{}}
}

// Set assigns a scalar property.
func (d *Document) Set(key, val string) {
	d.Props[key] = Value{Str: val}
}

// SetList assigns a multi-valued property.
func (d *Document) SetList(key string, vals []string) {
	d.Props[key] = Value{List: vals}
}

// SetNode assigns a nested node property.
func (d *Document) SetNode(key string, node *Document) {
	d.Props[key] = Value{Node: node}
}

// Get returns the property value and whether it exists.
func (d *Document) Get(key string) (Value, bool) {
	v, ok := d.Props[key]
	return v, ok
}

// Keys returns the property names in sorted order.
func (d *Document) Keys() []string {
	keys := make([]string, 0, len(d.Props))
	for k := range d.Props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// MarshalJSON renders the document with JSON-LD keywords (@context, @id,
// @type) ahead of ordinary properties.
func (d *Document) MarshalJSON() ([]byte, error) {
	m := map[string]any{}
	if len(d.Context) > 0 {
		m["@context"] = d.Context
	}
	if d.ID != "" {
		m["@id"] = d.ID
	}
	if d.Type != "" {
		m["@type"] = d.Type
	}
	for k, v := range d.Props {
		switch {
		case v.Node != nil:
			m[k] = v.Node
		case v.List != nil:
			m[k] = v.List
		default:
			m[k] = v.Str
		}
	}
	return json.Marshal(m)
}

// UnmarshalJSON parses a JSON-LD node object produced by MarshalJSON (or any
// object using the same subset: scalar strings, string arrays, nested
// objects). Non-string scalars are stringified.
func (d *Document) UnmarshalJSON(data []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("jsonld: %w", err)
	}
	d.Props = map[string]Value{}
	for k, rv := range raw {
		switch k {
		case "@context":
			if err := json.Unmarshal(rv, &d.Context); err != nil {
				return fmt.Errorf("jsonld: @context: %w", err)
			}
		case "@id":
			if err := json.Unmarshal(rv, &d.ID); err != nil {
				return fmt.Errorf("jsonld: @id: %w", err)
			}
		case "@type":
			if err := json.Unmarshal(rv, &d.Type); err != nil {
				return fmt.Errorf("jsonld: @type: %w", err)
			}
		default:
			v, err := parseValue(rv)
			if err != nil {
				return fmt.Errorf("jsonld: property %q: %w", k, err)
			}
			d.Props[k] = v
		}
	}
	return nil
}

func parseValue(raw json.RawMessage) (Value, error) {
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		return Value{Str: s}, nil
	}
	var list []string
	if err := json.Unmarshal(raw, &list); err == nil {
		return Value{List: list}, nil
	}
	var node Document
	if err := json.Unmarshal(raw, &node); err == nil {
		return Value{Node: &node}, nil
	}
	// Fall back to stringifying numbers / booleans / mixed arrays.
	var any any
	if err := json.Unmarshal(raw, &any); err != nil {
		return Value{}, err
	}
	return Value{Str: fmt.Sprint(any)}, nil
}
