package eval

import (
	"time"
)

// Clock is the virtual-time accounting used throughout the benchmarks.
// Reported "query time" is real compute time plus the priced cost of
// simulated externals: LLM traffic (priced by llm.CostModel inside the
// model) and historical-data validation scans (priced here). See DESIGN.md
// §1, virtual-time model.
type Clock struct {
	start    time.Time
	realTime time.Duration
	virtual  time.Duration
}

// PerHistoryScan prices one historical-entity validation scan (Fig. 7's
// dominant cost at α → 0).
const PerHistoryScan = 5 * time.Millisecond

// PerClaimFetch prices one source-record access during fusion. Batch
// algorithms (TruthFinder) touch the whole corpus per query under the
// on-demand protocol and dominate Table II's time column exactly as in the
// paper; line-graph and candidate-set methods touch a handful of records.
const PerClaimFetch = 2 * time.Millisecond

// ChargeClaimFetches charges n source-record accesses.
func (c *Clock) ChargeClaimFetches(n int) {
	c.virtual += time.Duration(n) * PerClaimFetch
}

// Start begins (or restarts) real-time measurement.
func (c *Clock) Start() { c.start = time.Now() }

// Stop accumulates the elapsed real time since Start.
func (c *Clock) Stop() {
	if !c.start.IsZero() {
		c.realTime += time.Since(c.start)
		c.start = time.Time{}
	}
}

// AddVirtual charges simulated latency.
func (c *Clock) AddVirtual(d time.Duration) { c.virtual += d }

// ChargeHistoryScans charges n historical validation scans.
func (c *Clock) ChargeHistoryScans(n int) {
	c.virtual += time.Duration(n) * PerHistoryScan
}

// Real returns the accumulated real compute time.
func (c *Clock) Real() time.Duration { return c.realTime }

// Virtual returns the accumulated simulated latency.
func (c *Clock) Virtual() time.Duration { return c.virtual }

// Total returns real + virtual time.
func (c *Clock) Total() time.Duration { return c.realTime + c.virtual }

// Seconds returns the total in floating-point seconds — the unit of the
// paper's time columns.
func (c *Clock) Seconds() float64 { return c.Total().Seconds() }
