package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestPRF1Exact(t *testing.T) {
	p, r, f1 := PRF1([]string{"Michael Mann"}, []string{"michael mann"})
	if p != 1 || r != 1 || f1 != 1 {
		t.Fatalf("exact match: %v %v %v", p, r, f1)
	}
}

func TestPRF1Partial(t *testing.T) {
	// Predicted one of two gold values plus one wrong value.
	p, r, f1 := PRF1([]string{"Lana Wachowski", "Someone Wrong"}, []string{"Lana Wachowski", "Lilly Wachowski"})
	if math.Abs(p-0.5) > 1e-12 || math.Abs(r-0.5) > 1e-12 || math.Abs(f1-0.5) > 1e-12 {
		t.Fatalf("partial: %v %v %v", p, r, f1)
	}
}

func TestPRF1Empty(t *testing.T) {
	if _, _, f1 := PRF1(nil, []string{"x"}); f1 != 0 {
		t.Fatal("abstention on answerable query must score 0")
	}
	if _, _, f1 := PRF1(nil, nil); f1 != 1 {
		t.Fatal("empty vs empty must score 1")
	}
}

func TestPRF1DedupNormalisation(t *testing.T) {
	p, _, _ := PRF1([]string{"X", "x", "X."}, []string{"x"})
	if p != 1 {
		t.Fatalf("duplicate predictions must collapse: p = %v", p)
	}
}

func TestPRF1BoundsProperty(t *testing.T) {
	f := func(pred, gold []string) bool {
		p, r, f1 := PRF1(pred, gold)
		inRange := func(x float64) bool { return x >= 0 && x <= 1 }
		if !inRange(p) || !inRange(r) || !inRange(f1) {
			return false
		}
		// F1 is bounded by min and max of p,r … actually by their harmonic
		// mean properties: f1 <= max(p,r) and f1 >= min(p,r) only when both
		// positive; just check f1 <= (p+r)/2 + 1e-9 (harmonic ≤ arithmetic).
		return f1 <= (p+r)/2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecallAtK(t *testing.T) {
	ranked := []string{"a", "b", "c", "d", "e", "f"}
	if got := RecallAtK(ranked, []string{"a", "e"}, 5); got != 1 {
		t.Fatalf("recall@5 = %v", got)
	}
	if got := RecallAtK(ranked, []string{"a", "f"}, 5); got != 0.5 {
		t.Fatalf("recall@5 = %v", got)
	}
	if got := RecallAtK(nil, []string{"x"}, 5); got != 0 {
		t.Fatalf("empty ranking recall = %v", got)
	}
	if got := RecallAtK(ranked, nil, 5); got != 1 {
		t.Fatalf("no gold ⇒ recall 1, got %v", got)
	}
	// Duplicate retrieved items must not double count.
	if got := RecallAtK([]string{"a", "a"}, []string{"a", "b"}, 2); got != 0.5 {
		t.Fatalf("duplicate handling: %v", got)
	}
}

func TestMeanAndStd(t *testing.T) {
	var m Mean
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if math.Abs(m.Value()-5) > 1e-12 {
		t.Fatalf("mean = %v", m.Value())
	}
	if math.Abs(m.Std()-2.138089935299395) > 1e-9 {
		t.Fatalf("std = %v", m.Std())
	}
	if m.N() != 8 {
		t.Fatalf("n = %d", m.N())
	}
	var empty Mean
	if empty.Value() != 0 || empty.Std() != 0 {
		t.Fatal("empty accumulator must read 0")
	}
}

func TestClock(t *testing.T) {
	var c Clock
	c.Start()
	time.Sleep(time.Millisecond)
	c.Stop()
	if c.Real() <= 0 {
		t.Fatal("real time must accumulate")
	}
	c.AddVirtual(2 * time.Second)
	c.ChargeHistoryScans(100)
	wantVirtual := 2*time.Second + 100*PerHistoryScan
	if c.Virtual() != wantVirtual {
		t.Fatalf("virtual = %v, want %v", c.Virtual(), wantVirtual)
	}
	if c.Total() != c.Real()+c.Virtual() {
		t.Fatal("total must be real+virtual")
	}
	if c.Seconds() <= 2 {
		t.Fatalf("seconds = %v", c.Seconds())
	}
	// Stop without Start must be a no-op.
	var c2 Clock
	c2.Stop()
	if c2.Real() != 0 {
		t.Fatal("Stop without Start must not charge time")
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Title: "T", Headers: []string{"method", "f1"}}
	tb.AddRow("MCC", "54.8")
	tb.AddRow("TF") // short row padded
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	if !strings.Contains(out, "MCC") || !strings.Contains(out, "54.8") {
		t.Fatalf("render lost cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + header + sep + 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestFigureRender(t *testing.T) {
	f := Figure{
		Title:   "Fig",
		XLabel:  "mask",
		XTicks:  []string{"0", "30", "50", "70"},
		Percent: true,
		Series: []Series{
			{Name: "MultiRAG", Ys: []float64{66.8, 64.0, 62.1, 60.0}},
			{Name: "ChatKBQA", Ys: []float64{59.1, 57.0, 55.2, 53.0}},
		},
	}
	var sb strings.Builder
	f.Fprint(&sb)
	out := sb.String()
	if !strings.Contains(out, "MultiRAG") || !strings.Contains(out, "66.8") {
		t.Fatalf("figure render broken:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	if s := sparkline([]float64{0, 1}); len(s) != 2 || s[0] == s[1] {
		t.Fatalf("sparkline = %q", s)
	}
	if s := sparkline([]float64{5, 5, 5}); s != "___" {
		t.Fatalf("flat sparkline = %q", s)
	}
	if sparkline(nil) != "" {
		t.Fatal("empty sparkline")
	}
}
