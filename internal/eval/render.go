package eval

import (
	"fmt"
	"io"
	"strings"
)

// Table is a plain-text table renderer for benchmark output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Headers) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(t.Headers)
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one labelled line of a figure: y values over shared x labels.
type Series struct {
	Name string
	Ys   []float64
}

// Figure is a plain-text rendering of a paper figure: several series over
// shared x labels.
type Figure struct {
	Title   string
	XLabel  string
	XTicks  []string
	Series  []Series
	Percent bool // render y values as percentages
}

// Fprint renders the figure as a table of series values plus a coarse ASCII
// sparkline per series.
func (f *Figure) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s\n", f.Title)
	t := Table{Headers: append([]string{f.XLabel}, f.XTicks...)}
	for _, s := range f.Series {
		row := []string{s.Name}
		for _, y := range s.Ys {
			if f.Percent {
				row = append(row, fmt.Sprintf("%.1f", y))
			} else {
				row = append(row, fmt.Sprintf("%.3g", y))
			}
		}
		t.AddRow(row...)
	}
	t.Fprint(w)
	for _, s := range f.Series {
		fmt.Fprintf(w, "  %-24s %s\n", s.Name, sparkline(s.Ys))
	}
}

// sparkline renders values as a coarse ASCII intensity strip.
func sparkline(ys []float64) string {
	if len(ys) == 0 {
		return ""
	}
	min, max := ys[0], ys[0]
	for _, y := range ys {
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
	}
	levels := []byte("_.-=*#")
	var sb strings.Builder
	for _, y := range ys {
		idx := 0
		if max > min {
			idx = int((y - min) / (max - min) * float64(len(levels)-1))
		}
		sb.WriteByte(levels[idx])
	}
	return sb.String()
}
