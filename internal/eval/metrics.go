// Package eval provides the evaluation machinery: precision/recall/F1 over
// answer value sets (Eq. 12), Recall@K for supporting-document retrieval, the
// virtual-time clock that prices simulated LLM traffic, and plain-text
// renderers for the benchmark tables and figure series.
package eval

import (
	"multirag/internal/textutil"
)

// normSet canonicalises a value set for matching: lower-cased,
// punctuation-free, deduplicated.
func normSet(values []string) map[string]bool {
	out := map[string]bool{}
	for _, v := range values {
		n := textutil.NormalizeValue(v)
		if n != "" {
			out[n] = true
		}
	}
	return out
}

// PRF1 computes precision, recall and F1 (Eq. 12) between a predicted value
// set and the gold value set, using normalised exact matching. Empty
// prediction against non-empty gold scores 0; empty against empty scores 1.
func PRF1(pred, gold []string) (p, r, f1 float64) {
	ps := normSet(pred)
	gs := normSet(gold)
	if len(ps) == 0 && len(gs) == 0 {
		return 1, 1, 1
	}
	if len(ps) == 0 || len(gs) == 0 {
		return 0, 0, 0
	}
	hits := 0
	for v := range ps {
		if gs[v] {
			hits++
		}
	}
	p = float64(hits) / float64(len(ps))
	r = float64(hits) / float64(len(gs))
	if p+r == 0 {
		return p, r, 0
	}
	f1 = 2 * p * r / (p + r)
	return p, r, f1
}

// RecallAtK computes the fraction of gold items found within the first k
// elements of ranked.
func RecallAtK(ranked, gold []string, k int) float64 {
	if len(gold) == 0 {
		return 1
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	gs := map[string]bool{}
	for _, g := range gold {
		gs[g] = true
	}
	hits := 0
	for _, r := range ranked[:k] {
		if gs[r] {
			hits++
			delete(gs, r) // count each gold item once
		}
	}
	return float64(hits) / float64(len(gold))
}

// Mean accumulates a running mean and variance (Welford).
type Mean struct {
	n    int
	mean float64
	m2   float64
}

// Add folds a sample in.
func (m *Mean) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the sample count.
func (m *Mean) N() int { return m.n }

// Value returns the mean (0 with no samples).
func (m *Mean) Value() float64 { return m.mean }

// Std returns the sample standard deviation (0 with <2 samples).
func (m *Mean) Std() float64 {
	if m.n < 2 {
		return 0
	}
	return sqrt(m.m2 / float64(m.n-1))
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}
