package adapter

import (
	"fmt"
	"strings"

	"multirag/internal/jsonld"
)

// Unstructured adapts free text (§III-B: "for unstructured data, the focus is
// currently limited to textual information, which is stored directly").
// Paragraphs (blank-line separated) become individual records so downstream
// chunking and LLM entity/relation extraction operate on bounded units.
type Unstructured struct{}

// Format implements Adapter.
func (Unstructured) Format() string { return "text" }

// Parse implements Adapter.
func (Unstructured) Parse(f RawFile) (*jsonld.Normalized, error) {
	text := strings.TrimSpace(string(f.Content))
	if text == "" {
		return nil, fmt.Errorf("text parse: empty file")
	}
	n := newNormalized(f)
	for i, para := range strings.Split(text, "\n\n") {
		para = strings.TrimSpace(para)
		if para == "" {
			continue
		}
		doc := jsonld.New(fmt.Sprintf("%s/para/%d", n.ID, i), "Text")
		doc.Set("text", para)
		n.JSC = append(n.JSC, doc)
	}
	if len(n.JSC) == 0 {
		return nil, fmt.Errorf("text parse: no paragraphs")
	}
	return n, nil
}

// KGFormat adapts data already stored as knowledge-graph triples, one per
// line: "subject|predicate|object". The Movies benchmark retains several
// sources in native KG format (Table I).
type KGFormat struct{}

// Format implements Adapter.
func (KGFormat) Format() string { return "kg" }

// Parse implements Adapter.
func (KGFormat) Parse(f RawFile) (*jsonld.Normalized, error) {
	n := newNormalized(f)
	lines := strings.Split(strings.TrimSpace(string(f.Content)), "\n")
	for i, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "|", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("kg parse: line %d: want subject|predicate|object, got %q", i+1, line)
		}
		doc := jsonld.New(fmt.Sprintf("%s/spo/%d", n.ID, i), "Triple")
		doc.Set("subject", strings.TrimSpace(parts[0]))
		doc.Set("predicate", strings.TrimSpace(parts[1]))
		doc.Set("object", strings.TrimSpace(parts[2]))
		n.JSC = append(n.JSC, doc)
	}
	if len(n.JSC) == 0 {
		return nil, fmt.Errorf("kg parse: no triples")
	}
	return n, nil
}
