package adapter

import (
	"strings"
	"testing"
)

func TestStructuredCSV(t *testing.T) {
	f := RawFile{
		Domain: "movies", Source: "imdb", Name: "top", Format: "csv",
		Meta:    map[string]string{"year": "2024"},
		Content: []byte("title,director,year\nHeat,Michael Mann,1995\nInception,Christopher Nolan,\n"),
	}
	n, err := Structured{}.Parse(f)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if n.Records() != 2 {
		t.Fatalf("records = %d", n.Records())
	}
	if v, _ := n.JSC[0].Get("@key"); v.Str != "Heat" {
		t.Fatalf("key = %q", v.Str)
	}
	if v, _ := n.JSC[0].Get("director"); v.Str != "Michael Mann" {
		t.Fatalf("director = %q", v.Str)
	}
	// Missing year in row 1 must not appear in the column index.
	if got := n.ColsIndex["year"]; len(got) != 1 || got[0] != 0 {
		t.Fatalf("cols_index[year] = %v", got)
	}
	if n.Meta["year"] != "2024" {
		t.Fatal("meta lost")
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestStructuredCSVErrors(t *testing.T) {
	if _, err := (Structured{}).Parse(RawFile{Format: "csv", Content: []byte("")}); err == nil {
		t.Fatal("empty csv must error")
	}
	if _, err := (Structured{}).Parse(RawFile{Format: "csv", Content: []byte("onlykey\nv\n")}); err == nil {
		t.Fatal("csv without attribute columns must error")
	}
}

func TestSemiJSONNested(t *testing.T) {
	content := `[{"name":"CA981","status":{"state":"Delayed","reason":"Weather"},"codes":["PEK","JFK"]}]`
	n, err := SemiJSON{}.Parse(RawFile{Domain: "flights", Source: "app", Name: "live", Format: "json", Content: []byte(content)})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if n.Records() != 1 {
		t.Fatalf("records = %d", n.Records())
	}
	doc := n.JSC[0]
	if v, _ := doc.Get("name"); v.Str != "CA981" {
		t.Fatalf("name = %q", v.Str)
	}
	status, _ := doc.Get("status")
	if status.Node == nil {
		t.Fatal("nested object must become sub-node")
	}
	if v, _ := status.Node.Get("state"); v.Str != "Delayed" {
		t.Fatalf("state = %q", v.Str)
	}
	if codes, _ := doc.Get("codes"); len(codes.List) != 2 {
		t.Fatalf("codes = %v", codes)
	}
	if n.ColsIndex != nil {
		t.Fatal("semi-structured data must not carry a column index")
	}
}

func TestSemiJSONSingleObjectAndErrors(t *testing.T) {
	n, err := SemiJSON{}.Parse(RawFile{Domain: "d", Source: "s", Name: "n", Format: "json", Content: []byte(`{"a":1}`)})
	if err != nil || n.Records() != 1 {
		t.Fatalf("single object: %v / %d", err, n.Records())
	}
	if _, err := (SemiJSON{}).Parse(RawFile{Format: "json", Content: []byte(`"scalar"`)}); err == nil {
		t.Fatal("scalar top level must error")
	}
	if _, err := (SemiJSON{}).Parse(RawFile{Format: "json", Content: []byte(`{bad`)}); err == nil {
		t.Fatal("malformed json must error")
	}
}

func TestSemiXML(t *testing.T) {
	content := `<books>
  <book isbn="1"><title>Dune</title><author>Frank Herbert</author></book>
  <book isbn="2"><title>Hyperion</title><author>Dan Simmons</author><author>Someone Else</author></book>
</books>`
	n, err := SemiXML{}.Parse(RawFile{Domain: "books", Source: "lib", Name: "cat", Format: "xml", Content: []byte(content)})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if n.Records() != 2 {
		t.Fatalf("records = %d", n.Records())
	}
	if v, _ := n.JSC[0].Get("title"); v.Str != "Dune" {
		t.Fatalf("title = %q", v.Str)
	}
	if v, _ := n.JSC[0].Get("@isbn"); v.Str != "1" {
		t.Fatalf("attr = %q", v.Str)
	}
	if v, _ := n.JSC[1].Get("author"); len(v.List) != 2 {
		t.Fatalf("repeated elements must form a list: %v", v)
	}
}

func TestUnstructuredParagraphs(t *testing.T) {
	content := "Typhoon Haikui impacts PEK departures after 14:00.\n\nThe status of CA981 is Delayed."
	n, err := Unstructured{}.Parse(RawFile{Domain: "flights", Source: "news", Name: "alerts", Format: "text", Content: []byte(content)})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if n.Records() != 2 {
		t.Fatalf("records = %d", n.Records())
	}
	if _, err := (Unstructured{}).Parse(RawFile{Format: "text", Content: []byte("  ")}); err == nil {
		t.Fatal("empty text must error")
	}
}

func TestKGFormat(t *testing.T) {
	content := "Heat|director|Michael Mann\nHeat|year|1995\n"
	n, err := KGFormat{}.Parse(RawFile{Domain: "movies", Source: "kgsrc", Name: "facts", Format: "kg", Content: []byte(content)})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if n.Records() != 2 {
		t.Fatalf("records = %d", n.Records())
	}
	if v, _ := n.JSC[0].Get("predicate"); v.Str != "director" {
		t.Fatalf("predicate = %q", v.Str)
	}
	if _, err := (KGFormat{}).Parse(RawFile{Format: "kg", Content: []byte("only|two")}); err == nil {
		t.Fatal("malformed triple line must error")
	}
}

func TestRegistryFuse(t *testing.T) {
	r := NewRegistry()
	files := []RawFile{
		{Domain: "movies", Source: "b-src", Name: "t", Format: "csv", Content: []byte("t,d\nHeat,Mann\n")},
		{Domain: "movies", Source: "a-src", Name: "t", Format: "kg", Content: []byte("Heat|year|1995")},
	}
	out, err := r.Fuse(files)
	if err != nil {
		t.Fatalf("Fuse: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("fused = %d", len(out))
	}
	if out[0].Source != "a-src" {
		t.Fatalf("fusion output must be ordered by source, got %q first", out[0].Source)
	}
}

func TestFuseUnknownFormat(t *testing.T) {
	r := NewRegistry()
	_, err := r.Fuse([]RawFile{{Domain: "d", Source: "s", Name: "n", Format: "parquet"}})
	if err == nil || !strings.Contains(err.Error(), "parquet") {
		t.Fatalf("unknown format must fail loudly, got %v", err)
	}
}

func TestFusePropagatesParseErrors(t *testing.T) {
	r := NewRegistry()
	_, err := r.Fuse([]RawFile{{Domain: "d", Source: "s", Name: "n", Format: "json", Content: []byte("{bad")}})
	if err == nil {
		t.Fatal("parse failure must propagate")
	}
}
