// Package adapter implements the multi-source data fusion front-end of
// MultiRAG (§III-B, Eq. 2): one adapter per storage format transforms raw
// files into the normalised JSON-LD representation of Definition 1, and Fuse
// computes D_Fusion = ⋃ᵢ Aᵢ(Dᵢ) over a heterogeneous file set.
//
// Four formats are supported, matching the paper's dataset preprocessing:
// "csv" (structured, stored through the DSM columnar model with column
// indexes), "json" and "xml" (semi-structured, nested linked-data trees),
// "kg" (native triples) and "text" (unstructured, handed to the LLM
// extractor downstream).
package adapter

import (
	"fmt"
	"sort"

	"multirag/internal/jsonld"
	"multirag/internal/par"
)

// RawFile is one ingested data file before adaptation.
type RawFile struct {
	Domain  string            // d: the data domain ("movies", "flights", ...)
	Source  string            // originating source name ("src-03", "imdb")
	Name    string            // file / attribute name
	Format  string            // "csv", "json", "xml", "kg", "text"
	Meta    map[string]string // file metadata
	Content []byte            // file content
}

// Adapter parses one storage format into the normalised representation.
type Adapter interface {
	// Format returns the format key this adapter handles.
	Format() string
	// Parse transforms the raw file into normalised linked data.
	Parse(f RawFile) (*jsonld.Normalized, error)
}

// Registry maps formats to adapters.
type Registry struct {
	adapters map[string]Adapter
}

// NewRegistry returns a registry pre-loaded with the four standard adapters.
func NewRegistry() *Registry {
	r := &Registry{adapters: map[string]Adapter{}}
	r.Register(Structured{})
	r.Register(SemiJSON{})
	r.Register(SemiXML{})
	r.Register(Unstructured{})
	r.Register(KGFormat{})
	return r
}

// Register installs an adapter, replacing any previous adapter for the same
// format.
func (r *Registry) Register(a Adapter) { r.adapters[a.Format()] = a }

// Lookup returns the adapter for a format.
func (r *Registry) Lookup(format string) (Adapter, bool) {
	a, ok := r.adapters[format]
	return a, ok
}

// Fuse implements Eq. (2): it routes every file through its format adapter
// and returns the union of the normalised outputs, ordered deterministically
// by (domain, source, name). An unknown format is an error — silent data loss
// during fusion would invalidate every downstream confidence estimate.
func (r *Registry) Fuse(files []RawFile) ([]*jsonld.Normalized, error) {
	return r.FuseParallel(files, 1)
}

// FuseParallel is Fuse with per-file adaptation fanned out across a bounded
// worker pool (workers == 1 runs inline, <= 0 selects GOMAXPROCS). Adapters
// are stateless, so parsing
// different files concurrently is safe; output ordering and error selection
// (first failing file in input order) are identical to the serial path.
func (r *Registry) FuseParallel(files []RawFile, workers int) ([]*jsonld.Normalized, error) {
	out := make([]*jsonld.Normalized, len(files))
	errs := make([]error, len(files))
	adapt := func(i int) {
		f := files[i]
		a, ok := r.adapters[f.Format]
		if !ok {
			errs[i] = fmt.Errorf("adapter: no adapter registered for format %q (file %s/%s/%s)",
				f.Format, f.Domain, f.Source, f.Name)
			return
		}
		n, err := a.Parse(f)
		if err != nil {
			errs[i] = fmt.Errorf("adapter: %s file %s/%s/%s: %w", f.Format, f.Domain, f.Source, f.Name, err)
			return
		}
		if err := n.Validate(); err != nil {
			errs[i] = fmt.Errorf("adapter: %s file %s/%s/%s produced invalid output: %w",
				f.Format, f.Domain, f.Source, f.Name, err)
			return
		}
		out[i] = n
	}
	par.ForEach(workers, len(files), adapt)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Domain != out[j].Domain {
			return out[i].Domain < out[j].Domain
		}
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}

// newNormalized fills the identity fields shared by all adapters.
func newNormalized(f RawFile) *jsonld.Normalized {
	meta := map[string]string{}
	for k, v := range f.Meta {
		meta[k] = v
	}
	return &jsonld.Normalized{
		ID:     jsonld.NormalizedID(f.Domain, f.Source, f.Name),
		Domain: f.Domain,
		Source: f.Source,
		Name:   f.Name,
		Format: f.Format,
		Meta:   meta,
	}
}
