package adapter

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"sort"
	"strings"

	"multirag/internal/jsonld"
)

// SemiJSON adapts semi-structured nested JSON: the file is either a JSON
// array of objects or a single object; nesting is preserved as linked-data
// sub-nodes. Per §III-B these trees carry no column index and are searched
// with DFS downstream.
type SemiJSON struct{}

// Format implements Adapter.
func (SemiJSON) Format() string { return "json" }

// Parse implements Adapter.
func (SemiJSON) Parse(f RawFile) (*jsonld.Normalized, error) {
	var any interface{}
	if err := json.Unmarshal(f.Content, &any); err != nil {
		return nil, fmt.Errorf("json parse: %w", err)
	}
	n := newNormalized(f)
	switch v := any.(type) {
	case []interface{}:
		for i, item := range v {
			obj, ok := item.(map[string]interface{})
			if !ok {
				return nil, fmt.Errorf("json parse: array element %d is not an object", i)
			}
			n.JSC = append(n.JSC, jsonToDoc(fmt.Sprintf("%s/obj/%d", n.ID, i), obj))
		}
	case map[string]interface{}:
		n.JSC = append(n.JSC, jsonToDoc(n.ID+"/obj/0", v))
	default:
		return nil, fmt.Errorf("json parse: top level must be object or array of objects")
	}
	return n, nil
}

func jsonToDoc(id string, obj map[string]interface{}) *jsonld.Document {
	doc := jsonld.New(id, "Record")
	keys := make([]string, 0, len(obj))
	for k := range obj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		switch v := obj[k].(type) {
		case map[string]interface{}:
			doc.SetNode(k, jsonToDoc(id+"/"+k, v))
		case []interface{}:
			var list []string
			nested := false
			for i, item := range v {
				if m, ok := item.(map[string]interface{}); ok {
					// A list of objects becomes numbered sub-nodes.
					doc.SetNode(fmt.Sprintf("%s/%d", k, i), jsonToDoc(fmt.Sprintf("%s/%s/%d", id, k, i), m))
					nested = true
				} else {
					list = append(list, fmt.Sprint(item))
				}
			}
			if !nested {
				doc.SetList(k, list)
			}
		default:
			doc.Set(k, fmt.Sprint(v))
		}
	}
	return doc
}

// SemiXML adapts semi-structured XML. Each child of the root element becomes
// one record; element text becomes scalar properties, nested elements become
// sub-nodes, attributes become properties prefixed with "@".
type SemiXML struct{}

// Format implements Adapter.
func (SemiXML) Format() string { return "xml" }

type xmlNode struct {
	XMLName  xml.Name
	Attrs    []xml.Attr `xml:",any,attr"`
	Children []xmlNode  `xml:",any"`
	Text     string     `xml:",chardata"`
}

// Parse implements Adapter.
func (SemiXML) Parse(f RawFile) (*jsonld.Normalized, error) {
	var root xmlNode
	if err := xml.Unmarshal(f.Content, &root); err != nil {
		return nil, fmt.Errorf("xml parse: %w", err)
	}
	n := newNormalized(f)
	if len(root.Children) == 0 {
		n.JSC = append(n.JSC, xmlToDoc(n.ID+"/rec/0", root))
		return n, nil
	}
	for i, child := range root.Children {
		n.JSC = append(n.JSC, xmlToDoc(fmt.Sprintf("%s/rec/%d", n.ID, i), child))
	}
	return n, nil
}

func xmlToDoc(id string, node xmlNode) *jsonld.Document {
	doc := jsonld.New(id, "Record")
	for _, a := range node.Attrs {
		doc.Set("@"+a.Name.Local, a.Value)
	}
	// Group repeated child element names into lists.
	byName := map[string][]xmlNode{}
	var order []string
	for _, c := range node.Children {
		if _, seen := byName[c.XMLName.Local]; !seen {
			order = append(order, c.XMLName.Local)
		}
		byName[c.XMLName.Local] = append(byName[c.XMLName.Local], c)
	}
	for _, name := range order {
		group := byName[name]
		if len(group) == 1 {
			c := group[0]
			if len(c.Children) == 0 && len(c.Attrs) == 0 {
				doc.Set(name, strings.TrimSpace(c.Text))
			} else {
				doc.SetNode(name, xmlToDoc(id+"/"+name, c))
			}
			continue
		}
		scalar := true
		for _, c := range group {
			if len(c.Children) > 0 || len(c.Attrs) > 0 {
				scalar = false
				break
			}
		}
		if scalar {
			var list []string
			for _, c := range group {
				list = append(list, strings.TrimSpace(c.Text))
			}
			doc.SetList(name, list)
		} else {
			for i, c := range group {
				doc.SetNode(fmt.Sprintf("%s/%d", name, i), xmlToDoc(fmt.Sprintf("%s/%s/%d", id, name, i), c))
			}
		}
	}
	return doc
}
