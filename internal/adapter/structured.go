package adapter

import (
	"bytes"
	"encoding/csv"
	"fmt"

	"multirag/internal/dsm"
	"multirag/internal/jsonld"
)

// Structured adapts tabular CSV data. Per §III-B, tabular information is
// stored in JSON(-LD) with attribute variables managed through a
// Decomposition Storage Model so that all attribute information can be
// extracted for consistency checks via column indexes.
//
// Convention: the first CSV column names the entity each row describes;
// remaining columns are its attributes.
type Structured struct{}

// Format implements Adapter.
func (Structured) Format() string { return "csv" }

// Parse implements Adapter.
func (Structured) Parse(f RawFile) (*jsonld.Normalized, error) {
	r := csv.NewReader(bytes.NewReader(f.Content))
	r.FieldsPerRecord = -1
	records, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("csv parse: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("csv parse: empty file")
	}
	header := records[0]
	if len(header) < 2 {
		return nil, fmt.Errorf("csv parse: need a key column plus at least one attribute, got %d columns", len(header))
	}
	table, err := dsm.NewTable(f.Name, header...)
	if err != nil {
		return nil, err
	}
	n := newNormalized(f)
	for rowNum, rec := range records[1:] {
		if len(rec) > len(header) {
			return nil, fmt.Errorf("csv parse: row %d has %d fields, header has %d", rowNum+1, len(rec), len(header))
		}
		row := map[string]string{}
		for i, v := range rec {
			if v != "" {
				row[header[i]] = v
			}
		}
		if _, err := table.Insert(row); err != nil {
			return nil, err
		}
		key := ""
		if len(rec) > 0 {
			key = rec[0]
		}
		doc := jsonld.New(fmt.Sprintf("%s/row/%d", n.ID, rowNum), "Record")
		doc.Set("@key", key)
		for i := 1; i < len(rec) && i < len(header); i++ {
			if rec[i] != "" {
				doc.Set(header[i], rec[i])
			}
		}
		n.JSC = append(n.JSC, doc)
	}
	n.ColsIndex = jsonld.BuildColsIndex(n.JSC)
	return n, nil
}
