// Package kg implements the in-memory knowledge graph substrate: entities,
// relations and provenance-carrying triples with adjacency indexes, traversal
// and subgraph extraction. The multi-source line graph (internal/linegraph)
// and the confidence machinery (internal/confidence) are built on top of it.
//
// Internally the graph is an interned, columnar store: entity IDs and
// predicates are interned to dense int32 handles once at insertion, triples
// live in copy-on-write paged columns addressed by handle (a triple's handle
// is derivable from its "tNNNNNN" ID without any map), and the four adjacency
// indexes are []int32 posting lists. Clone is a copy-on-write snapshot that
// shares immutable pages and copies only what a later mutation touches, so an
// ingest commit costs O(delta) instead of O(corpus). The string-keyed API
// below is a thin compat layer over the handles; hot paths (linegraph,
// confidence) use the handle-level API in handles.go directly.
package kg

import (
	"fmt"
	"sort"

	"multirag/internal/textutil"
)

// Entity is a node in the knowledge graph.
type Entity struct {
	ID     string // canonical identifier (standardised name)
	Name   string // preferred surface form
	Type   string // coarse type ("Movie", "Flight", "Entity", ...)
	Domain string // domain of the originating data (d in Definition 1)
}

// Triple is a (subject, predicate, object) edge with provenance. Objects are
// literal values; when an object is itself an entity, ObjectEntity carries
// its canonical ID so traversal can continue through it.
type Triple struct {
	ID           string
	Subject      string // canonical entity ID
	Predicate    string
	Object       string // literal surface form
	ObjectEntity string // canonical entity ID if the object is an entity, else ""
	Source       string // originating data source (provenance)
	Domain       string
	Format       string  // original storage format ("csv","json","xml","kg","text")
	ChunkID      string  // retrieval chunk the triple was extracted from
	Weight       float64 // extraction confidence in [0,1]
}

// Key returns the homologous-data key of the triple: the (subject, predicate)
// pair. Two triples with equal keys answer the same question about the same
// entity and are candidates for the same homologous subgraph.
func (t *Triple) Key() string { return t.Subject + "\x00" + t.Predicate }

// CanonicalID derives the stable entity ID for a surface form.
func CanonicalID(name string) string { return textutil.NormalizeValue(name) }

// Graph is the mutable in-memory knowledge graph. It is not safe for
// concurrent mutation; the serving engine mutates only fresh Clones and
// publishes them as immutable snapshots, which any number of readers may
// query concurrently (including concurrently with a Clone call).
type Graph struct {
	ents      col[*Entity] // entity handle → entity (replaced, never mutated, on upgrade)
	entLookup cowStr       // canonical entity ID → entity handle

	preds      col[string] // predicate handle → predicate
	predLookup cowStr      // predicate → predicate handle

	trs   col[*Triple] // triple handle → triple, nil when removed
	tSubj col[int32]   // triple handle → subject entity handle
	tObj  col[int32]   // triple handle → object entity handle, -1 for literals
	tPred col[int32]   // triple handle → predicate handle

	bySubject postingCol     // entity handle → handles of triples with that subject
	byObject  postingCol     // entity handle → handles of triples linking it as object
	byPred    postingCol     // predicate handle → triple handles
	byKey     cowKeyPostings // packed (subject, predicate) handles → triple handles

	liveTriples int
	// degCount[d] counts entities of degree d (d ≥ 1) and maxDeg is the
	// largest degree with a nonzero count; both are maintained in O(1) per
	// Add/RemoveTriple so MaxDegree is a plain read for concurrent queries.
	degCount []int
	maxDeg   int
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// tripleIDString formats the ID of the n-th inserted triple ("t%06d" without
// the fmt machinery — this runs once per triple on the hottest write path).
func tripleIDString(n int32) string {
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	for len(buf)-i < 6 {
		i--
		buf[i] = '0'
	}
	i--
	buf[i] = 't'
	return string(buf[i:])
}

// ParseTripleID inverts tripleIDString: it returns the handle of the triple
// with the given ID. It accepts exactly the canonical form ("t" + ≥6 digits,
// no excess zero padding) so non-canonical spellings of a number cannot alias
// an existing triple.
func ParseTripleID(id string) (int32, bool) {
	if len(id) < 7 || id[0] != 't' {
		return 0, false
	}
	if len(id) > 7 && id[1] == '0' {
		return 0, false
	}
	n := 0
	for i := 1; i < len(id); i++ {
		c := id[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
		if n > 1<<30 {
			return 0, false
		}
	}
	if n == 0 {
		return 0, false
	}
	return int32(n - 1), true
}

func packKey(subjH, predH int32) uint64 {
	return uint64(uint32(subjH))<<32 | uint64(uint32(predH))
}

// AddEntity inserts (or upgrades) an entity and returns its canonical ID.
// Re-adding an entity keeps the first non-empty Type/Domain seen. An upgrade
// installs a fresh *Entity rather than mutating the stored one, so entities
// reachable from published snapshots never change under a reader.
func (g *Graph) AddEntity(name, typ, domain string) string {
	id := CanonicalID(name)
	if id == "" {
		return ""
	}
	if h, ok := g.entLookup.get(id); ok {
		e := g.ents.get(h)
		if (e.Type == "" && typ != "") || (e.Domain == "" && domain != "") {
			ne := *e
			if ne.Type == "" {
				ne.Type = typ
			}
			if ne.Domain == "" {
				ne.Domain = domain
			}
			g.ents.set(h, &ne)
		}
		return id
	}
	h := g.ents.append(&Entity{ID: id, Name: name, Type: typ, Domain: domain})
	g.entLookup.put(id, h)
	return id
}

func (g *Graph) internPred(p string) int32 {
	if h, ok := g.predLookup.get(p); ok {
		return h
	}
	h := g.preds.append(p)
	g.predLookup.put(p, h)
	return h
}

// AddTriple inserts a triple. The subject entity must already exist; the
// object is linked as an entity when its canonical form is a known entity (a
// pre-set ObjectEntity is honoured only when it names a known entity).
// It returns the assigned triple ID.
func (g *Graph) AddTriple(t Triple) (string, error) {
	subjH, ok := g.entLookup.get(t.Subject)
	if !ok {
		return "", fmt.Errorf("kg: unknown subject entity %q", t.Subject)
	}
	if t.Predicate == "" {
		return "", fmt.Errorf("kg: triple with empty predicate (subject %q)", t.Subject)
	}
	if t.Weight == 0 {
		t.Weight = 1
	}
	objH := int32(-1)
	if t.ObjectEntity != "" {
		if h, ok := g.entLookup.get(t.ObjectEntity); ok {
			objH = h
		}
	} else if oid := CanonicalID(t.Object); oid != "" {
		if h, ok := g.entLookup.get(oid); ok {
			t.ObjectEntity = oid
			objH = h
		}
	}
	t.ID = tripleIDString(int32(g.trs.len() + 1))
	tc := t
	h := g.trs.append(&tc)
	predH := g.internPred(tc.Predicate)
	g.tSubj.append(subjH)
	g.tObj.append(objH)
	g.tPred.append(predH)
	g.bySubject.appendTo(subjH, h)
	g.byKey.appendTo(packKey(subjH, predH), h)
	g.byPred.appendTo(predH, h)
	if objH >= 0 {
		g.byObject.appendTo(objH, h)
	}
	g.liveTriples++
	if objH >= 0 && objH != subjH {
		g.bumpDegree(g.degreeH(subjH)-1, g.degreeH(subjH))
		g.bumpDegree(g.degreeH(objH)-1, g.degreeH(objH))
	} else if objH == subjH {
		g.bumpDegree(g.degreeH(subjH)-2, g.degreeH(subjH)) // self-loop: +2 on one entity
	} else {
		g.bumpDegree(g.degreeH(subjH)-1, g.degreeH(subjH))
	}
	return tc.ID, nil
}

// bumpDegree moves one entity from degree old to degree new in the degree
// histogram and keeps maxDeg in sync. O(1) amortised.
func (g *Graph) bumpDegree(old, new int) {
	if old > 0 {
		g.degCount[old]--
	}
	if new > 0 {
		for len(g.degCount) <= new {
			g.degCount = append(g.degCount, 0)
		}
		g.degCount[new]++
		if new > g.maxDeg {
			g.maxDeg = new
		}
	}
	for g.maxDeg > 0 && g.degCount[g.maxDeg] == 0 {
		g.maxDeg--
	}
}

// RemoveTriple deletes a triple by ID; it is used by the perturbation
// machinery (relation masking). Removing an unknown ID is a no-op returning
// false. The triple's handle is never reused, keeping IDs unique and monotone
// across the graph's lifetime.
func (g *Graph) RemoveTriple(id string) bool {
	h, ok := ParseTripleID(id)
	if !ok || int(h) >= g.trs.len() {
		return false
	}
	t := g.trs.get(h)
	if t == nil {
		return false
	}
	subjH, objH, predH := g.tSubj.get(h), g.tObj.get(h), g.tPred.get(h)
	g.trs.set(h, nil)
	g.liveTriples--
	g.bySubject.set(subjH, removeHandle(g.bySubject.get(subjH), h))
	g.byPred.set(predH, removeHandle(g.byPred.get(predH), h))
	if objH >= 0 {
		g.byObject.set(objH, removeHandle(g.byObject.get(objH), h))
	}
	kh := packKey(subjH, predH)
	if lst, ok := g.byKey.get(kh); ok {
		g.byKey.put(kh, removeHandle(lst, h))
	}
	if objH >= 0 && objH != subjH {
		g.bumpDegree(g.degreeH(subjH)+1, g.degreeH(subjH))
		g.bumpDegree(g.degreeH(objH)+1, g.degreeH(objH))
	} else if objH == subjH {
		g.bumpDegree(g.degreeH(subjH)+2, g.degreeH(subjH))
	} else {
		g.bumpDegree(g.degreeH(subjH)+1, g.degreeH(subjH))
	}
	return true
}

// removeHandle returns lst without the first occurrence of h, never mutating
// the input (the old list may still be visible through a shared snapshot).
func removeHandle(lst []int32, h int32) []int32 {
	for i, v := range lst {
		if v == h {
			out := make([]int32, 0, len(lst)-1)
			out = append(out, lst[:i]...)
			return append(out, lst[i+1:]...)
		}
	}
	return lst
}

// Clone returns a copy-on-write snapshot of the graph: both sides share every
// column page, posting list and interner base, and whichever side mutates
// first copies only the pages and lists it touches. Cloning costs
// O(corpus / pageSize) pointer copies plus the interner tails — effectively
// O(delta accumulated since the previous clone) — instead of the deep
// O(corpus) copy it replaces. Triple handles (and therefore IDs) stay unique
// and monotone across clone generations — the property the incremental
// line-graph maintenance relies on. The write path of the serving engine
// clones the current graph before applying a batch, leaving published
// snapshots immutable; mutating either side never changes any observable of
// the other.
func (g *Graph) Clone() *Graph {
	return &Graph{
		ents:       g.ents.clone(),
		entLookup:  g.entLookup.clone(),
		preds:      g.preds.clone(),
		predLookup: g.predLookup.clone(),
		trs:        g.trs.clone(),
		tSubj:      g.tSubj.clone(),
		tObj:       g.tObj.clone(),
		tPred:      g.tPred.clone(),
		bySubject:  g.bySubject.clone(),
		byObject:   g.byObject.clone(),
		byPred:     g.byPred.clone(),
		byKey:      g.byKey.clone(),

		liveTriples: g.liveTriples,
		degCount:    append([]int(nil), g.degCount...),
		maxDeg:      g.maxDeg,
	}
}

// Entity returns the entity with the given canonical ID.
func (g *Graph) Entity(id string) (*Entity, bool) {
	h, ok := g.entLookup.get(id)
	if !ok {
		return nil, false
	}
	return g.ents.get(h), true
}

// Triple returns the triple with the given ID.
func (g *Graph) Triple(id string) (*Triple, bool) {
	h, ok := ParseTripleID(id)
	if !ok || int(h) >= g.trs.len() {
		return nil, false
	}
	t := g.trs.get(h)
	return t, t != nil
}

// NumEntities returns the entity count.
func (g *Graph) NumEntities() int { return g.ents.len() }

// NumTriples returns the triple (relation instance) count.
func (g *Graph) NumTriples() int { return g.liveTriples }

// EntityIDs returns all canonical entity IDs, sorted.
func (g *Graph) EntityIDs() []string {
	ids := make([]string, 0, g.ents.len())
	g.ents.forEach(func(_ int32, e *Entity) {
		ids = append(ids, e.ID)
	})
	sort.Strings(ids)
	return ids
}

// TripleIDs returns all triple IDs, sorted.
func (g *Graph) TripleIDs() []string {
	ids := make([]string, 0, g.liveTriples)
	g.trs.forEach(func(_ int32, t *Triple) {
		if t != nil {
			ids = append(ids, t.ID)
		}
	})
	sort.Strings(ids)
	return ids
}

// TriplesBySubject returns the triples whose subject is the given entity, in
// insertion order.
func (g *Graph) TriplesBySubject(entityID string) []*Triple {
	h, ok := g.entLookup.get(entityID)
	if !ok {
		return []*Triple{}
	}
	return g.resolve(g.bySubject.get(h))
}

// TriplesByKey returns the triples sharing a (subject, predicate) key — the
// raw material of a homologous subgraph.
func (g *Graph) TriplesByKey(subjectID, predicate string) []*Triple {
	subjH, ok := g.entLookup.get(subjectID)
	if !ok {
		return []*Triple{}
	}
	predH, ok := g.predLookup.get(predicate)
	if !ok {
		return []*Triple{}
	}
	lst, _ := g.byKey.get(packKey(subjH, predH))
	return g.resolve(lst)
}

// TriplesByRawKey is TriplesByKey for a precomputed Triple.Key() value.
func (g *Graph) TriplesByRawKey(key string) []*Triple {
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			return g.TriplesByKey(key[:i], key[i+1:])
		}
	}
	return []*Triple{}
}

// TriplesByPredicate returns all triples carrying the given predicate.
func (g *Graph) TriplesByPredicate(pred string) []*Triple {
	h, ok := g.predLookup.get(pred)
	if !ok {
		return []*Triple{}
	}
	return g.resolve(g.byPred.get(h))
}

// TriplesByObjectEntity returns the triples whose object resolves to the
// given entity.
func (g *Graph) TriplesByObjectEntity(entityID string) []*Triple {
	h, ok := g.entLookup.get(entityID)
	if !ok {
		return []*Triple{}
	}
	return g.resolve(g.byObject.get(h))
}

func (g *Graph) resolve(handles []int32) []*Triple {
	out := make([]*Triple, 0, len(handles))
	for _, h := range handles {
		if t := g.trs.get(h); t != nil {
			out = append(out, t)
		}
	}
	return out
}

func (g *Graph) degreeH(entH int32) int {
	return len(g.bySubject.get(entH)) + len(g.byObject.get(entH))
}

// Degree returns the number of triples incident on an entity (as subject or
// object).
func (g *Graph) Degree(entityID string) int {
	h, ok := g.entLookup.get(entityID)
	if !ok {
		return 0
	}
	return g.degreeH(h)
}

// MaxDegree returns the maximum entity degree in the graph (0 when empty).
// It is maintained through the degree histogram in O(1) per mutation, so
// reading it is a plain load and safe under concurrent readers.
func (g *Graph) MaxDegree() int { return g.maxDeg }

// neighborHandles returns the handles of entities one hop from entH, sorted
// by handle and deduplicated.
func (g *Graph) neighborHandles(entH int32) []int32 {
	var hs []int32
	for _, th := range g.bySubject.get(entH) {
		if o := g.tObj.get(th); o >= 0 && o != entH {
			hs = append(hs, o)
		}
	}
	for _, th := range g.byObject.get(entH) {
		if s := g.tSubj.get(th); s != entH {
			hs = append(hs, s)
		}
	}
	sortCompactHandles(&hs)
	return hs
}

// sortCompactHandles sorts hs and removes duplicates in place.
func sortCompactHandles(hs *[]int32) {
	s := *hs
	if len(s) < 2 {
		return
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	*hs = out
}

// Neighbors returns the canonical IDs of entities one hop from entityID
// (through triples in either direction), sorted and deduplicated.
func (g *Graph) Neighbors(entityID string) []string {
	h, ok := g.entLookup.get(entityID)
	if !ok {
		return []string{}
	}
	hs := g.neighborHandles(h)
	out := make([]string, 0, len(hs))
	for _, nh := range hs {
		out = append(out, g.ents.get(nh).ID)
	}
	sort.Strings(out)
	return out
}
