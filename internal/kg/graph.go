// Package kg implements the in-memory knowledge graph substrate: entities,
// relations and provenance-carrying triples with adjacency indexes, traversal
// and subgraph extraction. The multi-source line graph (internal/linegraph)
// and the confidence machinery (internal/confidence) are built on top of it.
package kg

import (
	"fmt"
	"sort"

	"multirag/internal/textutil"
)

// Entity is a node in the knowledge graph.
type Entity struct {
	ID     string // canonical identifier (standardised name)
	Name   string // preferred surface form
	Type   string // coarse type ("Movie", "Flight", "Entity", ...)
	Domain string // domain of the originating data (d in Definition 1)
}

// Triple is a (subject, predicate, object) edge with provenance. Objects are
// literal values; when an object is itself an entity, ObjectEntity carries
// its canonical ID so traversal can continue through it.
type Triple struct {
	ID           string
	Subject      string // canonical entity ID
	Predicate    string
	Object       string // literal surface form
	ObjectEntity string // canonical entity ID if the object is an entity, else ""
	Source       string // originating data source (provenance)
	Domain       string
	Format       string  // original storage format ("csv","json","xml","kg","text")
	ChunkID      string  // retrieval chunk the triple was extracted from
	Weight       float64 // extraction confidence in [0,1]
}

// Key returns the homologous-data key of the triple: the (subject, predicate)
// pair. Two triples with equal keys answer the same question about the same
// entity and are candidates for the same homologous subgraph.
func (t *Triple) Key() string { return t.Subject + "\x00" + t.Predicate }

// CanonicalID derives the stable entity ID for a surface form.
func CanonicalID(name string) string { return textutil.NormalizeValue(name) }

// Graph is the mutable in-memory knowledge graph. It is not safe for
// concurrent mutation; benchmark code builds graphs single-threaded and then
// queries them read-only.
type Graph struct {
	entities map[string]*Entity
	triples  map[string]*Triple

	bySubject     map[string][]string // entity ID → triple IDs
	byObject      map[string][]string // object entity ID → triple IDs
	byKey         map[string][]string // Triple.Key() → triple IDs
	byPredicate   map[string][]string
	tripleCounter int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		entities:    map[string]*Entity{},
		triples:     map[string]*Triple{},
		bySubject:   map[string][]string{},
		byObject:    map[string][]string{},
		byKey:       map[string][]string{},
		byPredicate: map[string][]string{},
	}
}

// AddEntity inserts (or upgrades) an entity and returns its canonical ID.
// Re-adding an entity keeps the first non-empty Type/Domain seen.
func (g *Graph) AddEntity(name, typ, domain string) string {
	id := CanonicalID(name)
	if id == "" {
		return ""
	}
	if e, ok := g.entities[id]; ok {
		if e.Type == "" {
			e.Type = typ
		}
		if e.Domain == "" {
			e.Domain = domain
		}
		return id
	}
	g.entities[id] = &Entity{ID: id, Name: name, Type: typ, Domain: domain}
	return id
}

// AddTriple inserts a triple. The subject entity must already exist; the
// object is linked as an entity when its canonical form is a known entity.
// It returns the assigned triple ID.
func (g *Graph) AddTriple(t Triple) (string, error) {
	if _, ok := g.entities[t.Subject]; !ok {
		return "", fmt.Errorf("kg: unknown subject entity %q", t.Subject)
	}
	if t.Predicate == "" {
		return "", fmt.Errorf("kg: triple with empty predicate (subject %q)", t.Subject)
	}
	if t.Weight == 0 {
		t.Weight = 1
	}
	g.tripleCounter++
	t.ID = fmt.Sprintf("t%06d", g.tripleCounter)
	if t.ObjectEntity == "" {
		if oid := CanonicalID(t.Object); oid != "" {
			if _, ok := g.entities[oid]; ok {
				t.ObjectEntity = oid
			}
		}
	}
	tc := t
	g.triples[tc.ID] = &tc
	g.bySubject[tc.Subject] = append(g.bySubject[tc.Subject], tc.ID)
	g.byKey[tc.Key()] = append(g.byKey[tc.Key()], tc.ID)
	g.byPredicate[tc.Predicate] = append(g.byPredicate[tc.Predicate], tc.ID)
	if tc.ObjectEntity != "" {
		g.byObject[tc.ObjectEntity] = append(g.byObject[tc.ObjectEntity], tc.ID)
	}
	return tc.ID, nil
}

// RemoveTriple deletes a triple by ID; it is used by the perturbation
// machinery (relation masking). Removing an unknown ID is a no-op returning
// false.
func (g *Graph) RemoveTriple(id string) bool {
	t, ok := g.triples[id]
	if !ok {
		return false
	}
	delete(g.triples, id)
	g.bySubject[t.Subject] = removeID(g.bySubject[t.Subject], id)
	g.byKey[t.Key()] = removeID(g.byKey[t.Key()], id)
	g.byPredicate[t.Predicate] = removeID(g.byPredicate[t.Predicate], id)
	if t.ObjectEntity != "" {
		g.byObject[t.ObjectEntity] = removeID(g.byObject[t.ObjectEntity], id)
	}
	return true
}

func removeID(ids []string, id string) []string {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// Clone returns a deep copy of the graph: entities, triples and every
// adjacency index are copied, so mutating the clone (or the original) never
// affects the other. The triple counter carries over, keeping triple IDs
// unique and monotone across clone generations — the property the
// incremental line-graph maintenance relies on. The write path of the
// serving engine clones the current graph before applying a batch, leaving
// published snapshots immutable.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		entities:      make(map[string]*Entity, len(g.entities)),
		triples:       make(map[string]*Triple, len(g.triples)),
		bySubject:     cloneIDIndex(g.bySubject),
		byObject:      cloneIDIndex(g.byObject),
		byKey:         cloneIDIndex(g.byKey),
		byPredicate:   cloneIDIndex(g.byPredicate),
		tripleCounter: g.tripleCounter,
	}
	for id, e := range g.entities {
		ce := *e
		ng.entities[id] = &ce
	}
	for id, t := range g.triples {
		ct := *t
		ng.triples[id] = &ct
	}
	return ng
}

func cloneIDIndex(m map[string][]string) map[string][]string {
	out := make(map[string][]string, len(m))
	for k, ids := range m {
		cp := make([]string, len(ids))
		copy(cp, ids)
		out[k] = cp
	}
	return out
}

// Entity returns the entity with the given canonical ID.
func (g *Graph) Entity(id string) (*Entity, bool) {
	e, ok := g.entities[id]
	return e, ok
}

// Triple returns the triple with the given ID.
func (g *Graph) Triple(id string) (*Triple, bool) {
	t, ok := g.triples[id]
	return t, ok
}

// NumEntities returns the entity count.
func (g *Graph) NumEntities() int { return len(g.entities) }

// NumTriples returns the triple (relation instance) count.
func (g *Graph) NumTriples() int { return len(g.triples) }

// EntityIDs returns all canonical entity IDs, sorted.
func (g *Graph) EntityIDs() []string {
	ids := make([]string, 0, len(g.entities))
	for id := range g.entities {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// TripleIDs returns all triple IDs, sorted.
func (g *Graph) TripleIDs() []string {
	ids := make([]string, 0, len(g.triples))
	for id := range g.triples {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// TriplesBySubject returns the triples whose subject is the given entity, in
// insertion order.
func (g *Graph) TriplesBySubject(entityID string) []*Triple {
	return g.resolve(g.bySubject[entityID])
}

// TriplesByKey returns the triples sharing a (subject, predicate) key — the
// raw material of a homologous subgraph.
func (g *Graph) TriplesByKey(subjectID, predicate string) []*Triple {
	return g.resolve(g.byKey[subjectID+"\x00"+predicate])
}

// TriplesByRawKey is TriplesByKey for a precomputed Triple.Key() value.
func (g *Graph) TriplesByRawKey(key string) []*Triple {
	return g.resolve(g.byKey[key])
}

// TriplesByPredicate returns all triples carrying the given predicate.
func (g *Graph) TriplesByPredicate(pred string) []*Triple {
	return g.resolve(g.byPredicate[pred])
}

// TriplesByObjectEntity returns the triples whose object resolves to the
// given entity.
func (g *Graph) TriplesByObjectEntity(entityID string) []*Triple {
	return g.resolve(g.byObject[entityID])
}

func (g *Graph) resolve(ids []string) []*Triple {
	out := make([]*Triple, 0, len(ids))
	for _, id := range ids {
		if t, ok := g.triples[id]; ok {
			out = append(out, t)
		}
	}
	return out
}

// Degree returns the number of triples incident on an entity (as subject or
// object).
func (g *Graph) Degree(entityID string) int {
	return len(g.bySubject[entityID]) + len(g.byObject[entityID])
}

// MaxDegree returns the maximum entity degree in the graph (0 when empty).
func (g *Graph) MaxDegree() int {
	max := 0
	for id := range g.entities {
		if d := g.Degree(id); d > max {
			max = d
		}
	}
	return max
}

// Neighbors returns the canonical IDs of entities one hop from entityID
// (through triples in either direction), sorted and deduplicated.
func (g *Graph) Neighbors(entityID string) []string {
	seen := map[string]bool{}
	for _, t := range g.TriplesBySubject(entityID) {
		if t.ObjectEntity != "" && t.ObjectEntity != entityID {
			seen[t.ObjectEntity] = true
		}
	}
	for _, t := range g.TriplesByObjectEntity(entityID) {
		if t.Subject != entityID {
			seen[t.Subject] = true
		}
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
