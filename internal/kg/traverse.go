package kg

import "sort"

// BFS visits entities reachable from start in breadth-first order up to
// maxDepth hops (maxDepth < 0 means unbounded) and returns the visit order.
// The start entity is included at depth 0.
func (g *Graph) BFS(start string, maxDepth int) []string {
	if _, ok := g.entLookup.get(start); !ok {
		return nil
	}
	type item struct {
		id    string
		depth int
	}
	visited := map[string]bool{start: true}
	order := []string{start}
	queue := []item{{start, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if maxDepth >= 0 && cur.depth >= maxDepth {
			continue
		}
		for _, n := range g.Neighbors(cur.id) {
			if !visited[n] {
				visited[n] = true
				order = append(order, n)
				queue = append(queue, item{n, cur.depth + 1})
			}
		}
	}
	return order
}

// DFS visits entities reachable from start in depth-first order (used for
// semi-structured tree retrieval per §III-B) and returns the visit order.
func (g *Graph) DFS(start string) []string {
	if _, ok := g.entLookup.get(start); !ok {
		return nil
	}
	visited := map[string]bool{}
	var order []string
	var walk func(id string)
	walk = func(id string) {
		if visited[id] {
			return
		}
		visited[id] = true
		order = append(order, id)
		for _, n := range g.Neighbors(id) {
			walk(n)
		}
	}
	walk(start)
	return order
}

// Subgraph is an extracted fragment of the graph: the entities and triples
// within a radius of a centre entity.
type Subgraph struct {
	Center   string
	Entities []string
	Triples  []*Triple
}

// SubgraphAround extracts the subgraph within depth hops of centre, including
// all triples whose subject lies inside the ball.
func (g *Graph) SubgraphAround(center string, depth int) Subgraph {
	ents := g.BFS(center, depth)
	inside := map[string]bool{}
	for _, e := range ents {
		inside[e] = true
	}
	var triples []*Triple
	for _, e := range ents {
		triples = append(triples, g.TriplesBySubject(e)...)
	}
	sort.Slice(triples, func(i, j int) bool { return triples[i].ID < triples[j].ID })
	return Subgraph{Center: center, Entities: ents, Triples: triples}
}

// TwoHopPathSupport estimates, for a triple t, the fraction of the subject's
// other neighbours that are also connected to the triple's object entity —
// the "multi-step path information" feature fed to the authority judge. For
// literal objects it returns the share of sibling triples that agree with the
// value. Both cases run on interned handles: neighbour sets are sorted
// []int32 slices intersected by a merge walk, and siblings come straight off
// the (subject, predicate) key posting — no string keys are rebuilt.
func (g *Graph) TwoHopPathSupport(t *Triple) float64 {
	if t.ObjectEntity != "" {
		subjH, ok := g.entLookup.get(t.Subject)
		if !ok {
			return 0
		}
		objH, ok := g.entLookup.get(t.ObjectEntity)
		if !ok {
			return 0
		}
		neigh := g.neighborHandles(subjH)
		if len(neigh) <= 1 {
			return 0
		}
		objNeigh := g.neighborHandles(objH)
		// Merge-walk intersection of the two sorted handle sets, skipping the
		// object entity itself.
		hits, i, j := 0, 0, 0
		for i < len(neigh) && j < len(objNeigh) {
			switch {
			case neigh[i] < objNeigh[j]:
				i++
			case neigh[i] > objNeigh[j]:
				j++
			default:
				if neigh[i] != objH {
					hits++
				}
				i++
				j++
			}
		}
		return float64(hits) / float64(len(neigh)-1)
	}
	siblings := g.TriplesByKey(t.Subject, t.Predicate)
	if len(siblings) <= 1 {
		return 0
	}
	agree := 0
	norm := CanonicalID(t.Object)
	for _, s := range siblings {
		if s.ID != t.ID && CanonicalID(s.Object) == norm {
			agree++
		}
	}
	return float64(agree) / float64(len(siblings)-1)
}

// Stats summarises a graph for dataset reporting (Table I).
type Stats struct {
	Entities int
	Triples  int
	Sources  int
	Domains  int
}

// ComputeStats gathers the Table-I-style statistics of the graph.
func (g *Graph) ComputeStats() Stats {
	sources := map[string]bool{}
	domains := map[string]bool{}
	g.trs.forEach(func(_ int32, t *Triple) {
		if t == nil {
			return
		}
		if t.Source != "" {
			sources[t.Source] = true
		}
		if t.Domain != "" {
			domains[t.Domain] = true
		}
	})
	return Stats{
		Entities: g.NumEntities(),
		Triples:  g.NumTriples(),
		Sources:  len(sources),
		Domains:  len(domains),
	}
}
