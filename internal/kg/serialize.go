package kg

import (
	"fmt"

	"multirag/internal/wal"
)

// Checkpoint serialization of the interned graph core. The wire form is the
// columnar layout itself, in handle order: entities, then predicates, then
// every triple slot (live or tombstoned) with its interned handles. Decoding
// replays the column appends one handle at a time, so the rebuilt graph is
// observably identical to the source — same handles, same posting-list
// orders, same degree histogram — and re-encoding it reproduces the exact
// same bytes. Removed triples keep their slots (handles are never reused), so
// triple IDs assigned after recovery continue the original sequence.
//
// Derivable fields are not stored: a triple's ID comes from its handle, its
// Subject from the subject entity handle and its Predicate from the predicate
// handle. Posting lists and the degree histogram are rebuilt by replaying the
// live appends in handle order, which reproduces insertion order exactly
// (removal preserves relative order of the survivors).

// EncodeTo serializes the graph into e.
func (g *Graph) EncodeTo(e *wal.Encoder) {
	e.Int(g.ents.len())
	g.ents.forEach(func(_ int32, ent *Entity) {
		e.String(ent.ID)
		e.String(ent.Name)
		e.String(ent.Type)
		e.String(ent.Domain)
	})
	e.Int(g.preds.len())
	g.preds.forEach(func(_ int32, p string) { e.String(p) })
	e.Int(g.trs.len())
	g.trs.forEach(func(h int32, t *Triple) {
		e.Bool(t != nil)
		e.Int(int(g.tSubj.get(h)))
		e.Int32(g.tObj.get(h))
		e.Int(int(g.tPred.get(h)))
		if t != nil {
			e.String(t.Object)
			e.String(t.ObjectEntity)
			e.String(t.Source)
			e.String(t.Domain)
			e.String(t.Format)
			e.String(t.ChunkID)
			e.F64(t.Weight)
		}
	})
}

// DecodeGraph rebuilds a graph from d (the inverse of EncodeTo). Handles are
// validated against the decoded column sizes, so a corrupt payload fails with
// an error instead of an out-of-bounds panic.
func DecodeGraph(d *wal.Decoder) (*Graph, error) {
	g := New()
	nEnts := d.Int()
	for i := 0; i < nEnts && d.Err() == nil; i++ {
		ent := &Entity{ID: d.String(), Name: d.String(), Type: d.String(), Domain: d.String()}
		h := g.ents.append(ent)
		g.entLookup.put(ent.ID, h)
	}
	nPreds := d.Int()
	for i := 0; i < nPreds && d.Err() == nil; i++ {
		p := d.String()
		h := g.preds.append(p)
		g.predLookup.put(p, h)
	}
	slots := d.Int()
	for i := 0; i < slots && d.Err() == nil; i++ {
		live := d.Bool()
		subjH := int32(d.Int())
		objH := d.Int32()
		predH := int32(d.Int())
		if d.Err() != nil {
			break
		}
		if int(subjH) >= nEnts || int(predH) >= nPreds || objH < -1 || int(objH) >= nEnts {
			return nil, fmt.Errorf("kg: decode: triple slot %d references out-of-range handles (subj %d, obj %d, pred %d)",
				i, subjH, objH, predH)
		}
		if !live {
			g.trs.append(nil)
			g.tSubj.append(subjH)
			g.tObj.append(objH)
			g.tPred.append(predH)
			continue
		}
		t := &Triple{
			ID:           tripleIDString(int32(i + 1)),
			Subject:      g.ents.get(subjH).ID,
			Predicate:    g.preds.get(predH),
			Object:       d.String(),
			ObjectEntity: d.String(),
			Source:       d.String(),
			Domain:       d.String(),
			Format:       d.String(),
			ChunkID:      d.String(),
			Weight:       d.F64(),
		}
		h := g.trs.append(t)
		g.tSubj.append(subjH)
		g.tObj.append(objH)
		g.tPred.append(predH)
		g.bySubject.appendTo(subjH, h)
		g.byKey.appendTo(packKey(subjH, predH), h)
		g.byPred.appendTo(predH, h)
		if objH >= 0 {
			g.byObject.appendTo(objH, h)
		}
		g.liveTriples++
		if objH >= 0 && objH != subjH {
			g.bumpDegree(g.degreeH(subjH)-1, g.degreeH(subjH))
			g.bumpDegree(g.degreeH(objH)-1, g.degreeH(objH))
		} else if objH == subjH {
			g.bumpDegree(g.degreeH(subjH)-2, g.degreeH(subjH))
		} else {
			g.bumpDegree(g.degreeH(subjH)-1, g.degreeH(subjH))
		}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return g, nil
}
