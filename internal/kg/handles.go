package kg

// Handle-level API: the allocation-free view of the interned columnar core,
// used by the hot paths in internal/linegraph and internal/confidence. A
// handle is a dense int32 index assigned at insertion; entity and predicate
// handles are stable forever, triple handles are never reused after removal.
// All returned slices are shared storage and must be treated as read-only.

// TripleSlots returns the number of triple handle slots ever allocated
// (live + removed). Valid triple handles are [0, TripleSlots()).
func (g *Graph) TripleSlots() int32 { return int32(g.trs.len()) }

// TripleAt returns the live triple at handle h, or nil when h was removed or
// is out of range.
func (g *Graph) TripleAt(h int32) *Triple {
	if h < 0 || int(h) >= g.trs.len() {
		return nil
	}
	return g.trs.get(h)
}

// TripleSubject returns the subject entity handle of the triple at h.
func (g *Graph) TripleSubject(h int32) int32 { return g.tSubj.get(h) }

// TripleObjectEnt returns the linked object entity handle of the triple at h,
// or -1 when the object is a literal.
func (g *Graph) TripleObjectEnt(h int32) int32 { return g.tObj.get(h) }

// TripleKeyHandles returns the (subject, predicate) handle pair of the triple
// at h — its homologous-data key in interned form.
func (g *Graph) TripleKeyHandles(h int32) (subjH, predH int32) {
	return g.tSubj.get(h), g.tPred.get(h)
}

// EntitySlots returns the number of entity handles. Valid entity handles are
// [0, EntitySlots()).
func (g *Graph) EntitySlots() int32 { return int32(g.ents.len()) }

// EntityAt returns the entity at handle h.
func (g *Graph) EntityAt(h int32) *Entity { return g.ents.get(h) }

// EntityHandle returns the handle of the entity with the given canonical ID.
func (g *Graph) EntityHandle(id string) (int32, bool) { return g.entLookup.get(id) }

// PredicateHandle returns the handle of the given predicate.
func (g *Graph) PredicateHandle(p string) (int32, bool) { return g.predLookup.get(p) }

// PredicateAt returns the predicate at handle h.
func (g *Graph) PredicateAt(h int32) string { return g.preds.get(h) }

// SubjectPosting returns the handles of live triples whose subject is the
// entity at h, in insertion order. Read-only.
func (g *Graph) SubjectPosting(h int32) []int32 { return g.bySubject.get(h) }

// ObjectPosting returns the handles of live triples linking the entity at h
// as their object, in insertion order. Read-only.
func (g *Graph) ObjectPosting(h int32) []int32 { return g.byObject.get(h) }

// KeyPosting returns the handles of live triples sharing the (subject,
// predicate) key, in insertion order. Read-only.
func (g *Graph) KeyPosting(subjH, predH int32) []int32 {
	lst, _ := g.byKey.get(packKey(subjH, predH))
	return lst
}

// ForEachKeyPosting visits every (subject, predicate) key with its posting
// list, in unspecified order. Postings of fully-removed keys may be empty.
func (g *Graph) ForEachKeyPosting(fn func(subjH, predH int32, posting []int32)) {
	g.byKey.forEach(func(k uint64, lst []int32) {
		fn(int32(k>>32), int32(uint32(k)), lst)
	})
}

// ForEachTriple visits every live triple with its handle, in handle order.
func (g *Graph) ForEachTriple(fn func(h int32, t *Triple)) {
	g.trs.forEach(func(h int32, t *Triple) {
		if t != nil {
			fn(h, t)
		}
	})
}
