package kg

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func buildMovieGraph(t *testing.T) *Graph {
	t.Helper()
	g := New()
	g.AddEntity("Heat", "Movie", "movies")
	g.AddEntity("Michael Mann", "Person", "movies")
	g.AddEntity("Inception", "Movie", "movies")
	g.AddEntity("Christopher Nolan", "Person", "movies")
	add := func(subj, pred, obj, src string) {
		t.Helper()
		if _, err := g.AddTriple(Triple{
			Subject: CanonicalID(subj), Predicate: pred, Object: obj,
			Source: src, Domain: "movies", Weight: 0.9,
		}); err != nil {
			t.Fatalf("AddTriple(%s,%s,%s): %v", subj, pred, obj, err)
		}
	}
	add("Heat", "director", "Michael Mann", "imdb")
	add("Heat", "director", "Michael Mann", "tmdb")
	add("Heat", "year", "1995", "imdb")
	add("Inception", "director", "Christopher Nolan", "imdb")
	add("Inception", "year", "2010", "wiki")
	return g
}

func TestAddEntityIdempotent(t *testing.T) {
	g := New()
	a := g.AddEntity("The Matrix", "Movie", "movies")
	b := g.AddEntity("the matrix", "", "")
	if a != b {
		t.Fatalf("case-variant entities must share a canonical ID: %q vs %q", a, b)
	}
	e, _ := g.Entity(a)
	if e.Type != "Movie" {
		t.Fatalf("first type must win, got %q", e.Type)
	}
	if g.NumEntities() != 1 {
		t.Fatalf("entities = %d", g.NumEntities())
	}
	if g.AddEntity("", "", "") != "" {
		t.Fatal("empty name must not create an entity")
	}
}

func TestAddTripleValidation(t *testing.T) {
	g := New()
	if _, err := g.AddTriple(Triple{Subject: "ghost", Predicate: "p", Object: "o"}); err == nil {
		t.Fatal("unknown subject must be rejected")
	}
	g.AddEntity("X", "", "")
	if _, err := g.AddTriple(Triple{Subject: "x", Predicate: "", Object: "o"}); err == nil {
		t.Fatal("empty predicate must be rejected")
	}
}

func TestObjectEntityLinking(t *testing.T) {
	g := buildMovieGraph(t)
	ts := g.TriplesByKey(CanonicalID("Heat"), "director")
	if len(ts) != 2 {
		t.Fatalf("homologous key lookup = %d triples", len(ts))
	}
	if ts[0].ObjectEntity != CanonicalID("Michael Mann") {
		t.Fatalf("object entity not linked: %+v", ts[0])
	}
	back := g.TriplesByObjectEntity(CanonicalID("Michael Mann"))
	if len(back) != 2 {
		t.Fatalf("reverse index = %d", len(back))
	}
}

func TestNeighborsAndDegree(t *testing.T) {
	g := buildMovieGraph(t)
	n := g.Neighbors(CanonicalID("Heat"))
	if !reflect.DeepEqual(n, []string{CanonicalID("Michael Mann")}) {
		t.Fatalf("Neighbors(Heat) = %v", n)
	}
	if d := g.Degree(CanonicalID("Heat")); d != 3 {
		t.Fatalf("Degree(Heat) = %d, want 3", d)
	}
	if g.MaxDegree() < 3 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
}

func TestRemoveTriple(t *testing.T) {
	g := buildMovieGraph(t)
	ids := g.TripleIDs()
	before := g.NumTriples()
	if !g.RemoveTriple(ids[0]) {
		t.Fatal("existing triple must be removable")
	}
	if g.RemoveTriple(ids[0]) {
		t.Fatal("double removal must return false")
	}
	if g.NumTriples() != before-1 {
		t.Fatalf("triples = %d, want %d", g.NumTriples(), before-1)
	}
	for _, tid := range g.TripleIDs() {
		tr, ok := g.Triple(tid)
		if !ok {
			t.Fatalf("dangling id %s", tid)
		}
		found := false
		for _, s := range g.TriplesBySubject(tr.Subject) {
			if s.ID == tid {
				found = true
			}
		}
		if !found {
			t.Fatalf("index lost triple %s", tid)
		}
	}
}

func TestBFSDepthLimit(t *testing.T) {
	g := New()
	// chain a -> b -> c -> d
	for _, n := range []string{"a", "b", "c", "d"} {
		g.AddEntity(n, "", "")
	}
	link := func(s, o string) {
		if _, err := g.AddTriple(Triple{Subject: s, Predicate: "next", Object: o}); err != nil {
			t.Fatal(err)
		}
	}
	link("a", "b")
	link("b", "c")
	link("c", "d")
	if got := g.BFS("a", 1); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("BFS depth 1 = %v", got)
	}
	if got := g.BFS("a", -1); len(got) != 4 {
		t.Fatalf("BFS unbounded = %v", got)
	}
	if g.BFS("ghost", 1) != nil {
		t.Fatal("BFS from unknown start must be nil")
	}
}

func TestDFSVisitsAllReachable(t *testing.T) {
	g := buildMovieGraph(t)
	order := g.DFS(CanonicalID("Heat"))
	want := []string{CanonicalID("Heat"), CanonicalID("Michael Mann")}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("DFS = %v, want %v", order, want)
	}
}

func TestSubgraphAround(t *testing.T) {
	g := buildMovieGraph(t)
	sg := g.SubgraphAround(CanonicalID("Heat"), 1)
	if sg.Center != CanonicalID("Heat") {
		t.Fatalf("center = %q", sg.Center)
	}
	if len(sg.Triples) != 3 {
		t.Fatalf("subgraph triples = %d, want 3", len(sg.Triples))
	}
}

func TestTwoHopPathSupportLiteralAgreement(t *testing.T) {
	g := New()
	g.AddEntity("F1", "Flight", "flights")
	add := func(obj string) *Triple {
		id, err := g.AddTriple(Triple{Subject: "f1", Predicate: "status", Object: obj})
		if err != nil {
			t.Fatal(err)
		}
		tr, _ := g.Triple(id)
		return tr
	}
	a := add("delayed")
	add("delayed")
	b := add("on time")
	if got := g.TwoHopPathSupport(a); got != 0.5 {
		t.Fatalf("agreeing triple support = %v, want 0.5", got)
	}
	if got := g.TwoHopPathSupport(b); got != 0 {
		t.Fatalf("lone dissenter support = %v, want 0", got)
	}
}

func TestComputeStats(t *testing.T) {
	g := buildMovieGraph(t)
	st := g.ComputeStats()
	if st.Entities != 4 || st.Triples != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Sources != 3 {
		t.Fatalf("sources = %d, want 3 (imdb,tmdb,wiki)", st.Sources)
	}
}

// removeID drops the first occurrence of id from ids (test helper; the
// production code works on int32 handle lists, see removeHandle).
func removeID(ids []string, id string) []string {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// Property: after arbitrary add/remove interleavings, every index entry
// resolves to a live triple and counts agree.
func TestIndexConsistencyProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		g := New()
		for i := 0; i < 5; i++ {
			g.AddEntity(fmt.Sprintf("e%d", i), "T", "d")
		}
		var live []string
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				subj := fmt.Sprintf("e%d", op%5)
				id, err := g.AddTriple(Triple{
					Subject:   subj,
					Predicate: fmt.Sprintf("p%d", op%4),
					Object:    fmt.Sprintf("v%d", op%7),
				})
				if err != nil {
					return false
				}
				live = append(live, id)
			} else {
				victim := live[int(op)%len(live)]
				g.RemoveTriple(victim)
				live = removeID(live, victim)
			}
		}
		if g.NumTriples() != len(live) {
			return false
		}
		sort.Strings(live)
		got := g.TripleIDs()
		if len(got) != len(live) {
			return false
		}
		for i := range got {
			if got[i] != live[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
