package kg

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"multirag/internal/wal"
)

// buildRandomGraph grows a graph with entity links, self-loops, literal
// objects, entity upgrades and (optionally) removals — every structural case
// the columnar encoding has to carry.
func buildRandomGraph(tb testing.TB, rng *rand.Rand, n int, withRemovals bool) *Graph {
	tb.Helper()
	g := New()
	for i := 0; i < 12; i++ {
		typ, dom := "", ""
		if i%3 == 0 {
			typ, dom = "T", "d1"
		}
		g.AddEntity(fmt.Sprintf("ent%d", i), typ, dom)
	}
	// Upgrade a few entities after the fact (fresh *Entity installed).
	g.AddEntity("ent1", "Movie", "d2")
	g.AddEntity("ent2", "", "d2")
	var live []string
	for i := 0; i < n; i++ {
		obj := fmt.Sprintf("lit%d", rng.Intn(5))
		if rng.Intn(2) == 0 {
			obj = fmt.Sprintf("ent%d", rng.Intn(12))
		}
		id, err := g.AddTriple(Triple{
			Subject:   CanonicalID(fmt.Sprintf("ent%d", rng.Intn(12))),
			Predicate: fmt.Sprintf("p%d", rng.Intn(5)),
			Object:    obj,
			Source:    fmt.Sprintf("s%d", rng.Intn(3)),
			Domain:    "d1",
			Format:    "csv",
			ChunkID:   fmt.Sprintf("doc#c%d", i),
			Weight:    0.25 * float64(1+rng.Intn(4)),
		})
		if err != nil {
			tb.Fatal(err)
		}
		live = append(live, id)
	}
	if withRemovals {
		for i := 0; i < n/4 && len(live) > 0; i++ {
			j := rng.Intn(len(live))
			if !g.RemoveTriple(live[j]) {
				tb.Fatalf("remove %s failed", live[j])
			}
			live = append(live[:j], live[j+1:]...)
		}
	}
	return g
}

func encodeGraph(g *Graph) []byte {
	var e wal.Encoder
	g.EncodeTo(&e)
	return append([]byte(nil), e.Bytes()...)
}

// requireGraphsEqual checks the decoded graph against the original through
// the public observables the rest of the system reads.
func requireGraphsEqual(t *testing.T, got, want *Graph) {
	t.Helper()
	fail := func(what string, g, w any) {
		t.Helper()
		t.Fatalf("%s diverges:\n got  %v\n want %v", what, g, w)
	}
	if got.NumEntities() != want.NumEntities() {
		fail("NumEntities", got.NumEntities(), want.NumEntities())
	}
	if got.NumTriples() != want.NumTriples() {
		fail("NumTriples", got.NumTriples(), want.NumTriples())
	}
	if got.TripleSlots() != want.TripleSlots() {
		fail("TripleSlots", got.TripleSlots(), want.TripleSlots())
	}
	if got.MaxDegree() != want.MaxDegree() {
		fail("MaxDegree", got.MaxDegree(), want.MaxDegree())
	}
	if g, w := got.EntityIDs(), want.EntityIDs(); !reflect.DeepEqual(g, w) {
		fail("EntityIDs", g, w)
	}
	if g, w := got.TripleIDs(), want.TripleIDs(); !reflect.DeepEqual(g, w) {
		fail("TripleIDs", g, w)
	}
	for _, id := range want.EntityIDs() {
		we, _ := want.Entity(id)
		ge, ok := got.Entity(id)
		if !ok || *ge != *we {
			fail("Entity("+id+")", ge, we)
		}
		if g, w := got.Degree(id), want.Degree(id); g != w {
			fail("Degree("+id+")", g, w)
		}
		if g, w := got.Neighbors(id), want.Neighbors(id); !reflect.DeepEqual(g, w) {
			fail("Neighbors("+id+")", g, w)
		}
		if g, w := got.TriplesBySubject(id), want.TriplesBySubject(id); !reflect.DeepEqual(g, w) {
			fail("TriplesBySubject("+id+")", g, w)
		}
		if g, w := got.TriplesByObjectEntity(id), want.TriplesByObjectEntity(id); !reflect.DeepEqual(g, w) {
			fail("TriplesByObjectEntity("+id+")", g, w)
		}
	}
	for _, id := range want.TripleIDs() {
		wt, _ := want.Triple(id)
		gt, ok := got.Triple(id)
		if !ok || *gt != *wt {
			fail("Triple("+id+")", gt, wt)
		}
		if g, w := got.TriplesByRawKey(wt.Key()), want.TriplesByRawKey(wt.Key()); !reflect.DeepEqual(g, w) {
			fail("TriplesByRawKey("+wt.Key()+")", g, w)
		}
	}
}

func TestGraphSerializeRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name         string
		n            int
		withRemovals bool
	}{
		{"empty", 0, false},
		{"small", 10, false},
		{"removals", 200, true},
		{"large", 1500, false}, // crosses the 512-row page boundary
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			g := buildRandomGraph(t, rng, tc.n, tc.withRemovals)
			raw := encodeGraph(g)
			d := wal.NewDecoder(raw)
			got, err := DecodeGraph(d)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Finish(); err != nil {
				t.Fatal(err)
			}
			requireGraphsEqual(t, got, g)
			// The decoded graph re-encodes to the identical bytes — the
			// property the crash-equivalence oracle leans on.
			if !bytes.Equal(encodeGraph(got), raw) {
				t.Fatal("re-encoded bytes differ from original encoding")
			}
			// Handle continuity: the next triple inserted on either side gets
			// the same ID (tombstoned slots are preserved, never compacted).
			idW, err := g.AddTriple(Triple{Subject: CanonicalID("ent0"), Predicate: "pnew", Object: "x"})
			if err != nil {
				t.Fatal(err)
			}
			idG, err := got.AddTriple(Triple{Subject: CanonicalID("ent0"), Predicate: "pnew", Object: "x"})
			if err != nil {
				t.Fatal(err)
			}
			if idW != idG {
				t.Fatalf("post-decode triple ID diverged: %s vs %s", idG, idW)
			}
		})
	}
}

func TestDecodeGraphRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := buildRandomGraph(t, rng, 40, true)
	raw := encodeGraph(g)
	// Truncation at any point must error, never panic or mis-decode: either
	// the decoder latches, or the leftover-byte check in the round-trip
	// harness would catch it (a prefix of a valid stream that happens to
	// decode cleanly cannot happen here because counts are written up front).
	for cut := 0; cut < len(raw); cut++ {
		d := wal.NewDecoder(raw[:cut])
		if dec, err := DecodeGraph(d); err == nil {
			if err := d.Finish(); err == nil {
				t.Fatalf("cut %d: decode of truncated stream succeeded (%d entities)", cut, dec.NumEntities())
			}
		}
	}
}
