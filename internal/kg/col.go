package kg

// Copy-on-write paged columns: the storage primitive of the interned graph
// core. A column is a dense array indexed by an int32 handle, split into
// fixed-size pages. Clone copies only the page-pointer table (O(n/pageSize))
// and marks every page shared on both sides; the first write a graph makes to
// a shared page copies that one page. An ingest commit therefore pays for the
// pages its delta touches — the tail of each column plus any rows it
// overwrites — never for the whole corpus.
//
// Columns are not safe for concurrent mutation (the Graph contract); clones
// may be read concurrently with each other and with a Clone call, because a
// graph's writes only ever land in pages it privately owns and Clone touches
// nothing a reader loads.

const (
	pageBits = 9 // 512 rows per page
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// col is a COW paged column of scalar values (pointers, handles, strings).
type col[T any] struct {
	pages [][]T
	owned []bool // owned[p]: page p was allocated/copied after the last clone
	n     int
}

func (c *col[T]) len() int { return c.n }

// get returns the value at handle i. The caller guarantees 0 <= i < len.
func (c *col[T]) get(i int32) T { return c.pages[i>>pageBits][i&pageMask] }

// append adds a value at the next handle and returns that handle.
func (c *col[T]) append(v T) int32 {
	p := c.n >> pageBits
	if p == len(c.pages) {
		c.pages = append(c.pages, make([]T, pageSize))
		c.owned = append(c.owned, true)
	} else if !c.owned[p] {
		c.privatize(p)
	}
	c.pages[p][c.n&pageMask] = v
	c.n++
	return int32(c.n - 1)
}

// set overwrites the value at handle i, copying the page first if it is
// shared with another clone.
func (c *col[T]) set(i int32, v T) {
	p := int(i) >> pageBits
	if !c.owned[p] {
		c.privatize(p)
	}
	c.pages[p][i&pageMask] = v
}

func (c *col[T]) privatize(p int) {
	np := make([]T, pageSize)
	copy(np, c.pages[p])
	c.pages[p] = np
	c.owned[p] = true
}

// clone returns a column sharing every page with c. Both sides drop ownership
// of all pages, so whichever graph writes next copies the page it touches.
// Resetting c's owned flags is safe under concurrent readers: readers only
// load pages and n, never ownership metadata.
func (c *col[T]) clone() col[T] {
	pages := make([][]T, len(c.pages))
	copy(pages, c.pages)
	for i := range c.owned {
		c.owned[i] = false
	}
	return col[T]{pages: pages, owned: make([]bool, len(pages)), n: c.n}
}

// forEach visits every row in handle order.
func (c *col[T]) forEach(fn func(i int32, v T)) {
	for i := 0; i < c.n; i++ {
		fn(int32(i), c.pages[i>>pageBits][i&pageMask])
	}
}

// postingCol is a COW paged column of posting lists ([]int32 per row), used
// for the bySubject/byObject/byPredicate adjacency indexes. It differs from
// col[[]int32] in two ways: rows materialise lazily (an entity with no
// triples costs nothing), and privatizing a page clips every list in it so a
// later append reallocates instead of writing into a backing array another
// clone still reads.
type postingCol struct {
	pages [][][]int32
	owned []bool
	n     int
}

// get returns the posting list at handle i (nil when the row was never
// touched). The result is shared storage: callers must not mutate it.
func (pc *postingCol) get(i int32) []int32 {
	if int(i) >= pc.n {
		return nil
	}
	return pc.pages[i>>pageBits][i&pageMask]
}

// appendTo appends v to the posting list at handle i, extending the column
// as needed.
func (pc *postingCol) appendTo(i, v int32) {
	p := pc.ensure(i)
	pc.pages[p][i&pageMask] = append(pc.pages[p][i&pageMask], v)
}

// set replaces the posting list at handle i. The caller passes a list it
// owns (freshly built); used by triple removal.
func (pc *postingCol) set(i int32, lst []int32) {
	p := pc.ensure(i)
	pc.pages[p][i&pageMask] = lst
}

func (pc *postingCol) ensure(i int32) int {
	p := int(i) >> pageBits
	for p >= len(pc.pages) {
		pc.pages = append(pc.pages, make([][]int32, pageSize))
		pc.owned = append(pc.owned, true)
	}
	if !pc.owned[p] {
		pc.privatize(p)
	}
	if int(i) >= pc.n {
		pc.n = int(i) + 1
	}
	return p
}

func (pc *postingCol) privatize(p int) {
	np := make([][]int32, pageSize)
	for j, s := range pc.pages[p] {
		np[j] = s[:len(s):len(s)] // clip: appends must reallocate
	}
	pc.pages[p] = np
	pc.owned[p] = true
}

func (pc *postingCol) clone() postingCol {
	pages := make([][][]int32, len(pc.pages))
	copy(pages, pc.pages)
	for i := range pc.owned {
		pc.owned[i] = false
	}
	return postingCol{pages: pages, owned: make([]bool, len(pages)), n: pc.n}
}
