package kg

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// This file pins observation-equivalence of the interned columnar core
// against the string-keyed map implementation it replaced: refGraph below is
// the seed implementation (maps of strings, deep Clone), and the property
// tests drive both through identical operation scripts — including
// interleaved clones and removals — comparing every public observable.

type refGraph struct {
	entities map[string]*Entity
	triples  map[string]*Triple

	bySubject     map[string][]string
	byObject      map[string][]string
	byKey         map[string][]string
	byPredicate   map[string][]string
	tripleCounter int
}

func newRefGraph() *refGraph {
	return &refGraph{
		entities:    map[string]*Entity{},
		triples:     map[string]*Triple{},
		bySubject:   map[string][]string{},
		byObject:    map[string][]string{},
		byKey:       map[string][]string{},
		byPredicate: map[string][]string{},
	}
}

func (g *refGraph) addEntity(name, typ, domain string) string {
	id := CanonicalID(name)
	if id == "" {
		return ""
	}
	if e, ok := g.entities[id]; ok {
		if e.Type == "" {
			e.Type = typ
		}
		if e.Domain == "" {
			e.Domain = domain
		}
		return id
	}
	g.entities[id] = &Entity{ID: id, Name: name, Type: typ, Domain: domain}
	return id
}

func (g *refGraph) addTriple(t Triple) (string, error) {
	if _, ok := g.entities[t.Subject]; !ok {
		return "", fmt.Errorf("ref: unknown subject entity %q", t.Subject)
	}
	if t.Predicate == "" {
		return "", fmt.Errorf("ref: empty predicate")
	}
	if t.Weight == 0 {
		t.Weight = 1
	}
	g.tripleCounter++
	t.ID = fmt.Sprintf("t%06d", g.tripleCounter)
	if t.ObjectEntity == "" {
		if oid := CanonicalID(t.Object); oid != "" {
			if _, ok := g.entities[oid]; ok {
				t.ObjectEntity = oid
			}
		}
	}
	tc := t
	g.triples[tc.ID] = &tc
	g.bySubject[tc.Subject] = append(g.bySubject[tc.Subject], tc.ID)
	g.byKey[tc.Key()] = append(g.byKey[tc.Key()], tc.ID)
	g.byPredicate[tc.Predicate] = append(g.byPredicate[tc.Predicate], tc.ID)
	if tc.ObjectEntity != "" {
		g.byObject[tc.ObjectEntity] = append(g.byObject[tc.ObjectEntity], tc.ID)
	}
	return tc.ID, nil
}

func (g *refGraph) removeTriple(id string) bool {
	t, ok := g.triples[id]
	if !ok {
		return false
	}
	delete(g.triples, id)
	g.bySubject[t.Subject] = removeID(g.bySubject[t.Subject], id)
	g.byKey[t.Key()] = removeID(g.byKey[t.Key()], id)
	g.byPredicate[t.Predicate] = removeID(g.byPredicate[t.Predicate], id)
	if t.ObjectEntity != "" {
		g.byObject[t.ObjectEntity] = removeID(g.byObject[t.ObjectEntity], id)
	}
	return true
}

func (g *refGraph) clone() *refGraph {
	ng := newRefGraph()
	ng.tripleCounter = g.tripleCounter
	for id, e := range g.entities {
		ce := *e
		ng.entities[id] = &ce
	}
	for id, t := range g.triples {
		ct := *t
		ng.triples[id] = &ct
	}
	for _, pair := range []struct{ dst, src map[string][]string }{
		{ng.bySubject, g.bySubject}, {ng.byObject, g.byObject},
		{ng.byKey, g.byKey}, {ng.byPredicate, g.byPredicate},
	} {
		for k, ids := range pair.src {
			cp := make([]string, len(ids))
			copy(cp, ids)
			pair.dst[k] = cp
		}
	}
	return ng
}

func (g *refGraph) resolve(ids []string) []*Triple {
	out := make([]*Triple, 0, len(ids))
	for _, id := range ids {
		if t, ok := g.triples[id]; ok {
			out = append(out, t)
		}
	}
	return out
}

func (g *refGraph) entityIDs() []string {
	ids := make([]string, 0, len(g.entities))
	for id := range g.entities {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func (g *refGraph) tripleIDs() []string {
	ids := make([]string, 0, len(g.triples))
	for id := range g.triples {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func (g *refGraph) degree(entityID string) int {
	return len(g.bySubject[entityID]) + len(g.byObject[entityID])
}

func (g *refGraph) maxDegree() int {
	max := 0
	for id := range g.entities {
		if d := g.degree(id); d > max {
			max = d
		}
	}
	return max
}

func (g *refGraph) neighbors(entityID string) []string {
	seen := map[string]bool{}
	for _, t := range g.resolve(g.bySubject[entityID]) {
		if t.ObjectEntity != "" && t.ObjectEntity != entityID {
			seen[t.ObjectEntity] = true
		}
	}
	for _, t := range g.resolve(g.byObject[entityID]) {
		if t.Subject != entityID {
			seen[t.Subject] = true
		}
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// tripleValues projects a []*Triple to values for order-sensitive comparison.
func tripleValues(ts []*Triple) []Triple {
	out := make([]Triple, len(ts))
	for i, t := range ts {
		out[i] = *t
	}
	return out
}

// requireSameObservables compares every public observable of g against the
// reference oracle.
func requireSameObservables(t *testing.T, label string, g *Graph, r *refGraph) {
	t.Helper()
	fail := func(what string, got, want any) {
		t.Helper()
		t.Fatalf("%s: %s diverges:\n got  %v\n want %v", label, what, got, want)
	}
	if g.NumEntities() != len(r.entities) {
		fail("NumEntities", g.NumEntities(), len(r.entities))
	}
	if g.NumTriples() != len(r.triples) {
		fail("NumTriples", g.NumTriples(), len(r.triples))
	}
	if got, want := g.EntityIDs(), r.entityIDs(); !reflect.DeepEqual(got, want) {
		fail("EntityIDs", got, want)
	}
	if got, want := g.TripleIDs(), r.tripleIDs(); !reflect.DeepEqual(got, want) {
		fail("TripleIDs", got, want)
	}
	if got, want := g.MaxDegree(), r.maxDegree(); got != want {
		fail("MaxDegree", got, want)
	}
	if got, want := g.ComputeStats(), refStats(r); got != want {
		fail("ComputeStats", got, want)
	}
	for _, id := range r.entityIDs() {
		re := r.entities[id]
		ge, ok := g.Entity(id)
		if !ok || *ge != *re {
			fail("Entity("+id+")", ge, re)
		}
		if got, want := g.Degree(id), r.degree(id); got != want {
			fail("Degree("+id+")", got, want)
		}
		if got, want := g.Neighbors(id), r.neighbors(id); !reflect.DeepEqual(got, want) {
			fail("Neighbors("+id+")", got, want)
		}
		if got, want := tripleValues(g.TriplesBySubject(id)), tripleValues(r.resolve(r.bySubject[id])); !reflect.DeepEqual(got, want) {
			fail("TriplesBySubject("+id+")", got, want)
		}
		if got, want := tripleValues(g.TriplesByObjectEntity(id)), tripleValues(r.resolve(r.byObject[id])); !reflect.DeepEqual(got, want) {
			fail("TriplesByObjectEntity("+id+")", got, want)
		}
	}
	preds := map[string]bool{}
	for _, id := range r.tripleIDs() {
		rt := r.triples[id]
		preds[rt.Predicate] = true
		gt, ok := g.Triple(id)
		if !ok || *gt != *rt {
			fail("Triple("+id+")", gt, rt)
		}
		if got, want := tripleValues(g.TriplesByKey(rt.Subject, rt.Predicate)), tripleValues(r.resolve(r.byKey[rt.Key()])); !reflect.DeepEqual(got, want) {
			fail("TriplesByKey("+rt.Key()+")", got, want)
		}
		if got, want := tripleValues(g.TriplesByRawKey(rt.Key())), tripleValues(r.resolve(r.byKey[rt.Key()])); !reflect.DeepEqual(got, want) {
			fail("TriplesByRawKey("+rt.Key()+")", got, want)
		}
		if got, want := g.TwoHopPathSupport(gt), refTwoHop(r, rt); got != want {
			fail("TwoHopPathSupport("+id+")", got, want)
		}
	}
	for p := range preds {
		if got, want := tripleValues(g.TriplesByPredicate(p)), tripleValues(r.resolve(r.byPredicate[p])); !reflect.DeepEqual(got, want) {
			fail("TriplesByPredicate("+p+")", got, want)
		}
	}
}

func refStats(r *refGraph) Stats {
	sources := map[string]bool{}
	domains := map[string]bool{}
	for _, t := range r.triples {
		if t.Source != "" {
			sources[t.Source] = true
		}
		if t.Domain != "" {
			domains[t.Domain] = true
		}
	}
	return Stats{Entities: len(r.entities), Triples: len(r.triples), Sources: len(sources), Domains: len(domains)}
}

// refTwoHop is the seed TwoHopPathSupport over the reference structures.
func refTwoHop(r *refGraph, t *Triple) float64 {
	if t.ObjectEntity != "" {
		neigh := r.neighbors(t.Subject)
		if len(neigh) <= 1 {
			return 0
		}
		objNeigh := map[string]bool{}
		for _, n := range r.neighbors(t.ObjectEntity) {
			objNeigh[n] = true
		}
		hits := 0
		for _, n := range neigh {
			if n != t.ObjectEntity && objNeigh[n] {
				hits++
			}
		}
		return float64(hits) / float64(len(neigh)-1)
	}
	siblings := r.resolve(r.byKey[t.Key()])
	if len(siblings) <= 1 {
		return 0
	}
	agree := 0
	norm := CanonicalID(t.Object)
	for _, s := range siblings {
		if s.ID != t.ID && CanonicalID(s.Object) == norm {
			agree++
		}
	}
	return float64(agree) / float64(len(siblings)-1)
}

// applyRandomOp applies one random operation to both implementations and
// asserts identical results. Objects sometimes collide with entity names so
// object-entity linking triggers; removals hit random live triples.
func applyRandomOp(t *testing.T, rng *rand.Rand, g *Graph, r *refGraph, live *[]string) {
	t.Helper()
	switch op := rng.Intn(10); {
	case op < 2: // add entity (possibly a re-add with upgrade)
		name := fmt.Sprintf("Entity %d", rng.Intn(12))
		typ, domain := "", ""
		if rng.Intn(2) == 0 {
			typ = fmt.Sprintf("T%d", rng.Intn(3))
		}
		if rng.Intn(2) == 0 {
			domain = fmt.Sprintf("d%d", rng.Intn(3))
		}
		a := g.AddEntity(name, typ, domain)
		b := r.addEntity(name, typ, domain)
		if a != b {
			t.Fatalf("AddEntity diverges: %q vs %q", a, b)
		}
	case op < 3 && len(*live) > 0: // remove
		victim := (*live)[rng.Intn(len(*live))]
		ga := g.RemoveTriple(victim)
		rb := r.removeTriple(victim)
		if ga != rb {
			t.Fatalf("RemoveTriple(%s) diverges: %v vs %v", victim, ga, rb)
		}
		*live = removeID(*live, victim)
	default: // add triple
		subj := CanonicalID(fmt.Sprintf("Entity %d", rng.Intn(12)))
		obj := fmt.Sprintf("value %d", rng.Intn(8))
		if rng.Intn(3) == 0 {
			obj = fmt.Sprintf("Entity %d", rng.Intn(12)) // may link an entity
		}
		tr := Triple{
			Subject:   subj,
			Predicate: fmt.Sprintf("p%d", rng.Intn(4)),
			Object:    obj,
			Source:    fmt.Sprintf("src%d", rng.Intn(3)),
			Domain:    fmt.Sprintf("d%d", rng.Intn(2)),
			Weight:    float64(rng.Intn(5)) / 4, // exercises the 0→1 default
		}
		ga, ea := g.AddTriple(tr)
		rb, eb := r.addTriple(tr)
		if ga != rb || (ea == nil) != (eb == nil) {
			t.Fatalf("AddTriple diverges: (%q,%v) vs (%q,%v)", ga, ea, rb, eb)
		}
		if ea == nil {
			*live = append(*live, ga)
		}
	}
}

// TestInternedCoreMatchesReference drives random op scripts — entity
// upserts, triple adds with object linking, removals — through the interned
// core and the seed reference in lockstep, comparing all observables, with
// copy-on-write clones taken mid-script: after a clone the script continues
// on the children while the parents must stay bit-identical to their own
// reference snapshots (no aliasing through shared pages).
func TestInternedCoreMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g, r := New(), newRefGraph()
			var live []string
			type gen struct {
				g *Graph
				r *refGraph
			}
			var frozen []gen
			for step := 0; step < 300; step++ {
				applyRandomOp(t, rng, g, r, &live)
				if step%60 == 59 {
					requireSameObservables(t, fmt.Sprintf("step%d", step), g, r)
					// Freeze this generation and continue on a COW clone, the
					// ingest commit pattern.
					frozen = append(frozen, gen{g, r.clone()})
					g = g.Clone()
				}
			}
			requireSameObservables(t, "final", g, r)
			// Every frozen ancestor must still match the reference snapshot
			// taken when it was frozen, despite descendants mutating shared
			// pages since.
			for i, fr := range frozen {
				requireSameObservables(t, fmt.Sprintf("frozen gen %d", i), fr.g, fr.r)
			}
		})
	}
}

// TestTripleIDRoundTrip pins the allocation-free ID codec: formatting matches
// the seed's fmt.Sprintf("t%06d") exactly, parsing inverts it, and
// non-canonical spellings are rejected rather than aliased.
func TestTripleIDRoundTrip(t *testing.T) {
	for _, n := range []int32{1, 2, 9, 10, 999, 999999, 1000000, 12345678} {
		id := tripleIDString(n)
		want := fmt.Sprintf("t%06d", n)
		if id != want {
			t.Fatalf("tripleIDString(%d) = %q, want %q", n, id, want)
		}
		h, ok := ParseTripleID(id)
		if !ok || h != n-1 {
			t.Fatalf("ParseTripleID(%q) = (%d,%v), want (%d,true)", id, h, ok, n-1)
		}
	}
	for _, bad := range []string{"", "t", "t00001", "x000001", "t0000001", "t00000a", "t000000", "t01000000"} {
		if _, ok := ParseTripleID(bad); ok {
			t.Fatalf("ParseTripleID(%q) accepted a non-canonical ID", bad)
		}
	}
}
