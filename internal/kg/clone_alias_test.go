package kg

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// observation is a deep, self-contained dump of every graph observable; it
// shares no storage with the graph, so it cannot change when the graph (or a
// clone sharing its pages) does.
type observation struct {
	entities  []Entity
	triples   []Triple
	bySubject map[string][]Triple
	byObject  map[string][]Triple
	byKey     map[string][]Triple
	neighbors map[string][]string
	degrees   map[string]int
	maxDegree int
	stats     Stats
}

func observe(g *Graph) observation {
	o := observation{
		bySubject: map[string][]Triple{},
		byObject:  map[string][]Triple{},
		byKey:     map[string][]Triple{},
		neighbors: map[string][]string{},
		degrees:   map[string]int{},
		maxDegree: g.MaxDegree(),
		stats:     g.ComputeStats(),
	}
	for _, id := range g.EntityIDs() {
		e, _ := g.Entity(id)
		o.entities = append(o.entities, *e)
		o.bySubject[id] = tripleValues(g.TriplesBySubject(id))
		o.byObject[id] = tripleValues(g.TriplesByObjectEntity(id))
		o.neighbors[id] = g.Neighbors(id)
		o.degrees[id] = g.Degree(id)
	}
	for _, id := range g.TripleIDs() {
		t, _ := g.Triple(id)
		o.triples = append(o.triples, *t)
		o.byKey[t.Key()] = tripleValues(g.TriplesByRawKey(t.Key()))
	}
	return o
}

func mutateHeavily(tb testing.TB, g *Graph, rng *rand.Rand, rounds int) {
	tb.Helper()
	var live []string
	g.ForEachTriple(func(_ int32, t *Triple) { live = append(live, t.ID) })
	for i := 0; i < rounds; i++ {
		switch rng.Intn(6) {
		case 0: // new entity
			g.AddEntity(fmt.Sprintf("Fresh %d", rng.Intn(64)), "T", "d")
		case 1: // upgrade an existing entity's empty fields
			g.AddEntity(fmt.Sprintf("Entity %d", rng.Intn(12)), fmt.Sprintf("T%d", rng.Intn(4)), "d9")
		case 2: // removal (forces page copies deep inside shared prefixes)
			if len(live) > 0 {
				victim := live[rng.Intn(len(live))]
				g.RemoveTriple(victim)
				live = removeID(live, victim)
			}
		default: // append triples, extending shared tails and posting lists
			subj := g.AddEntity(fmt.Sprintf("Entity %d", rng.Intn(12)), "", "")
			id, err := g.AddTriple(Triple{
				Subject:   subj,
				Predicate: fmt.Sprintf("p%d", rng.Intn(4)),
				Object:    fmt.Sprintf("Entity %d", rng.Intn(12)),
				Source:    "mut",
			})
			if err != nil {
				tb.Fatal(err)
			}
			live = append(live, id)
		}
	}
}

func seedGraph(tb testing.TB, rng *rand.Rand, n int) *Graph {
	tb.Helper()
	g := New()
	var live []string
	for i := 0; i < n; i++ {
		applyRandomOpNoRef(tb, rng, g, &live)
	}
	return g
}

func applyRandomOpNoRef(tb testing.TB, rng *rand.Rand, g *Graph, live *[]string) {
	tb.Helper()
	subjName := fmt.Sprintf("Entity %d", rng.Intn(12))
	g.AddEntity(subjName, "", "")
	obj := fmt.Sprintf("value %d", rng.Intn(8))
	if rng.Intn(3) == 0 {
		obj = fmt.Sprintf("Entity %d", rng.Intn(12))
	}
	id, err := g.AddTriple(Triple{
		Subject:   CanonicalID(subjName),
		Predicate: fmt.Sprintf("p%d", rng.Intn(4)),
		Object:    obj,
		Source:    fmt.Sprintf("src%d", rng.Intn(3)),
		Weight:    0.5,
	})
	if err != nil {
		tb.Fatal(err)
	}
	*live = append(*live, id)
}

// requireObservation asserts a graph still matches a previously captured
// observation dump.
func requireObservation(t *testing.T, label string, g *Graph, want observation) {
	t.Helper()
	got := observe(g)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: snapshot observables changed after clone mutation\n got  %+v\n want %+v", label, got, want)
	}
}

// TestCloneSnapshotIsolation is the aliasing property test: mutating a
// post-Clone graph (new entities, entity upgrades, triple appends into shared
// posting tails, removals that rewrite shared pages) never changes any
// observable of the parent snapshot — in either direction, and across a chain
// of generations.
func TestCloneSnapshotIsolation(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := seedGraph(t, rng, 200)

			// Chain of generations: freeze, clone, mutate the child.
			type frozen struct {
				g   *Graph
				obs observation
			}
			var gens []frozen
			cur := g
			for gen := 0; gen < 4; gen++ {
				gens = append(gens, frozen{cur, observe(cur)})
				next := cur.Clone()
				mutateHeavily(t, next, rng, 150)
				cur = next
			}
			for i, fr := range gens {
				requireObservation(t, fmt.Sprintf("generation %d", i), fr.g, fr.obs)
			}

			// The reverse direction: mutating the parent after a clone must
			// not change the clone (perturbation harness pattern: the old
			// graph keeps being edited while an earlier clone is still held).
			parent := seedGraph(t, rng, 100)
			child := parent.Clone()
			childObs := observe(child)
			mutateHeavily(t, parent, rng, 150)
			requireObservation(t, "clone after parent mutation", child, childObs)
		})
	}
}

// TestCloneIsolationUnderConcurrentReads runs the same aliasing property
// with reader goroutines hammering the frozen parent while the clone is
// mutated — the serving engine's exact access pattern (queries on the
// published snapshot during an ingest commit). Run under -race this checks
// that copy-on-write never writes into memory a reader can load.
func TestCloneIsolationUnderConcurrentReads(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	parent := seedGraph(t, rng, 400)
	want := observe(parent)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Read-only traffic over the parent's shared structures.
				for _, id := range parent.EntityIDs() {
					parent.TriplesBySubject(id)
					parent.Neighbors(id)
					parent.Degree(id)
				}
				parent.MaxDegree()
				parent.TripleIDs()
			}
		}(w)
	}

	// Clone (twice, to also exercise Clone-while-read) and mutate heavily
	// while the readers run.
	mrng := rand.New(rand.NewSource(7))
	c1 := parent.Clone()
	mutateHeavily(t, c1, mrng, 300)
	c2 := parent.Clone()
	mutateHeavily(t, c2, mrng, 300)
	close(stop)
	wg.Wait()

	requireObservation(t, "parent after concurrent clone mutations", parent, want)
}
