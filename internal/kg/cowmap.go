package kg

import "maps"

// Copy-on-write overlay maps: the interner and key-index counterpart of the
// paged columns in col.go. A map is a frozen shared base plus a private tail
// of entries written since the last clone. Lookups probe the tail first;
// writes always land in the tail. Clone copies only the tail — O(delta), not
// O(corpus) — and flattens tail into a fresh base once the tail has grown to
// a constant fraction of the base, keeping lookup cost at two probes and
// amortising the flatten over the inserts that caused it.
//
// Bases are never written after construction, so any number of clones (and
// concurrent readers of published snapshots) share them safely.

// flattenTail reports whether a tail of size t over a base of size b is due
// for flattening at clone time.
func flattenTail(t, b int) bool { return t >= 64 && 2*t >= b }

// cowStr maps interned strings (entity IDs, predicates) to dense handles.
type cowStr struct {
	base map[string]int32
	tail map[string]int32
}

func (m *cowStr) get(k string) (int32, bool) {
	if v, ok := m.tail[k]; ok {
		return v, true
	}
	v, ok := m.base[k]
	return v, ok
}

func (m *cowStr) put(k string, v int32) {
	if m.tail == nil {
		m.tail = make(map[string]int32)
	}
	m.tail[k] = v
}

func (m *cowStr) clone() cowStr {
	if flattenTail(len(m.tail), len(m.base)) {
		merged := make(map[string]int32, len(m.base)+len(m.tail))
		maps.Copy(merged, m.base)
		maps.Copy(merged, m.tail)
		return cowStr{base: merged}
	}
	return cowStr{base: m.base, tail: maps.Clone(m.tail)}
}

// cowKeyPostings maps packed (subject, predicate) handle pairs to posting
// lists of triple handles — the byKey index.
type cowKeyPostings struct {
	base map[uint64][]int32
	tail map[uint64][]int32
}

func (m *cowKeyPostings) get(k uint64) ([]int32, bool) {
	if v, ok := m.tail[k]; ok {
		return v, true
	}
	v, ok := m.base[k]
	return v, ok
}

// appendTo appends a triple handle to the posting list for key k. Lists found
// in the base are copied into the tail first; lists already in the tail were
// clipped when they were copied there, so in-place growth never writes into
// storage a clone shares.
func (m *cowKeyPostings) appendTo(k uint64, v int32) {
	if m.tail == nil {
		m.tail = make(map[uint64][]int32)
	}
	if lst, ok := m.tail[k]; ok {
		m.tail[k] = append(lst, v)
		return
	}
	base := m.base[k]
	lst := make([]int32, len(base), len(base)+1)
	copy(lst, base)
	m.tail[k] = append(lst, v)
}

// put replaces the posting list for key k with a list the caller owns.
func (m *cowKeyPostings) put(k uint64, lst []int32) {
	if m.tail == nil {
		m.tail = make(map[uint64][]int32)
	}
	m.tail[k] = lst
}

// forEach visits every (key, posting) pair, tail entries shadowing base ones.
// Iteration order is unspecified.
func (m *cowKeyPostings) forEach(fn func(k uint64, lst []int32)) {
	for k, v := range m.tail {
		fn(k, v)
	}
	for k, v := range m.base {
		if _, shadowed := m.tail[k]; !shadowed {
			fn(k, v)
		}
	}
}

func (m *cowKeyPostings) clone() cowKeyPostings {
	if flattenTail(len(m.tail), len(m.base)) {
		merged := make(map[uint64][]int32, len(m.base)+len(m.tail))
		maps.Copy(merged, m.base)
		maps.Copy(merged, m.tail)
		return cowKeyPostings{base: merged}
	}
	var tail map[uint64][]int32
	if m.tail != nil {
		tail = make(map[uint64][]int32, len(m.tail))
		for k, v := range m.tail {
			tail[k] = v[:len(v):len(v)] // clip: the clone's appends must reallocate
		}
	}
	return cowKeyPostings{base: m.base, tail: tail}
}
