package core

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"multirag/internal/adapter"
	"multirag/internal/llm"
)

// kgFile renders native-KG triples ("subj|pred|obj" lines) for one source.
func kgFile(source string, lines ...string) adapter.RawFile {
	return adapter.RawFile{
		Domain: "exec", Source: source, Name: "facts", Format: "kg",
		Content: []byte(strings.Join(lines, "\n") + "\n"),
	}
}

// executorFiles is a corpus exercising every executor path: consistent
// homologous groups (fast path, memoable), conflicting groups (node-level
// scoring, history-sensitive), nested attributes, multi-truth bridges for
// hop-2 fan-out, and an isolated claim.
func executorFiles() []adapter.RawFile {
	return []adapter.RawFile{
		kgFile("registry",
			"Team Alpha|manager|Dana Fox",
			"Team Alpha|manager|Eli Ray",
			"Team Alpha|status|Active",
			"Team Alpha|status_state|Scaling",
			"Dana Fox|city|Oslo",
			"Eli Ray|city|Lima",
			"Team Beta|manager|Dana Fox",
			"Team Beta|status|Active",
		),
		kgFile("ledger",
			"Team Alpha|manager|Dana Fox",
			"Team Alpha|manager|Eli Ray",
			"Team Alpha|status|Active",
			"Team Alpha|status_state|Scaling",
			"Dana Fox|city|Oslo",
			"Eli Ray|city|Lima",
			"Team Beta|manager|Dana Fox",
			"Team Beta|status|Dormant",
		),
		kgFile("forum-posts",
			// Conflicting claims force the node-level (history-reading) stage.
			"Dana Fox|city|Paris",
			"Eli Ray|city|Cairo",
			"Team Alpha|status|Dormant",
			// Isolated claim: single member for (team beta, founded).
			"Team Beta|founded|2019",
		),
	}
}

// executorQueries mixes every intent, including repeats that hit the
// evidence memo and a comparison whose first arm cannot resolve.
func executorQueries() []string {
	return []string{
		"What is the status of Team Alpha?",
		"What is the city of the manager of Team Alpha?",
		"What is the city of the manager of Team Beta?",
		"Do Team Alpha and Team Beta have the same status?",
		"What is the founded of Team Beta?",
		"What is the city of the manager of Team Alpha?",
		"Do Team Gamma and Team Alpha have the same status?",
		"Something about Team Alpha entirely unparsable",
		"What is the status of Team Beta?",
	}
}

func newExecutorSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	if cfg.LLM == (llm.Config{}) {
		cfg.LLM = llm.Config{Seed: 1, ExtractionNoise: 0}
	}
	s := NewSystem(cfg)
	if _, err := s.Ingest(executorFiles()); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	return s
}

// TestQueryDeterministicAcrossWorkerCounts is the parallel-executor
// correctness contract: the full Answer — Values, Trusted order,
// GraphConfidences, Stages, diagnostics — must be bit-identical whether
// sub-questions run on one worker or eight, across a query sequence whose
// later answers depend on the history the earlier ones evolved.
func TestQueryDeterministicAcrossWorkerCounts(t *testing.T) {
	serial := newExecutorSystem(t, Config{Workers: 1})
	parallel := newExecutorSystem(t, Config{Workers: 8})
	for round := 0; round < 3; round++ {
		for _, q := range executorQueries() {
			sa := serial.Query(q)
			pa := parallel.Query(q)
			if !reflect.DeepEqual(sa, pa) {
				t.Fatalf("round %d: answers diverge for %q:\n workers=1 %+v\n workers=8 %+v", round, q, sa, pa)
			}
		}
	}
}

// TestQueryPathAvoidsNodeScans is the acceptance check for the per-snapshot
// evidence index: no query intent may touch ForEachNode. The A/B reference
// knob must still exercise the scan (so the counter provably works) and must
// return the same answers.
func TestQueryPathAvoidsNodeScans(t *testing.T) {
	indexed := newExecutorSystem(t, Config{})
	scanning := newExecutorSystem(t, Config{DisableQueryIndex: true})
	base := indexed.SG().NodeScans()
	for _, q := range executorQueries() {
		ia := indexed.Query(q)
		sa := scanning.Query(q)
		if !reflect.DeepEqual(ia, sa) {
			t.Fatalf("index and scan paths diverge for %q", q)
		}
	}
	if got := indexed.SG().NodeScans(); got != base {
		t.Fatalf("query hot path performed %d homologous-node scan visits, want 0", got-base)
	}
	if scanning.SG().NodeScans() == 0 {
		t.Fatal("reference path should have exercised the ForEachNode scan (instrumentation hook dead?)")
	}
}

// TestEvidenceMemoTransparent pins the memo's exactness contract: because
// only history-independent evaluations are stored and their history credits
// replay on every hit, the complete answer sequence — including
// history-sensitive conflicting queries evaluated AFTER memo hits — is
// bit-identical with the memo on and off.
func TestEvidenceMemoTransparent(t *testing.T) {
	memo := newExecutorSystem(t, Config{})
	plain := newExecutorSystem(t, Config{DisableEvidenceMemo: true})
	for round := 0; round < 3; round++ {
		for _, q := range executorQueries() {
			ma := memo.Query(q)
			pa := plain.Query(q)
			if !reflect.DeepEqual(ma, pa) {
				t.Fatalf("round %d: memo changed the answer for %q:\n with    %+v\n without %+v", round, q, ma, pa)
			}
		}
	}
	if memo.evidence.size() == 0 {
		t.Fatal("memo never stored an entry; the transparency check ran vacuously")
	}
}

// TestEvidenceMemoInvalidatedOnIngest mirrors the answer-cache invalidation
// tests: an ingest between queries publishes a new generation, which must
// flush the memo so the next query sees the new corpus. (Team Beta, manager)
// is a consistent fast-path key, so it is memoable.
func TestEvidenceMemoInvalidatedOnIngest(t *testing.T) {
	s := newExecutorSystem(t, Config{})
	s.Query("What is the manager of Team Beta?")
	if _, _, ok := s.evidence.get(s.snap.Load().gen, "Team Beta", "manager"); !ok {
		t.Fatal("expected a memo entry before ingest")
	}
	if _, err := s.Ingest([]adapter.RawFile{
		kgFile("registry-update", "Team Epsilon|manager|Riley Kim"),
		kgFile("ledger-update", "Team Epsilon|manager|Riley Kim"),
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.evidence.get(s.snap.Load().gen, "Team Beta", "manager"); ok {
		t.Fatal("memo served an entry from the previous snapshot generation")
	}
	ans := s.Query("What is the manager of Team Epsilon?")
	if !ans.Found || len(ans.Values) == 0 || ans.Values[0] != "Riley Kim" {
		t.Fatalf("post-ingest query never saw the new claims: %+v", ans.Values)
	}
}

// TestEvidenceMemoInvalidatedOnRebuildSG covers the other publication path.
func TestEvidenceMemoInvalidatedOnRebuildSG(t *testing.T) {
	s := newExecutorSystem(t, Config{})
	s.Query("What is the manager of Team Beta?")
	gen := s.snap.Load().gen
	if _, _, ok := s.evidence.get(gen, "Team Beta", "manager"); !ok {
		t.Fatal("expected a memo entry before RebuildSG")
	}
	s.RebuildSG()
	if _, _, ok := s.evidence.get(s.snap.Load().gen, "Team Beta", "manager"); ok {
		t.Fatal("RebuildSG did not invalidate the evidence memo")
	}
}

// TestComparisonShortCircuitSkipsSecondArm: with a single worker, an
// unresolvable first entity must skip the second arm's evidence gathering
// entirely — observable because the skipped arm would have filled the
// evidence memo.
func TestComparisonShortCircuitSkipsSecondArm(t *testing.T) {
	s := newExecutorSystem(t, Config{Workers: 1})
	ans := s.Query("Do Team Gamma and Team Beta have the same manager?")
	if ans.Found {
		t.Fatalf("comparison with an unknown entity must not resolve: %+v", ans.Values)
	}
	if _, _, ok := s.evidence.get(s.snap.Load().gen, "Team Beta", "manager"); ok {
		t.Fatal("second comparison arm was evaluated despite the first resolving to nil")
	}
	// Sanity: the arm ordering matters — a resolvable first entity evaluates
	// the second arm as usual.
	s.Query("Do Team Beta and Team Gamma have the same manager?")
	if _, _, ok := s.evidence.get(s.snap.Load().gen, "Team Beta", "manager"); !ok {
		t.Fatal("first comparison arm should have filled the memo")
	}
}

// TestAskDuringQueryBatch is the batch-serving race stress: QueryBatch,
// single Ask calls and ingest commits all proceed concurrently. Run with
// -race; correctness here is "no race, no panic, every batch answer in input
// order".
func TestAskDuringQueryBatch(t *testing.T) {
	s := newExecutorSystem(t, Config{Workers: 4})
	queries := executorQueries()
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			out := s.QueryBatch(queries)
			if len(out) != len(queries) {
				t.Errorf("batch returned %d answers for %d queries", len(out), len(queries))
				return
			}
			for j := range out {
				if out[j].Query != queries[j] {
					t.Errorf("batch answer %d is for %q, want %q", j, out[j].Query, queries[j])
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			s.Query(queries[i%len(queries)])
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if _, err := s.Ingest([]adapter.RawFile{
				kgFile(fmt.Sprintf("stream-%d", i),
					fmt.Sprintf("Team Alpha|status|Active"),
					fmt.Sprintf("Team Delta %d|status|New", i)),
			}); err != nil {
				t.Errorf("ingest %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
}
