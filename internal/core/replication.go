package core

import (
	"fmt"
	"hash/fnv"

	"multirag/internal/linegraph"
	"multirag/internal/wal"
)

// Replication: a System can ship every committed group's WAL record, in
// commit order, to an attached ReplicationSink. The record payload is exactly
// what the durability layer appends to the log (encodeGroupRecord), so a
// replica that replays the stream through ReplicaApply — the same
// decode/replay sequence crash recovery runs — reconstructs a snapshot that
// is byte-identical to the primary's at every shipped position. In-memory
// primaries ship too: the record is encoded for the wire even when no log
// exists, and positions count published commit groups exactly as WAL LSNs do.

// SnapshotHandle is an opaque reference to one immutable published snapshot,
// captured at a known replication position. The cluster layer uses it to seed
// replicas (Encode) and to verify them (Digest) without reaching into the
// engine's internals.
type SnapshotHandle struct {
	sn *snapshot
}

// IsZero reports whether the handle references no snapshot.
func (h SnapshotHandle) IsZero() bool { return h.sn == nil }

// Encode serializes the referenced snapshot in the checkpoint body format.
// The snapshot is immutable, so Encode is safe at any time and never blocks
// the commit path.
func (h SnapshotHandle) Encode() []byte {
	var e wal.Encoder
	encodeSnapshot(&e, h.sn)
	return e.Bytes()
}

// Digest hashes the serialized snapshot — the anti-entropy fingerprint two
// engines at the same replication position can compare. Byte-identical
// snapshots (the replication invariant) digest identically.
func (h SnapshotHandle) Digest() uint64 { return digestBytes(h.Encode()) }

func digestBytes(b []byte) uint64 {
	f := fnv.New64a()
	f.Write(b)
	return f.Sum64()
}

// ReplicationSink receives every committed group's record. ShipRecord is
// called under the engine's commit lock, after the group's snapshot has
// published, in commit order: lsn is the record's position (records ever
// committed before it), payload is the caller-owned encoded record, and after
// references the snapshot the record produced. Implementations must be fast
// and non-blocking — enqueue and return; a sink that cannot keep up must drop
// and let the receiver detect the gap, never stall the primary.
type ReplicationSink interface {
	ShipRecord(lsn uint64, payload []byte, after SnapshotHandle)
}

// AttachReplication registers sink and atomically captures the current state:
// the published snapshot and the replication position the next shipped record
// will carry. No commit can fall between the capture and the subscription, so
// a replica seeded from the returned handle and fed every subsequent record
// misses nothing. Only one sink may be attached at a time.
func (s *System) AttachReplication(sink ReplicationSink) (SnapshotHandle, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.replSink != nil {
		return SnapshotHandle{}, 0, fmt.Errorf("core: a replication sink is already attached")
	}
	s.replSink = sink
	return SnapshotHandle{sn: s.snap.Load()}, s.replPos.Load(), nil
}

// DetachReplication removes the attached sink. Records committed after the
// call are no longer shipped.
func (s *System) DetachReplication() {
	s.mu.Lock()
	s.replSink = nil
	s.mu.Unlock()
}

// ReplicationLSN returns the engine's replication position: the number of
// commit groups ever published (for durable systems, exactly the WAL's next
// LSN; for replicas, the next record they expect to apply). The router's
// staleness guard compares primary and replica positions lock-free.
func (s *System) ReplicationLSN() uint64 { return s.replPos.Load() }

// ServingHandle captures the currently published snapshot.
func (s *System) ServingHandle() SnapshotHandle { return SnapshotHandle{sn: s.snap.Load()} }

// SnapshotDigest is the anti-entropy fingerprint of the currently published
// snapshot — what `multirag recover -verify` prints and what replicas compare
// against the primary's digest markers.
func (s *System) SnapshotDigest() uint64 { return s.ServingHandle().Digest() }

// shipGroup advances the replication position for one published commit group
// and ships its record to the attached sink, if any. Called under s.mu, after
// the snapshot swap, from both the group committer and the serialized ingest
// path. For durable systems the position is re-synced to the log (one record
// was just appended); in-memory systems count groups themselves. The payload
// handed to the sink is always a private copy — the durability encoder is
// reused on the next commit.
func (s *System) shipGroup(committed []*prepared) {
	lsn := s.replPos.Load()
	s.replPos.Store(lsn + 1)
	sink := s.replSink
	if sink == nil {
		return
	}
	var payload []byte
	if s.dur != nil {
		payload = append([]byte(nil), s.dur.enc.Bytes()...)
	} else {
		var e wal.Encoder
		if err := encodeGroupRecord(&e, committed); err != nil {
			// Unserializable batches exist only in tests that substitute fake
			// replayers. Skipping the ship leaves a gap the replica detects by
			// LSN and resolves with a resync — the same path a dropped frame
			// takes.
			return
		}
		payload = e.Bytes()
	}
	sink.ShipRecord(lsn, payload, SnapshotHandle{sn: s.snap.Load()})
}

// ReplicaApply replays one shipped record onto the serving snapshot and
// publishes the result — the replica half of the feed. It mirrors the
// committer's replay exactly (clone, recorder replay in ticket order,
// embedded-chunk append, one line-graph delta, snapshot swap), so a replica
// that applies the primary's records in order stays byte-identical to it at
// every position. Safe to call concurrently with queries; replays serialize
// on the replica's own commit lock.
func (s *System) ReplicaApply(payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.snap.Load()
	g := cur.graph.Clone()
	ix := cur.index.CloneForAppend()
	newIDs, err := s.applyRecovered(g, ix, payload, nil)
	if err != nil {
		return err
	}
	next := &snapshot{graph: g, index: ix, sg: cur.sg, gen: cur.gen + 1}
	if !s.cfg.DisableMKA {
		if s.cfg.DisableIncrementalSG {
			next.sg = linegraph.Build(g)
		} else {
			next.sg = linegraph.BuildDelta(cur.sg, g, newIDs)
		}
	}
	s.snap.Store(next)
	s.replPos.Store(s.replPos.Load() + 1)
	return nil
}

// SeedReplica replaces the serving snapshot with a decoded one captured at
// the given replication position — replica bootstrap and post-fence resync.
// Decoding runs off-lock (the body is private); only the swap serializes with
// replays.
func (s *System) SeedReplica(body []byte, lsn uint64) error {
	sn, err := s.decodeSnapshot(body)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sn.gen = s.snap.Load().gen + 1
	s.snap.Store(sn)
	s.replPos.Store(lsn)
	return nil
}

// Config returns a copy of the system's configuration, so a cluster can build
// replicas whose determinism knobs (model seed, thresholds, store layout)
// match the primary's exactly — the precondition for byte-identical replay.
func (s *System) Config() Config { return s.cfg }

// WALLease pins a WAL retention floor: while held at position L, checkpoint
// pruning keeps every segment containing records >= L, so a reader still
// below L (a lagging replication feed) can always replay forward. Leases on
// in-memory systems are inert but valid.
type WALLease struct {
	s   *System
	lsn uint64
}

// AcquireWALLease registers a retention floor at lsn.
func (s *System) AcquireWALLease(lsn uint64) *WALLease {
	l := &WALLease{s: s, lsn: lsn}
	s.mu.Lock()
	if s.walLeases == nil {
		s.walLeases = map[*WALLease]struct{}{}
	}
	s.walLeases[l] = struct{}{}
	s.mu.Unlock()
	return l
}

// Advance raises the lease's floor (it never lowers; retention only relaxes).
func (l *WALLease) Advance(lsn uint64) {
	l.s.mu.Lock()
	if lsn > l.lsn {
		l.lsn = lsn
	}
	l.s.mu.Unlock()
}

// Release drops the lease; its floor no longer constrains pruning.
func (l *WALLease) Release() {
	l.s.mu.Lock()
	delete(l.s.walLeases, l)
	l.s.mu.Unlock()
}

// walLeaseFloorLocked returns the lowest held lease floor, capped at hi.
// Callers hold s.mu.
func (s *System) walLeaseFloorLocked(hi uint64) uint64 {
	floor := hi
	for l := range s.walLeases {
		if l.lsn < floor {
			floor = l.lsn
		}
	}
	return floor
}
