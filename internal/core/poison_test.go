package core

import (
	"testing"

	"multirag/internal/adapter"
	"multirag/internal/confidence"
	"multirag/internal/datasets"
	"multirag/internal/eval"
	"multirag/internal/kg"
	"multirag/internal/llm"
)

// ablationAll is the w/o-MCC configuration used by the precision-gap test.
func ablationAll() confidence.Options {
	return confidence.Options{DisableGraphLevel: true, DisableNodeLevel: true}
}

// TestPoisonedBridgeFiltered checks the Table IV mechanism end to end: a
// forum document claims a decoy bridge with its own biography; the full
// framework must stay on the trustworthy branch.
func TestPoisonedBridgeFiltered(t *testing.T) {
	files := []adapter.RawFile{
		{Domain: "wiki", Source: "wiki", Name: "work", Format: "text",
			Content: []byte("The author of The Gentle Archive is Nadia Fontaine.")},
		{Domain: "wiki", Source: "wiki", Name: "bio", Format: "text",
			Content: []byte("The birthplace of Nadia Fontaine is Paris.")},
		{Domain: "wiki", Source: "forum-rumor", Name: "rumor", Format: "text",
			Content: []byte("According to rumor mills, the author of The Gentle Archive is Blake Ivanov.")},
		{Domain: "wiki", Source: "forum-rumor", Name: "decoy", Format: "text",
			Content: []byte("The birthplace of Blake Ivanov is Oslo.")},
	}
	s := NewSystem(Config{LLM: llm.Config{Seed: 5, ExtractionNoise: 0}})
	if _, err := s.Ingest(files); err != nil {
		t.Fatal(err)
	}
	ans := s.Query("What is the birthplace of the author of The Gentle Archive?")
	if !ans.Found {
		t.Fatal("bridge question unanswered")
	}
	if len(ans.Values) != 1 || kg.CanonicalID(ans.Values[0]) != "paris" {
		t.Fatalf("poisoned branch leaked: %v", ans.Values)
	}
}

// TestQAEndToEndPrecisionGap verifies the Table IV headline on a small
// generated corpus: the full framework must beat its own w/o-MCC ablation on
// answer precision.
func TestQAEndToEndPrecisionGap(t *testing.T) {
	spec := datasets.Hotpot(13)
	spec.Questions = 40
	qa := datasets.GenerateQA(spec)
	var files []adapter.RawFile
	for _, doc := range qa.Docs {
		files = append(files, adapter.RawFile{
			Domain: "wiki", Source: doc.Source, Name: doc.ID, Format: "text",
			Content: []byte(doc.Text),
		})
	}
	run := func(cfg Config) float64 {
		s := NewSystem(cfg)
		if _, err := s.Ingest(files); err != nil {
			t.Fatal(err)
		}
		var p eval.Mean
		for _, q := range qa.Questions {
			ans := s.Query(q.Text)
			prec, _, _ := eval.PRF1(ans.Values, q.Answer)
			p.Add(prec)
		}
		return p.Value()
	}
	full := run(Config{LLM: llm.Config{Seed: 5}})
	bare := run(Config{LLM: llm.Config{Seed: 5},
		Ablation: ablationAll()})
	if full <= bare {
		t.Fatalf("full precision %.3f must exceed w/o MCC %.3f", full, bare)
	}
	if full < 0.6 {
		t.Fatalf("full precision %.3f implausibly low", full)
	}
}

// TestStageSnapshotsMonotone checks the three Recall@K measurement stages of
// §IV-A(b): candidates can only shrink through the two filters.
func TestStageSnapshotsMonotone(t *testing.T) {
	spec := datasets.Movies(17)
	spec.Entities = 30
	spec.Queries = 15
	d := datasets.MustGenerate(spec)
	s := NewSystem(Config{})
	if _, err := s.Ingest(d.Files); err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, q := range d.Queries {
		ans := s.Query(q.Text)
		if len(ans.Stages) != 3 {
			continue
		}
		n1 := len(ans.Stages[0].Values)
		n2 := len(ans.Stages[1].Values)
		n3 := len(ans.Stages[2].Values)
		if n2 > n1 || n3 > n2 {
			t.Fatalf("stages must shrink: %d → %d → %d (query %s)", n1, n2, n3, q.ID)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no staged queries observed")
	}
}

// TestRetrieveDocsRanksTrustedProvenanceFirst verifies the Recall@5 pathway
// puts confidence-backed documents ahead of dense filler.
func TestRetrieveDocsRanksTrustedProvenanceFirst(t *testing.T) {
	files := []adapter.RawFile{
		{Domain: "wiki", Source: "wiki", Name: "good", Format: "text",
			Content: []byte("The genre of The Savage Cipher is noir.")},
		{Domain: "wiki", Source: "wiki", Name: "noise1", Format: "text",
			Content: []byte("The genre of The Hollow Frontier is comedy.")},
		{Domain: "wiki", Source: "wiki", Name: "noise2", Format: "text",
			Content: []byte("The genre of The Endless Orchard is drama.")},
	}
	s := NewSystem(Config{LLM: llm.Config{Seed: 1, ExtractionNoise: 0}})
	if _, err := s.Ingest(files); err != nil {
		t.Fatal(err)
	}
	docs := s.RetrieveDocs("What is the genre of The Savage Cipher?", 3)
	if len(docs) == 0 {
		t.Fatal("no docs")
	}
	if want := "wiki/wiki/good"; docs[0][:len(want)] != want {
		t.Fatalf("trusted provenance must rank first, got %v", docs)
	}
}
