package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"multirag/internal/adapter"
	"multirag/internal/extract"
	"multirag/internal/jsonld"
	"multirag/internal/kg"
	"multirag/internal/linegraph"
	"multirag/internal/retrieval"
)

// IngestReport summarises an Ingest call. Under group commit the
// entity/triple/chunk deltas are still exact per batch — they are measured
// while the batch's recorders replay — while Homologous reflects the snapshot
// the batch's commit group published.
type IngestReport struct {
	Extraction extract.Report
	Homologous linegraph.Stats
	Chunks     int
}

// replayer is the deferred-mutation half of the extraction contract the
// committer consumes: a recorded operation stream that can be replayed onto
// the shared commit clone. *extract.Recorder is the production
// implementation; tests substitute failing replayers to exercise the
// group-commit rollback path.
type replayer interface {
	ReplayAppend(g *kg.Graph, ids []string) ([]string, error)
	NumTriples() int
}

// fileWork is the per-file output of the parallel preparation stage.
type fileWork struct {
	rec    replayer
	report extract.Report
	chunks []retrieval.Chunk
	vecs   []retrieval.Vector
	err    error
}

// prepared is one Ingest call's batch after the fan-out stage: everything the
// committer needs to replay it under the critical section, plus the slots the
// committer fills in (report, error, completion flag — all read back by the
// waiting caller under the committer lock).
type prepared struct {
	ticket uint64
	start  time.Time
	work   []fileWork
	llm    time.Duration // per-caller virtual LLM latency of the fan-out

	rep  IngestReport
	err  error
	done bool
}

// recordedTriples sums the batch's recorded triple count (newIDs
// preallocation for the whole commit group).
func (p *prepared) recordedTriples() int {
	n := 0
	for i := range p.work {
		if p.work[i].rec != nil {
			n += p.work[i].rec.NumTriples()
		}
	}
	return n
}

// vecsPool recycles the per-file embedding containers of the preparation
// stage (the same sync.Pool discipline as query.go's evScratch). Only the
// outer []Vector is pooled — AddEmbeddedBatch copies the Vector headers into
// the index's own arrays, so the container is dead once its batch commits.
var vecsPool = sync.Pool{New: func() any { return new([]retrieval.Vector) }}

func vecsScratch(n int) []retrieval.Vector {
	vp := vecsPool.Get().(*[]retrieval.Vector)
	v := *vp
	if cap(v) < n {
		v = make([]retrieval.Vector, n)
	}
	*vp = nil
	vecsPool.Put(vp)
	return v[:n]
}

// releaseVecs returns every file's embedding container to the pool, clearing
// the elements so pooled arrays do not pin vectors alive.
func releaseVecs(group []*prepared) {
	for _, p := range group {
		for i := range p.work {
			w := &p.work[i]
			if w.vecs == nil {
				continue
			}
			clear(w.vecs)
			v := w.vecs[:0]
			w.vecs = nil
			vp := vecsPool.Get().(*[]retrieval.Vector)
			*vp = v
			vecsPool.Put(vp)
		}
	}
}

// Ingest fuses, extracts and indexes the given files, then (unless MKA is
// disabled) brings the homologous line graph up to date. It can be called
// repeatedly and concurrently with queries.
//
// Ingest is a two-stage pipeline. Stage 1 — format adaptation, knowledge
// extraction into private operation recorders (where the LLM calls happen)
// and chunk rendering plus embedding — runs entirely OUTSIDE the write lock
// on the shared worker pool, so any number of concurrent Ingest callers
// overlap their fan-outs. Stage 2 is a single group committer: each call
// takes a ticket on arrival, enqueues its prepared batch, and the committer
// drains every consecutive ready batch as one group — under a short critical
// section it replays the recorders onto one COW clone in ticket order,
// batch-appends the pre-embedded chunks, applies one merged line-graph delta
// and publishes ONE snapshot for the whole group. Commit order equals arrival
// order; per-batch reports stay exact (deltas measured during replay); a
// batch that fails to prepare or replay is skipped — its caller gets the
// error, its group-mates commit, and nothing of the failed batch becomes
// visible. Queries never block either way.
//
// LLM cost is metered per caller on a forked ingest model, so interleaved
// fan-outs cannot pollute each other's BuildCost attribution.
func (s *System) Ingest(files []adapter.RawFile) (IngestReport, error) {
	if s.cfg.SerializeIngest {
		return s.ingestSerialized(files)
	}
	p := &prepared{}
	s.admit(p)
	// Stamp after admission: buildReal attributes each committed call's wall
	// time from admission to group publish — queue-blocking time spent
	// waiting for a pipeline slot is not build work (the serialized path
	// likewise stamped after acquiring its lock).
	p.start = time.Now()
	s.prepare(p, files)
	return s.commitJoin(p)
}

// prepare runs stage 1 for one batch: fuse, extract into recorders, render
// and embed chunks. It holds no lock; the only shared state it touches is the
// bounded worker pool and the (concurrency-safe) usage fold-back into the
// ingest model template.
func (s *System) prepare(p *prepared, files []adapter.RawFile) {
	model := s.ingestModel.Fork()
	defer func() {
		p.llm = model.VirtualLatency()
		s.ingestModel.AddUsage(model.Usage())
	}()
	ext := extract.New(model)
	workers := s.Workers()
	fused, err := s.registry.FuseParallel(files, workers)
	if err != nil {
		p.err = err
		return
	}
	dim := s.snap.Load().index.Dim()
	work := make([]fileWork, len(fused))
	Parallel(workers, len(fused), func(i int) {
		w := &work[i]
		rec := extract.NewRecorder()
		w.report, w.err = ext.BuildFile(rec, fused[i])
		if w.err != nil {
			return
		}
		w.rec = rec
		w.chunks = RenderChunks(fused[i], s.cfg.ChunkTokens)
		w.vecs = vecsScratch(len(w.chunks))
		for j, c := range w.chunks {
			w.vecs[j] = retrieval.Embed(c.Text, dim)
		}
	})
	for i := range work {
		if work[i].err != nil {
			p.err = work[i].err
			break
		}
	}
	p.work = work
	if p.err == nil {
		p.rep.Extraction = mergedBatchReport(work)
	}
}

// mergedBatchReport folds the per-file extraction reports into one batch
// report. It adopts the first file's ByFormat map instead of allocating a
// fresh one per batch — per-file reports are single-use, so the commit path
// reuses their maps rather than growing a new allocation per commit.
// Entities/Triples are left zero here; the committer measures them against
// the shared clone during replay.
func mergedBatchReport(work []fileWork) extract.Report {
	if len(work) == 0 {
		return extract.Report{ByFormat: map[string]int{}}
	}
	rep := work[0].report
	if rep.ByFormat == nil {
		rep.ByFormat = map[string]int{}
	}
	for i := 1; i < len(work); i++ {
		rep.Merge(work[i].report)
	}
	return rep
}

// ingestSerialized is the pre-pipeline write path, preserved behind
// Config.SerializeIngest as the A/B baseline for the ingest bench: the whole
// call — fan-out included — runs under the write lock, commits one snapshot
// per batch and re-walks every homologous node for its statistics.
func (s *System) ingestSerialized(files []adapter.RawFile) (IngestReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep IngestReport
	start := time.Now()
	llmBefore := s.ingestModel.VirtualLatency()
	workers := s.Workers()
	fused, err := s.registry.FuseParallel(files, workers)
	if err != nil {
		return rep, err
	}

	dim := s.snap.Load().index.Dim()
	work := make([]fileWork, len(fused))
	Parallel(workers, len(fused), func(i int) {
		w := &work[i]
		rec := extract.NewRecorder()
		w.report, w.err = s.extractor.BuildFile(rec, fused[i])
		if w.err != nil {
			return
		}
		w.rec = rec
		w.chunks = RenderChunks(fused[i], s.cfg.ChunkTokens)
		w.vecs = make([]retrieval.Vector, len(w.chunks))
		for j, c := range w.chunks {
			w.vecs[j] = retrieval.Embed(c.Text, dim)
		}
	})
	rep.Extraction = extract.Report{ByFormat: map[string]int{}}
	for i := range work {
		if work[i].err != nil {
			return rep, work[i].err
		}
	}

	cur := s.snap.Load()
	g := cur.graph.Clone()
	entBefore, triBefore := g.NumEntities(), g.NumTriples()
	ix := cur.index.CloneForAppend()
	var newIDs []string
	for i := range work {
		ids, err := work[i].rec.ReplayAppend(g, nil)
		if err != nil {
			return rep, err
		}
		newIDs = append(newIDs, ids...)
		rep.Extraction.Merge(work[i].report)
		for j, c := range work[i].chunks {
			ix.AddEmbedded(c, work[i].vecs[j])
			rep.Chunks++
		}
	}
	rep.Extraction.Entities = g.NumEntities() - entBefore
	rep.Extraction.Triples = g.NumTriples() - triBefore

	next := &snapshot{graph: g, index: ix, gen: cur.gen + 1}
	if !s.cfg.DisableMKA {
		if s.cfg.DisableIncrementalSG {
			next.sg = linegraph.Build(g)
		} else {
			next.sg = linegraph.BuildDelta(cur.sg, g, newIDs)
		}
		rep.Homologous = next.sg.RecomputeStats()
	}
	group := []*prepared{{work: work}}
	if s.dur != nil {
		// Same durability barrier as the group committer: fsync the batch's
		// record before acknowledging or publishing it.
		if err := s.dur.appendGroup(group); err != nil {
			return rep, fmt.Errorf("core: wal append: %w", err)
		}
		defer s.dur.maybeRequestCheckpoint(&s.cfg)
	}
	s.snap.Store(next)
	s.shipGroup(group)
	s.buildReal += time.Since(start)
	s.buildLLM += s.ingestModel.VirtualLatency() - llmBefore
	return rep, nil
}

// RenderChunks converts a normalised file into retrievable chunks. Text
// records chunk their raw paragraphs; structured records are verbalised as
// benchmark-grammar sentences so that chunk retrieval and per-query LLM
// extraction can reach the same facts the KG holds. It is exported for the
// benchmark harness, which builds identical baseline environments.
func RenderChunks(n *jsonld.Normalized, chunkTokens int) []retrieval.Chunk {
	var out []retrieval.Chunk
	for _, doc := range n.JSC {
		if v, ok := doc.Get("text"); ok && v.Str != "" {
			out = append(out, retrieval.ChunkText(doc.ID, n.Source, v.Str, chunkTokens)...)
			continue
		}
		text := verbalise(doc)
		if text != "" {
			out = append(out, retrieval.ChunkText(doc.ID, n.Source, text, chunkTokens)...)
		}
	}
	return out
}

// verbalise renders a structured record as sentences.
func verbalise(doc *jsonld.Document) string {
	subject := ""
	for _, key := range []string{"@key", "name", "title", "id", "flight", "symbol", "subject"} {
		if v, ok := doc.Get(key); ok && v.Str != "" {
			subject = v.Str
			break
		}
	}
	if subject == "" {
		return ""
	}
	// Native-KG triples verbalise directly.
	if p, ok := doc.Get("predicate"); ok {
		if o, oko := doc.Get("object"); oko {
			return fmt.Sprintf("The %s of %s is %s.",
				strings.ReplaceAll(p.Str, "_", " "), subject, o.Str)
		}
	}
	var sents []string
	var walk func(d *jsonld.Document, prefix string)
	walk = func(d *jsonld.Document, prefix string) {
		for _, k := range d.Keys() {
			v, _ := d.Get(k)
			name := strings.TrimPrefix(k, "@")
			if i := strings.IndexByte(name, '/'); i >= 0 {
				name = name[:i]
			}
			if prefix != "" {
				name = prefix + " " + name
			}
			if v.Node != nil {
				walk(v.Node, name)
				continue
			}
			if k == "@key" || (prefix == "" && v.Str == subject) {
				continue
			}
			for _, val := range v.Strings() {
				sents = append(sents, fmt.Sprintf("The %s of %s is %s.",
					strings.ReplaceAll(name, "_", " "), subject, val))
			}
		}
	}
	walk(doc, "")
	return strings.Join(sents, " ")
}
