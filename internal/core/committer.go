package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"multirag/internal/fault"
	"multirag/internal/kg"
	"multirag/internal/linegraph"
	"multirag/internal/retrieval"
)

// maxPendingBatches bounds the prepared-batch queue: at most this many Ingest
// calls may be past admission (preparing or waiting to commit) at once.
// Later callers block in admit until the committer drains a group, which
// caps the memory held by recorded-but-uncommitted extraction output.
const maxPendingBatches = 64

// groupWindow caps the group-forming window: an elected leader that can see
// other admitted batches still preparing blocks on the committer condvar —
// ceding the CPU to those fan-outs — until every admitted batch has enqueued
// or this watchdog expires, then commits them as one group. This is the
// binlog-style group-commit trade of a bounded latency bump for amortising
// the per-commit clone/delta/publish across the group. A leader with no
// company (single producer, or everyone already enqueued) skips the window
// entirely, so uncontended ingest pays nothing.
const groupWindow = time.Millisecond

// groupCommitter is the stage-2 state of the pipelined Ingest: a ticket
// counter defining arrival (and therefore commit) order, a bounded queue of
// prepared batches keyed by ticket, and a leader election. There is no
// dedicated committer goroutine — the caller whose batch is next in ticket
// order (or any caller waiting while that batch is ready) becomes the leader,
// drains every consecutive ready ticket as one group, commits the group under
// the write lock and wakes the group's callers. Ticket order makes the final
// state deterministic for a fixed arrival order regardless of how stage-1
// fan-outs interleave.
type groupCommitter struct {
	mu   sync.Mutex
	cond *sync.Cond
	// pending maps ticket → prepared batch awaiting commit.
	pending map[uint64]*prepared
	// nextTicket is the next ticket to hand out; nextCommit the next ticket
	// the committer may commit. Tickets in [nextCommit, nextTicket) are in
	// flight (preparing, queued or being committed).
	nextTicket uint64
	nextCommit uint64
	inflight   int
	committing bool

	// testAdmitted, when set, observes ticket assignment (test seam for the
	// ordered-interleaving equivalence tests). Never set in production.
	testAdmitted func(ticket uint64)
}

func (gc *groupCommitter) init() {
	gc.cond = sync.NewCond(&gc.mu)
	gc.pending = map[uint64]*prepared{}
}

// readyRun counts the consecutive run of pending tickets starting at
// nextCommit — the group a leader would drain right now. Callers hold gc.mu.
func (gc *groupCommitter) readyRun() int {
	run := 0
	for t := gc.nextCommit; gc.pending[t] != nil; t++ {
		run++
	}
	return run
}

// IngestPressure reports the group committer's admission state: how many
// Ingest calls are past admission (preparing, queued or committing) and the
// admission capacity at which further callers block. Serving layers use it to
// convert what would be blocking admission into early rejection — shedding
// load at the front door (HTTP 429) instead of parking request handlers on
// the committer condvar.
func (s *System) IngestPressure() (inflight, capacity int) {
	gc := &s.gc
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return gc.inflight, maxPendingBatches
}

// admit assigns the caller its commit ticket, blocking while the pipeline is
// at capacity. Arrival order is ticket order by definition.
func (s *System) admit(p *prepared) {
	gc := &s.gc
	gc.mu.Lock()
	for gc.inflight >= maxPendingBatches {
		gc.cond.Wait()
	}
	gc.inflight++
	p.ticket = gc.nextTicket
	gc.nextTicket++
	hook := gc.testAdmitted
	gc.mu.Unlock()
	if hook != nil {
		hook(p.ticket)
	}
	// Yield between admission and the expensive fan-out: on saturated
	// schedulers (GOMAXPROCS goroutines per core) this lets concurrent
	// producers register their admissions before any of them starts
	// preparing, so a group-forming leader sees them in inflight and waits
	// for their batches instead of committing alone. With no other runnable
	// goroutine the yield is a no-op.
	runtime.Gosched()
}

// commitJoin enqueues a prepared batch and blocks until it has been
// committed (or skipped). The caller may be elected leader while waiting: it
// then drains the run of consecutive ready tickets starting at nextCommit —
// not necessarily including its own — commits them as one group and goes
// back to waiting for its own result.
func (s *System) commitJoin(p *prepared) (IngestReport, error) {
	gc := &s.gc
	gc.mu.Lock()
	gc.pending[p.ticket] = p
	gc.cond.Broadcast()
	for !p.done {
		if !gc.committing && gc.pending[gc.nextCommit] != nil {
			gc.committing = true
			// Group-forming window: while admitted batches are still
			// preparing (inflight exceeds the ready run), block on the
			// condvar so their fan-outs get the CPU and join this group
			// instead of forcing their own commits. Each enqueue broadcasts;
			// the watchdog timer bounds the wait. committing is already set,
			// so no second leader can start meanwhile.
			if gc.readyRun() < gc.inflight {
				expired := false
				watchdog := time.AfterFunc(groupWindow, func() {
					gc.mu.Lock()
					expired = true
					gc.cond.Broadcast()
					gc.mu.Unlock()
				})
				for gc.readyRun() < gc.inflight && !expired {
					gc.cond.Wait()
				}
				watchdog.Stop()
			}
			var group []*prepared
			for t := gc.nextCommit; gc.pending[t] != nil; t++ {
				group = append(group, gc.pending[t])
				delete(gc.pending, t)
			}
			gc.mu.Unlock()
			s.commitGroup(group)
			gc.mu.Lock()
			gc.nextCommit += uint64(len(group))
			gc.inflight -= len(group)
			gc.committing = false
			for _, q := range group {
				q.done = true
			}
			gc.cond.Broadcast()
			continue
		}
		gc.cond.Wait()
	}
	gc.mu.Unlock()
	return p.rep, p.err
}

// commitGroup applies one group of prepared batches and publishes one
// snapshot for all of them. Under the critical section it clones the serving
// graph and index once, replays each batch's recorders in ticket order onto
// the shared clone (measuring the exact per-batch entity/triple/chunk
// deltas), applies one merged line-graph delta over the group's new triple
// IDs and swaps the snapshot pointer.
//
// Failure isolation: a batch whose stage 1 already failed is skipped without
// touching the clone. A batch that fails mid-replay is rolled back by
// rebuilding the clone and deterministically re-replaying the group's earlier
// successful batches — the happy path pays no per-batch checkpoint, the
// (exceptional) failure path pays O(group). Either way the failed batch's
// caller gets the error and nothing of the batch becomes visible.
func (s *System) commitGroup(group []*prepared) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Chaos seam: an error here fails the whole group before any replay —
	// nothing is acknowledged, nothing publishes, callers see the error. The
	// commit path deliberately carries no context (a committing batch must
	// run to a clean outcome even if its Ingest caller gave up), so hang
	// faults release only on Disable/Reset.
	if err := fault.Inject(context.Background(), fault.PointCommit); err != nil {
		for _, p := range group {
			if p.err == nil {
				p.err = fmt.Errorf("core: commit: %w", err)
			}
		}
		releaseVecs(group)
		return
	}
	cur := s.snap.Load()
	g := cur.graph.Clone()
	ix := cur.index.CloneForAppend()
	total := 0
	for _, p := range group {
		if p.err == nil {
			total += p.recordedTriples()
		}
	}
	newIDs := make([]string, 0, total)
	var committed []*prepared
	for _, p := range group {
		if p.err != nil {
			continue
		}
		var err error
		newIDs, err = replayBatch(g, ix, p, newIDs)
		if err != nil {
			p.err = err
			// Rollback: discard the poisoned clone and re-replay the group's
			// earlier successes from scratch. Replay is deterministic, so a
			// batch that succeeded once succeeds again with identical deltas.
			g = cur.graph.Clone()
			ix = cur.index.CloneForAppend()
			newIDs = newIDs[:0]
			retained := committed[:0]
			for _, q := range committed {
				var qerr error
				newIDs, qerr = replayBatch(g, ix, q, newIDs)
				if qerr != nil {
					q.err = qerr // unreachable for deterministic replays
					continue
				}
				retained = append(retained, q)
			}
			committed = retained
			continue
		}
		committed = append(committed, p)
	}

	if len(committed) > 0 && s.dur != nil {
		// Durability barrier: the group's record must be fsync'd before any
		// of its batches is acknowledged or made visible. On failure nothing
		// publishes and every caller gets the error — an un-acknowledged
		// batch may legitimately be absent after recovery, but an
		// acknowledged one may never be.
		if err := s.dur.appendGroup(committed); err != nil {
			for _, p := range committed {
				p.err = fmt.Errorf("core: wal append: %w", err)
			}
			committed = nil
		}
	}

	if len(committed) > 0 {
		next := &snapshot{graph: g, index: ix, gen: cur.gen + 1}
		if !s.cfg.DisableMKA {
			if s.cfg.DisableIncrementalSG {
				next.sg = linegraph.Build(g)
			} else {
				next.sg = linegraph.BuildDelta(cur.sg, g, newIDs)
			}
			st := next.sg.ComputeStats()
			for _, p := range committed {
				p.rep.Homologous = st
			}
		}
		s.snap.Store(next)
		s.shipGroup(committed)
		if s.dur != nil {
			s.dur.maybeRequestCheckpoint(&s.cfg)
		}
	}
	now := time.Now()
	for _, p := range committed {
		s.buildReal += now.Sub(p.start)
		s.buildLLM += p.llm
	}
	releaseVecs(group)
}

// replayBatch replays one prepared batch onto the shared commit clone,
// appending its new triple IDs onto ids and its pre-embedded chunks into ix,
// and records the batch's exact deltas in its report. On error the clone is
// left partially mutated — the caller rolls back by rebuilding it.
func replayBatch(g *kg.Graph, ix retrieval.Store, p *prepared, ids []string) ([]string, error) {
	entBefore, triBefore := g.NumEntities(), g.NumTriples()
	mark := len(ids)
	for i := range p.work {
		var err error
		ids, err = p.work[i].rec.ReplayAppend(g, ids)
		if err != nil {
			return ids[:mark], err
		}
	}
	p.rep.Chunks = 0
	for i := range p.work {
		w := &p.work[i]
		ix.AddEmbeddedBatch(w.chunks, w.vecs[:len(w.chunks)])
		p.rep.Chunks += len(w.chunks)
	}
	p.rep.Extraction.Entities = g.NumEntities() - entBefore
	p.rep.Extraction.Triples = g.NumTriples() - triBefore
	return ids, nil
}
