package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"multirag/internal/confidence"
	"multirag/internal/fault"
	"multirag/internal/kg"
	"multirag/internal/linegraph"
	"multirag/internal/llm"
	"multirag/internal/par"
	"multirag/internal/retrieval"
)

// StageSnapshot records the candidate values visible at one MKLGP stage —
// the three measurement points of §IV-A(b) (before subgraph filtering,
// before node filtering, after node filtering).
type StageSnapshot struct {
	Stage  string
	Values []string
}

// Answer is the result of one MKLGP query.
type Answer struct {
	Query     string
	LogicForm llm.LogicForm
	// Values is the final trustworthy answer set.
	Values []string
	// Trusted is the credible node set SVs that generated the answer.
	Trusted []confidence.TrustedNode
	// RejectedCount counts eliminated nodes (LVs).
	RejectedCount int
	// GraphConfidences lists C(G) per candidate subgraph.
	GraphConfidences []float64
	// Stages holds the three-stage candidate snapshots.
	Stages []StageSnapshot
	// Found reports whether any evidence was located.
	Found bool
	// Degraded marks a partial answer: the evaluation was cut short (deadline,
	// cancellation, tripped breaker, injected or stage failure) and Values
	// reflects only the arms that completed. The serving layer decides per SLO
	// class whether a degraded answer is delivered or converted to an error.
	Degraded bool
	// DegradedReason names the first cause: "deadline", "canceled",
	// "breaker-open", "panic: ..." or the stage error text.
	DegradedReason string
}

// evidence is the outcome of one (entity, relation) sub-question — the unit
// the executor schedules, merges and memoises. Multi-hop bridges and
// comparison arms each produce one evidence set; the executor merges them
// into the Answer in input order, so the result is independent of how the
// arms were scheduled. Immutability contract: consumers read the slices or
// append their elements elsewhere, never write through them — memo hits
// share ev/trusted/gcs by reference (only stages, which escape wholesale
// into caller-owned Answers, are cloned; see cache.go).
type evidence struct {
	ev       []llm.Evidence
	trusted  []confidence.TrustedNode
	rejected int
	gcs      []float64
	stages   []StageSnapshot
	// memoable marks history-independent evaluations (no node-level scoring,
	// no isolated authority, no chunk fallback) — the only ones the evidence
	// memo may store without perturbing later confidence values.
	memoable bool
	// err records a sub-question cut short (context, breaker, injected
	// fault). Erroring evidence carries whatever was gathered before the cut
	// and is never memoised (memoable stays false on every early return).
	err error
}

// arm pairs one sub-question's evidence with its deferred history credits.
type arm struct {
	e evidence
	d *confidence.HistoryDelta
	// vals is the arm's generated answer, filled only by intents that need
	// it before merging (comparison).
	vals []string
}

// absorb merges one evidence set's filtering diagnostics into the answer.
func (ans *Answer) absorb(e evidence) {
	ans.Trusted = append(ans.Trusted, e.trusted...)
	ans.RejectedCount += e.rejected
	ans.GraphConfidences = append(ans.GraphConfidences, e.gcs...)
}

// degrade marks the answer partial, keeping the first recorded reason.
func (ans *Answer) degrade(err error) {
	ans.Degraded = true
	if ans.DegradedReason == "" {
		ans.DegradedReason = degradeReason(err)
	}
}

// degradeReason classifies a cut-short cause into the stable vocabulary the
// serving metrics and the load harness count by.
func degradeReason(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, fault.ErrOpen):
		return "breaker-open"
	case err == nil:
		return ""
	default:
		return err.Error()
	}
}

// Query executes MKLGP (Algorithm 2) for a natural-language query. It is
// safe for unbounded concurrent use: the whole evaluation runs against one
// immutable snapshot loaded up front, so in-flight ingestion never changes
// the view mid-query. Multi-hop bridge resolution and comparison arms fan
// out across the worker pool (Config.Workers); sub-question results merge in
// input order over deferred history credits, so the answer — values,
// trusted-node order, confidences and stage snapshots — is bit-identical
// whatever the pool size. With Config.AnswerCacheSize > 0, repeated queries
// against the same snapshot generation are served from the answer cache.
func (s *System) Query(q string) Answer {
	ans, _ := s.queryCached(s.snap.Load(), q)
	return ans
}

// QueryCtx is Query under a request context: the evaluation honors ctx at
// every stage boundary (retrieval rows, fan-out arms, LLM calls) and a query
// cut short returns whatever completed as a Degraded partial answer instead
// of an error. A context that can never be canceled takes the exact Query
// path, bit-identical to pre-context behavior.
func (s *System) QueryCtx(ctx context.Context, q string) Answer {
	sn := s.snap.Load()
	if ctx.Done() == nil {
		ans, _ := s.queryCached(sn, q)
		return ans
	}
	return s.queryCtx(ctx, sn, q)
}

// queryCached evaluates q against sn, consulting the generation-keyed answer
// cache first. It reports whether the answer came from the cache.
func (s *System) queryCached(sn *snapshot, q string) (Answer, bool) {
	if ans, ok := s.answers.get(sn.gen, q); ok {
		return ans, true
	}
	ans := s.queryOn(context.Background(), sn, q)
	if !ans.Degraded {
		s.answers.put(sn.gen, q, ans)
	}
	return ans, false
}

// queryCtx is the cancelable evaluation path: answer-cache hits still serve
// instantly, a panic anywhere in the DAG (an injected chaos fault, or a real
// bug under a real model API) is contained into a degraded answer instead of
// killing the executor, and degraded or cut-short answers are never cached —
// a later unconstrained query recomputes the full answer.
func (s *System) queryCtx(ctx context.Context, sn *snapshot, q string) (ans Answer) {
	if a, ok := s.answers.get(sn.gen, q); ok {
		return a
	}
	defer func() {
		if r := recover(); r != nil {
			ans = Answer{Query: q}
			ans.degrade(fmt.Errorf("panic: %v", r))
		}
	}()
	if err := ctx.Err(); err != nil {
		ans = Answer{Query: q}
		ans.degrade(err)
		return ans
	}
	ans = s.queryOn(ctx, sn, q)
	if !ans.Degraded && ctx.Err() == nil {
		s.answers.put(sn.gen, q, ans)
	}
	return ans
}

func (s *System) queryOn(ctx context.Context, sn *snapshot, q string) Answer {
	lf := s.model.ParseQuery(q) // line 2: logic form generation
	ans := Answer{Query: q, LogicForm: lf}
	switch lf.Intent {
	case "multi_hop":
		s.answerMultiHop(ctx, sn, &ans)
	case "comparison":
		s.answerComparison(ctx, sn, &ans)
	default:
		if len(lf.Entities) > 0 && len(lf.Relations) > 0 {
			s.answerLookup(ctx, sn, &ans, lf.Entities[0], lf.Relations[0])
		} else {
			s.answerFallback(ctx, sn, &ans, q)
		}
	}
	return ans
}

// generate is the breaker-and-retry-guarded answer-generation call every
// intent funnels through. The breaker fast-fails while open; inside it,
// transient stage errors (injected faults standing in for a flaky model API)
// retry with deterministic capped backoff. Context errors never retry — a
// canceled request's first duty is releasing its executor slot.
func (s *System) generate(ctx context.Context, query string, ev []llm.Evidence) ([]string, error) {
	var out []string
	err := s.genBreaker.Do(func() error {
		return fault.Retry(ctx, fault.DefaultRetry, func() error {
			var err error
			out, err = s.model.GenerateAnswerCtx(ctx, query, ev)
			return err
		})
	})
	return out, err
}

// extractChunk is the breaker-guarded per-chunk extraction pair (entity
// mentions, then triples over them) of the chunk-fallback path.
func (s *System) extractChunk(ctx context.Context, text string) ([]llm.SPO, error) {
	var spos []llm.SPO
	err := s.extBreaker.Do(func() error {
		return fault.Retry(ctx, fault.DefaultRetry, func() error {
			ms, err := s.model.ExtractEntitiesCtx(ctx, text)
			if err != nil {
				return err
			}
			spos, err = s.model.ExtractTriplesCtx(ctx, text, ms)
			return err
		})
	})
	return spos, err
}

// subQLimit bounds the interned sub-question prefixes: relations are parsed
// out of free-text queries, so adversarial query diversity must not grow the
// map without limit (flush-on-overflow, like the embedding cache).
const subQLimit = 4096

// subQuestion builds the canonical sub-question asked for (relation,
// entity). The "What is the <relation> of " prefix is interned per relation:
// hop and comparison fan-outs ask thousands of these, and building the
// prefix used to cost a strings.ReplaceAll per call.
func (s *System) subQuestion(relation, entity string) string {
	s.subQMu.RLock()
	p, ok := s.subQs[relation]
	s.subQMu.RUnlock()
	if ok {
		return p + entity + "?"
	}
	p = "What is the " + strings.ReplaceAll(relation, "_", " ") + " of "
	s.subQMu.Lock()
	if len(s.subQs) >= subQLimit {
		s.subQs = map[string]string{}
	}
	s.subQs[relation] = p
	s.subQMu.Unlock()
	return p + entity + "?"
}

// answerLookup resolves a single (entity, attribute) question.
func (s *System) answerLookup(ctx context.Context, sn *snapshot, ans *Answer, entity, relation string) {
	e, d := s.gatherEvidence(ctx, sn, ans.Query, entity, relation)
	s.mcc.History().Apply(d)
	ans.absorb(e)
	ans.Stages = e.stages
	if e.err != nil {
		ans.degrade(e.err)
		return
	}
	if len(e.ev) == 0 {
		return
	}
	vals, err := s.generate(ctx, ans.Query, e.ev) // line 7: trustworthy answers
	if err != nil {
		ans.degrade(err)
		return
	}
	ans.Found = true
	ans.Values = vals
}

// evScratch pools the hot-loop buffers of gatherEvidence — the MCC candidate
// list and the stage-snapshot accumulators — so steady-state queries stop
// paying append-growth reallocations. Answers receive private exact-size
// copies; pooled arrays never outlive one gatherEvidence call.
type evScratch struct {
	candidates []*linegraph.HomologousNode
	stage1     []string
	stage2     []string
}

var evScratchPool = sync.Pool{New: func() any { return new(evScratch) }}

// copyStrings snapshots a scratch accumulator into an exact-size slice.
func copyStrings(src []string) []string {
	if len(src) == 0 {
		return nil
	}
	out := make([]string, len(src))
	copy(out, src)
	return out
}

// gatherEvidence is the retrieval heart shared by all intents: it returns
// weighted evidence for (entity, relation) along with the filtering
// diagnostics, plus the deferred history credits the caller must Apply once
// its (possibly parallel) phase joins. With MKA it is a homologous
// line-graph lookup plus MCC; w/o MKA it degrades to chunk retrieval with
// per-query LLM extraction. History is only read, never written, inside this
// function — that is what lets concurrent arms stay deterministic.
func (s *System) gatherEvidence(ctx context.Context, sn *snapshot, query, entity, relation string) (evidence, *confidence.HistoryDelta) {
	if err := fault.Inject(ctx, fault.PointEvidence); err != nil {
		return evidence{err: err}, nil
	}
	if s.cfg.DisableMKA || sn.sg == nil {
		return s.gatherByChunks(ctx, sn, query, entity, relation)
	}
	if e, d, ok := s.evidence.get(sn.gen, entity, relation); ok {
		return e, d
	}
	if err := ctx.Err(); err != nil {
		return evidence{err: err}, nil
	}
	subj := kg.CanonicalID(s.model.Standardize(entity))
	sc := evScratchPool.Get().(*evScratch)
	defer evScratchPool.Put(sc)
	candidates := sc.candidates[:0]
	if n, ok := sn.sg.Lookup(subj, relation); ok {
		candidates = append(candidates, n)
	}
	// Nested attributes flatten to underscore-joined paths
	// (status → status_state); include them as alternative candidates. They
	// come from the per-snapshot subject→attribute index — O(log n +
	// matches) — except under the A/B reference knob, which re-enacts the
	// seed's full node scan.
	if s.cfg.DisableQueryIndex {
		sn.sg.ForEachNode(func(_ string, n *linegraph.HomologousNode) {
			if n.SubjectID == subj && n.Name != relation && strings.HasPrefix(n.Name, relation+"_") {
				candidates = append(candidates, n)
			}
		})
	} else {
		candidates = append(candidates, sn.sg.NestedCandidates(subj, relation)...)
	}
	sc.candidates = candidates
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].Key < candidates[j].Key })

	// Stage 1 snapshot: everything the candidate subgraphs contain.
	stage1 := sc.stage1[:0]
	for _, n := range candidates {
		for _, t := range sn.sg.MemberTriples(n) {
			stage1 = append(stage1, t.Object)
		}
	}
	sc.stage1 = stage1
	if len(candidates) > 0 {
		res, d := s.mcc.RunDeferred(sn.sg, candidates, s.cfg.Ablation)
		var e evidence
		stage2 := sc.stage2[:0]
		for _, a := range res.Assessments {
			e.gcs = append(e.gcs, a.GraphConfidence)
			if !a.EliminatedByGraph {
				for _, t := range sn.sg.MemberTriples(a.Node) {
					stage2 = append(stage2, t.Object)
				}
			}
		}
		sc.stage2 = stage2
		e.trusted = res.SVs
		e.rejected = len(res.LVs)
		stage3 := make([]string, 0, len(res.SVs))
		e.ev = make([]llm.Evidence, 0, len(res.SVs))
		for _, tn := range res.SVs {
			stage3 = append(stage3, tn.Triple.Object)
			e.ev = append(e.ev, llm.Evidence{Value: tn.Triple.Object, Weight: tn.Confidence, Source: tn.Triple.Source, Verified: tn.Verified})
		}
		e.stages = []StageSnapshot{
			{Stage: "before-subgraph-filter", Values: copyStrings(stage1)},
			{Stage: "before-node-filter", Values: copyStrings(stage2)},
			{Stage: "after-node-filter", Values: stage3},
		}
		// Node-level scoring reads the evolving source history; everything
		// else (fast path, graph elimination, ablated pass-through) is a pure
		// function of the snapshot and may be memoised exactly.
		e.memoable = res.NodesScored == 0
		if e.memoable {
			s.evidence.put(sn.gen, entity, relation, e, d)
		}
		return e, d
	}
	// No homologous group: try the isolated points. Isolated authority reads
	// the history store, so the outcome is never memoised.
	if t, ok := sn.sg.LookupIsolated(subj, relation); ok {
		tn := s.mcc.AssessIsolated(sn.sg, t, s.cfg.Ablation)
		vals := []string{t.Object}
		return evidence{
			ev:      []llm.Evidence{{Value: t.Object, Weight: tn.Confidence, Source: t.Source, Verified: tn.Verified}},
			trusted: []confidence.TrustedNode{tn},
			stages: []StageSnapshot{
				{Stage: "before-subgraph-filter", Values: vals},
				{Stage: "before-node-filter", Values: vals},
				{Stage: "after-node-filter", Values: vals},
			},
		}, nil
	}
	// Entity or attribute absent from the graph: degrade to chunk retrieval.
	return s.gatherByChunks(ctx, sn, query, entity, relation)
}

// gatherByChunks is the non-aggregated retrieval path: top-k chunk search,
// per-query LLM extraction, then confidence filtering over an ad-hoc graph
// built from the extracted claims (the MCC stages still apply unless
// ablated). This is both slower (per-query LLM extraction) and lossier
// (top-k misses sparse evidence) than the line-graph path — the Table III
// "w/o MKA" behaviour.
func (s *System) gatherByChunks(ctx context.Context, sn *snapshot, query, entity, relation string) (evidence, *confidence.HistoryDelta) {
	k := s.cfg.RetrievalK * 4
	hits, err := retrieval.SearchVectorCtx(ctx, sn.index, s.embeds.get(query), k, nil)
	if err != nil {
		return evidence{err: err}, nil
	}
	subj := kg.CanonicalID(s.model.Standardize(entity))
	// Per-query extraction over retrieved chunks.
	tmp := kg.New()
	tmp.AddEntity(s.model.Standardize(entity), "Entity", "")
	var stage1 []string
	for _, h := range hits {
		spos, err := s.extractChunk(ctx, h.Chunk.Text)
		if err != nil {
			return evidence{err: err}, nil
		}
		for _, spo := range spos {
			if kg.CanonicalID(s.model.Standardize(spo.Subject)) != subj || spo.Predicate != relation {
				continue
			}
			_, err := tmp.AddTriple(kg.Triple{
				Subject:   subj,
				Predicate: relation,
				Object:    spo.Object,
				Source:    h.Chunk.Source,
				ChunkID:   h.Chunk.DocID,
				Weight:    spo.Confidence * (0.5 + 0.5*h.Score),
			})
			if err == nil {
				stage1 = append(stage1, spo.Object)
			}
		}
	}
	if tmp.NumTriples() == 0 {
		return evidence{}, nil
	}
	var e evidence
	adhoc := linegraph.Build(tmp)
	if n, ok := adhoc.Lookup(subj, relation); ok {
		res, d := s.mcc.RunDeferred(adhoc, []*linegraph.HomologousNode{n}, s.cfg.Ablation)
		e.trusted = res.SVs
		e.rejected = len(res.LVs)
		var stage3 []string
		for _, a := range res.Assessments {
			e.gcs = append(e.gcs, a.GraphConfidence)
		}
		for _, tn := range res.SVs {
			stage3 = append(stage3, tn.Triple.Object)
			e.ev = append(e.ev, llm.Evidence{Value: tn.Triple.Object, Weight: tn.Confidence, Source: tn.Triple.Source, Verified: tn.Verified})
		}
		e.stages = []StageSnapshot{
			{Stage: "before-subgraph-filter", Values: stage1},
			{Stage: "before-node-filter", Values: stage1},
			{Stage: "after-node-filter", Values: stage3},
		}
		return e, d
	}
	// Single extracted claim.
	for _, id := range tmp.TripleIDs() {
		t, _ := tmp.Triple(id)
		tn := s.mcc.AssessIsolated(adhoc, t, s.cfg.Ablation)
		e.trusted = append(e.trusted, tn)
		e.ev = append(e.ev, llm.Evidence{Value: t.Object, Weight: tn.Confidence, Source: t.Source, Verified: tn.Verified})
	}
	e.stages = []StageSnapshot{{Stage: "before-subgraph-filter", Values: stage1}}
	return e, nil
}

// answerMultiHop resolves bridge questions: entity —rel₁→ bridge —rel₂→ ans.
// Hop 2 resolves every bridge concurrently on the worker pool; the merge
// happens in bridge input order over deferred history credits, so the answer
// is bit-identical to a sequential evaluation. Under a cancelable context the
// fan-out stops claiming arms once the context ends, and whatever arms did
// complete merge into a Degraded partial answer — graceful degradation
// instead of an error.
func (s *System) answerMultiHop(ctx context.Context, sn *snapshot, ans *Answer) {
	lf := ans.LogicForm
	if len(lf.Entities) == 0 || len(lf.Relations) < 2 {
		s.answerFallback(ctx, sn, ans, ans.Query)
		return
	}
	entity, rel1, rel2 := lf.Entities[0], lf.Relations[0], lf.Relations[1]
	// Hop 1: find the bridge entity.
	hop1Q := s.subQuestion(rel1, entity)
	e1, d1 := s.gatherEvidence(ctx, sn, hop1Q, entity, rel1)
	s.mcc.History().Apply(d1)
	ans.absorb(e1)
	if e1.err != nil {
		ans.degrade(e1.err)
		return
	}
	if len(e1.ev) == 0 {
		return
	}
	bridges, err := s.generate(ctx, hop1Q, e1.ev)
	if err != nil {
		ans.degrade(err)
		return
	}
	// Hop 2: resolve the target attribute of each bridge (multi-truth
	// bridges merge their answers, in bridge order). Unclaimed arms (the
	// fan-out stopped early) have nil evidence and no deferred credits, so
	// merging skips them cleanly.
	arms := make([]arm, len(bridges))
	fanErr := par.ForEachCtx(ctx, s.Workers(), len(bridges), func(i int) {
		q := s.subQuestion(rel2, bridges[i])
		arms[i].e, arms[i].d = s.gatherEvidence(ctx, sn, q, bridges[i], rel2)
	})
	var ev2 []llm.Evidence
	for i := range arms {
		s.mcc.History().Apply(arms[i].d)
		ans.absorb(arms[i].e)
		ev2 = append(ev2, arms[i].e.ev...)
		if arms[i].e.err != nil {
			ans.degrade(arms[i].e.err)
		}
	}
	if fanErr != nil {
		ans.degrade(fanErr)
	}
	if len(ev2) == 0 {
		return
	}
	vals, err := s.generate(ctx, ans.Query, ev2)
	if err != nil {
		ans.degrade(err)
		return
	}
	ans.Found = true
	ans.Values = vals
}

// answerComparison resolves "do X and Y have the same attr?" questions. With
// more than one worker the two arms resolve concurrently (the second arm is
// speculative); with a single worker the second arm is skipped outright when
// the first resolves to nothing. Either way the second arm's evidence is
// merged only after the first resolved, so both modes produce the same
// answer.
func (s *System) answerComparison(ctx context.Context, sn *snapshot, ans *Answer) {
	lf := ans.LogicForm
	if len(lf.Entities) < 2 || len(lf.Relations) == 0 {
		s.answerFallback(ctx, sn, ans, ans.Query)
		return
	}
	rel := lf.Relations[0]
	resolve := func(entity string) arm {
		q := s.subQuestion(rel, entity)
		var a arm
		a.e, a.d = s.gatherEvidence(ctx, sn, q, entity, rel)
		if a.e.err == nil && len(a.e.ev) > 0 {
			var err error
			if a.vals, err = s.generate(ctx, q, a.e.ev); err != nil {
				a.e.err = err
			}
		}
		return a
	}
	var a0, a1 arm
	if s.Workers() > 1 {
		par.ForEach(2, 2, func(i int) {
			if i == 0 {
				a0 = resolve(lf.Entities[0])
			} else {
				a1 = resolve(lf.Entities[1])
			}
		})
	} else {
		a0 = resolve(lf.Entities[0])
		if a0.vals != nil {
			a1 = resolve(lf.Entities[1])
		}
	}
	s.mcc.History().Apply(a0.d)
	ans.absorb(a0.e)
	if a0.e.err != nil {
		ans.degrade(a0.e.err)
	}
	if a0.vals == nil {
		// First entity unresolvable: the second arm was skipped (sequential)
		// or is discarded unmerged (speculative) — identical output either
		// way.
		return
	}
	s.mcc.History().Apply(a1.d)
	ans.absorb(a1.e)
	if a1.e.err != nil {
		ans.degrade(a1.e.err)
	}
	if a1.vals == nil {
		return
	}
	ans.Found = true
	set := map[string]bool{}
	for _, v := range a0.vals {
		set[kg.CanonicalID(v)] = true
	}
	same := false
	for _, v := range a1.vals {
		if set[kg.CanonicalID(v)] {
			same = true
			break
		}
	}
	if same {
		ans.Values = []string{"yes"}
	} else {
		ans.Values = []string{"no"}
	}
}

// answerFallback handles unparsed queries via pure chunk retrieval.
func (s *System) answerFallback(ctx context.Context, sn *snapshot, ans *Answer, q string) {
	hits, err := retrieval.SearchVectorCtx(ctx, sn.index, s.embeds.get(q), s.cfg.RetrievalK, nil)
	if err != nil {
		ans.degrade(err)
		return
	}
	var ev []llm.Evidence
	for _, h := range hits {
		ev = append(ev, llm.Evidence{Value: h.Chunk.Text, Weight: h.Score, Source: h.Chunk.Source})
	}
	if len(ev) == 0 {
		return
	}
	vals, err := s.generate(ctx, q, ev)
	if err != nil {
		ans.degrade(err)
		return
	}
	ans.Found = true
	ans.Values = vals
}

// RetrieveDocs returns the top-k document IDs for a query, ranked by the
// trusted-evidence pathway when available and by dense similarity otherwise.
// It backs the Recall@5 evaluation of Table IV.
func (s *System) RetrieveDocs(q string, k int) []string {
	_, docs := s.QueryWithDocs(q, k)
	return docs
}

// QueryWithDocs runs the query once and returns both the answer and the
// ranked supporting documents (avoiding the double evaluation RetrieveDocs
// would otherwise incur in benchmarks). Answer and document ranking are
// computed over the same snapshot, so the two are mutually consistent even
// under concurrent ingestion.
func (s *System) QueryWithDocs(q string, k int) (Answer, []string) {
	sn := s.snap.Load()
	ans, _ := s.queryCached(sn, q)
	var ranked []string
	seen := map[string]bool{}
	// Trusted triples first, in confidence order.
	tns := make([]confidence.TrustedNode, len(ans.Trusted))
	copy(tns, ans.Trusted)
	sort.SliceStable(tns, func(i, j int) bool { return tns[i].Confidence > tns[j].Confidence })
	for _, tn := range tns {
		doc := docOfChunk(tn.Triple.ChunkID)
		if doc != "" && !seen[doc] {
			seen[doc] = true
			ranked = append(ranked, doc)
		}
	}
	// Fill with dense hits: the bounded top-k scan reuses the cached query
	// embedding, so ranking costs no extra Embed beyond the answer's own.
	for _, h := range sn.index.SearchVector(s.embeds.get(q), k*2, nil) {
		doc := docOfChunk(h.Chunk.DocID)
		if doc != "" && !seen[doc] {
			seen[doc] = true
			ranked = append(ranked, doc)
		}
	}
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	return ans, ranked
}

// docOfChunk strips the record/paragraph suffix from a jsonld document ID,
// recovering the ingested file identity ("domain/source/name#hash").
func docOfChunk(chunkID string) string {
	if chunkID == "" {
		return ""
	}
	if i := strings.Index(chunkID, "#"); i >= 0 {
		if j := strings.Index(chunkID[i:], "/"); j >= 0 {
			return chunkID[:i+j]
		}
	}
	return chunkID
}
