package core

import (
	"sort"
	"strings"

	"multirag/internal/confidence"
	"multirag/internal/kg"
	"multirag/internal/linegraph"
	"multirag/internal/llm"
)

// StageSnapshot records the candidate values visible at one MKLGP stage —
// the three measurement points of §IV-A(b) (before subgraph filtering,
// before node filtering, after node filtering).
type StageSnapshot struct {
	Stage  string
	Values []string
}

// Answer is the result of one MKLGP query.
type Answer struct {
	Query     string
	LogicForm llm.LogicForm
	// Values is the final trustworthy answer set.
	Values []string
	// Trusted is the credible node set SVs that generated the answer.
	Trusted []confidence.TrustedNode
	// RejectedCount counts eliminated nodes (LVs).
	RejectedCount int
	// GraphConfidences lists C(G) per candidate subgraph.
	GraphConfidences []float64
	// Stages holds the three-stage candidate snapshots.
	Stages []StageSnapshot
	// Found reports whether any evidence was located.
	Found bool
}

// Query executes MKLGP (Algorithm 2) for a natural-language query. It is
// safe for unbounded concurrent use: the whole evaluation runs against one
// immutable snapshot loaded up front, so in-flight ingestion never changes
// the view mid-query. With Config.AnswerCacheSize > 0, repeated queries
// against the same snapshot generation are served from the answer cache.
func (s *System) Query(q string) Answer {
	ans, _ := s.queryCached(s.snap.Load(), q)
	return ans
}

// queryCached evaluates q against sn, consulting the generation-keyed answer
// cache first. It reports whether the answer came from the cache.
func (s *System) queryCached(sn *snapshot, q string) (Answer, bool) {
	if ans, ok := s.answers.get(sn.gen, q); ok {
		return ans, true
	}
	ans := s.queryOn(sn, q)
	s.answers.put(sn.gen, q, ans)
	return ans, false
}

func (s *System) queryOn(sn *snapshot, q string) Answer {
	lf := s.model.ParseQuery(q) // line 2: logic form generation
	ans := Answer{Query: q, LogicForm: lf}
	switch lf.Intent {
	case "multi_hop":
		s.answerMultiHop(sn, &ans)
	case "comparison":
		s.answerComparison(sn, &ans)
	default:
		if len(lf.Entities) > 0 && len(lf.Relations) > 0 {
			s.answerLookup(sn, &ans, lf.Entities[0], lf.Relations[0])
		} else {
			s.answerFallback(sn, &ans, q)
		}
	}
	return ans
}

// answerLookup resolves a single (entity, attribute) question.
func (s *System) answerLookup(sn *snapshot, ans *Answer, entity, relation string) {
	ev, trusted, rejected, gcs, stages := s.gatherEvidence(sn, ans.Query, entity, relation)
	ans.Trusted = trusted
	ans.RejectedCount = rejected
	ans.GraphConfidences = gcs
	ans.Stages = stages
	if len(ev) == 0 {
		return
	}
	ans.Found = true
	ans.Values = s.model.GenerateAnswer(ans.Query, ev) // line 7: trustworthy answers
}

// gatherEvidence is the retrieval heart shared by all intents: it returns
// weighted evidence for (entity, relation) along with the filtering
// diagnostics. With MKA it is a homologous line-graph lookup plus MCC; w/o
// MKA it degrades to chunk retrieval with per-query LLM extraction.
func (s *System) gatherEvidence(sn *snapshot, query, entity, relation string) (ev []llm.Evidence, trusted []confidence.TrustedNode, rejected int, gcs []float64, stages []StageSnapshot) {
	if s.cfg.DisableMKA || sn.sg == nil {
		return s.gatherByChunks(sn, query, entity, relation)
	}
	subj := kg.CanonicalID(s.model.Standardize(entity))
	var candidates []*linegraph.HomologousNode
	if n, ok := sn.sg.Lookup(subj, relation); ok {
		candidates = append(candidates, n)
	}
	// Nested attributes flatten to underscore-joined paths
	// (status → status_state); include them as alternative candidates.
	sn.sg.ForEachNode(func(_ string, n *linegraph.HomologousNode) {
		if n.SubjectID == subj && n.Name != relation && strings.HasPrefix(n.Name, relation+"_") {
			candidates = append(candidates, n)
		}
	})
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].Key < candidates[j].Key })

	// Stage 1 snapshot: everything the candidate subgraphs contain.
	var stage1 []string
	for _, n := range candidates {
		for _, t := range sn.sg.MemberTriples(n) {
			stage1 = append(stage1, t.Object)
		}
	}
	if len(candidates) > 0 {
		res := s.mcc.Run(sn.sg, candidates, s.cfg.Ablation)
		var stage2 []string
		for _, a := range res.Assessments {
			gcs = append(gcs, a.GraphConfidence)
			if !a.EliminatedByGraph {
				for _, t := range sn.sg.MemberTriples(a.Node) {
					stage2 = append(stage2, t.Object)
				}
			}
		}
		trusted = res.SVs
		rejected = len(res.LVs)
		var stage3 []string
		for _, tn := range res.SVs {
			stage3 = append(stage3, tn.Triple.Object)
			ev = append(ev, llm.Evidence{Value: tn.Triple.Object, Weight: tn.Confidence, Source: tn.Triple.Source, Verified: tn.Verified})
		}
		stages = []StageSnapshot{
			{Stage: "before-subgraph-filter", Values: stage1},
			{Stage: "before-node-filter", Values: stage2},
			{Stage: "after-node-filter", Values: stage3},
		}
		return
	}
	// No homologous group: try the isolated points.
	if t, ok := sn.sg.LookupIsolated(subj, relation); ok {
		tn := s.mcc.AssessIsolated(sn.sg, t, s.cfg.Ablation)
		trusted = append(trusted, tn)
		ev = append(ev, llm.Evidence{Value: t.Object, Weight: tn.Confidence, Source: t.Source, Verified: tn.Verified})
		vals := []string{t.Object}
		stages = []StageSnapshot{
			{Stage: "before-subgraph-filter", Values: vals},
			{Stage: "before-node-filter", Values: vals},
			{Stage: "after-node-filter", Values: vals},
		}
		return
	}
	// Entity or attribute absent from the graph: degrade to chunk retrieval.
	return s.gatherByChunks(sn, query, entity, relation)
}

// gatherByChunks is the non-aggregated retrieval path: top-k chunk search,
// per-query LLM extraction, then confidence filtering over an ad-hoc graph
// built from the extracted claims (the MCC stages still apply unless
// ablated). This is both slower (per-query LLM extraction) and lossier
// (top-k misses sparse evidence) than the line-graph path — the Table III
// "w/o MKA" behaviour.
func (s *System) gatherByChunks(sn *snapshot, query, entity, relation string) (ev []llm.Evidence, trusted []confidence.TrustedNode, rejected int, gcs []float64, stages []StageSnapshot) {
	k := s.cfg.RetrievalK * 4
	hits := sn.index.SearchVector(s.embeds.get(query), k, nil)
	subj := kg.CanonicalID(s.model.Standardize(entity))
	// Per-query extraction over retrieved chunks.
	tmp := kg.New()
	tmp.AddEntity(s.model.Standardize(entity), "Entity", "")
	var stage1 []string
	for _, h := range hits {
		mentions := s.model.ExtractEntities(h.Chunk.Text)
		spos := s.model.ExtractTriples(h.Chunk.Text, mentions)
		for _, spo := range spos {
			if kg.CanonicalID(s.model.Standardize(spo.Subject)) != subj || spo.Predicate != relation {
				continue
			}
			_, err := tmp.AddTriple(kg.Triple{
				Subject:   subj,
				Predicate: relation,
				Object:    spo.Object,
				Source:    h.Chunk.Source,
				ChunkID:   h.Chunk.DocID,
				Weight:    spo.Confidence * (0.5 + 0.5*h.Score),
			})
			if err == nil {
				stage1 = append(stage1, spo.Object)
			}
		}
	}
	if tmp.NumTriples() == 0 {
		return nil, nil, 0, nil, nil
	}
	adhoc := linegraph.Build(tmp)
	if n, ok := adhoc.Lookup(subj, relation); ok {
		res := s.mcc.Run(adhoc, []*linegraph.HomologousNode{n}, s.cfg.Ablation)
		trusted = res.SVs
		rejected = len(res.LVs)
		var stage3 []string
		for _, a := range res.Assessments {
			gcs = append(gcs, a.GraphConfidence)
		}
		for _, tn := range res.SVs {
			stage3 = append(stage3, tn.Triple.Object)
			ev = append(ev, llm.Evidence{Value: tn.Triple.Object, Weight: tn.Confidence, Source: tn.Triple.Source, Verified: tn.Verified})
		}
		stages = []StageSnapshot{
			{Stage: "before-subgraph-filter", Values: stage1},
			{Stage: "before-node-filter", Values: stage1},
			{Stage: "after-node-filter", Values: stage3},
		}
		return
	}
	// Single extracted claim.
	for _, id := range tmp.TripleIDs() {
		t, _ := tmp.Triple(id)
		tn := s.mcc.AssessIsolated(adhoc, t, s.cfg.Ablation)
		trusted = append(trusted, tn)
		ev = append(ev, llm.Evidence{Value: t.Object, Weight: tn.Confidence, Source: t.Source, Verified: tn.Verified})
	}
	stages = []StageSnapshot{{Stage: "before-subgraph-filter", Values: stage1}}
	return
}

// answerMultiHop resolves bridge questions: entity —rel₁→ bridge —rel₂→ ans.
func (s *System) answerMultiHop(sn *snapshot, ans *Answer) {
	lf := ans.LogicForm
	if len(lf.Entities) == 0 || len(lf.Relations) < 2 {
		s.answerFallback(sn, ans, ans.Query)
		return
	}
	entity, rel1, rel2 := lf.Entities[0], lf.Relations[0], lf.Relations[1]
	// Hop 1: find the bridge entity.
	hop1Q := "What is the " + strings.ReplaceAll(rel1, "_", " ") + " of " + entity + "?"
	ev1, trusted1, rej1, gcs1, _ := s.gatherEvidence(sn, hop1Q, entity, rel1)
	ans.Trusted = append(ans.Trusted, trusted1...)
	ans.RejectedCount += rej1
	ans.GraphConfidences = append(ans.GraphConfidences, gcs1...)
	if len(ev1) == 0 {
		return
	}
	bridges := s.model.GenerateAnswer(hop1Q, ev1)
	// Hop 2: resolve the target attribute of each bridge (first success wins;
	// multi-truth bridges merge their answers).
	var ev2 []llm.Evidence
	for _, bridge := range bridges {
		hop2Q := "What is the " + strings.ReplaceAll(rel2, "_", " ") + " of " + bridge + "?"
		ev, trusted2, rej2, gcs2, _ := s.gatherEvidence(sn, hop2Q, bridge, rel2)
		ans.Trusted = append(ans.Trusted, trusted2...)
		ans.RejectedCount += rej2
		ans.GraphConfidences = append(ans.GraphConfidences, gcs2...)
		ev2 = append(ev2, ev...)
	}
	if len(ev2) == 0 {
		return
	}
	ans.Found = true
	ans.Values = s.model.GenerateAnswer(ans.Query, ev2)
}

// answerComparison resolves "do X and Y have the same attr?" questions.
func (s *System) answerComparison(sn *snapshot, ans *Answer) {
	lf := ans.LogicForm
	if len(lf.Entities) < 2 || len(lf.Relations) == 0 {
		s.answerFallback(sn, ans, ans.Query)
		return
	}
	rel := lf.Relations[0]
	resolve := func(entity string) []string {
		q := "What is the " + strings.ReplaceAll(rel, "_", " ") + " of " + entity + "?"
		ev, trusted, rej, gcs, _ := s.gatherEvidence(sn, q, entity, rel)
		ans.Trusted = append(ans.Trusted, trusted...)
		ans.RejectedCount += rej
		ans.GraphConfidences = append(ans.GraphConfidences, gcs...)
		if len(ev) == 0 {
			return nil
		}
		return s.model.GenerateAnswer(q, ev)
	}
	v1 := resolve(lf.Entities[0])
	v2 := resolve(lf.Entities[1])
	if v1 == nil || v2 == nil {
		return
	}
	ans.Found = true
	set := map[string]bool{}
	for _, v := range v1 {
		set[kg.CanonicalID(v)] = true
	}
	same := false
	for _, v := range v2 {
		if set[kg.CanonicalID(v)] {
			same = true
			break
		}
	}
	if same {
		ans.Values = []string{"yes"}
	} else {
		ans.Values = []string{"no"}
	}
}

// answerFallback handles unparsed queries via pure chunk retrieval.
func (s *System) answerFallback(sn *snapshot, ans *Answer, q string) {
	hits := sn.index.SearchVector(s.embeds.get(q), s.cfg.RetrievalK, nil)
	var ev []llm.Evidence
	for _, h := range hits {
		ev = append(ev, llm.Evidence{Value: h.Chunk.Text, Weight: h.Score, Source: h.Chunk.Source})
	}
	if len(ev) == 0 {
		return
	}
	ans.Found = true
	ans.Values = s.model.GenerateAnswer(q, ev)
}

// RetrieveDocs returns the top-k document IDs for a query, ranked by the
// trusted-evidence pathway when available and by dense similarity otherwise.
// It backs the Recall@5 evaluation of Table IV.
func (s *System) RetrieveDocs(q string, k int) []string {
	_, docs := s.QueryWithDocs(q, k)
	return docs
}

// QueryWithDocs runs the query once and returns both the answer and the
// ranked supporting documents (avoiding the double evaluation RetrieveDocs
// would otherwise incur in benchmarks). Answer and document ranking are
// computed over the same snapshot, so the two are mutually consistent even
// under concurrent ingestion.
func (s *System) QueryWithDocs(q string, k int) (Answer, []string) {
	sn := s.snap.Load()
	ans, _ := s.queryCached(sn, q)
	var ranked []string
	seen := map[string]bool{}
	// Trusted triples first, in confidence order.
	tns := make([]confidence.TrustedNode, len(ans.Trusted))
	copy(tns, ans.Trusted)
	sort.SliceStable(tns, func(i, j int) bool { return tns[i].Confidence > tns[j].Confidence })
	for _, tn := range tns {
		doc := docOfChunk(tn.Triple.ChunkID)
		if doc != "" && !seen[doc] {
			seen[doc] = true
			ranked = append(ranked, doc)
		}
	}
	// Fill with dense hits: the bounded top-k scan reuses the cached query
	// embedding, so ranking costs no extra Embed beyond the answer's own.
	for _, h := range sn.index.SearchVector(s.embeds.get(q), k*2, nil) {
		doc := docOfChunk(h.Chunk.DocID)
		if doc != "" && !seen[doc] {
			seen[doc] = true
			ranked = append(ranked, doc)
		}
	}
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	return ans, ranked
}

// docOfChunk strips the record/paragraph suffix from a jsonld document ID,
// recovering the ingested file identity ("domain/source/name#hash").
func docOfChunk(chunkID string) string {
	if chunkID == "" {
		return ""
	}
	if i := strings.Index(chunkID, "#"); i >= 0 {
		if j := strings.Index(chunkID[i:], "/"); j >= 0 {
			return chunkID[:i+j]
		}
	}
	return chunkID
}
