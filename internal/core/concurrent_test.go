package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"multirag/internal/adapter"
	"multirag/internal/datasets"
	"multirag/internal/llm"
)

// TestIngestDeterministicAcrossWorkerCounts is the parallel-ingestion
// correctness contract: the published graph, line graph and answers must be
// bit-identical whatever the pool size, because extraction records per file
// and replays in deterministic order.
func TestIngestDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := datasets.Movies(7)
	spec.Entities = 25
	spec.Queries = 12
	d := datasets.MustGenerate(spec)

	build := func(workers int) *System {
		s := NewSystem(Config{Workers: workers, LLM: llm.Config{Seed: 1}})
		if _, err := s.Ingest(d.Files); err != nil {
			t.Fatal(err)
		}
		return s
	}
	serial := build(1)
	parallel := build(8)

	if serial.Graph().NumEntities() != parallel.Graph().NumEntities() ||
		serial.Graph().NumTriples() != parallel.Graph().NumTriples() {
		t.Fatalf("graph sizes diverge: %d/%d vs %d/%d",
			serial.Graph().NumEntities(), serial.Graph().NumTriples(),
			parallel.Graph().NumEntities(), parallel.Graph().NumTriples())
	}
	if !reflect.DeepEqual(serial.Graph().TripleIDs(), parallel.Graph().TripleIDs()) {
		t.Fatal("triple ID sequences diverge across worker counts")
	}
	for _, id := range serial.Graph().TripleIDs() {
		st, _ := serial.Graph().Triple(id)
		pt, _ := parallel.Graph().Triple(id)
		if !reflect.DeepEqual(st, pt) {
			t.Fatalf("triple %s diverges:\n workers=1 %+v\n workers=8 %+v", id, st, pt)
		}
	}
	if !reflect.DeepEqual(serial.SG().ComputeStats(), parallel.SG().ComputeStats()) {
		t.Fatalf("SG stats diverge: %+v vs %+v", serial.SG().ComputeStats(), parallel.SG().ComputeStats())
	}
	if serial.Index().Len() != parallel.Index().Len() {
		t.Fatalf("index sizes diverge: %d vs %d", serial.Index().Len(), parallel.Index().Len())
	}
	for _, q := range d.Queries {
		sa := serial.Query(q.Text)
		pa := parallel.Query(q.Text)
		if !reflect.DeepEqual(sa.Values, pa.Values) {
			t.Fatalf("answers diverge for %q: %v vs %v", q.Text, sa.Values, pa.Values)
		}
	}
}

// TestSnapshotIsolation verifies the read-path/write-path split: a snapshot
// captured before an ingest batch must be completely unaffected by the
// commit, and the new snapshot must expose the batch atomically.
func TestSnapshotIsolation(t *testing.T) {
	s := newCaseStudySystem(t, Config{})
	gBefore, sgBefore, ixBefore := s.Graph(), s.SG(), s.Index()
	triBefore := gBefore.NumTriples()
	statsBefore := sgBefore.ComputeStats()
	ixLenBefore := ixBefore.Len()

	if _, err := s.Ingest([]adapter.RawFile{{
		Domain: "flights", Source: "radar", Name: "feed", Format: "csv",
		Content: []byte("flight,status\nCA981,Delayed\nKL602,Boarding\n"),
	}}); err != nil {
		t.Fatal(err)
	}

	if gBefore.NumTriples() != triBefore {
		t.Fatal("published graph snapshot was mutated by a later ingest")
	}
	if sgBefore.ComputeStats() != statsBefore {
		t.Fatal("published SG snapshot was mutated by a later ingest")
	}
	if ixBefore.Len() != ixLenBefore {
		t.Fatal("published index snapshot was mutated by a later ingest")
	}
	if s.Graph() == gBefore || s.Graph().NumTriples() <= triBefore {
		t.Fatal("new snapshot not published")
	}
	if s.SG().ComputeStats() == statsBefore {
		t.Fatal("SG not updated for the new batch")
	}
}

// TestIngestFailurePublishesNothing checks batch atomicity: when one file of
// a batch fails, no partial state may become visible.
func TestIngestFailurePublishesNothing(t *testing.T) {
	s := newCaseStudySystem(t, Config{})
	gBefore := s.Graph()
	ixLen := s.Index().Len()
	_, err := s.Ingest([]adapter.RawFile{
		{Domain: "flights", Source: "ok", Name: "good", Format: "csv",
			Content: []byte("flight,status\nZZ111,On time\n")},
		{Domain: "flights", Source: "bad", Name: "broken", Format: "json",
			Content: []byte("{not json")},
	})
	if err == nil {
		t.Fatal("broken batch must fail")
	}
	if s.Graph() != gBefore || s.Index().Len() != ixLen {
		t.Fatal("failed batch leaked partial state into the serving snapshot")
	}
}

// TestIncrementalSGMatchesFullRebuild ingests several batches and checks the
// delta-maintained SG agrees with a forced full rebuild at every step — the
// engine-level counterpart of the linegraph property test.
func TestIncrementalSGMatchesFullRebuild(t *testing.T) {
	incr := NewSystem(Config{LLM: llm.Config{Seed: 1}})
	full := NewSystem(Config{LLM: llm.Config{Seed: 1}, DisableIncrementalSG: true})
	for batch := 0; batch < 5; batch++ {
		files := []adapter.RawFile{{
			Domain: "flights", Source: fmt.Sprintf("src-%d", batch), Name: "feed", Format: "csv",
			Content: []byte(fmt.Sprintf("flight,status,gate\nCA981,Delayed,B%d\nMU%d88,On time,C1\n", batch, batch)),
		}}
		ri, err := incr.Ingest(files)
		if err != nil {
			t.Fatal(err)
		}
		rf, err := full.Ingest(files)
		if err != nil {
			t.Fatal(err)
		}
		if ri.Homologous != rf.Homologous {
			t.Fatalf("batch %d: incremental stats %+v != full-rebuild stats %+v", batch, ri.Homologous, rf.Homologous)
		}
	}
	ai := incr.Query("What is the status of CA981?")
	af := full.Query("What is the status of CA981?")
	if !reflect.DeepEqual(ai.Values, af.Values) {
		t.Fatalf("answers diverge: %v vs %v", ai.Values, af.Values)
	}
}

// TestConcurrentIngestSerialised checks that racing Ingest calls are applied
// as whole batches: every file lands exactly once.
func TestConcurrentIngestSerialised(t *testing.T) {
	s := NewSystem(Config{LLM: llm.Config{Seed: 1, ExtractionNoise: 0}})
	const batches = 6
	var wg sync.WaitGroup
	wg.Add(batches)
	for b := 0; b < batches; b++ {
		go func(b int) {
			defer wg.Done()
			_, err := s.Ingest([]adapter.RawFile{{
				Domain: "fleet", Source: fmt.Sprintf("src-%d", b), Name: "feed", Format: "csv",
				Content: []byte(fmt.Sprintf("flight,status\nQF%d01,On time\n", b)),
			}})
			if err != nil {
				t.Errorf("ingest %d: %v", b, err)
			}
		}(b)
	}
	wg.Wait()
	// Each batch contributes 1 entity (the flight; "On time" is a literal)
	// and 1 triple.
	if got := s.Graph().NumTriples(); got != batches {
		t.Fatalf("triples = %d, want %d (lost or duplicated batches)", got, batches)
	}
	for b := 0; b < batches; b++ {
		ans := s.Query(fmt.Sprintf("What is the status of QF%d01?", b))
		if !ans.Found {
			t.Fatalf("batch %d invisible after concurrent ingest", b)
		}
	}
}
