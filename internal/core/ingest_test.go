package core

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"multirag/internal/adapter"
	"multirag/internal/kg"
	"multirag/internal/llm"
)

// ingestBatch builds one deterministic batch: a kg-format feed plus a text
// file, both about "Item <k>" (subjects collide across batches when k wraps,
// so homologous groups grow across group commits).
func ingestBatch(k int) []adapter.RawFile {
	subj := fmt.Sprintf("Item %d", k%5)
	kgContent := fmt.Sprintf("%s|status|Active\n%s|category|cat-%d\n%s|owner|Person %d\n",
		subj, subj, k%3, subj, k%4)
	text := fmt.Sprintf("The gate of %s is G%d.", subj, k%7)
	return []adapter.RawFile{
		{Domain: "fleet", Source: fmt.Sprintf("feed-%d", k), Name: "facts", Format: "kg", Content: []byte(kgContent)},
		{Domain: "fleet", Source: fmt.Sprintf("notes-%d", k), Name: "notes", Format: "text", Content: []byte(text)},
	}
}

// disjointBatch is ingestBatch with per-batch-unique subjects and two
// agreeing sources, so final answers are interleaving-independent (triple IDs
// differ across commit orders, but values never conflict).
func disjointBatch(k int) []adapter.RawFile {
	subj := fmt.Sprintf("Unit %d", k)
	content := fmt.Sprintf("%s|status|Ready\n%s|zone|Z%d\n", subj, subj, k%4)
	return []adapter.RawFile{
		{Domain: "fleet", Source: fmt.Sprintf("feed-a-%d", k), Name: "facts", Format: "kg", Content: []byte(content)},
		{Domain: "fleet", Source: fmt.Sprintf("feed-b-%d", k), Name: "facts", Format: "kg", Content: []byte(content)},
	}
}

// requireSameGraph asserts two systems publish bit-identical graphs: same
// triple ID sequence, same triple contents, same entities.
func requireSameGraph(t *testing.T, got, want *System) {
	t.Helper()
	if !reflect.DeepEqual(got.Graph().TripleIDs(), want.Graph().TripleIDs()) {
		t.Fatal("triple ID sequences diverge")
	}
	for _, id := range want.Graph().TripleIDs() {
		gt, _ := got.Graph().Triple(id)
		wt, _ := want.Graph().Triple(id)
		if !reflect.DeepEqual(gt, wt) {
			t.Fatalf("triple %s diverges:\n got  %+v\n want %+v", id, gt, wt)
		}
	}
	if !reflect.DeepEqual(got.Graph().EntityIDs(), want.Graph().EntityIDs()) {
		t.Fatal("entity sets diverge")
	}
	if !reflect.DeepEqual(got.SG().ComputeStats(), want.SG().ComputeStats()) {
		t.Fatalf("SG stats diverge: %+v vs %+v", got.SG().ComputeStats(), want.SG().ComputeStats())
	}
	if got.Index().Len() != want.Index().Len() {
		t.Fatalf("index sizes diverge: %d vs %d", got.Index().Len(), want.Index().Len())
	}
}

// poisonedReplayer replays its inner stream fully — mutating the shared
// commit clone — and then reports failure, exercising the committer's
// rollback-by-re-replay path.
type poisonedReplayer struct{ inner replayer }

func (r poisonedReplayer) ReplayAppend(g *kg.Graph, ids []string) ([]string, error) {
	ids, err := r.inner.ReplayAppend(g, ids)
	if err != nil {
		return ids, err
	}
	return ids, errors.New("injected replay failure")
}

func (r poisonedReplayer) NumTriples() int { return r.inner.NumTriples() }

// TestGroupCommitMidGroupFailure is the group-atomicity contract: when one
// batch of a commit group fails mid-replay (after mutating the shared
// clone), the committer publishes its group-mates and nothing of the failed
// batch, in one snapshot.
func TestGroupCommitMidGroupFailure(t *testing.T) {
	s := NewSystem(Config{LLM: llm.Config{Seed: 1}})
	genBefore := s.snap.Load().gen

	var group []*prepared
	for k := 0; k < 3; k++ {
		p := &prepared{start: time.Now()}
		s.admit(p)
		s.prepare(p, ingestBatch(k))
		if p.err != nil {
			t.Fatal(p.err)
		}
		group = append(group, p)
	}
	// Poison the middle batch's first file after it has replayed.
	group[1].work[0].rec = poisonedReplayer{group[1].work[0].rec}
	s.commitGroup(group)
	s.gc.nextCommit += 3 // direct commitGroup bypassed commitJoin's bookkeeping
	s.gc.inflight -= 3

	if group[0].err != nil || group[2].err != nil {
		t.Fatalf("group-mates must commit: %v / %v", group[0].err, group[2].err)
	}
	if group[1].err == nil {
		t.Fatal("poisoned batch must report its failure")
	}
	if got := s.snap.Load().gen; got != genBefore+1 {
		t.Fatalf("group must publish exactly one snapshot: gen %d -> %d", genBefore, got)
	}

	// The published state must equal a sequential ingest of only the
	// surviving batches.
	want := NewSystem(Config{LLM: llm.Config{Seed: 1}})
	for _, k := range []int{0, 2} {
		if _, err := want.Ingest(ingestBatch(k)); err != nil {
			t.Fatal(err)
		}
	}
	requireSameGraph(t, s, want)
	if got, wantStats := s.SG().ComputeStats(), s.SG().RecomputeStats(); got != wantStats {
		t.Fatalf("published stats drifted from oracle: %+v vs %+v", got, wantStats)
	}
}

// TestGroupCommitPerBatchReportsExact pins the per-batch report contract
// under group commit: each batch's entity/triple/chunk deltas equal what the
// batch reports when ingested alone, and Homologous reflects the group's
// published snapshot.
func TestGroupCommitPerBatchReportsExact(t *testing.T) {
	s := NewSystem(Config{LLM: llm.Config{Seed: 1}})
	var group []*prepared
	for k := 0; k < 3; k++ {
		p := &prepared{start: time.Now()}
		s.admit(p)
		s.prepare(p, disjointBatch(k))
		if p.err != nil {
			t.Fatal(p.err)
		}
		group = append(group, p)
	}
	s.commitGroup(group)
	s.gc.nextCommit += 3
	s.gc.inflight -= 3

	groupStats := s.SG().ComputeStats()
	for k, p := range group {
		solo := NewSystem(Config{LLM: llm.Config{Seed: 1}})
		rep, err := solo.Ingest(disjointBatch(k))
		if err != nil {
			t.Fatal(err)
		}
		if p.rep.Extraction.Entities != rep.Extraction.Entities ||
			p.rep.Extraction.Triples != rep.Extraction.Triples ||
			p.rep.Chunks != rep.Chunks {
			t.Fatalf("batch %d deltas diverge under group commit: %+v vs solo %+v (chunks %d vs %d)",
				k, p.rep.Extraction, rep.Extraction, p.rep.Chunks, rep.Chunks)
		}
		if !reflect.DeepEqual(p.rep.Extraction.ByFormat, rep.Extraction.ByFormat) {
			t.Fatalf("batch %d ByFormat diverges: %v vs %v", k, p.rep.Extraction.ByFormat, rep.Extraction.ByFormat)
		}
		if p.rep.Homologous != groupStats {
			t.Fatalf("batch %d Homologous must reflect the group snapshot: %+v vs %+v", k, p.rep.Homologous, groupStats)
		}
	}
}

// TestPipelinedIngestMatchesSequentialOrdered is the equivalence property
// test for a controlled arrival order: concurrent producers whose Ingest
// calls are admitted in a known ticket order must publish a final graph, SG
// and index bit-identical to ingesting the same batches one by one — however
// the stage-1 fan-outs and group commits interleave.
func TestPipelinedIngestMatchesSequentialOrdered(t *testing.T) {
	const batches = 12
	s := NewSystem(Config{LLM: llm.Config{Seed: 1}})
	gates := make([]chan struct{}, batches+1)
	for i := range gates {
		gates[i] = make(chan struct{})
	}
	close(gates[0])
	s.gc.testAdmitted = func(ticket uint64) { close(gates[ticket+1]) }

	var wg sync.WaitGroup
	wg.Add(batches)
	for k := 0; k < batches; k++ {
		go func(k int) {
			defer wg.Done()
			<-gates[k] // enter Ingest only after ticket k-1 is assigned
			if _, err := s.Ingest(ingestBatch(k)); err != nil {
				t.Errorf("batch %d: %v", k, err)
			}
		}(k)
	}
	wg.Wait()

	want := NewSystem(Config{LLM: llm.Config{Seed: 1}})
	for k := 0; k < batches; k++ {
		if _, err := want.Ingest(ingestBatch(k)); err != nil {
			t.Fatal(err)
		}
	}
	requireSameGraph(t, s, want)

	for _, q := range []string{"What is the status of Item 2?", "What is the gate of Item 1?"} {
		ga, wa := s.Query(q), want.Query(q)
		if !reflect.DeepEqual(ga.Values, wa.Values) {
			t.Fatalf("answers diverge for %q: %v vs %v", q, ga.Values, wa.Values)
		}
	}
}

// tripleMultiset renders a graph's triples as a sorted content multiset —
// the order-insensitive observable free-interleaving runs are compared on
// (triple IDs depend on commit order; contents do not).
func tripleMultiset(g *kg.Graph) []string {
	out := make([]string, 0, g.NumTriples())
	for _, id := range g.TripleIDs() {
		tr, _ := g.Triple(id)
		out = append(out, fmt.Sprintf("%s|%s|%s|%s|%s|%g", tr.Subject, tr.Predicate, tr.Object, tr.Source, tr.Format, tr.Weight))
	}
	sort.Strings(out)
	return out
}

// TestPipelinedIngestAnyInterleaving lets producers race freely (arrival
// order is whatever the scheduler produces) and checks the final state
// against the sequential reference on order-insensitive observables.
func TestPipelinedIngestAnyInterleaving(t *testing.T) {
	const batches = 16
	s := NewSystem(Config{LLM: llm.Config{Seed: 1}})
	var next atomic.Int64
	var wg sync.WaitGroup
	const producers = 4
	wg.Add(producers)
	for w := 0; w < producers; w++ {
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= batches {
					return
				}
				if _, err := s.Ingest(disjointBatch(k)); err != nil {
					t.Errorf("batch %d: %v", k, err)
				}
			}
		}()
	}
	wg.Wait()

	want := NewSystem(Config{LLM: llm.Config{Seed: 1}})
	for k := 0; k < batches; k++ {
		if _, err := want.Ingest(disjointBatch(k)); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(tripleMultiset(s.Graph()), tripleMultiset(want.Graph())) {
		t.Fatal("triple content multisets diverge from sequential reference")
	}
	if !reflect.DeepEqual(s.Graph().EntityIDs(), want.Graph().EntityIDs()) {
		t.Fatal("entity sets diverge from sequential reference")
	}
	if s.SG().ComputeStats() != want.SG().ComputeStats() {
		t.Fatalf("SG stats diverge: %+v vs %+v", s.SG().ComputeStats(), want.SG().ComputeStats())
	}
	if s.Index().Len() != want.Index().Len() {
		t.Fatalf("index sizes diverge: %d vs %d", s.Index().Len(), want.Index().Len())
	}
	for k := 0; k < batches; k++ {
		q := fmt.Sprintf("What is the status of Unit %d?", k)
		ga, wa := s.Query(q), want.Query(q)
		if !reflect.DeepEqual(ga.Values, wa.Values) {
			t.Fatalf("answers diverge for %q: %v vs %v", q, ga.Values, wa.Values)
		}
	}
}

// TestIngestStressNoTornSnapshot races group-committing producers against
// Ask/QueryBatch readers (run under -race): every observed snapshot must be
// internally consistent — the SG belongs to the graph it was built over, its
// incremental stats agree with the walking oracle — and a producer's own
// committed batches must be immediately visible to queries.
func TestIngestStressNoTornSnapshot(t *testing.T) {
	const producers = 3
	const perProducer = 6
	s := NewSystem(Config{LLM: llm.Config{Seed: 1, ExtractionNoise: 0}})
	var committed atomic.Int64 // high-water mark over disjointBatch indexes
	done := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(producers)
	var next atomic.Int64
	for w := 0; w < producers; w++ {
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= producers*perProducer {
					return
				}
				if _, err := s.Ingest(disjointBatch(k)); err != nil {
					t.Errorf("batch %d: %v", k, err)
					return
				}
				for {
					cur := committed.Load()
					if int64(k) < cur || committed.CompareAndSwap(cur, int64(k)+1) {
						break
					}
				}
			}
		}()
	}

	var rwg sync.WaitGroup
	for r := 0; r < 3; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				g, sg, ix := s.Serving()
				if sg != nil {
					if sg.Graph() != g {
						t.Error("torn snapshot: SG does not belong to the served graph")
						return
					}
					if st, oracle := sg.ComputeStats(), sg.RecomputeStats(); st != oracle {
						t.Errorf("torn stats: %+v vs oracle %+v", st, oracle)
						return
					}
				}
				_ = ix.Len()
				if hw := committed.Load(); hw > 0 {
					k := int(hw) - 1
					ans := s.Query(fmt.Sprintf("What is the status of Unit %d?", k))
					if !ans.Found {
						t.Errorf("committed batch %d invisible to reader", k)
						return
					}
					s.QueryBatch([]string{
						fmt.Sprintf("What is the zone of Unit %d?", k),
						fmt.Sprintf("What is the status of Unit %d?", k/2),
					})
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	rwg.Wait()

	// Each batch contributes two agreeing 2-triple feeds.
	if got, want := s.Graph().NumTriples(), producers*perProducer*4; got != want {
		t.Fatalf("lost or duplicated batches: %d triples, want %d", got, want)
	}
}

// TestSerializeIngestMatchesPipelined pins the A/B knob: the serialized
// baseline and the pipelined path publish identical corpora for the same
// batch sequence.
func TestSerializeIngestMatchesPipelined(t *testing.T) {
	pipe := NewSystem(Config{LLM: llm.Config{Seed: 1}})
	base := NewSystem(Config{LLM: llm.Config{Seed: 1}, SerializeIngest: true})
	for k := 0; k < 6; k++ {
		rp, err := pipe.Ingest(ingestBatch(k))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := base.Ingest(ingestBatch(k))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rp, rb) {
			t.Fatalf("batch %d reports diverge:\n pipelined  %+v\n serialized %+v", k, rp, rb)
		}
	}
	requireSameGraph(t, pipe, base)
}
