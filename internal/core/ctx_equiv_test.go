package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomChaosQueries generates a seeded random workload over the full query
// grammar — lookups, nested lookups, comparisons, fallbacks — mixing known
// and unknown entities/relations so found, not-found and multi-truth paths
// all appear.
func randomChaosQueries(rng *rand.Rand, n int) []string {
	entities := []string{"CA981", "MU588", "MU551", "PEK", "Typhoon", "Nobody"}
	relations := []string{"status", "delay reason", "gate", "origin", "altitude"}
	pick := func(xs []string) string { return xs[rng.Intn(len(xs))] }
	out := make([]string, n)
	for i := range out {
		switch rng.Intn(4) {
		case 0:
			out[i] = fmt.Sprintf("What is the %s of %s?", pick(relations), pick(entities))
		case 1:
			out[i] = fmt.Sprintf("What is the %s of the %s of %s?",
				pick(relations), pick(relations), pick(entities))
		case 2:
			out[i] = fmt.Sprintf("Do %s and %s have the same %s?",
				pick(entities), pick(entities), pick(relations))
		default:
			out[i] = fmt.Sprintf("Anything new about %s today", pick(entities))
		}
	}
	return out
}

// TestQueryCtxBitIdentical is the determinism pin of the cancellation work:
// on two identically built systems, every query answered through the
// context-aware path under a live (never-canceled, never-expiring) context
// must be deeply equal to the context-free answer — the ctx plumbing may only
// ever change behaviour when the context actually ends.
func TestQueryCtxBitIdentical(t *testing.T) {
	s1 := newCaseStudySystem(t, Config{})
	s2 := newCaseStudySystem(t, Config{})
	rng := rand.New(rand.NewSource(7))
	queries := randomChaosQueries(rng, 60)

	live, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i, q := range queries {
		a := s1.Query(q)
		b := s2.QueryCtx(live, q)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("query %d %q: QueryCtx diverged from Query\n ctx-free: %+v\n ctx:      %+v", i, q, a, b)
		}
	}

	// Batch entry points: QueryBatchCtx with a background context delegates
	// to QueryBatch; QueryEach with per-request live contexts must match too.
	a := s1.QueryBatch(queries)
	b := s2.QueryBatchCtx(context.Background(), queries)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("QueryBatchCtx(Background) diverged from QueryBatch")
	}
	ctxs := make([]context.Context, len(queries))
	for i := range ctxs {
		ctxs[i] = live
	}
	c := s2.QueryEach(ctxs, queries)
	if !reflect.DeepEqual(a, c) {
		t.Fatal("QueryEach under live contexts diverged from QueryBatch")
	}
	d := s2.QueryEach(make([]context.Context, len(queries)), queries)
	if !reflect.DeepEqual(a, d) {
		t.Fatal("QueryEach with nil contexts diverged from QueryBatch")
	}
}
