package core

import (
	"fmt"
	"reflect"
	"testing"

	"multirag/internal/adapter"
	"multirag/internal/llm"
	"multirag/internal/retrieval"
)

// multiHopFiles is a two-document bridge corpus (director → birthplace).
func multiHopFiles() []adapter.RawFile {
	return []adapter.RawFile{
		{Domain: "wiki", Source: "wiki", Name: "doc1", Format: "text",
			Content: []byte("The director of The Hidden Monument is Keiko Tanaka.")},
		{Domain: "wiki", Source: "wiki", Name: "doc2", Format: "text",
			Content: []byte("The birthplace of Keiko Tanaka is Tokyo.")},
	}
}

// TestEmbedCacheRemovesRepeatEmbedCalls is the acceptance check for the
// evaluation cache: re-running a multi-hop query (which embeds one
// sub-question per hop on the chunk-retrieval path) must not call Embed
// again — every sub-question embedding comes from the cache.
func TestEmbedCacheRemovesRepeatEmbedCalls(t *testing.T) {
	s := NewSystem(Config{DisableMKA: true, LLM: llm.Config{Seed: 1, ExtractionNoise: 0}})
	if _, err := s.Ingest(multiHopFiles()); err != nil {
		t.Fatal(err)
	}
	q := "What is the birthplace of the director of The Hidden Monument?"
	first := s.Query(q) // warms the embedding cache for q and both hops
	before := retrieval.EmbedCalls()
	second := s.Query(q)
	if delta := retrieval.EmbedCalls() - before; delta != 0 {
		t.Fatalf("re-running the multi-hop query made %d Embed calls, want 0 (cache miss)", delta)
	}
	if !reflect.DeepEqual(first.Values, second.Values) {
		t.Fatalf("cached embeddings changed the answer: %v vs %v", first.Values, second.Values)
	}
}

// TestEmbedCacheComparisonQuery covers the comparison intent: both legs'
// sub-questions embed once across repeated evaluations.
func TestEmbedCacheComparisonQuery(t *testing.T) {
	s := NewSystem(Config{DisableMKA: true, LLM: llm.Config{Seed: 1, ExtractionNoise: 0}})
	files := []adapter.RawFile{{Domain: "wiki", Source: "wiki", Name: "d1", Format: "text",
		Content: []byte("The genre of The Crimson Harbor is noir. The genre of The Silent Garden is noir.")}}
	if _, err := s.Ingest(files); err != nil {
		t.Fatal(err)
	}
	q := "Do The Crimson Harbor and The Silent Garden have the same genre?"
	s.Query(q)
	before := retrieval.EmbedCalls()
	s.Query(q)
	if delta := retrieval.EmbedCalls() - before; delta != 0 {
		t.Fatalf("re-running the comparison query made %d Embed calls, want 0", delta)
	}
}

// TestAnswerCacheHitSkipsEvaluation verifies a cache hit serves the recorded
// answer without touching the serving model.
func TestAnswerCacheHitSkipsEvaluation(t *testing.T) {
	s := newCaseStudySystem(t, Config{AnswerCacheSize: 16})
	q := "What is the status of CA981?"
	first := s.Query(q)
	calls := s.Model().Usage().Calls
	second := s.Query(q)
	if got := s.Model().Usage().Calls; got != calls {
		t.Fatalf("cache hit still made %d model calls", got-calls)
	}
	if !reflect.DeepEqual(first.Values, second.Values) || !reflect.DeepEqual(first.Trusted, second.Trusted) {
		t.Fatalf("cached answer diverges: %+v vs %+v", first, second)
	}
}

// TestAnswerCacheInvalidatedOnIngest pins the invalidation rule: a snapshot
// swap must flush the cache, so queries observe the new corpus immediately.
func TestAnswerCacheInvalidatedOnIngest(t *testing.T) {
	s := NewSystem(Config{AnswerCacheSize: 16, LLM: llm.Config{Seed: 1, ExtractionNoise: 0}})
	if _, err := s.Ingest(caseStudyFiles()); err != nil {
		t.Fatal(err)
	}
	q := "What is the status of KL602?"
	if ans := s.Query(q); ans.Found {
		t.Fatalf("unknown flight answered before ingest: %+v", ans.Values)
	}
	if _, err := s.Ingest([]adapter.RawFile{{
		Domain: "flights", Source: "radar", Name: "feed", Format: "csv",
		Content: []byte("flight,status\nKL602,Boarding\n"),
	}}); err != nil {
		t.Fatal(err)
	}
	ans := s.Query(q)
	if !ans.Found || len(ans.Values) != 1 || ans.Values[0] != "Boarding" {
		t.Fatalf("stale cached answer after ingest: %+v", ans)
	}
}

// TestAnswerCacheInvalidatedOnRebuildSG covers the other publication path:
// RebuildSG publishes a new snapshot generation, which must flush cached
// answers just like an ingest commit does.
func TestAnswerCacheInvalidatedOnRebuildSG(t *testing.T) {
	s := newCaseStudySystem(t, Config{AnswerCacheSize: 16})
	q := "What is the status of CA981?"
	s.Query(q) // populate the cache
	calls := s.Model().Usage().Calls
	s.Query(q)
	if got := s.Model().Usage().Calls; got != calls {
		t.Fatalf("expected a cache hit before RebuildSG, saw %d model calls", got-calls)
	}
	s.RebuildSG()
	s.Query(q)
	if got := s.Model().Usage().Calls; got == calls {
		t.Fatal("RebuildSG did not invalidate the answer cache")
	}
}

// TestAnswerCacheIsolatedFromCallerMutation: Ask hands answers to arbitrary
// user code, so a caller overwriting the returned slices must not poison the
// cached copy served to later callers.
func TestAnswerCacheIsolatedFromCallerMutation(t *testing.T) {
	s := newCaseStudySystem(t, Config{AnswerCacheSize: 16})
	q := "What is the status of CA981?"
	first := s.Query(q)
	if len(first.Values) == 0 || len(first.Stages) == 0 {
		t.Fatalf("unexpected baseline answer: %+v", first)
	}
	first.Values[0] = "MUTATED"
	first.Stages[0].Values[0] = "MUTATED"
	if len(first.Trusted) > 0 {
		first.Trusted[0].Confidence = -1
	}
	second := s.Query(q)
	if second.Values[0] == "MUTATED" || second.Stages[0].Values[0] == "MUTATED" {
		t.Fatalf("caller mutation leaked into the answer cache: %+v", second)
	}
	for _, tn := range second.Trusted {
		if tn.Confidence < 0 {
			t.Fatal("caller mutation of Trusted leaked into the cache")
		}
	}
}

// TestAnswerCacheBounded checks flush-on-overflow keeps the entry count at
// or below the configured size.
func TestAnswerCacheBounded(t *testing.T) {
	const size = 4
	s := newCaseStudySystem(t, Config{AnswerCacheSize: size})
	for i := 0; i < 5*size; i++ {
		s.Query(fmt.Sprintf("What is the status of ZZ%03d?", i))
		if got := s.answers.size(); got > size {
			t.Fatalf("answer cache grew to %d entries, bound is %d", got, size)
		}
	}
}

// TestAnswerCacheDisabledByDefault: with the zero config, repeated queries
// must re-evaluate (the benchmark tables meter per-query model usage).
func TestAnswerCacheDisabledByDefault(t *testing.T) {
	s := newCaseStudySystem(t, Config{})
	q := "What is the status of CA981?"
	s.Query(q)
	calls := s.Model().Usage().Calls
	s.Query(q)
	if got := s.Model().Usage().Calls; got == calls {
		t.Fatal("default config must not cache answers (usage accounting would go dark)")
	}
}
