package core

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"multirag/internal/adapter"
	"multirag/internal/llm"
	"multirag/internal/wal"
)

const durDir = "data"

func durTestConfig() Config {
	return Config{LLM: llm.Config{Seed: 1, ExtractionNoise: 0, BaseHallucination: 0.02, ConflictSensitivity: 0.6}}
}

// snapBytes is the recovery-equivalence oracle: every layer of the snapshot
// serializes deterministically (handle order, sorted node keys, insertion
// order), so two systems whose encoded snapshots are byte-identical hold
// identical published state.
func snapBytes(s *System) []byte {
	var e wal.Encoder
	encodeSnapshot(&e, s.snap.Load())
	return append([]byte(nil), e.Bytes()...)
}

// seqBatches is the scripted ingest sequence the recovery tests replay: the
// case-study corpus split into three sequential commits.
func seqBatches() [][]adapter.RawFile {
	files := caseStudyFiles()
	return [][]adapter.RawFile{files[:2], files[2:3], files[3:]}
}

// openDurable opens a durable system on fsys and registers cleanup.
func openDurable(t *testing.T, fsys wal.FS, cfg Config) (*System, *RecoveryInfo) {
	t.Helper()
	s, info, err := OpenFS(fsys, durDir, cfg)
	if err != nil {
		t.Fatalf("OpenFS: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, info
}

// ingestSeq runs the scripted sequence on s, returning the encoded snapshot
// after each prefix: states[k] is the published state once k batches are
// acknowledged (states[0] is the empty system).
func ingestSeq(t *testing.T, s *System) [][]byte {
	t.Helper()
	states := [][]byte{snapBytes(s)}
	for i, b := range seqBatches() {
		if _, err := s.Ingest(b); err != nil {
			t.Fatalf("ingest batch %d: %v", i, err)
		}
		states = append(states, snapBytes(s))
	}
	return states
}

func activeSeg(lsn uint64) string {
	return filepath.Join(durDir, fmt.Sprintf("wal-%016x.log", lsn))
}

func requireAnswer(t *testing.T, s *System, q, want string) {
	t.Helper()
	ans := s.Query(q)
	if !ans.Found || len(ans.Values) == 0 || ans.Values[0] != want {
		t.Fatalf("Query(%q) = found=%v values=%v, want %q", q, ans.Found, ans.Values, want)
	}
}

func TestDurableCloseReopen(t *testing.T) {
	fs := wal.NewMemFS()
	s, info := openDurable(t, fs, durTestConfig())
	if info.CheckpointLSN != 0 || info.RecordsReplayed != 0 || info.Truncated {
		t.Fatalf("fresh open reported recovery: %+v", info)
	}
	states := ingestSeq(t, s)
	requireAnswer(t, s, "What is the status of CA981?", "Delayed")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, info2 := openDurable(t, fs, durTestConfig())
	if info2.CheckpointLSN != 3 || info2.RecordsReplayed != 0 || info2.Truncated {
		t.Fatalf("reopen after clean close: %+v, want checkpoint at LSN 3 with empty tail", info2)
	}
	if !bytes.Equal(snapBytes(s2), states[3]) {
		t.Fatal("recovered snapshot differs from the pre-close state")
	}
	requireAnswer(t, s2, "What is the status of CA981?", "Delayed")
	requireAnswer(t, s2, "What is the delay reason of CA981?", "Typhoon")

	// The recovered system keeps committing durably.
	if _, err := s2.Ingest([]adapter.RawFile{{Domain: "flights", Source: "airport-api", Name: "s2", Format: "text",
		Content: []byte("The status of MU551 is Boarding.")}}); err != nil {
		t.Fatalf("post-recovery ingest: %v", err)
	}
	want := snapBytes(s2)
	if err := s2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s3, _ := openDurable(t, fs, durTestConfig())
	if !bytes.Equal(snapBytes(s3), want) {
		t.Fatal("second reopen diverged")
	}
	requireAnswer(t, s3, "What is the status of MU551?", "Boarding")
}

func TestDurableOpenOSFS(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	s, _, err := Open(dir, durTestConfig())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, b := range seqBatches() {
		if _, err := s.Ingest(b); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	want := snapBytes(s)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, info, err := Open(dir, durTestConfig())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if info.CheckpointLSN != 3 || info.RecordsReplayed != 0 {
		t.Fatalf("reopen info = %+v", info)
	}
	if !bytes.Equal(snapBytes(s2), want) {
		t.Fatal("recovered snapshot differs on the real filesystem")
	}
	requireAnswer(t, s2, "What is the status of CA981?", "Delayed")
}

func TestCrashRecoveryReplaysWAL(t *testing.T) {
	fs := wal.NewMemFS()
	s, _ := openDurable(t, fs, durTestConfig())
	states := ingestSeq(t, s)

	// Crash without Close: no checkpoint was ever written, so recovery must
	// rebuild everything from the log alone.
	s2, info := openDurable(t, fs.Crash(nil), durTestConfig())
	if info.CheckpointLSN != 0 || info.RecordsReplayed != 3 || info.Truncated {
		t.Fatalf("crash recovery info = %+v, want 3 records replayed from LSN 0", info)
	}
	if !bytes.Equal(snapBytes(s2), states[3]) {
		t.Fatal("replayed state differs from the pre-crash published snapshot")
	}
	requireAnswer(t, s2, "What is the status of CA981?", "Delayed")
}

func TestWALSyncFailureFailsIngestAndLatches(t *testing.T) {
	fs := wal.NewMemFS()
	var fail atomic.Bool
	injected := errors.New("injected fsync failure")
	fs.OnOp = func(op wal.Op, name string) error {
		if fail.Load() && op == wal.OpSync && strings.HasSuffix(name, ".log") {
			return injected
		}
		return nil
	}
	s, _ := openDurable(t, fs, durTestConfig())
	batches := seqBatches()
	if _, err := s.Ingest(batches[0]); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	pre := snapBytes(s)

	fail.Store(true)
	if _, err := s.Ingest(batches[1]); err == nil || !strings.Contains(err.Error(), "wal") {
		t.Fatalf("ingest with failing fsync: err = %v, want wal append failure", err)
	}
	if !bytes.Equal(snapBytes(s), pre) {
		t.Fatal("failed ingest leaked into the serving snapshot")
	}

	// The log is latched after an I/O error: the on-disk state is unknowable,
	// so retries keep failing until a restart repairs the tail.
	fail.Store(false)
	if _, err := s.Ingest(batches[1]); err == nil {
		t.Fatal("ingest after fsync failure succeeded; the log must latch failed")
	}
	if !bytes.Equal(snapBytes(s), pre) {
		t.Fatal("latched ingest mutated the serving snapshot")
	}

	// Restart: the unacknowledged record's unsynced bytes vanish, the
	// acknowledged prefix survives, and the batch can be re-ingested.
	s2, info := openDurable(t, fs.Crash(nil), durTestConfig())
	if info.RecordsReplayed != 1 || info.Truncated {
		t.Fatalf("recovery info = %+v, want exactly the acknowledged record", info)
	}
	if !bytes.Equal(snapBytes(s2), pre) {
		t.Fatal("recovered state differs from the last acknowledged snapshot")
	}
	if _, err := s2.Ingest(batches[1]); err != nil {
		t.Fatalf("re-ingest after restart: %v", err)
	}
}

func TestTornTailRecovery(t *testing.T) {
	fs := wal.NewMemFS()
	var fail atomic.Bool
	fs.OnOp = func(op wal.Op, name string) error {
		if fail.Load() && op == wal.OpSync && strings.HasSuffix(name, ".log") {
			return errors.New("injected fsync failure")
		}
		return nil
	}
	s, _ := openDurable(t, fs, durTestConfig())
	batches := seqBatches()
	if _, err := s.Ingest(batches[0]); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	want := snapBytes(s)

	// Write-but-no-fsync the next record: its full frame sits in the unsynced
	// tail, modelling a crash at any point during the append.
	fail.Store(true)
	if _, err := s.Ingest(batches[1]); err == nil {
		t.Fatal("ingest with failing fsync succeeded")
	}
	seg := activeSeg(0)
	tail := fs.UnsyncedTail(seg)
	if tail == 0 {
		t.Fatal("no unsynced tail to tear")
	}

	offsets := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, tail / 4, tail / 2, 3 * tail / 4, tail - 2, tail - 1}
	for _, tl := range offsets {
		if tl < 0 || tl >= tail {
			continue
		}
		s2, info := openDurable(t, fs.Crash(map[string]int{seg: tl}), durTestConfig())
		if info.RecordsReplayed != 1 {
			t.Fatalf("tear at %d: replayed %d records, want 1", tl, info.RecordsReplayed)
		}
		if info.Truncated != (tl > 0) {
			t.Fatalf("tear at %d: Truncated = %v", tl, info.Truncated)
		}
		if !bytes.Equal(snapBytes(s2), want) {
			t.Fatalf("tear at %d: recovered state differs from the acknowledged snapshot", tl)
		}
		s2.Close()
	}

	// The whole frame surviving the crash is the legal other outcome: the
	// batch was never acknowledged, but a fully landed record replays.
	s3, info := openDurable(t, fs.Crash(map[string]int{seg: tail}), durTestConfig())
	if info.RecordsReplayed != 2 || info.Truncated {
		t.Fatalf("full-tail recovery info = %+v, want 2 clean records", info)
	}
	if bytes.Equal(snapBytes(s3), want) {
		t.Fatal("fully landed record was not replayed")
	}
}

func TestBitFlipTruncatesAtCorruption(t *testing.T) {
	fs := wal.NewMemFS()
	s, _ := openDurable(t, fs, durTestConfig())
	seg := activeSeg(0)
	var bounds []int // segment size after each acknowledged batch
	states := [][]byte{snapBytes(s)}
	bounds = append(bounds, fs.FileSize(seg))
	for i, b := range seqBatches() {
		if _, err := s.Ingest(b); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
		states = append(states, snapBytes(s))
		bounds = append(bounds, fs.FileSize(seg))
	}

	for rec := 0; rec < 3; rec++ {
		start, end := bounds[rec], bounds[rec+1]
		// One flip in each structural region of the frame: length, CRC,
		// first payload byte, mid-payload, last payload byte.
		for _, off := range []int{start, start + 4, start + 8, (start + end) / 2, end - 1} {
			crash := fs.Crash(nil)
			if err := crash.FlipBit(seg, off); err != nil {
				t.Fatalf("FlipBit(%d): %v", off, err)
			}
			s2, info := openDurable(t, crash, durTestConfig())
			if info.RecordsReplayed != rec || !info.Truncated {
				t.Fatalf("flip in record %d at %d: info = %+v, want point-in-time at record %d",
					rec, off, info, rec)
			}
			if !bytes.Equal(snapBytes(s2), states[rec]) {
				t.Fatalf("flip in record %d at %d: recovered state is not the pre-record snapshot", rec, off)
			}
			s2.Close()
		}
	}
}

func TestCrashMidCheckpoint(t *testing.T) {
	fs := wal.NewMemFS()
	var fail atomic.Bool
	fs.OnOp = func(op wal.Op, name string) error {
		if fail.Load() && op == wal.OpRename && strings.Contains(name, "checkpoint-") {
			return errors.New("injected rename failure")
		}
		return nil
	}
	s, _ := openDurable(t, fs, durTestConfig())
	states := ingestSeq(t, s)

	fail.Store(true)
	if err := s.Checkpoint(); err == nil {
		t.Fatal("checkpoint with failing rename succeeded")
	}
	fail.Store(false)

	// The failed checkpoint rotated the log and left a .tmp body behind, but
	// recovery must ignore both and replay the whole tail.
	s2, info := openDurable(t, fs.Crash(nil), durTestConfig())
	if info.CheckpointLSN != 0 || info.RecordsReplayed != 3 {
		t.Fatalf("recovery after failed checkpoint: %+v, want full replay from LSN 0", info)
	}
	if !bytes.Equal(snapBytes(s2), states[3]) {
		t.Fatal("state after failed checkpoint diverged")
	}

	// A retried checkpoint (thresholds persist, Close retries) succeeds and
	// later recovery uses it.
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint retry: %v", err)
	}
	s3, info3 := openDurable(t, fs.Crash(nil), durTestConfig())
	if info3.CheckpointLSN != 3 || info3.RecordsReplayed != 0 {
		t.Fatalf("recovery after retried checkpoint: %+v", info3)
	}
	if !bytes.Equal(snapBytes(s3), states[3]) {
		t.Fatal("state after retried checkpoint diverged")
	}
}

func TestCheckpointAfterMoreCommits(t *testing.T) {
	fs := wal.NewMemFS()
	s, _ := openDurable(t, fs, durTestConfig())
	states := ingestSeq(t, s)
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if _, err := s.Ingest([]adapter.RawFile{{Domain: "flights", Source: "airport-api", Name: "late", Format: "text",
		Content: []byte("The status of MU551 is Boarding.")}}); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	want := snapBytes(s)
	if bytes.Equal(want, states[3]) {
		t.Fatal("post-checkpoint ingest did not change the snapshot")
	}

	s2, info := openDurable(t, fs.Crash(nil), durTestConfig())
	if info.CheckpointLSN != 3 || info.RecordsReplayed != 1 {
		t.Fatalf("recovery info = %+v, want checkpoint at 3 plus one tail record", info)
	}
	if !bytes.Equal(snapBytes(s2), want) {
		t.Fatal("checkpoint + tail replay diverged from the pre-crash state")
	}
}

func TestBackgroundCheckpointThresholdPrunes(t *testing.T) {
	fs := wal.NewMemFS()
	cfg := durTestConfig()
	cfg.CheckpointRecords = 2
	s, _ := openDurable(t, fs, cfg)
	states := ingestSeq(t, s)

	// The third commit crossed the record threshold; the background
	// checkpointer runs asynchronously, so poll for its artifact.
	deadline := time.Now().Add(5 * time.Second)
	for {
		names, err := fs.ReadDir(durDir)
		if err != nil {
			t.Fatalf("ReadDir: %v", err)
		}
		found := false
		for _, n := range names {
			if strings.HasPrefix(n, "checkpoint-") && strings.HasSuffix(n, ".ckpt") {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background checkpointer never wrote a checkpoint; dir = %v", names)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// After Close the directory holds the final checkpoint covering every
	// record, the newest older checkpoint (the media-corruption fallback —
	// see wal.RemoveBelow) with the segments to replay forward from it, and
	// the empty active segment. Everything unreachable from both recovery
	// points is pruned.
	names, err := fs.ReadDir(durDir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var ckpts, segs []string
	for _, n := range names {
		switch {
		case strings.HasSuffix(n, ".ckpt"):
			ckpts = append(ckpts, n)
		case strings.HasSuffix(n, ".log"):
			segs = append(segs, n)
		}
	}
	if len(ckpts) != 2 || ckpts[1] != "checkpoint-0000000000000003.ckpt" ||
		ckpts[0] != "checkpoint-0000000000000002.ckpt" {
		t.Fatalf("checkpoints after close = %v, want checkpoint-…2 (fallback) and checkpoint-…3", ckpts)
	}
	if len(segs) != 2 || segs[0] != "wal-0000000000000002.log" || segs[1] != "wal-0000000000000003.log" {
		t.Fatalf("segments after close = %v, want the fallback tail and the empty active segment", segs)
	}

	s2, info := openDurable(t, fs, cfg)
	if info.CheckpointLSN != 3 || info.RecordsReplayed != 0 {
		t.Fatalf("reopen info = %+v", info)
	}
	if !bytes.Equal(snapBytes(s2), states[3]) {
		t.Fatal("pruned-log recovery diverged")
	}
}

func TestConcurrentDurableIngestRecovers(t *testing.T) {
	fs := wal.NewMemFS()
	s, _ := openDurable(t, fs, durTestConfig())
	const producers = 4
	const perProducer = 3
	var wg sync.WaitGroup
	errs := make([]error, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				f := adapter.RawFile{Domain: "flights", Source: "airport-api",
					Name: fmt.Sprintf("p%d-%d", p, i), Format: "text",
					Content: []byte(fmt.Sprintf("The status of FL%d%d1 is Scheduled.", p, i))}
				if _, err := s.Ingest([]adapter.RawFile{f}); err != nil {
					errs[p] = err
					return
				}
			}
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("producer %d: %v", p, err)
		}
	}
	want := snapBytes(s)

	s2, info := openDurable(t, fs.Crash(nil), durTestConfig())
	if info.RecordsReplayed == 0 {
		t.Fatal("no WAL records to replay after concurrent ingest")
	}
	if !bytes.Equal(snapBytes(s2), want) {
		t.Fatal("recovered state differs from the pre-crash snapshot after concurrent ingest")
	}
	requireAnswer(t, s2, "What is the status of FL001?", "Scheduled")
}
