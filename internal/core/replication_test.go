package core

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"multirag/internal/adapter"
	"multirag/internal/wal"
)

// recSink collects shipped records — the test double for the cluster feed.
type recSink struct {
	mu   sync.Mutex
	lsns []uint64
	recs [][]byte
	last SnapshotHandle
}

func (r *recSink) ShipRecord(lsn uint64, payload []byte, after SnapshotHandle) {
	r.mu.Lock()
	r.lsns = append(r.lsns, lsn)
	r.recs = append(r.recs, payload)
	r.last = after
	r.mu.Unlock()
}

// TestReplicationShipByteIdentical pins the replication invariant: a replica
// seeded from the attach-time handle and fed every shipped record through
// ReplicaApply holds a snapshot byte-identical to the primary's after each
// position, with matching positions and digests.
func TestReplicationShipByteIdentical(t *testing.T) {
	primary := NewSystem(durTestConfig())
	sink := &recSink{}
	handle, lsn, err := primary.AttachReplication(sink)
	if err != nil {
		t.Fatalf("AttachReplication: %v", err)
	}
	if lsn != 0 {
		t.Fatalf("attach position = %d, want 0", lsn)
	}

	replica := NewSystem(primary.Config())
	if err := replica.SeedReplica(handle.Encode(), lsn); err != nil {
		t.Fatalf("SeedReplica: %v", err)
	}

	var wantStates [][]byte
	for i, b := range seqBatches() {
		if _, err := primary.Ingest(b); err != nil {
			t.Fatalf("ingest batch %d: %v", i, err)
		}
		wantStates = append(wantStates, snapBytes(primary))
	}
	if len(sink.recs) != 3 {
		t.Fatalf("shipped %d records, want 3", len(sink.recs))
	}
	for i, rec := range sink.recs {
		if sink.lsns[i] != uint64(i) {
			t.Fatalf("record %d shipped with LSN %d", i, sink.lsns[i])
		}
		if err := replica.ReplicaApply(rec); err != nil {
			t.Fatalf("ReplicaApply record %d: %v", i, err)
		}
		if !bytes.Equal(snapBytes(replica), wantStates[i]) {
			t.Fatalf("replica state diverged after record %d", i)
		}
	}
	if got, want := replica.ReplicationLSN(), primary.ReplicationLSN(); got != want {
		t.Fatalf("replica position %d, primary %d", got, want)
	}
	if replica.SnapshotDigest() != primary.SnapshotDigest() {
		t.Fatal("anti-entropy digests differ on byte-identical snapshots")
	}
	if sink.last.Digest() != primary.SnapshotDigest() {
		t.Fatal("shipped handle digest differs from the primary's serving digest")
	}
}

// TestReplicationAttachMidStreamMissesNothing pins the atomic capture: a sink
// attached after commits have already happened sees a (handle, position) pair
// with no gap before the first shipped record.
func TestReplicationAttachMidStreamMissesNothing(t *testing.T) {
	primary := NewSystem(durTestConfig())
	batches := seqBatches()
	if _, err := primary.Ingest(batches[0]); err != nil {
		t.Fatalf("ingest: %v", err)
	}

	sink := &recSink{}
	handle, lsn, err := primary.AttachReplication(sink)
	if err != nil {
		t.Fatalf("AttachReplication: %v", err)
	}
	if lsn != 1 {
		t.Fatalf("attach position = %d, want 1", lsn)
	}
	replica := NewSystem(primary.Config())
	if err := replica.SeedReplica(handle.Encode(), lsn); err != nil {
		t.Fatalf("SeedReplica: %v", err)
	}

	for _, b := range batches[1:] {
		if _, err := primary.Ingest(b); err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}
	if len(sink.recs) != 2 || sink.lsns[0] != 1 {
		t.Fatalf("shipped %d records from LSN %v, want 2 from 1", len(sink.recs), sink.lsns)
	}
	for _, rec := range sink.recs {
		if err := replica.ReplicaApply(rec); err != nil {
			t.Fatalf("ReplicaApply: %v", err)
		}
	}
	if !bytes.Equal(snapBytes(replica), snapBytes(primary)) {
		t.Fatal("mid-stream-attached replica diverged from primary")
	}
	primary.DetachReplication()
	if _, _, err := primary.AttachReplication(sink); err != nil {
		t.Fatalf("re-attach after detach: %v", err)
	}
}

// TestReplicationDurablePrimaryShipsWALPositions pins that on a durable
// primary the shipped positions are exactly the WAL LSNs, so feed leases and
// segment pruning speak the same coordinate system.
func TestReplicationDurablePrimaryShipsWALPositions(t *testing.T) {
	fs := wal.NewMemFS()
	s, _ := openDurable(t, fs, durTestConfig())
	sink := &recSink{}
	if _, _, err := s.AttachReplication(sink); err != nil {
		t.Fatalf("AttachReplication: %v", err)
	}
	ingestSeq(t, s)
	st := s.DurabilityStatus()
	if len(sink.lsns) != 3 || sink.lsns[2] != st.NextLSN-1 {
		t.Fatalf("shipped LSNs %v, WAL next LSN %d", sink.lsns, st.NextLSN)
	}

	// The shipped payloads are the WAL records themselves: a fresh in-memory
	// replica replaying them matches the durable primary byte for byte.
	replica := NewSystem(s.Config())
	for _, rec := range sink.recs {
		if err := replica.ReplicaApply(rec); err != nil {
			t.Fatalf("ReplicaApply: %v", err)
		}
	}
	if !bytes.Equal(snapBytes(replica), snapBytes(s)) {
		t.Fatal("replica of durable primary diverged")
	}
}

// TestCheckpointFallbackOnCorruptNewest is the satellite crash-matrix case:
// media corruption destroys the newest checkpoint after pruning has run, and
// recovery falls back to the retained older checkpoint with a longer WAL
// replay instead of failing — possible only because RemoveBelow keeps the
// fallback checkpoint and its forward tail.
func TestCheckpointFallbackOnCorruptNewest(t *testing.T) {
	fs := wal.NewMemFS()
	s, _ := openDurable(t, fs, durTestConfig())
	ingestSeq(t, s)
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if _, err := s.Ingest([]adapter.RawFile{{Domain: "flights", Source: "airport-api", Name: "late", Format: "text",
		Content: []byte("The status of MU551 is Boarding.")}}); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("second Checkpoint: %v", err)
	}
	want := snapBytes(s)

	// Flip one body bit of the newest checkpoint (LSN 4). Its CRC now fails.
	newest := filepath.Join(durDir, fmt.Sprintf("checkpoint-%016x.ckpt", 4))
	if err := fs.FlipBit(newest, 64); err != nil {
		t.Fatalf("FlipBit(%s): %v", newest, err)
	}

	s2, info := openDurable(t, fs.Crash(nil), durTestConfig())
	if info.CheckpointLSN != 3 || info.RecordsReplayed != 1 {
		t.Fatalf("fallback recovery info = %+v, want checkpoint 3 + 1 replayed record", info)
	}
	if !bytes.Equal(snapBytes(s2), want) {
		t.Fatal("fallback recovery diverged from the pre-corruption state")
	}
	requireAnswer(t, s2, "What is the status of MU551?", "Boarding")
}

// TestWALLeasePreservesLaggingFeedTail is the satellite retention-lease case:
// while a replication feed still holds a lease at an old position, checkpoint
// pruning keeps every segment from that position on, so the lagging replica
// can always replay forward; once the lease advances and releases, the next
// checkpoint prunes normally.
func TestWALLeasePreservesLaggingFeedTail(t *testing.T) {
	fs := wal.NewMemFS()
	s, _ := openDurable(t, fs, durTestConfig())
	lease := s.AcquireWALLease(0)
	ingestSeq(t, s)
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	// The whole log from position 0 must still be replayable.
	sr, err := wal.Scan(fs, durDir, 0)
	if err != nil {
		t.Fatalf("Scan from leased floor: %v", err)
	}
	if len(sr.Records) != 3 {
		t.Fatalf("leased scan found %d records, want 3", len(sr.Records))
	}

	// Catch the feed up and release; the next checkpoint cycle prunes the
	// now-unleased history (down to the fallback checkpoint's tail).
	lease.Advance(s.ReplicationLSN())
	lease.Release()
	if _, err := s.Ingest([]adapter.RawFile{{Domain: "flights", Source: "airport-api", Name: "late", Format: "text",
		Content: []byte("The status of MU551 is Boarding.")}}); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	names, err := fs.ReadDir(durDir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, n := range names {
		if n == "wal-0000000000000000.log" {
			t.Fatalf("pre-fallback segment survived after the lease was released: %v", names)
		}
	}
}
