package core

import (
	"strings"
	"testing"

	"multirag/internal/adapter"
	"multirag/internal/confidence"
	"multirag/internal/datasets"
	"multirag/internal/eval"
	"multirag/internal/kg"
	"multirag/internal/llm"
)

// caseStudyFiles builds the Table V multi-format corpus: structured flight
// rows, semi-structured airline JSON, unstructured weather text, and a
// conflicting forum claim.
func caseStudyFiles() []adapter.RawFile {
	return []adapter.RawFile{
		{Domain: "flights", Source: "airport-api", Name: "schedule", Format: "csv",
			Content: []byte("flight,origin,destination,status\nCA981,PEK,JFK,Delayed\n")},
		{Domain: "flights", Source: "airline-app", Name: "live", Format: "json",
			Content: []byte(`[{"flight":"CA981","status":"Delayed","delay_reason":"Typhoon"}]`)},
		{Domain: "flights", Source: "weather-feed", Name: "alerts", Format: "text",
			Content: []byte("The status of CA981 is Delayed. The delay reason of CA981 is Typhoon.")},
		{Domain: "flights", Source: "forum-user", Name: "posts", Format: "text",
			Content: []byte("The status of CA981 is On time.")},
	}
}

func newCaseStudySystem(t *testing.T, cfg Config) *System {
	t.Helper()
	if cfg.LLM == (llm.Config{}) {
		cfg.LLM = llm.Config{Seed: 1, ExtractionNoise: 0, BaseHallucination: 0.02, ConflictSensitivity: 0.6}
	}
	s := NewSystem(cfg)
	if _, err := s.Ingest(caseStudyFiles()); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	return s
}

func TestIngestBuildsEverything(t *testing.T) {
	s := newCaseStudySystem(t, Config{})
	rep, err := s.Ingest(nil)
	if err != nil {
		t.Fatalf("re-ingest: %v", err)
	}
	_ = rep
	if s.Graph().NumTriples() == 0 {
		t.Fatal("graph empty after ingest")
	}
	if s.SG() == nil {
		t.Fatal("line graph not built")
	}
	if s.Index().Len() == 0 {
		t.Fatal("chunk index empty")
	}
	real, llmLat := s.BuildCost()
	if real <= 0 || llmLat <= 0 {
		t.Fatalf("build cost not recorded: %v %v", real, llmLat)
	}
}

func TestCaseStudyQuery(t *testing.T) {
	// Table V: the conflicting forum claim must be suppressed and the
	// trusted answer must be "Delayed".
	s := newCaseStudySystem(t, Config{})
	ans := s.Query("What is the status of CA981?")
	if !ans.Found {
		t.Fatal("answer not found")
	}
	if len(ans.Values) != 1 || kg.CanonicalID(ans.Values[0]) != "delayed" {
		t.Fatalf("values = %v, want [Delayed]", ans.Values)
	}
	if ans.RejectedCount == 0 {
		t.Fatal("the forum claim should have been rejected")
	}
	for _, tn := range ans.Trusted {
		if tn.Triple.Source == "forum-user" {
			t.Fatal("forum claim leaked into trusted set")
		}
	}
	if len(ans.Stages) != 3 {
		t.Fatalf("stage snapshots = %d, want 3", len(ans.Stages))
	}
	if len(ans.Stages[0].Values) <= len(ans.Stages[2].Values) {
		t.Fatal("filtering must shrink the candidate set")
	}
}

func TestQueryDelayReason(t *testing.T) {
	s := newCaseStudySystem(t, Config{})
	ans := s.Query("What is the delay reason of CA981?")
	if !ans.Found || len(ans.Values) == 0 {
		t.Fatalf("delay reason not answered: %+v", ans)
	}
	if kg.CanonicalID(ans.Values[0]) != "typhoon" {
		t.Fatalf("values = %v, want Typhoon", ans.Values)
	}
}

func TestQueryUnknownEntity(t *testing.T) {
	s := newCaseStudySystem(t, Config{})
	ans := s.Query("What is the status of ZZ999?")
	if ans.Found && len(ans.Values) > 0 {
		// The fallback may legitimately find nothing; it must not fabricate
		// the known flight's status for an unknown flight.
		for _, v := range ans.Values {
			if kg.CanonicalID(v) == "delayed" {
				t.Fatalf("fabricated answer for unknown entity: %v", ans.Values)
			}
		}
	}
}

func TestQueryWithoutMKAUsesChunks(t *testing.T) {
	s := newCaseStudySystem(t, Config{DisableMKA: true,
		LLM: llm.Config{Seed: 1, ExtractionNoise: 0, BaseHallucination: 0.02, ConflictSensitivity: 0.6}})
	if s.SG() != nil {
		t.Fatal("w/o MKA must not build the line graph")
	}
	before := s.Model().Usage().Calls
	ans := s.Query("What is the status of CA981?")
	after := s.Model().Usage().Calls
	if !ans.Found {
		t.Fatalf("chunk fallback failed: %+v", ans)
	}
	// The chunk path must pay per-query extraction calls.
	if after-before < 5 {
		t.Fatalf("w/o MKA should make many LLM calls per query, made %d", after-before)
	}
}

func TestAblationWithoutMCCLeaksConflict(t *testing.T) {
	// Across many paraphrased queries, w/o MCC must hallucinate more often
	// than the full system.
	full := newCaseStudySystem(t, Config{})
	bare := newCaseStudySystem(t, Config{
		Ablation: confidence.Options{DisableGraphLevel: true, DisableNodeLevel: true},
	})
	wrongFull, wrongBare := 0, 0
	queries := []string{
		"What is the status of CA981?",
		"What is the real-time status of CA981?",
	}
	for i := 0; i < 30; i++ {
		q := queries[i%2] + strings.Repeat(" ", i/2) // vary the hallucination coin
		if a := full.Query(q); len(a.Values) == 0 || kg.CanonicalID(a.Values[0]) != "delayed" {
			wrongFull++
		}
		if a := bare.Query(q); len(a.Values) == 0 || kg.CanonicalID(a.Values[0]) != "delayed" {
			wrongBare++
		}
	}
	if wrongFull >= wrongBare {
		t.Fatalf("full MCC (%d wrong) must beat w/o MCC (%d wrong)", wrongFull, wrongBare)
	}
}

func TestMultiHopQuery(t *testing.T) {
	files := []adapter.RawFile{
		{Domain: "wiki", Source: "wiki", Name: "doc1", Format: "text",
			Content: []byte("The director of The Hidden Monument is Keiko Tanaka.")},
		{Domain: "wiki", Source: "wiki", Name: "doc2", Format: "text",
			Content: []byte("The birthplace of Keiko Tanaka is Tokyo.")},
	}
	s := NewSystem(Config{LLM: llm.Config{Seed: 1, ExtractionNoise: 0}})
	if _, err := s.Ingest(files); err != nil {
		t.Fatal(err)
	}
	ans := s.Query("What is the birthplace of the director of The Hidden Monument?")
	if !ans.Found {
		t.Fatalf("multi-hop failed: %+v", ans)
	}
	if len(ans.Values) == 0 || kg.CanonicalID(ans.Values[0]) != "tokyo" {
		t.Fatalf("values = %v, want Tokyo", ans.Values)
	}
}

func TestComparisonQuery(t *testing.T) {
	files := []adapter.RawFile{
		{Domain: "wiki", Source: "wiki", Name: "d1", Format: "text",
			Content: []byte("The genre of The Crimson Harbor is noir. The genre of The Silent Garden is noir. The genre of The Golden Voyage is comedy.")},
	}
	s := NewSystem(Config{LLM: llm.Config{Seed: 1, ExtractionNoise: 0}})
	if _, err := s.Ingest(files); err != nil {
		t.Fatal(err)
	}
	same := s.Query("Do The Crimson Harbor and The Silent Garden have the same genre?")
	if !same.Found || len(same.Values) != 1 || same.Values[0] != "yes" {
		t.Fatalf("same-genre comparison = %+v", same.Values)
	}
	diff := s.Query("Do The Crimson Harbor and The Golden Voyage have the same genre?")
	if !diff.Found || diff.Values[0] != "no" {
		t.Fatalf("diff-genre comparison = %+v", diff.Values)
	}
}

func TestEndToEndFusionF1(t *testing.T) {
	// The full pipeline over a small generated dataset must answer most
	// queries correctly — the substance behind Table II's MCC column.
	spec := datasets.Movies(11)
	spec.Entities = 40
	spec.Queries = 30
	d := datasets.MustGenerate(spec)
	s := NewSystem(Config{})
	if _, err := s.Ingest(d.Files); err != nil {
		t.Fatal(err)
	}
	var f1 eval.Mean
	for _, q := range d.Queries {
		ans := s.Query(q.Text)
		_, _, f := eval.PRF1(ans.Values, q.Gold)
		f1.Add(f)
	}
	if f1.Value() < 0.45 {
		t.Fatalf("end-to-end F1 = %.3f; pipeline is not recovering the truth", f1.Value())
	}
}

func TestRetrieveDocs(t *testing.T) {
	s := newCaseStudySystem(t, Config{})
	docs := s.RetrieveDocs("What is the status of CA981?", 5)
	if len(docs) == 0 {
		t.Fatal("no docs retrieved")
	}
	seen := map[string]bool{}
	for _, d := range docs {
		if seen[d] {
			t.Fatalf("duplicate doc %s", d)
		}
		seen[d] = true
	}
}

func TestRebuildSGAfterMutation(t *testing.T) {
	s := newCaseStudySystem(t, Config{})
	before := s.SG().ComputeStats()
	// Remove one triple and rebuild.
	ids := s.Graph().TripleIDs()
	s.Graph().RemoveTriple(ids[0])
	s.RebuildSG()
	after := s.SG().ComputeStats()
	if before == after {
		t.Fatal("RebuildSG must reflect graph mutation")
	}
}
