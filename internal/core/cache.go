package core

import (
	"sync"

	"multirag/internal/confidence"
	"multirag/internal/retrieval"
)

// This file holds the per-query evaluation caches. Both are deterministic
// (no dependence on timing or map iteration order; eviction is
// flush-on-overflow rather than LRU), but they differ in strength: the
// embedding cache is fully transparent — embeddings are pure functions of
// the text, so hits are bit-identical to recomputation — while an
// answer-cache hit skips the whole evaluation, including MCC's online
// source-history update, so later *different* queries can see slightly
// different confidence values than an uncached run would produce (the same
// mild order-dependence concurrent queries already have; see DESIGN.md
// "Costs accepted"). That, plus the skipped LLM usage accounting, is why
// the answer cache is opt-in.

// embedCacheLimit bounds the query-embedding cache. Embeddings are pure
// functions of (text, dim), so entries never invalidate; the bound only caps
// memory under adversarial query diversity.
const embedCacheLimit = 4096

// embedCache memoises query embeddings. One user query can trigger several
// sub-searches over the same text (multi-hop bridging questions, comparison
// legs, the doc-ranking fill in QueryWithDocs), and benchmark workloads
// repeat query strings; each distinct string is hashed into a vector exactly
// once. The read path is guarded by an RWMutex so concurrent queries hitting
// warm entries share the lock, and the expensive Embed runs outside any lock
// — a racing double-compute produces the identical vector, which is cheaper
// than serialising the hot path.
type embedCache struct {
	dim int
	mu  sync.RWMutex
	m   map[string]retrieval.Vector
}

func newEmbedCache(dim int) *embedCache {
	return &embedCache{dim: dim, m: make(map[string]retrieval.Vector)}
}

// get returns the embedding for q, computing and caching it on first use.
// Cached vectors are immutable by contract: every consumer only reads them.
func (c *embedCache) get(q string) retrieval.Vector {
	c.mu.RLock()
	v, ok := c.m[q]
	c.mu.RUnlock()
	if ok {
		return v
	}
	v = retrieval.Embed(q, c.dim)
	c.mu.Lock()
	if len(c.m) >= embedCacheLimit {
		c.m = make(map[string]retrieval.Vector)
	}
	c.m[q] = v
	c.mu.Unlock()
	return v
}

// answerCache memoises whole query evaluations, keyed by query string and
// stamped with the snapshot generation that produced them. A snapshot swap
// (ingest commit or SG rebuild) bumps the generation, so the first lookup
// against the new snapshot flushes every stale entry — cached answers can
// never outlive the corpus state they were computed from. max <= 0 disables
// the cache entirely (the default: cached hits bypass the simulated-LLM
// usage accounting and the source-history updates described in the file
// header, which the benchmark tables meter).
type answerCache struct {
	max int
	mu  sync.Mutex
	gen uint64
	m   map[string]Answer
}

func newAnswerCache(max int) *answerCache { return &answerCache{max: max} }

// cloneAnswer deep-copies an Answer's slices, so the cache never shares
// backing arrays with callers: Ask hands answers to arbitrary user code,
// and a caller sorting or overwriting ans.Values must not poison the cached
// copy (or race with other readers of it).
func cloneAnswer(a Answer) Answer {
	a.LogicForm.Entities = append([]string(nil), a.LogicForm.Entities...)
	a.LogicForm.Relations = append([]string(nil), a.LogicForm.Relations...)
	a.Values = append([]string(nil), a.Values...)
	a.Trusted = append([]confidence.TrustedNode(nil), a.Trusted...)
	a.GraphConfidences = append([]float64(nil), a.GraphConfidences...)
	stages := append([]StageSnapshot(nil), a.Stages...)
	for i := range stages {
		stages[i].Values = append([]string(nil), stages[i].Values...)
	}
	a.Stages = stages
	return a
}

// get returns the cached answer for q computed against snapshot generation
// gen, if one exists. The result is a private copy (see cloneAnswer).
func (c *answerCache) get(gen uint64, q string) (Answer, bool) {
	if c.max <= 0 {
		return Answer{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		if gen < c.gen {
			// A query still running against an already-replaced snapshot:
			// serve it uncached rather than resurrect flushed state.
			return Answer{}, false
		}
		c.m, c.gen = nil, gen
		return Answer{}, false
	}
	a, ok := c.m[q]
	if !ok {
		return Answer{}, false
	}
	return cloneAnswer(a), true
}

// put records the answer for q computed against snapshot generation gen,
// storing a private copy so later caller mutations cannot reach it.
func (c *answerCache) put(gen uint64, q string, a Answer) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		if gen < c.gen {
			return // stale snapshot; never poison the newer generation
		}
		c.m, c.gen = nil, gen
	}
	if c.m == nil {
		c.m = make(map[string]Answer, c.max)
	}
	if len(c.m) >= c.max {
		// Flush-on-overflow keeps eviction deterministic (no dependence on
		// map iteration order) at the cost of refilling after a burst of
		// distinct queries.
		c.m = make(map[string]Answer, c.max)
	}
	c.m[q] = cloneAnswer(a)
}

// size reports the current entry count (test hook).
func (c *answerCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
