package core

import (
	"sync"

	"multirag/internal/confidence"
	"multirag/internal/retrieval"
)

// This file holds the per-query evaluation caches. All are deterministic
// (no dependence on timing or map iteration order; eviction is
// flush-on-overflow rather than LRU), but they differ in strength: the
// embedding cache and the evidence memo are fully transparent — embeddings
// are pure functions of the text, and the memo stores only
// history-independent evaluations whose deferred history credits are
// replayed on every hit — while an answer-cache hit skips the whole
// evaluation, including MCC's online source-history update, so later
// *different* queries can see slightly different confidence values than an
// uncached run would produce (the same mild order-dependence concurrent
// queries already have; see DESIGN.md "Costs accepted"). That, plus the
// skipped LLM usage accounting, is why the answer cache is opt-in while the
// other two are always on.

// embedCacheLimit bounds the query-embedding cache. Embeddings are pure
// functions of (text, dim), so entries never invalidate; the bound only caps
// memory under adversarial query diversity.
const embedCacheLimit = 4096

// embedCache memoises query embeddings. One user query can trigger several
// sub-searches over the same text (multi-hop bridging questions, comparison
// legs, the doc-ranking fill in QueryWithDocs), and benchmark workloads
// repeat query strings; each distinct string is hashed into a vector exactly
// once. The read path is guarded by an RWMutex so concurrent queries hitting
// warm entries share the lock, and the expensive Embed runs outside any lock
// — a racing double-compute produces the identical vector, which is cheaper
// than serialising the hot path.
type embedCache struct {
	dim int
	mu  sync.RWMutex
	m   map[string]retrieval.Vector
}

func newEmbedCache(dim int) *embedCache {
	return &embedCache{dim: dim, m: make(map[string]retrieval.Vector)}
}

// get returns the embedding for q, computing and caching it on first use.
// Cached vectors are immutable by contract: every consumer only reads them.
func (c *embedCache) get(q string) retrieval.Vector {
	c.mu.RLock()
	v, ok := c.m[q]
	c.mu.RUnlock()
	if ok {
		return v
	}
	v = retrieval.Embed(q, c.dim)
	c.mu.Lock()
	if len(c.m) >= embedCacheLimit {
		c.m = make(map[string]retrieval.Vector)
	}
	c.m[q] = v
	c.mu.Unlock()
	return v
}

// answerCache memoises whole query evaluations, keyed by query string and
// stamped with the snapshot generation that produced them. A snapshot swap
// (ingest commit or SG rebuild) bumps the generation, so the first lookup
// against the new snapshot flushes every stale entry — cached answers can
// never outlive the corpus state they were computed from. max <= 0 disables
// the cache entirely (the default: cached hits bypass the simulated-LLM
// usage accounting and the source-history updates described in the file
// header, which the benchmark tables meter).
type answerCache struct {
	max int
	mu  sync.Mutex
	gen uint64
	m   map[string]Answer
}

func newAnswerCache(max int) *answerCache { return &answerCache{max: max} }

// cloneAnswer deep-copies an Answer's slices, so the cache never shares
// backing arrays with callers: Ask hands answers to arbitrary user code,
// and a caller sorting or overwriting ans.Values must not poison the cached
// copy (or race with other readers of it).
func cloneAnswer(a Answer) Answer {
	a.LogicForm.Entities = append([]string(nil), a.LogicForm.Entities...)
	a.LogicForm.Relations = append([]string(nil), a.LogicForm.Relations...)
	a.Values = append([]string(nil), a.Values...)
	a.Trusted = append([]confidence.TrustedNode(nil), a.Trusted...)
	a.GraphConfidences = append([]float64(nil), a.GraphConfidences...)
	stages := append([]StageSnapshot(nil), a.Stages...)
	for i := range stages {
		stages[i].Values = append([]string(nil), stages[i].Values...)
	}
	a.Stages = stages
	return a
}

// get returns the cached answer for q computed against snapshot generation
// gen, if one exists. The result is a private copy (see cloneAnswer).
func (c *answerCache) get(gen uint64, q string) (Answer, bool) {
	if c.max <= 0 {
		return Answer{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		if gen < c.gen {
			// A query still running against an already-replaced snapshot:
			// serve it uncached rather than resurrect flushed state.
			return Answer{}, false
		}
		c.m, c.gen = nil, gen
		return Answer{}, false
	}
	a, ok := c.m[q]
	if !ok {
		return Answer{}, false
	}
	return cloneAnswer(a), true
}

// put records the answer for q computed against snapshot generation gen,
// storing a private copy so later caller mutations cannot reach it.
func (c *answerCache) put(gen uint64, q string, a Answer) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		if gen < c.gen {
			return // stale snapshot; never poison the newer generation
		}
		c.m, c.gen = nil, gen
	}
	if c.m == nil {
		c.m = make(map[string]Answer, c.max)
	}
	if len(c.m) >= c.max {
		// Flush-on-overflow keeps eviction deterministic (no dependence on
		// map iteration order) at the cost of refilling after a burst of
		// distinct queries.
		c.m = make(map[string]Answer, c.max)
	}
	c.m[q] = cloneAnswer(a)
}

// size reports the current entry count (test hook).
func (c *answerCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// evidenceMemoLimit bounds the evidence memo; like the other caches it
// flushes wholesale on overflow so eviction stays deterministic.
const evidenceMemoLimit = 8192

// evidenceMemo memoises gatherEvidence outcomes per (entity, relation) key,
// generation-stamped exactly like the answer cache so a snapshot publish
// flushes every entry. Unlike the answer cache it is on by default, because
// its hits are exact: only history-INDEPENDENT evaluations are stored (the
// homologous fast-path/graph-eliminated outcomes, never node-level scoring,
// isolated authority or the chunk path), and each hit replays the stored
// HistoryDelta, reproducing precisely the source-history evolution an
// uncached re-evaluation would have caused. Answers are therefore
// bit-identical with the memo on or off — the query bench asserts this. What
// a hit saves is the candidate lookup, member resolution, graph-confidence
// recomputation and one Standardize call per repeated fan-out sub-question.
type evidenceMemo struct {
	disabled bool
	mu       sync.Mutex
	gen      uint64
	m        map[string]evidenceEntry
}

// evidenceEntry pairs a memoised evidence set with the deferred history
// credits its evaluation produced. The delta is immutable once stored and is
// shared by reference. The ev/trusted/gcs slices are shared too: consumers
// only read them or append their *elements* into answer slices, never write
// through them (the evidence immutability contract), so hits cost no copy.
// Only stages need cloning — answerLookup hands them wholesale to the
// caller-mutable Answer (see cloneStages).
type evidenceEntry struct {
	e evidence
	d *confidence.HistoryDelta
}

func newEvidenceMemo(disabled bool) *evidenceMemo { return &evidenceMemo{disabled: disabled} }

func evidenceKey(entity, relation string) string { return entity + "\x00" + relation }

// cloneStages deep-copies the stage snapshots, the one evidence field that
// escapes by reference into caller-owned Answers (mirror of cloneAnswer's
// stage handling). Hop and comparison arms discard stages, so their memo
// hits — the hot case — pay nothing here beyond the header copy.
func cloneStages(e evidence) evidence {
	stages := append([]StageSnapshot(nil), e.stages...)
	for i := range stages {
		stages[i].Values = append([]string(nil), stages[i].Values...)
	}
	e.stages = stages
	return e
}

// get returns the memoised evidence for (entity, relation) against snapshot
// generation gen, with the history delta the caller must Apply (the hit-side
// replay that keeps the memo exact).
func (c *evidenceMemo) get(gen uint64, entity, relation string) (evidence, *confidence.HistoryDelta, bool) {
	if c.disabled {
		return evidence{}, nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		if gen < c.gen {
			return evidence{}, nil, false // query against an already-replaced snapshot
		}
		c.m, c.gen = nil, gen
		return evidence{}, nil, false
	}
	ent, ok := c.m[evidenceKey(entity, relation)]
	if !ok {
		return evidence{}, nil, false
	}
	return cloneStages(ent.e), ent.d, true
}

// put records one evaluation. Callers only pass history-independent results
// (evidence.memoable); the stored copy is private.
func (c *evidenceMemo) put(gen uint64, entity, relation string, e evidence, d *confidence.HistoryDelta) {
	if c.disabled {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		if gen < c.gen {
			return // stale snapshot; never poison the newer generation
		}
		c.m, c.gen = nil, gen
	}
	if c.m == nil {
		c.m = make(map[string]evidenceEntry)
	}
	if len(c.m) >= evidenceMemoLimit {
		c.m = make(map[string]evidenceEntry)
	}
	c.m[evidenceKey(entity, relation)] = evidenceEntry{e: cloneStages(e), d: d}
}

// size reports the current entry count (test hook).
func (c *evidenceMemo) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
