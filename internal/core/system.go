// Package core implements the MultiRAG pipeline itself: the MKLGP algorithm
// (Algorithm 2) orchestrating logic-form generation, multi-document
// extraction, multi-source line-graph construction, multi-level confidence
// computing and trustworthy answer generation, plus the ablation switches
// behind Table III.
package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"multirag/internal/adapter"
	"multirag/internal/confidence"
	"multirag/internal/extract"
	"multirag/internal/fault"
	"multirag/internal/kg"
	"multirag/internal/linegraph"
	"multirag/internal/llm"
	"multirag/internal/par"
	"multirag/internal/retrieval"
)

// Config assembles a MultiRAG system.
type Config struct {
	// LLM configures the simulated model. Zero value = llm.DefaultConfig().
	LLM llm.Config
	// MCC configures confidence computing. Zero value = paper defaults.
	MCC confidence.Config
	// Ablation toggles the confidence stages (Table III's "w/o Graph
	// Level", "w/o Node Level", both = "w/o MCC").
	Ablation confidence.Options
	// DisableMKA removes multi-source knowledge aggregation (Table III's
	// "w/o MKA"): no line graph is built and every query falls back to
	// chunk retrieval plus per-query LLM extraction.
	DisableMKA bool
	// ChunkTokens is the chunk budget for the retrieval index (default 64).
	ChunkTokens int
	// RetrievalK is how many chunks the fallback / multi-hop retriever
	// fetches (default 5, matching Recall@5).
	RetrievalK int
	// Workers bounds the ingestion worker pool (adapter parsing, per-file
	// extraction, chunk embedding) and the per-query shard-scan fan-out.
	// 0 selects GOMAXPROCS.
	Workers int
	// Shards hash-partitions the chunk index into shards scanned in
	// parallel. 0 selects DefaultShards; 1 forces the flat single-shard
	// index. The shard count is a pure performance knob: results are
	// identical whatever its value.
	Shards int
	// DisablePostings turns off the inverted-postings candidate pre-filter
	// on the chunk index. Like Shards it cannot change results, only the
	// amount of work a query scan does; it exists for A/B benchmarking.
	DisablePostings bool
	// ANN swaps the exact chunk index for the approximate IVF tier with
	// exact re-rank (internal/retrieval/ann.go). Unlike Shards and
	// DisablePostings this is NOT a pure performance knob: retrieval can
	// miss candidates outside the probed coarse-quantizer cells, trading a
	// measured recall loss (see `make bench-ann`) for sub-linear scans at
	// large corpus sizes. Off by default; when set, Shards and the postings
	// pre-filter are ignored. The IVF structure is rebuilt lazily per
	// snapshot generation, so ingest commits stay O(delta).
	ANN bool
	// NProbe is how many coarse-quantizer cells an ANN query probes (<=0
	// selects retrieval.DefaultNProbe). More probes raise recall and cost.
	NProbe int
	// ANNQuantize runs the ANN coarse pass over an int8-quantized mirror of
	// the vector arena; final scores stay exact float64 re-ranks. Ignored
	// unless ANN is set.
	ANNQuantize bool
	// AnswerCacheSize bounds the per-snapshot answer cache (entries); 0
	// disables it. The cache is invalidated whenever a snapshot is
	// published, so cached answers never outlive the corpus state that
	// produced them. Leave it off when metering per-query LLM cost or when
	// exact confidence reproducibility across a query sequence matters:
	// a hit skips the simulated model and MCC's online source-history
	// update, so later different queries may see slightly shifted
	// confidence values (see cache.go).
	AnswerCacheSize int
	// DisableIncrementalSG forces a full linegraph.Build on every Ingest
	// instead of applying the batch delta to the previous SG. It exists to
	// A/B-benchmark the incremental maintenance path; leave it off in
	// production.
	DisableIncrementalSG bool
	// DisableQueryIndex makes nested-attribute candidate lookup fall back to
	// the full homologous-node scan instead of the per-snapshot
	// subject→attribute index. Candidates (and therefore answers) are
	// identical either way; the knob exists so the query bench can measure
	// the index against the sequential reference. Leave it off in production.
	DisableQueryIndex bool
	// DisableEvidenceMemo turns off the generation-keyed (entity, relation)
	// evidence memo. Unlike the opt-in answer cache the memo is exact: it
	// only stores history-independent evaluations and replays their deferred
	// history credits on every hit, so answers are bit-identical with the
	// memo on or off. The knob exists for A/B benchmarking.
	DisableEvidenceMemo bool
	// CheckpointRecords is how many WAL records may accumulate past the last
	// checkpoint before the background checkpointer folds the log into a new
	// one (durable systems only; <=0 selects DefaultCheckpointRecords).
	CheckpointRecords int
	// CheckpointBytes triggers a checkpoint once the active WAL segment
	// exceeds this many bytes (<=0 selects DefaultCheckpointBytes).
	CheckpointBytes int
	// BreakerFailures is how many consecutive LLM-call failures trip the
	// generation/extraction circuit breakers open (<=0 selects
	// fault.DefaultBreakerFailures). Breaker trips only matter when calls can
	// fail — injected faults today, a real model API behind the Sim seam
	// tomorrow; the deterministic simulator itself never fails.
	BreakerFailures int
	// BreakerCooldown is how long a tripped breaker fast-fails before
	// admitting a half-open probe (<=0 selects fault.DefaultBreakerCooldown).
	BreakerCooldown time.Duration
	// SerializeIngest reverts Ingest to the pre-pipeline write path: the
	// whole call — extraction fan-out included — runs under the write lock,
	// every batch commits its own snapshot, and the homologous statistics
	// are re-derived with a full node walk per commit (RecomputeStats).
	// This is the serialized baseline the ingest bench measures the
	// group-committing pipeline against; leave it off in production.
	SerializeIngest bool
}

// snapshot is one immutable serving state: the knowledge graph, its
// homologous line graph and the chunk index, frozen at an ingest boundary.
// The write path builds the next snapshot aside (cloned graph, clipped index,
// delta-maintained SG) and publishes it with a single atomic pointer swap, so
// any number of query goroutines read a consistent view while ingestion
// proceeds — the read-path/write-path split of production retrieval stores.
type snapshot struct {
	graph *kg.Graph
	sg    *linegraph.SG
	index retrieval.Store
	// gen is the publication generation, bumped on every snapshot swap. It
	// keys the answer cache: answers computed against generation g are
	// served only while g is still the published generation.
	gen uint64
}

// DefaultShards is the chunk-index shard count selected by Config.Shards = 0.
const DefaultShards = 8

// System is an assembled MultiRAG deployment over one corpus. Queries are
// safe for unbounded concurrency and may run while ingestion commits.
// Concurrent Ingest calls overlap their expensive fan-out phases and are
// group-committed in arrival order by a single committer (see ingest.go /
// committer.go); RebuildSG serialises against the commit path.
type System struct {
	cfg      Config
	model    *llm.Sim
	mcc      *confidence.MCC
	registry *adapter.Registry
	// ingestModel is a second deterministic Sim (same config, same seed)
	// backing the extractor, so the preprocessing LLM-cost accounting
	// (BuildCost) cannot be polluted by query traffic hitting the serving
	// model concurrently. Same seed means identical extraction output.
	ingestModel *llm.Sim
	extractor   *extract.Extractor

	// snap is the atomically published serving snapshot. Query loads it once
	// and runs entirely against that immutable view.
	snap atomic.Pointer[snapshot]

	// embeds memoises query embeddings (pure function of the text, never
	// invalidated); answers memoises whole evaluations per snapshot
	// generation (flushed on every publish); evidence memoises
	// history-independent (entity, relation) sub-question evaluations per
	// generation so fan-out sub-questions that repeat never re-run MCC. See
	// cache.go.
	embeds   *embedCache
	answers  *answerCache
	evidence *evidenceMemo

	// subQs interns the "What is the <relation> of " sub-question prefix per
	// relation, replacing a strings.ReplaceAll per hop/arm on the hot path.
	// Relations come from free-text query parsing, so like the other caches
	// it is bounded (flush-on-overflow, see subQuestion).
	subQMu sync.RWMutex
	subQs  map[string]string

	// mu guards the commit critical section of the write path (snapshot
	// clone/replay/publish — never the ingest fan-out, which runs before it)
	// and the build-cost counters.
	mu sync.Mutex
	// Preprocessing cost (PT in Table III): real build time plus the LLM
	// latency spent during ingestion.
	buildReal time.Duration
	buildLLM  time.Duration

	// gc is the group-commit state behind the pipelined Ingest: a ticketed,
	// bounded queue of prepared batches drained by a single committer. See
	// committer.go.
	gc groupCommitter

	// genBreaker and extBreaker contain failures of the answer-generation and
	// extraction LLM calls respectively: consecutive failures trip them open
	// and later calls fast-fail into degraded answers instead of hammering a
	// broken dependency. See internal/fault.
	genBreaker *fault.Breaker
	extBreaker *fault.Breaker

	// dur is the durability state (WAL, checkpointer) of a system opened with
	// Open/OpenFS; nil for purely in-memory systems. See durable.go.
	dur *durable

	// replSink, when attached, receives every committed group's WAL record in
	// commit order (see replication.go). walLeases holds the WAL retention
	// floors lagging feeds pin. Both are guarded by mu; replPos (the
	// replication position — commit groups ever published, equal to the WAL
	// LSN on durable systems) is written under mu but read lock-free by the
	// router's staleness guard.
	replSink  ReplicationSink
	replPos   atomic.Uint64
	walLeases map[*WALLease]struct{}
}

// NewSystem builds an empty system from cfg.
func NewSystem(cfg Config) *System {
	if cfg.LLM == (llm.Config{}) {
		cfg.LLM = llm.DefaultConfig()
	}
	if cfg.MCC == (confidence.Config{}) {
		cfg.MCC = confidence.DefaultConfig()
	}
	if cfg.ChunkTokens <= 0 {
		cfg.ChunkTokens = 64
	}
	if cfg.RetrievalK <= 0 {
		cfg.RetrievalK = 5
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	model := llm.NewSim(cfg.LLM)
	ingestModel := llm.NewSim(cfg.LLM)
	s := &System{
		cfg:         cfg,
		model:       model,
		mcc:         confidence.New(cfg.MCC, model, confidence.NewHistoryStore()),
		registry:    adapter.NewRegistry(),
		ingestModel: ingestModel,
		extractor:   extract.New(ingestModel),
		embeds:      newEmbedCache(retrieval.DefaultDim),
		answers:     newAnswerCache(cfg.AnswerCacheSize),
		evidence:    newEvidenceMemo(cfg.DisableEvidenceMemo),
		subQs:       map[string]string{},
		genBreaker:  fault.NewBreaker("llm.generate", cfg.BreakerFailures, cfg.BreakerCooldown, nil),
		extBreaker:  fault.NewBreaker("llm.extract", cfg.BreakerFailures, cfg.BreakerCooldown, nil),
	}
	s.gc.init()
	s.snap.Store(&snapshot{
		graph: kg.New(),
		index: retrieval.New(cfg.storeOptions()),
	})
	return s
}

// storeOptions derives the retrieval-store layout from the config. Recovery
// rebuilds stores with the same options, so shard count and pre-filters stay
// pure runtime knobs rather than persisted state.
func (cfg *Config) storeOptions() retrieval.Options {
	return retrieval.Options{
		Dim:         retrieval.DefaultDim,
		Shards:      cfg.Shards,
		Postings:    !cfg.DisablePostings,
		Workers:     cfg.Workers,
		ANN:         cfg.ANN,
		NProbe:      cfg.NProbe,
		ANNQuantize: cfg.ANNQuantize,
	}
}

// Workers resolves the configured pool size (Config.Workers, defaulting to
// GOMAXPROCS).
func (s *System) Workers() int {
	if s.cfg.Workers > 0 {
		return s.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Parallel runs fn(i) for i in [0, n) across at most workers goroutines
// (workers <= 0 selects GOMAXPROCS) — the bounded fan-out primitive the
// engine uses for ingestion stages and batched query serving.
func Parallel(workers, n int, fn func(int)) { par.ForEach(workers, n, fn) }

// QueryBatch evaluates a batch of queries concurrently on the worker pool
// (Config.Workers) and returns the answers in input order. The whole batch
// runs against one published snapshot, so every answer reflects the same
// corpus state even while ingestion commits concurrently — the batch-serving
// entry point behind AskConcurrent and the query bench. Workers bounds each
// fan-out level, not a global budget: a batched multi-hop query briefly adds
// its own hop-2 arms on top of the batch goroutines, the usual transient
// oversubscription the Go scheduler absorbs.
func (s *System) QueryBatch(queries []string) []Answer {
	sn := s.snap.Load()
	out := make([]Answer, len(queries))
	par.ForEach(s.Workers(), len(queries), func(i int) {
		out[i], _ = s.queryCached(sn, queries[i])
	})
	return out
}

// QueryBatchCtx is QueryBatch under one shared context: the whole batch runs
// against one snapshot and stops claiming work once ctx is done. Queries cut
// short return degraded answers (see queryCtx). A context that can never be
// canceled delegates to QueryBatch, keeping the context-free path
// bit-identical.
func (s *System) QueryBatchCtx(ctx context.Context, queries []string) []Answer {
	if ctx.Done() == nil {
		return s.QueryBatch(queries)
	}
	sn := s.snap.Load()
	out := make([]Answer, len(queries))
	par.ForEach(s.Workers(), len(queries), func(i int) {
		out[i] = s.queryCtx(ctx, sn, queries[i])
	})
	return out
}

// QueryEach evaluates queries[i] under ctxs[i] (nil entries mean no
// deadline), all against one published snapshot — the serving executor's
// entry point, where every request in a formed batch carries its own
// SLO-class deadline and disconnect signal. Answers return in input order; a
// request whose context ends mid-evaluation yields a degraded partial answer
// while the rest of the batch proceeds unaffected.
func (s *System) QueryEach(ctxs []context.Context, queries []string) []Answer {
	sn := s.snap.Load()
	out := make([]Answer, len(queries))
	par.ForEach(s.Workers(), len(queries), func(i int) {
		ctx := context.Background()
		if i < len(ctxs) && ctxs[i] != nil {
			ctx = ctxs[i]
		}
		if ctx.Done() == nil {
			out[i], _ = s.queryCached(sn, queries[i])
		} else {
			out[i] = s.queryCtx(ctx, sn, queries[i])
		}
	})
	return out
}

// BreakerStats snapshots the LLM-call circuit breakers for /v1/metrics.
func (s *System) BreakerStats() []fault.BreakerStats {
	return []fault.BreakerStats{s.genBreaker.Stats(), s.extBreaker.Stats()}
}

// DurabilityStatus is the durability layer's health as seen by serving:
// whether the system is durable at all, whether the WAL has latched an append
// failure (ingest is failing durably until restart), and the checkpoint/LSN
// positions.
type DurabilityStatus struct {
	Durable           bool
	WALAppendErr      string
	LastCheckpointLSN uint64
	NextLSN           uint64
}

// DurabilityStatus reports the WAL append latch and checkpoint positions.
// All-zero on in-memory systems.
func (s *System) DurabilityStatus() DurabilityStatus {
	d := s.dur
	if d == nil {
		return DurabilityStatus{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := DurabilityStatus{Durable: true, LastCheckpointLSN: d.lastCkpt, NextLSN: d.log.NextLSN()}
	if err := d.log.Failed(); err != nil {
		st.WALAppendErr = err.Error()
	}
	return st
}

// Model exposes the serving-side simulated LLM (query-time usage
// accounting). Ingestion-time extraction runs on a separate same-seed model
// whose cost surfaces through BuildCost.
func (s *System) Model() *llm.Sim { return s.model }

// Graph exposes the current snapshot's knowledge graph. The perturbation
// harness mutates it in place and then calls RebuildSG; that pattern requires
// the caller to guarantee no concurrent queries (the experiment harnesses are
// single-threaded). Concurrent readers should treat the result as frozen.
func (s *System) Graph() *kg.Graph { return s.snap.Load().graph }

// SG exposes the current homologous line graph (nil when MKA is disabled).
func (s *System) SG() *linegraph.SG { return s.snap.Load().sg }

// MCC exposes the confidence engine.
func (s *System) MCC() *confidence.MCC { return s.mcc }

// Index exposes the current retrieval index.
func (s *System) Index() retrieval.Searcher { return s.snap.Load().index }

// Serving returns the components of one published snapshot, so callers can
// derive mutually consistent statistics under concurrent ingestion (separate
// Graph()/SG()/Index() calls may straddle a snapshot swap).
func (s *System) Serving() (*kg.Graph, *linegraph.SG, retrieval.Searcher) {
	sn := s.snap.Load()
	return sn.graph, sn.sg, sn.index
}

// BuildCost returns the preprocessing cost (PT): real build time and the LLM
// latency charged during ingestion.
func (s *System) BuildCost() (real, llmLatency time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buildReal, s.buildLLM
}

// RebuildSG reconstructs the homologous line graph from scratch after
// external graph mutation (perturbation experiments remove or rewrite
// triples, which the incremental delta cannot express) and publishes the
// result as a new snapshot. The rebuilt SG carries its aggregate homologous
// statistics (maintained during Build's construction walk), so ComputeStats
// on the published snapshot reports the post-mutation counts without any
// extra refresh step.
func (s *System) RebuildSG() {
	if s.cfg.DisableMKA {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	cur := s.snap.Load()
	s.snap.Store(&snapshot{
		graph: cur.graph,
		sg:    linegraph.Build(cur.graph),
		index: cur.index,
		gen:   cur.gen + 1,
	})
	s.buildReal += time.Since(start)
}
