// Package core implements the MultiRAG pipeline itself: the MKLGP algorithm
// (Algorithm 2) orchestrating logic-form generation, multi-document
// extraction, multi-source line-graph construction, multi-level confidence
// computing and trustworthy answer generation, plus the ablation switches
// behind Table III.
package core

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"multirag/internal/adapter"
	"multirag/internal/confidence"
	"multirag/internal/extract"
	"multirag/internal/jsonld"
	"multirag/internal/kg"
	"multirag/internal/linegraph"
	"multirag/internal/llm"
	"multirag/internal/par"
	"multirag/internal/retrieval"
)

// Config assembles a MultiRAG system.
type Config struct {
	// LLM configures the simulated model. Zero value = llm.DefaultConfig().
	LLM llm.Config
	// MCC configures confidence computing. Zero value = paper defaults.
	MCC confidence.Config
	// Ablation toggles the confidence stages (Table III's "w/o Graph
	// Level", "w/o Node Level", both = "w/o MCC").
	Ablation confidence.Options
	// DisableMKA removes multi-source knowledge aggregation (Table III's
	// "w/o MKA"): no line graph is built and every query falls back to
	// chunk retrieval plus per-query LLM extraction.
	DisableMKA bool
	// ChunkTokens is the chunk budget for the retrieval index (default 64).
	ChunkTokens int
	// RetrievalK is how many chunks the fallback / multi-hop retriever
	// fetches (default 5, matching Recall@5).
	RetrievalK int
	// Workers bounds the ingestion worker pool (adapter parsing, per-file
	// extraction, chunk embedding) and the per-query shard-scan fan-out.
	// 0 selects GOMAXPROCS.
	Workers int
	// Shards hash-partitions the chunk index into shards scanned in
	// parallel. 0 selects DefaultShards; 1 forces the flat single-shard
	// index. The shard count is a pure performance knob: results are
	// identical whatever its value.
	Shards int
	// DisablePostings turns off the inverted-postings candidate pre-filter
	// on the chunk index. Like Shards it cannot change results, only the
	// amount of work a query scan does; it exists for A/B benchmarking.
	DisablePostings bool
	// AnswerCacheSize bounds the per-snapshot answer cache (entries); 0
	// disables it. The cache is invalidated whenever a snapshot is
	// published, so cached answers never outlive the corpus state that
	// produced them. Leave it off when metering per-query LLM cost or when
	// exact confidence reproducibility across a query sequence matters:
	// a hit skips the simulated model and MCC's online source-history
	// update, so later different queries may see slightly shifted
	// confidence values (see cache.go).
	AnswerCacheSize int
	// DisableIncrementalSG forces a full linegraph.Build on every Ingest
	// instead of applying the batch delta to the previous SG. It exists to
	// A/B-benchmark the incremental maintenance path; leave it off in
	// production.
	DisableIncrementalSG bool
	// DisableQueryIndex makes nested-attribute candidate lookup fall back to
	// the full homologous-node scan instead of the per-snapshot
	// subject→attribute index. Candidates (and therefore answers) are
	// identical either way; the knob exists so the query bench can measure
	// the index against the sequential reference. Leave it off in production.
	DisableQueryIndex bool
	// DisableEvidenceMemo turns off the generation-keyed (entity, relation)
	// evidence memo. Unlike the opt-in answer cache the memo is exact: it
	// only stores history-independent evaluations and replays their deferred
	// history credits on every hit, so answers are bit-identical with the
	// memo on or off. The knob exists for A/B benchmarking.
	DisableEvidenceMemo bool
}

// snapshot is one immutable serving state: the knowledge graph, its
// homologous line graph and the chunk index, frozen at an ingest boundary.
// The write path builds the next snapshot aside (cloned graph, clipped index,
// delta-maintained SG) and publishes it with a single atomic pointer swap, so
// any number of query goroutines read a consistent view while ingestion
// proceeds — the read-path/write-path split of production retrieval stores.
type snapshot struct {
	graph *kg.Graph
	sg    *linegraph.SG
	index retrieval.Store
	// gen is the publication generation, bumped on every snapshot swap. It
	// keys the answer cache: answers computed against generation g are
	// served only while g is still the published generation.
	gen uint64
}

// DefaultShards is the chunk-index shard count selected by Config.Shards = 0.
const DefaultShards = 8

// System is an assembled MultiRAG deployment over one corpus. Queries are
// safe for unbounded concurrency; Ingest and RebuildSG are serialised
// internally and may run concurrently with queries.
type System struct {
	cfg      Config
	model    *llm.Sim
	mcc      *confidence.MCC
	registry *adapter.Registry
	// ingestModel is a second deterministic Sim (same config, same seed)
	// backing the extractor, so the preprocessing LLM-cost accounting
	// (BuildCost) cannot be polluted by query traffic hitting the serving
	// model concurrently. Same seed means identical extraction output.
	ingestModel *llm.Sim
	extractor   *extract.Extractor

	// snap is the atomically published serving snapshot. Query loads it once
	// and runs entirely against that immutable view.
	snap atomic.Pointer[snapshot]

	// embeds memoises query embeddings (pure function of the text, never
	// invalidated); answers memoises whole evaluations per snapshot
	// generation (flushed on every publish); evidence memoises
	// history-independent (entity, relation) sub-question evaluations per
	// generation so fan-out sub-questions that repeat never re-run MCC. See
	// cache.go.
	embeds   *embedCache
	answers  *answerCache
	evidence *evidenceMemo

	// subQs interns the "What is the <relation> of " sub-question prefix per
	// relation, replacing a strings.ReplaceAll per hop/arm on the hot path.
	// Relations come from free-text query parsing, so like the other caches
	// it is bounded (flush-on-overflow, see subQuestion).
	subQMu sync.RWMutex
	subQs  map[string]string

	// mu serialises the write path and guards the build-cost counters.
	mu sync.Mutex
	// Preprocessing cost (PT in Table III): real build time plus the LLM
	// latency spent during ingestion.
	buildReal time.Duration
	buildLLM  time.Duration
}

// NewSystem builds an empty system from cfg.
func NewSystem(cfg Config) *System {
	if cfg.LLM == (llm.Config{}) {
		cfg.LLM = llm.DefaultConfig()
	}
	if cfg.MCC == (confidence.Config{}) {
		cfg.MCC = confidence.DefaultConfig()
	}
	if cfg.ChunkTokens <= 0 {
		cfg.ChunkTokens = 64
	}
	if cfg.RetrievalK <= 0 {
		cfg.RetrievalK = 5
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	model := llm.NewSim(cfg.LLM)
	ingestModel := llm.NewSim(cfg.LLM)
	s := &System{
		cfg:         cfg,
		model:       model,
		mcc:         confidence.New(cfg.MCC, model, confidence.NewHistoryStore()),
		registry:    adapter.NewRegistry(),
		ingestModel: ingestModel,
		extractor:   extract.New(ingestModel),
		embeds:      newEmbedCache(retrieval.DefaultDim),
		answers:     newAnswerCache(cfg.AnswerCacheSize),
		evidence:    newEvidenceMemo(cfg.DisableEvidenceMemo),
		subQs:       map[string]string{},
	}
	s.snap.Store(&snapshot{
		graph: kg.New(),
		index: retrieval.New(retrieval.Options{
			Dim:      retrieval.DefaultDim,
			Shards:   cfg.Shards,
			Postings: !cfg.DisablePostings,
			Workers:  cfg.Workers,
		}),
	})
	return s
}

// Workers resolves the configured pool size (Config.Workers, defaulting to
// GOMAXPROCS).
func (s *System) Workers() int {
	if s.cfg.Workers > 0 {
		return s.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Parallel runs fn(i) for i in [0, n) across at most workers goroutines
// (workers <= 0 selects GOMAXPROCS) — the bounded fan-out primitive the
// engine uses for ingestion stages and batched query serving.
func Parallel(workers, n int, fn func(int)) { par.ForEach(workers, n, fn) }

// QueryBatch evaluates a batch of queries concurrently on the worker pool
// (Config.Workers) and returns the answers in input order. The whole batch
// runs against one published snapshot, so every answer reflects the same
// corpus state even while ingestion commits concurrently — the batch-serving
// entry point behind AskConcurrent and the query bench. Workers bounds each
// fan-out level, not a global budget: a batched multi-hop query briefly adds
// its own hop-2 arms on top of the batch goroutines, the usual transient
// oversubscription the Go scheduler absorbs.
func (s *System) QueryBatch(queries []string) []Answer {
	sn := s.snap.Load()
	out := make([]Answer, len(queries))
	par.ForEach(s.Workers(), len(queries), func(i int) {
		out[i], _ = s.queryCached(sn, queries[i])
	})
	return out
}

// Model exposes the serving-side simulated LLM (query-time usage
// accounting). Ingestion-time extraction runs on a separate same-seed model
// whose cost surfaces through BuildCost.
func (s *System) Model() *llm.Sim { return s.model }

// Graph exposes the current snapshot's knowledge graph. The perturbation
// harness mutates it in place and then calls RebuildSG; that pattern requires
// the caller to guarantee no concurrent queries (the experiment harnesses are
// single-threaded). Concurrent readers should treat the result as frozen.
func (s *System) Graph() *kg.Graph { return s.snap.Load().graph }

// SG exposes the current homologous line graph (nil when MKA is disabled).
func (s *System) SG() *linegraph.SG { return s.snap.Load().sg }

// MCC exposes the confidence engine.
func (s *System) MCC() *confidence.MCC { return s.mcc }

// Index exposes the current retrieval index.
func (s *System) Index() retrieval.Searcher { return s.snap.Load().index }

// Serving returns the components of one published snapshot, so callers can
// derive mutually consistent statistics under concurrent ingestion (separate
// Graph()/SG()/Index() calls may straddle a snapshot swap).
func (s *System) Serving() (*kg.Graph, *linegraph.SG, retrieval.Searcher) {
	sn := s.snap.Load()
	return sn.graph, sn.sg, sn.index
}

// BuildCost returns the preprocessing cost (PT): real build time and the LLM
// latency charged during ingestion.
func (s *System) BuildCost() (real, llmLatency time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buildReal, s.buildLLM
}

// IngestReport summarises an Ingest call.
type IngestReport struct {
	Extraction extract.Report
	Homologous linegraph.Stats
	Chunks     int
}

// fileWork is the per-file output of the parallel ingestion stage.
type fileWork struct {
	rec    *extract.Recorder
	report extract.Report
	chunks []retrieval.Chunk
	vecs   []retrieval.Vector
	err    error
}

// Ingest fuses, extracts and indexes the given files, then (unless MKA is
// disabled) brings the homologous line graph up to date. It can be called
// repeatedly and concurrently with queries.
//
// The pipeline has two phases. The fan-out phase runs per-file work on a
// bounded pool: format adaptation, knowledge extraction (into a private
// operation recorder — this is where the LLM calls happen) and chunk
// rendering plus embedding. The commit phase, serialised by the write lock,
// clones the current graph, replays the recorded operation streams in file
// order (bit-identical to single-threaded extraction), batch-appends the
// pre-embedded chunks, applies the new-triple delta to the previous SG
// instead of rebuilding it from the whole corpus, and atomically publishes
// the new snapshot. A failed batch publishes nothing.
//
// Concurrent Ingest calls are serialised for the whole call, fan-out phase
// included: commit order equals arrival order and the preprocessing-cost
// accounting stays exact. Queries never block either way.
func (s *System) Ingest(files []adapter.RawFile) (IngestReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep IngestReport
	start := time.Now()
	llmBefore := s.ingestModel.VirtualLatency()
	workers := s.Workers()
	fused, err := s.registry.FuseParallel(files, workers)
	if err != nil {
		return rep, err
	}

	dim := s.snap.Load().index.Dim()
	work := make([]fileWork, len(fused))
	Parallel(workers, len(fused), func(i int) {
		w := &work[i]
		w.rec = extract.NewRecorder()
		w.report, w.err = s.extractor.BuildFile(w.rec, fused[i])
		if w.err != nil {
			return
		}
		w.chunks = RenderChunks(fused[i], s.cfg.ChunkTokens)
		w.vecs = make([]retrieval.Vector, len(w.chunks))
		for j, c := range w.chunks {
			w.vecs[j] = retrieval.Embed(c.Text, dim)
		}
	})
	rep.Extraction = extract.Report{ByFormat: map[string]int{}}
	for i := range work {
		if work[i].err != nil {
			return rep, work[i].err
		}
	}

	cur := s.snap.Load()
	g := cur.graph.Clone()
	entBefore, triBefore := g.NumEntities(), g.NumTriples()
	ix := cur.index.CloneForAppend()
	var newIDs []string
	for i := range work {
		ids, err := work[i].rec.Replay(g)
		if err != nil {
			return rep, err
		}
		newIDs = append(newIDs, ids...)
		rep.Extraction.Merge(work[i].report)
		for j, c := range work[i].chunks {
			ix.AddEmbedded(c, work[i].vecs[j])
			rep.Chunks++
		}
	}
	rep.Extraction.Entities = g.NumEntities() - entBefore
	rep.Extraction.Triples = g.NumTriples() - triBefore

	next := &snapshot{graph: g, index: ix, gen: cur.gen + 1}
	if !s.cfg.DisableMKA {
		if s.cfg.DisableIncrementalSG {
			next.sg = linegraph.Build(g)
		} else {
			next.sg = linegraph.BuildDelta(cur.sg, g, newIDs)
		}
		rep.Homologous = next.sg.ComputeStats()
	}
	s.snap.Store(next)
	s.buildReal += time.Since(start)
	s.buildLLM += s.ingestModel.VirtualLatency() - llmBefore
	return rep, nil
}

// RebuildSG reconstructs the homologous line graph from scratch after
// external graph mutation (perturbation experiments remove or rewrite
// triples, which the incremental delta cannot express) and publishes the
// result as a new snapshot.
func (s *System) RebuildSG() {
	if s.cfg.DisableMKA {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	cur := s.snap.Load()
	s.snap.Store(&snapshot{
		graph: cur.graph,
		sg:    linegraph.Build(cur.graph),
		index: cur.index,
		gen:   cur.gen + 1,
	})
	s.buildReal += time.Since(start)
}

// RenderChunks converts a normalised file into retrievable chunks. Text
// records chunk their raw paragraphs; structured records are verbalised as
// benchmark-grammar sentences so that chunk retrieval and per-query LLM
// extraction can reach the same facts the KG holds. It is exported for the
// benchmark harness, which builds identical baseline environments.
func RenderChunks(n *jsonld.Normalized, chunkTokens int) []retrieval.Chunk {
	var out []retrieval.Chunk
	for _, doc := range n.JSC {
		if v, ok := doc.Get("text"); ok && v.Str != "" {
			out = append(out, retrieval.ChunkText(doc.ID, n.Source, v.Str, chunkTokens)...)
			continue
		}
		text := verbalise(doc)
		if text != "" {
			out = append(out, retrieval.ChunkText(doc.ID, n.Source, text, chunkTokens)...)
		}
	}
	return out
}

// verbalise renders a structured record as sentences.
func verbalise(doc *jsonld.Document) string {
	subject := ""
	for _, key := range []string{"@key", "name", "title", "id", "flight", "symbol", "subject"} {
		if v, ok := doc.Get(key); ok && v.Str != "" {
			subject = v.Str
			break
		}
	}
	if subject == "" {
		return ""
	}
	// Native-KG triples verbalise directly.
	if p, ok := doc.Get("predicate"); ok {
		if o, oko := doc.Get("object"); oko {
			return fmt.Sprintf("The %s of %s is %s.",
				strings.ReplaceAll(p.Str, "_", " "), subject, o.Str)
		}
	}
	var sents []string
	var walk func(d *jsonld.Document, prefix string)
	walk = func(d *jsonld.Document, prefix string) {
		for _, k := range d.Keys() {
			v, _ := d.Get(k)
			name := strings.TrimPrefix(k, "@")
			if i := strings.IndexByte(name, '/'); i >= 0 {
				name = name[:i]
			}
			if prefix != "" {
				name = prefix + " " + name
			}
			if v.Node != nil {
				walk(v.Node, name)
				continue
			}
			if k == "@key" || (prefix == "" && v.Str == subject) {
				continue
			}
			for _, val := range v.Strings() {
				sents = append(sents, fmt.Sprintf("The %s of %s is %s.",
					strings.ReplaceAll(name, "_", " "), subject, val))
			}
		}
	}
	walk(doc, "")
	return strings.Join(sents, " ")
}
