// Package core implements the MultiRAG pipeline itself: the MKLGP algorithm
// (Algorithm 2) orchestrating logic-form generation, multi-document
// extraction, multi-source line-graph construction, multi-level confidence
// computing and trustworthy answer generation, plus the ablation switches
// behind Table III.
package core

import (
	"fmt"
	"strings"
	"time"

	"multirag/internal/adapter"
	"multirag/internal/confidence"
	"multirag/internal/extract"
	"multirag/internal/jsonld"
	"multirag/internal/kg"
	"multirag/internal/linegraph"
	"multirag/internal/llm"
	"multirag/internal/retrieval"
)

// Config assembles a MultiRAG system.
type Config struct {
	// LLM configures the simulated model. Zero value = llm.DefaultConfig().
	LLM llm.Config
	// MCC configures confidence computing. Zero value = paper defaults.
	MCC confidence.Config
	// Ablation toggles the confidence stages (Table III's "w/o Graph
	// Level", "w/o Node Level", both = "w/o MCC").
	Ablation confidence.Options
	// DisableMKA removes multi-source knowledge aggregation (Table III's
	// "w/o MKA"): no line graph is built and every query falls back to
	// chunk retrieval plus per-query LLM extraction.
	DisableMKA bool
	// ChunkTokens is the chunk budget for the retrieval index (default 64).
	ChunkTokens int
	// RetrievalK is how many chunks the fallback / multi-hop retriever
	// fetches (default 5, matching Recall@5).
	RetrievalK int
}

// System is an assembled MultiRAG deployment over one corpus.
type System struct {
	cfg       Config
	model     *llm.Sim
	graph     *kg.Graph
	sg        *linegraph.SG
	mcc       *confidence.MCC
	index     *retrieval.Index
	registry  *adapter.Registry
	extractor *extract.Extractor

	// Preprocessing cost (PT in Table III): real build time plus the LLM
	// latency spent during ingestion.
	buildReal time.Duration
	buildLLM  time.Duration
}

// NewSystem builds an empty system from cfg.
func NewSystem(cfg Config) *System {
	if cfg.LLM == (llm.Config{}) {
		cfg.LLM = llm.DefaultConfig()
	}
	if cfg.MCC == (confidence.Config{}) {
		cfg.MCC = confidence.DefaultConfig()
	}
	if cfg.ChunkTokens <= 0 {
		cfg.ChunkTokens = 64
	}
	if cfg.RetrievalK <= 0 {
		cfg.RetrievalK = 5
	}
	model := llm.NewSim(cfg.LLM)
	return &System{
		cfg:       cfg,
		model:     model,
		graph:     kg.New(),
		mcc:       confidence.New(cfg.MCC, model, confidence.NewHistoryStore()),
		index:     retrieval.NewIndex(retrieval.DefaultDim),
		registry:  adapter.NewRegistry(),
		extractor: extract.New(model),
	}
}

// Model exposes the underlying simulated LLM (for usage accounting).
func (s *System) Model() *llm.Sim { return s.model }

// Graph exposes the knowledge graph (perturbation experiments mutate it and
// then call RebuildSG).
func (s *System) Graph() *kg.Graph { return s.graph }

// SG exposes the homologous line graph (nil when MKA is disabled).
func (s *System) SG() *linegraph.SG { return s.sg }

// MCC exposes the confidence engine.
func (s *System) MCC() *confidence.MCC { return s.mcc }

// Index exposes the retrieval index.
func (s *System) Index() *retrieval.Index { return s.index }

// BuildCost returns the preprocessing cost (PT): real build time and the LLM
// latency charged during ingestion.
func (s *System) BuildCost() (real, llmLatency time.Duration) {
	return s.buildReal, s.buildLLM
}

// IngestReport summarises an Ingest call.
type IngestReport struct {
	Extraction extract.Report
	Homologous linegraph.Stats
	Chunks     int
}

// Ingest fuses, extracts and indexes the given files, then (unless MKA is
// disabled) builds the homologous line graph. It can be called repeatedly;
// the line graph is rebuilt over the full corpus each time.
func (s *System) Ingest(files []adapter.RawFile) (IngestReport, error) {
	var rep IngestReport
	start := time.Now()
	llmBefore := s.model.VirtualLatency()
	fused, err := s.registry.Fuse(files)
	if err != nil {
		return rep, err
	}
	rep.Extraction, err = s.extractor.Build(s.graph, fused)
	if err != nil {
		return rep, err
	}
	for _, n := range fused {
		for _, chunk := range RenderChunks(n, s.cfg.ChunkTokens) {
			s.index.Add(chunk)
			rep.Chunks++
		}
	}
	if !s.cfg.DisableMKA {
		s.sg = linegraph.Build(s.graph)
		rep.Homologous = s.sg.ComputeStats()
	}
	s.buildReal += time.Since(start)
	s.buildLLM += s.model.VirtualLatency() - llmBefore
	return rep, nil
}

// RebuildSG reconstructs the homologous line graph after external graph
// mutation (perturbation experiments).
func (s *System) RebuildSG() {
	if !s.cfg.DisableMKA {
		start := time.Now()
		s.sg = linegraph.Build(s.graph)
		s.buildReal += time.Since(start)
	}
}

// RenderChunks converts a normalised file into retrievable chunks. Text
// records chunk their raw paragraphs; structured records are verbalised as
// benchmark-grammar sentences so that chunk retrieval and per-query LLM
// extraction can reach the same facts the KG holds. It is exported for the
// benchmark harness, which builds identical baseline environments.
func RenderChunks(n *jsonld.Normalized, chunkTokens int) []retrieval.Chunk {
	var out []retrieval.Chunk
	for _, doc := range n.JSC {
		if v, ok := doc.Get("text"); ok && v.Str != "" {
			out = append(out, retrieval.ChunkText(doc.ID, n.Source, v.Str, chunkTokens)...)
			continue
		}
		text := verbalise(doc)
		if text != "" {
			out = append(out, retrieval.ChunkText(doc.ID, n.Source, text, chunkTokens)...)
		}
	}
	return out
}

// verbalise renders a structured record as sentences.
func verbalise(doc *jsonld.Document) string {
	subject := ""
	for _, key := range []string{"@key", "name", "title", "id", "flight", "symbol", "subject"} {
		if v, ok := doc.Get(key); ok && v.Str != "" {
			subject = v.Str
			break
		}
	}
	if subject == "" {
		return ""
	}
	// Native-KG triples verbalise directly.
	if p, ok := doc.Get("predicate"); ok {
		if o, oko := doc.Get("object"); oko {
			return fmt.Sprintf("The %s of %s is %s.",
				strings.ReplaceAll(p.Str, "_", " "), subject, o.Str)
		}
	}
	var sents []string
	var walk func(d *jsonld.Document, prefix string)
	walk = func(d *jsonld.Document, prefix string) {
		for _, k := range d.Keys() {
			v, _ := d.Get(k)
			name := strings.TrimPrefix(k, "@")
			if i := strings.IndexByte(name, '/'); i >= 0 {
				name = name[:i]
			}
			if prefix != "" {
				name = prefix + " " + name
			}
			if v.Node != nil {
				walk(v.Node, name)
				continue
			}
			if k == "@key" || (prefix == "" && v.Str == subject) {
				continue
			}
			for _, val := range v.Strings() {
				sents = append(sents, fmt.Sprintf("The %s of %s is %s.",
					strings.ReplaceAll(name, "_", " "), subject, val))
			}
		}
	}
	walk(doc, "")
	return strings.Join(sents, " ")
}
