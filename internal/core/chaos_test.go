package core

import (
	"bytes"
	"context"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"multirag/internal/adapter"
	"multirag/internal/fault"
	"multirag/internal/wal"
)

// chaosQueries is a mixed-intent workload: lookup, nested lookup, multi-hop
// shape, comparison and chunk-fallback, so every arm of the query DAG is
// exercised under each fault.
var chaosQueries = []string{
	"What is the status of CA981?",
	"What is the delay reason of CA981?",
	"What is the status of the delay reason of CA981?",
	"Do CA981 and MU588 have the same status?",
	"Anything new about CA981 today",
}

// cancelableCtxs returns never-canceled cancelable contexts (Done() != nil),
// forcing the context-aware evaluation path without ever firing it.
func cancelableCtxs(t *testing.T, n int) []context.Context {
	t.Helper()
	out := make([]context.Context, n)
	for i := range out {
		ctx, cancel := context.WithCancel(context.Background())
		t.Cleanup(cancel)
		out[i] = ctx
	}
	return out
}

// waitGoroutines asserts the goroutine count settles back to (about) base —
// the no-leak watermark of the chaos and cancellation suites. The slack
// absorbs runtime helpers; anything structural (a leaked hang, a stuck
// sender) holds dozens of goroutines and fails the bound.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	const slack = 10
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d now vs %d at start\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosQueryFaultGrid crosses the query-path injection points with every
// fault kind under concurrent per-request contexts: errors and panics become
// Degraded answers (never process crashes), latency and hangs are cut short
// by the request deadline, and after Reset the system answers bit-identically
// to its pre-chaos self — no torn snapshot, no poisoned cache.
func TestChaosQueryFaultGrid(t *testing.T) {
	defer fault.Reset()
	// A short breaker cooldown lets each error cell trip the breaker (that is
	// the point) and still recover before the cell's post-Reset check.
	s := newCaseStudySystem(t, Config{BreakerCooldown: time.Millisecond})
	baseline := s.Query(chaosQueries[0])
	baseGoroutines := runtime.NumGoroutine()

	points := []string{
		fault.PointLLMGenerate,
		fault.PointLLMExtract,
		fault.PointEvidence,
		fault.PointRetrievalScan,
	}
	kinds := []fault.Kind{fault.KindError, fault.KindLatency, fault.KindHang, fault.KindPanic}

	for _, point := range points {
		for _, kind := range kinds {
			t.Run(point+"/"+kind.String(), func(t *testing.T) {
				defer fault.Reset()
				fault.Enable(point, fault.Fault{Kind: kind, Latency: 50 * time.Millisecond})

				ctxs := make([]context.Context, len(chaosQueries))
				for i := range ctxs {
					ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
					defer cancel()
					ctxs[i] = ctx
				}
				done := make(chan []Answer, 1)
				go func() { done <- s.QueryEach(ctxs, chaosQueries) }()
				var answers []Answer
				select {
				case answers = <-done:
				case <-time.After(10 * time.Second):
					t.Fatalf("deadlock: QueryEach did not return under %s/%s", point, kind)
				}
				for i, ans := range answers {
					if ans.Degraded && ans.DegradedReason == "" {
						t.Errorf("query %d degraded without a reason", i)
					}
					if kind == fault.KindPanic && ans.Degraded &&
						!strings.HasPrefix(ans.DegradedReason, "panic:") {
						// Panic cells may degrade for the panic or, on arms that
						// never hit the point, not at all — but a panic reason
						// must be labeled as one.
						t.Errorf("query %d: degraded reason %q under panic fault", i, ans.DegradedReason)
					}
				}

				fault.Reset()
				// Let any tripped breaker cool down; the next call is its
				// half-open probe and re-closes it.
				time.Sleep(5 * time.Millisecond)
				after := s.Query(chaosQueries[0])
				if after.Degraded {
					// Probe consumed by the degrade — one clean retry closes.
					after = s.Query(chaosQueries[0])
				}
				if !answersEqual(baseline, after) {
					t.Fatalf("post-chaos answer diverged: %+v vs baseline %+v", after, baseline)
				}
			})
		}
	}
	waitGoroutines(t, baseGoroutines)
}

// answersEqual compares the externally visible answer fields.
func answersEqual(a, b Answer) bool {
	if a.Query != b.Query || a.Found != b.Found || a.Degraded != b.Degraded ||
		len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			return false
		}
	}
	return true
}

// TestChaosCommitFaultRecovery crosses the commit-side injection points with
// error faults on a durable (MemFS-backed) system: a failed group publishes
// nothing and acknowledges nothing (the snapshot is byte-identical to the
// pre-fault state), a later retry succeeds, and close/reopen recovers the
// exact bytes — the WAL never holds an acknowledged-but-lost or
// half-applied batch.
func TestChaosCommitFaultRecovery(t *testing.T) {
	for _, point := range []string{fault.PointCommit, fault.PointWALAppend} {
		t.Run(point, func(t *testing.T) {
			defer fault.Reset()
			fs := wal.NewMemFS()
			s, _ := openDurable(t, fs, durTestConfig())
			batches := seqBatches()
			if _, err := s.Ingest(batches[0]); err != nil {
				t.Fatalf("seed ingest: %v", err)
			}
			pre := snapBytes(s)

			fault.Enable(point, fault.Fault{Kind: fault.KindError, MaxHits: 1})
			if _, err := s.Ingest(batches[1]); err == nil {
				t.Fatalf("ingest under %s error fault succeeded", point)
			}
			if !bytes.Equal(snapBytes(s), pre) {
				t.Fatal("failed commit mutated the published snapshot")
			}

			// Budget spent: the same batch now commits cleanly.
			if _, err := s.Ingest(batches[1]); err != nil {
				t.Fatalf("retry after fault: %v", err)
			}
			want := snapBytes(s)
			if err := s.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			s2, _ := openDurable(t, fs, durTestConfig())
			if !bytes.Equal(snapBytes(s2), want) {
				t.Fatal("recovered snapshot differs from pre-close state")
			}
		})
	}
}

// TestChaosCommitHangReleasedByDisable pins the commit path's containment
// contract: it carries no context, so a hang there blocks the committing
// caller until the fault is cleared — and clearing it lets the commit finish
// cleanly rather than abandoning the group.
func TestChaosCommitHangReleasedByDisable(t *testing.T) {
	defer fault.Reset()
	s := newCaseStudySystem(t, Config{})
	fault.Enable(fault.PointCommit, fault.Fault{Kind: fault.KindHang})
	done := make(chan error, 1)
	go func() {
		_, err := s.Ingest([]adapter.RawFile{{Domain: "flights", Source: "airport-api",
			Name: "late", Format: "text", Content: []byte("The status of MU551 is Boarding.")}})
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("ingest returned while commit hang armed (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	fault.Disable(fault.PointCommit)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ingest after release: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ingest still blocked after Disable")
	}
	requireAnswer(t, s, "What is the status of MU551?", "Boarding")
}

// TestChaosCancelReleasesSlotPromptly is the ≤50ms acceptance bar: a
// dispatched query hung inside a model call must return (degraded) within
// 50ms of its context being canceled, freeing whatever executor slot was
// running it.
func TestChaosCancelReleasesSlotPromptly(t *testing.T) {
	defer fault.Reset()
	s := newCaseStudySystem(t, Config{})
	fault.Enable(fault.PointLLMGenerate, fault.Fault{Kind: fault.KindHang})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan Answer, 1)
	go func() { done <- s.QueryCtx(ctx, chaosQueries[0]) }()

	// Wait until the evaluation is provably inside the hang.
	deadline := time.Now().Add(5 * time.Second)
	for fault.Hits(fault.PointLLMGenerate) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never reached the hung injection point")
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	cancel()
	select {
	case ans := <-done:
		if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
			t.Fatalf("canceled query took %v to release its slot, want <= 50ms", elapsed)
		}
		if !ans.Degraded || ans.DegradedReason != "canceled" {
			t.Fatalf("canceled query answer = degraded=%v reason=%q, want canceled degrade",
				ans.Degraded, ans.DegradedReason)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled query never returned")
	}
}

// TestChaosCancelStress cancels request contexts at random points during
// concurrent QueryEach and ingest traffic under the race detector: no
// goroutine may leak (watermark), the snapshot may never tear (the baseline
// answer stays exact), and a degraded answer may only ever be blamed on the
// cancellation.
func TestChaosCancelStress(t *testing.T) {
	s := newCaseStudySystem(t, Config{})
	baseline := s.Query(chaosQueries[0])
	baseGoroutines := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(1))

	const rounds = 12
	for round := 0; round < rounds; round++ {
		queries := make([]string, 24)
		ctxs := make([]context.Context, len(queries))
		var cancels []context.CancelFunc
		for i := range queries {
			queries[i] = chaosQueries[(round+i)%len(chaosQueries)]
			ctx, cancel := context.WithCancel(context.Background())
			ctxs[i], cancels = ctx, append(cancels, cancel)
			// Cancel a third immediately, a third mid-flight, leave a third.
			switch i % 3 {
			case 0:
				cancel()
			case 1:
				time.AfterFunc(time.Duration(rng.Intn(2000))*time.Microsecond, cancel)
			}
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = s.Ingest([]adapter.RawFile{{Domain: "flights", Source: "airport-api",
				Name: "live", Format: "text",
				Content: []byte("The status of MU551 is Boarding.")}})
		}()

		answers := s.QueryEach(ctxs, queries)
		for i, ans := range answers {
			if ans.Degraded && ans.DegradedReason != "canceled" && ans.DegradedReason != "deadline" {
				t.Fatalf("round %d query %d: degraded reason %q with no fault armed",
					round, i, ans.DegradedReason)
			}
		}
		wg.Wait()
		for _, cancel := range cancels {
			cancel()
		}
	}

	after := s.Query(chaosQueries[0])
	if !answersEqual(baseline, after) {
		t.Fatalf("post-stress answer diverged: %+v vs %+v", after, baseline)
	}
	waitGoroutines(t, baseGoroutines)
}
