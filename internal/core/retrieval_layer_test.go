package core

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"multirag/internal/adapter"
	"multirag/internal/datasets"
	"multirag/internal/llm"
)

// TestDocOfChunk pins the chunk-ID → document-ID recovery, including the
// degenerate shapes the jsonld layer can produce.
func TestDocOfChunk(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},           // empty ID
		{"plain", "plain"}, // no '#'
		{"domain/src/name#h3", "domain/src/name#h3"},       // '#' without '/'
		{"domain/src/name#h3/r0", "domain/src/name#h3"},    // record suffix
		{"domain/src/name#h3/r0/p2", "domain/src/name#h3"}, // paragraph suffix
		{"#/x", "#"},         // leading '#'
		{"a#b#c/d", "a#b#c"}, // cut at the first '/' after the first '#'
	}
	for _, c := range cases {
		if got := docOfChunk(c.in); got != c.want {
			t.Errorf("docOfChunk(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestShardedSystemMatchesFlat is the engine-level determinism contract for
// the layered retrieval subsystem: shard count and postings pruning are pure
// performance knobs, so two systems differing only in those knobs must give
// identical answers and identical document rankings on every query.
func TestShardedSystemMatchesFlat(t *testing.T) {
	spec := datasets.Movies(7)
	spec.Entities = 25
	spec.Queries = 12
	d := datasets.MustGenerate(spec)

	build := func(shards int, noPostings bool) *System {
		s := NewSystem(Config{
			Shards:          shards,
			DisablePostings: noPostings,
			LLM:             llm.Config{Seed: 1},
		})
		if _, err := s.Ingest(d.Files); err != nil {
			t.Fatal(err)
		}
		return s
	}
	for _, variant := range []struct {
		name   string
		shards int
		noPost bool
	}{
		{"sharded8+postings", 8, false},
		{"sharded3", 3, true},
		{"flat+postings", 1, false},
	} {
		// Fresh systems per comparison: source-history authority is
		// online-learned, so both sides must see the same query sequence.
		flat := build(1, true)
		sys := build(variant.shards, variant.noPost)
		for _, q := range d.Queries {
			fa, fdocs := flat.QueryWithDocs(q.Text, 5)
			va, vdocs := sys.QueryWithDocs(q.Text, 5)
			if !reflect.DeepEqual(fa.Values, va.Values) {
				t.Fatalf("%s: answers diverge for %q: %v vs %v", variant.name, q.Text, fa.Values, va.Values)
			}
			if !reflect.DeepEqual(fdocs, vdocs) {
				t.Fatalf("%s: doc rankings diverge for %q: %v vs %v", variant.name, q.Text, fdocs, vdocs)
			}
		}
	}
}

// TestQueryWithDocsRankingStable checks ranking stability on a quiescent
// system: repeated evaluations must produce the identical document order.
func TestQueryWithDocsRankingStable(t *testing.T) {
	s := newCaseStudySystem(t, Config{})
	q := "What is the status of CA981?"
	_, first := s.QueryWithDocs(q, 5)
	if len(first) == 0 {
		t.Fatal("no documents ranked")
	}
	for i := 0; i < 5; i++ {
		if _, docs := s.QueryWithDocs(q, 5); !reflect.DeepEqual(docs, first) {
			t.Fatalf("ranking unstable on quiescent system: %v vs %v", docs, first)
		}
	}
}

// TestQueryWithDocsUnderConcurrentIngest is the shard-under-ingest stress
// for the ranking path: QueryWithDocs must stay internally consistent (one
// snapshot per call: no duplicate docs, bounded length, stable answer for
// the untouched flight) while batches commit into the sharded index.
func TestQueryWithDocsUnderConcurrentIngest(t *testing.T) {
	const rankers = 6
	const batches = 8
	s := newCaseStudySystem(t, Config{Shards: 4, Workers: 4, AnswerCacheSize: 32})

	var stop atomic.Bool
	var ranked atomic.Int64
	var wg sync.WaitGroup
	wg.Add(rankers)
	for r := 0; r < rankers; r++ {
		go func(r int) {
			defer wg.Done()
			for !stop.Load() {
				ans, docs := s.QueryWithDocs("What is the status of CA981?", 5)
				if !ans.Found {
					t.Error("answer lost during concurrent ingest")
					return
				}
				if len(docs) > 5 {
					t.Errorf("ranking overflow: %d docs for k=5", len(docs))
					return
				}
				seen := map[string]bool{}
				for _, doc := range docs {
					if seen[doc] {
						t.Errorf("duplicate doc %q in ranking %v", doc, docs)
						return
					}
					seen[doc] = true
				}
				ranked.Add(1)
			}
		}(r)
	}
	for b := 0; b < batches; b++ {
		_, err := s.Ingest([]adapter.RawFile{{
			Domain: "flights", Source: fmt.Sprintf("radar-%d", b), Name: "sweep", Format: "csv",
			Content: []byte(fmt.Sprintf("flight,status,gate\nXX%d42,On time,A%d\n", b, b)),
		}})
		if err != nil {
			t.Fatalf("ingest batch %d: %v", b, err)
		}
		floor := ranked.Load() + rankers
		for ranked.Load() < floor && !t.Failed() {
			runtime.Gosched()
		}
	}
	stop.Store(true)
	wg.Wait()
	if ranked.Load() == 0 {
		t.Fatal("no rankings completed during ingestion")
	}
	// Every batch must have landed in the sharded index and be retrievable.
	for b := 0; b < batches; b++ {
		if ans := s.Query(fmt.Sprintf("What is the status of XX%d42?", b)); !ans.Found {
			t.Fatalf("batch %d invisible after concurrent ingest", b)
		}
	}
}

// TestShardedIngestDeterministicAcrossWorkerCounts extends PR 1's
// determinism contract to the sharded index: pool size must not change what
// any shard serves.
func TestShardedIngestDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := datasets.Flights(9)
	spec.Entities = 20
	spec.Queries = 10
	d := datasets.MustGenerate(spec)
	build := func(workers int) *System {
		s := NewSystem(Config{Workers: workers, Shards: 8, LLM: llm.Config{Seed: 1}})
		if _, err := s.Ingest(d.Files); err != nil {
			t.Fatal(err)
		}
		return s
	}
	serial := build(1)
	parallel := build(8)
	if serial.Index().Len() != parallel.Index().Len() {
		t.Fatalf("sharded index sizes diverge: %d vs %d", serial.Index().Len(), parallel.Index().Len())
	}
	for _, q := range d.Queries {
		sa := serial.Query(q.Text)
		pa := parallel.Query(q.Text)
		if !reflect.DeepEqual(sa.Values, pa.Values) {
			t.Fatalf("answers diverge for %q: %v vs %v", q.Text, sa.Values, pa.Values)
		}
	}
}
