package core

import (
	"context"
	"fmt"
	"sync"

	"multirag/internal/extract"
	"multirag/internal/fault"
	"multirag/internal/kg"
	"multirag/internal/linegraph"
	"multirag/internal/retrieval"
	"multirag/internal/wal"
)

// Durability: systems opened with Open/OpenFS write one WAL record per commit
// group — the committed batches' recorded operation streams, chunks and
// embeddings — fsync'd BEFORE the group's snapshot is published, so an
// acknowledged Ingest can never be lost. A background checkpointer folds the
// log into a serialized snapshot (graph + line graph + retrieval store) once
// it crosses a record-count or byte threshold: it rotates the log first, so
// every segment below the rotation point is fully covered by the checkpoint
// written against the state at that same LSN, and only then prunes covered
// segments and stale checkpoints. Recovery loads the newest valid checkpoint,
// replays the WAL tail through the same recorder-replay + BuildDelta path the
// committer runs, and truncates whatever torn frame the crash left behind.
//
// Not covered: destructive graph mutation outside the logged ingest path (the
// perturbation harness mutates the served graph in place and calls RebuildSG)
// is invisible to the WAL — durable deployments must not use it between
// checkpoint and crash.

// Default background-checkpoint thresholds (Config.CheckpointRecords /
// Config.CheckpointBytes when unset).
const (
	DefaultCheckpointRecords = 256
	DefaultCheckpointBytes   = 8 << 20
)

// snapshotVersion versions the checkpoint body layout.
const snapshotVersion = 1

// durable is the persistence state of a System opened with Open/OpenFS; nil
// for purely in-memory systems.
type durable struct {
	fs  wal.FS
	dir string

	// log and enc are guarded by System.mu: appends happen inside the commit
	// critical section, rotation inside Checkpoint's locked window, close
	// under the lock in Close. lastCkpt/hasCkpt share the same guard.
	log      *wal.Log
	enc      wal.Encoder
	lastCkpt uint64 // LSN covered by the newest durable checkpoint
	hasCkpt  bool

	// ckptMu serializes whole checkpoint cycles (rotate → serialize → write →
	// prune) across the background loop, explicit Checkpoint calls and the
	// final one in Close.
	ckptMu    sync.Mutex
	ckptReq   chan struct{}
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// RecoveryInfo summarises what Open found on disk.
type RecoveryInfo struct {
	// CheckpointLSN is the LSN covered by the checkpoint that seeded the
	// state (0 when the system started from scratch).
	CheckpointLSN uint64
	// RecordsReplayed is how many WAL records were replayed on top of it.
	RecordsReplayed int
	// Truncated reports that a torn or corrupt frame was found at the log
	// tail and everything from it on was discarded (a crash mid-append; the
	// affected group was never acknowledged).
	Truncated bool
}

// Open opens (or initialises) a durable system in dir: the newest valid
// checkpoint is loaded, the WAL tail is replayed on top of it, torn frames
// are repaired, and the log is reopened for appending. The caller owns the
// returned system's lifecycle and must Close it to take the final checkpoint.
func Open(dir string, cfg Config) (*System, *RecoveryInfo, error) {
	return OpenFS(wal.OSFS{}, dir, cfg)
}

// OpenFS is Open over an explicit filesystem — the seam the fault-injection
// suite drives with wal.MemFS.
func OpenFS(fsys wal.FS, dir string, cfg Config) (*System, *RecoveryInfo, error) {
	s := NewSystem(cfg)
	body, ckptLSN, err := wal.LoadCheckpoint(fsys, dir)
	if err != nil {
		return nil, nil, fmt.Errorf("core: load checkpoint: %w", err)
	}
	sn := s.snap.Load() // the fresh empty snapshot NewSystem published
	if body != nil {
		if sn, err = s.decodeSnapshot(body); err != nil {
			return nil, nil, fmt.Errorf("core: checkpoint at LSN %d: %w", ckptLSN, err)
		}
	}
	sr, err := wal.Scan(fsys, dir, ckptLSN)
	if err != nil {
		return nil, nil, err
	}
	info := &RecoveryInfo{
		CheckpointLSN:   ckptLSN,
		RecordsReplayed: len(sr.Records),
		Truncated:       sr.Truncated,
	}
	g, sg, ix := sn.graph, sn.sg, sn.index
	var newIDs []string
	for i, payload := range sr.Records {
		if newIDs, err = s.applyRecovered(g, ix, payload, newIDs); err != nil {
			return nil, nil, fmt.Errorf("core: replay WAL record %d: %w", sr.From+uint64(i), err)
		}
	}
	if len(newIDs) > 0 && !s.cfg.DisableMKA {
		// One merged delta over the whole replayed tail. Equivalent to the
		// per-record deltas the committer ran: a homologous group is always
		// recomputed from the current graph at its last touch, and every
		// record that grows a group touches it with that record's own IDs —
		// so recomputing each touched group once, against the final graph,
		// lands on the same SG without the O(records × groups) rescans.
		if s.cfg.DisableIncrementalSG {
			sg = linegraph.Build(g)
		} else {
			sg = linegraph.BuildDelta(sg, g, newIDs)
		}
	}
	log, err := wal.OpenLog(fsys, dir, sr)
	if err != nil {
		return nil, nil, err
	}
	s.snap.Store(&snapshot{graph: g, sg: sg, index: ix})
	s.replPos.Store(log.NextLSN())
	s.dur = &durable{
		fs:       fsys,
		dir:      dir,
		log:      log,
		lastCkpt: ckptLSN,
		hasCkpt:  body != nil,
		ckptReq:  make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.checkpointLoop()
	return s, info, nil
}

// Close drains the durability machinery: it stops the background
// checkpointer, takes a final checkpoint (so a restart recovers from the
// snapshot alone, with an empty tail to replay) and closes the log. The
// serving layer calls it after draining in-flight ingest; an Ingest racing
// Close fails its WAL append and is not acknowledged. Close is idempotent;
// on an in-memory system it is a no-op.
func (s *System) Close() error {
	d := s.dur
	if d == nil {
		return nil
	}
	var err error
	d.closeOnce.Do(func() {
		close(d.stop)
		<-d.done
		err = s.Checkpoint()
		s.mu.Lock()
		if cerr := d.log.Close(); err == nil {
			err = cerr
		}
		s.mu.Unlock()
	})
	return err
}

// Checkpoint writes a durable snapshot of the current serving state and
// prunes the log below it. The rotate-then-serialize order under the write
// lock pins a consistent (snapshot, LSN) pair: every record below the
// rotation point is already folded into the snapshot about to be written, so
// pruning those segments after the checkpoint is durable can never widen a
// recovery gap. Serialization itself runs off-lock against the immutable
// snapshot, so commits proceed while the checkpoint body is encoded.
func (s *System) Checkpoint() error {
	d := s.dur
	if d == nil {
		return nil
	}
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	s.mu.Lock()
	if d.hasCkpt && d.log.NextLSN() == d.lastCkpt {
		s.mu.Unlock()
		return nil // nothing committed since the last checkpoint
	}
	if err := d.log.Rotate(); err != nil {
		s.mu.Unlock()
		return err
	}
	lsn := d.log.NextLSN()
	sn := s.snap.Load()
	s.mu.Unlock()

	var e wal.Encoder
	encodeSnapshot(&e, sn)
	if err := wal.WriteCheckpoint(d.fs, d.dir, lsn, e.Bytes()); err != nil {
		return err
	}
	s.mu.Lock()
	d.lastCkpt, d.hasCkpt = lsn, true
	// Pruning honours the lowest replication-feed lease: segments holding
	// records a lagging replica has not shipped yet survive the checkpoint.
	floor := s.walLeaseFloorLocked(lsn)
	s.mu.Unlock()
	return wal.RemoveBelow(d.fs, d.dir, lsn, floor)
}

// checkpointLoop is the background checkpointer: it waits for threshold
// triggers from the commit path and folds the log. A failed attempt is
// retried on the next trigger (the thresholds stay exceeded), and Close takes
// a final checkpoint whose error does surface.
func (s *System) checkpointLoop() {
	d := s.dur
	defer close(d.done)
	for {
		select {
		case <-d.stop:
			return
		case <-d.ckptReq:
			_ = s.Checkpoint()
		}
	}
}

// maybeRequestCheckpoint pokes the background checkpointer when the log has
// outgrown the configured thresholds. Called under System.mu right after a
// publish; the send is non-blocking, so triggers coalesce while a checkpoint
// is in flight.
func (d *durable) maybeRequestCheckpoint(cfg *Config) {
	recs := cfg.CheckpointRecords
	if recs <= 0 {
		recs = DefaultCheckpointRecords
	}
	bytes := cfg.CheckpointBytes
	if bytes <= 0 {
		bytes = DefaultCheckpointBytes
	}
	if d.log.NextLSN()-d.lastCkpt < uint64(recs) && d.log.ActiveSize() < bytes {
		return
	}
	select {
	case d.ckptReq <- struct{}{}:
	default:
	}
}

// appendGroup durably logs one commit group's committed batches. Called under
// System.mu before the group's snapshot is published: a batch is acknowledged
// only after its record is fsync'd, and recovery replays a record only if it
// was fully written — the two halves of the no-lost-acks contract.
func (d *durable) appendGroup(committed []*prepared) error {
	// Chaos seam: an injected error here exercises the not-acknowledged path
	// (group fails, nothing publishes) without latching the log — the
	// distinction between a request-scoped append failure and a poisoned
	// directory. Latch behaviour itself is driven through the MemFS OnOp hook
	// (wal.FaultOps) so the real latch logic runs.
	if err := fault.Inject(context.Background(), fault.PointWALAppend); err != nil {
		return err
	}
	d.enc.Reset()
	if err := encodeGroupRecord(&d.enc, committed); err != nil {
		return err
	}
	_, err := d.log.Append(d.enc.Bytes())
	return err
}

// encodeSnapshot serializes one immutable snapshot as a checkpoint body.
func encodeSnapshot(e *wal.Encoder, sn *snapshot) {
	e.Uvarint(snapshotVersion)
	sn.graph.EncodeTo(e)
	e.Bool(sn.sg != nil)
	if sn.sg != nil {
		sn.sg.EncodeTo(e)
	}
	retrieval.EncodeStore(e, sn.index)
}

// decodeSnapshot rebuilds a snapshot from a checkpoint body, constructing the
// retrieval store with this system's own layout options (shard count and
// pre-filters are rebuild-time knobs, not persisted state).
func (s *System) decodeSnapshot(body []byte) (*snapshot, error) {
	d := wal.NewDecoder(body)
	if v := d.Uvarint(); d.Err() == nil && v != snapshotVersion {
		return nil, fmt.Errorf("core: checkpoint version %d not supported", v)
	}
	g, err := kg.DecodeGraph(d)
	if err != nil {
		return nil, err
	}
	var sg *linegraph.SG
	if d.Bool() {
		if sg, err = linegraph.DecodeSG(d, g); err != nil {
			return nil, err
		}
	}
	ix := retrieval.New(s.cfg.storeOptions())
	if err := retrieval.DecodeIntoStore(d, ix); err != nil {
		return nil, err
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	if sg == nil && !s.cfg.DisableMKA && g.NumTriples() > 0 {
		// The checkpoint was written with MKA disabled; build the line graph
		// this configuration expects.
		sg = linegraph.Build(g)
	}
	return &snapshot{graph: g, sg: sg, index: ix}, nil
}

// opStreamer is the serialization half of the extraction-recorder contract:
// production recorders (extract.Recorder) expose their recorded op stream so
// the WAL can replay it. Batches whose replayer cannot be serialized fail
// their WAL append instead of being silently dropped from the log.
type opStreamer interface {
	ForEachOp(entity func(name, typ, domain string), triple func(t kg.Triple))
}

// encodeGroupRecord serializes the committed batches of one commit group, in
// ticket order, as one WAL record payload: per batch the per-file recorded
// operation streams plus the rendered chunks with their embeddings.
func encodeGroupRecord(e *wal.Encoder, committed []*prepared) error {
	e.Int(len(committed))
	for _, p := range committed {
		e.Int(len(p.work))
		for i := range p.work {
			w := &p.work[i]
			str, ok := w.rec.(opStreamer)
			if !ok {
				return fmt.Errorf("core: recorder %T cannot be serialized to the WAL", w.rec)
			}
			n := 0
			str.ForEachOp(
				func(string, string, string) { n++ },
				func(kg.Triple) { n++ })
			e.Int(n)
			str.ForEachOp(
				func(name, typ, domain string) {
					e.Bool(true)
					e.String(name)
					e.String(typ)
					e.String(domain)
				},
				func(t kg.Triple) {
					e.Bool(false)
					e.String(t.Subject)
					e.String(t.Predicate)
					e.String(t.Object)
					e.String(t.ObjectEntity)
					e.String(t.Source)
					e.String(t.Domain)
					e.String(t.Format)
					e.String(t.ChunkID)
					e.F64(t.Weight)
				})
			e.Int(len(w.chunks))
			for j := range w.chunks {
				c := &w.chunks[j]
				e.String(c.ID)
				e.String(c.DocID)
				e.String(c.Source)
				e.String(c.Text)
				e.F32s(w.vecs[j])
			}
		}
	}
	return nil
}

// recoveredFile is one file's replay data decoded from a WAL record.
type recoveredFile struct {
	rec    *extract.Recorder
	chunks []retrieval.Chunk
	vecs   []retrieval.Vector
}

// decodeGroupRecord rebuilds a commit group's batches from a WAL record
// payload. The op streams are fed back through a fresh Recorder's
// AddEntity/AddTriple — the same validation the original extraction passed —
// and every embedding is checked against the store width, so a record that
// somehow decodes but violates an invariant errors instead of panicking
// downstream.
func decodeGroupRecord(payload []byte, dim int) ([][]recoveredFile, error) {
	d := wal.NewDecoder(payload)
	nb := d.Int()
	batches := make([][]recoveredFile, 0, nb)
	for i := 0; i < nb && d.Err() == nil; i++ {
		nf := d.Int()
		files := make([]recoveredFile, 0, nf)
		for j := 0; j < nf && d.Err() == nil; j++ {
			f := recoveredFile{rec: extract.NewRecorder()}
			nOps := d.Int()
			for k := 0; k < nOps && d.Err() == nil; k++ {
				if d.Bool() {
					f.rec.AddEntity(d.String(), d.String(), d.String())
					continue
				}
				t := kg.Triple{
					Subject:      d.String(),
					Predicate:    d.String(),
					Object:       d.String(),
					ObjectEntity: d.String(),
					Source:       d.String(),
					Domain:       d.String(),
					Format:       d.String(),
					ChunkID:      d.String(),
					Weight:       d.F64(),
				}
				if d.Err() != nil {
					break
				}
				if _, err := f.rec.AddTriple(t); err != nil {
					return nil, err
				}
			}
			nChunks := d.Int()
			for k := 0; k < nChunks && d.Err() == nil; k++ {
				c := retrieval.Chunk{ID: d.String(), DocID: d.String(), Source: d.String(), Text: d.String()}
				v := d.F32s()
				if d.Err() != nil {
					break
				}
				if len(v) != dim {
					return nil, fmt.Errorf("core: recovered chunk %s vector dim %d does not match store dim %d", c.ID, len(v), dim)
				}
				f.chunks = append(f.chunks, c)
				f.vecs = append(f.vecs, v)
			}
			files = append(files, f)
		}
		batches = append(batches, files)
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return batches, nil
}

// applyRecovered replays one WAL record onto the recovery state — every
// batch's recorders in ticket order, the chunks into the store — and appends
// the record's new triple IDs to newIDs. The line-graph delta is deferred to
// the caller, which folds the whole replayed tail in one BuildDelta: per-tail
// instead of per-record, because groups only ever need their state as of the
// last record that touched them.
func (s *System) applyRecovered(g *kg.Graph, ix retrieval.Store, payload []byte, newIDs []string) ([]string, error) {
	batches, err := decodeGroupRecord(payload, ix.Dim())
	if err != nil {
		return newIDs, err
	}
	for _, files := range batches {
		for i := range files {
			f := &files[i]
			if newIDs, err = f.rec.ReplayAppend(g, newIDs); err != nil {
				return newIDs, err
			}
			if len(f.chunks) > 0 {
				ix.AddEmbeddedBatch(f.chunks, f.vecs)
			}
		}
	}
	return newIDs, nil
}
