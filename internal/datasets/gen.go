package datasets

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"multirag/internal/adapter"
)

// Generate materialises a fusion dataset from its spec: gold truth,
// per-source claims (with reliability, coverage and copying), files in each
// source's storage format, and the query workload. The output is fully
// deterministic in spec.Seed. A source with an unknown storage format is an
// error. MustGenerate is the panicking convenience for code-defined specs.
func Generate(spec Spec) (*Dataset, error) {
	rng := rand.New(rand.NewSource(int64(spec.Seed)))
	d := &Dataset{Spec: spec, Gold: map[string][]string{}}

	// 1. Entities with unique names.
	entities := make([]string, 0, spec.Entities)
	seen := map[string]bool{}
	for i := 0; i < spec.Entities; i++ {
		name := entityName(rng, spec.Domain)
		if seen[normName(name)] {
			name = fmt.Sprintf("%s %d", name, i)
		}
		seen[normName(name)] = true
		entities = append(entities, name)
	}

	// 2. Gold truth and per-fact wrong-value pools.
	pool := map[string][]string{} // GoldKey → plausible wrong values
	for _, ent := range entities {
		for _, attr := range spec.Attributes {
			key := GoldKey(ent, attr.Name)
			gold := []string{genValue(rng, attr.Kind)}
			if attr.MultiProb > 0 && rng.Float64() < attr.MultiProb {
				second := genValue(rng, attr.Kind)
				if normName(second) != normName(gold[0]) {
					gold = append(gold, second)
				}
			}
			d.Gold[key] = gold
			n := spec.ConflictPool
			if n <= 0 {
				n = 3
			}
			wrongs := make([]string, 0, n)
			for len(wrongs) < n {
				w := genValue(rng, attr.Kind)
				if !containsNorm(gold, w) && !containsNorm(wrongs, w) {
					wrongs = append(wrongs, w)
				}
			}
			pool[key] = wrongs
		}
	}

	// 3. Claims per source. Copying sources replicate their parent's claims
	// (errors included) — the redundancy pathology.
	claimsBySource := map[string][]Claim{}
	for _, src := range spec.Sources {
		if src.CopyOf != "" {
			parent := claimsBySource[src.CopyOf]
			copied := make([]Claim, len(parent))
			for i, c := range parent {
				c.Source = src.Name
				copied[i] = c
			}
			claimsBySource[src.Name] = copied
			continue
		}
		var claims []Claim
		for _, ent := range entities {
			// Each source renders the entity under one consistent surface
			// form; with probability VariantRate that form is a variant only
			// entity standardisation can resolve.
			surface := ent
			if spec.VariantRate > 0 && rng.Float64() < spec.VariantRate {
				surface = variantSurface(rng, ent, spec.Domain)
			}
			for _, attr := range spec.Attributes {
				if rng.Float64() >= src.Coverage {
					continue
				}
				key := GoldKey(ent, attr.Name)
				if rng.Float64() < src.Reliability {
					for _, v := range d.Gold[key] {
						claims = append(claims, Claim{Entity: surface, Attribute: attr.Name, Value: v, Source: src.Name, Correct: true})
					}
				} else {
					wrongs := pool[key]
					v := wrongs[rng.Intn(len(wrongs))]
					claims = append(claims, Claim{Entity: surface, Attribute: attr.Name, Value: v, Source: src.Name, Correct: false})
				}
			}
		}
		claimsBySource[src.Name] = claims
	}
	for _, src := range spec.Sources {
		d.Claims = append(d.Claims, claimsBySource[src.Name]...)
	}

	// 4. Materialise files.
	for _, src := range spec.Sources {
		f, err := materialise(spec, src, claimsBySource[src.Name])
		if err != nil {
			return nil, fmt.Errorf("datasets: generate %s: %w", spec.Name, err)
		}
		d.Files = append(d.Files, f)
	}

	// 5. Query workload: answerable facts (at least one correct claim).
	answerable := map[string]bool{}
	for _, c := range d.Claims {
		if c.Correct {
			answerable[GoldKey(c.Entity, c.Attribute)] = true
		}
	}
	type fact struct{ ent, attr string }
	var facts []fact
	for _, ent := range entities {
		for _, attr := range spec.Attributes {
			if answerable[GoldKey(ent, attr.Name)] {
				facts = append(facts, fact{ent, attr.Name})
			}
		}
	}
	rng.Shuffle(len(facts), func(i, j int) { facts[i], facts[j] = facts[j], facts[i] })
	n := spec.Queries
	if n > len(facts) {
		n = len(facts)
	}
	for i := 0; i < n; i++ {
		fa := facts[i]
		d.Queries = append(d.Queries, Query{
			ID:        fmt.Sprintf("%s-q%03d", spec.Name, i),
			Text:      fmt.Sprintf("What is the %s of %s?", strings.ReplaceAll(fa.attr, "_", " "), fa.ent),
			Entity:    fa.ent,
			Attribute: fa.attr,
			Gold:      d.Gold[GoldKey(fa.ent, fa.attr)],
		})
	}
	return d, nil
}

// MustGenerate is Generate for specs that are known-good by construction
// (the built-in Table I specs, test fixtures); it panics on error.
func MustGenerate(spec Spec) *Dataset {
	d, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return d
}

func entityName(rng *rand.Rand, domain string) string {
	switch domain {
	case "flights":
		return flightName(rng)
	case "stocks":
		return tickerName(rng)
	default:
		return titleName(rng)
	}
}

func containsNorm(haystack []string, needle string) bool {
	n := normName(needle)
	for _, h := range haystack {
		if normName(h) == n {
			return true
		}
	}
	return false
}

// materialise renders one source's claims into its storage format. An
// unknown format in the source spec is an error: specs can be assembled from
// CLI input, so a typo must surface as a message, not a stack trace.
func materialise(spec Spec, src SourceSpec, claims []Claim) (adapter.RawFile, error) {
	f := adapter.RawFile{
		Domain: spec.Domain,
		Source: src.Name,
		Name:   src.Name + "-data",
		Format: src.Format,
		Meta:   map[string]string{"generator": "multirag-synthetic", "dataset": spec.Name},
	}
	// Group claims per entity preserving claim order; group values per attr.
	byEnt := map[string]*entData{}
	var order []string
	for _, c := range claims {
		key := normName(c.Entity)
		ed, ok := byEnt[key]
		if !ok {
			ed = &entData{name: c.Entity, attrs: map[string][]string{}}
			byEnt[key] = ed
			order = append(order, key)
		}
		ed.attrs[c.Attribute] = append(ed.attrs[c.Attribute], c.Value)
	}
	attrNames := make([]string, len(spec.Attributes))
	for i, a := range spec.Attributes {
		attrNames[i] = a.Name
	}
	switch src.Format {
	case "csv":
		f.Content = renderCSV(byEnt, order, attrNames)
	case "json":
		f.Content = renderJSON(byEnt, order)
	case "xml":
		f.Content = renderXML(byEnt, order)
	case "kg":
		f.Content = renderKG(byEnt, order)
	case "text":
		f.Content = renderText(byEnt, order)
	default:
		return adapter.RawFile{}, fmt.Errorf("datasets: source %s: unknown format %q (want csv/json/xml/kg/text)", src.Name, src.Format)
	}
	return f, nil
}

// entData groups one entity's claimed values per attribute within a source.
type entData struct {
	name  string
	attrs map[string][]string
}

// renderCSV renders wide-format CSV: the first column is the entity name,
// the remaining columns the dataset attributes. An entity with k claimed
// values for some attribute occupies k rows; secondary rows carry only the
// extra values (other cells empty), which the DSM adapter treats as missing.
func renderCSV(byEnt map[string]*entData, order, attrs []string) []byte {
	var sb strings.Builder
	sb.WriteString("name")
	for _, a := range attrs {
		sb.WriteString("," + a)
	}
	sb.WriteString("\n")
	for _, key := range order {
		ed := byEnt[key]
		rows := 1
		for _, a := range attrs {
			if len(ed.attrs[a]) > rows {
				rows = len(ed.attrs[a])
			}
		}
		for r := 0; r < rows; r++ {
			sb.WriteString(csvEscape(ed.name))
			for _, a := range attrs {
				sb.WriteString(",")
				vals := ed.attrs[a]
				if r < len(vals) {
					sb.WriteString(csvEscape(vals[r]))
				}
			}
			sb.WriteString("\n")
		}
	}
	return []byte(sb.String())
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func renderJSON(byEnt map[string]*entData, order []string) []byte {
	var records []map[string]any
	for _, key := range order {
		ed := byEnt[key]
		rec := map[string]any{"name": ed.name}
		attrs := sortedKeys(ed.attrs)
		for _, a := range attrs {
			vals := ed.attrs[a]
			if len(vals) == 1 {
				rec[a] = vals[0]
			} else {
				rec[a] = vals
			}
		}
		records = append(records, rec)
	}
	data, err := json.Marshal(records)
	if err != nil {
		panic(fmt.Sprintf("datasets: render json: %v", err))
	}
	return data
}

func renderXML(byEnt map[string]*entData, order []string) []byte {
	var sb strings.Builder
	sb.WriteString("<records>\n")
	for _, key := range order {
		ed := byEnt[key]
		sb.WriteString("  <record>\n")
		fmt.Fprintf(&sb, "    <name>%s</name>\n", xmlEscape(ed.name))
		for _, a := range sortedKeys(ed.attrs) {
			for _, v := range ed.attrs[a] {
				fmt.Fprintf(&sb, "    <%s>%s</%s>\n", a, xmlEscape(v), a)
			}
		}
		sb.WriteString("  </record>\n")
	}
	sb.WriteString("</records>\n")
	return []byte(sb.String())
}

func xmlEscape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}

func renderKG(byEnt map[string]*entData, order []string) []byte {
	var sb strings.Builder
	for _, key := range order {
		ed := byEnt[key]
		for _, a := range sortedKeys(ed.attrs) {
			for _, v := range ed.attrs[a] {
				fmt.Fprintf(&sb, "%s|%s|%s\n", ed.name, a, v)
			}
		}
	}
	return []byte(sb.String())
}

func renderText(byEnt map[string]*entData, order []string) []byte {
	var paras []string
	for _, key := range order {
		ed := byEnt[key]
		var sents []string
		for _, a := range sortedKeys(ed.attrs) {
			attrWords := strings.ReplaceAll(a, "_", " ")
			for _, v := range ed.attrs[a] {
				sents = append(sents, fmt.Sprintf("The %s of %s is %s.", attrWords, ed.name, v))
			}
		}
		paras = append(paras, strings.Join(sents, " "))
	}
	return []byte(strings.Join(paras, "\n\n"))
}

func sortedKeys(m map[string][]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
