package datasets

import (
	"reflect"
	"strings"
	"testing"

	"multirag/internal/adapter"
	"multirag/internal/extract"
	"multirag/internal/kg"
	"multirag/internal/llm"
	"multirag/internal/textutil"
)

func smallMovies(seed uint64) Spec {
	s := Movies(seed)
	s.Entities = 30
	s.Queries = 20
	return s
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(smallMovies(7))
	b := MustGenerate(smallMovies(7))
	if len(a.Claims) != len(b.Claims) || len(a.Files) != len(b.Files) {
		t.Fatal("same seed must generate identical datasets")
	}
	for i := range a.Claims {
		if a.Claims[i] != b.Claims[i] {
			t.Fatalf("claim %d differs: %+v vs %+v", i, a.Claims[i], b.Claims[i])
		}
	}
	for i := range a.Files {
		if string(a.Files[i].Content) != string(b.Files[i].Content) {
			t.Fatalf("file %d content differs", i)
		}
	}
	c := MustGenerate(smallMovies(8))
	if len(c.Claims) == len(a.Claims) && reflect.DeepEqual(c.Claims, a.Claims) {
		t.Fatal("different seeds must differ")
	}
}

func TestGenerateQueriesAnswerable(t *testing.T) {
	d := MustGenerate(smallMovies(1))
	if len(d.Queries) == 0 {
		t.Fatal("no queries generated")
	}
	for _, q := range d.Queries {
		if len(q.Gold) == 0 {
			t.Fatalf("query %s has no gold", q.ID)
		}
		found := false
		for _, c := range d.Claims {
			if c.Correct && GoldKey(c.Entity, c.Attribute) == GoldKey(q.Entity, q.Attribute) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("query %s has no correct claim in the corpus", q.ID)
		}
		if !strings.Contains(q.Text, "What is the") {
			t.Fatalf("query text grammar broken: %q", q.Text)
		}
	}
}

func TestGenerateCopySourcesReplicate(t *testing.T) {
	d := MustGenerate(smallMovies(3))
	spec := d.Spec
	var copySrc, parent string
	for _, s := range spec.Sources {
		if s.CopyOf != "" {
			copySrc, parent = s.Name, s.CopyOf
			break
		}
	}
	if copySrc == "" {
		t.Skip("preset has no copying source")
	}
	var a, b []Claim
	for _, c := range d.Claims {
		switch c.Source {
		case copySrc:
			a = append(a, c)
		case parent:
			b = append(b, c)
		}
	}
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("copy source must replicate parent: %d vs %d claims", len(a), len(b))
	}
	for i := range a {
		if a[i].Value != b[i].Value || a[i].Entity != b[i].Entity {
			t.Fatalf("copied claim %d differs", i)
		}
	}
}

func TestFilterFormats(t *testing.T) {
	d := MustGenerate(smallMovies(1))
	jk, err := d.FilterFormats("J/K")
	if err != nil {
		t.Fatalf("FilterFormats(J/K): %v", err)
	}
	for _, f := range jk {
		if f.Format != "json" && f.Format != "kg" {
			t.Fatalf("unexpected format %s in J/K filter", f.Format)
		}
	}
	if len(jk) == 0 || len(jk) >= len(d.Files) {
		t.Fatalf("filter size = %d of %d", len(jk), len(d.Files))
	}
	// Unknown letters come from table definitions and CLI flags: they must
	// surface as errors, not panics.
	if _, err := d.FilterFormats("Z"); err == nil {
		t.Fatal("FilterFormats(Z) = nil error, want unknown-letter error")
	}
	if _, err := d.QueriesFor("Z", 5); err == nil {
		t.Fatal("QueriesFor(Z) = nil error, want unknown-letter error")
	}
	if _, err := Generate(Spec{Name: "bad", Domain: "movie", Entities: 1,
		Attributes: []AttrSpec{{Name: "director", Kind: "person"}},
		Sources:    []SourceSpec{{Name: "s1", Format: "parquet", Reliability: 1, Coverage: 1}},
	}); err == nil {
		t.Fatal("Generate with unknown source format = nil error, want error")
	}
}

func TestSourcesByFormatMatchesTableI(t *testing.T) {
	d := MustGenerate(Movies(1))
	got := d.SourcesByFormat()
	if got["json"] != 4 || got["kg"] != 5 || got["csv"] != 4 {
		t.Fatalf("Movies source split = %v, want J:4 K:5 C:4 (Table I)", got)
	}
	b := MustGenerate(Books(1))
	gb := b.SourcesByFormat()
	if gb["json"] != 3 || gb["csv"] != 3 || gb["xml"] != 4 {
		t.Fatalf("Books source split = %v, want J:3 C:3 X:4", gb)
	}
	fl := MustGenerate(Flights(1))
	gf := fl.SourcesByFormat()
	if gf["csv"] != 10 || gf["json"] != 10 {
		t.Fatalf("Flights source split = %v, want C:10 J:10", gf)
	}
}

func TestDensityContrast(t *testing.T) {
	// Movies must be denser than Books: more claims per gold fact.
	m := MustGenerate(Movies(1))
	b := MustGenerate(Books(1))
	density := func(d *Dataset) float64 {
		return float64(len(d.Claims)) / float64(len(d.Gold))
	}
	if density(m) <= density(b)*1.5 {
		t.Fatalf("Movies density %.2f must clearly exceed Books density %.2f",
			density(m), density(b))
	}
}

// buildGraph ingests a dataset end to end (adapters → extractor → KG).
func buildGraph(t *testing.T, files []adapter.RawFile) *kg.Graph {
	t.Helper()
	fused, err := adapter.NewRegistry().Fuse(files)
	if err != nil {
		t.Fatalf("Fuse: %v", err)
	}
	g := kg.New()
	if _, err := extract.New(llm.NewSim(llm.Config{Seed: 1, ExtractionNoise: 0})).Build(g, fused); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestEndToEndIngestion(t *testing.T) {
	d := MustGenerate(smallMovies(1))
	g := buildGraph(t, d.Files)
	if g.NumTriples() < len(d.Claims)/2 {
		t.Fatalf("graph has %d triples for %d claims; ingestion is losing data",
			g.NumTriples(), len(d.Claims))
	}
	// Every query's gold fact must be reachable through the graph (entity
	// IDs are standardised by the knowledge-construction std phase).
	missing := 0
	for _, q := range d.Queries {
		if len(g.TriplesByKey(kg.CanonicalID(textutil.StandardizeName(q.Entity)), q.Attribute)) == 0 {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("%d/%d queries have no triples in the graph", missing, len(d.Queries))
	}
}

func TestMaskRelationsKeepsAnswerability(t *testing.T) {
	d := MustGenerate(smallMovies(2))
	g := buildGraph(t, d.Files)
	before := g.NumTriples()
	removed := MaskRelations(g, 0.5, 11, d.Gold)
	if removed == 0 {
		t.Fatal("masking removed nothing")
	}
	if g.NumTriples() != before-removed {
		t.Fatalf("triple count inconsistent: %d vs %d-%d", g.NumTriples(), before, removed)
	}
	for _, q := range d.Queries {
		ts := g.TriplesByKey(kg.CanonicalID(textutil.StandardizeName(q.Entity)), q.Attribute)
		correct := false
		for _, tr := range ts {
			for _, gold := range q.Gold {
				if kg.CanonicalID(tr.Object) == kg.CanonicalID(gold) {
					correct = true
				}
			}
		}
		if !correct {
			t.Fatalf("query %s lost its last correct claim under masking", q.ID)
		}
	}
}

func TestMaskRelationsZeroFrac(t *testing.T) {
	d := MustGenerate(smallMovies(2))
	g := buildGraph(t, d.Files)
	if MaskRelations(g, 0, 1, d.Gold) != 0 {
		t.Fatal("frac=0 must be a no-op")
	}
}

func TestAddShuffledTriples(t *testing.T) {
	d := MustGenerate(smallMovies(2))
	g := buildGraph(t, d.Files)
	before := g.NumTriples()
	added := AddShuffledTriples(g, 0.3, 5)
	if added == 0 {
		t.Fatal("no triples added")
	}
	if g.NumTriples() != before+added {
		t.Fatalf("count mismatch: %d vs %d+%d", g.NumTriples(), before, added)
	}
	// Perturbation triples must be attributable.
	foundPerturb := false
	for _, id := range g.TripleIDs() {
		tr, _ := g.Triple(id)
		if strings.HasPrefix(tr.Source, "perturb-") {
			foundPerturb = true
			break
		}
	}
	if !foundPerturb {
		t.Fatal("perturbation source tag missing")
	}
}

func TestCorruptSources(t *testing.T) {
	d := MustGenerate(smallMovies(4))
	c, err := d.CorruptSources(0.5, 9)
	if err != nil {
		t.Fatalf("CorruptSources: %v", err)
	}
	if len(c.Claims) != len(d.Claims) {
		t.Fatalf("claim count changed: %d vs %d", len(c.Claims), len(d.Claims))
	}
	changed := 0
	for i := range c.Claims {
		if c.Claims[i].Value != d.Claims[i].Value {
			changed++
		}
	}
	frac := float64(changed) / float64(len(d.Claims))
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("corruption fraction = %.2f, want ≈0.5", frac)
	}
	if same, err := d.CorruptSources(0, 1); err != nil || same != d {
		t.Fatal("frac=0 must return the dataset unchanged")
	}
	// Files must reflect corrupted claims.
	if reflect.DeepEqual(c.Files, d.Files) {
		t.Fatal("files not regenerated after corruption")
	}
}

func TestGenerateQABridge(t *testing.T) {
	spec := Hotpot(3)
	spec.Questions = 20
	d := GenerateQA(spec)
	if len(d.Questions) != 20 {
		t.Fatalf("questions = %d", len(d.Questions))
	}
	for _, q := range d.Questions {
		if q.Type != "bridge" {
			t.Fatalf("hotpot preset must be all bridge questions, got %s", q.Type)
		}
		if len(q.Support) != 2 {
			t.Fatalf("bridge question must have 2 supporting docs: %v", q.Support)
		}
		for _, id := range q.Support {
			if _, ok := d.DocByID(id); !ok {
				t.Fatalf("supporting doc %s missing from corpus", id)
			}
		}
		if len(q.Answer) != 1 || q.Answer[0] == "" {
			t.Fatalf("bad answer: %v", q.Answer)
		}
	}
}

func TestGenerateQAComparisonMix(t *testing.T) {
	spec := TwoWiki(3)
	spec.Questions = 60
	d := GenerateQA(spec)
	comp := 0
	for _, q := range d.Questions {
		if q.Type == "comparison" {
			comp++
			if q.Answer[0] != "yes" && q.Answer[0] != "no" {
				t.Fatalf("comparison answer = %v", q.Answer)
			}
		}
	}
	if comp == 0 || comp == len(d.Questions) {
		t.Fatalf("comparison mix = %d/%d, want a blend", comp, len(d.Questions))
	}
}

func TestGenerateQADeterministic(t *testing.T) {
	s := Hotpot(5)
	s.Questions = 10
	a := GenerateQA(s)
	b := GenerateQA(s)
	if !reflect.DeepEqual(a.Questions, b.Questions) {
		t.Fatal("QA generation must be deterministic")
	}
}

func TestGoldKeyCaseInsensitive(t *testing.T) {
	if GoldKey("The Matrix", "director") != GoldKey("the  matrix", "director") {
		t.Fatal("gold keys must normalise entity case/space")
	}
}
