// Package datasets generates the synthetic benchmark corpora that stand in
// for the paper's evaluation data: the four multi-source fusion datasets
// (Movies, Books, Flights, Stocks — Table I) and the two multi-hop QA
// datasets (HotpotQA-like and 2WikiMultiHopQA-like). See DESIGN.md §1 for
// why these substitutions preserve the experimental behaviour.
//
// The generators are fully deterministic given a seed. Each fusion dataset
// has known gold truth, per-source reliability/coverage/copying structure and
// a format split across CSV, nested JSON, XML, native-KG and free-text files,
// so both fusion F1 and adapter behaviour are exercised end to end.
package datasets

import (
	"fmt"

	"multirag/internal/adapter"
)

// AttrSpec describes one attribute of the dataset's entities.
type AttrSpec struct {
	// Name is the attribute / relation name ("director").
	Name string
	// Kind selects the value generator: "person", "year", "word", "city",
	// "time", "number", "status".
	Kind string
	// MultiProb is the probability an entity has two true values for this
	// attribute (movies with two directors, books with two authors).
	MultiProb float64
}

// SourceSpec describes one data source.
type SourceSpec struct {
	// Name is the source identifier ("src-csv-03").
	Name string
	// Format is the storage format: "csv", "json", "xml", "kg" or "text".
	Format string
	// Reliability is the probability a covered fact is reported correctly.
	Reliability float64
	// Coverage is the probability the source covers a given fact; low
	// coverage across sources is what makes a dataset sparse.
	Coverage float64
	// CopyOf, when set, makes this source replicate another source's claims
	// (including its errors) — the redundancy pathology of §I.
	CopyOf string
}

// Spec parameterises a fusion dataset.
type Spec struct {
	Name       string
	Domain     string
	Entities   int
	Attributes []AttrSpec
	Sources    []SourceSpec
	Queries    int
	Seed       uint64
	// ConflictPool is how many distinct wrong values can circulate per fact;
	// a small pool concentrates conflict on the same wrong value (harder).
	ConflictPool int
	// VariantRate is the probability that a source renders an entity under a
	// variant surface form; variants are resolvable only by the entity
	// standardisation phase of knowledge construction (§III-B), which is how
	// sparse data punishes methods that cannot connect knowledge elements.
	VariantRate float64
}

// Claim is one source's assertion about a fact, kept for inspection and for
// the pure data-fusion baselines that consume claims directly.
type Claim struct {
	Entity    string
	Attribute string
	Value     string
	Source    string
	Correct   bool
}

// Query is a benchmark query with its gold answer set.
type Query struct {
	ID        string
	Text      string
	Entity    string // surface form
	Attribute string
	Gold      []string
}

// Dataset is a generated fusion benchmark.
type Dataset struct {
	Spec    Spec
	Files   []adapter.RawFile
	Claims  []Claim
	Gold    map[string][]string // key: GoldKey(entity, attribute)
	Queries []Query
}

// GoldKey builds the lookup key for a gold fact. Entity matching is
// case-insensitive to mirror kg.CanonicalID.
func GoldKey(entity, attribute string) string {
	return normName(entity) + "\x00" + attribute
}

// parseFormatLetters expands a Table II format-combination string (J=json,
// K=kg, C=csv, X=xml, T=text; '/' and spaces are separators) into a format
// set. Combination strings originate in benchmark table definitions and CLI
// flags, so an unknown letter is reported as an error for the caller to
// surface, not a stack trace.
func parseFormatLetters(letters string) (map[string]bool, error) {
	want := map[string]bool{}
	for _, r := range letters {
		switch r {
		case 'J', 'j':
			want["json"] = true
		case 'K', 'k':
			want["kg"] = true
		case 'C', 'c':
			want["csv"] = true
		case 'X', 'x':
			want["xml"] = true
		case 'T', 't':
			want["text"] = true
		case '/', ' ':
		default:
			return nil, fmt.Errorf("datasets: unknown format letter %q in %q (want J/K/C/X/T)", string(r), letters)
		}
	}
	return want, nil
}

// FilterFormats returns the dataset's files restricted to the given format
// letters, using the paper's Table II abbreviations: J=json, K=kg, C=csv,
// X=xml, T=text. An unknown letter is an error.
func (d *Dataset) FilterFormats(letters string) ([]adapter.RawFile, error) {
	want, err := parseFormatLetters(letters)
	if err != nil {
		return nil, err
	}
	var out []adapter.RawFile
	for _, f := range d.Files {
		if want[f.Format] {
			out = append(out, f)
		}
	}
	return out, nil
}

// SourcesByFormat counts sources per format (Table I's "Sources" column).
func (d *Dataset) SourcesByFormat() map[string]int {
	set := map[string]map[string]bool{}
	for _, f := range d.Files {
		if set[f.Format] == nil {
			set[f.Format] = map[string]bool{}
		}
		set[f.Format][f.Source] = true
	}
	out := map[string]int{}
	for format, srcs := range set {
		out[format] = len(srcs)
	}
	return out
}
