package datasets

import "fmt"

// The presets mirror Table I's source structure at a laptop-friendly scale:
// the source counts and format splits match the paper exactly; entity counts
// are scaled so a full benchmark sweep runs in minutes. Movies and Flights
// are dense (high per-source coverage), Books and Stocks sparse — the
// property §IV-B attributes the differing headroom to.

// sourceRun builds n sources with a shared format and staggered
// reliability/coverage drawn deterministically from the index.
func sourceRun(prefix, format string, n int, relBase, relSpread, covBase, covSpread float64) []SourceSpec {
	out := make([]SourceSpec, 0, n)
	for i := 0; i < n; i++ {
		frac := 0.0
		if n > 1 {
			frac = float64(i) / float64(n-1)
		}
		out = append(out, SourceSpec{
			Name:        fmt.Sprintf("%s-%s-%02d", prefix, format, i),
			Format:      format,
			Reliability: relBase + relSpread*frac,
			Coverage:    covBase + covSpread*frac,
		})
	}
	return out
}

// Movies returns the Movies preset: 13 sources (4 JSON, 5 KG, 4 CSV), dense.
func Movies(seed uint64) Spec {
	var sources []SourceSpec
	sources = append(sources, sourceRun("mov", "json", 4, 0.45, 0.35, 0.65, 0.2)...)
	sources = append(sources, sourceRun("mov", "kg", 5, 0.42, 0.38, 0.7, 0.2)...)
	sources = append(sources, sourceRun("mov", "csv", 4, 0.48, 0.32, 0.7, 0.15)...)
	// Copying sources replicate low-reliability parents (redundancy
	// pathology of deep-web corpora [36]): their duplicated errors corrupt
	// vote counting and violate the source-independence assumption of the
	// classic fusion baselines.
	sources[1].CopyOf = sources[0].Name
	sources[2].CopyOf = sources[0].Name
	sources[5].CopyOf = sources[4].Name
	sources[10].CopyOf = sources[9].Name
	return Spec{
		Name:         "movies",
		Domain:       "movies",
		Entities:     220,
		ConflictPool: 1,
		VariantRate:  0.25,
		Attributes: []AttrSpec{
			{Name: "director", Kind: "person", MultiProb: 0.35},
			{Name: "writer", Kind: "person", MultiProb: 0.2},
			{Name: "year", Kind: "year"},
			{Name: "genre", Kind: "word"},
		},
		Sources: sources,
		Queries: 100,
		Seed:    seed,
	}
}

// Books returns the Books preset: 10 sources (3 JSON, 3 CSV, 4 XML), sparse.
func Books(seed uint64) Spec {
	var sources []SourceSpec
	sources = append(sources, sourceRun("bok", "json", 3, 0.42, 0.33, 0.24, 0.14)...)
	sources = append(sources, sourceRun("bok", "csv", 3, 0.44, 0.31, 0.26, 0.12)...)
	sources = append(sources, sourceRun("bok", "xml", 4, 0.4, 0.35, 0.22, 0.16)...)
	sources[1].CopyOf = sources[0].Name
	sources[4].CopyOf = sources[3].Name
	sources[7].CopyOf = sources[6].Name
	return Spec{
		Name:         "books",
		Domain:       "books",
		Entities:     180,
		ConflictPool: 2,
		VariantRate:  0.4,
		Attributes: []AttrSpec{
			{Name: "author", Kind: "person", MultiProb: 0.3},
			{Name: "publisher", Kind: "publisher"},
			{Name: "year", Kind: "year"},
			{Name: "pages", Kind: "pages"},
		},
		Sources: sources,
		Queries: 100,
		Seed:    seed,
	}
}

// Flights returns the Flights preset: 20 sources (10 CSV, 10 JSON), dense.
func Flights(seed uint64) Spec {
	var sources []SourceSpec
	sources = append(sources, sourceRun("flt", "csv", 10, 0.42, 0.38, 0.7, 0.2)...)
	sources = append(sources, sourceRun("flt", "json", 10, 0.44, 0.36, 0.72, 0.18)...)
	sources[1].CopyOf = sources[0].Name
	sources[2].CopyOf = sources[0].Name
	sources[11].CopyOf = sources[10].Name
	sources[12].CopyOf = sources[10].Name
	sources[13].CopyOf = sources[10].Name
	return Spec{
		Name:         "flights",
		Domain:       "flights",
		Entities:     160,
		ConflictPool: 1,
		VariantRate:  0.3,
		Attributes: []AttrSpec{
			{Name: "origin", Kind: "city"},
			{Name: "destination", Kind: "city"},
			{Name: "status", Kind: "status"},
			{Name: "departure_time", Kind: "time"},
			{Name: "gate", Kind: "gate"},
		},
		Sources: sources,
		Queries: 100,
		Seed:    seed,
	}
}

// Stocks returns the Stocks preset: 20 sources (10 CSV, 10 JSON), sparse.
func Stocks(seed uint64) Spec {
	var sources []SourceSpec
	sources = append(sources, sourceRun("stk", "csv", 10, 0.42, 0.33, 0.3, 0.16)...)
	sources = append(sources, sourceRun("stk", "json", 10, 0.44, 0.31, 0.28, 0.18)...)
	sources[1].CopyOf = sources[0].Name
	sources[2].CopyOf = sources[0].Name
	sources[11].CopyOf = sources[10].Name
	return Spec{
		Name:         "stocks",
		Domain:       "stocks",
		Entities:     180,
		ConflictPool: 2,
		VariantRate:  0.4,
		Attributes: []AttrSpec{
			{Name: "price", Kind: "number"},
			{Name: "volume", Kind: "bignumber"},
			{Name: "exchange", Kind: "exchange"},
			{Name: "sector", Kind: "sector"},
		},
		Sources: sources,
		Queries: 100,
		Seed:    seed,
	}
}

// ByName returns a preset spec by dataset name.
func ByName(name string, seed uint64) (Spec, error) {
	switch name {
	case "movies":
		return Movies(seed), nil
	case "books":
		return Books(seed), nil
	case "flights":
		return Flights(seed), nil
	case "stocks":
		return Stocks(seed), nil
	}
	return Spec{}, fmt.Errorf("datasets: unknown preset %q", name)
}

// AllPresets returns the four fusion dataset specs in Table I order.
func AllPresets(seed uint64) []Spec {
	return []Spec{Movies(seed), Books(seed), Flights(seed), Stocks(seed)}
}
